// Command slltd is the synthesis daemon: an HTTP/JSON service that accepts
// LEF/DEF/Liberty payloads, runs the hierarchical CTS flow on them through a
// bounded job queue, and serves the post-CTS DEF, the versioned run report
// and a streaming NDJSON progress feed per job.
//
// Usage:
//
//	slltd [-addr :8651] [-queue 8] [-runners 1] [-workers N]
//	      [-cache] [-cachedir DIR] [-drain 30s]
//
// Admission control: at most -queue jobs wait for a runner; submissions
// beyond that are shed with 429 and a Retry-After header rather than
// buffered without bound. -runners jobs execute concurrently, each with a
// max(1, workers/runners) goroutine budget for its per-cluster builds.
//
// -cache / -cachedir attach the content-addressed stage cache shared by all
// jobs: concurrent or repeated submissions of the same design replay stored
// stage results instead of recomputing them, with byte-identical output.
//
// On SIGTERM/SIGINT the daemon drains: new submissions get 503, running and
// queued jobs finish (up to -drain), then everything still unfinished is
// cancelled and the process exits. See the API summary in internal/server.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"sllt/internal/cache"
	"sllt/internal/server"
)

func main() {
	addr := flag.String("addr", ":8651", "listen address")
	queue := flag.Int("queue", 8, "max queued jobs before submissions shed with 429")
	runners := flag.Int("runners", 1, "concurrent job executors")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "global worker-goroutine budget, split across runners")
	useCache := flag.Bool("cache", false, "share a content-addressed stage cache across jobs")
	cacheDir := flag.String("cachedir", "", "on-disk cache tier directory (implies -cache)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight jobs")
	flag.Parse()

	cfg := server.Config{QueueDepth: *queue, Runners: *runners, Workers: *workers}
	if *useCache || *cacheDir != "" {
		store, err := cache.New(cache.Config{Dir: *cacheDir})
		fatal(err)
		cfg.Cache = store
	}
	s := server.New(cfg)

	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	fmt.Printf("slltd: listening on %s (queue %d, runners %d, workers %d)\n",
		*addr, *queue, *runners, *workers)

	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "slltd: %v — draining (budget %s)\n", sig, *drain)
		dctx, dcancel := context.WithTimeout(context.Background(), *drain)
		if err := s.Drain(dctx); err != nil {
			fmt.Fprintf(os.Stderr, "slltd: drain incomplete: %v — cancelling remaining jobs\n", err)
		}
		dcancel()
		s.Close()
		hctx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := httpSrv.Shutdown(hctx); err != nil {
			fmt.Fprintf(os.Stderr, "slltd: shutdown: %v\n", err)
		}
		hcancel()
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "slltd:", err)
		os.Exit(1)
	}
}
