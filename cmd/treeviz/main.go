// Command treeviz reproduces the paper's Fig. 1: it builds one clock net
// with each of the seven routing-topology algorithms and writes an SVG per
// algorithm, plus the Table-1-style metric comparison to stdout.
//
// Usage:
//
//	treeviz -out fig1/                # the demonstration net
//	treeviz -out fig1/ -pins 24 -seed 7 -box 75
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"sllt/internal/bench"
	"sllt/internal/viz"
)

func main() {
	outDir := flag.String("out", "fig1", "output directory for SVG files")
	pins := flag.Int("pins", 0, "random net pin count (0 = the Table 1 demonstration net)")
	box := flag.Float64("box", 75, "random net box, um")
	seed := flag.Int64("seed", 1, "random net seed")
	flag.Parse()

	net := bench.Table1Net()
	if *pins > 0 {
		cfg := bench.DefaultNetConfig()
		cfg.Box = *box
		cfg.MinPins = *pins
		cfg.MaxPins = *pins
		net = cfg.Random(rand.New(rand.NewSource(*seed)))
	}

	rows, err := bench.RunTable1(net, runtime.GOMAXPROCS(0))
	fatal(err)
	fmt.Print(bench.FormatTable1(rows))

	fatal(os.MkdirAll(*outDir, 0o755))
	for _, r := range rows {
		m := r.Metrics
		title := fmt.Sprintf("%s  α=%.2f β=%.2f γ=%.2f", r.Name, m.Alpha, m.Beta, m.Gamma)
		svg := viz.SVG(r.Tree, viz.DefaultStyle(title))
		name := strings.ToLower(strings.ReplaceAll(strings.TrimSuffix(r.Name, "*"), "-", ""))
		path := filepath.Join(*outDir, fmt.Sprintf("fig1_%s.svg", name))
		fatal(os.WriteFile(path, []byte(svg), 0o644))
		fmt.Println("wrote", path)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "treeviz:", err)
		os.Exit(1)
	}
}
