// Command slltcts runs the full hierarchical clock tree synthesis flow on a
// LEF/DEF design and writes the post-CTS DEF plus a timing report.
//
// Usage:
//
//	slltcts -lef design.lef -def design.def [-net clk] [-engine ours|commercial|openroad]
//	        [-out cts.def] [-skew 80] [-fanout 32] [-cap 150] [-workers N]
//	        [-report run.json] [-trace run.trace] [-cache] [-cachedir DIR]
//
// -workers spreads the independent per-cluster net builds of each level
// over N goroutines. The output DEF is byte-identical for every value —
// parallelism here changes wall clock, never the tree.
//
// -report writes the machine-readable run report (schema
// "sllt.obs.report/v1.1": stage span tree, kernel counters, per-level QoR,
// and — when caching is on — the cache traffic section; see internal/obs)
// and -trace a human-readable span breakdown. Either flag enables
// observability; neither changes a byte of the DEF output.
//
// -cache attaches a content-addressed stage cache: stages whose inputs are
// unchanged since an earlier run replay their stored results instead of
// recomputing (an ECO re-run after a small placement edit rebuilds only the
// clusters the edit dirtied). -cachedir DIR adds an on-disk tier so warmth
// survives across processes — the natural ECO workflow is two slltcts
// invocations sharing one -cachedir. Cached and uncached runs produce
// byte-identical DEF output.
//
// The engine names select the paper's flow ("ours", CBS-based) or one of
// the two baseline proxies used in Tables 6/7.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"sllt/internal/baseline"
	"sllt/internal/cache"
	"sllt/internal/cts"
	"sllt/internal/design"
	"sllt/internal/lefdef"
	"sllt/internal/obs"
)

func main() {
	lefPath := flag.String("lef", "", "input LEF file (required)")
	defPath := flag.String("def", "", "input DEF file (required)")
	netName := flag.String("net", "", "clock net name (default: first USE CLOCK net)")
	engine := flag.String("engine", "ours", "flow: ours | commercial | openroad")
	outPath := flag.String("out", "", "output post-CTS DEF file")
	skew := flag.Float64("skew", 80, "skew bound, ps")
	fanout := flag.Int("fanout", 32, "max fanout per clock net")
	maxCap := flag.Float64("cap", 150, "max stage capacitance, fF")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for per-cluster builds (<=1 serial; output is identical for any value)")
	reportPath := flag.String("report", "", "write the run report (canonical JSON, schema sllt.obs.report/v1.1) to this file")
	tracePath := flag.String("trace", "", "write a human-readable stage trace to this file")
	useCache := flag.Bool("cache", false, "replay unchanged stages from a content-addressed cache (output bytes unchanged)")
	cacheDir := flag.String("cachedir", "", "on-disk cache tier directory (persists across runs for ECO re-use; implies -cache)")
	flag.Parse()

	if *lefPath == "" || *defPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	// Inputs stream through the fixed-buffer readers: neither file is ever
	// held in memory whole, so ingest cost is the parsed structures alone.
	lef, err := parseLEFFile(*lefPath)
	fatal(err)
	df, err := parseDEFFile(*defPath)
	fatal(err)
	d, err := design.FromLEFDEF(lef, df, *netName)
	fatal(err)

	var opts cts.Options
	switch *engine {
	case "ours":
		opts = cts.DefaultOptions()
	case "commercial":
		opts = baseline.CommercialLike()
	case "openroad":
		opts = baseline.OpenROADLike()
	default:
		fatal(fmt.Errorf("unknown engine %q", *engine))
	}
	opts.Cons.SkewBound = *skew
	opts.Cons.MaxFanout = *fanout
	opts.Cons.MaxCap = *maxCap
	opts.Seed = *seed
	opts.Workers = *workers
	if *reportPath != "" || *tracePath != "" {
		opts.Obs = obs.New(nil)
	}
	var store *cache.Cache
	if *useCache || *cacheDir != "" {
		store, err = cache.New(cache.Config{Dir: *cacheDir})
		fatal(err)
		opts.Cache = store
	}

	fmt.Printf("slltcts: %s — %d instances, %d clock sinks, die %.0fx%.0f um\n",
		d.Name, len(d.Insts), d.NumFFs(), d.Die.W(), d.Die.H())
	start := time.Now()
	res, err := cts.Run(d, opts)
	fatal(err)
	rt := time.Since(start)

	r := res.Report
	fmt.Printf("engine        : %s\n", *engine)
	fmt.Printf("levels        : %d (clusters per level: %v)\n", res.Levels, res.Clusters)
	fmt.Printf("max latency   : %.1f ps\n", r.MaxLatency)
	fmt.Printf("skew          : %.1f ps (bound %.0f)\n", r.Skew, *skew)
	fmt.Printf("buffers       : %d (area %.1f um2)\n", r.Buffers, r.BufArea)
	fmt.Printf("clock cap     : %.1f fF\n", r.ClockCap)
	fmt.Printf("clock WL      : %.1f um\n", r.WL)
	fmt.Printf("max stage cap : %.1f fF (limit %.0f)\n", r.MaxStgCap, *maxCap)
	fmt.Printf("max sink slew : %.1f ps\n", r.MaxSlew)
	fmt.Printf("runtime       : %.2f s\n", rt.Seconds())
	if store != nil {
		total := store.Stats().Total()
		fmt.Printf("cache         : %d hits / %d misses (%.0f%% replayed)\n",
			total.Hits, total.Misses, 100*total.HitRate())
	}

	if *outPath != "" {
		out, err := cts.ExportDEFFile(*outPath, d, res)
		fatal(err)
		fmt.Printf("wrote %s (%d components, %d nets)\n", *outPath, len(out.Components), len(out.Nets))
	}

	if opts.Obs.Enabled() {
		rep := opts.Obs.Snapshot()
		if *reportPath != "" {
			data, err := rep.JSON()
			fatal(err)
			fatal(os.WriteFile(*reportPath, data, 0o644))
			fmt.Printf("wrote %s (report, %d bytes)\n", *reportPath, len(data))
		}
		if *tracePath != "" {
			f, err := os.Create(*tracePath)
			fatal(err)
			fatal(rep.WriteTrace(f))
			fatal(f.Close())
			fmt.Printf("wrote %s (trace)\n", *tracePath)
		}
	}
}

func parseLEFFile(path string) (*lefdef.LEF, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return lefdef.ParseLEFReader(f)
}

func parseDEFFile(path string) (*lefdef.DEF, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return lefdef.ParseDEFReader(f)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "slltcts:", err)
		os.Exit(1)
	}
}
