// Command netgen synthesizes the benchmark designs of the paper's Table 4
// as LEF/DEF-lite files, so the flow tools can consume them exactly like
// real placements.
//
// Usage:
//
//	netgen -design s38584 -out bench/          # one design
//	netgen -design all -out bench/             # all ten designs
//	netgen -insts 5000 -ffs 1000 -util 0.6 -name custom -out bench/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"sllt/internal/design"
	"sllt/internal/designgen"
	"sllt/internal/liberty"
)

func main() {
	name := flag.String("design", "", "Table 4 design name, or 'all'")
	outDir := flag.String("out", ".", "output directory")
	seed := flag.Int64("seed", 1, "placement seed")
	insts := flag.Int("insts", 0, "custom design: instance count")
	ffs := flag.Int("ffs", 0, "custom design: flip-flop count")
	util := flag.Float64("util", 0.6, "custom design: utilization")
	custom := flag.String("name", "custom", "custom design: name")
	flag.Parse()

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	lef := designgen.LEF(designgen.BufferMacros(liberty.Default()))
	lefPath := filepath.Join(*outDir, "sim28.lef")
	fatal(os.WriteFile(lefPath, []byte(lef.WriteLEF()), 0o644))
	fmt.Println("wrote", lefPath)

	var specs []designgen.Spec
	switch {
	case *insts > 0 && *ffs > 0:
		specs = []designgen.Spec{{Name: *custom, Insts: *insts, FFs: *ffs, Util: *util}}
	case *name == "all":
		specs = designgen.Table4()
	case *name != "":
		spec, err := designgen.FindSpec(*name)
		fatal(err)
		specs = []designgen.Spec{spec}
	default:
		flag.Usage()
		os.Exit(2)
	}

	for _, spec := range specs {
		d := designgen.Generate(spec, *seed)
		emit(*outDir, d)
	}
}

func emit(dir string, d *design.Design) {
	path := filepath.Join(dir, d.Name+".def")
	fatal(os.WriteFile(path, []byte(designgen.DEF(d).WriteDEF()), 0o644))
	fmt.Printf("wrote %s (%d insts, %d FFs, die %.0fx%.0f um)\n",
		path, len(d.Insts), d.NumFFs(), d.Die.W(), d.Die.H())
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "netgen:", err)
		os.Exit(1)
	}
}
