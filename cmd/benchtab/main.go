// Command benchtab regenerates the paper's evaluation tables.
//
// Usage:
//
//	benchtab -table 1                 # Table 1 (topology metrics)
//	benchtab -table 2 -nets 10000     # Table 2 at full paper scale
//	benchtab -table 3                 # Table 3 (BST-DME vs CBS)
//	benchtab -table 6                 # Table 6 (six open designs, 3 flows)
//	benchtab -table 7                 # Table 7 (four ysyx designs, 3 flows)
//	benchtab -table 7 -scale 0.25     # ysyx designs at quarter size (fast)
//	benchtab -table all
//	benchtab -table 6 -workers 8      # spread independent work over 8 cores
//	benchtab -table smoke -workers 8  # print the flow's DEF digest (CI oracle)
//	benchtab -table 2 -cpuprofile cpu.pprof -memprofile mem.pprof
//	benchtab -benchjson                            # kernel trajectory -> BENCH_4.json
//	benchtab -benchjson -benchtiers 1000 -benchout BENCH_4.json  # CI smoke tier
//
// -workers parallelizes the independent units of each table (per-cluster
// net builds inside a flow, per-cell net streams in Tables 2/3, the seven
// builders of Table 1) without changing a single output byte; `-table
// smoke` exists so CI can assert exactly that, by diffing the digest line
// across worker counts.
//
// -benchjson bypasses the tables entirely and runs the spatial-index kernel
// benchmarks (MST, Steinerize, k-means assignment, silhouette) at each
// -benchtiers sink count, writing machine-readable results to -benchout.
// Quadratic reference kernels only run on tiers ≤ -benchrefmax.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"sllt/internal/bench"
	"sllt/internal/cts"
	"sllt/internal/designgen"
)

func main() {
	table := flag.String("table", "all", "table to regenerate: 1|2|3|6|7|smoke|all")
	nets := flag.Int("nets", 400, "random nets per cell for tables 2/3 (paper: 10000)")
	seed := flag.Int64("seed", 1, "seed")
	scale := flag.Float64("scale", 1.0, "design size scale factor for tables 6/7")
	stages := flag.Bool("stages", false, "append a per-stage wall-clock table to tables 6/7 (runs with observability on; QoR columns unchanged)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for independent work (<=1 serial; capped at GOMAXPROCS)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	benchjson := flag.Bool("benchjson", false, "run the spatial-index kernel benchmarks and write JSON instead of tables")
	benchtiers := flag.String("benchtiers", "1000,10000,100000", "comma-separated sink tiers for -benchjson")
	benchout := flag.String("benchout", "BENCH_4.json", "output file for -benchjson")
	benchrefmax := flag.Int("benchrefmax", 10000, "largest tier on which the quadratic reference kernels run")
	flag.Parse()

	if *benchjson {
		if err := runBenchJSON(*benchtiers, *seed, *benchrefmax, *benchout); err != nil {
			fatal(fmt.Errorf("benchjson: %w", err))
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(fmt.Errorf("cpuprofile: %w", err))
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(fmt.Errorf("cpuprofile: %w", err))
		}
		defer pprof.StopCPUProfile()
	}

	run := func(name string, fn func() error) {
		if *table != "all" && *table != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: table %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("1", func() error {
		rows, err := bench.RunTable1(bench.Table1Net(), *workers)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatTable1(rows))
		return nil
	})
	run("2", func() error {
		cfg := bench.DefaultT23Config()
		cfg.Nets = *nets
		cfg.Seed = *seed
		cfg.Workers = *workers
		cells, err := bench.RunTable2(cfg)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatTable2(cells, cfg))
		return nil
	})
	run("3", func() error {
		cfg := bench.DefaultT23Config()
		cfg.Nets = *nets
		cfg.Seed = *seed
		cfg.Workers = *workers
		cells, err := bench.RunTable3(cfg)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatTable3(cells, cfg))
		return nil
	})
	flowTable := func(title string, specs []designgen.Spec) error {
		var results []bench.FlowResult
		if *stages {
			results = bench.RunFlowsObs(specs, *seed, *workers)
		} else {
			results = bench.RunFlows(specs, *seed, *workers)
		}
		fmt.Println(bench.FormatFlowTable(title, results))
		if *stages {
			fmt.Println(bench.FormatStageTable("Per-stage wall clock", results))
		}
		return nil
	}
	run("6", func() error {
		return flowTable("Table 6: clock tree solutions on open designs", scaleAll(bench.Table6Specs(), *scale))
	})
	run("7", func() error {
		return flowTable("Table 7: clock tree solutions on ysyx designs", scaleAll(bench.Table7Specs(), *scale))
	})
	// smoke is not part of "all": it is the parallel-determinism oracle. It
	// synthesizes one Table-4-class design with the requested worker count
	// and prints a digest of the exported DEF — nothing runtime-dependent —
	// so `benchtab -table smoke -workers 1` and `-workers 8` must print the
	// same line, byte for byte.
	if *table == "smoke" {
		if err := smoke(*seed, *workers); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: smoke: %v\n", err)
			os.Exit(1)
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(fmt.Errorf("memprofile: %w", err))
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(fmt.Errorf("memprofile: %w", err))
		}
	}
}

// smoke runs the paper's flow on a reduced s38584-class design and prints
// the SHA-256 of the post-CTS DEF plus the headline metrics.
func smoke(seed int64, workers int) error {
	// The oracle must exercise real goroutine interleaving even on small CI
	// boxes, where GOMAXPROCS would otherwise clamp the fan-out to 1.
	if workers > runtime.GOMAXPROCS(0) {
		runtime.GOMAXPROCS(workers)
	}
	spec := designgen.Spec{Name: "smoke", Insts: 1500, FFs: 300, Util: 0.60}
	d := designgen.Generate(spec, seed)
	opts := cts.DefaultOptions()
	opts.SAIters = 200
	opts.Workers = workers
	res, err := cts.Run(d, opts)
	if err != nil {
		return err
	}
	def := cts.ExportDEF(d, res).WriteDEF()
	fmt.Printf("smoke def_sha256=%x bytes=%d levels=%d buffers=%d skew_ps=%.3f\n",
		sha256.Sum256([]byte(def)), len(def), res.Levels, res.Report.Buffers, res.Report.Skew)
	return nil
}

// runBenchJSON measures the kernel trajectory and writes the report both to
// the console (as a table) and to out (as indented JSON for CI artifacts and
// the committed BENCH_4.json).
func runBenchJSON(tiersCSV string, seed int64, refMaxN int, out string) error {
	var tiers []int
	for _, f := range strings.Split(tiersCSV, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 2 {
			return fmt.Errorf("bad tier %q", f)
		}
		tiers = append(tiers, n)
	}
	if len(tiers) == 0 {
		return fmt.Errorf("no tiers")
	}
	rep := bench.RunKernels(tiers, seed, refMaxN)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Print(bench.FormatKernelReport(rep))
	fmt.Printf("wrote %s\n", out)
	return nil
}

func scaleAll(specs []designgen.Spec, f float64) []designgen.Spec {
	out := make([]designgen.Spec, len(specs))
	for i, s := range specs {
		out[i] = bench.ScaleSpec(s, f)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchtab:", err)
	os.Exit(1)
}
