// Command benchtab regenerates the paper's evaluation tables.
//
// Usage:
//
//	benchtab -table 1                 # Table 1 (topology metrics)
//	benchtab -table 2 -nets 10000     # Table 2 at full paper scale
//	benchtab -table 3                 # Table 3 (BST-DME vs CBS)
//	benchtab -table 6                 # Table 6 (six open designs, 3 flows)
//	benchtab -table 7                 # Table 7 (four ysyx designs, 3 flows)
//	benchtab -table 7 -scale 0.25     # ysyx designs at quarter size (fast)
//	benchtab -table all
package main

import (
	"flag"
	"fmt"
	"os"

	"sllt/internal/bench"
	"sllt/internal/designgen"
)

func main() {
	table := flag.String("table", "all", "table to regenerate: 1|2|3|6|7|all")
	nets := flag.Int("nets", 400, "random nets per cell for tables 2/3 (paper: 10000)")
	seed := flag.Int64("seed", 1, "seed")
	scale := flag.Float64("scale", 1.0, "design size scale factor for tables 6/7")
	flag.Parse()

	run := func(name string, fn func() error) {
		if *table != "all" && *table != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: table %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("1", func() error {
		rows, err := bench.RunTable1(bench.Table1Net())
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatTable1(rows))
		return nil
	})
	run("2", func() error {
		cfg := bench.DefaultT23Config()
		cfg.Nets = *nets
		cfg.Seed = *seed
		cells, err := bench.RunTable2(cfg)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatTable2(cells, cfg))
		return nil
	})
	run("3", func() error {
		cfg := bench.DefaultT23Config()
		cfg.Nets = *nets
		cfg.Seed = *seed
		cells, err := bench.RunTable3(cfg)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatTable3(cells, cfg))
		return nil
	})
	run("6", func() error {
		specs := scaleAll(bench.Table6Specs(), *scale)
		results := bench.RunFlows(specs, *seed)
		fmt.Println(bench.FormatFlowTable("Table 6: clock tree solutions on open designs", results))
		return nil
	})
	run("7", func() error {
		specs := scaleAll(bench.Table7Specs(), *scale)
		results := bench.RunFlows(specs, *seed)
		fmt.Println(bench.FormatFlowTable("Table 7: clock tree solutions on ysyx designs", results))
		return nil
	})
}

func scaleAll(specs []designgen.Spec, f float64) []designgen.Spec {
	out := make([]designgen.Spec, len(specs))
	for i, s := range specs {
		out[i] = bench.ScaleSpec(s, f)
	}
	return out
}
