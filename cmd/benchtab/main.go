// Command benchtab regenerates the paper's evaluation tables.
//
// Usage:
//
//	benchtab -table 1                 # Table 1 (topology metrics)
//	benchtab -table 2 -nets 10000     # Table 2 at full paper scale
//	benchtab -table 3                 # Table 3 (BST-DME vs CBS)
//	benchtab -table 6                 # Table 6 (six open designs, 3 flows)
//	benchtab -table 7                 # Table 7 (four ysyx designs, 3 flows)
//	benchtab -table 7 -scale 0.25     # ysyx designs at quarter size (fast)
//	benchtab -table all
//	benchtab -table 6 -workers 8      # spread independent work over 8 cores
//	benchtab -table smoke -workers 8  # print the flow's DEF digest (CI oracle)
//	benchtab -table 2 -cpuprofile cpu.pprof -memprofile mem.pprof
//	benchtab -table 6 -stages -cache  # per-stage wall clock + cache hit rates
//	benchtab -table cachesmoke        # flow twice vs one store (CI oracle)
//	benchtab -benchjson                            # kernel trajectory -> BENCH_4.json
//	benchtab -benchjson -benchtiers 1000 -benchout BENCH_4.json  # CI smoke tier
//	benchtab -cachejson                            # stage-cache warm/cold + ECO -> BENCH_5.json
//	benchtab -allocjson                            # hot-kernel allocs/op + bytes/op -> BENCH_6.json
//
// -workers parallelizes the independent units of each table (per-cluster
// net builds inside a flow, per-cell net streams in Tables 2/3, the seven
// builders of Table 1) without changing a single output byte; `-table
// smoke` exists so CI can assert exactly that, by diffing the digest line
// across worker counts.
//
// -cache attaches a content-addressed stage cache to the flow tables (6/7)
// so repeated invocations replay instead of recompute; -cachedir adds the
// on-disk tier so the warmth survives across processes. With -stages the
// per-stage table gains hit-rate columns. `-table cachesmoke` is the CI
// oracle for the cache itself: it runs the smoke flow twice against one
// store and exits non-zero unless the second run's DEF is byte-identical
// and its cluster-stage hit rate is at least 90%.
//
// -benchjson bypasses the tables entirely and runs the spatial-index kernel
// benchmarks (MST, Steinerize, k-means assignment, silhouette) at each
// -benchtiers sink count, writing machine-readable results to -benchout.
// Quadratic reference kernels only run on tiers ≤ -benchrefmax. -cachejson
// does the same for the stage cache (cold vs warm replay, plus an ECO tier
// moving 1% of sinks), writing the BENCH_5.json trajectory to -cacheout.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"sllt/internal/bench"
	"sllt/internal/cache"
	"sllt/internal/cts"
	"sllt/internal/designgen"
)

func main() {
	table := flag.String("table", "all", "table to regenerate: 1|2|3|6|7|smoke|cachesmoke|all")
	nets := flag.Int("nets", 400, "random nets per cell for tables 2/3 (paper: 10000)")
	seed := flag.Int64("seed", 1, "seed")
	scale := flag.Float64("scale", 1.0, "design size scale factor for tables 6/7")
	stages := flag.Bool("stages", false, "append a per-stage wall-clock table to tables 6/7 (runs with observability on; QoR columns unchanged)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for independent work (<=1 serial; capped at GOMAXPROCS)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	benchjson := flag.Bool("benchjson", false, "run the spatial-index kernel benchmarks and write JSON instead of tables")
	benchtiers := flag.String("benchtiers", "1000,10000,100000", "comma-separated sink tiers for -benchjson")
	benchout := flag.String("benchout", "BENCH_4.json", "output file for -benchjson")
	benchrefmax := flag.Int("benchrefmax", 10000, "largest tier on which the quadratic reference kernels run")
	useCache := flag.Bool("cache", false, "attach a content-addressed stage cache to the flow tables (replays identical stages; output bytes unchanged)")
	cacheDir := flag.String("cachedir", "", "on-disk tier directory for -cache (persists warmth across invocations; implies -cache)")
	cachejson := flag.Bool("cachejson", false, "run the stage-cache warm/cold + ECO benchmarks and write JSON instead of tables")
	cacheout := flag.String("cacheout", "BENCH_5.json", "output file for -cachejson")
	allocjson := flag.Bool("allocjson", false, "run the hot-kernel allocation benchmarks (allocs/op + bytes/op) and write JSON instead of tables")
	allocout := flag.String("allocout", "BENCH_6.json", "output file for -allocjson")
	iojson := flag.Bool("iojson", false, "run the streaming DEF I/O benchmarks and write JSON instead of tables")
	iotiers := flag.String("iotiers", "1000,10000,100000", "comma-separated sink tiers for -iojson")
	ioout := flag.String("ioout", "BENCH_7.json", "output file for -iojson")
	iorefmax := flag.Int("iorefmax", 100000, "largest tier on which the legacy whole-string parse/render paths run")
	ioflow := flag.Int("ioflow", 0, "sink count for the end-to-end flow tier of -iojson (0 = skip; the 1M record uses 1000000)")
	flag.Parse()

	if *benchjson {
		if err := runBenchJSON(*benchtiers, *seed, *benchrefmax, *benchout); err != nil {
			fatal(fmt.Errorf("benchjson: %w", err))
		}
		return
	}
	if *allocjson {
		if err := runAllocJSON(*benchtiers, *seed, *allocout); err != nil {
			fatal(fmt.Errorf("allocjson: %w", err))
		}
		return
	}
	if *iojson {
		if err := runIOJSON(*iotiers, *seed, *iorefmax, *ioflow, *workers, *ioout); err != nil {
			fatal(fmt.Errorf("iojson: %w", err))
		}
		return
	}
	if *cachejson {
		if err := runCacheJSON(*seed, *workers, *cacheout); err != nil {
			fatal(fmt.Errorf("cachejson: %w", err))
		}
		return
	}

	var store *cache.Cache
	if *useCache || *cacheDir != "" {
		var err error
		store, err = cache.New(cache.Config{Dir: *cacheDir})
		if err != nil {
			fatal(fmt.Errorf("cache: %w", err))
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(fmt.Errorf("cpuprofile: %w", err))
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(fmt.Errorf("cpuprofile: %w", err))
		}
		defer pprof.StopCPUProfile()
	}

	run := func(name string, fn func() error) {
		if *table != "all" && *table != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: table %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("1", func() error {
		rows, err := bench.RunTable1(bench.Table1Net(), *workers)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatTable1(rows))
		return nil
	})
	run("2", func() error {
		cfg := bench.DefaultT23Config()
		cfg.Nets = *nets
		cfg.Seed = *seed
		cfg.Workers = *workers
		cells, err := bench.RunTable2(cfg)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatTable2(cells, cfg))
		return nil
	})
	run("3", func() error {
		cfg := bench.DefaultT23Config()
		cfg.Nets = *nets
		cfg.Seed = *seed
		cfg.Workers = *workers
		cells, err := bench.RunTable3(cfg)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatTable3(cells, cfg))
		return nil
	})
	flowTable := func(title string, specs []designgen.Spec) error {
		var results []bench.FlowResult
		switch {
		case store != nil:
			results = bench.RunFlowsCached(specs, *seed, *workers, *stages, store)
		case *stages:
			results = bench.RunFlowsObs(specs, *seed, *workers)
		default:
			results = bench.RunFlows(specs, *seed, *workers)
		}
		fmt.Println(bench.FormatFlowTable(title, results))
		if *stages {
			fmt.Println(bench.FormatStageTable("Per-stage wall clock", results))
		}
		return nil
	}
	run("6", func() error {
		return flowTable("Table 6: clock tree solutions on open designs", scaleAll(bench.Table6Specs(), *scale))
	})
	run("7", func() error {
		return flowTable("Table 7: clock tree solutions on ysyx designs", scaleAll(bench.Table7Specs(), *scale))
	})
	// smoke is not part of "all": it is the parallel-determinism oracle. It
	// synthesizes one Table-4-class design with the requested worker count
	// and prints a digest of the exported DEF — nothing runtime-dependent —
	// so `benchtab -table smoke -workers 1` and `-workers 8` must print the
	// same line, byte for byte.
	if *table == "smoke" {
		if err := smoke(*seed, *workers, store); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: smoke: %v\n", err)
			os.Exit(1)
		}
	}
	// cachesmoke is the cache's own CI oracle (also outside "all"): the same
	// flow runs twice against one store, and the process fails unless the
	// replayed run is byte-identical with a >=90% cluster-stage hit rate.
	if *table == "cachesmoke" {
		if err := cacheSmoke(*seed, *workers, *cacheDir); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: cachesmoke: %v\n", err)
			os.Exit(1)
		}
	}
	// iosmoke is the streaming-parser memory oracle (also outside "all"): it
	// writes a ~100k-sink DEF to a temp file, parses it back through the
	// fixed-buffer reader, and fails unless the parse is memory-bound the way
	// the streaming contract promises.
	if *table == "iosmoke" {
		if err := ioSmoke(*seed); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: iosmoke: %v\n", err)
			os.Exit(1)
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(fmt.Errorf("memprofile: %w", err))
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(fmt.Errorf("memprofile: %w", err))
		}
	}
}

// smoke runs the paper's flow on a reduced s38584-class design and prints
// the SHA-256 of the post-CTS DEF plus the headline metrics. An attached
// store must not change the digest line — the parallel-determinism oracle
// doubles as the cache-transparency one when CI passes -cache.
func smoke(seed int64, workers int, store *cache.Cache) error {
	// The oracle must exercise real goroutine interleaving even on small CI
	// boxes, where GOMAXPROCS would otherwise clamp the fan-out to 1.
	if workers > runtime.GOMAXPROCS(0) {
		runtime.GOMAXPROCS(workers)
	}
	spec := designgen.Spec{Name: "smoke", Insts: 1500, FFs: 300, Util: 0.60}
	d := designgen.Generate(spec, seed)
	opts := cts.DefaultOptions()
	opts.SAIters = 200
	opts.Workers = workers
	opts.Cache = store
	res, err := cts.Run(d, opts)
	if err != nil {
		return err
	}
	def := cts.ExportDEF(d, res).WriteDEF()
	fmt.Printf("smoke def_sha256=%x bytes=%d levels=%d buffers=%d skew_ps=%.3f\n",
		sha256.Sum256([]byte(def)), len(def), res.Levels, res.Report.Buffers, res.Report.Skew)
	return nil
}

// cacheSmoke runs the smoke flow twice against one store and asserts the
// replay contract CI depends on: the second run's DEF must be byte-identical
// to the first and its cluster-stage hit rate at least 90%. A non-empty dir
// adds the on-disk tier so the step also exercises entry encode/decode. The
// design and options match smoke() exactly, so CI can additionally diff the
// digest against the uncached smoke line — three-way transparency.
func cacheSmoke(seed int64, workers int, dir string) error {
	store, err := cache.New(cache.Config{Dir: dir})
	if err != nil {
		return err
	}
	spec := designgen.Spec{Name: "smoke", Insts: 1500, FFs: 300, Util: 0.60}
	opts := cts.DefaultOptions()
	opts.SAIters = 200
	opts.Workers = workers
	opts.Cache = store

	var digests [2][32]byte
	for pass := 0; pass < 2; pass++ {
		prev := store.Stats()
		d := designgen.Generate(spec, seed)
		res, err := cts.Run(d, opts)
		if err != nil {
			return err
		}
		def := cts.ExportDEF(d, res).WriteDEF()
		digests[pass] = sha256.Sum256([]byte(def))
		cs := store.Stats().Sub(prev).Stages["cluster_build"]
		fmt.Printf("cachesmoke pass=%d def_sha256=%x cluster_hits=%d cluster_misses=%d hit_rate=%.3f\n",
			pass+1, digests[pass], cs.Hits, cs.Misses, cs.HitRate())
		if pass == 1 {
			if digests[1] != digests[0] {
				return fmt.Errorf("replayed DEF differs from cold run")
			}
			if cs.HitRate() < 0.90 {
				return fmt.Errorf("cluster-stage hit rate %.3f below the 0.90 replay floor", cs.HitRate())
			}
		}
	}
	return nil
}

// runCacheJSON measures the stage-cache trajectory (cold vs warm replay,
// plus the 1%-of-sinks ECO tier) and writes the report both to the console
// and to out as the committed BENCH_5.json.
func runCacheJSON(seed int64, workers int, out string) error {
	rep, err := bench.RunCacheBench(seed, workers)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Print(bench.FormatCacheBenchReport(rep))
	fmt.Printf("wrote %s\n", out)
	return nil
}

// runAllocJSON measures the allocation-discipline trajectory of the
// hotpath-annotated kernels (allocs/op and bytes/op per kernel and tier) and
// writes the report both to the console and to out as the committed
// BENCH_6.json.
func runAllocJSON(tiersCSV string, seed int64, out string) error {
	tiers, err := parseTiers(tiersCSV)
	if err != nil {
		return err
	}
	rep := bench.RunAllocBench(tiers, seed)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Print(bench.FormatAllocReport(rep))
	fmt.Printf("wrote %s\n", out)
	return nil
}

// runIOJSON measures the streaming DEF I/O trajectory (parse and export,
// streaming vs the retained legacy whole-string paths, plus the optional
// end-to-end flow tier) and writes the report both to the console and to out
// as the committed BENCH_7.json.
func runIOJSON(tiersCSV string, seed int64, refMaxN, flowN, workers int, out string) error {
	tiers, err := parseTiers(tiersCSV)
	if err != nil {
		return err
	}
	rep, err := bench.RunIOBench(tiers, seed, refMaxN, flowN, workers)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Print(bench.FormatIOReport(rep))
	fmt.Printf("wrote %s\n", out)
	return nil
}

// ioSmoke asserts the streaming parser's memory discipline on a fresh
// ~100k-sink DEF: compared to the retained legacy path (whole file in a
// string, every token materialized, result substrings pinning the source),
// the streaming parse must allocate less in total, retain less while the
// result is live, and keep its transient working set — everything allocated
// but not retained — under 2x the file size. The transient is dominated by
// append-growth churn on the clock net's connection list (Go's large-slice
// growth allocates several generations of the final array), which scales
// with the design, never with token count; the legacy path's transient is
// ~30x the file. The retained ceiling is 3x the file: the parsed structure
// itself is about 1.7x the text (struct headers beat DEF syntax), and the
// margin must not mask a copy of the source sneaking back in.
func ioSmoke(seed int64) error {
	const n = 100000
	rep, err := bench.RunIOBench([]int{n}, seed, n, 0, 1)
	if err != nil {
		return err
	}
	rows := map[string]bench.IOResult{}
	for _, r := range rep.Results {
		rows[r.Op] = r
	}
	stream, ok := rows["def_parse_stream"]
	if !ok {
		return fmt.Errorf("no streaming parse row")
	}
	legacy, ok := rows["def_parse_legacy"]
	if !ok {
		return fmt.Errorf("no legacy parse row")
	}
	fmt.Printf("iosmoke n=%d bytes=%d stream{total=%d retained=%d MB/s=%.1f} legacy{total=%d retained=%d MB/s=%.1f}\n",
		n, stream.Bytes, stream.TotalAlloc, stream.RetainedHeap, stream.MBPerS,
		legacy.TotalAlloc, legacy.RetainedHeap, legacy.MBPerS)
	if stream.TotalAlloc >= legacy.TotalAlloc {
		return fmt.Errorf("streaming parse allocated %d bytes, legacy only %d", stream.TotalAlloc, legacy.TotalAlloc)
	}
	if stream.RetainedHeap >= legacy.RetainedHeap {
		return fmt.Errorf("streaming parse retained %d bytes, legacy only %d", stream.RetainedHeap, legacy.RetainedHeap)
	}
	if transient := stream.TotalAlloc - stream.RetainedHeap; transient > 2*stream.Bytes {
		return fmt.Errorf("streaming parse transient working set %d exceeds 2x file size %d", transient, stream.Bytes)
	}
	if stream.RetainedHeap > 3*stream.Bytes {
		return fmt.Errorf("streaming parse retained %d bytes, over 3x the %d-byte file", stream.RetainedHeap, stream.Bytes)
	}
	return nil
}

// parseTiers splits the -benchtiers CSV into validated sink counts.
func parseTiers(tiersCSV string) ([]int, error) {
	var tiers []int
	for _, f := range strings.Split(tiersCSV, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 2 {
			return nil, fmt.Errorf("bad tier %q", f)
		}
		tiers = append(tiers, n)
	}
	if len(tiers) == 0 {
		return nil, fmt.Errorf("no tiers")
	}
	return tiers, nil
}

// runBenchJSON measures the kernel trajectory and writes the report both to
// the console (as a table) and to out (as indented JSON for CI artifacts and
// the committed BENCH_4.json).
func runBenchJSON(tiersCSV string, seed int64, refMaxN int, out string) error {
	tiers, err := parseTiers(tiersCSV)
	if err != nil {
		return err
	}
	rep := bench.RunKernels(tiers, seed, refMaxN)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Print(bench.FormatKernelReport(rep))
	fmt.Printf("wrote %s\n", out)
	return nil
}

func scaleAll(specs []designgen.Spec, f float64) []designgen.Spec {
	out := make([]designgen.Spec, len(specs))
	for i, s := range specs {
		out[i] = bench.ScaleSpec(s, f)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchtab:", err)
	os.Exit(1)
}
