package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// brokenSrc carries one ctxguard finding with a mechanical suggested fix:
// context.Background() inside a function that already has a ctx parameter.
const brokenSrc = `package tmpfix

import "context"

func lookup(ctx context.Context, key string) string { return key }

func Handle(ctx context.Context, key string) string {
	return lookup(context.Background(), key)
}
`

// tempModule materializes a one-file module and chdirs into it, restoring
// the working directory when the test ends.
func tempModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module tmpfix\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "fix.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
	return path
}

// TestFixWriteRoundTrip drives the CLI end to end: dry-run -fix leaves the
// file alone, -fix -write rewrites it, and a re-run comes back clean.
func TestFixWriteRoundTrip(t *testing.T) {
	path := tempModule(t, brokenSrc)

	if code := run([]string{"-baseline", "", "-fix", "./..."}); code != 1 {
		t.Fatalf("dry-run -fix exit = %d, want 1 (finding present)", code)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != brokenSrc {
		t.Fatalf("dry-run -fix modified the file:\n%s", got)
	}

	if code := run([]string{"-baseline", "", "-fix", "-write", "./..."}); code != 1 {
		t.Fatalf("-fix -write exit = %d, want 1 (the finding still gates this run)", code)
	}
	got, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(got), "lookup(ctx, key)") {
		t.Fatalf("fix not applied:\n%s", got)
	}
	if strings.Contains(string(got), "context.Background") {
		t.Fatalf("context.Background survived the rewrite:\n%s", got)
	}

	if code := run([]string{"-baseline", "", "./..."}); code != 0 {
		t.Fatalf("post-fix lint exit = %d, want 0", code)
	}
}

// TestFixWriteRefusesDirtyBaseline asserts -fix -write refuses to rewrite
// files while a baseline is filtering findings: the rewrite would
// desynchronize the two.
func TestFixWriteRefusesDirtyBaseline(t *testing.T) {
	path := tempModule(t, brokenSrc)

	if code := run([]string{"-baseline", "lint-baseline.json", "-write-baseline", "./..."}); code != 0 {
		t.Fatalf("-write-baseline exit = %d, want 0", code)
	}
	if code := run([]string{"-baseline", "lint-baseline.json", "-fix", "-write", "./..."}); code != 2 {
		t.Fatalf("-fix -write with dirty baseline exit = %d, want 2 (refusal)", code)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != brokenSrc {
		t.Fatalf("file modified despite refusal:\n%s", got)
	}
}

// TestWriteRequiresFix asserts the flag combination is validated before any
// packages load.
func TestWriteRequiresFix(t *testing.T) {
	if code := run([]string{"-write"}); code != 2 {
		t.Fatalf("-write without -fix exit = %d, want 2", code)
	}
}
