// Command slltlint is the repository's static-analysis suite: a
// multichecker driving the custom analyzers in internal/analysis over the
// module. It exists because the paper's comparisons are only meaningful if
// CBS/DME/partitioning are bit-reproducible for a given seed and the unit
// system (µm, fF, kΩ, ps) is used coherently — both properties are too easy
// to regress silently: one `range` over a map, one wall-clock seed, one
// wirelength added to a latency.
//
// Usage:
//
//	go run ./cmd/slltlint [flags] [patterns...]
//
// Patterns default to ./... and are resolved by the go tool.
//
// Exit status:
//
//	0  no findings (after baseline filtering)
//	1  findings
//	2  package load failure, type errors, or internal error
//
// Output defaults to one line per finding; -json emits a machine-readable
// array, -sarif a SARIF 2.1.0 log for code-scanning upload, -fix a dry-run
// diff of every suggested fix. Nothing is written back unless -fix -write
// is given, which applies every suggested fix in place — and refuses to run
// when the baseline filtered any findings, because rewriting files under a
// stale baseline would desynchronize the two.
//
// A committed baseline (-baseline, default .slltlint-baseline.json) lists
// accepted findings so only regressions gate; regenerate it after triage
// with -write-baseline. Suppress an individual finding with a justified
// directive on or above the flagged line, in either form:
//
//	//slltlint:ignore maporder commutative reduction, order cannot leak
//	//lint:ignore unitflow DBU conversion site, checked by hand
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"sllt/internal/analysis"
	"sllt/internal/analysis/hotpath"
	"sllt/internal/analysis/registry"
)

// analyzers is the full roster; registry.All keeps it in one place so the
// CLI, CI and the metadata tests can never disagree about what runs.
var analyzers = registry.All()

func usage(fs *flag.FlagSet) func() {
	return func() {
		fmt.Fprintf(fs.Output(),
			`usage: slltlint [flags] [patterns...]

Runs the repository's custom analyzers (determinism suite + unitflow) over
the packages matched by the patterns (default ./...).

Exit status:
  0  no findings (after baseline filtering)
  1  findings
  2  package load failure, type errors, or internal error

Flags:
`)
		fs.PrintDefaults()
	}
}

func main() {
	os.Exit(run(os.Args[1:]))
}

// run executes one lint invocation; split from main (and parameterized on
// args) so the CLI behavior is testable in-process.
func run(args []string) int {
	fs := flag.NewFlagSet("slltlint", flag.ExitOnError)
	list := fs.Bool("list", false, "list the analyzers and exit")
	verbose := fs.Bool("v", false, "print the packages as they are checked")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	sarifOut := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log")
	fixOut := fs.Bool("fix", false, "print a dry-run diff of every suggested fix (no files are modified unless -write)")
	writeFix := fs.Bool("write", false, "with -fix, apply the suggested fixes in place (refused when the baseline filtered findings)")
	baselinePath := fs.String("baseline", ".slltlint-baseline.json",
		"baseline file of accepted findings; only findings not in it gate (empty string disables)")
	writeBaseline := fs.Bool("write-baseline", false,
		"regenerate the baseline file from the current findings and exit")
	escapeCheck := fs.Bool("escapecheck", false,
		"cross-check hotpath findings against `go build -gcflags=-m` escape diagnostics: compiler-verified escapes inside // hot: alloc-free bodies become findings, compiler-cleared heuristics are dropped, the rest are confidence-tiered")
	fs.Usage = usage(fs)
	fs.Parse(args)

	if *writeFix && !*fixOut {
		fmt.Fprintln(os.Stderr, "slltlint: -write requires -fix")
		return 2
	}

	if *list {
		for _, az := range analyzers {
			fmt.Printf("%-12s %s\n", az.Name, az.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	failed := false
	root := ""
	for _, pkg := range pkgs {
		if root == "" {
			root = pkg.ModDir
		}
		if len(pkg.TypeErrors) > 0 {
			failed = true
			for _, e := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "%s: %v\n", pkg.ImportPath, e)
			}
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "checking %s (%d files)\n", pkg.ImportPath, len(pkg.Files))
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "slltlint: type errors; aborting")
		return 2
	}

	hotpath.SetEscapeCheck(*escapeCheck)
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	if *writeBaseline {
		if *baselinePath == "" {
			fmt.Fprintln(os.Stderr, "slltlint: -write-baseline needs a -baseline path")
			return 2
		}
		b := analysis.NewBaseline(diags, root)
		if err := analysis.WriteBaseline(*baselinePath, b); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "slltlint: wrote %d baseline entr(ies) to %s\n",
			len(b.Findings), *baselinePath)
		return 0
	}

	baselined := 0
	if *baselinePath != "" {
		b, err := analysis.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		before := len(diags)
		diags = b.Filter(diags, root)
		baselined = before - len(diags)
	}

	switch {
	case *sarifOut:
		if err := analysis.WriteSARIF(os.Stdout, diags, analyzers, root); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	case *jsonOut:
		type finding struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := []finding{}
		for _, d := range diags {
			out = append(out, finding{
				File:     analysis.RelPath(root, d.Position.Filename),
				Line:     d.Position.Line,
				Column:   d.Position.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if *fixOut && len(pkgs) > 0 {
		// All packages of one Load share a FileSet, so any package's fset
		// resolves every fix position.
		fset := pkgs[0].Fset
		if *writeFix {
			if baselined > 0 {
				fmt.Fprintf(os.Stderr,
					"slltlint: refusing -fix -write: the baseline filtered %d finding(s); rewriting files would desynchronize it (regenerate with -write-baseline first)\n",
					baselined)
				return 2
			}
			changed, err := analysis.ApplyFixes(fset, diags)
			if err != nil {
				fmt.Fprintf(os.Stderr, "slltlint: %v\n", err)
				return 2
			}
			for _, f := range changed {
				fmt.Fprintf(os.Stderr, "slltlint: rewrote %s\n", analysis.RelPath(root, f))
			}
		} else {
			for _, d := range diags {
				for _, f := range d.Fixes {
					diff, err := analysis.RenderFix(fset, f)
					if err != nil {
						fmt.Fprintf(os.Stderr, "slltlint: %v\n", err)
						continue
					}
					fmt.Print(diff)
				}
			}
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "slltlint: %d finding(s) in %d package(s) checked\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
