// Command slltlint is the repository's determinism lint suite: a
// multichecker driving the custom analyzers in internal/analysis over the
// module. It exists because the paper's comparisons are only meaningful if
// CBS/DME/partitioning are bit-reproducible for a given seed, and that
// property is too easy to regress silently — one `range` over a map or one
// wall-clock seed away.
//
// Usage:
//
//	go run ./cmd/slltlint [-list] [patterns...]
//
// Patterns default to ./... and are resolved by the go tool. Exit status:
// 0 clean, 1 findings, 2 load/internal failure. Suppress an individual
// finding with a justified directive on or above the flagged line:
//
//	//slltlint:ignore maporder commutative reduction, order cannot leak
package main

import (
	"flag"
	"fmt"
	"os"

	"sllt/internal/analysis"
	"sllt/internal/analysis/floatcmp"
	"sllt/internal/analysis/maporder"
	"sllt/internal/analysis/seededrand"
	"sllt/internal/analysis/sharedstate"
	"sllt/internal/analysis/wallclock"
)

var analyzers = []*analysis.Analyzer{
	floatcmp.Analyzer,
	maporder.Analyzer,
	seededrand.Analyzer,
	sharedstate.Analyzer,
	wallclock.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	verbose := flag.Bool("v", false, "print the packages as they are checked")
	flag.Parse()

	if *list {
		for _, az := range analyzers {
			fmt.Printf("%-12s %s\n", az.Name, az.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	failed := false
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			failed = true
			for _, e := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "%s: %v\n", pkg.ImportPath, e)
			}
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "checking %s (%d files)\n", pkg.ImportPath, len(pkg.Files))
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "slltlint: type errors; aborting")
		os.Exit(2)
	}

	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "slltlint: %d finding(s) in %d package(s) checked\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
