package lefdef

import "strconv"

// tokCursor adapts the streaming Scanner to the arbitrary-lookahead access
// pattern of the parsers. Tokens pulled from the scanner are copied into one
// growable byte buffer (offsets, not per-token allocations), so peek(k)
// stays valid across scanner refills; once every buffered token has been
// consumed the buffers recycle, bounding cursor memory by the longest
// statement rather than the file. The cursor also tracks the absolute token
// ordinal, which the LEF diagnostics embed ("at token %d") exactly like the
// legacy slice index.
type tokCursor struct {
	sc   *Scanner
	data []byte // stable bytes of the buffered tokens
	offs []int  // buffered token k is data[offs[k]:offs[k+1]]
	head int    // index of the next unconsumed buffered token
	base int    // absolute ordinal of buffered token 0
	done bool   // scanner exhausted
}

func newTokCursor(sc *Scanner) *tokCursor {
	return &tokCursor{sc: sc, offs: make([]int, 1, 16)}
}

func (c *tokCursor) buffered() int { return len(c.offs) - 1 }

// pos is the absolute ordinal of the next token — the index it would have
// had in the legacy token slice.
func (c *tokCursor) pos() int { return c.base + c.head }

// recycle resets the (fully consumed) buffers so statement-local lookahead
// reuses the same memory for the whole parse.
func (c *tokCursor) recycle() {
	c.base += c.head
	c.head = 0
	c.data = c.data[:0]
	c.offs = c.offs[:1]
}

// peek returns the k-th unconsumed token. The returned slice is valid only
// until the next call that buffers further tokens (a deeper peek or an
// advance past the buffer) — callers copy anything they keep. The
// already-buffered hit is split out so it inlines at the parsers' call
// sites; peekSlow pulls from the scanner.
func (c *tokCursor) peek(k int) ([]byte, bool) {
	if i := c.head + k; i < len(c.offs)-1 {
		return c.data[c.offs[i]:c.offs[i+1]], true
	}
	return c.peekSlow(k)
}

func (c *tokCursor) peekSlow(k int) ([]byte, bool) {
	for c.head+k >= c.buffered() {
		if c.done {
			return nil, false
		}
		if c.head > 0 && c.head == c.buffered() {
			c.recycle()
		}
		tok, ok := c.sc.Next()
		if !ok {
			c.done = true
			return nil, false
		}
		c.data = append(c.data, tok...)
		c.offs = append(c.offs, len(c.data))
	}
	return c.data[c.offs[c.head+k]:c.offs[c.head+k+1]], true
}

// advance consumes n tokens (clamped at end of input, matching the legacy
// parsers' unchecked index arithmetic). The buffered case stays inlinable;
// consuming the last buffered token goes through the slow path so the
// buffers recycle exactly as before.
func (c *tokCursor) advance(n int) {
	if c.head+n < len(c.offs)-1 {
		c.head += n
		return
	}
	c.advanceSlow(n)
}

func (c *tokCursor) advanceSlow(n int) {
	for n > 0 {
		if c.head < c.buffered() {
			c.head++
			n--
			continue
		}
		if _, ok := c.peek(0); !ok {
			return
		}
	}
	if c.head > 0 && c.head == c.buffered() {
		c.recycle()
	}
}

// skipStatement consumes tokens through the next ';' (or to end of input) —
// the cursor form of the legacy skipStatement.
func (c *tokCursor) skipStatement() {
	for {
		t, ok := c.peek(0)
		if !ok {
			return
		}
		c.advance(1)
		if len(t) == 1 && t[0] == ';' {
			return
		}
	}
}

// Token predicates. string(t) == s compiles to an allocation-free compare.

func tokIs(t []byte, s string) bool { return string(t) == s }
func isSemi(t []byte) bool          { return len(t) == 1 && t[0] == ';' }
func isPlus(t []byte) bool          { return len(t) == 1 && t[0] == '+' }
func isStar(t []byte) bool          { return len(t) == 1 && t[0] == '*' }
func isLParen(t []byte) bool        { return len(t) == 1 && t[0] == '(' }
func isRParen(t []byte) bool        { return len(t) == 1 && t[0] == ')' }

// isPunct reports whether t is one of the structural tokens an optional DEF
// orient must not be confused with.
func isPunct(t []byte) bool {
	return len(t) == 1 && (t[0] == ';' || t[0] == '+' || t[0] == '(' || t[0] == ')')
}

// interner deduplicates the bounded vocabulary fields (macro names, orients,
// USE/DIRECTION values, pin and layer names) so a million-component DEF
// allocates each repeated string once. Lookup with a []byte key does not
// allocate; only first-seen values are copied.
type interner struct{ m map[string]string }

func newInterner() *interner { return &interner{m: make(map[string]string, 32)} }

func (it *interner) str(b []byte) string {
	if s, ok := it.m[string(b)]; ok {
		return s
	}
	s := string(b)
	it.m[s] = s
	return s
}

// Numeric token helpers. Each has an allocation-free fast path for the plain
// signed integers DEF/LEF emit, and falls back to the exact strconv call the
// legacy parser used for anything else — acceptance and results are
// bit-identical to ParseFloat/Atoi on every input.

// atofTok mirrors the legacy atof: ParseFloat with errors mapped to 0.
func atofTok(t []byte) float64 {
	if v, ok := fastFloat(t); ok {
		return v
	}
	v, _ := strconv.ParseFloat(string(t), 64)
	return v
}

// atofOKTok mirrors `ParseFloat(tok, 64); err == nil` acceptance.
func atofOKTok(t []byte) (float64, bool) {
	if v, ok := fastFloat(t); ok {
		return v, true
	}
	v, err := strconv.ParseFloat(string(t), 64)
	return v, err == nil
}

// atoiOKTok mirrors `strconv.Atoi(tok); err == nil` acceptance.
func atoiOKTok(t []byte) (int, bool) {
	if v, ok := fastInt(t); ok {
		return v, true
	}
	v, err := strconv.Atoi(string(t))
	return v, err == nil
}

// fastFloat parses an optional sign plus up to 15 decimal digits — integers
// exactly representable in float64, so the value is bit-identical to
// ParseFloat's (including "-0"). Anything longer or non-integer falls back.
func fastFloat(t []byte) (float64, bool) {
	i := 0
	neg := false
	if len(t) > 0 && (t[0] == '+' || t[0] == '-') {
		neg = t[0] == '-'
		i = 1
	}
	if len(t)-i == 0 || len(t)-i > 15 {
		return 0, false
	}
	var v uint64
	for ; i < len(t); i++ {
		c := t[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + uint64(c-'0')
	}
	f := float64(v)
	if neg {
		f = -f
	}
	return f, true
}

// fastInt parses an optional sign plus up to 18 decimal digits (never
// overflows int64), matching Atoi's result on that subset.
func fastInt(t []byte) (int, bool) {
	i := 0
	neg := false
	if len(t) > 0 && (t[0] == '+' || t[0] == '-') {
		neg = t[0] == '-'
		i = 1
	}
	if len(t)-i == 0 || len(t)-i > 18 {
		return 0, false
	}
	var v int64
	for ; i < len(t); i++ {
		c := t[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + int64(c-'0')
	}
	if neg {
		v = -v
	}
	return int(v), true
}
