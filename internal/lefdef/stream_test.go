package lefdef

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// ---- differential harness: streaming vs legacy ----

func diffDEF(t *testing.T, label, src string) {
	t.Helper()
	ld, lerr := ParseDEFLegacy(src)
	sd, serr := ParseDEF(src)
	diffCheck(t, label+" (string)", ld, lerr, sd, serr)
	cd, cerr := ParseDEFReader(&chunkReader{data: []byte(src), n: 3})
	diffCheck(t, label+" (chunked reader)", ld, lerr, cd, cerr)
}

func diffLEF(t *testing.T, label, src string) {
	t.Helper()
	ll, lerr := ParseLEFLegacy(src)
	sl, serr := ParseLEF(src)
	diffCheck(t, label+" (string)", ll, lerr, sl, serr)
	cl, cerr := ParseLEFReader(&chunkReader{data: []byte(src), n: 3})
	diffCheck(t, label+" (chunked reader)", ll, lerr, cl, cerr)
}

func diffCheck(t *testing.T, label string, legacy any, lerr error, stream any, serr error) {
	t.Helper()
	if (lerr == nil) != (serr == nil) || (lerr != nil && lerr.Error() != serr.Error()) {
		t.Fatalf("%s: error mismatch:\nlegacy: %v\nstream: %v", label, lerr, serr)
	}
	if lerr == nil && !reflect.DeepEqual(legacy, stream) {
		t.Fatalf("%s: parsed struct mismatch:\nlegacy: %#v\nstream: %#v", label, legacy, stream)
	}
}

// chunkReader serves at most n bytes per Read, forcing the Scanner through
// its refill paths on every token.
type chunkReader struct {
	data []byte
	n    int
}

func (r *chunkReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	n := r.n
	if n > len(r.data) {
		n = len(r.data)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, r.data[:n])
	r.data = r.data[n:]
	return n, nil
}

// failReader serves its data, then fails.
type failReader struct {
	data []byte
	err  error
}

func (r *failReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, r.err
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	return n, nil
}

// ---- fuzz corpus replay ----

// decodeCorpusEntry decodes one committed `go test fuzz v1` corpus file with
// a single string argument.
func decodeCorpusEntry(s string) (string, bool) {
	header, body, ok := strings.Cut(s, "\n")
	if !ok || !strings.HasPrefix(header, "go test fuzz v1") {
		return "", false
	}
	body = strings.TrimSpace(body)
	body = strings.TrimPrefix(body, "string(")
	body = strings.TrimSuffix(body, ")")
	u, err := strconv.Unquote(body)
	return u, err == nil
}

func corpusEntries(t *testing.T, dir string) map[string]string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read corpus dir: %v", err)
	}
	out := make(map[string]string, len(ents))
	for _, e := range ents {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		s, ok := decodeCorpusEntry(string(b))
		if !ok {
			t.Fatalf("undecodable corpus entry %s", e.Name())
		}
		out[e.Name()] = s
	}
	return out
}

func TestStreamDEFMatchesLegacyOverCorpus(t *testing.T) {
	for name, src := range corpusEntries(t, "testdata/fuzz/FuzzParseDEF") {
		diffDEF(t, name, src)
	}
}

func TestStreamLEFMatchesLegacyOverCorpus(t *testing.T) {
	for name, src := range corpusEntries(t, "testdata/fuzz/FuzzParseLEF") {
		diffLEF(t, name, src)
	}
}

func TestStreamMatchesLegacyOverFixtures(t *testing.T) {
	golden, err := os.ReadFile("../cts/testdata/export_golden.def")
	if err != nil {
		t.Fatal(err)
	}
	defs := map[string]string{
		"sampleDEF":     sampleDEF,
		"export_golden": string(golden),
		"empty":         "",
		"missingDesign": "VERSION 5.8 ;",
		"routesStar":    "DESIGN d ;\nNETS 1 ;\n- n + ROUTED M1 ( 1 2 ) ( * 3 ) NEW M2 ( 4 5 ) ;\nEND NETS\n",
		"nbsp":          "DESIGN d ;\nDESIGN e ;",
		"invalidUTF8":   "DESIGN d\xff\xfe ;",
		"hostileCount":  "DESIGN d ;\nCOMPONENTS 99999999999999999999 ;\nEND COMPONENTS\n",
		"longComment":   "DESIGN d ; #" + strings.Repeat("c", 3*defaultScanBuf) + "\nVERSION 5.8 ;",
		"longToken":     "DESIGN " + strings.Repeat("n", 2*defaultScanBuf) + " ;",
	}
	for name, src := range defs {
		diffDEF(t, name, src)
	}
	diffLEF(t, "sampleLEF", sampleLEF)
}

// ---- CRLF fixtures (satellite: \r\n must behave exactly like \n) ----

func TestCRLFFixtures(t *testing.T) {
	for _, tc := range []struct{ path string }{{"testdata/crlf.def"}, {"testdata/crlf.lef"}} {
		b, err := os.ReadFile(tc.path)
		if err != nil {
			t.Fatal(err)
		}
		src := string(b)
		if !strings.Contains(src, "\r\n") {
			t.Fatalf("%s: fixture lost its CRLF endings", tc.path)
		}
		lf := strings.ReplaceAll(src, "\r\n", "\n")
		if strings.HasSuffix(tc.path, ".def") {
			diffDEF(t, tc.path, src)
			crlfDef, err := ParseDEF(src)
			if err != nil {
				t.Fatalf("%s: %v", tc.path, err)
			}
			lfDef, err := ParseDEF(lf)
			if err != nil {
				t.Fatalf("%s (LF): %v", tc.path, err)
			}
			if !reflect.DeepEqual(crlfDef, lfDef) {
				t.Fatalf("%s: CRLF and LF parses differ", tc.path)
			}
		} else {
			diffLEF(t, tc.path, src)
			crlfLef, err := ParseLEF(src)
			if err != nil {
				t.Fatalf("%s: %v", tc.path, err)
			}
			lfLef, err := ParseLEF(lf)
			if err != nil {
				t.Fatalf("%s (LF): %v", tc.path, err)
			}
			if !reflect.DeepEqual(crlfLef, lfLef) {
				t.Fatalf("%s: CRLF and LF parses differ", tc.path)
			}
		}
	}
}

// ---- scanner vs legacy tokenize ----

func TestScannerMatchesLegacyTokenize(t *testing.T) {
	inputs := []string{
		sampleDEF,
		sampleLEF,
		"",
		"a#comment\nb",
		"a#comment\rstill\nb",
		"x\r\ny",
		"(;)",
		"a(b;c)d",
		"nbsp separated",
		"\xff\xfe raw bytes",
		"truncated rune \xe2\x82",
		"#only a comment",
		"trailing#",
		"#" + strings.Repeat("c", 3*defaultScanBuf) + "\nafter",
		strings.Repeat("t", 2*defaultScanBuf) + " tail",
		"\v\f\t mixed \r blanks",
	}
	for i, src := range inputs {
		want := tokenize(src)
		for _, chunk := range []int{0, 1, 7} {
			var r io.Reader = strings.NewReader(src)
			if chunk > 0 {
				r = &chunkReader{data: []byte(src), n: chunk}
			}
			sc := NewScanner(r)
			var got []string
			for {
				tok, ok := sc.Next()
				if !ok {
					break
				}
				got = append(got, string(tok))
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("input %d chunk %d: tokens differ:\nscanner: %q\nlegacy:  %q", i, chunk, got, want)
			}
			if sc.Err() != nil {
				t.Fatalf("input %d: unexpected scanner error %v", i, sc.Err())
			}
		}
	}
}

func TestReaderErrorSurfaced(t *testing.T) {
	boom := errors.New("disk on fire")
	if _, err := ParseDEFReader(&failReader{data: []byte("DESIGN d ;\nCOMPO"), err: boom}); err == nil || !errors.Is(err, boom) || !strings.HasPrefix(err.Error(), "def: read:") {
		t.Fatalf("DEF read error not surfaced: %v", err)
	}
	if _, err := ParseLEFReader(&failReader{data: []byte("MACRO m\n"), err: boom}); err == nil || !errors.Is(err, boom) || !strings.HasPrefix(err.Error(), "lef: read:") {
		t.Fatalf("LEF read error not surfaced: %v", err)
	}
}

// ---- writer identity ----

func TestWriteDEFMatchesLegacy(t *testing.T) {
	golden, err := os.ReadFile("../cts/testdata/export_golden.def")
	if err != nil {
		t.Fatal(err)
	}
	for label, src := range map[string]string{"sample": sampleDEF, "golden": string(golden)} {
		d, err := ParseDEF(src)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		want := d.WriteDEFLegacy()
		if got := d.WriteDEF(); got != want {
			t.Fatalf("%s: WriteDEF differs from legacy writer", label)
		}
		var sb strings.Builder
		n, err := d.WriteTo(&sb)
		if err != nil || n != int64(len(want)) || sb.String() != want {
			t.Fatalf("%s: WriteTo = (%d, %v), want (%d, nil) with identical bytes", label, n, err, len(want))
		}
	}
	// Empty-valued DEF exercises the default-orient and empty-section paths.
	empty := &DEF{Design: "e", DBU: 100, Components: []Component{{Name: "c", Macro: "M"}}}
	if empty.WriteDEF() != empty.WriteDEFLegacy() {
		t.Fatal("empty DEF: WriteDEF differs from legacy writer")
	}
}

func TestWriteLEFMatchesLegacy(t *testing.T) {
	l, err := ParseLEF(sampleLEF)
	if err != nil {
		t.Fatal(err)
	}
	want := l.writeLEFLegacy()
	if got := l.WriteLEF(); got != want {
		t.Fatal("WriteLEF differs from legacy writer")
	}
	var sb strings.Builder
	if n, err := l.WriteTo(&sb); err != nil || n != int64(len(want)) || sb.String() != want {
		t.Fatalf("WriteTo = (%d, %v), want (%d, nil) with identical bytes", n, err, len(want))
	}
}

func TestWriteToPropagatesWriteError(t *testing.T) {
	d, err := ParseDEF(sampleDEF)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("pipe closed")
	if _, werr := d.WriteTo(&failWriter{err: boom}); !errors.Is(werr, boom) {
		t.Fatalf("WriteTo error = %v, want %v", werr, boom)
	}
}

type failWriter struct{ err error }

func (w *failWriter) Write(p []byte) (int, error) { return 0, w.err }
