package lefdef

import "testing"

// Guard fixtures: token-stream fragments exercising the comment, UTF-8 and
// punctuation branches, a preallocated append buffer, and sinks that keep the
// compiler from discarding the guarded calls.
var (
	guardScanData  = []byte("  # comment line\n  COMPONENTS 42 ;\n")
	guardTokenData = []byte("clkbuf_0001(x")
	guardAppendBuf = make([]byte, 0, 64)

	guardSinkN int
	guardSinkB bool
	guardSinkS []byte
)

// allocFreeGuards pins every // hot: alloc-free kernel in this package at
// zero steady-state allocations, keyed by the kernel's display name. The
// guardcov test in internal/analysis/hotpath checks the map stays in sync
// with the annotations.
var allocFreeGuards = map[string]func(){
	"skipBlanks": func() {
		guardSinkN, guardSinkB, _ = skipBlanks(guardScanData, false, true)
	},
	"scanToken": func() {
		guardSinkN, guardSinkB = scanToken(guardTokenData, true, 0)
	},
	"appendInt": func() {
		guardSinkS = appendInt(guardAppendBuf[:0], -1234567)
	},
	"appendScaled": func() {
		guardSinkS = appendScaled(guardAppendBuf[:0], 123.4567, 1000)
	},
	"appendFixed4": func() {
		guardSinkS = appendFixed4(guardAppendBuf[:0], 3.14159)
	},
}

func TestAllocFreeGuards(t *testing.T) {
	for name, fn := range allocFreeGuards {
		fn() // warm up any first-call growth before measuring
		if n := testing.AllocsPerRun(100, fn); n != 0 {
			t.Errorf("%s allocates %.1f times per op, want 0", name, n)
		}
	}
}
