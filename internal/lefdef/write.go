package lefdef

import (
	"io"
	"strconv"
)

// emitFlushAt is the emitter's flush threshold: output is handed to the
// underlying writer in chunks of roughly this size, so writer memory is
// O(buffer) regardless of document size.
const emitFlushAt = 32 * 1024

// emitter buffers formatted output and flushes it to w in bounded chunks.
// The first write error is sticky; subsequent output is formatted into the
// (repeatedly reset) buffer but never written.
type emitter struct {
	w   io.Writer
	buf []byte
	n   int64
	err error
}

func newEmitter(w io.Writer) *emitter {
	return &emitter{w: w, buf: make([]byte, 0, emitFlushAt+512)}
}

func (e *emitter) flush() {
	if e.err == nil && len(e.buf) > 0 {
		n, err := e.w.Write(e.buf)
		e.n += int64(n)
		if err != nil {
			e.err = err
		}
	}
	e.buf = e.buf[:0]
}

// line marks a statement boundary: flush once the buffer has a chunk's worth.
func (e *emitter) line() {
	if len(e.buf) >= emitFlushAt {
		e.flush()
	}
}

func (e *emitter) str(s string)        { e.buf = append(e.buf, s...) }
func (e *emitter) intv(v int)          { e.buf = appendInt(e.buf, v) }
func (e *emitter) scaled(v, s float64) { e.buf = appendScaled(e.buf, v, s) }
func (e *emitter) fixed4(v float64)    { e.buf = appendFixed4(e.buf, v) }

// appendInt formats v exactly like fmt's %d.
//
// hot: alloc-free
func appendInt(dst []byte, v int) []byte {
	return strconv.AppendInt(dst, int64(v), 10)
}

// appendScaled formats int(v*scale) exactly like the legacy writers'
// fmt.Fprintf("%d", int(v*scale)) — same float-to-int truncation, same
// decimal rendering.
//
// hot: alloc-free
func appendScaled(dst []byte, v, scale float64) []byte {
	return strconv.AppendInt(dst, int64(int(v*scale)), 10)
}

// appendFixed4 formats v exactly like fmt's %.4f.
//
// hot: alloc-free
func appendFixed4(dst []byte, v float64) []byte {
	return strconv.AppendFloat(dst, v, 'f', 4, 64)
}

// WriteTo streams DEF-lite source to w, byte-identical to WriteDEFLegacy,
// without materializing the document: formatting goes through an append
// buffer flushed in bounded chunks. It implements io.WriterTo.
func (d *DEF) WriteTo(w io.Writer) (int64, error) {
	e := newEmitter(w)
	v := d.Version
	if v == "" {
		v = "5.8"
	}
	scale := float64(d.DBU)
	e.str("VERSION ")
	e.str(v)
	e.str(" ;\nDESIGN ")
	e.str(d.Design)
	e.str(" ;\nUNITS DISTANCE MICRONS ")
	e.intv(d.DBU)
	e.str(" ;\nDIEAREA ( ")
	e.scaled(d.Die.XLo, scale)
	e.str(" ")
	e.scaled(d.Die.YLo, scale)
	e.str(" ) ( ")
	e.scaled(d.Die.XHi, scale)
	e.str(" ")
	e.scaled(d.Die.YHi, scale)
	e.str(" ) ;\n\nCOMPONENTS ")
	e.intv(len(d.Components))
	e.str(" ;\n")
	for i := range d.Components {
		c := &d.Components[i]
		orient := c.Orient
		if orient == "" {
			orient = "N"
		}
		e.str("  - ")
		e.str(c.Name)
		e.str(" ")
		e.str(c.Macro)
		e.str(" + PLACED ( ")
		e.scaled(c.Loc.X, scale)
		e.str(" ")
		e.scaled(c.Loc.Y, scale)
		e.str(" ) ")
		e.str(orient)
		e.str(" ;\n")
		e.line()
	}
	e.str("END COMPONENTS\n\nPINS ")
	e.intv(len(d.Pins))
	e.str(" ;\n")
	for i := range d.Pins {
		p := &d.Pins[i]
		e.str("  - ")
		e.str(p.Name)
		e.str(" + NET ")
		e.str(p.Net)
		if p.Direction != "" {
			e.str(" + DIRECTION ")
			e.str(p.Direction)
		}
		if p.Use != "" {
			e.str(" + USE ")
			e.str(p.Use)
		}
		e.str(" + PLACED ( ")
		e.scaled(p.Loc.X, scale)
		e.str(" ")
		e.scaled(p.Loc.Y, scale)
		e.str(" ) N ;\n")
		e.line()
	}
	e.str("END PINS\n\nNETS ")
	e.intv(len(d.Nets))
	e.str(" ;\n")
	for i := range d.Nets {
		n := &d.Nets[i]
		e.str("  - ")
		e.str(n.Name)
		for k := range n.Conns {
			if k%4 == 0 {
				e.str("\n   ")
			}
			e.str(" ( ")
			e.str(n.Conns[k].Comp)
			e.str(" ")
			e.str(n.Conns[k].Pin)
			e.str(" )")
			e.line()
		}
		if n.Use != "" {
			e.str("\n    + USE ")
			e.str(n.Use)
		}
		for ri := range n.Routes {
			r := &n.Routes[ri]
			if ri == 0 {
				e.str("\n    + ROUTED ")
			} else {
				e.str("\n      NEW ")
			}
			e.str(r.Layer)
			for _, p := range r.Points {
				e.str(" ( ")
				e.scaled(p.X, scale)
				e.str(" ")
				e.scaled(p.Y, scale)
				e.str(" )")
			}
			e.line()
		}
		e.str(" ;\n")
		e.line()
	}
	e.str("END NETS\n\nEND DESIGN\n")
	e.flush()
	return e.n, e.err
}

// WriteTo streams LEF-lite source to w, byte-identical to the legacy string
// writer. It implements io.WriterTo.
func (l *LEF) WriteTo(w io.Writer) (int64, error) {
	e := newEmitter(w)
	v := l.Version
	if v == "" {
		v = "5.8"
	}
	e.str("VERSION ")
	e.str(v)
	e.str(" ;\nUNITS\n  DATABASE MICRONS ")
	e.intv(l.DBU)
	e.str(" ;\nEND UNITS\n\n")
	for _, m := range l.Macros {
		e.str("MACRO ")
		e.str(m.Name)
		e.str("\n")
		if m.Class != "" {
			e.str("  CLASS ")
			e.str(m.Class)
			e.str(" ;\n")
		}
		e.str("  SIZE ")
		e.fixed4(m.W)
		e.str(" BY ")
		e.fixed4(m.H)
		e.str(" ;\n")
		for i := range m.Pins {
			p := &m.Pins[i]
			e.str("  PIN ")
			e.str(p.Name)
			e.str("\n")
			if p.Direction != "" {
				e.str("    DIRECTION ")
				e.str(p.Direction)
				e.str(" ;\n")
			}
			if p.Use != "" {
				e.str("    USE ")
				e.str(p.Use)
				e.str(" ;\n")
			}
			if p.Cap != 0 {
				e.str("    CAPACITANCE ")
				e.fixed4(p.Cap)
				e.str(" ;\n")
			}
			e.str("  END ")
			e.str(p.Name)
			e.str("\n")
			e.line()
		}
		e.str("END ")
		e.str(m.Name)
		e.str("\n\n")
		e.line()
	}
	e.str("END LIBRARY\n")
	e.flush()
	return e.n, e.err
}
