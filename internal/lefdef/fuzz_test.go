package lefdef

import "testing"

// FuzzParseDEF asserts ParseDEF returns errors — never panics — on
// arbitrary input, and that any DEF it accepts survives a write/reparse
// round trip (WriteDEF output is always parseable).
func FuzzParseDEF(f *testing.F) {
	f.Add(sampleDEF)
	f.Add("VERSION")
	f.Add("DESIGN")
	f.Add("DESIGN d ;\nCOMPONENTS 1 ;\n- a")
	f.Add("DESIGN d ;\nPINS 1 ;\n- p + NET")
	f.Add("DESIGN d ;\nNETS 1 ;\n- n ( a b ) + USE")
	f.Add("DESIGN d ;\nNETS 1 ;\n- n + ROUTED M1 ( 1 2 ) ( * 3")
	f.Add("DESIGN d ;\nUNITS DISTANCE MICRONS 0 ;\nDIEAREA ( 0 0 ) ( 5 5 ) ;")
	f.Fuzz(func(t *testing.T, src string) {
		def, err := ParseDEF(src)
		if err != nil {
			return
		}
		if _, err := ParseDEF(def.WriteDEF()); err != nil {
			t.Fatalf("round trip of accepted DEF failed: %v", err)
		}
	})
}

// FuzzParseLEF asserts ParseLEF returns errors — never panics — on
// arbitrary input, and that any LEF it accepts round-trips through
// WriteLEF.
func FuzzParseLEF(f *testing.F) {
	f.Add(sampleLEF)
	f.Add("MACRO")
	f.Add("MACRO m\nPIN")
	f.Add("MACRO m\nPIN p\nDIRECTION")
	f.Add("MACRO m\nPIN p\nCAPACITANCE")
	f.Add("UNITS\nDATABASE MICRONS x")
	f.Fuzz(func(t *testing.T, src string) {
		lef, err := ParseLEF(src)
		if err != nil {
			return
		}
		if _, err := ParseLEF(lef.WriteLEF()); err != nil {
			t.Fatalf("round trip of accepted LEF failed: %v", err)
		}
	})
}
