package lefdef

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// FuzzParseDEF asserts ParseDEF returns errors — never panics — on
// arbitrary input, and that any DEF it accepts survives a write/reparse
// round trip (WriteDEF output is always parseable).
func FuzzParseDEF(f *testing.F) {
	f.Add(sampleDEF)
	f.Add("VERSION")
	f.Add("DESIGN")
	f.Add("DESIGN d ;\nCOMPONENTS 1 ;\n- a")
	f.Add("DESIGN d ;\nPINS 1 ;\n- p + NET")
	f.Add("DESIGN d ;\nNETS 1 ;\n- n ( a b ) + USE")
	f.Add("DESIGN d ;\nNETS 1 ;\n- n + ROUTED M1 ( 1 2 ) ( * 3")
	f.Add("DESIGN d ;\nUNITS DISTANCE MICRONS 0 ;\nDIEAREA ( 0 0 ) ( 5 5 ) ;")
	f.Fuzz(func(t *testing.T, src string) {
		def, err := ParseDEF(src)
		if err != nil {
			return
		}
		if _, err := ParseDEF(def.WriteDEF()); err != nil {
			t.Fatalf("round trip of accepted DEF failed: %v", err)
		}
	})
}

// FuzzParseDEFReader differentially fuzzes the streaming parser against the
// retained legacy parser: on every input both must agree on acceptance, on
// the error message, and on the parsed structure, and accepted structures
// must write identically through the streaming and legacy writers. Seeded
// from the committed FuzzParseDEF corpus so every legacy-parser regression
// input constrains the streaming path too.
func FuzzParseDEFReader(f *testing.F) {
	if ents, err := os.ReadDir("testdata/fuzz/FuzzParseDEF"); err == nil {
		for _, e := range ents {
			b, err := os.ReadFile(filepath.Join("testdata/fuzz/FuzzParseDEF", e.Name()))
			if err != nil {
				continue
			}
			if s, ok := decodeCorpusEntry(string(b)); ok {
				f.Add(s)
			}
		}
	}
	f.Add(sampleDEF)
	f.Fuzz(func(t *testing.T, src string) {
		ld, lerr := ParseDEFLegacy(src)
		sd, serr := ParseDEFReader(strings.NewReader(src))
		if (lerr == nil) != (serr == nil) || (lerr != nil && lerr.Error() != serr.Error()) {
			t.Fatalf("error mismatch:\nlegacy: %v\nstream: %v", lerr, serr)
		}
		if lerr != nil {
			return
		}
		if !reflect.DeepEqual(ld, sd) {
			t.Fatalf("parsed struct mismatch:\nlegacy: %#v\nstream: %#v", ld, sd)
		}
		if sd.WriteDEF() != ld.WriteDEFLegacy() {
			t.Fatal("streaming and legacy writers disagree on accepted DEF")
		}
	})
}

// FuzzParseLEF asserts ParseLEF returns errors — never panics — on
// arbitrary input, and that any LEF it accepts round-trips through
// WriteLEF.
func FuzzParseLEF(f *testing.F) {
	f.Add(sampleLEF)
	f.Add("MACRO")
	f.Add("MACRO m\nPIN")
	f.Add("MACRO m\nPIN p\nDIRECTION")
	f.Add("MACRO m\nPIN p\nCAPACITANCE")
	f.Add("UNITS\nDATABASE MICRONS x")
	f.Fuzz(func(t *testing.T, src string) {
		lef, err := ParseLEF(src)
		if err != nil {
			return
		}
		if _, err := ParseLEF(lef.WriteLEF()); err != nil {
			t.Fatalf("round trip of accepted LEF failed: %v", err)
		}
	})
}
