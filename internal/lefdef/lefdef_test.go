package lefdef

import (
	"strings"
	"testing"

	"sllt/internal/geom"
)

const sampleLEF = `
VERSION 5.8 ;
UNITS
  DATABASE MICRONS 1000 ;
END UNITS

# flip-flop with a clock pin
MACRO DFFQX1
  CLASS CORE ;
  SIZE 1.4 BY 1.8 ;
  PIN CK
    DIRECTION INPUT ;
    USE CLOCK ;
    CAPACITANCE 1.2 ;
  END CK
  PIN D
    DIRECTION INPUT ;
    USE SIGNAL ;
    CAPACITANCE 0.8 ;
  END D
  PIN Q
    DIRECTION OUTPUT ;
  END Q
END DFFQX1

MACRO CLKBUFX4
  CLASS CORE ;
  SIZE 1.0 BY 1.6 ;
  PIN A
    DIRECTION INPUT ;
    CAPACITANCE 1.8 ;
  END A
  PIN Y
    DIRECTION OUTPUT ;
  END Y
END CLKBUFX4

END LIBRARY
`

const sampleDEF = `
VERSION 5.8 ;
DESIGN demo ;
UNITS DISTANCE MICRONS 1000 ;
DIEAREA ( 0 0 ) ( 100000 80000 ) ;

COMPONENTS 3 ;
  - ff_1 DFFQX1 + PLACED ( 10000 20000 ) N ;
  - ff_2 DFFQX1 + PLACED ( 50000 60000 ) FS ;
  - u_logic NAND2X1 + PLACED ( 30000 30000 ) N ;
END COMPONENTS

PINS 1 ;
  - clk + NET clk + DIRECTION INPUT + USE CLOCK + PLACED ( 0 40000 ) N ;
END PINS

NETS 1 ;
  - clk ( PIN clk ) ( ff_1 CK ) ( ff_2 CK ) + USE CLOCK ;
END NETS

END DESIGN
`

func TestParseLEF(t *testing.T) {
	lef, err := ParseLEF(sampleLEF)
	if err != nil {
		t.Fatal(err)
	}
	if lef.DBU != 1000 {
		t.Errorf("DBU = %d", lef.DBU)
	}
	if len(lef.Macros) != 2 {
		t.Fatalf("macros = %d", len(lef.Macros))
	}
	ff := lef.FindMacro("DFFQX1")
	if ff == nil {
		t.Fatal("DFFQX1 missing")
	}
	if ff.W != 1.4 || ff.H != 1.8 || ff.Class != "CORE" {
		t.Errorf("DFFQX1 = %+v", ff)
	}
	ck := ff.ClockPin()
	if ck == nil || ck.Name != "CK" || ck.Cap != 1.2 {
		t.Errorf("clock pin = %+v", ck)
	}
	if lef.FindMacro("CLKBUFX4").ClockPin() != nil {
		t.Error("buffer should have no clock-use pin")
	}
}

func TestParseDEF(t *testing.T) {
	def, err := ParseDEF(sampleDEF)
	if err != nil {
		t.Fatal(err)
	}
	if def.Design != "demo" || def.DBU != 1000 {
		t.Errorf("header: %s %d", def.Design, def.DBU)
	}
	if def.Die.XHi != 100 || def.Die.YHi != 80 {
		t.Errorf("die = %+v", def.Die)
	}
	if len(def.Components) != 3 {
		t.Fatalf("components = %d", len(def.Components))
	}
	ff1 := def.FindComponent("ff_1")
	if ff1 == nil || !ff1.Loc.Eq(geom.Pt(10, 20)) || !ff1.Placed {
		t.Errorf("ff_1 = %+v", ff1)
	}
	if ff2 := def.FindComponent("ff_2"); ff2.Orient != "FS" {
		t.Errorf("ff_2 orient = %q", ff2.Orient)
	}
	pin := def.FindPin("clk")
	if pin == nil || pin.Use != "CLOCK" || !pin.Loc.Eq(geom.Pt(0, 40)) {
		t.Errorf("clk pin = %+v", pin)
	}
	net := def.FindNet("clk")
	if net == nil || len(net.Conns) != 3 || net.Use != "CLOCK" {
		t.Fatalf("clk net = %+v", net)
	}
	if net.Conns[0].Comp != "PIN" || net.Conns[0].Pin != "clk" {
		t.Errorf("conn 0 = %+v", net.Conns[0])
	}
	if net.Conns[1].Comp != "ff_1" || net.Conns[1].Pin != "CK" {
		t.Errorf("conn 1 = %+v", net.Conns[1])
	}
}

func TestLEFRoundTrip(t *testing.T) {
	lef, err := ParseLEF(sampleLEF)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseLEF(lef.WriteLEF())
	if err != nil {
		t.Fatalf("re-parse emitted LEF: %v", err)
	}
	if len(again.Macros) != len(lef.Macros) {
		t.Fatalf("round trip lost macros: %d != %d", len(again.Macros), len(lef.Macros))
	}
	for i, m := range lef.Macros {
		m2 := again.Macros[i]
		if m.Name != m2.Name || m.W != m2.W || m.H != m2.H || len(m.Pins) != len(m2.Pins) {
			t.Errorf("macro %s changed in round trip", m.Name)
		}
	}
}

func TestDEFRoundTrip(t *testing.T) {
	def, err := ParseDEF(sampleDEF)
	if err != nil {
		t.Fatal(err)
	}
	out := def.WriteDEF()
	again, err := ParseDEF(out)
	if err != nil {
		t.Fatalf("re-parse emitted DEF: %v\n%s", err, out)
	}
	if again.Design != def.Design || len(again.Components) != len(def.Components) ||
		len(again.Pins) != len(def.Pins) || len(again.Nets) != len(def.Nets) {
		t.Fatal("round trip changed structure")
	}
	if !again.FindComponent("ff_2").Loc.Eq(geom.Pt(50, 60)) {
		t.Error("component location changed in round trip")
	}
	if len(again.FindNet("clk").Conns) != 3 {
		t.Error("net conns changed in round trip")
	}
}

func TestParseDEFErrors(t *testing.T) {
	if _, err := ParseDEF("VERSION 5.8 ;"); err == nil {
		t.Error("missing DESIGN should error")
	}
	bad := strings.Replace(sampleDEF, "- ff_1", "ff_1", 1)
	if _, err := ParseDEF(bad); err == nil {
		t.Error("malformed COMPONENTS should error")
	}
}
