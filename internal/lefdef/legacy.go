package lefdef

// The legacy whole-string tokenizer, parsers and writers are retained here
// verbatim as the reference implementations the differential tests (and the
// I/O benchmarks) compare the streaming paths against. They materialize the
// full token slice — one allocation per line and per punctuation rewrite —
// which is exactly the O(file)+O(tokens) footprint the streaming Scanner
// replaces; keeping them compiled and tested is what pins the two paths
// byte-identical.

import (
	"fmt"
	"strconv"
	"strings"

	"sllt/internal/geom"
)

// ParseDEFLegacy parses DEF-lite source with the retained whole-string
// reference parser. ParseDEF (the streaming path) must agree with it on
// every input, value for value and error for error.
func ParseDEFLegacy(src string) (*DEF, error) {
	toks := tokenize(src)
	def := &DEF{DBU: 1000}
	i := 0
	for i < len(toks) {
		switch toks[i] {
		case "VERSION":
			if i+1 < len(toks) {
				def.Version = toks[i+1]
			}
			i = skipStatement(toks, i)
		case "DESIGN":
			if i+1 < len(toks) {
				def.Design = toks[i+1]
			}
			i = skipStatement(toks, i)
		case "UNITS":
			// UNITS DISTANCE MICRONS n ;
			for j := i; j < len(toks) && toks[j] != ";"; j++ {
				if toks[j] == "MICRONS" && j+1 < len(toks) {
					if v, err := strconv.Atoi(toks[j+1]); err == nil {
						def.DBU = v
					}
				}
			}
			i = skipStatement(toks, i)
		case "DIEAREA":
			// DIEAREA ( x1 y1 ) ( x2 y2 ) ;
			var nums []float64
			for j := i; j < len(toks) && toks[j] != ";"; j++ {
				if v, err := strconv.ParseFloat(toks[j], 64); err == nil {
					nums = append(nums, v)
				}
			}
			if len(nums) >= 4 {
				s := float64(def.DBU)
				def.Die = geom.Rect{XLo: nums[0] / s, YLo: nums[1] / s, XHi: nums[2] / s, YHi: nums[3] / s}
			}
			i = skipStatement(toks, i)
		case "COMPONENTS":
			next, err := def.parseComponents(toks, i)
			if err != nil {
				return nil, err
			}
			i = next
		case "PINS":
			next, err := def.parsePins(toks, i)
			if err != nil {
				return nil, err
			}
			i = next
		case "NETS":
			next, err := def.parseNets(toks, i)
			if err != nil {
				return nil, err
			}
			i = next
		case "END":
			i += 2
		default:
			i = skipStatement(toks, i)
		}
	}
	if def.Design == "" {
		return nil, fmt.Errorf("def: missing DESIGN statement")
	}
	return def, nil
}

func (d *DEF) parseComponents(toks []string, i int) (int, error) {
	i = skipStatement(toks, i) // consume "COMPONENTS n ;"
	scale := float64(d.DBU)
	for i < len(toks) {
		if toks[i] == "END" {
			return i + 2, nil // END COMPONENTS
		}
		if toks[i] != "-" {
			return i, fmt.Errorf("def: expected '-' in COMPONENTS, got %q", toks[i])
		}
		if i+2 >= len(toks) {
			return i, fmt.Errorf("def: truncated COMPONENTS entry")
		}
		c := Component{Name: toks[i+1], Macro: toks[i+2]}
		j := i + 3
		for j < len(toks) && toks[j] != ";" {
			if (toks[j] == "PLACED" || toks[j] == "FIXED") && j+4 < len(toks) && toks[j+1] == "(" {
				c.Placed = true
				c.Loc = geom.Pt(atof(toks[j+2])/scale, atof(toks[j+3])/scale)
				// The orient is optional; punctuation after ")" means it
				// was omitted (grabbing it would corrupt WriteDEF output).
				if j+5 < len(toks) && toks[j+4] == ")" {
					if o := toks[j+5]; o != ";" && o != "+" && o != "(" && o != ")" {
						c.Orient = o
					}
				}
				j += 5
				continue
			}
			j++
		}
		d.Components = append(d.Components, c)
		i = j + 1
	}
	return i, fmt.Errorf("def: COMPONENTS not terminated")
}

func (d *DEF) parsePins(toks []string, i int) (int, error) {
	i = skipStatement(toks, i)
	scale := float64(d.DBU)
	for i < len(toks) {
		if toks[i] == "END" {
			return i + 2, nil
		}
		if toks[i] != "-" {
			return i, fmt.Errorf("def: expected '-' in PINS, got %q", toks[i])
		}
		if i+1 >= len(toks) {
			return i, fmt.Errorf("def: truncated PINS entry")
		}
		p := IOPin{Name: toks[i+1]}
		j := i + 2
		for j < len(toks) && toks[j] != ";" {
			switch toks[j] {
			case "NET":
				if j+1 < len(toks) {
					p.Net = toks[j+1]
				}
				j++
			case "DIRECTION":
				if j+1 < len(toks) {
					p.Direction = toks[j+1]
				}
				j++
			case "USE":
				if j+1 < len(toks) {
					p.Use = toks[j+1]
				}
				j++
			case "PLACED", "FIXED":
				if j+3 < len(toks) && toks[j+1] == "(" {
					p.Loc = geom.Pt(atof(toks[j+2])/scale, atof(toks[j+3])/scale)
					j += 4
				}
			}
			j++
		}
		d.Pins = append(d.Pins, p)
		i = j + 1
	}
	return i, fmt.Errorf("def: PINS not terminated")
}

func (d *DEF) parseNets(toks []string, i int) (int, error) {
	i = skipStatement(toks, i)
	for i < len(toks) {
		if toks[i] == "END" {
			return i + 2, nil
		}
		if toks[i] != "-" {
			return i, fmt.Errorf("def: expected '-' in NETS, got %q", toks[i])
		}
		if i+1 >= len(toks) {
			return i, fmt.Errorf("def: truncated NETS entry")
		}
		n := Net{Name: toks[i+1]}
		j := i + 2
		scale := float64(d.DBU)
		for j < len(toks) && toks[j] != ";" {
			switch toks[j] {
			case "(":
				if j+2 < len(toks) {
					n.Conns = append(n.Conns, Conn{Comp: toks[j+1], Pin: toks[j+2]})
					j += 2
				}
			case "+":
				if j+1 >= len(toks) {
					break
				}
				switch toks[j+1] {
				case "USE":
					if j+2 < len(toks) {
						n.Use = toks[j+2]
					}
					j += 2
				case "ROUTED":
					var next int
					n.Routes, next = parseRoutes(toks, j+2, scale)
					j = next - 1
				}
			}
			j++
		}
		d.Nets = append(d.Nets, n)
		i = j + 1
	}
	return i, fmt.Errorf("def: NETS not terminated")
}

// parseRoutes consumes routed wiring after "+ ROUTED": one polyline per
// layer section, sections separated by NEW. Coordinates may use the DEF "*"
// shorthand for "unchanged". Returns the routes and the index of the first
// unconsumed token.
func parseRoutes(toks []string, i int, scale float64) ([]Route, int) {
	var routes []Route
	for i < len(toks) {
		if toks[i] == ";" || toks[i] == "+" {
			return routes, i
		}
		layer := toks[i]
		i++
		r := Route{Layer: layer}
		var last geom.Point
		for i+2 < len(toks) && toks[i] == "(" {
			// ( x y ) with * meaning "same as previous".
			xs, ys := toks[i+1], toks[i+2]
			x, y := last.X, last.Y
			if xs != "*" {
				x = atof(xs) / scale
			}
			if ys != "*" {
				y = atof(ys) / scale
			}
			last = geom.Pt(x, y)
			r.Points = append(r.Points, last)
			i += 4 // ( x y )
		}
		routes = append(routes, r)
		if i < len(toks) && toks[i] == "NEW" {
			i++
			continue
		}
		return routes, i
	}
	return routes, i
}

// ParseLEFLegacy parses LEF-lite source with the retained whole-string
// reference parser (see ParseDEFLegacy).
func ParseLEFLegacy(src string) (*LEF, error) {
	toks := tokenize(src)
	lef := &LEF{DBU: 1000}
	i := 0
	for i < len(toks) {
		switch toks[i] {
		case "VERSION":
			if i+1 < len(toks) {
				lef.Version = toks[i+1]
			}
			i = skipStatement(toks, i)
		case "UNITS":
			// UNITS DATABASE MICRONS n ; END UNITS
			for i < len(toks) && toks[i] != "END" {
				if toks[i] == "MICRONS" && i+1 < len(toks) {
					if v, err := strconv.Atoi(toks[i+1]); err == nil {
						lef.DBU = v
					}
				}
				i++
			}
			i += 2 // END UNITS
		case "MACRO":
			m, next, err := parseMacro(toks, i)
			if err != nil {
				return nil, err
			}
			lef.Macros = append(lef.Macros, m)
			i = next
		case "END":
			// END LIBRARY or stray END
			i += 2
		default:
			i = skipStatement(toks, i)
		}
	}
	return lef, nil
}

func parseMacro(toks []string, i int) (*Macro, int, error) {
	if toks[i] != "MACRO" || i+1 >= len(toks) {
		return nil, i, fmt.Errorf("lef: malformed MACRO at token %d", i)
	}
	m := &Macro{Name: toks[i+1]}
	i += 2
	for i < len(toks) {
		switch toks[i] {
		case "CLASS":
			if i+1 < len(toks) {
				m.Class = toks[i+1]
			}
			i = skipStatement(toks, i)
		case "SIZE":
			// SIZE w BY h ;
			if i+3 < len(toks) {
				m.W = atof(toks[i+1])
				m.H = atof(toks[i+3])
			}
			i = skipStatement(toks, i)
		case "PIN":
			p, next, err := parseMacroPin(toks, i)
			if err != nil {
				return nil, i, err
			}
			m.Pins = append(m.Pins, p)
			i = next
		case "END":
			if i+1 < len(toks) && toks[i+1] == m.Name {
				return m, i + 2, nil
			}
			i++
		default:
			i = skipStatement(toks, i)
		}
	}
	return nil, i, fmt.Errorf("lef: macro %s not terminated", m.Name)
}

func parseMacroPin(toks []string, i int) (MacroPin, int, error) {
	if i+1 >= len(toks) {
		return MacroPin{}, i, fmt.Errorf("lef: truncated PIN at token %d", i)
	}
	p := MacroPin{Name: toks[i+1]}
	i += 2
	for i < len(toks) {
		switch toks[i] {
		case "DIRECTION":
			if i+1 < len(toks) {
				p.Direction = toks[i+1]
			}
			i = skipStatement(toks, i)
		case "USE":
			if i+1 < len(toks) {
				p.Use = toks[i+1]
			}
			i = skipStatement(toks, i)
		case "CAPACITANCE":
			if i+1 < len(toks) {
				p.Cap = atof(toks[i+1])
			}
			i = skipStatement(toks, i)
		case "END":
			if i+1 < len(toks) && toks[i+1] == p.Name {
				return p, i + 2, nil
			}
			i++
		default:
			i = skipStatement(toks, i)
		}
	}
	return p, i, fmt.Errorf("lef: pin %s not terminated", p.Name)
}

// WriteDEFLegacy emits DEF-lite source by building the whole document in a
// strings.Builder — the retained reference WriteDEF/WriteTo must match byte
// for byte.
func (d *DEF) WriteDEFLegacy() string {
	var b strings.Builder
	v := d.Version
	if v == "" {
		v = "5.8"
	}
	scale := float64(d.DBU)
	fmt.Fprintf(&b, "VERSION %s ;\nDESIGN %s ;\nUNITS DISTANCE MICRONS %d ;\n", v, d.Design, d.DBU)
	fmt.Fprintf(&b, "DIEAREA ( %d %d ) ( %d %d ) ;\n\n",
		int(d.Die.XLo*scale), int(d.Die.YLo*scale), int(d.Die.XHi*scale), int(d.Die.YHi*scale))
	fmt.Fprintf(&b, "COMPONENTS %d ;\n", len(d.Components))
	for _, c := range d.Components {
		orient := c.Orient
		if orient == "" {
			orient = "N"
		}
		fmt.Fprintf(&b, "  - %s %s + PLACED ( %d %d ) %s ;\n",
			c.Name, c.Macro, int(c.Loc.X*scale), int(c.Loc.Y*scale), orient)
	}
	b.WriteString("END COMPONENTS\n\n")
	fmt.Fprintf(&b, "PINS %d ;\n", len(d.Pins))
	for _, p := range d.Pins {
		fmt.Fprintf(&b, "  - %s + NET %s", p.Name, p.Net)
		if p.Direction != "" {
			fmt.Fprintf(&b, " + DIRECTION %s", p.Direction)
		}
		if p.Use != "" {
			fmt.Fprintf(&b, " + USE %s", p.Use)
		}
		fmt.Fprintf(&b, " + PLACED ( %d %d ) N ;\n", int(p.Loc.X*scale), int(p.Loc.Y*scale))
	}
	b.WriteString("END PINS\n\n")
	fmt.Fprintf(&b, "NETS %d ;\n", len(d.Nets))
	for _, n := range d.Nets {
		fmt.Fprintf(&b, "  - %s", n.Name)
		for k, c := range n.Conns {
			if k%4 == 0 {
				b.WriteString("\n   ")
			}
			fmt.Fprintf(&b, " ( %s %s )", c.Comp, c.Pin)
		}
		if n.Use != "" {
			fmt.Fprintf(&b, "\n    + USE %s", n.Use)
		}
		for ri, r := range n.Routes {
			if ri == 0 {
				fmt.Fprintf(&b, "\n    + ROUTED %s", r.Layer)
			} else {
				fmt.Fprintf(&b, "\n      NEW %s", r.Layer)
			}
			for _, p := range r.Points {
				fmt.Fprintf(&b, " ( %d %d )", int(p.X*scale), int(p.Y*scale))
			}
		}
		b.WriteString(" ;\n")
	}
	b.WriteString("END NETS\n\nEND DESIGN\n")
	return b.String()
}

// writeLEFLegacy is the retained strings.Builder LEF writer (see
// WriteDEFLegacy).
func (l *LEF) writeLEFLegacy() string {
	var b strings.Builder
	v := l.Version
	if v == "" {
		v = "5.8"
	}
	fmt.Fprintf(&b, "VERSION %s ;\nUNITS\n  DATABASE MICRONS %d ;\nEND UNITS\n\n", v, l.DBU)
	for _, m := range l.Macros {
		fmt.Fprintf(&b, "MACRO %s\n", m.Name)
		if m.Class != "" {
			fmt.Fprintf(&b, "  CLASS %s ;\n", m.Class)
		}
		fmt.Fprintf(&b, "  SIZE %.4f BY %.4f ;\n", m.W, m.H)
		for _, p := range m.Pins {
			fmt.Fprintf(&b, "  PIN %s\n", p.Name)
			if p.Direction != "" {
				fmt.Fprintf(&b, "    DIRECTION %s ;\n", p.Direction)
			}
			if p.Use != "" {
				fmt.Fprintf(&b, "    USE %s ;\n", p.Use)
			}
			if p.Cap != 0 {
				fmt.Fprintf(&b, "    CAPACITANCE %.4f ;\n", p.Cap)
			}
			fmt.Fprintf(&b, "  END %s\n", p.Name)
		}
		fmt.Fprintf(&b, "END %s\n\n", m.Name)
	}
	b.WriteString("END LIBRARY\n")
	return b.String()
}

// tokenize splits source into tokens, treating parentheses and semicolons
// as standalone tokens and stripping # comments.
func tokenize(src string) []string {
	var toks []string
	for _, line := range strings.Split(src, "\n") {
		if idx := strings.IndexByte(line, '#'); idx >= 0 {
			line = line[:idx]
		}
		line = strings.ReplaceAll(line, "(", " ( ")
		line = strings.ReplaceAll(line, ")", " ) ")
		line = strings.ReplaceAll(line, ";", " ; ")
		toks = append(toks, strings.Fields(line)...)
	}
	return toks
}

// skipStatement advances past the next ';' (or to end of input).
func skipStatement(toks []string, i int) int {
	for i < len(toks) && toks[i] != ";" {
		i++
	}
	return i + 1
}

func atof(s string) float64 {
	v, _ := strconv.ParseFloat(s, 64)
	return v
}
