// Package lefdef reads and writes the subset of LEF and DEF that clock tree
// synthesis needs: macro footprints and pin capacitances from LEF; die area,
// placed components, IO pins and net connectivity from DEF. The writers emit
// the same subset, including the post-CTS DEF with inserted clock buffers and
// the decomposed clock subnets.
//
// Parsing and writing are streaming: the parsers read from an io.Reader
// through a fixed reusable token buffer (see Scanner) and the writers emit
// through a small append buffer, so peak I/O memory is O(buffer)+O(design)
// rather than O(file)+O(tokens). The whole-string entry points are thin
// wrappers over the streaming ones.
//
// Dimensions in the parsed structures are micrometers (converted from
// database units at the boundary); the raw DBU factor is preserved for
// round-tripping.
package lefdef

import (
	"fmt"
	"io"
	"strings"
)

// LEF is a parsed technology/macro LEF file.
type LEF struct {
	Version string
	DBU     int // DATABASE MICRONS
	Macros  []*Macro
}

// Macro is a cell footprint.
type Macro struct {
	Name  string
	Class string
	W, H  float64 // µm
	Pins  []MacroPin
}

// MacroPin is one pin of a macro.
type MacroPin struct {
	Name      string
	Direction string // INPUT / OUTPUT / INOUT
	Use       string // CLOCK / SIGNAL / ...
	Cap       float64
}

// FindMacro returns the named macro, or nil.
func (l *LEF) FindMacro(name string) *Macro {
	for _, m := range l.Macros {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// ClockPin returns the macro's clock-use input pin, or nil.
func (m *Macro) ClockPin() *MacroPin {
	for i := range m.Pins {
		if m.Pins[i].Use == "CLOCK" && m.Pins[i].Direction == "INPUT" {
			return &m.Pins[i]
		}
	}
	return nil
}

// ParseLEF parses LEF-lite source.
func ParseLEF(src string) (*LEF, error) {
	return ParseLEFReader(strings.NewReader(src))
}

// ParseLEFReader parses LEF-lite from r, streaming through a fixed reusable
// buffer (see ParseDEFReader for the memory and error contract). Results and
// parse errors are identical to ParseLEFLegacy on every input.
func ParseLEFReader(r io.Reader) (*LEF, error) {
	sc := NewScanner(r)
	cur := newTokCursor(sc)
	in := newInterner()
	lef := &LEF{DBU: 1000}
	err := lef.parseStream(cur, in)
	if rerr := sc.Err(); rerr != nil {
		return nil, fmt.Errorf("lef: read: %w", rerr)
	}
	if err != nil {
		return nil, err
	}
	return lef, nil
}

func (l *LEF) parseStream(cur *tokCursor, in *interner) error {
	for {
		t, ok := cur.peek(0)
		if !ok {
			return nil
		}
		switch {
		case tokIs(t, "VERSION"):
			if t1, ok1 := cur.peek(1); ok1 {
				l.Version = string(t1)
			}
			cur.skipStatement()
		case tokIs(t, "UNITS"):
			// UNITS DATABASE MICRONS n ; END UNITS
			for k := 0; ; k++ {
				tk, okk := cur.peek(k)
				if !okk || tokIs(tk, "END") {
					cur.advance(k + 2) // END UNITS
					break
				}
				if tokIs(tk, "MICRONS") {
					if t1, ok1 := cur.peek(k + 1); ok1 {
						if v, okv := atoiOKTok(t1); okv {
							l.DBU = v
						}
					}
				}
			}
		case tokIs(t, "MACRO"):
			m, err := parseMacroStream(cur, in)
			if err != nil {
				return err
			}
			l.Macros = append(l.Macros, m)
		case tokIs(t, "END"):
			// END LIBRARY or stray END
			cur.advance(2)
		default:
			cur.skipStatement()
		}
	}
}

// parseMacroStream parses one MACRO block; the cursor is positioned on the
// "MACRO" keyword. Diagnostics embed the absolute token ordinal, matching
// the legacy parser's slice index.
func parseMacroStream(cur *tokCursor, in *interner) (*Macro, error) {
	t1, ok := cur.peek(1)
	if !ok {
		return nil, fmt.Errorf("lef: malformed MACRO at token %d", cur.pos())
	}
	m := &Macro{Name: string(t1)}
	cur.advance(2)
	for {
		t, ok0 := cur.peek(0)
		if !ok0 {
			return nil, fmt.Errorf("lef: macro %s not terminated", m.Name)
		}
		switch {
		case tokIs(t, "CLASS"):
			if t1, ok = cur.peek(1); ok {
				m.Class = in.str(t1)
			}
			cur.skipStatement()
		case tokIs(t, "SIZE"):
			// SIZE w BY h ;
			if _, ok3 := cur.peek(3); ok3 {
				tw, _ := cur.peek(1)
				m.W = atofTok(tw)
				th, _ := cur.peek(3)
				m.H = atofTok(th)
			}
			cur.skipStatement()
		case tokIs(t, "PIN"):
			p, err := parseMacroPinStream(cur, in)
			if err != nil {
				return nil, err
			}
			m.Pins = append(m.Pins, p)
		case tokIs(t, "END"):
			if t1, ok = cur.peek(1); ok && string(t1) == m.Name {
				cur.advance(2)
				return m, nil
			}
			cur.advance(1)
		default:
			cur.skipStatement()
		}
	}
}

func parseMacroPinStream(cur *tokCursor, in *interner) (MacroPin, error) {
	t1, ok := cur.peek(1)
	if !ok {
		return MacroPin{}, fmt.Errorf("lef: truncated PIN at token %d", cur.pos())
	}
	p := MacroPin{Name: string(t1)}
	cur.advance(2)
	for {
		t, ok0 := cur.peek(0)
		if !ok0 {
			return p, fmt.Errorf("lef: pin %s not terminated", p.Name)
		}
		switch {
		case tokIs(t, "DIRECTION"):
			if t1, ok = cur.peek(1); ok {
				p.Direction = in.str(t1)
			}
			cur.skipStatement()
		case tokIs(t, "USE"):
			if t1, ok = cur.peek(1); ok {
				p.Use = in.str(t1)
			}
			cur.skipStatement()
		case tokIs(t, "CAPACITANCE"):
			if t1, ok = cur.peek(1); ok {
				p.Cap = atofTok(t1)
			}
			cur.skipStatement()
		case tokIs(t, "END"):
			if t1, ok = cur.peek(1); ok && string(t1) == p.Name {
				cur.advance(2)
				return p, nil
			}
			cur.advance(1)
		default:
			cur.skipStatement()
		}
	}
}

// WriteLEF emits LEF-lite source for the structure. It is a convenience
// wrapper over WriteTo.
func (l *LEF) WriteLEF() string {
	var b strings.Builder
	l.WriteTo(&b) // strings.Builder writes cannot fail
	return b.String()
}
