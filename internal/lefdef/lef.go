// Package lefdef reads and writes the subset of LEF and DEF that clock tree
// synthesis needs: macro footprints and pin capacitances from LEF; die area,
// placed components, IO pins and net connectivity from DEF. The writers emit
// the same subset, including the post-CTS DEF with inserted clock buffers and
// the decomposed clock subnets.
//
// Dimensions in the parsed structures are micrometers (converted from
// database units at the boundary); the raw DBU factor is preserved for
// round-tripping.
package lefdef

import (
	"fmt"
	"strconv"
	"strings"
)

// LEF is a parsed technology/macro LEF file.
type LEF struct {
	Version string
	DBU     int // DATABASE MICRONS
	Macros  []*Macro
}

// Macro is a cell footprint.
type Macro struct {
	Name  string
	Class string
	W, H  float64 // µm
	Pins  []MacroPin
}

// MacroPin is one pin of a macro.
type MacroPin struct {
	Name      string
	Direction string // INPUT / OUTPUT / INOUT
	Use       string // CLOCK / SIGNAL / ...
	Cap       float64
}

// FindMacro returns the named macro, or nil.
func (l *LEF) FindMacro(name string) *Macro {
	for _, m := range l.Macros {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// ClockPin returns the macro's clock-use input pin, or nil.
func (m *Macro) ClockPin() *MacroPin {
	for i := range m.Pins {
		if m.Pins[i].Use == "CLOCK" && m.Pins[i].Direction == "INPUT" {
			return &m.Pins[i]
		}
	}
	return nil
}

// ParseLEF parses LEF-lite source.
func ParseLEF(src string) (*LEF, error) {
	toks := tokenize(src)
	lef := &LEF{DBU: 1000}
	i := 0
	for i < len(toks) {
		switch toks[i] {
		case "VERSION":
			if i+1 < len(toks) {
				lef.Version = toks[i+1]
			}
			i = skipStatement(toks, i)
		case "UNITS":
			// UNITS DATABASE MICRONS n ; END UNITS
			for i < len(toks) && toks[i] != "END" {
				if toks[i] == "MICRONS" && i+1 < len(toks) {
					if v, err := strconv.Atoi(toks[i+1]); err == nil {
						lef.DBU = v
					}
				}
				i++
			}
			i += 2 // END UNITS
		case "MACRO":
			m, next, err := parseMacro(toks, i)
			if err != nil {
				return nil, err
			}
			lef.Macros = append(lef.Macros, m)
			i = next
		case "END":
			// END LIBRARY or stray END
			i += 2
		default:
			i = skipStatement(toks, i)
		}
	}
	return lef, nil
}

func parseMacro(toks []string, i int) (*Macro, int, error) {
	if toks[i] != "MACRO" || i+1 >= len(toks) {
		return nil, i, fmt.Errorf("lef: malformed MACRO at token %d", i)
	}
	m := &Macro{Name: toks[i+1]}
	i += 2
	for i < len(toks) {
		switch toks[i] {
		case "CLASS":
			if i+1 < len(toks) {
				m.Class = toks[i+1]
			}
			i = skipStatement(toks, i)
		case "SIZE":
			// SIZE w BY h ;
			if i+3 < len(toks) {
				m.W = atof(toks[i+1])
				m.H = atof(toks[i+3])
			}
			i = skipStatement(toks, i)
		case "PIN":
			p, next, err := parseMacroPin(toks, i)
			if err != nil {
				return nil, i, err
			}
			m.Pins = append(m.Pins, p)
			i = next
		case "END":
			if i+1 < len(toks) && toks[i+1] == m.Name {
				return m, i + 2, nil
			}
			i++
		default:
			i = skipStatement(toks, i)
		}
	}
	return nil, i, fmt.Errorf("lef: macro %s not terminated", m.Name)
}

func parseMacroPin(toks []string, i int) (MacroPin, int, error) {
	if i+1 >= len(toks) {
		return MacroPin{}, i, fmt.Errorf("lef: truncated PIN at token %d", i)
	}
	p := MacroPin{Name: toks[i+1]}
	i += 2
	for i < len(toks) {
		switch toks[i] {
		case "DIRECTION":
			if i+1 < len(toks) {
				p.Direction = toks[i+1]
			}
			i = skipStatement(toks, i)
		case "USE":
			if i+1 < len(toks) {
				p.Use = toks[i+1]
			}
			i = skipStatement(toks, i)
		case "CAPACITANCE":
			if i+1 < len(toks) {
				p.Cap = atof(toks[i+1])
			}
			i = skipStatement(toks, i)
		case "END":
			if i+1 < len(toks) && toks[i+1] == p.Name {
				return p, i + 2, nil
			}
			i++
		default:
			i = skipStatement(toks, i)
		}
	}
	return p, i, fmt.Errorf("lef: pin %s not terminated", p.Name)
}

// WriteLEF emits LEF-lite source for the structure.
func (l *LEF) WriteLEF() string {
	var b strings.Builder
	v := l.Version
	if v == "" {
		v = "5.8"
	}
	fmt.Fprintf(&b, "VERSION %s ;\nUNITS\n  DATABASE MICRONS %d ;\nEND UNITS\n\n", v, l.DBU)
	for _, m := range l.Macros {
		fmt.Fprintf(&b, "MACRO %s\n", m.Name)
		if m.Class != "" {
			fmt.Fprintf(&b, "  CLASS %s ;\n", m.Class)
		}
		fmt.Fprintf(&b, "  SIZE %.4f BY %.4f ;\n", m.W, m.H)
		for _, p := range m.Pins {
			fmt.Fprintf(&b, "  PIN %s\n", p.Name)
			if p.Direction != "" {
				fmt.Fprintf(&b, "    DIRECTION %s ;\n", p.Direction)
			}
			if p.Use != "" {
				fmt.Fprintf(&b, "    USE %s ;\n", p.Use)
			}
			if p.Cap != 0 {
				fmt.Fprintf(&b, "    CAPACITANCE %.4f ;\n", p.Cap)
			}
			fmt.Fprintf(&b, "  END %s\n", p.Name)
		}
		fmt.Fprintf(&b, "END %s\n\n", m.Name)
	}
	b.WriteString("END LIBRARY\n")
	return b.String()
}

// tokenize splits source into tokens, treating parentheses and semicolons
// as standalone tokens and stripping # comments.
func tokenize(src string) []string {
	var toks []string
	for _, line := range strings.Split(src, "\n") {
		if idx := strings.IndexByte(line, '#'); idx >= 0 {
			line = line[:idx]
		}
		line = strings.ReplaceAll(line, "(", " ( ")
		line = strings.ReplaceAll(line, ")", " ) ")
		line = strings.ReplaceAll(line, ";", " ; ")
		toks = append(toks, strings.Fields(line)...)
	}
	return toks
}

// skipStatement advances past the next ';' (or to end of input).
func skipStatement(toks []string, i int) int {
	for i < len(toks) && toks[i] != ";" {
		i++
	}
	return i + 1
}

func atof(s string) float64 {
	v, _ := strconv.ParseFloat(s, 64)
	return v
}
