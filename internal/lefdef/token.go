package lefdef

import (
	"bytes"
	"io"
	"unicode"
	"unicode/utf8"
)

// defaultScanBuf is the Scanner's fixed window size. Tokens, not files, must
// fit: the buffer only grows when a single token (or an unbroken comment)
// exceeds it, so peak tokenizer memory is O(buffer), independent of input
// length.
const defaultScanBuf = 64 * 1024

// Scanner streams DEF/LEF-lite tokens from an io.Reader through a fixed
// reusable buffer. It reproduces the legacy string tokenizer exactly: '#'
// erases to end of line, '(' / ')' / ';' are standalone tokens, and tokens
// are otherwise separated by Unicode whitespace (the streaming scanner
// decodes multi-byte space runes just like strings.Fields, and treats "\r\n"
// identically to "\n"). Tokens are yielded as sub-slices of the internal
// buffer with no per-token allocation; each is valid only until the next
// Next call.
type Scanner struct {
	r         io.Reader
	buf       []byte
	pos, end  int // live window is buf[pos:end]
	eof       bool
	err       error // first non-EOF read error (sticky)
	inComment bool  // a '#' comment continues past the window
	tokPfx    int   // verified token-byte prefix of a partial token
}

// NewScanner returns a Scanner reading from r.
func NewScanner(r io.Reader) *Scanner {
	return &Scanner{r: r, buf: make([]byte, defaultScanBuf)}
}

// Err returns the first non-EOF read error encountered, if any. A read error
// truncates the token stream; parsers surface Err in preference to their own
// truncation diagnostics.
func (s *Scanner) Err() error { return s.err }

// Byte classes driving Next's fast path. Class 0 is a plain ASCII token
// byte; anything else needs a closer look. A token is complete when its
// terminator is ASCII (space, punctuation or '#') — a high byte could be
// the start of a multi-byte space rune, which only the slow path decodes.
const (
	clSpace = 1 << iota // ASCII whitespace (the legacy tokenizer's set)
	clPunct             // '(' ')' ';' — standalone single-byte tokens
	clHash              // '#' — comment to end of line
	clHigh              // >= utf8.RuneSelf — possible multi-byte rune
)

var byteClass = func() (t [256]uint8) {
	for _, c := range []byte{' ', '\t', '\n', '\r', '\v', '\f'} {
		t[c] = clSpace
	}
	t['('], t[')'], t[';'] = clPunct, clPunct, clPunct
	t['#'] = clHash
	for c := utf8.RuneSelf; c < 256; c++ {
		t[c] = clHigh
	}
	return
}()

// Next returns the next token, or (nil, false) at end of input. The returned
// slice aliases the Scanner's buffer and is invalidated by the next call.
func (s *Scanner) Next() ([]byte, bool) {
	// Fast path: a run of ASCII blanks, then a token of class-0 bytes whose
	// terminator sits inside the window. Anything else — comments, window
	// boundaries, high bytes — falls through to the general loop, which
	// re-derives the same state from s.pos.
	if !s.inComment && s.tokPfx == 0 {
		buf, end := s.buf, s.end
		i := s.pos
		for i < end && byteClass[buf[i]] == clSpace {
			i++
		}
		s.pos = i
		if i < end {
			switch byteClass[buf[i]] {
			case 0:
				j := i + 1
				for j < end && byteClass[buf[j]] == 0 {
					j++
				}
				if j < end && byteClass[buf[j]]&clHigh == 0 {
					s.pos = j
					return buf[i:j], true
				}
			case clPunct:
				s.pos = i + 1
				return buf[i : i+1], true
			}
		}
	}
	for {
		n, inc, more := skipBlanks(s.buf[s.pos:s.end], s.inComment, s.eof)
		s.pos += n
		s.inComment = inc
		if more {
			s.fill()
			continue
		}
		if s.pos == s.end {
			if s.eof {
				return nil, false
			}
			s.fill()
			continue
		}
		tn, complete := scanToken(s.buf[s.pos:s.end], s.eof, s.tokPfx)
		if !complete {
			s.tokPfx = tn // resume after the refill instead of rescanning
			s.fill()
			continue
		}
		s.tokPfx = 0
		tok := s.buf[s.pos : s.pos+tn]
		s.pos += tn
		return tok, true
	}
}

// fill shifts the live window to the front of the buffer and reads more
// data after it, growing the buffer only when a single token spans it
// entirely. It always either adds bytes or latches eof, so Next's loop
// terminates.
func (s *Scanner) fill() {
	if s.eof {
		return
	}
	if s.pos > 0 {
		copy(s.buf, s.buf[s.pos:s.end])
		s.end -= s.pos
		s.pos = 0
	}
	if s.end == len(s.buf) {
		nb := make([]byte, 2*len(s.buf))
		copy(nb, s.buf[:s.end])
		s.buf = nb
	}
	for {
		n, err := s.r.Read(s.buf[s.end:])
		s.end += n
		if err != nil {
			if err != io.EOF && s.err == nil {
				s.err = err
			}
			s.eof = true
			return
		}
		if n > 0 {
			return
		}
	}
}

// skipBlanks consumes the whitespace/comment prefix of data, stopping at the
// first token byte. It returns the bytes consumed, whether a '#' comment is
// still open at the point it stopped, and whether it needs more data to make
// a decision (never when atEOF). Comments terminate at '\n' only — a bare
// '\r' inside a comment stays commented, exactly like the line-splitting
// legacy tokenizer. Multi-byte space runes (NBSP, NEL) are decoded so the
// token boundaries match strings.Fields byte for byte.
//
// hot: alloc-free
func skipBlanks(data []byte, inComment, atEOF bool) (n int, stillComment, needMore bool) {
	i := 0
	for i < len(data) {
		if inComment {
			j := bytes.IndexByte(data[i:], '\n')
			if j < 0 {
				return len(data), true, !atEOF
			}
			i += j + 1
			inComment = false
			continue
		}
		c := data[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f':
			i++
		case c == '#':
			inComment = true
			i++
		case c < utf8.RuneSelf:
			return i, false, false
		default:
			if !utf8.FullRune(data[i:]) && !atEOF {
				return i, false, true
			}
			r, size := utf8.DecodeRune(data[i:])
			if !unicode.IsSpace(r) {
				return i, false, false
			}
			i += size
		}
	}
	return i, inComment, !atEOF
}

// scanToken finds the end of the token starting at data[0] (which skipBlanks
// has established is a token byte). '(' / ')' / ';' are single-byte tokens;
// anything else runs until whitespace, punctuation or a '#' comment start.
// When complete is false the token may continue past the window (never when
// atEOF) and n is the verified prefix length — the caller passes it back as
// start after refilling so a token spanning many reads is scanned once, not
// quadratically.
//
// hot: alloc-free
func scanToken(data []byte, atEOF bool, start int) (n int, complete bool) {
	if start == 0 {
		if c := data[0]; c == '(' || c == ')' || c == ';' {
			return 1, true
		}
	}
	i := start
	for i < len(data) {
		c := data[i]
		switch {
		case c == '(' || c == ')' || c == ';' || c == '#':
			return i, true
		case c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f':
			return i, true
		case c < utf8.RuneSelf:
			i++
		default:
			if !utf8.FullRune(data[i:]) && !atEOF {
				return i, false
			}
			r, size := utf8.DecodeRune(data[i:])
			if unicode.IsSpace(r) {
				return i, true
			}
			i += size
		}
	}
	return i, atEOF
}
