package lefdef

import (
	"fmt"
	"strconv"
	"strings"

	"sllt/internal/geom"
)

// DEF is a parsed placement DEF file. Coordinates are micrometers.
type DEF struct {
	Version    string
	Design     string
	DBU        int
	Die        geom.Rect
	Components []Component
	Pins       []IOPin
	Nets       []Net
}

// Component is a placed instance.
type Component struct {
	Name   string
	Macro  string
	Loc    geom.Point
	Placed bool
	Orient string
}

// IOPin is a top-level design pin.
type IOPin struct {
	Name      string
	Net       string
	Direction string
	Use       string
	Loc       geom.Point
}

// Net is a logical net with its connections and, optionally, its routed
// wire geometry.
type Net struct {
	Name   string
	Use    string
	Conns  []Conn
	Routes []Route
}

// Route is one routed wire: an orthogonal polyline on a layer.
type Route struct {
	Layer  string
	Points []geom.Point
}

// RoutedLength returns the total routed wirelength of the net in µm.
func (n *Net) RoutedLength() float64 {
	var wl float64
	for _, r := range n.Routes {
		for i := 1; i < len(r.Points); i++ {
			wl += r.Points[i-1].Dist(r.Points[i])
		}
	}
	return wl
}

// Conn is one net connection. Comp == "PIN" denotes a top-level IO pin, in
// which case Pin holds the pin name.
type Conn struct {
	Comp string
	Pin  string
}

// FindComponent returns the named component, or nil.
func (d *DEF) FindComponent(name string) *Component {
	for i := range d.Components {
		if d.Components[i].Name == name {
			return &d.Components[i]
		}
	}
	return nil
}

// FindNet returns the named net, or nil.
func (d *DEF) FindNet(name string) *Net {
	for i := range d.Nets {
		if d.Nets[i].Name == name {
			return &d.Nets[i]
		}
	}
	return nil
}

// FindPin returns the named IO pin, or nil.
func (d *DEF) FindPin(name string) *IOPin {
	for i := range d.Pins {
		if d.Pins[i].Name == name {
			return &d.Pins[i]
		}
	}
	return nil
}

// ParseDEF parses DEF-lite source.
func ParseDEF(src string) (*DEF, error) {
	toks := tokenize(src)
	def := &DEF{DBU: 1000}
	i := 0
	for i < len(toks) {
		switch toks[i] {
		case "VERSION":
			if i+1 < len(toks) {
				def.Version = toks[i+1]
			}
			i = skipStatement(toks, i)
		case "DESIGN":
			if i+1 < len(toks) {
				def.Design = toks[i+1]
			}
			i = skipStatement(toks, i)
		case "UNITS":
			// UNITS DISTANCE MICRONS n ;
			for j := i; j < len(toks) && toks[j] != ";"; j++ {
				if toks[j] == "MICRONS" && j+1 < len(toks) {
					if v, err := strconv.Atoi(toks[j+1]); err == nil {
						def.DBU = v
					}
				}
			}
			i = skipStatement(toks, i)
		case "DIEAREA":
			// DIEAREA ( x1 y1 ) ( x2 y2 ) ;
			var nums []float64
			for j := i; j < len(toks) && toks[j] != ";"; j++ {
				if v, err := strconv.ParseFloat(toks[j], 64); err == nil {
					nums = append(nums, v)
				}
			}
			if len(nums) >= 4 {
				s := float64(def.DBU)
				def.Die = geom.Rect{XLo: nums[0] / s, YLo: nums[1] / s, XHi: nums[2] / s, YHi: nums[3] / s}
			}
			i = skipStatement(toks, i)
		case "COMPONENTS":
			next, err := def.parseComponents(toks, i)
			if err != nil {
				return nil, err
			}
			i = next
		case "PINS":
			next, err := def.parsePins(toks, i)
			if err != nil {
				return nil, err
			}
			i = next
		case "NETS":
			next, err := def.parseNets(toks, i)
			if err != nil {
				return nil, err
			}
			i = next
		case "END":
			i += 2
		default:
			i = skipStatement(toks, i)
		}
	}
	if def.Design == "" {
		return nil, fmt.Errorf("def: missing DESIGN statement")
	}
	return def, nil
}

func (d *DEF) parseComponents(toks []string, i int) (int, error) {
	i = skipStatement(toks, i) // consume "COMPONENTS n ;"
	scale := float64(d.DBU)
	for i < len(toks) {
		if toks[i] == "END" {
			return i + 2, nil // END COMPONENTS
		}
		if toks[i] != "-" {
			return i, fmt.Errorf("def: expected '-' in COMPONENTS, got %q", toks[i])
		}
		if i+2 >= len(toks) {
			return i, fmt.Errorf("def: truncated COMPONENTS entry")
		}
		c := Component{Name: toks[i+1], Macro: toks[i+2]}
		j := i + 3
		for j < len(toks) && toks[j] != ";" {
			if (toks[j] == "PLACED" || toks[j] == "FIXED") && j+4 < len(toks) && toks[j+1] == "(" {
				c.Placed = true
				c.Loc = geom.Pt(atof(toks[j+2])/scale, atof(toks[j+3])/scale)
				// The orient is optional; punctuation after ")" means it
				// was omitted (grabbing it would corrupt WriteDEF output).
				if j+5 < len(toks) && toks[j+4] == ")" {
					if o := toks[j+5]; o != ";" && o != "+" && o != "(" && o != ")" {
						c.Orient = o
					}
				}
				j += 5
				continue
			}
			j++
		}
		d.Components = append(d.Components, c)
		i = j + 1
	}
	return i, fmt.Errorf("def: COMPONENTS not terminated")
}

func (d *DEF) parsePins(toks []string, i int) (int, error) {
	i = skipStatement(toks, i)
	scale := float64(d.DBU)
	for i < len(toks) {
		if toks[i] == "END" {
			return i + 2, nil
		}
		if toks[i] != "-" {
			return i, fmt.Errorf("def: expected '-' in PINS, got %q", toks[i])
		}
		if i+1 >= len(toks) {
			return i, fmt.Errorf("def: truncated PINS entry")
		}
		p := IOPin{Name: toks[i+1]}
		j := i + 2
		for j < len(toks) && toks[j] != ";" {
			switch toks[j] {
			case "NET":
				if j+1 < len(toks) {
					p.Net = toks[j+1]
				}
				j++
			case "DIRECTION":
				if j+1 < len(toks) {
					p.Direction = toks[j+1]
				}
				j++
			case "USE":
				if j+1 < len(toks) {
					p.Use = toks[j+1]
				}
				j++
			case "PLACED", "FIXED":
				if j+3 < len(toks) && toks[j+1] == "(" {
					p.Loc = geom.Pt(atof(toks[j+2])/scale, atof(toks[j+3])/scale)
					j += 4
				}
			}
			j++
		}
		d.Pins = append(d.Pins, p)
		i = j + 1
	}
	return i, fmt.Errorf("def: PINS not terminated")
}

func (d *DEF) parseNets(toks []string, i int) (int, error) {
	i = skipStatement(toks, i)
	for i < len(toks) {
		if toks[i] == "END" {
			return i + 2, nil
		}
		if toks[i] != "-" {
			return i, fmt.Errorf("def: expected '-' in NETS, got %q", toks[i])
		}
		if i+1 >= len(toks) {
			return i, fmt.Errorf("def: truncated NETS entry")
		}
		n := Net{Name: toks[i+1]}
		j := i + 2
		scale := float64(d.DBU)
		for j < len(toks) && toks[j] != ";" {
			switch toks[j] {
			case "(":
				if j+2 < len(toks) {
					n.Conns = append(n.Conns, Conn{Comp: toks[j+1], Pin: toks[j+2]})
					j += 2
				}
			case "+":
				if j+1 >= len(toks) {
					break
				}
				switch toks[j+1] {
				case "USE":
					if j+2 < len(toks) {
						n.Use = toks[j+2]
					}
					j += 2
				case "ROUTED":
					var next int
					n.Routes, next = parseRoutes(toks, j+2, scale)
					j = next - 1
				}
			}
			j++
		}
		d.Nets = append(d.Nets, n)
		i = j + 1
	}
	return i, fmt.Errorf("def: NETS not terminated")
}

// WriteDEF emits DEF-lite source.
func (d *DEF) WriteDEF() string {
	var b strings.Builder
	v := d.Version
	if v == "" {
		v = "5.8"
	}
	scale := float64(d.DBU)
	fmt.Fprintf(&b, "VERSION %s ;\nDESIGN %s ;\nUNITS DISTANCE MICRONS %d ;\n", v, d.Design, d.DBU)
	fmt.Fprintf(&b, "DIEAREA ( %d %d ) ( %d %d ) ;\n\n",
		int(d.Die.XLo*scale), int(d.Die.YLo*scale), int(d.Die.XHi*scale), int(d.Die.YHi*scale))
	fmt.Fprintf(&b, "COMPONENTS %d ;\n", len(d.Components))
	for _, c := range d.Components {
		orient := c.Orient
		if orient == "" {
			orient = "N"
		}
		fmt.Fprintf(&b, "  - %s %s + PLACED ( %d %d ) %s ;\n",
			c.Name, c.Macro, int(c.Loc.X*scale), int(c.Loc.Y*scale), orient)
	}
	b.WriteString("END COMPONENTS\n\n")
	fmt.Fprintf(&b, "PINS %d ;\n", len(d.Pins))
	for _, p := range d.Pins {
		fmt.Fprintf(&b, "  - %s + NET %s", p.Name, p.Net)
		if p.Direction != "" {
			fmt.Fprintf(&b, " + DIRECTION %s", p.Direction)
		}
		if p.Use != "" {
			fmt.Fprintf(&b, " + USE %s", p.Use)
		}
		fmt.Fprintf(&b, " + PLACED ( %d %d ) N ;\n", int(p.Loc.X*scale), int(p.Loc.Y*scale))
	}
	b.WriteString("END PINS\n\n")
	fmt.Fprintf(&b, "NETS %d ;\n", len(d.Nets))
	for _, n := range d.Nets {
		fmt.Fprintf(&b, "  - %s", n.Name)
		for k, c := range n.Conns {
			if k%4 == 0 {
				b.WriteString("\n   ")
			}
			fmt.Fprintf(&b, " ( %s %s )", c.Comp, c.Pin)
		}
		if n.Use != "" {
			fmt.Fprintf(&b, "\n    + USE %s", n.Use)
		}
		for ri, r := range n.Routes {
			if ri == 0 {
				fmt.Fprintf(&b, "\n    + ROUTED %s", r.Layer)
			} else {
				fmt.Fprintf(&b, "\n      NEW %s", r.Layer)
			}
			for _, p := range r.Points {
				fmt.Fprintf(&b, " ( %d %d )", int(p.X*scale), int(p.Y*scale))
			}
		}
		b.WriteString(" ;\n")
	}
	b.WriteString("END NETS\n\nEND DESIGN\n")
	return b.String()
}

// parseRoutes consumes routed wiring after "+ ROUTED": one polyline per
// layer section, sections separated by NEW. Coordinates may use the DEF "*"
// shorthand for "unchanged". Returns the routes and the index of the first
// unconsumed token.
func parseRoutes(toks []string, i int, scale float64) ([]Route, int) {
	var routes []Route
	for i < len(toks) {
		if toks[i] == ";" || toks[i] == "+" {
			return routes, i
		}
		layer := toks[i]
		i++
		r := Route{Layer: layer}
		var last geom.Point
		for i+2 < len(toks) && toks[i] == "(" {
			// ( x y ) with * meaning "same as previous".
			xs, ys := toks[i+1], toks[i+2]
			x, y := last.X, last.Y
			if xs != "*" {
				x = atof(xs) / scale
			}
			if ys != "*" {
				y = atof(ys) / scale
			}
			last = geom.Pt(x, y)
			r.Points = append(r.Points, last)
			i += 4 // ( x y )
		}
		routes = append(routes, r)
		if i < len(toks) && toks[i] == "NEW" {
			i++
			continue
		}
		return routes, i
	}
	return routes, i
}
