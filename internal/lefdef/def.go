package lefdef

import (
	"fmt"
	"io"
	"strings"

	"sllt/internal/geom"
)

// DEF is a parsed placement DEF file. Coordinates are micrometers.
type DEF struct {
	Version    string
	Design     string
	DBU        int
	Die        geom.Rect
	Components []Component
	Pins       []IOPin
	Nets       []Net
}

// Component is a placed instance.
type Component struct {
	Name   string
	Macro  string
	Loc    geom.Point
	Placed bool
	Orient string
}

// IOPin is a top-level design pin.
type IOPin struct {
	Name      string
	Net       string
	Direction string
	Use       string
	Loc       geom.Point
}

// Net is a logical net with its connections and, optionally, its routed
// wire geometry.
type Net struct {
	Name   string
	Use    string
	Conns  []Conn
	Routes []Route
}

// Route is one routed wire: an orthogonal polyline on a layer.
type Route struct {
	Layer  string
	Points []geom.Point
}

// RoutedLength returns the total routed wirelength of the net in µm.
func (n *Net) RoutedLength() float64 {
	var wl float64
	for _, r := range n.Routes {
		for i := 1; i < len(r.Points); i++ {
			wl += r.Points[i-1].Dist(r.Points[i])
		}
	}
	return wl
}

// Conn is one net connection. Comp == "PIN" denotes a top-level IO pin, in
// which case Pin holds the pin name.
type Conn struct {
	Comp string
	Pin  string
}

// FindComponent returns the named component, or nil.
func (d *DEF) FindComponent(name string) *Component {
	for i := range d.Components {
		if d.Components[i].Name == name {
			return &d.Components[i]
		}
	}
	return nil
}

// FindNet returns the named net, or nil.
func (d *DEF) FindNet(name string) *Net {
	for i := range d.Nets {
		if d.Nets[i].Name == name {
			return &d.Nets[i]
		}
	}
	return nil
}

// FindPin returns the named IO pin, or nil.
func (d *DEF) FindPin(name string) *IOPin {
	for i := range d.Pins {
		if d.Pins[i].Name == name {
			return &d.Pins[i]
		}
	}
	return nil
}

// sectionCap bounds prealloc hints taken from section headers so a hostile
// count ("COMPONENTS 99999999999 ;") cannot force a huge allocation up front.
const sectionCap = 1 << 20

// ParseDEF parses DEF-lite source.
func ParseDEF(src string) (*DEF, error) {
	return ParseDEFReader(strings.NewReader(src))
}

// ParseDEFReader parses DEF-lite from r, streaming through a fixed reusable
// buffer: peak parser memory is O(buffer)+O(result), independent of input
// length. Results and parse errors are identical to ParseDEFLegacy on every
// input; a reader failure is surfaced as "def: read: ..." in preference to
// whatever truncation diagnostic the cut-short token stream would produce.
func ParseDEFReader(r io.Reader) (*DEF, error) {
	sc := NewScanner(r)
	cur := newTokCursor(sc)
	in := newInterner()
	def := &DEF{DBU: 1000}
	err := def.parseStream(cur, in)
	if rerr := sc.Err(); rerr != nil {
		return nil, fmt.Errorf("def: read: %w", rerr)
	}
	if err != nil {
		return nil, err
	}
	return def, nil
}

func (d *DEF) parseStream(cur *tokCursor, in *interner) error {
	for {
		t, ok := cur.peek(0)
		if !ok {
			break
		}
		switch {
		case tokIs(t, "VERSION"):
			if t1, ok1 := cur.peek(1); ok1 {
				d.Version = string(t1)
			}
			cur.skipStatement()
		case tokIs(t, "DESIGN"):
			if t1, ok1 := cur.peek(1); ok1 {
				d.Design = string(t1)
			}
			cur.skipStatement()
		case tokIs(t, "UNITS"):
			// UNITS DISTANCE MICRONS n ;
			for k := 0; ; k++ {
				tk, okk := cur.peek(k)
				if !okk {
					cur.advance(k)
					break
				}
				if isSemi(tk) {
					cur.advance(k + 1)
					break
				}
				if tokIs(tk, "MICRONS") {
					if t1, ok1 := cur.peek(k + 1); ok1 {
						if v, okv := atoiOKTok(t1); okv {
							d.DBU = v
						}
					}
				}
			}
		case tokIs(t, "DIEAREA"):
			// DIEAREA ( x1 y1 ) ( x2 y2 ) ;
			var nums [4]float64
			cnt := 0
			for k := 0; ; k++ {
				tk, okk := cur.peek(k)
				if !okk {
					cur.advance(k)
					break
				}
				if isSemi(tk) {
					cur.advance(k + 1)
					break
				}
				if v, okv := atofOKTok(tk); okv {
					if cnt < 4 {
						nums[cnt] = v
					}
					cnt++
				}
			}
			if cnt >= 4 {
				s := float64(d.DBU)
				d.Die = geom.Rect{XLo: nums[0] / s, YLo: nums[1] / s, XHi: nums[2] / s, YHi: nums[3] / s}
			}
		case tokIs(t, "COMPONENTS"):
			if err := d.parseComponentsStream(cur, in); err != nil {
				return err
			}
		case tokIs(t, "PINS"):
			if err := d.parsePinsStream(cur, in); err != nil {
				return err
			}
		case tokIs(t, "NETS"):
			if err := d.parseNetsStream(cur, in); err != nil {
				return err
			}
		case tokIs(t, "END"):
			cur.advance(2)
		default:
			cur.skipStatement()
		}
	}
	if d.Design == "" {
		return fmt.Errorf("def: missing DESIGN statement")
	}
	return nil
}

// headerCount reads the section count from "SECTION n ;" (peek(1)) as a
// prealloc hint and consumes the header statement. The hint is only applied
// at the first append so a zero-entry section still leaves the slice nil,
// exactly like the legacy parser.
func headerCount(cur *tokCursor) int {
	n := 0
	if t1, ok := cur.peek(1); ok {
		if v, okv := atoiOKTok(t1); okv && v > 0 {
			n = v
			if n > sectionCap {
				n = sectionCap
			}
		}
	}
	cur.skipStatement()
	return n
}

func (d *DEF) parseComponentsStream(cur *tokCursor, in *interner) error {
	capHint := headerCount(cur)
	scale := float64(d.DBU)
	var lastMacro, lastOrient string
	for {
		t, ok := cur.peek(0)
		if !ok {
			return fmt.Errorf("def: COMPONENTS not terminated")
		}
		if tokIs(t, "END") {
			cur.advance(2) // END COMPONENTS
			return nil
		}
		if !tokIs(t, "-") {
			return fmt.Errorf("def: expected '-' in COMPONENTS, got %q", string(t))
		}
		if _, ok2 := cur.peek(2); !ok2 {
			return fmt.Errorf("def: truncated COMPONENTS entry")
		}
		t1, _ := cur.peek(1)
		name := string(t1)
		t2, _ := cur.peek(2)
		// Components arrive grouped by cell type, so a last-value cache in
		// front of the interner turns most macro lookups into one compare.
		if !tokIs(t2, lastMacro) {
			lastMacro = in.str(t2)
		}
		c := Component{Name: name, Macro: lastMacro}
		cur.advance(3)
		for {
			t, ok = cur.peek(0)
			if !ok {
				return fmt.Errorf("def: COMPONENTS not terminated")
			}
			if isSemi(t) {
				cur.advance(1)
				break
			}
			if tokIs(t, "PLACED") || tokIs(t, "FIXED") {
				_, ok4 := cur.peek(4)
				t1, _ = cur.peek(1)
				if ok4 && isLParen(t1) {
					c.Placed = true
					tx, _ := cur.peek(2)
					x := atofTok(tx) / scale
					ty, _ := cur.peek(3)
					y := atofTok(ty) / scale
					c.Loc = geom.Pt(x, y)
					// The orient is optional; punctuation after ")" means it
					// was omitted (grabbing it would corrupt WriteDEF output).
					if t5, ok5 := cur.peek(5); ok5 {
						t4, _ := cur.peek(4)
						if isRParen(t4) && !isPunct(t5) {
							if !tokIs(t5, lastOrient) {
								lastOrient = in.str(t5)
							}
							c.Orient = lastOrient
						}
					}
					cur.advance(5)
					continue
				}
			}
			cur.advance(1)
		}
		if d.Components == nil && capHint > 0 {
			d.Components = make([]Component, 0, capHint)
		}
		d.Components = append(d.Components, c)
	}
}

func (d *DEF) parsePinsStream(cur *tokCursor, in *interner) error {
	capHint := headerCount(cur)
	scale := float64(d.DBU)
	for {
		t, ok := cur.peek(0)
		if !ok {
			return fmt.Errorf("def: PINS not terminated")
		}
		if tokIs(t, "END") {
			cur.advance(2)
			return nil
		}
		if !tokIs(t, "-") {
			return fmt.Errorf("def: expected '-' in PINS, got %q", string(t))
		}
		t1, ok1 := cur.peek(1)
		if !ok1 {
			return fmt.Errorf("def: truncated PINS entry")
		}
		p := IOPin{Name: string(t1)}
		cur.advance(2)
		for {
			t, ok = cur.peek(0)
			if !ok {
				return fmt.Errorf("def: PINS not terminated")
			}
			if isSemi(t) {
				cur.advance(1)
				break
			}
			switch {
			case tokIs(t, "NET"):
				if t1, ok1 = cur.peek(1); ok1 {
					p.Net = string(t1)
				}
				cur.advance(2)
			case tokIs(t, "DIRECTION"):
				if t1, ok1 = cur.peek(1); ok1 {
					p.Direction = in.str(t1)
				}
				cur.advance(2)
			case tokIs(t, "USE"):
				if t1, ok1 = cur.peek(1); ok1 {
					p.Use = in.str(t1)
				}
				cur.advance(2)
			case tokIs(t, "PLACED") || tokIs(t, "FIXED"):
				_, ok3 := cur.peek(3)
				t1, _ = cur.peek(1)
				if ok3 && isLParen(t1) {
					tx, _ := cur.peek(2)
					x := atofTok(tx) / scale
					ty, _ := cur.peek(3)
					y := atofTok(ty) / scale
					p.Loc = geom.Pt(x, y)
					cur.advance(5)
				} else {
					cur.advance(1)
				}
			default:
				cur.advance(1)
			}
		}
		if d.Pins == nil && capHint > 0 {
			d.Pins = make([]IOPin, 0, capHint)
		}
		d.Pins = append(d.Pins, p)
	}
}

func (d *DEF) parseNetsStream(cur *tokCursor, in *interner) error {
	capHint := headerCount(cur)
	scale := float64(d.DBU)
	var lastPin string
	for {
		t, ok := cur.peek(0)
		if !ok {
			return fmt.Errorf("def: NETS not terminated")
		}
		if tokIs(t, "END") {
			cur.advance(2)
			return nil
		}
		if !tokIs(t, "-") {
			return fmt.Errorf("def: expected '-' in NETS, got %q", string(t))
		}
		t1, ok1 := cur.peek(1)
		if !ok1 {
			return fmt.Errorf("def: truncated NETS entry")
		}
		n := Net{Name: string(t1)}
		cur.advance(2)
		for {
			t, ok = cur.peek(0)
			if !ok {
				return fmt.Errorf("def: NETS not terminated")
			}
			if isSemi(t) {
				cur.advance(1)
				break
			}
			switch {
			case isLParen(t):
				if _, ok2 := cur.peek(2); ok2 {
					t1, _ = cur.peek(1)
					comp := string(t1)
					t2, _ := cur.peek(2)
					// Pin names cluster (a clock net is all CK pins), so the
					// same last-value cache as the COMPONENTS macro field.
					if !tokIs(t2, lastPin) {
						lastPin = in.str(t2)
					}
					n.Conns = append(n.Conns, Conn{Comp: comp, Pin: lastPin})
					cur.advance(3)
				} else {
					cur.advance(1)
				}
			case isPlus(t):
				t1, ok1 = cur.peek(1)
				switch {
				case !ok1:
					cur.advance(1)
				case tokIs(t1, "USE"):
					if t2, ok2 := cur.peek(2); ok2 {
						n.Use = in.str(t2)
					}
					cur.advance(3)
				case tokIs(t1, "ROUTED"):
					cur.advance(2)
					n.Routes = parseRoutesStream(cur, in, scale)
				default:
					cur.advance(1)
				}
			default:
				cur.advance(1)
			}
		}
		if d.Nets == nil && capHint > 0 {
			d.Nets = make([]Net, 0, capHint)
		}
		d.Nets = append(d.Nets, n)
	}
}

// parseRoutesStream consumes routed wiring after "+ ROUTED": one polyline
// per layer section, sections separated by NEW. Coordinates may use the DEF
// "*" shorthand for "unchanged". Stops at the first token that does not
// belong to the route (';', '+', end of input), leaving it unconsumed.
func parseRoutesStream(cur *tokCursor, in *interner, scale float64) []Route {
	var routes []Route
	for {
		t, ok := cur.peek(0)
		if !ok || isSemi(t) || isPlus(t) {
			return routes
		}
		layer := in.str(t)
		cur.advance(1)
		r := Route{Layer: layer}
		var last geom.Point
		for {
			if _, ok2 := cur.peek(2); !ok2 {
				break
			}
			t0, _ := cur.peek(0)
			if !isLParen(t0) {
				break
			}
			// ( x y ) with * meaning "same as previous".
			tx, _ := cur.peek(1)
			x := last.X
			if !isStar(tx) {
				x = atofTok(tx) / scale
			}
			ty, _ := cur.peek(2)
			y := last.Y
			if !isStar(ty) {
				y = atofTok(ty) / scale
			}
			last = geom.Pt(x, y)
			r.Points = append(r.Points, last)
			cur.advance(4) // ( x y )
		}
		routes = append(routes, r)
		if t, ok = cur.peek(0); ok && tokIs(t, "NEW") {
			cur.advance(1)
			continue
		}
		return routes
	}
}

// WriteDEF emits DEF-lite source. It is a convenience wrapper over WriteTo.
func (d *DEF) WriteDEF() string {
	var b strings.Builder
	d.WriteTo(&b) // strings.Builder writes cannot fail
	return b.String()
}
