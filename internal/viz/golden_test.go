package viz

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// TestSVGGolden locks the exact SVG emitted for the demo tree. The renderer
// feeds the paper's Fig. 1 gallery; byte-identical output across runs and
// refactors is part of the repository's determinism contract. Regenerate
// with `go test ./internal/viz -run Golden -update` and review the diff.
func TestSVGGolden(t *testing.T) {
	got := SVG(demoTree(), DefaultStyle("golden demo"))
	path := filepath.Join("testdata", "demo_golden.svg")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("SVG output drifted from golden file %s;\nrerun with -update and review the diff\ngot %d bytes, want %d", path, len(got), len(want))
	}
}
