// Package viz renders clock trees as standalone SVG documents — the
// repository's reproduction of the paper's Fig. 1 routing-topology gallery.
// Wires are drawn as L-shaped (horizontal-then-vertical) routes; snaked
// wire is annotated with a dashed overlay proportional to the detour.
package viz

import (
	"fmt"
	"strings"

	"sllt/internal/geom"
	"sllt/internal/tree"
)

// Style configures rendering.
type Style struct {
	Width    int // pixel width of the SVG canvas
	WireCol  string
	SinkCol  string
	SrcCol   string
	BufCol   string
	SteinCol string
	Title    string
}

// DefaultStyle returns a readable default.
func DefaultStyle(title string) Style {
	return Style{
		Width:    480,
		WireCol:  "#2563eb",
		SinkCol:  "#dc2626",
		SrcCol:   "#16a34a",
		BufCol:   "#d97706",
		SteinCol: "#6b7280",
		Title:    title,
	}
}

// SVG renders the tree.
func SVG(t *tree.Tree, st Style) string {
	if st.Width <= 0 {
		st.Width = 480
	}
	bb := t.BBox()
	if bb.Empty() {
		bb = geom.Rect{XLo: 0, YLo: 0, XHi: 1, YHi: 1}
	}
	pad := 0.06 * (bb.W() + bb.H() + 1)
	bb = geom.Rect{XLo: bb.XLo - pad, YLo: bb.YLo - pad, XHi: bb.XHi + pad, YHi: bb.YHi + pad}
	w := float64(st.Width)
	scale := w / bb.W()
	h := bb.H() * scale
	// SVG y grows downward; flip so the layout reads like a die plot.
	tx := func(p geom.Point) (float64, float64) {
		return (p.X - bb.XLo) * scale, h - (p.Y-bb.YLo)*scale
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %g %g">`+"\n",
		st.Width, int(h)+24, w, h+24)
	fmt.Fprintf(&b, `<rect width="100%%" height="100%%" fill="white"/>`+"\n")
	if st.Title != "" {
		fmt.Fprintf(&b, `<text x="6" y="%g" font-family="monospace" font-size="12">%s</text>`+"\n", h+16, st.Title)
	}

	r := 0.006 * w
	if r < 2 {
		r = 2
	}
	t.Walk(func(n *tree.Node) bool {
		if n.Parent != nil {
			x1, y1 := tx(n.Parent.Loc)
			x2, y2 := tx(n.Loc)
			// L route: horizontal first, then vertical.
			fmt.Fprintf(&b, `<polyline points="%.1f,%.1f %.1f,%.1f %.1f,%.1f" fill="none" stroke="%s" stroke-width="1.3"/>`+"\n",
				x1, y1, x2, y1, x2, y2, st.WireCol)
			if md := n.Parent.Loc.Dist(n.Loc); n.EdgeLen > md+geom.Eps {
				// Snaked wire: dashed marker at the child end, sized by the
				// detour length.
				extra := (n.EdgeLen - md) * scale / 2
				fmt.Fprintf(&b, `<path d="M %.1f %.1f l %.1f 0 l 0 4 l %.1f 0" fill="none" stroke="%s" stroke-width="1" stroke-dasharray="3,2"/>`+"\n",
					x2, y2, extra, -extra, st.WireCol)
			}
		}
		x, y := tx(n.Loc)
		switch n.Kind {
		case tree.Source:
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
				x-1.5*r, y-1.5*r, 3*r, 3*r, st.SrcCol)
		case tree.Sink:
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"/>`+"\n", x, y, r, st.SinkCol)
		case tree.Buffer:
			fmt.Fprintf(&b, `<polygon points="%.1f,%.1f %.1f,%.1f %.1f,%.1f" fill="%s"/>`+"\n",
				x-r, y-r, x-r, y+r, x+r, y, st.BufCol)
		default:
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"/>`+"\n", x, y, r*0.6, st.SteinCol)
		}
		return true
	})
	b.WriteString("</svg>\n")
	return b.String()
}
