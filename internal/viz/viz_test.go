package viz

import (
	"strings"
	"testing"

	"sllt/internal/geom"
	"sllt/internal/tree"
)

func demoTree() *tree.Tree {
	t := tree.New(geom.Pt(0, 0))
	buf := tree.NewNode(tree.Buffer, geom.Pt(5, 0))
	buf.BufCell = "CLKBUFX4"
	t.Root.AddChild(buf)
	st := tree.NewNode(tree.Steiner, geom.Pt(10, 0))
	buf.AddChild(st)
	a := tree.NewNode(tree.Sink, geom.Pt(15, 5))
	a.SinkIdx = 0
	st.AddChild(a)
	b := tree.NewNode(tree.Sink, geom.Pt(15, -5))
	b.SinkIdx = 1
	st.AddChild(b)
	b.EdgeLen = 20 // snaked
	return t
}

func TestSVGStructure(t *testing.T) {
	svg := SVG(demoTree(), DefaultStyle("demo α=1.0"))
	for _, want := range []string{
		"<svg", "</svg>", "polyline", // wires
		"<circle",   // sinks + steiner
		"polygon",   // buffer marker
		"<rect",     // source marker
		"demo",      // title
		"dasharray", // snake annotation
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// One polyline per non-root node.
	if got := strings.Count(svg, "<polyline"); got != 4 {
		t.Errorf("polylines = %d, want 4", got)
	}
}

func TestSVGDegenerate(t *testing.T) {
	// Single-node tree must not panic or divide by zero.
	tr := tree.New(geom.Pt(3, 3))
	svg := SVG(tr, DefaultStyle(""))
	if !strings.Contains(svg, "</svg>") {
		t.Error("degenerate SVG malformed")
	}
}
