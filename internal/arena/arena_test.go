package arena

import "testing"

func TestAllocNZeroedAndDisjoint(t *testing.T) {
	var a Arena[int]
	x := a.AllocN(10)
	y := a.AllocN(10)
	if len(x) != 10 || len(y) != 10 {
		t.Fatalf("lengths = %d, %d", len(x), len(y))
	}
	for i := range x {
		x[i] = i + 1
		y[i] = -(i + 1)
	}
	for i := range x {
		if x[i] != i+1 || y[i] != -(i+1) {
			t.Fatalf("overlap at %d: x=%d y=%d", i, x[i], y[i])
		}
	}
	// Full capacity slice: appending must not clobber the neighbour.
	x = append(x[:10:10], 99)
	if y[0] != -1 {
		t.Fatal("append to one allocation clobbered another")
	}
}

func TestResetZeroesAndReuses(t *testing.T) {
	var a Arena[int]
	s := a.AllocN(100)
	for i := range s {
		s[i] = 7
	}
	foot := a.Footprint()
	a.Reset()
	if a.Live() != 0 {
		t.Fatalf("Live after Reset = %d", a.Live())
	}
	s2 := a.AllocN(100)
	for i, v := range s2 {
		if v != 0 {
			t.Fatalf("reused memory not zeroed at %d: %d", i, v)
		}
	}
	if &s[0] != &s2[0] {
		t.Fatal("Reset did not reuse the slab")
	}
	if a.Footprint() != foot {
		t.Fatalf("Footprint changed across Reset: %d -> %d", foot, a.Footprint())
	}
}

func TestLargeAllocGetsOwnSlab(t *testing.T) {
	var a Arena[byte]
	big := a.AllocN(3 * maxSlab)
	if len(big) != 3*maxSlab {
		t.Fatalf("len = %d", len(big))
	}
	small := a.AllocN(1)
	small[0] = 1
	big[len(big)-1] = 2
	if small[0] != 1 {
		t.Fatal("allocations overlap")
	}
}

func TestAllocPointerStableUntilReset(t *testing.T) {
	var a Arena[[2]float64]
	p := a.Alloc()
	(*p)[0] = 1.5
	for i := 0; i < 10_000; i++ {
		_ = a.Alloc()
	}
	if (*p)[0] != 1.5 {
		t.Fatal("earlier allocation moved or was clobbered by later ones")
	}
}

func TestSteadyStateAllocFree(t *testing.T) {
	var a Arena[int]
	round := func() {
		for i := 0; i < 50; i++ {
			s := a.AllocN(100)
			s[0] = i
		}
		a.Reset()
	}
	round() // warm up slab growth
	round()
	if n := testing.AllocsPerRun(50, round); n != 0 {
		t.Fatalf("steady-state round allocates %.1f times, want 0", n)
	}
}

func TestAllocNNonPositive(t *testing.T) {
	var a Arena[int]
	if s := a.AllocN(0); s != nil {
		t.Fatal("AllocN(0) should be nil")
	}
	if s := a.AllocN(-3); s != nil {
		t.Fatal("AllocN(-3) should be nil")
	}
}
