// Package arena provides a typed slab allocator for per-level flow scratch:
// objects whose lifetimes end together and whose backing memory should be
// reused across iterations instead of churning the garbage collector.
//
// An Arena hands out zeroed values carved from progressively larger slabs.
// Reset zeroes the used portions and rewinds the arena, keeping every slab
// for reuse — after a few warm-up rounds a steady-state loop performs no
// allocations at all.
//
// Ownership rule: everything obtained from an Arena is valid only until the
// next Reset. Results that outlive the loop (cached clusters, the final
// tree) must be heap-allocated or copied out — never retained from arena
// memory. Arenas are not safe for concurrent use.
package arena

// minSlab is the element count of the first slab; subsequent slabs double up
// to maxSlab so large designs amortize to a handful of allocations without
// small users paying for huge blocks.
const (
	minSlab = 256
	maxSlab = 1 << 18
)

// Arena is a typed slab allocator. The zero value is ready to use.
type Arena[T any] struct {
	slabs  [][]T // every slab ever grown; len = used, cap = slab size
	active int   // slab currently being filled
}

// AllocN returns a zeroed, contiguous []T of length n with capacity clamped
// to n (appending to it cannot clobber neighbouring arena values). The slice
// is valid until Reset.
func (a *Arena[T]) AllocN(n int) []T {
	if n <= 0 {
		return nil
	}
	for {
		if a.active < len(a.slabs) {
			s := a.slabs[a.active]
			if cap(s)-len(s) >= n {
				off := len(s)
				a.slabs[a.active] = s[: off+n : cap(s)]
				return s[off : off+n : off+n]
			}
			// Too full (or a small earlier-epoch slab): move on. The
			// remainder is dead until Reset; slab sizes double, so the
			// waste is bounded by half the arena.
			a.active++
			continue
		}
		size := minSlab
		if len(a.slabs) > 0 {
			size = 2 * cap(a.slabs[len(a.slabs)-1])
			if size > maxSlab {
				size = maxSlab
			}
		}
		if size < n {
			size = n
		}
		a.slabs = append(a.slabs, make([]T, 0, size))
	}
}

// Alloc returns a pointer to one zeroed T, valid until Reset.
func (a *Arena[T]) Alloc() *T {
	return &a.AllocN(1)[0]
}

// Reset rewinds the arena, zeroing everything handed out so the next round
// starts from zeroed memory again. All previously returned slices and
// pointers become invalid (their contents are cleared, and they will be
// handed out again).
func (a *Arena[T]) Reset() {
	for i, s := range a.slabs {
		clear(s)
		a.slabs[i] = s[:0]
	}
	a.active = 0
}

// Live reports how many elements are currently handed out.
func (a *Arena[T]) Live() int {
	n := 0
	for _, s := range a.slabs {
		n += len(s)
	}
	return n
}

// Footprint reports the total element capacity the arena retains across
// Resets.
func (a *Arena[T]) Footprint() int {
	n := 0
	for _, s := range a.slabs {
		n += cap(s)
	}
	return n
}
