package cts

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"sllt/internal/design"
	"sllt/internal/geom"
	"sllt/internal/tree"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// goldenDesign is a tiny hand-placed design: four flip-flops in a square
// around a central clock root.
func goldenDesign() *design.Design {
	d := &design.Design{
		Name:      "golden",
		Die:       geom.Rect{XLo: 0, YLo: 0, XHi: 40, YHi: 40},
		DBU:       1000,
		ClockNet:  "clk",
		ClockRoot: geom.Pt(20, 20),
	}
	for i, p := range []geom.Point{
		geom.Pt(10, 10), geom.Pt(30, 10), geom.Pt(10, 30), geom.Pt(30, 30),
	} {
		d.Insts = append(d.Insts, design.Instance{
			Name: "ff_" + string(rune('a'+i)), Macro: "DFFX1", Loc: p,
			IsSink: true, ClockPin: "CK", ClockPinCap: 1.5,
		})
	}
	return d
}

// goldenTree hand-builds the synthesized tree for goldenDesign: one root
// buffer, two Steiner arms, the four sinks, with one snaked edge so the
// serpentine emission path is exercised.
func goldenTree(d *design.Design) *tree.Tree {
	t := tree.New(d.ClockRoot)
	buf := tree.NewNode(tree.Buffer, geom.Pt(20, 20))
	buf.BufCell = "CLKBUFX4"
	buf.PinCap = 3
	t.Root.AddChild(buf)
	left := tree.NewNode(tree.Steiner, geom.Pt(10, 20))
	right := tree.NewNode(tree.Steiner, geom.Pt(30, 20))
	buf.AddChild(left)
	buf.AddChild(right)
	net := d.Net()
	for i := range net.Sinks {
		s := net.SinkNode(i)
		if s.Loc.X < 20 {
			left.AddChild(s)
		} else {
			right.AddChild(s)
		}
	}
	// Snake the first left sink's wire by 4 µm.
	left.Children[0].EdgeLen += 4
	return t
}

// TestExportDEFGolden locks the exact DEF-lite text emitted for a small
// fixed net. The DEF is the CTS→routing interface; any drift in component
// ordering, net decomposition or routed geometry shows up here as a byte
// diff. Regenerate with `go test ./internal/cts -run Golden -update`.
func TestExportDEFGolden(t *testing.T) {
	d := goldenDesign()
	res := &Result{Tree: goldenTree(d)}
	got := ExportDEF(d, res).WriteDEF()
	path := filepath.Join("testdata", "export_golden.def")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("DEF output drifted from golden file %s;\nrerun with -update and review the diff\ngot %d bytes, want %d", path, len(got), len(want))
	}
}
