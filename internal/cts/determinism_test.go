package cts

import (
	"runtime"
	"testing"

	"sllt/internal/designgen"
)

// TestRunDeterministicDEF is the end-to-end determinism regression the
// slltlint suite exists to protect: running the full hierarchical flow
// on a Table-4-class synthetic design must export byte-identical DEF — not
// just matching aggregate report numbers, which can agree while buffer
// placements or net decompositions silently differ. The check covers both
// axes: same seed, same Workers (run-to-run stability) and serial vs
// parallel (Workers=1 vs Workers=8), which is the regression oracle for the
// internal/parallel execution layer — any completion-order or
// float-reordering leak in the fanned-out cluster builds, k-means passes or
// clustering restarts shows up here as a byte diff.
func TestRunDeterministicDEF(t *testing.T) {
	// The box has however many cores CI grants it; force real goroutine
	// interleaving for the parallel runs regardless.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	runtime.GOMAXPROCS(8)

	// A scaled-down s38584-class design: same utilization and FF ratio,
	// sized so the runs stay fast in CI.
	spec := designgen.Spec{Name: "s38584_cls", Insts: 900, FFs: 150, Util: 0.60}
	d := designgen.Generate(spec, 7)

	run := func(workers int) string {
		opts := DefaultOptions()
		opts.SAIters = 60
		opts.Workers = workers
		res, err := Run(d, opts)
		if err != nil {
			t.Fatal(err)
		}
		return ExportDEF(d, res).WriteDEF()
	}

	serial := run(1)
	for name, other := range map[string]string{
		"rerun with Workers=1": run(1),
		"run with Workers=8":   run(8),
	} {
		if other == serial {
			continue
		}
		// Locate the first divergence for a useful failure message.
		i := 0
		for i < len(serial) && i < len(other) && serial[i] == other[i] {
			i++
		}
		lo := i - 60
		if lo < 0 {
			lo = 0
		}
		ha, hb := serial[lo:min(i+60, len(serial))], other[lo:min(i+60, len(other))]
		t.Fatalf("%s exports different DEF than serial (lengths %d vs %d); first divergence at byte %d:\n serial: …%s…\n other:  …%s…",
			name, len(serial), len(other), i, ha, hb)
	}
}

// TestRunDeterministicDEFWorkersSweep drives the flow across the full
// worker range on a smaller design, so a scheduling dependence that only
// shows at a particular fan-out width still gets caught.
func TestRunDeterministicDEFWorkersSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("workers sweep is a race-CI test")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	runtime.GOMAXPROCS(8)

	spec := designgen.Spec{Name: "sweep", Insts: 400, FFs: 80, Util: 0.60}
	d := designgen.Generate(spec, 3)
	run := func(workers int) string {
		opts := DefaultOptions()
		opts.SAIters = 40
		opts.Workers = workers
		res, err := Run(d, opts)
		if err != nil {
			t.Fatal(err)
		}
		return ExportDEF(d, res).WriteDEF()
	}
	ref := run(1)
	for _, w := range []int{2, 3, 4, 8, 64} {
		if got := run(w); got != ref {
			t.Fatalf("Workers=%d DEF differs from serial (%d vs %d bytes)", w, len(got), len(ref))
		}
	}
}
