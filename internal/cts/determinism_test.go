package cts

import (
	"testing"

	"sllt/internal/designgen"
)

// TestRunDeterministicDEF is the end-to-end determinism regression the
// slltlint suite exists to protect: running the full hierarchical flow
// twice with the same seed on a Table-4-class synthetic design must export
// byte-identical DEF — not just matching aggregate report numbers, which
// can agree while buffer placements or net decompositions silently differ.
func TestRunDeterministicDEF(t *testing.T) {
	// A scaled-down s38584-class design: same utilization and FF ratio,
	// sized so two full runs stay fast in CI.
	spec := designgen.Spec{Name: "s38584_cls", Insts: 900, FFs: 150, Util: 0.60}
	d := designgen.Generate(spec, 7)
	opts := DefaultOptions()
	opts.SAIters = 60

	run := func() string {
		res, err := Run(d, opts)
		if err != nil {
			t.Fatal(err)
		}
		return ExportDEF(d, res).WriteDEF()
	}
	a := run()
	b := run()
	if a != b {
		// Locate the first divergence for a useful failure message.
		i := 0
		for i < len(a) && i < len(b) && a[i] == b[i] {
			i++
		}
		lo := i - 60
		if lo < 0 {
			lo = 0
		}
		ha, hb := a[lo:min(i+60, len(a))], b[lo:min(i+60, len(b))]
		t.Fatalf("same-seed runs export different DEF (lengths %d vs %d); first divergence at byte %d:\n run1: …%s…\n run2: …%s…",
			len(a), len(b), i, ha, hb)
	}
}
