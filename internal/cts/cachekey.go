package cts

import (
	"sllt/internal/cache"
	"sllt/internal/liberty"
	"sllt/internal/tech"
)

// cacheSalt versions every key the cts cache driver derives. Bump it
// whenever key derivation, a stage-value encoding, or the semantics of any
// cached stage change — old entries then become unreachable instead of
// wrong. The golden-key fixtures in cachekey_golden_test.go exist to make
// this deliberate: a key change without a salt bump fails the fixture test.
const cacheSalt = "sllt.cts.cache/v1"

// Cached stage names. Each must correspond to a function carrying the
// matching `// stage:` annotation, verified transitively pure by the
// stagepure analyzer — that annotation is the cache admission gate, and
// TestCachedStagesAreAnnotated enforces the correspondence.
const (
	stagePartition = "partition"
	stageCluster   = "cluster_build"
	stageTopNet    = "top_net"
	stageTiming    = "timing"
)

// cachedStages lists every stage the driver consults the store for.
var cachedStages = []string{stagePartition, stageCluster, stageTopNet, stageTiming}

// libFingerprint folds the entire buffer library into the hash: every cell
// coefficient reaches delay estimation, buffer sizing and timing.
func libFingerprint(h *cache.Hasher, lib *liberty.Library) {
	h.Str("lib").Str(lib.Name).List(len(lib.Cells))
	for _, c := range lib.Cells {
		h.Str(c.Name).F64(c.InputCap).F64(c.MaxCap).F64(c.Area).
			F64(c.WS).F64(c.WC).F64(c.WI).F64(c.SC).F64(c.SI)
	}
}

// techFingerprint folds the process parameters into the hash.
func techFingerprint(h *cache.Hasher, t tech.Tech) {
	h.Str("tech").Str(t.Name).F64(t.RPerUm).F64(t.CPerUm).F64(t.SinkCap)
}

// runBase derives the per-run base key: everything that is constant across
// stages and levels — constraints, technology, library, builder identity and
// the option knobs that reach any cached stage. Per-stage keys extend it
// with the stage name and the stage's own inputs. Workers and Obs are
// deliberately absent: both are byte-identity-neutral (property-tested), so
// a cache warmed at W=8 serves a W=1 run and vice versa.
func runBase(opts Options) cache.Key {
	h := cache.NewHasher(cacheSalt)
	h.Str("cons").F64(opts.Cons.SkewBound).Int(opts.Cons.MaxFanout).
		F64(opts.Cons.MaxCap).F64(opts.Cons.MaxWL)
	techFingerprint(h, opts.Tech)
	libFingerprint(h, opts.Lib)
	h.Str("build").Str(opts.BuildID)
	h.Str("knobs").Int(int(opts.Est)).Bool(opts.UseSA).Int(opts.SAIters).
		I64(opts.Seed).F64(opts.SourceSlew).F64(opts.BufferMargin).
		Str(opts.ForceCell).Int(opts.KMeansRestarts)
	return h.Sum()
}

// sinkID is the content address of one original sink: the leaf identity
// from which every higher-level node identity derives.
func sinkID(base cache.Key, name string, x, y, cap float64, idx int) cache.Key {
	h := cache.NewHasher(cacheSalt)
	h.Key(base).Str("sink").Str(name).F64(x).F64(y).F64(cap).Int(idx)
	return h.Sum()
}

// partitionKey addresses one level's partition stage: the level index (it
// offsets the k-means and SA seeds) and each node's location and cap — the
// exact inputs partitionLevel reads. Node delays do not reach partitioning,
// so they are deliberately absent.
func partitionKey(base cache.Key, level int, nodes []clockNode) cache.Key {
	h := cache.NewHasher(cacheSalt)
	h.Key(base).Str(stagePartition).Int(level).List(len(nodes))
	for i := range nodes {
		h.F64(nodes[i].loc.X).F64(nodes[i].loc.Y).F64(nodes[i].cap)
	}
	return h.Sum()
}

// clusterKey addresses one cluster's build: the per-net skew share and each
// member's identity, geometry, cap and delay annotation. A member's id is
// the key of the stage that produced it (hierarchical identity propagation —
// dagger's trick), so a change anywhere in a member's history changes this
// key without re-hashing the subtree's content.
func clusterKey(base cache.Key, levelBound float64, members []clockNode, ids []cache.Key) cache.Key {
	h := cache.NewHasher(cacheSalt)
	h.Key(base).Str(stageCluster).F64(levelBound).List(len(members))
	for i := range members {
		h.Key(ids[i]).F64(members[i].loc.X).F64(members[i].loc.Y).
			F64(members[i].cap).F64(members[i].delay)
	}
	return h.Sum()
}

// topNetKey addresses the top-level net build from the clock root over the
// surviving drivers.
func topNetKey(base cache.Key, rootX, rootY, levelBound float64, nodes []clockNode, ids []cache.Key) cache.Key {
	h := cache.NewHasher(cacheSalt)
	h.Key(base).Str(stageTopNet).F64(rootX).F64(rootY).F64(levelBound).List(len(nodes))
	for i := range nodes {
		h.Key(ids[i]).F64(nodes[i].loc.X).F64(nodes[i].loc.Y).
			F64(nodes[i].cap).F64(nodes[i].delay)
	}
	return h.Sum()
}

// timingKey addresses the terminal STA pass by the identity of the tree it
// analyzes — the top-net stage key — rather than the tree's bytes; the
// library, technology and source slew are already folded into base.
func timingKey(base, topKey cache.Key) cache.Key {
	h := cache.NewHasher(cacheSalt)
	h.Key(base).Str(stageTiming).Key(topKey)
	return h.Sum()
}

// derivedID is the identity a cache-visible stage output carries forward:
// the key that produced it. Content-addressing makes this sound — equal keys
// imply byte-identical outputs for stagepure-verified stages.
func derivedID(stageKey cache.Key) cache.Key { return stageKey }
