package cts

import "sllt/internal/arena"

// levelScratch is Run's per-flow arena set: the construction memory a level
// needs — node slices, member index buckets, cluster headers — is carved
// from arenas that rewind between levels instead of churning the heap, so a
// million-sink flow's level loop reaches a steady state with no per-level
// slice allocations for these structures.
//
// Level L carves its backing and next-level node arrays from nodeA[L%2]
// while its input nodes live in the other arena (they were the previous
// level's output), so resetting nodeA[L%2] at the start of level L only
// reclaims memory that went dead when level L-1 consumed it. Everything the
// stage cache retains — partition assignments, driver subtrees, cluster
// values — stays on the ordinary heap; arena memory never outlives Run.
type levelScratch struct {
	nodeA [2]arena.Arena[clockNode]
	intA  arena.Arena[int]
	hdrA  arena.Arena[[]clockNode]
}

// nodesFor returns the node arena level carves from, reset and ready.
// The opposite arena — holding the level's input nodes — is untouched.
func (s *levelScratch) nodesFor(level int) *arena.Arena[clockNode] {
	a := &s.nodeA[level&1]
	a.Reset()
	return a
}

// resetLevel rewinds the arenas whose contents die with each level.
func (s *levelScratch) resetLevel() {
	s.intA.Reset()
	s.hdrA.Reset()
}
