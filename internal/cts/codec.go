package cts

import (
	"fmt"
	"sort"

	"sllt/internal/cache"
	"sllt/internal/geom"
	"sllt/internal/obs"
	"sllt/internal/timing"
	"sllt/internal/tree"
)

// Stage-value codecs: canonical byte encodings of each cached stage's
// output, exact enough that a decoded replay is byte-identical to a fresh
// build — the DEF exporter and tree.Fingerprint read every field encoded
// here (kind, name, location, edge length, pin cap, buffer cell, sink
// index, child order), so all of them round-trip bit-for-bit. Floats travel
// as IEEE-754 bit patterns (cache.Enc.F64); child order is preserved, not
// sorted: the deterministic flow makes structural order canonical already.

// minNodeBytes is the smallest encoding of one node (7 fixed u64 fields +
// two empty strings + child count); used to bound the child-count a decoder
// will trust before allocating.
const minNodeBytes = 8 * 8

// encodeNode writes n's record then recurses over its children, preserving
// child order. Every byte lands in the encoder's growing buffer; the warm
// path re-encodes whole level trees per run, so the walk itself stays
// allocation-free.
//
// hot:
func encodeNode(e *cache.Enc, n *tree.Node) {
	e.Int(int(n.Kind))
	e.Str(n.Name)
	e.F64(n.Loc.X)
	e.F64(n.Loc.Y)
	e.F64(n.EdgeLen)
	e.F64(n.PinCap)
	e.Str(n.BufCell)
	e.Int(n.SinkIdx)
	e.Int(len(n.Children))
	for _, c := range n.Children {
		encodeNode(e, c)
	}
}

func decodeNode(d *cache.Dec, remaining int) (*tree.Node, error) {
	if remaining <= 0 {
		return nil, fmt.Errorf("cts: cache entry: node nesting too deep")
	}
	n := &tree.Node{}
	n.Kind = tree.Kind(d.Int())
	n.Name = d.Str()
	x := d.F64()
	y := d.F64()
	n.Loc = geom.Pt(x, y)
	n.EdgeLen = d.F64()
	n.PinCap = d.F64()
	n.BufCell = d.Str()
	n.SinkIdx = d.Int()
	kids := d.Int()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if kids < 0 || kids > remaining {
		return nil, fmt.Errorf("cts: cache entry: implausible child count %d", kids)
	}
	if kids > 0 {
		n.Children = make([]*tree.Node, 0, kids)
		for i := 0; i < kids; i++ {
			c, err := decodeNode(d, remaining-1)
			if err != nil {
				return nil, err
			}
			c.Parent = n
			n.Children = append(n.Children, c)
		}
	}
	return n, nil
}

// maxTreeDepth bounds decoder recursion; the flow never builds trees
// remotely this deep, so the limit only rejects corrupt entries.
const maxTreeDepth = 10000

// partitionValue is the partition stage's output record.
type partitionValue struct {
	k      int
	method string
	assign []int
}

// hot:
func encodePartitionValue(v partitionValue) []byte {
	e := cache.NewEnc(8*len(v.assign) + 64)
	e.Int(v.k)
	e.Str(v.method)
	e.Int(len(v.assign))
	for _, a := range v.assign {
		e.Int(a)
	}
	return e.Bytes()
}

func decodePartitionValue(data []byte, wantNodes int) (partitionValue, error) {
	d := cache.NewDec(data)
	var v partitionValue
	v.k = d.Int()
	v.method = d.Str()
	n := d.Int()
	if err := d.Err(); err != nil {
		return v, err
	}
	if n != wantNodes {
		return v, fmt.Errorf("cts: cache entry: partition over %d nodes, want %d", n, wantNodes)
	}
	v.assign = make([]int, n)
	for i := range v.assign {
		v.assign[i] = d.Int()
		if a := v.assign[i]; d.Err() == nil && (a < 0 || a >= v.k) {
			return v, fmt.Errorf("cts: cache entry: assignment %d out of range [0,%d)", a, v.k)
		}
	}
	if !d.Done() {
		if err := d.Err(); err != nil {
			return v, err
		}
		return v, fmt.Errorf("cts: cache entry: trailing bytes after partition value")
	}
	return v, nil
}

// clusterValue is one cluster build's output record: the detached driver
// subtree that becomes the next level's balancing point, its annotation, and
// the net's own QoR (measured before grafting, needed so warm runs report
// the same per-level resources as cold ones).
type clusterValue struct {
	driver *tree.Node
	loc    geom.Point
	cap    float64 // unit: fF
	delay  float64 // unit: ps
	qor    obs.NetQoR
}

// hot:
func encodeClusterValue(v clusterValue) []byte {
	e := cache.NewEnc(1024)
	e.F64(v.loc.X)
	e.F64(v.loc.Y)
	e.F64(v.cap)
	e.F64(v.delay)
	e.F64(v.qor.WL)
	e.Int(v.qor.Buffers)
	e.F64(v.qor.BufArea)
	encodeNode(e, v.driver)
	return e.Bytes()
}

func decodeClusterValue(data []byte) (clusterValue, error) {
	d := cache.NewDec(data)
	var v clusterValue
	x := d.F64()
	y := d.F64()
	v.loc = geom.Pt(x, y)
	v.cap = d.F64()
	v.delay = d.F64()
	v.qor.WL = d.F64()
	v.qor.Buffers = d.Int()
	v.qor.BufArea = d.F64()
	n, err := decodeNode(d, maxTreeDepth)
	if err != nil {
		return v, err
	}
	if !d.Done() {
		return v, fmt.Errorf("cts: cache entry: trailing bytes after cluster value")
	}
	v.driver = n
	return v, nil
}

// topNetValue is the top-net stage's output: the finished tree (lower
// levels grafted in) plus the net's own QoR.
type topNetValue struct {
	root *tree.Node
	qor  obs.NetQoR
}

// hot:
func encodeTopNetValue(v topNetValue) []byte {
	e := cache.NewEnc(4096)
	e.F64(v.qor.WL)
	e.Int(v.qor.Buffers)
	e.F64(v.qor.BufArea)
	encodeNode(e, v.root)
	return e.Bytes()
}

func decodeTopNetValue(data []byte) (topNetValue, error) {
	d := cache.NewDec(data)
	var v topNetValue
	v.qor.WL = d.F64()
	v.qor.Buffers = d.Int()
	v.qor.BufArea = d.F64()
	n, err := decodeNode(d, maxTreeDepth)
	if err != nil {
		return v, err
	}
	if !d.Done() {
		return v, fmt.Errorf("cts: cache entry: trailing bytes after top net value")
	}
	v.root = n
	return v, nil
}

// hot:
func encodeTimingReport(r *timing.Report) []byte {
	e := cache.NewEnc(512 + 16*len(r.SinkLatency))
	e.F64(r.MaxLatency)
	e.F64(r.MinLatency)
	e.F64(r.Skew)
	e.F64(r.MaxSlew)
	e.Int(r.Buffers)
	e.F64(r.BufArea)
	e.F64(r.ClockCap)
	e.F64(r.WL)
	e.F64(r.MaxStgCap)
	idxs := make([]int, 0, len(r.SinkLatency))
	for i := range r.SinkLatency {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	e.Int(len(idxs))
	for _, i := range idxs {
		e.Int(i)
		e.F64(r.SinkLatency[i])
	}
	return e.Bytes()
}

func decodeTimingReport(data []byte) (*timing.Report, error) {
	d := cache.NewDec(data)
	r := &timing.Report{}
	r.MaxLatency = d.F64()
	r.MinLatency = d.F64()
	r.Skew = d.F64()
	r.MaxSlew = d.F64()
	r.Buffers = d.Int()
	r.BufArea = d.F64()
	r.ClockCap = d.F64()
	r.WL = d.F64()
	r.MaxStgCap = d.F64()
	n := d.Int()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n < 0 || n > len(data) {
		return nil, fmt.Errorf("cts: cache entry: implausible sink count %d", n)
	}
	r.SinkLatency = make(map[int]float64, n)
	for i := 0; i < n; i++ {
		idx := d.Int()
		r.SinkLatency[idx] = d.F64()
	}
	if !d.Done() {
		if err := d.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("cts: cache entry: trailing bytes after timing report")
	}
	return r, nil
}
