package cts

import (
	"testing"

	"sllt/internal/design"
	"sllt/internal/designgen"
	"sllt/internal/obs"
	"sllt/internal/tree"
)

// TestObsInvariance is the core observability property: attaching a
// recorder must never change a byte of the synthesized result. The flow is
// run with obs disabled and enabled, serial and parallel (W=1 and W=8), on
// both the tiny hand-built golden design and a generated Table-4-class
// design; every combination must export byte-identical DEF and an
// identical canonical tree fingerprint. A divergence here means an
// instrumentation hook leaked into algorithm state (e.g. a measurement
// that perturbs iteration order or float accumulation).
func TestObsInvariance(t *testing.T) {
	designs := map[string]struct {
		d       *design.Design
		saIters int
	}{
		"golden": {d: goldenDesign()},
		"gen":    {d: designgen.Generate(designgen.Spec{Name: "obsgen", Insts: 700, FFs: 140, Util: 0.6}, 5), saIters: 40},
	}
	for name, dt := range designs {
		t.Run(name, func(t *testing.T) {
			type runOut struct {
				def string
				fp  string
			}
			run := func(workers int, withObs bool) runOut {
				opts := DefaultOptions()
				if dt.saIters > 0 {
					opts.SAIters = dt.saIters
				}
				opts.Workers = workers
				if withObs {
					opts.Obs = obs.New(obs.NewManualClock(1))
				}
				res, err := Run(dt.d, opts)
				if err != nil {
					t.Fatal(err)
				}
				return runOut{
					def: ExportDEF(dt.d, res).WriteDEF(),
					fp:  tree.Fingerprint(res.Tree),
				}
			}
			base := run(1, false)
			for label, got := range map[string]runOut{
				"W=1 obs on":  run(1, true),
				"W=8 obs off": run(8, false),
				"W=8 obs on":  run(8, true),
			} {
				if got.fp != base.fp {
					t.Errorf("%s: tree fingerprint differs from W=1 obs off", label)
				}
				if got.def != base.def {
					t.Errorf("%s: exported DEF differs from W=1 obs off (lengths %d vs %d)",
						label, len(got.def), len(base.def))
				}
			}
		})
	}
}

// TestRunReportSchema validates a real flow's run report against the
// sllt.obs.report/v1.1 schema contract and cross-checks the report against
// the synthesis result it describes — one level record per tree level,
// totals matching the timing report, and all four stage spans present.
// The canonical byte-level fixture lives in internal/obs
// (testdata/report_golden.json); this test pins the producer side.
func TestRunReportSchema(t *testing.T) {
	spec := designgen.Spec{Name: "repgen", Insts: 600, FFs: 120, Util: 0.6}
	d := designgen.Generate(spec, 13)
	opts := DefaultOptions()
	opts.SAIters = 40
	opts.Obs = obs.New(obs.NewManualClock(1))
	res, err := Run(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep := opts.Obs.Snapshot()
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateReport(data); err != nil {
		t.Fatalf("run report does not validate: %v\n%s", err, data)
	}
	if len(rep.Levels) != res.Levels {
		t.Errorf("report has %d level records, flow built %d levels", len(rep.Levels), res.Levels)
	}
	if rep.Design != d.Name {
		t.Errorf("report design = %q, want %q", rep.Design, d.Name)
	}
	if got, want := rep.Totals.Buffers, res.Report.Buffers; got != want {
		t.Errorf("report total buffers = %d, timing report says %d", got, want)
	}
	if got, want := rep.Totals.WL, res.Report.WL; got != want {
		t.Errorf("report total WL = %g, timing report says %g", got, want)
	}
	stages := rep.StageNs()
	for _, name := range []string{"level", "partition", "clusters", "top_net", "timing"} {
		if stages[name] <= 0 {
			t.Errorf("stage %q missing from span tree (durations: %v)", name, stages)
		}
	}
}
