package cts

import (
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"sllt/internal/cache"
	"sllt/internal/design"
	"sllt/internal/designgen"
	"sllt/internal/obs"
	"sllt/internal/tree"
)

// cacheTestDesign generates a Table-4-class design small enough to run the
// flow several times per test.
func cacheTestDesign(seed int64) *design.Design {
	return designgen.Generate(designgen.Spec{Name: "cachegen", Insts: 600, FFs: 120, Util: 0.6}, seed)
}

type cacheFlowOut struct {
	def string
	fp  string
	res *Result
}

func runCacheFlow(t *testing.T, d *design.Design, mut func(*Options)) cacheFlowOut {
	t.Helper()
	opts := DefaultOptions()
	opts.SAIters = 40
	if mut != nil {
		mut(&opts)
	}
	res, err := Run(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	return cacheFlowOut{def: ExportDEF(d, res).WriteDEF(), fp: tree.Fingerprint(res.Tree), res: res}
}

// TestCacheByteIdentity is the cache's core correctness property: attaching
// a store must never change a byte of the synthesized result — not on the
// cold run that populates it, not on the warm run that replays it, at any
// worker count, with observability on or off. A divergence means a codec
// dropped a field, a key missed an input, or replay skipped a side effect
// the result depends on.
func TestCacheByteIdentity(t *testing.T) {
	designs := map[string]func() *design.Design{
		"golden": goldenDesign,
		"gen":    func() *design.Design { return cacheTestDesign(5) },
	}
	for name, mk := range designs {
		t.Run(name, func(t *testing.T) {
			base := runCacheFlow(t, mk(), func(o *Options) { o.Workers = 1 })

			c, err := cache.New(cache.Config{})
			if err != nil {
				t.Fatal(err)
			}
			variants := map[string]func(*Options){
				"cold W=1":        func(o *Options) { o.Workers = 1; o.Cache = c },
				"warm W=1":        func(o *Options) { o.Workers = 1; o.Cache = c },
				"warm W=8":        func(o *Options) { o.Workers = 8; o.Cache = c },
				"warm W=8 obs on": func(o *Options) { o.Workers = 8; o.Cache = c; o.Obs = obs.New(obs.NewManualClock(1)) },
			}
			// Order matters (cold populates, warm replays): iterate explicitly.
			for _, label := range []string{"cold W=1", "warm W=1", "warm W=8", "warm W=8 obs on"} {
				got := runCacheFlow(t, mk(), variants[label])
				if got.fp != base.fp {
					t.Errorf("%s: tree fingerprint differs from uncached W=1", label)
				}
				if got.def != base.def {
					t.Errorf("%s: exported DEF differs from uncached W=1 (lengths %d vs %d)",
						label, len(got.def), len(base.def))
				}
			}

			// A cache warmed at W=8 must serve a W=1 run: workers are not keyed.
			c2, err := cache.New(cache.Config{})
			if err != nil {
				t.Fatal(err)
			}
			runCacheFlow(t, mk(), func(o *Options) { o.Workers = 8; o.Cache = c2 })
			prev := c2.Stats()
			got := runCacheFlow(t, mk(), func(o *Options) { o.Workers = 1; o.Cache = c2 })
			if got.fp != base.fp || got.def != base.def {
				t.Error("W=1 replay of a W=8-warmed cache differs from uncached run")
			}
			if d := c2.Stats().Sub(prev).Total(); d.Misses != 0 {
				t.Errorf("W=1 run against W=8-warmed cache missed %d times, want 0", d.Misses)
			}
		})
	}
}

// TestCacheWarmHitRates pins the replay economics: an identical re-run must
// hit on every consulted stage — partition once per level, one cluster build
// per cluster, one top net, one timing pass — and recompute nothing.
func TestCacheWarmHitRates(t *testing.T) {
	d := cacheTestDesign(7)
	c, err := cache.New(cache.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cold := runCacheFlow(t, d, func(o *Options) { o.Cache = c })
	prev := c.Stats()
	warm := runCacheFlow(t, cacheTestDesign(7), func(o *Options) { o.Cache = c })
	delta := c.Stats().Sub(prev)

	if warm.fp != cold.fp {
		t.Fatal("warm replay fingerprint differs from cold run")
	}
	total := delta.Total()
	if total.Misses != 0 {
		t.Errorf("warm run missed %d times, want 0 (per stage: %+v)", total.Misses, delta.Stages)
	}
	clusters := 0
	for _, k := range cold.res.Clusters[:len(cold.res.Clusters)-1] {
		clusters += k
	}
	if got := delta.Stages[stageCluster].Hits; got != int64(clusters) {
		t.Errorf("cluster stage hits = %d, want one per cluster = %d", got, clusters)
	}
	if got := delta.Stages[stagePartition].Hits; got != int64(cold.res.Levels-1) {
		t.Errorf("partition hits = %d, want one per partitioned level = %d", got, cold.res.Levels-1)
	}
	for _, stage := range []string{stageTopNet, stageTiming} {
		if got := delta.Stages[stage].Hits; got != 1 {
			t.Errorf("%s hits = %d, want 1", stage, got)
		}
	}
}

// TestCacheDiskWarm round-trips the flow through the on-disk tier: a second
// Cache over the same directory (cold memory) must replay every stage from
// disk and produce a byte-identical result.
func TestCacheDiskWarm(t *testing.T) {
	dir := t.TempDir()
	c1, err := cache.New(cache.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	cold := runCacheFlow(t, cacheTestDesign(9), func(o *Options) { o.Cache = c1 })

	c2, err := cache.New(cache.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	warm := runCacheFlow(t, cacheTestDesign(9), func(o *Options) { o.Cache = c2 })
	if warm.fp != cold.fp || warm.def != cold.def {
		t.Error("disk-warmed replay differs from cold run")
	}
	total := c2.Stats().Total()
	if total.Misses != 0 {
		t.Errorf("disk-warmed run missed %d times, want 0", total.Misses)
	}
	if total.BytesRead == 0 {
		t.Error("disk-warmed run read 0 bytes from the disk tier")
	}
}

// TestCacheECO is the incremental re-run property: after moving one sink,
// the warm run must (a) stay byte-identical to an uncached run of the moved
// design, and (b) replay the clusters the move did not dirty — the point of
// hierarchical identity propagation. SA refinement is off here: annealing
// acceptance cascades make cluster membership chaotic under perturbation,
// which is an ECO-economics property of the partitioner, not of the cache.
func TestCacheECO(t *testing.T) {
	mk := func() *design.Design {
		return designgen.Generate(designgen.Spec{Name: "ecogen", Insts: 900, FFs: 180, Util: 0.6}, 11)
	}
	move := func(d *design.Design) *design.Design {
		for i := range d.Insts {
			if d.Insts[i].IsSink {
				d.Insts[i].Loc.X += 1.0
				d.Insts[i].Loc.Y += 0.5
				break
			}
		}
		return d
	}
	noSA := func(o *Options) { o.UseSA = false }

	c, err := cache.New(cache.Config{})
	if err != nil {
		t.Fatal(err)
	}
	runCacheFlow(t, mk(), func(o *Options) { noSA(o); o.Cache = c })

	prev := c.Stats()
	eco := runCacheFlow(t, move(mk()), func(o *Options) { noSA(o); o.Cache = c })
	delta := c.Stats().Sub(prev)

	plain := runCacheFlow(t, move(mk()), noSA)
	if eco.fp != plain.fp || eco.def != plain.def {
		t.Error("ECO replay differs from uncached run of the moved design")
	}

	cs := delta.Stages[stageCluster]
	if cs.Hits == 0 {
		t.Errorf("ECO run replayed no clusters (hits=0, misses=%d): dirtiness is not localized", cs.Misses)
	}
	if cs.Misses == 0 {
		t.Error("ECO run rebuilt no clusters: the moved sink's cluster should have missed")
	}
	t.Logf("ECO cluster economics: %d replayed, %d rebuilt (hit rate %.0f%%)",
		cs.Hits, cs.Misses, 100*cs.HitRate())
}

// TestCacheReportSection checks the obs integration: a cached run's report
// carries the v1.1 cache section with consistent totals, and it validates.
func TestCacheReportSection(t *testing.T) {
	c, err := cache.New(cache.Config{})
	if err != nil {
		t.Fatal(err)
	}
	d := cacheTestDesign(13)
	rec := obs.New(obs.NewManualClock(1))
	runCacheFlow(t, d, func(o *Options) { o.Cache = c; o.Obs = rec })
	rep := rec.Snapshot()
	if rep.Cache == nil {
		t.Fatal("cached+observed run produced a report without a cache section")
	}
	if rep.Cache.Misses == 0 || rep.Cache.Puts == 0 {
		t.Errorf("cold run cache section implausible: %+v", rep.Cache)
	}
	var hits, misses int64
	for _, s := range rep.Cache.Stages {
		hits += s.Hits
		misses += s.Misses
	}
	if hits != rep.Cache.Hits || misses != rep.Cache.Misses {
		t.Errorf("cache section totals (%d/%d) disagree with per-stage sums (%d/%d)",
			rep.Cache.Hits, rep.Cache.Misses, hits, misses)
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateReport(data); err != nil {
		t.Fatalf("report with cache section does not validate: %v", err)
	}

	// An uncached run must omit the section entirely.
	rec2 := obs.New(obs.NewManualClock(1))
	runCacheFlow(t, cacheTestDesign(13), func(o *Options) { o.Obs = rec2 })
	if rec2.Snapshot().Cache != nil {
		t.Error("uncached run's report has a cache section")
	}
}

// TestCacheRequiresBuildID pins the admission rule for unnamed builders: a
// store without a BuildID must never be consulted — closures cannot be
// hashed, so keying an anonymous builder would alias distinct topologies.
func TestCacheRequiresBuildID(t *testing.T) {
	c, err := cache.New(cache.Config{})
	if err != nil {
		t.Fatal(err)
	}
	runCacheFlow(t, goldenDesign(), func(o *Options) { o.Cache = c; o.BuildID = "" })
	if total := c.Stats().Total(); total != (cache.StageStats{}) {
		t.Errorf("flow with empty BuildID touched the cache: %+v", total)
	}
	if c.Len() != 0 {
		t.Errorf("flow with empty BuildID stored %d entries", c.Len())
	}
}

// TestCachedStagesAreAnnotated is the admission gate's bookkeeping: every
// stage the driver caches must be declared `// stage: <name>` on a function
// the stagepure analyzer verifies (cts owns partition/cluster_build/top_net;
// timing.Analyze owns timing). A cached-but-unannotated stage would replay
// results nothing ever proved pure.
func TestCachedStagesAreAnnotated(t *testing.T) {
	re := regexp.MustCompile(`(?m)^// stage: ([a-z_]+)$`)
	annotated := map[string]bool{}
	for _, dir := range []string{".", filepath.Join("..", "timing")} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
				continue
			}
			src, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range re.FindAllStringSubmatch(string(src), -1) {
				annotated[m[1]] = true
			}
		}
	}
	for _, stage := range cachedStages {
		if !annotated[stage] {
			t.Errorf("cached stage %q has no `// stage: %s` annotation (stagepure admission gate)", stage, stage)
		}
	}
}
