package cts

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"sllt/internal/design"
	"sllt/internal/geom"
	"sllt/internal/lefdef"
	"sllt/internal/tree"
)

// ClockLayer is the routing layer clock wires are emitted on.
const ClockLayer = "metal4"

// ExportDEFFile validates the synthesis result and writes the post-CTS
// DEF to path. ExportDEF itself assumes a well-formed result (the flow
// guarantees one); this wrapper is the defensive boundary for callers
// handing in external state — a nil tree, a design whose clock net has no
// sinks, or an unwritable destination all come back as errors instead of
// a panic or a silently empty file. Returns the exported DEF for callers
// that report component/net counts.
func ExportDEFFile(path string, d *design.Design, res *Result) (*lefdef.DEF, error) {
	def, err := exportChecked(d, res)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cts: export: %w", err)
	}
	if err := streamDEF(f, def); err != nil {
		f.Close()
		return nil, fmt.Errorf("cts: export: %w", err)
	}
	if err := f.Close(); err != nil {
		return nil, fmt.Errorf("cts: export: %w", err)
	}
	return def, nil
}

// ExportDEFWriter validates like ExportDEFFile and streams the post-CTS DEF
// to w through a fixed-size buffer — the in-memory DEF structure is built,
// but the rendered text never is, so writing a million-sink design costs
// O(buffer) beyond the netlist itself. Returns the exported DEF for callers
// that report component/net counts.
func ExportDEFWriter(w io.Writer, d *design.Design, res *Result) (*lefdef.DEF, error) {
	def, err := exportChecked(d, res)
	if err != nil {
		return nil, err
	}
	if err := streamDEF(w, def); err != nil {
		return nil, fmt.Errorf("cts: export: %w", err)
	}
	return def, nil
}

// exportChecked is the defensive boundary shared by the file and writer
// exporters: reject external state ExportDEF's assumptions don't cover.
func exportChecked(d *design.Design, res *Result) (*lefdef.DEF, error) {
	if d == nil {
		return nil, fmt.Errorf("cts: export: nil design")
	}
	if res == nil || res.Tree == nil || res.Tree.Root == nil {
		return nil, fmt.Errorf("cts: export: nil synthesis tree for design %q", d.Name)
	}
	if d.ClockNet == "" {
		return nil, fmt.Errorf("cts: export: design %q has no clock net", d.Name)
	}
	if d.NumFFs() == 0 {
		return nil, fmt.Errorf("cts: export: clock net %q has no sinks", d.ClockNet)
	}
	return ExportDEF(d, res), nil
}

// streamDEF renders def to w through one bufio window.
func streamDEF(w io.Writer, def *lefdef.DEF) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := def.WriteTo(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// ExportDEF emits the post-CTS netlist as DEF-lite: the original components
// plus the inserted clock buffers, with the flat clock net replaced by one
// subnet per buffer stage, each carrying its routed wire geometry
// (L-shaped runs; snaked wire appears as an explicit serpentine detour so
// the routed length matches the tree's electrical length). This is the
// CTS↔routing bridge the paper emphasizes: the topology handed to routing
// IS the synthesized one.
func ExportDEF(d *design.Design, res *Result) *lefdef.DEF {
	def := &lefdef.DEF{
		Version: "5.8",
		Design:  d.Name,
		DBU:     d.DBU,
		Die:     d.Die,
	}
	for i := range d.Insts {
		inst := &d.Insts[i]
		def.Components = append(def.Components, lefdef.Component{
			Name: inst.Name, Macro: inst.Macro, Loc: inst.Loc, Placed: true, Orient: "N",
		})
	}
	def.Pins = append(def.Pins, lefdef.IOPin{
		Name: d.ClockNet, Net: d.ClockNet, Direction: "INPUT", Use: "CLOCK", Loc: d.ClockRoot,
	})

	// Name buffers and create their components.
	bufName := make(map[*tree.Node]string)
	bi := 0
	res.Tree.Walk(func(n *tree.Node) bool {
		if n.Kind == tree.Buffer {
			name := fmt.Sprintf("clkbuf_%04d", bi)
			bi++
			bufName[n] = name
			def.Components = append(def.Components, lefdef.Component{
				Name: name, Macro: n.BufCell, Loc: n.Loc, Placed: true, Orient: "N",
			})
		}
		return true
	})

	// One net per buffer stage. The root stage is driven by the IO pin.
	ni := 0
	var emit func(driverConn lefdef.Conn, stageRoot *tree.Node)
	emit = func(driverConn lefdef.Conn, stageRoot *tree.Node) {
		name := d.ClockNet
		if ni > 0 {
			name = fmt.Sprintf("%s_%04d", d.ClockNet, ni)
		}
		ni++
		net := lefdef.Net{Name: name, Use: "CLOCK", Conns: []lefdef.Conn{driverConn}}
		var downstream []*tree.Node

		var collect func(n *tree.Node)
		collect = func(n *tree.Node) {
			if n.Parent != nil && n.EdgeLen > 0 {
				net.Routes = append(net.Routes, edgeRoute(n))
			}
			switch n.Kind {
			case tree.Sink:
				net.Conns = append(net.Conns, lefdef.Conn{Comp: sinkComp(n), Pin: sinkPin(d, n)})
				return
			case tree.Buffer:
				net.Conns = append(net.Conns, lefdef.Conn{Comp: bufName[n], Pin: "A"})
				downstream = append(downstream, n)
				return
			}
			for _, c := range n.Children {
				collect(c)
			}
		}
		for _, c := range stageRoot.Children {
			collect(c)
		}
		if len(net.Conns) > 1 {
			def.Nets = append(def.Nets, net)
		}
		for _, b := range downstream {
			emit(lefdef.Conn{Comp: bufName[b], Pin: "Y"}, b)
		}
	}
	emit(lefdef.Conn{Comp: "PIN", Pin: d.ClockNet}, res.Tree.Root)
	return def
}

// edgeRoute converts one tree edge into routed geometry: the L-shaped
// (horizontal-then-vertical) run, with any snaked surplus realized as a
// serpentine out-and-back at the load end so routed length equals the
// electrical EdgeLen.
func edgeRoute(n *tree.Node) lefdef.Route {
	a, b := n.Parent.Loc, n.Loc
	r := lefdef.Route{Layer: ClockLayer}
	r.Points = append(r.Points, a)
	if !geom.AlmostEqual(a.X, b.X) && !geom.AlmostEqual(a.Y, b.Y) {
		r.Points = append(r.Points, geom.Pt(b.X, a.Y)) // the bend
	}
	if !pointsEqual(r.Points[len(r.Points)-1], b) {
		r.Points = append(r.Points, b)
	}
	if extra := n.EdgeLen - a.Dist(b); extra > geom.Eps {
		// Serpentine: out and back, perpendicular to the last segment.
		half := extra / 2
		last := r.Points[len(r.Points)-1]
		prev := last // zero-length edge: any direction works
		if len(r.Points) >= 2 {
			prev = r.Points[len(r.Points)-2]
		}
		var out geom.Point
		if geom.AlmostEqual(prev.X, last.X) { // vertical approach: detour in x
			out = geom.Pt(last.X+half, last.Y)
		} else {
			out = geom.Pt(last.X, last.Y+half)
		}
		r.Points = append(r.Points, out, last)
	}
	return r
}

func pointsEqual(a, b geom.Point) bool { return a.Eq(b) }

// sinkComp extracts the instance name from a sink node named "inst/pin".
func sinkComp(n *tree.Node) string {
	for i := 0; i < len(n.Name); i++ {
		if n.Name[i] == '/' {
			return n.Name[:i]
		}
	}
	return n.Name
}

func sinkPin(d *design.Design, n *tree.Node) string {
	for i := 0; i < len(n.Name); i++ {
		if n.Name[i] == '/' {
			return n.Name[i+1:]
		}
	}
	return "CK"
}
