package cts

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"sllt/internal/designgen"
	"sllt/internal/dme"
	"sllt/internal/tree"
)

// TestRunNilCtxUnchanged pins the default: a nil Ctx is the pre-context
// behavior, byte-identical output included.
func TestRunNilCtxUnchanged(t *testing.T) {
	d := cacheTestDesign(3)
	base := runCacheFlow(t, d, nil)
	got := runCacheFlow(t, cacheTestDesign(3), func(o *Options) { o.Ctx = context.Background() })
	if got.def != base.def || got.fp != base.fp {
		t.Error("attaching a never-cancelled context changed the synthesized output")
	}
}

// TestRunPreCancelled pins the entry boundary: a context cancelled before
// Run starts must stop before level 0 and surface ctx.Err() wrapped with
// the stage name.
func TestRunPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := DefaultOptions()
	opts.SAIters = 40
	opts.Ctx = ctx
	_, err := Run(cacheTestDesign(3), opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "level 0") {
		t.Errorf("error %q does not name the refused stage (want \"level 0\")", err)
	}
}

// TestRunCancelBetweenLevels is the stage-boundary pin: cancelling during
// level 0's cluster builds must stop the flow before the next buildLevel —
// the builder never runs for a later level — and return ctx.Err() wrapped
// with the stage name. The cancelling hook lives in the TopoBuilder, which
// runs inside the level-0 cluster fan-out, so the first boundary the flow
// reaches afterwards is either a later level-0 cluster dispatch or the
// level-1 check; both carry the cancellation.
func TestRunCancelBetweenLevels(t *testing.T) {
	d := designgen.Generate(designgen.Spec{Name: "cancelgen", Insts: 2000, FFs: 400, Util: 0.6}, 17)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	opts := DefaultOptions()
	opts.SAIters = 40
	opts.Workers = 1
	opts.Ctx = ctx
	var builds atomic.Int64
	inner := opts.Build
	opts.Build = func(net *tree.Net, dopts dme.Options) (*tree.Tree, error) {
		if builds.Add(1) == 1 {
			cancel() // fire mid-stage, during the first cluster build
		}
		return inner(net, dopts)
	}
	opts.BuildID = "" // hooked builder: never cache it

	_, err := Run(d, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "level 0") {
		t.Errorf("error %q does not name the stage the cancellation landed in", err)
	}
	// 400 sinks under fanout 32 need >= 13 level-0 clusters and at least one
	// more level; with W=1 the cancel after build 1 must stop dispatch well
	// short of that, proving no later buildLevel (or even cluster) ran.
	if n := builds.Load(); n > 2 {
		t.Errorf("builder ran %d times after cancellation during build 1", n)
	}
}

// TestRunCancelBeforeTiming pins the last boundary: cancellation that lands
// after the final level but before the timing pass surfaces as the timing
// stage's refusal. The builder hook counts down to the top net (the only
// build whose tree drives timing directly).
func TestRunCancelBeforeTiming(t *testing.T) {
	d := goldenDesign() // 4 sinks < fanout: the flow goes straight to the top net
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	opts := DefaultOptions()
	opts.SAIters = 40
	opts.Ctx = ctx
	inner := opts.Build
	opts.Build = func(net *tree.Net, dopts dme.Options) (*tree.Tree, error) {
		cancel() // top-net build is the first and only build here
		return inner(net, dopts)
	}
	opts.BuildID = ""

	_, err := Run(d, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "timing") {
		t.Errorf("error %q does not name the timing stage", err)
	}
}
