package cts

import (
	"sync"
	"testing"

	"sllt/internal/cache"
	"sllt/internal/tree"
)

// TestCacheConcurrentSharing is the service-workload property: two
// simultaneous flows over the same design sharing one Options.Cache must
// interleave safely (the race CI job runs this under -race), produce
// byte-identical DEFs, and leave the store warm enough that a follow-up run
// replays >= 90% of its cluster builds. This is exactly what a job server
// does when two clients submit the same design at once.
func TestCacheConcurrentSharing(t *testing.T) {
	base := runCacheFlow(t, cacheTestDesign(21), func(o *Options) { o.Workers = 1 })

	c, err := cache.New(cache.Config{})
	if err != nil {
		t.Fatal(err)
	}
	type out struct {
		def string
		fp  string
		err error
	}
	outs := make([]out, 2)
	var wg sync.WaitGroup
	for i := range outs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opts := DefaultOptions()
			opts.SAIters = 40
			opts.Workers = 2
			opts.Cache = c
			res, err := Run(cacheTestDesign(21), opts)
			if err != nil {
				outs[i].err = err
				return
			}
			d := cacheTestDesign(21)
			outs[i] = out{def: ExportDEF(d, res).WriteDEF(), fp: tree.Fingerprint(res.Tree)}
		}(i)
	}
	wg.Wait()
	for i, o := range outs {
		if o.err != nil {
			t.Fatalf("concurrent run %d: %v", i, o.err)
		}
		if o.def != base.def || o.fp != base.fp {
			t.Errorf("concurrent run %d differs from the uncached serial run", i)
		}
	}

	// The pair left the store warm: a third run must replay nearly all of
	// its cluster builds (>= 90% — the cachesmoke oracle's bar).
	prev := c.Stats()
	warm := runCacheFlow(t, cacheTestDesign(21), func(o *Options) { o.Cache = c })
	if warm.def != base.def || warm.fp != base.fp {
		t.Error("warm follow-up run differs from the uncached serial run")
	}
	cs := c.Stats().Sub(prev).Stages[stageCluster]
	if total := cs.Hits + cs.Misses; total == 0 || float64(cs.Hits)/float64(total) < 0.9 {
		t.Errorf("warm follow-up cluster replay rate %d/%d, want >= 90%%", cs.Hits, cs.Hits+cs.Misses)
	}
}
