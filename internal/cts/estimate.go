package cts

import (
	"math"

	"sllt/internal/dme"
	"sllt/internal/tree"
)

// estimateLatency returns the insertion-delay annotation for a cluster
// driver according to the configured estimation mode: 0 (none), the
// Equation-7 lower-bound propagation (the paper's choice — conservative,
// cheap, and stable under later re-buffering), or exact STA-lite.
//
// unit: -> ps, _
func estimateLatency(driver *tree.Node, opts Options) (float64, error) {
	switch opts.Est {
	case EstNone:
		return 0, nil
	case EstExact:
		return exactLatency(driver, opts)
	default:
		return lowerBoundLatency(driver, opts), nil
	}
}

// exactLatency runs full timing on the (detached) subtree.
//
// unit: -> ps, _
func exactLatency(driver *tree.Node, opts Options) (float64, error) {
	caps := stageCaps(driver, opts)
	var maxLat float64
	var walk func(n *tree.Node, d, slew float64)
	walk = func(n *tree.Node, d, slew float64) {
		if n.Kind == tree.Buffer {
			cell := opts.Lib.Cell(n.BufCell)
			if cell != nil {
				load := bufferLoad(n, caps, opts)
				d += cell.Delay(slew, load)
				slew = cell.OutSlew(load)
			}
		}
		if n.Kind == tree.Sink && d > maxLat {
			maxLat = d
		}
		for _, c := range n.Children {
			wd := opts.Tech.WireElmore(c.EdgeLen, caps[c])
			ws := math.Log(9) * wd
			walk(c, d+wd, math.Sqrt(slew*slew+ws*ws))
		}
	}
	walk(driver, 0, opts.SourceSlew)
	return maxLat, nil
}

// lowerBoundLatency propagates wire Elmore delays plus the Equation-7
// buffer lower bound through the subtree.
//
// unit: -> ps
func lowerBoundLatency(driver *tree.Node, opts Options) float64 {
	caps := stageCaps(driver, opts)
	var maxLat float64
	var walk func(n *tree.Node, d float64)
	walk = func(n *tree.Node, d float64) {
		if n.Kind == tree.Buffer {
			d += opts.Lib.InsertionDelayLowerBound(bufferLoad(n, caps, opts))
		}
		if n.Kind == tree.Sink && d > maxLat {
			maxLat = d
		}
		for _, c := range n.Children {
			walk(c, d+opts.Tech.WireElmore(c.EdgeLen, caps[c]))
		}
	}
	walk(driver, 0)
	return maxLat
}

// stageCaps computes downstream capacitance per node, cut at buffer inputs.
//
// unit: -> fF
func stageCaps(root *tree.Node, opts Options) map[*tree.Node]float64 {
	caps := make(map[*tree.Node]float64)
	var rec func(n *tree.Node) float64
	rec = func(n *tree.Node) float64 {
		var c float64
		switch n.Kind {
		case tree.Sink, tree.Buffer:
			c = n.PinCap
		}
		if n.Kind == tree.Buffer && n != root {
			for _, ch := range n.Children {
				rec(ch)
			}
			caps[n] = n.PinCap
			return n.PinCap
		}
		for _, ch := range n.Children {
			c += opts.Tech.WireCap(ch.EdgeLen) + rec(ch)
		}
		if n.Kind == tree.Buffer {
			// root buffer: record its cone, present upstream as pin cap
			caps[n] = c - n.PinCap
			return n.PinCap
		}
		caps[n] = c
		return c
	}
	rec(root)
	return caps
}

// bufferLoad returns the stage load a buffer drives.
//
// unit: caps fF -> fF
func bufferLoad(n *tree.Node, caps map[*tree.Node]float64, opts Options) float64 {
	var load float64
	for _, c := range n.Children {
		load += opts.Tech.WireCap(c.EdgeLen) + caps[c]
	}
	return load
}

// repairBuffered restores the per-net skew bound after buffer insertion by
// snaking the edges of too-fast subtrees, exactly like dme.RepairSkew but
// with buffer stage delays in the delay model. Because added wire loads the
// buffer driving it (raising that whole cone equally), the pass iterates to
// a fixed point.
//
// unit: bound ps ->
func repairBuffered(t *tree.Tree, opts Options, dopts dme.Options, bound float64) {
	for iter := 0; iter < 4; iter++ {
		caps := stageCaps(t.Root, opts)
		padded := false

		type interval struct{ lo, hi float64 }
		var repair func(n *tree.Node) interval
		repair = func(n *tree.Node) interval {
			if len(n.Children) == 0 {
				var d0 float64
				if n.Kind == tree.Sink && dopts.SinkDelay != nil && n.SinkIdx >= 0 {
					d0 = dopts.SinkDelay(n.SinkIdx, tree.PinSink{Loc: n.Loc, Cap: n.PinCap})
				}
				return interval{d0, d0}
			}
			var bufDelay float64
			if n.Kind == tree.Buffer {
				if cell := opts.Lib.Cell(n.BufCell); cell != nil {
					bufDelay = cell.Delay(opts.SourceSlew, bufferLoad(n, caps, opts))
				}
			}
			type kid struct {
				n        *tree.Node
				slo, shi float64
			}
			kids := make([]kid, 0, len(n.Children))
			hmax := math.Inf(-1)
			for _, c := range n.Children {
				iv := repair(c)
				kids = append(kids, kid{c, iv.lo, iv.hi})
				if hi := iv.hi + opts.Tech.WireElmore(c.EdgeLen, caps[c]); hi > hmax {
					hmax = hi
				}
			}
			out := interval{math.Inf(1), math.Inf(-1)}
			for _, k := range kids {
				e := opts.Tech.WireElmore(k.n.EdgeLen, caps[k.n])
				if target := hmax - bound - k.slo; e < target-1e-9 {
					// Extend this edge so its subtree is no longer fast.
					newLen := invWireElmore(target, caps[k.n], opts)
					if newLen > k.n.EdgeLen {
						k.n.EdgeLen = newLen
						padded = true
						e = opts.Tech.WireElmore(k.n.EdgeLen, caps[k.n])
					}
				}
				out.lo = math.Min(out.lo, k.slo+e)
				out.hi = math.Max(out.hi, k.shi+e)
			}
			return interval{out.lo + bufDelay, out.hi + bufDelay}
		}
		repair(t.Root)
		if !padded {
			return
		}
	}
}

// invWireElmore returns the wire length whose Elmore delay into the given
// load reaches target.
//
// unit: target ps, load fF -> um
func invWireElmore(target, load float64, opts Options) float64 {
	if target <= 0 {
		return 0
	}
	r, c := opts.Tech.RPerUm, opts.Tech.CPerUm
	a := r * c / 2
	b := r * load
	return (-b + math.Sqrt(b*b+4*a*target)) / (2 * a)
}
