package cts

import (
	"math"
	"testing"

	"sllt/internal/designgen"
	"sllt/internal/lefdef"
)

func TestExportDEFRoundTrip(t *testing.T) {
	spec := designgen.Spec{Name: "exp", Insts: 1000, FFs: 200, Util: 0.6}
	d := designgen.Generate(spec, 9)
	opts := DefaultOptions()
	opts.SAIters = 50
	res, err := Run(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	out := ExportDEF(d, res)
	src := out.WriteDEF()
	again, err := lefdef.ParseDEF(src)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	// Components: originals plus one per buffer.
	if got, want := len(again.Components), len(d.Insts)+res.Report.Buffers; got != want {
		t.Errorf("components = %d, want %d", got, want)
	}
	// Every FF clock pin and every buffer input appears on exactly one net.
	loads := map[string]int{}
	for _, n := range again.Nets {
		for _, c := range n.Conns[1:] {
			loads[c.Comp+"/"+c.Pin]++
		}
	}
	if len(loads) != spec.FFs+res.Report.Buffers {
		t.Errorf("distinct loads = %d, want %d", len(loads), spec.FFs+res.Report.Buffers)
	}
	for k, cnt := range loads {
		if cnt != 1 {
			t.Errorf("load %s on %d nets", k, cnt)
		}
	}
	// Routed geometry: total routed length matches the tree's wirelength.
	var routed float64
	for i := range again.Nets {
		routed += again.Nets[i].RoutedLength()
	}
	if math.Abs(routed-res.Report.WL) > res.Report.WL*0.001+1 {
		t.Errorf("routed length %.1f != tree wirelength %.1f", routed, res.Report.WL)
	}
}
