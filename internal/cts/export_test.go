package cts

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sllt/internal/design"
	"sllt/internal/designgen"
	"sllt/internal/geom"
	"sllt/internal/lefdef"
)

func TestExportDEFRoundTrip(t *testing.T) {
	spec := designgen.Spec{Name: "exp", Insts: 1000, FFs: 200, Util: 0.6}
	d := designgen.Generate(spec, 9)
	opts := DefaultOptions()
	opts.SAIters = 50
	res, err := Run(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	out := ExportDEF(d, res)
	src := out.WriteDEF()
	again, err := lefdef.ParseDEF(src)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	// Components: originals plus one per buffer.
	if got, want := len(again.Components), len(d.Insts)+res.Report.Buffers; got != want {
		t.Errorf("components = %d, want %d", got, want)
	}
	// Every FF clock pin and every buffer input appears on exactly one net.
	loads := map[string]int{}
	for _, n := range again.Nets {
		for _, c := range n.Conns[1:] {
			loads[c.Comp+"/"+c.Pin]++
		}
	}
	if len(loads) != spec.FFs+res.Report.Buffers {
		t.Errorf("distinct loads = %d, want %d", len(loads), spec.FFs+res.Report.Buffers)
	}
	for k, cnt := range loads {
		if cnt != 1 {
			t.Errorf("load %s on %d nets", k, cnt)
		}
	}
	// Routed geometry: total routed length matches the tree's wirelength.
	var routed float64
	for i := range again.Nets {
		routed += again.Nets[i].RoutedLength()
	}
	if math.Abs(routed-res.Report.WL) > res.Report.WL*0.001+1 {
		t.Errorf("routed length %.1f != tree wirelength %.1f", routed, res.Report.WL)
	}
}

// TestExportDEFFileErrors covers the defensive boundary of ExportDEFFile:
// every malformed input must come back as a descriptive error — never a
// panic, never a silently empty output file.
func TestExportDEFFileErrors(t *testing.T) {
	spec := designgen.Spec{Name: "experr", Insts: 200, FFs: 40, Util: 0.6}
	d := designgen.Generate(spec, 11)
	opts := DefaultOptions()
	opts.SAIters = 20
	res, err := Run(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()
	ok := filepath.Join(tmp, "ok.def")

	noSinks := &design.Design{
		Name: "nosinks", Die: geom.Rect{XHi: 10, YHi: 10}, DBU: 1000,
		ClockNet: "clk", ClockRoot: geom.Pt(5, 5),
	}
	noNet := &design.Design{
		Name: "nonet", Die: geom.Rect{XHi: 10, YHi: 10}, DBU: 1000,
	}

	cases := []struct {
		name string
		path string
		d    *design.Design
		res  *Result
		want string
	}{
		{"nil design", ok, nil, res, "nil design"},
		{"nil result", ok, d, nil, "nil synthesis tree"},
		{"nil tree", ok, d, &Result{}, "nil synthesis tree"},
		{"no clock net", ok, noNet, res, "no clock net"},
		{"empty clock net", ok, noSinks, res, "no sinks"},
		{"unwritable path", filepath.Join(tmp, "no", "such", "dir", "out.def"), d, res, "export:"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ExportDEFFile(tc.path, tc.d, tc.res)
			if err == nil {
				t.Fatalf("ExportDEFFile succeeded, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %q, want it to contain %q", err, tc.want)
			}
		})
	}
	// No failing case may leave a file behind at the good path.
	if _, err := os.Stat(ok); !os.IsNotExist(err) {
		t.Errorf("failing exports wrote %s (stat err: %v)", ok, err)
	}

	// And the happy path writes a parseable DEF that matches the returned one.
	out, err := ExportDEFFile(ok, d, res)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(ok)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != out.WriteDEF() {
		t.Error("file contents differ from returned DEF")
	}
	if _, err := lefdef.ParseDEF(string(data)); err != nil {
		t.Errorf("exported file does not re-parse: %v", err)
	}
}

type exportFailWriter struct{ wrote bool }

func (w *exportFailWriter) Write(p []byte) (int, error) {
	w.wrote = true
	return 0, os.ErrClosed
}

// TestExportDEFWriter pins the streaming exporter to the in-memory
// renderer byte for byte, and checks its error discipline: validation
// failures surface before a single byte is written, and writer failures
// come back wrapped as export errors.
func TestExportDEFWriter(t *testing.T) {
	spec := designgen.Spec{Name: "expw", Insts: 300, FFs: 60, Util: 0.6}
	d := designgen.Generate(spec, 13)
	opts := DefaultOptions()
	opts.SAIters = 20
	res, err := Run(d, opts)
	if err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	out, err := ExportDEFWriter(&sb, d, res)
	if err != nil {
		t.Fatal(err)
	}
	if sb.String() != out.WriteDEF() {
		t.Error("streamed DEF differs from WriteDEF rendering")
	}

	fw := &exportFailWriter{}
	if _, err := ExportDEFWriter(fw, nil, res); err == nil || !strings.Contains(err.Error(), "nil design") {
		t.Errorf("nil design error = %v", err)
	}
	if fw.wrote {
		t.Error("validation failure still wrote bytes")
	}
	if _, err := ExportDEFWriter(fw, d, res); err == nil || !strings.Contains(err.Error(), "cts: export:") {
		t.Errorf("writer failure not wrapped: %v", err)
	}
}
