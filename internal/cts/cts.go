// Package cts is the paper's hierarchical clock tree synthesis framework
// (§3, Fig. 3). Each level: (1) partition the current clock nodes with
// balanced k-means + min-cost-flow assignment, optionally refined by
// simulated annealing; (2) generate each cluster's routing topology (CBS by
// default — pluggable, so BST/ZST/SALT engines slot in for baselines and
// ablations); (3) insert the driver buffer and repeaters, repair the skew
// the buffers disturb, and annotate the cluster root with its insertion
// delay estimate for the next level. The loop repeats until the remaining
// roots fit under one top-level net driven from the clock source.
package cts

import (
	"context"
	"fmt"

	"math"

	"sllt/internal/buffering"
	"sllt/internal/cache"
	"sllt/internal/core"
	"sllt/internal/design"
	"sllt/internal/dme"
	"sllt/internal/geom"
	"sllt/internal/liberty"
	"sllt/internal/obs"
	"sllt/internal/parallel"
	"sllt/internal/partition"
	"sllt/internal/tech"
	"sllt/internal/timing"
	"sllt/internal/tree"
)

// Constraints are the per-net design rules (the paper's Table 5 values are
// the defaults).
type Constraints struct {
	SkewBound float64 // unit: ps // global target
	MaxFanout int
	MaxCap    float64 // unit: fF
	MaxWL     float64 // unit: um
}

// DefaultConstraints returns Table 5: skew 80 ps, fanout 32, cap 150 fF,
// wirelength 300 µm.
func DefaultConstraints() Constraints {
	return Constraints{SkewBound: 80, MaxFanout: 32, MaxCap: 150, MaxWL: 300}
}

// DelayEst selects how cluster-root insertion delays are estimated for the
// next level's balancing (§3.4, Fig. 5).
type DelayEst int

// Delay estimation modes.
const (
	// EstNone performs no delay annotation: every level balances only its
	// own geometry. This is what naive flows do and what lets skew drift.
	EstNone DelayEst = iota
	// EstLowerBound uses the paper's Equation (7) lower bound for buffer
	// delays in the estimate.
	EstLowerBound
	// EstExact runs full STA-lite on the cluster subtree.
	EstExact
)

// TopoBuilder builds a routing topology for one clock net under the given
// DME options (model, per-level skew bound, sink delay annotations).
// Builders run inside cached stages, so every value of this type must be a
// pure function of (net, dopts): no clock, no unseeded randomness, no
// mutable package state, no mutation of the net.
//
// pure: contract
type TopoBuilder func(net *tree.Net, dopts dme.Options) (*tree.Tree, error)

// CBSBuilder returns the default engine: the paper's CBS construction.
func CBSBuilder(method dme.TopoMethod, saltEps float64) TopoBuilder {
	return func(net *tree.Net, dopts dme.Options) (*tree.Tree, error) {
		return core.Build(net, core.Options{DME: dopts, TopoMethod: method, SALTEps: saltEps})
	}
}

// BSTBuilder returns a plain bounded-skew DME engine (no SALT refinement).
func BSTBuilder(method dme.TopoMethod) TopoBuilder {
	return func(net *tree.Net, dopts dme.Options) (*tree.Tree, error) {
		topo := dme.GenTopo(net, method, dopts.LengthBudget(net))
		return dme.Build(net, topo, dopts)
	}
}

// ZSTBuilder returns a zero-skew DME engine under the linear (path length)
// delay model, ignoring delay annotations beyond geometry — the classic
// estimate-blind balancer.
func ZSTBuilder(method dme.TopoMethod) TopoBuilder {
	return func(net *tree.Net, dopts dme.Options) (*tree.Tree, error) {
		lin := dme.Options{Model: dme.Linear, SkewBound: 0}
		topo := dme.GenTopo(net, method, 0)
		return dme.Build(net, topo, lin)
	}
}

// Options configures a hierarchical CTS run.
type Options struct {
	Cons    Constraints
	Tech    tech.Tech
	Lib     *liberty.Library
	Build   TopoBuilder
	Est     DelayEst
	UseSA   bool
	SAIters int
	Seed    int64
	// SourceSlew is the slew of the clock at the die input.
	SourceSlew float64 // unit: ps
	// BufferMargin derates cell max caps during sizing.
	BufferMargin float64 // unit: 1
	// ForceCell, when set, disables load-based buffer sizing in favor of
	// one fixed cell (used by the OpenROAD-like baseline).
	ForceCell string
	// KMeansRestarts > 1 re-seeds clustering that many times and keeps the
	// best silhouette score (sampled on large levels) — the quality knob
	// heavyweight flows pay runtime for.
	KMeansRestarts int
	// Workers bounds the goroutines used for the per-cluster net builds,
	// the k-means passes and the clustering restarts. Values <= 1 run
	// serially; values above GOMAXPROCS are capped to it. Results are
	// byte-identical for every value (see internal/parallel): each level's
	// clusters are independent, and all randomness derives its seed from
	// the task index, never a shared stream.
	Workers int
	// Obs, when non-nil, records stage spans, kernel counters and per-level
	// QoR into the recorder. nil disables observability entirely; the
	// synthesized tree is byte-identical either way — the recorder observes,
	// it never feeds back into any algorithm decision.
	Obs *obs.Recorder
	// Cache, when non-nil, replays content-addressed stage results instead of
	// recomputing them (see cachedriver.go). Requires a non-empty BuildID;
	// results are byte-identical with the cache on or off, cold or warm —
	// the property TestCacheByteIdentity enforces.
	Cache *cache.Cache
	// BuildID names the Build function for cache keying: closures cannot be
	// content-hashed, so the caller vouches for the builder's identity with a
	// stable string (e.g. "cbs/greedydist/0.10"). Caching is disabled while
	// BuildID is empty — an unnamed builder is never silently keyed.
	BuildID string
	// Ctx, when non-nil, lets callers cancel a running synthesis: the flow
	// observes it at every stage boundary (before each level, the top net and
	// the timing pass) and between cluster-build tasks, returning ctx.Err()
	// wrapped with the stage it refused to start. nil means never cancelled.
	// Like Workers and Obs, Ctx is deliberately unkeyed by the stage cache:
	// cancellation changes when a run stops, never what a completed run
	// produces — a cancelled run returns an error and stores nothing partial.
	Ctx context.Context
}

// DefaultOptions returns the paper's configuration: CBS topology engine,
// Eq-7 delay estimation, SA-refined partitioning, Table 5 constraints.
func DefaultOptions() Options {
	return Options{
		Cons:           DefaultConstraints(),
		Tech:           tech.Default28nm(),
		Lib:            liberty.Default(),
		Build:          CBSBuilder(dme.GreedyDist, 0.1),
		BuildID:        "cbs/greedydist/0.10",
		Est:            EstLowerBound,
		UseSA:          true,
		SAIters:        2000,
		Seed:           1,
		SourceSlew:     20,
		BufferMargin:   0.9,
		KMeansRestarts: 2,
	}
}

// Result is a completed synthesis.
type Result struct {
	Tree     *tree.Tree
	Report   *timing.Report
	Levels   int
	Clusters []int // cluster count per level, bottom-up
}

// clockNode is one balancing point at the current level: an FF sink at
// level 0, a cluster driver input above.
type clockNode struct {
	loc   geom.Point
	cap   float64 // unit: fF // input capacitance seen by the level net
	delay float64 // unit: ps // estimated insertion delay below this node
	sub   *tree.Node
}

// Run synthesizes the clock tree for the design. The whole flow is a pure
// function of (d, opts) — the contract ROADMAP's content-addressed stage
// cache keys against; stagepure verifies it transitively, stopping at the
// annotated stage boundaries below.
//
// stage: flow
func Run(d *design.Design, opts Options) (*Result, error) {
	flat := d.Net()
	if err := flat.Validate(); err != nil {
		return nil, err
	}
	// All per-level construction memory comes from the flow's arenas (see
	// levelScratch); the initial leaves go in nodeA[1] so level 0's reset of
	// nodeA[0] cannot touch them.
	var scratch levelScratch
	nodes := scratch.nodeA[1].AllocN(len(flat.Sinks))
	for i, s := range flat.Sinks {
		leaf := tree.NewNode(tree.Sink, s.Loc)
		leaf.Name = s.Name
		leaf.PinCap = s.Cap
		leaf.SinkIdx = i
		nodes[i] = clockNode{loc: s.Loc, cap: s.Cap, delay: 0, sub: leaf}
	}

	opts.Obs.SetMeta(d.Name, "sllt-cts", opts.Seed, opts.Workers)
	// The cache driver sits outside the stages: sc keys each stage's inputs,
	// replays stored results and records fresh ones. nil when caching is off —
	// every consultation below is nil-safe, and Workers/Obs never reach a key,
	// so a cache warmed under one configuration serves all the others.
	sc := newStageCache(opts, flat.Sinks)
	var statsPrev cache.Stats
	if sc.active() {
		statsPrev = opts.Cache.Stats()
	}
	res := &Result{}
	ins := buffering.NewInserter(opts.Lib, opts.Tech, opts.Cons.MaxCap)
	ins.Margin = opts.BufferMargin
	ins.ForceCell = opts.ForceCell
	ins.Kernel = opts.Obs.Kernel()

	// Per-net skew spans telescope across levels (a net's span adds to the
	// spread its cluster roots already carry), so every level gets an equal
	// share of the global budget and the shares sum to the bound.
	levelBound := levelShare(opts.Cons.SkewBound, estLevels(len(nodes), opts.Cons.MaxFanout))
	for len(nodes) > opts.Cons.MaxFanout {
		if err := ctxErr(opts.Ctx, "level", res.Levels); err != nil {
			return nil, err
		}
		next, k, err := buildLevel(nodes, opts, ins, levelBound, res.Levels, sc, &scratch)
		if err != nil {
			return nil, fmt.Errorf("cts level %d: %w", res.Levels, err)
		}
		if len(next) >= len(nodes) {
			return nil, fmt.Errorf("cts level %d: no progress (%d -> %d nodes)", res.Levels, len(nodes), len(next))
		}
		nodes = next
		res.Clusters = append(res.Clusters, k)
		res.Levels++
	}

	if err := ctxErr(opts.Ctx, "top_net", -1); err != nil {
		return nil, err
	}
	var top *tree.Tree
	var topQ *obs.NetQoR
	var topKey cache.Key
	var err error
	if sc.active() {
		topKey = topNetKey(sc.base, d.ClockRoot.X, d.ClockRoot.Y, levelBound, nodes, sc.ids)
		if v, ok := sc.getTopNet(topKey); ok {
			opts.Obs.Begin("top_net").End()
			top = &tree.Tree{Root: v.root}
			q := v.qor
			topQ = &q
		} else {
			// wantQ: a miss must store the net's QoR so warm replays report it.
			top, topQ, err = buildTopNet(d.ClockRoot, nodes, opts, ins, levelBound, true)
			if err == nil {
				sc.putTopNet(topKey, topNetValue{root: top.Root, qor: *topQ})
			}
		}
	} else {
		top, topQ, err = buildTopNet(d.ClockRoot, nodes, opts, ins, levelBound, opts.Obs.Enabled())
	}
	if err != nil {
		return nil, fmt.Errorf("cts top net: %w", err)
	}
	res.Levels++
	res.Clusters = append(res.Clusters, 1)
	res.Tree = top
	if topQ != nil {
		opts.Obs.AddLevel(obs.LevelQoR{
			Level:    res.Levels - 1,
			Nodes:    len(nodes),
			Clusters: 1,
			WL:       topQ.WL,
			Buffers:  topQ.Buffers,
			BufArea:  topQ.BufArea,
		})
	}

	if err := ctxErr(opts.Ctx, "timing", -1); err != nil {
		return nil, err
	}
	asp := opts.Obs.Begin("timing")
	var rep *timing.Report
	if sc.active() {
		tkey := timingKey(sc.base, topKey)
		var ok bool
		if rep, ok = sc.getTiming(tkey); !ok {
			rep, err = timing.Analyze(top, opts.Lib, opts.Tech, opts.SourceSlew)
			if err == nil {
				sc.putTiming(tkey, rep)
			}
		}
	} else {
		rep, err = timing.Analyze(top, opts.Lib, opts.Tech, opts.SourceSlew)
	}
	asp.End()
	if err != nil {
		return nil, err
	}
	res.Report = rep
	if sc.active() && opts.Obs.Enabled() {
		opts.Obs.SetCache(cacheReport(opts.Cache.Stats().Sub(statsPrev)))
	}
	if opts.Obs.Enabled() {
		opts.Obs.SetTotals(obs.Totals{
			WL:          rep.WL,
			Skew:        rep.Skew,
			MaxLatency:  rep.MaxLatency,
			Buffers:     rep.Buffers,
			BufArea:     rep.BufArea,
			ClockCap:    rep.ClockCap,
			MaxStageCap: rep.MaxStgCap,
			MaxSlew:     rep.MaxSlew,
		})
	}
	return res, nil
}

// ctxErr reports ctx's cancellation wrapped with the stage the flow refused
// to start ("level 2", "top_net", ...; level < 0 omits the number). A nil
// ctx never cancels — the zero-cost default for library callers.
func ctxErr(ctx context.Context, stage string, level int) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		if level >= 0 {
			return fmt.Errorf("cts: cancelled before %s %d: %w", stage, level, err)
		}
		return fmt.Errorf("cts: cancelled before %s: %w", stage, err)
	}
	return nil
}

// estLevels predicts how many partition levels remain for n nodes.
func estLevels(n, fanout int) int {
	levels := 1
	for n > fanout {
		n = (n + fanout - 1) / fanout
		levels++
	}
	return levels
}

// levelShare splits the global skew budget across remaining levels: net
// spans telescope, so the sum of per-level bounds bounds the global skew.
//
// unit: skew ps -> ps
func levelShare(skew float64, levelsLeft int) float64 {
	if levelsLeft < 1 {
		levelsLeft = 1
	}
	return skew / float64(levelsLeft)
}

// partitionLevel is the paper's step (1): balanced k-means over the level's
// balancing points (restarted and silhouette-scored when asked), min-cost
// flow assignment under the fanout cap, and optional SA refinement. It
// returns each node's cluster, the cluster count, the assignment method
// that ran, and the SA stats when observability wants them — a pure
// function of (nodes, opts, level), which is what makes the partition stage
// cacheable on that key.
//
// stage: partition
func partitionLevel(nodes []clockNode, opts Options, level int, lv *obs.Span) ([]int, int, string, *partition.SAStats, error) {
	pts := make([]geom.Point, len(nodes))
	caps := make([]float64, len(nodes))
	var capTotal float64
	for i := range nodes {
		pts[i] = nodes[i].loc
		caps[i] = nodes[i].cap
		capTotal += nodes[i].cap
	}
	k := len(nodes)/opts.Cons.MaxFanout + 1
	if byCap := int(capTotal/(opts.Cons.MaxCap*0.5)) + 1; byCap > k {
		k = byCap
	}
	if k > len(nodes) {
		k = len(nodes)
	}

	psp := lv.Begin("partition")
	defer psp.End()
	centers, err := bestClustering(pts, k, opts, level, psp)
	if err != nil {
		return nil, 0, "", nil, err
	}
	assign, method := partition.BalancedAssignK(pts, centers, opts.Cons.MaxFanout, opts.Obs.Kernel())
	var saStats *partition.SAStats
	if opts.UseSA {
		sa := partition.DefaultSAOptions(opts.Seed + int64(level))
		// Fixed iteration counts vanish on hundred-thousand-sink levels;
		// scale the budget so every sink gets a chance to move.
		sa.Iters = opts.SAIters
		if min := 2 * len(nodes); sa.Iters < min {
			sa.Iters = min
		}
		sa.CPerUm = opts.Tech.CPerUm
		sa.MaxCap = opts.Cons.MaxCap
		sa.MaxWL = opts.Cons.MaxWL
		sa.MaxFanout = opts.Cons.MaxFanout
		if opts.Obs.Enabled() {
			saStats = &partition.SAStats{}
			sa.Stats = saStats
			sa.Kernel = opts.Obs.Kernel()
		}
		assign = partition.RefineSA(pts, caps, k, assign, sa)
	}
	return assign, k, method, saStats, nil
}

// buildLevel partitions the nodes, builds one buffered net per cluster and
// returns the next level's nodes. When sc is active, the partition and each
// cluster build consult the content-addressed store first; SA/k-means kernel
// stats are zero for replayed stages (nothing ran), while QoR and latency
// observations replay from the stored values.
//
// unit: levelBound ps ->
func buildLevel(nodes []clockNode, opts Options, ins *buffering.Inserter, levelBound float64, level int, sc *stageCache, scratch *levelScratch) ([]clockNode, int, error) {
	lv := opts.Obs.Begin("level")
	defer lv.End()
	kprev := opts.Obs.Kernel().Snapshot()
	// The input nodes occupy the other node arena (previous level's output),
	// so rewinding this level's arenas reclaims only dead memory.
	na := scratch.nodesFor(level)
	scratch.resetLevel()

	var (
		assign  []int
		k       int
		method  string
		saStats *partition.SAStats
		err     error
	)
	if sc.active() {
		pkey := partitionKey(sc.base, level, nodes)
		if v, ok := sc.getPartition(pkey, len(nodes)); ok {
			lv.Begin("partition").End()
			assign, k, method = v.assign, v.k, v.method
		} else {
			assign, k, method, saStats, err = partitionLevel(nodes, opts, level, lv)
			if err != nil {
				return nil, 0, err
			}
			sc.putPartition(pkey, partitionValue{k: k, method: method, assign: assign})
		}
	} else {
		assign, k, method, saStats, err = partitionLevel(nodes, opts, level, lv)
		if err != nil {
			return nil, 0, err
		}
	}

	// Bucket members per cluster with exact capacities (one counting pass)
	// into a flattened, arena-backed index array, then carve each cluster's
	// node slice out of a single arena-backed array — the hot-path
	// allocation pattern BenchmarkBuildLevelAllocs guards. Bucket traversal
	// (ascending cluster id, ascending node index within a cluster) matches
	// the append-based bucketing this replaced, so cluster and member order
	// — and therefore every downstream tree — is unchanged.
	counts := scratch.intA.AllocN(k)
	for _, a := range assign {
		counts[a]++
	}
	offs := scratch.intA.AllocN(k + 1)
	sum := 0
	for j, c := range counts {
		offs[j] = sum
		sum += c
	}
	offs[k] = sum
	fill := scratch.intA.AllocN(k)
	memberIdx := scratch.intA.AllocN(len(assign))
	for i, a := range assign {
		memberIdx[offs[a]+fill[a]] = i
		fill[a]++
	}
	backing := na.AllocN(len(nodes))
	clusterHdrs := scratch.hdrA.AllocN(k)
	nc := 0
	off := 0
	for j := 0; j < k; j++ {
		mem := memberIdx[offs[j]:offs[j+1]]
		if len(mem) == 0 {
			continue
		}
		cluster := backing[off : off : off+len(mem)]
		off += len(mem)
		for _, m := range mem {
			cluster = append(cluster, nodes[m])
		}
		clusterHdrs[nc] = cluster
		nc++
	}
	clusters := clusterHdrs[:nc]

	// Cluster keys are derived serially before the fan-out (the hasher is
	// not concurrency-safe, and key order must not depend on scheduling):
	// each key folds in the members' identities — sink ids at level 0, the
	// producing cluster keys above — so dirtiness propagates up the hierarchy
	// without re-hashing subtree contents.
	var ckeys, nextIDs []cache.Key
	if sc.active() {
		ckeys = make([]cache.Key, len(clusters))
		nextIDs = make([]cache.Key, len(clusters))
		ci := 0
		for j := 0; j < k; j++ {
			mem := memberIdx[offs[j]:offs[j+1]]
			if len(mem) == 0 {
				continue
			}
			mids := make([]cache.Key, len(mem))
			for i, m := range mem {
				mids[i] = sc.ids[m]
			}
			ckeys[ci] = clusterKey(sc.base, levelBound, clusters[ci], mids)
			nextIDs[ci] = derivedID(ckeys[ci])
			ci++
		}
	}

	// The clusters are independent nets: each build touches only its own
	// members' subtrees, the Inserter is read-only (see buffering.Inserter),
	// and nothing in the build consumes shared randomness — so the loop fans
	// out, with each task writing only next[ci] (and, when observability is
	// on, its own qors[ci] slot; kernel counters and the latency histogram
	// are atomic, hence order-independent).
	csp := lv.Begin("clusters")
	latDist := opts.Obs.Dist("cts.cluster.latency", obs.UnitPs, latencyBounds)
	var qors []obs.NetQoR
	if opts.Obs.Enabled() {
		qors = make([]obs.NetQoR, len(clusters))
	}
	// next is the following level's input; it lives in this level's node
	// arena, which that level leaves untouched (it resets the other one).
	next := na.AllocN(len(clusters))
	err = parallel.ForEachSpanCtx(opts.Ctx, opts.Workers, len(clusters), csp, "cluster", func(ci int) error {
		cluster := clusters[ci]
		if sc.active() {
			if v, ok := sc.getCluster(ckeys[ci]); ok {
				if qors != nil {
					qors[ci] = v.qor
				}
				latDist.Observe(v.delay)
				next[ci] = clockNode{loc: v.loc, cap: v.cap, delay: v.delay, sub: v.driver}
				return nil
			}
		}
		src := centroidOf(cluster)
		var q *obs.NetQoR
		if qors != nil {
			q = &qors[ci]
		}
		// A miss must measure QoR even with observability off, so the stored
		// entry replays the same per-level numbers an obs-on warm run reports.
		var localQ obs.NetQoR
		if sc.active() && q == nil {
			q = &localQ
		}
		sub, err := buildNet(src, cluster, opts, ins, levelBound, false, q)
		if err != nil {
			return err
		}
		// The cluster tree is rooted at a Source node at the centroid whose
		// only child is the driver buffer; the driver is the next level's
		// balancing point.
		driver := sub.Root.Children[0]
		driver.Detach()
		est, err := estimateLatency(driver, opts)
		if err != nil {
			return err
		}
		latDist.Observe(est)
		next[ci] = clockNode{
			loc:   driver.Loc,
			cap:   driver.PinCap,
			delay: est,
			sub:   driver,
		}
		if sc.active() {
			sc.putCluster(ckeys[ci], clusterValue{
				driver: driver, loc: driver.Loc, cap: driver.PinCap, delay: est, qor: *q,
			})
		}
		return nil
	})
	csp.End()
	if err != nil {
		return nil, 0, err
	}
	if sc.active() {
		sc.ids = nextIDs
	}
	if opts.Obs.Enabled() {
		opts.Obs.AddLevel(levelQoR(level, nodes, clusters, next, qors, method, saStats, opts, kprev))
	}
	return next, len(clusters), nil
}

// latencyBounds are the cluster-latency histogram bucket bounds. unit: ps
var latencyBounds = []float64{25, 50, 100, 200, 400, 800}

// levelQoR assembles one level's QoR record: per-task NetQoR slots summed
// in index order, skew/latency spread over the next level's delay
// annotations, and the kernel-counter delta since the level began. Runs
// serially after the cluster fan-out has joined.
func levelQoR(level int, nodes []clockNode, clusters [][]clockNode, next []clockNode, qors []obs.NetQoR, method string, saStats *partition.SAStats, opts Options, kprev obs.KernelSnapshot) obs.LevelQoR {
	q := obs.LevelQoR{
		Level:          level,
		Nodes:          len(nodes),
		Clusters:       len(clusters),
		AssignMethod:   method,
		KMeansRestarts: 1,
	}
	if opts.KMeansRestarts > 1 {
		q.KMeansRestarts = opts.KMeansRestarts
	}
	for i := range qors {
		q.WL += qors[i].WL
		q.Buffers += qors[i].Buffers
		q.BufArea += qors[i].BufArea
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := range next {
		if d := next[i].delay; d < lo {
			lo = d
		}
		if d := next[i].delay; d > hi {
			hi = d
		}
	}
	if len(next) > 0 {
		q.Skew = hi - lo
		q.MaxLatency = hi
	}
	for _, cl := range clusters {
		var s float64
		for i := range cl {
			s += cl[i].cap
		}
		if s > q.MaxClusterCap {
			q.MaxClusterCap = s
		}
	}
	if saStats != nil {
		q.SAProposed = saStats.Proposed
		q.SAAccepted = saStats.Accepted
		if saStats.Proposed > 0 {
			q.SAAcceptRate = float64(saStats.Accepted) / float64(saStats.Proposed)
		}
	}
	delta := opts.Obs.Kernel().Snapshot().Sub(kprev)
	q.KMeansIters = int(delta.KMeansIters)
	q.GridQueries = delta.GridQueries
	q.GridRingSteps = delta.GridRingSteps
	if delta.GridQueries > 0 {
		if hr := 1 - float64(delta.GridRingSteps)/float64(delta.GridQueries); hr > 0 {
			q.GridHitRate = hr
		}
	}
	return q
}

// bestClustering runs k-means once, or — when KMeansRestarts asks for it —
// several times with different seeds, scoring each run by silhouette
// (subsampled on large levels to keep the O(n²) score tractable) and
// keeping the best. Restarts are independent — restart r's seed is derived
// from its index (base + r·1009), never from a shared stream — so they fan
// out across workers, each task writing only its own slot; the best-score
// reduction then runs serially in restart order so ties keep the earliest
// restart, exactly like the serial loop. A restart can only fail by
// panicking, which the fan-out surfaces as a *parallel.PanicError; it must
// be propagated, not dropped — a swallowed panic here would hand the
// assignment step zero-valued centers.
func bestClustering(pts []geom.Point, k int, opts Options, level int, sp *obs.Span) ([]geom.Point, error) {
	kern := opts.Obs.Kernel()
	restarts := opts.KMeansRestarts
	if restarts < 1 {
		restarts = 1
	}
	base := opts.Seed + int64(level)
	if restarts == 1 {
		centers, _ := partition.KMeansPK(pts, k, 24, base, opts.Workers, kern)
		return centers, nil
	}
	// Split the worker budget: the outer fan-out covers the restarts, the
	// remainder parallelizes each restart's k-means and silhouette passes.
	outer := parallel.Clamp(opts.Workers)
	inner := outer / restarts
	if inner < 1 {
		inner = 1
	}
	type restartResult struct {
		centers []geom.Point
		score   float64
	}
	results := make([]restartResult, restarts)
	if err := parallel.ForEachSpan(outer, restarts, sp, "restart", func(r int) error {
		c, a := partition.KMeansPK(pts, k, 24, base+int64(r)*1009, inner, kern)
		s, sa := silhouetteSample(pts, a, 2500)
		results[r] = restartResult{c, partition.SilhouetteP(s, sa, k, inner)}
		return nil
	}); err != nil {
		return nil, err
	}
	best := results[0]
	for r := 1; r < restarts; r++ {
		if results[r].score > best.score {
			best = results[r]
		}
	}
	return best.centers, nil
}

// buildTopNet is the flow's final construction stage: one buffered net from
// the clock source to the surviving cluster drivers. Returns the finished
// tree and, when wantQ asks for it (observability on, or the cache driver
// storing the stage's output), the net's own QoR (wire and buffers before
// grafting pulls the lower levels in).
//
// stage: top_net
//
// unit: levelBound ps ->
func buildTopNet(root geom.Point, nodes []clockNode, opts Options, ins *buffering.Inserter, levelBound float64, wantQ bool) (*tree.Tree, *obs.NetQoR, error) {
	tsp := opts.Obs.Begin("top_net")
	defer tsp.End()
	var topQ *obs.NetQoR
	if wantQ {
		topQ = &obs.NetQoR{}
	}
	top, err := buildNet(root, nodes, opts, ins, levelBound, true, topQ)
	if err != nil {
		return nil, nil, err
	}
	return top, topQ, nil
}

// silhouetteSample deterministically subsamples points (stride sampling)
// for silhouette scoring.
func silhouetteSample(pts []geom.Point, assign []int, max int) ([]geom.Point, []int) {
	if len(pts) <= max {
		return pts, assign
	}
	stride := (len(pts) + max - 1) / max
	n := (len(pts) + stride - 1) / stride
	sp := make([]geom.Point, 0, n)
	sa := make([]int, 0, n)
	for i := 0; i < len(pts); i += stride {
		sp = append(sp, pts[i])
		sa = append(sa, assign[i])
	}
	return sp, sa
}

func centroidOf(nodes []clockNode) geom.Point {
	var sx, sy float64
	for i := range nodes {
		sx += nodes[i].loc.X
		sy += nodes[i].loc.Y
	}
	n := float64(len(nodes))
	return geom.Pt(sx/n, sy/n)
}

// buildNet constructs one buffered clock net: routing topology over the
// nodes, driver + repeater insertion, buffered skew repair, and grafting of
// the nodes' subtrees under the new net's leaves. The returned tree is
// rooted at a Source node at src.
//
// stage: cluster_build
//
// unit: levelBound ps ->
//
//slltlint:ignore stagepure grafting is ownership transfer: nodes[i].sub becomes part of the returned tree (only Parent back-links are set), so caching the stage's full output remains sound
func buildNet(src geom.Point, nodes []clockNode, opts Options, ins *buffering.Inserter, levelBound float64, top bool, q *obs.NetQoR) (*tree.Tree, error) {
	net := &tree.Net{Name: "lvl", Source: src}
	for i := range nodes {
		net.Sinks = append(net.Sinks, tree.PinSink{
			Name: fmt.Sprintf("n%d", i),
			Loc:  nodes[i].loc,
			Cap:  nodes[i].cap,
		})
	}
	dopts := dme.Options{
		Model:     dme.Elmore,
		SkewBound: levelBound,
		Tech:      opts.Tech,
		SinkDelay: func(i int, s tree.PinSink) float64 { return nodes[i].delay },
		// Merging regions widen the per-merge delay interval by up to the
		// level's whole skew share — budget the hierarchical flow already
		// spends on cross-level annotation error. Double-spending it forces
		// the post-buffer repair into heavy snaking whose capacitance slows
		// the critical path, so level nets use classic merging segments;
		// regions remain the default for standalone net construction.
		RegionGreed: dme.SegmentRegions,
		Kernel:      opts.Obs.Kernel(),
	}
	if opts.Est == EstNone {
		dopts.SinkDelay = nil
	}
	t, err := opts.Build(net, dopts)
	if err != nil {
		return nil, err
	}
	ins.BufferTree(t)
	if opts.Est != EstNone {
		repairBuffered(t, opts, dopts, levelBound)
		// Repair pads fast subtrees by snaking; a long serpentine's
		// capacitance would slow the whole stage that drives it, so cut the
		// snakes behind repeaters and settle the skew once more.
		if ins.DecoupleSlowWires(t) > 0 {
			repairBuffered(t, opts, dopts, levelBound)
		}
	}

	// Measure the net's own resources before grafting pulls the lower
	// levels' wire and buffers into the tree.
	if q != nil {
		q.WL = t.Wirelength()
		for _, bn := range t.Buffers() {
			q.Buffers++
			if cell := opts.Lib.Cell(bn.BufCell); cell != nil {
				q.BufArea += cell.Area
			}
		}
	}

	// Graft: replace each leaf sink with the node's real subtree.
	for _, s := range t.Sinks() {
		idx := s.SinkIdx
		if idx < 0 || idx >= len(nodes) {
			return nil, fmt.Errorf("cts: net leaf with invalid index %d", idx)
		}
		sub := nodes[idx].sub
		p := s.Parent
		edge := s.EdgeLen
		s.Detach()
		sub.Parent = p
		sub.EdgeLen = edge
		p.Children = append(p.Children, sub)
	}
	return t, nil
}
