package cts

import (
	"reflect"
	"testing"

	"sllt/internal/buffering"
	"sllt/internal/designgen"
	"sllt/internal/obs"
	"sllt/internal/tree"
)

// benchNodes builds the level-0 clock nodes the way Run does, so the
// benchmark exercises buildLevel exactly as the flow drives it.
func benchNodes(b *testing.B, insts, ffs int) ([]clockNode, Options, *buffering.Inserter, float64) {
	b.Helper()
	spec := designgen.Spec{Name: "alloc", Insts: insts, FFs: ffs, Util: 0.62}
	d := designgen.Generate(spec, 1)
	flat := d.Net()
	nodes := make([]clockNode, len(flat.Sinks))
	for i, s := range flat.Sinks {
		leaf := tree.NewNode(tree.Sink, s.Loc)
		leaf.Name = s.Name
		leaf.PinCap = s.Cap
		leaf.SinkIdx = i
		nodes[i] = clockNode{loc: s.Loc, cap: s.Cap, delay: 0, sub: leaf}
	}
	opts := DefaultOptions()
	opts.UseSA = false // SA dominates allocations; the target here is buildLevel's own
	ins := buffering.NewInserter(opts.Lib, opts.Tech, opts.Cons.MaxCap)
	ins.Margin = opts.BufferMargin
	bound := levelShare(opts.Cons.SkewBound, estLevels(len(nodes), opts.Cons.MaxFanout))
	return nodes, opts, ins, bound
}

// TestStageTimingManualClock pins per-stage timing to the injectable obs
// clock instead of the wall clock: with a ManualClock every span duration
// is a pure function of the instrumentation call sequence, so the
// assertions are exact and can never flake on a slow or preempted CI
// runner. A serial (Workers=1) run must produce the identical StageNs map
// on every execution, and every flow stage must record nonzero time.
func TestStageTimingManualClock(t *testing.T) {
	run := func() map[string]int64 {
		spec := designgen.Spec{Name: "clk", Insts: 300, FFs: 60, Util: 0.6}
		d := designgen.Generate(spec, 2)
		opts := DefaultOptions()
		opts.SAIters = 20
		opts.Workers = 1 // serial: the manual clock's Now sequence is then deterministic
		opts.Obs = obs.New(obs.NewManualClock(1))
		if _, err := Run(d, opts); err != nil {
			t.Fatal(err)
		}
		return opts.Obs.Snapshot().StageNs()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("manual-clock stage timings differ across identical runs:\n%v\n%v", a, b)
	}
	for _, name := range []string{"level", "partition", "clusters", "cluster", "top_net", "timing"} {
		if a[name] <= 0 {
			t.Errorf("stage %q recorded no time: %v", name, a)
		}
	}
}

// BenchmarkBuildLevelAllocs guards the hot-path allocation work: member
// buckets sized by a counting pass, cluster slices carved from one backing
// array, and the preallocated silhouette sample. Regressions show up in
// the allocs/op column.
func BenchmarkBuildLevelAllocs(b *testing.B) {
	nodes, opts, ins, bound := benchNodes(b, 2000, 480)
	var scratch levelScratch // reused across iterations, as Run reuses it across levels
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// buildLevel grafts the level-0 subtrees into the cluster trees, so
		// each iteration needs fresh leaves; count only buildLevel itself.
		b.StopTimer()
		fresh := make([]clockNode, len(nodes))
		copy(fresh, nodes)
		for j := range fresh {
			leaf := tree.NewNode(tree.Sink, nodes[j].loc)
			leaf.Name = nodes[j].sub.Name
			leaf.PinCap = nodes[j].cap
			leaf.SinkIdx = j
			fresh[j].sub = leaf
		}
		b.StartTimer()
		if _, _, err := buildLevel(fresh, opts, ins, bound, 0, nil, &scratch); err != nil {
			b.Fatal(err)
		}
	}
}
