package cts

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"sllt/internal/cache"
	"sllt/internal/geom"
)

// goldenKeys derives every key kind from fixed inputs. The fixture pins the
// whole derivation chain — salt, tag framing, field order, fingerprints —
// so any change to key derivation fails here and forces a deliberate
// cacheSalt bump (stale entries must become unreachable, not wrong).
func goldenKeys() map[string]string {
	opts := DefaultOptions()
	opts.SAIters = 100
	base := runBase(opts)

	s0 := sinkID(base, "ff_a", 10, 10, 1.5, 0)
	s1 := sinkID(base, "ff_b", 30, 10, 1.5, 1)
	nodes := []clockNode{
		{loc: geom.Pt(10, 10), cap: 1.5, delay: 0},
		{loc: geom.Pt(30, 10), cap: 1.5, delay: 2.25},
	}
	ids := []cache.Key{s0, s1}
	ck := clusterKey(base, 40, nodes, ids)
	tk := topNetKey(base, 20, 20, 40, nodes, ids)
	return map[string]string{
		"run_base":      base.String(),
		"sink_id":       s0.String(),
		"partition_key": partitionKey(base, 0, nodes).String(),
		"cluster_key":   ck.String(),
		"top_net_key":   tk.String(),
		"timing_key":    timingKey(base, tk).String(),
	}
}

// TestCacheKeyGolden compares every derived key against the committed
// fixture (testdata/cachekeys_golden.json; regenerate with -update only
// alongside a cacheSalt bump).
func TestCacheKeyGolden(t *testing.T) {
	got := goldenKeys()
	path := filepath.Join("testdata", "cachekeys_golden.json")
	if *update {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	var want map[string]string
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("%s = %s, fixture has %s — key derivation changed; bump cacheSalt and regenerate with -update",
				name, got[name], w)
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Errorf("fixture missing key kind %s (regenerate with -update)", name)
		}
	}
}

// TestCacheKeySensitivity checks that every keyed input actually reaches its
// key: perturbing any single knob, constraint, library coefficient or node
// field must change the derived key, while Workers and Obs must not.
func TestCacheKeySensitivity(t *testing.T) {
	base := DefaultOptions()
	base.SAIters = 100
	k0 := runBase(base)

	perturb := map[string]func(*Options){
		"skew bound":    func(o *Options) { o.Cons.SkewBound++ },
		"max fanout":    func(o *Options) { o.Cons.MaxFanout++ },
		"max cap":       func(o *Options) { o.Cons.MaxCap++ },
		"max wl":        func(o *Options) { o.Cons.MaxWL++ },
		"est mode":      func(o *Options) { o.Est = EstExact },
		"use sa":        func(o *Options) { o.UseSA = !o.UseSA },
		"sa iters":      func(o *Options) { o.SAIters++ },
		"seed":          func(o *Options) { o.Seed++ },
		"source slew":   func(o *Options) { o.SourceSlew++ },
		"buffer margin": func(o *Options) { o.BufferMargin += 0.01 },
		"force cell":    func(o *Options) { o.ForceCell = "CLKBUFX4" },
		"restarts":      func(o *Options) { o.KMeansRestarts++ },
		"build id":      func(o *Options) { o.BuildID = "other" },
		"tech":          func(o *Options) { o.Tech.CPerUm += 0.001 },
	}
	for name, f := range perturb {
		o := base
		f(&o)
		if runBase(o) == k0 {
			t.Errorf("perturbing %s did not change the run base key", name)
		}
	}
	neutral := map[string]func(*Options){
		"workers": func(o *Options) { o.Workers = 8 },
	}
	for name, f := range neutral {
		o := base
		f(&o)
		if runBase(o) != k0 {
			t.Errorf("perturbing %s changed the run base key; it is byte-identity-neutral and must not be keyed", name)
		}
	}

	// Node-level sensitivity: identity, geometry, cap, delay each reach the
	// cluster key; a member's id changing (upstream dirt) re-keys the cluster.
	s := sinkID(k0, "s", 1, 2, 3, 0)
	nodes := []clockNode{{loc: geom.Pt(1, 2), cap: 3, delay: 4}}
	ck := clusterKey(k0, 10, nodes, []cache.Key{s})
	for name, alt := range map[string]func() cache.Key{
		"member loc":   func() cache.Key { n := nodes[0]; n.loc.X++; return clusterKey(k0, 10, []clockNode{n}, []cache.Key{s}) },
		"member cap":   func() cache.Key { n := nodes[0]; n.cap++; return clusterKey(k0, 10, []clockNode{n}, []cache.Key{s}) },
		"member delay": func() cache.Key { n := nodes[0]; n.delay++; return clusterKey(k0, 10, []clockNode{n}, []cache.Key{s}) },
		"member id": func() cache.Key {
			s2 := sinkID(k0, "s2", 1, 2, 3, 0)
			return clusterKey(k0, 10, nodes, []cache.Key{s2})
		},
		"level bound": func() cache.Key { return clusterKey(k0, 11, nodes, []cache.Key{s}) },
	} {
		if alt() == ck {
			t.Errorf("perturbing %s did not change the cluster key", name)
		}
	}
}
