package cts

import (
	"sllt/internal/cache"
	"sllt/internal/obs"
	"sllt/internal/timing"
	"sllt/internal/tree"
)

// The cache driver makes each annotated stage individually replayable: every
// stage result is addressed by a key over the stage's complete inputs (see
// cachekey.go), stored as a canonical encoding (codec.go), and replayed on a
// key match instead of recomputed. Dirtiness propagates hierarchically — a
// node's identity is the key of the stage that produced it — so an ECO that
// moves k sinks re-keys only the clusters containing them plus the spine
// above: O(dirty clusters) rebuild work, everything else replays.
//
// The driver lives outside the stage functions (Run and buildLevel consult
// it; partitionLevel, buildNet, buildTopNet and timing.Analyze never see it),
// which keeps the stagepure admission gate meaningful: a stage is cacheable
// because the analyzer proved it pure, and the cache package — like obs — is
// exempt from the purity rules precisely because replaying a verified-pure
// stage's bytes is observationally identical to recomputing them.

// stageCache is one run's cache view: the store, the run's base key and the
// current level's node identities (index-parallel with the driver's nodes
// slice, maintained by Run/buildLevel as levels collapse).
type stageCache struct {
	store *cache.Cache
	base  cache.Key
	ids   []cache.Key
}

// newStageCache returns the run's cache view, or nil when caching is off
// (no store, or no BuildID to vouch for the builder's identity).
func newStageCache(opts Options, sinks []tree.PinSink) *stageCache {
	if opts.Cache == nil || opts.BuildID == "" {
		return nil
	}
	sc := &stageCache{store: opts.Cache, base: runBase(opts)}
	sc.ids = make([]cache.Key, len(sinks))
	for i, s := range sinks {
		sc.ids[i] = sinkID(sc.base, s.Name, s.Loc.X, s.Loc.Y, s.Cap, i)
	}
	return sc
}

// active reports whether sc replays and records stage results. The nil view
// is the disabled state, mirroring the nil *obs.Recorder convention.
func (sc *stageCache) active() bool { return sc != nil }

// getPartition replays a level's partition stage, if stored.
func (sc *stageCache) getPartition(key cache.Key, wantNodes int) (partitionValue, bool) {
	data, ok := sc.store.Get(stagePartition, key)
	if !ok {
		return partitionValue{}, false
	}
	v, err := decodePartitionValue(data, wantNodes)
	if err != nil {
		// The entry passed the store's integrity checks but not this codec:
		// a schema skew the salt should have caught. Drop it and recompute.
		sc.store.Delete(key)
		return partitionValue{}, false
	}
	return v, true
}

func (sc *stageCache) putPartition(key cache.Key, v partitionValue) {
	sc.store.Put(stagePartition, key, encodePartitionValue(v))
}

// getCluster replays one cluster build, if stored.
func (sc *stageCache) getCluster(key cache.Key) (clusterValue, bool) {
	data, ok := sc.store.Get(stageCluster, key)
	if !ok {
		return clusterValue{}, false
	}
	v, err := decodeClusterValue(data)
	if err != nil {
		sc.store.Delete(key)
		return clusterValue{}, false
	}
	return v, true
}

func (sc *stageCache) putCluster(key cache.Key, v clusterValue) {
	sc.store.Put(stageCluster, key, encodeClusterValue(v))
}

// getTopNet replays the top-net stage, if stored.
func (sc *stageCache) getTopNet(key cache.Key) (topNetValue, bool) {
	data, ok := sc.store.Get(stageTopNet, key)
	if !ok {
		return topNetValue{}, false
	}
	v, err := decodeTopNetValue(data)
	if err != nil {
		sc.store.Delete(key)
		return topNetValue{}, false
	}
	return v, true
}

func (sc *stageCache) putTopNet(key cache.Key, v topNetValue) {
	sc.store.Put(stageTopNet, key, encodeTopNetValue(v))
}

// getTiming replays the terminal STA pass, if stored.
func (sc *stageCache) getTiming(key cache.Key) (*timing.Report, bool) {
	data, ok := sc.store.Get(stageTiming, key)
	if !ok {
		return nil, false
	}
	r, err := decodeTimingReport(data)
	if err != nil {
		sc.store.Delete(key)
		return nil, false
	}
	return r, true
}

func (sc *stageCache) putTiming(key cache.Key, r *timing.Report) {
	sc.store.Put(stageTiming, key, encodeTimingReport(r))
}

// cacheReport converts one run's stats delta into the report's cache section.
func cacheReport(delta cache.Stats) *obs.CacheJSON {
	out := &obs.CacheJSON{}
	for _, name := range delta.StageNames() {
		s := delta.Stages[name]
		out.Stages = append(out.Stages, obs.CacheStageJSON{
			Stage:        name,
			Hits:         s.Hits,
			Misses:       s.Misses,
			Puts:         s.Puts,
			HitRate:      s.HitRate(),
			BytesRead:    s.BytesRead,
			BytesWritten: s.BytesWritten,
		})
	}
	t := delta.Total()
	out.Hits = t.Hits
	out.Misses = t.Misses
	out.Puts = t.Puts
	out.HitRate = t.HitRate()
	out.BytesRead = t.BytesRead
	out.BytesWritten = t.BytesWritten
	out.Evictions = t.Evictions
	out.DiskErrors = t.DiskErrors
	return out
}
