package cts

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"sllt/internal/designgen"
	"sllt/internal/dme"
	"sllt/internal/invariants"
	"sllt/internal/parallel"
	"sllt/internal/tree"
)

func TestRunSmallDesign(t *testing.T) {
	spec := designgen.Spec{Name: "unit", Insts: 2000, FFs: 400, Util: 0.6}
	d := designgen.Generate(spec, 1)
	opts := DefaultOptions()
	opts.SAIters = 100
	res, err := Run(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := invariants.CheckTree(res.Tree); err != nil {
		t.Fatal(err)
	}
	if err := invariants.CheckLoad(res.Tree, opts.Tech.CPerUm); err != nil {
		t.Fatal(err)
	}
	// Every FF must appear exactly once.
	seen := map[int]bool{}
	for _, s := range res.Tree.Sinks() {
		if seen[s.SinkIdx] {
			t.Fatalf("sink %d duplicated", s.SinkIdx)
		}
		seen[s.SinkIdx] = true
	}
	if len(seen) != 400 {
		t.Fatalf("tree drives %d FFs, want 400", len(seen))
	}
	rep := res.Report
	if rep.Buffers == 0 {
		t.Error("no buffers inserted")
	}
	if rep.Skew > opts.Cons.SkewBound {
		t.Errorf("skew %.2f ps exceeds bound %.2f", rep.Skew, opts.Cons.SkewBound)
	}
	if rep.MaxLatency <= 0 || rep.MaxLatency > 400 {
		t.Errorf("implausible latency %.2f ps", rep.MaxLatency)
	}
	if rep.MaxStgCap > opts.Cons.MaxCap*1.5 {
		t.Errorf("stage cap %.1f far above limit", rep.MaxStgCap)
	}
	if res.Levels < 2 {
		t.Errorf("expected a hierarchy, got %d levels", res.Levels)
	}
}

func TestRunDeterministic(t *testing.T) {
	spec := designgen.Spec{Name: "unit", Insts: 1000, FFs: 150, Util: 0.6}
	d := designgen.Generate(spec, 2)
	opts := DefaultOptions()
	opts.SAIters = 50
	a, err := Run(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Report.MaxLatency != b.Report.MaxLatency || a.Report.WL != b.Report.WL ||
		a.Report.Buffers != b.Report.Buffers {
		t.Error("CTS is not deterministic")
	}
}

// The Fig.-5 claim: delay annotation (Eq 7 lower bound or exact) controls
// skew that estimate-blind flows leak.
func TestDelayEstimationImprovesSkew(t *testing.T) {
	spec := designgen.Spec{Name: "unit", Insts: 3000, FFs: 600, Util: 0.6}
	d := designgen.Generate(spec, 3)

	run := func(est DelayEst) float64 {
		opts := DefaultOptions()
		opts.Est = est
		opts.UseSA = false
		// A binding skew target: annotation-blind balancing cannot see the
		// cluster insertion delays it needs to cancel.
		opts.Cons.SkewBound = 12
		res, err := Run(d, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.Report.Skew
	}
	none := run(EstNone)
	lb := run(EstLowerBound)
	exact := run(EstExact)
	// On uniform synthetic designs the cluster-latency spread is small, so
	// the annotation modes trade places within a narrow band (the decisive
	// cross-level effect shows on skewed workloads and is asserted
	// statistically by the baseline profile test: the estimate-blind
	// OpenROAD-like flow leaks skew). Here: every mode must stay close to
	// the bound, and annotation must never blow up relative to none.
	bound := 12.0
	for name, skew := range map[string]float64{"none": none, "eq7": lb, "exact": exact} {
		if skew > bound*1.6 {
			t.Errorf("%s mode skew %.2f far above the %.0f ps target", name, skew, bound)
		}
	}
	if lb > none*1.6 || exact > none*1.6 {
		t.Errorf("annotation degraded skew: none=%.2f lb=%.2f exact=%.2f", none, lb, exact)
	}
}

func TestEngines(t *testing.T) {
	spec := designgen.Spec{Name: "unit", Insts: 800, FFs: 120, Util: 0.6}
	d := designgen.Generate(spec, 4)
	for name, b := range map[string]TopoBuilder{
		"cbs": CBSBuilder(dme.GreedyDist, 0.1),
		"bst": BSTBuilder(dme.GreedyDist),
		"zst": ZSTBuilder(dme.GreedyDist),
	} {
		opts := DefaultOptions()
		opts.Build = b
		opts.UseSA = false
		if name == "zst" {
			opts.Est = EstNone
		}
		res, err := Run(d, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := invariants.CheckTree(res.Tree); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := len(res.Tree.Sinks()); got != 120 {
			t.Fatalf("%s: %d sinks", name, got)
		}
	}
}

func TestLevelShare(t *testing.T) {
	if got := levelShare(80, 4); got != 20 {
		t.Errorf("levelShare = %g", got)
	}
	if got := levelShare(80, 0); got != 80 {
		t.Errorf("levelShare clamps to %g", got)
	}
	// 1000 FFs -> ~32 clusters -> one top net: two net levels.
	if estLevels(1000, 32) != 2 {
		t.Errorf("estLevels(1000,32) = %d, want 2", estLevels(1000, 32))
	}
	if estLevels(1001, 31) != 3 {
		t.Errorf("estLevels(1001,31) = %d, want 3", estLevels(1001, 31))
	}
	if estLevels(10, 32) != 1 {
		t.Errorf("estLevels(10,32) = %d, want 1", estLevels(10, 32))
	}
}

// TestRunPropagatesBuilderFailure pins the error plumbing through the
// parallel fan-outs: a builder that fails — by error or by panic — must
// surface from Run, never be swallowed into a partial tree. (A dropped
// fan-out error would hand later stages zero-valued results; the restart
// fan-out in bestClustering had exactly that hole.)
func TestRunPropagatesBuilderFailure(t *testing.T) {
	spec := designgen.Spec{Name: "unit", Insts: 500, FFs: 80, Util: 0.6}
	d := designgen.Generate(spec, 3)
	opts := DefaultOptions()
	opts.SAIters = 0
	opts.KMeansRestarts = 2 // exercise the restart fan-out path too
	opts.Build = func(net *tree.Net, dopts dme.Options) (*tree.Tree, error) {
		return nil, errors.New("builder rejected net")
	}
	if _, err := Run(d, opts); err == nil || !strings.Contains(err.Error(), "builder rejected net") {
		t.Fatalf("Run did not surface builder error, got %v", err)
	}

	opts.Build = func(net *tree.Net, dopts dme.Options) (*tree.Tree, error) {
		panic("builder exploded")
	}
	_, err := Run(d, opts)
	if err == nil {
		t.Fatal("Run swallowed builder panic")
	}
	var pe *parallel.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *parallel.PanicError, got %T: %v", err, err)
	}
	if !strings.Contains(fmt.Sprint(pe.Value), "builder exploded") {
		t.Fatalf("panic value lost: %v", pe.Value)
	}
}
