package designgen

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"sllt/internal/design"
	"sllt/internal/lefdef"
)

func TestTable4Specs(t *testing.T) {
	specs := Table4()
	if len(specs) != 10 {
		t.Fatalf("Table 4 has %d designs, want 10", len(specs))
	}
	if specs[0].Name != "s38584" || specs[9].Name != "ysyx_3" {
		t.Errorf("ordering: %s ... %s", specs[0].Name, specs[9].Name)
	}
	if _, err := FindSpec("ethernet"); err != nil {
		t.Error(err)
	}
	if _, err := FindSpec("nope"); err == nil {
		t.Error("unknown spec should error")
	}
}

func TestGenerateMatchesSpec(t *testing.T) {
	spec, _ := FindSpec("s38417")
	d := Generate(spec, 1)
	if len(d.Insts) != spec.Insts {
		t.Errorf("insts = %d, want %d", len(d.Insts), spec.Insts)
	}
	if d.NumFFs() != spec.FFs {
		t.Errorf("FFs = %d, want %d", d.NumFFs(), spec.FFs)
	}
	util := d.Utilization(func(m string) float64 {
		switch m {
		case "DFFQX1":
			return ffArea
		case "NAND2X1":
			return logicArea
		}
		return 0
	})
	if math.Abs(util-spec.Util) > 0.02 {
		t.Errorf("util = %.3f, want %.3f", util, spec.Util)
	}
	// All FFs inside the die, at distinct locations.
	seen := map[[2]float64]bool{}
	for i := range d.Insts {
		inst := &d.Insts[i]
		if !inst.IsSink {
			continue
		}
		if !d.Die.Contains(inst.Loc) {
			t.Fatalf("FF %s at %v outside die %+v", inst.Name, inst.Loc, d.Die)
		}
		key := [2]float64{inst.Loc.X, inst.Loc.Y}
		if seen[key] {
			t.Fatalf("duplicate FF location %v", inst.Loc)
		}
		seen[key] = true
	}
	if err := d.Net().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec, _ := FindSpec("s35932")
	a := Generate(spec, 7)
	b := Generate(spec, 7)
	for i := range a.Insts {
		if !a.Insts[i].Loc.Eq(b.Insts[i].Loc) {
			t.Fatal("generation not deterministic")
		}
	}
	c := Generate(spec, 8)
	same := true
	for i := range a.Insts {
		if !a.Insts[i].Loc.Eq(c.Insts[i].Loc) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical placements")
	}
}

// TestGeneratorReuse pins the arena-backed Generator to the package-level
// Generate: identical output on a fresh generator, and identical output
// again after the generator's memory has been recycled by intervening
// generations of other specs.
func TestGeneratorReuse(t *testing.T) {
	small := Spec{Name: "g_small", Insts: 400, FFs: 120, Util: 0.6}
	large := Spec{Name: "g_large", Insts: 2500, FFs: 500, Util: 0.65}

	var g Generator
	first := g.Generate(small, 5)
	if !reflect.DeepEqual(first, Generate(small, 5)) {
		t.Fatal("fresh Generator output differs from package Generate")
	}
	// Recycle through a larger and a smaller problem, then regenerate.
	if !reflect.DeepEqual(g.Generate(large, 6), Generate(large, 6)) {
		t.Fatal("reused Generator (grow) output differs from package Generate")
	}
	if !reflect.DeepEqual(g.Generate(small, 5), Generate(small, 5)) {
		t.Fatal("reused Generator (shrink) output differs from package Generate")
	}
}

// TestStreamDEFMatchesWriteDEF pins the streaming DEF renderer byte for
// byte against the in-memory one, and checks the streamed bytes re-parse to
// the same netlist through the streaming parser.
func TestStreamDEFMatchesWriteDEF(t *testing.T) {
	spec := Spec{Name: "stream", Insts: 600, FFs: 150, Util: 0.6}
	d := Generate(spec, 4)
	var sb strings.Builder
	if err := StreamDEF(&sb, d); err != nil {
		t.Fatal(err)
	}
	want := DEF(d).WriteDEF()
	if sb.String() != want {
		t.Fatal("StreamDEF output differs from WriteDEF")
	}
	a, err := lefdef.ParseDEF(want)
	if err != nil {
		t.Fatal(err)
	}
	b, err := lefdef.ParseDEFReader(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("streamed DEF re-parses differently")
	}
}

// The generated design must survive the full LEF/DEF round trip and come
// back as an equivalent CTS problem.
func TestLEFDEFRoundTrip(t *testing.T) {
	spec := Spec{Name: "tiny", Insts: 300, FFs: 90, Util: 0.6}
	d := Generate(spec, 3)
	lefSrc := LEF(nil).WriteLEF()
	defSrc := DEF(d).WriteDEF()

	lef, err := lefdef.ParseLEF(lefSrc)
	if err != nil {
		t.Fatal(err)
	}
	def, err := lefdef.ParseDEF(defSrc)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := design.FromLEFDEF(lef, def, "clk")
	if err != nil {
		t.Fatal(err)
	}
	if d2.NumFFs() != spec.FFs {
		t.Fatalf("round trip FFs = %d, want %d", d2.NumFFs(), spec.FFs)
	}
	n1, n2 := d.Net(), d2.Net()
	if len(n1.Sinks) != len(n2.Sinks) {
		t.Fatal("sink count changed")
	}
	// DBU rounding: locations match to 1/1000 µm.
	for i := range n1.Sinks {
		if n1.Sinks[i].Loc.Dist(n2.Sinks[i].Loc) > 0.002 {
			t.Fatalf("sink %d moved: %v -> %v", i, n1.Sinks[i].Loc, n2.Sinks[i].Loc)
		}
		if n2.Sinks[i].Cap != ffPinCap {
			t.Fatalf("sink %d cap = %g", i, n2.Sinks[i].Cap)
		}
	}
}
