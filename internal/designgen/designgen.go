// Package designgen synthesizes placed designs matching the statistics of
// the paper's benchmark set (Table 4): instance count, flip-flop count and
// utilization. The paper used Innovus placements of ISCAS'89 / OpenCores /
// OpenLane / ysyx designs; without those inputs, this generator reproduces
// each design's workload scale and spatial character — flip-flops placed in
// register clusters, logic filling the rest — and emits it as LEF/DEF-lite,
// so the full flow (parse → design DB → CTS → DEF out) is exercised exactly
// as it would be on a real placement.
package designgen

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"

	"sllt/internal/arena"
	"sllt/internal/design"
	"sllt/internal/geom"
	"sllt/internal/lefdef"
	"sllt/internal/liberty"
)

// Spec describes one benchmark design to synthesize.
type Spec struct {
	Name  string
	Insts int     // total instances
	FFs   int     // flip-flops (clock sinks)
	Util  float64 // placement utilization
}

// Table4 returns the paper's design statistics (its Table 4), in paper
// order.
func Table4() []Spec {
	return []Spec{
		{"s38584", 7510, 1248, 0.60},
		{"s38417", 6428, 1564, 0.61},
		{"s35932", 6113, 1728, 0.58},
		{"salsa20", 13706, 2375, 0.68},
		{"ethernet", 39945, 10015, 0.61},
		{"vga_lcd", 60541, 16902, 0.55},
		{"ysyx_0", 86933, 18487, 0.93},
		{"ysyx_1", 93907, 19090, 0.868},
		{"ysyx_2", 139178, 27078, 0.814},
		{"ysyx_3", 139956, 22810, 0.722},
	}
}

// FindSpec returns the Table 4 spec with the given name.
func FindSpec(name string) (Spec, error) {
	for _, s := range Table4() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("designgen: unknown design %q", name)
}

// Cell areas (µm², 28 nm-class).
const (
	logicArea = 1.5
	ffArea    = 4.5
	ffW       = 2.5
	ffH       = 1.8
	logicW    = 1.0
	logicH    = 1.5
	ffPinCap  = 0.5 // fF — design FF clock pins (Table 6/7 calibration)
)

// Generate synthesizes a placed design for the spec. Deterministic for a
// given spec and seed.
func Generate(spec Spec, seed int64) *design.Design {
	var g Generator
	return g.Generate(spec, seed)
}

// Generator is a reusable design synthesizer: the instance array comes from
// an arena and the placement-collision set is recycled, so benchmark loops
// that generate tier after tier do not re-grow either. The returned design's
// Insts slice is arena memory — it is valid only until the generator's next
// Generate call, which rewinds the arena. The package-level Generate wraps a
// throwaway Generator and has no such aliasing.
type Generator struct {
	instA arena.Arena[design.Instance]
	used  map[[2]int]bool
}

// Generate synthesizes a placed design for the spec, reusing the
// generator's memory. Output is identical to the package-level Generate for
// the same (spec, seed).
func (g *Generator) Generate(spec Spec, seed int64) *design.Design {
	rng := rand.New(rand.NewSource(seed))
	totalArea := float64(spec.Insts-spec.FFs)*logicArea + float64(spec.FFs)*ffArea
	dieArea := totalArea / spec.Util
	side := math.Sqrt(dieArea)

	d := &design.Design{
		Name:      spec.Name,
		Die:       geom.Rect{XLo: 0, YLo: 0, XHi: side, YHi: side},
		DBU:       1000,
		ClockNet:  "clk",
		ClockRoot: geom.Pt(0, side/2), // clock enters at the left die edge
	}

	// Flip-flops cluster into register banks: the spatial structure real
	// placers produce and the one that makes partitioning interesting.
	nClusters := spec.FFs/64 + 1
	centers := make([]geom.Point, nClusters)
	for i := range centers {
		centers[i] = geom.Pt(rng.Float64()*side, rng.Float64()*side)
	}
	sigma := side / 18
	g.instA.Reset()
	nFF := spec.FFs
	if nFF < 0 {
		nFF = 0
	}
	nLogic := spec.Insts - spec.FFs
	if nLogic < 0 {
		nLogic = 0
	}
	insts := g.instA.AllocN(nFF + nLogic)
	d.Insts = insts
	if g.used == nil {
		g.used = make(map[[2]int]bool, spec.FFs)
	} else {
		clear(g.used)
	}
	used := g.used
	for i := 0; i < spec.FFs; i++ {
		c := centers[rng.Intn(nClusters)]
		var p geom.Point
		for try := 0; ; try++ {
			p = geom.Pt(
				clampF(c.X+rng.NormFloat64()*sigma, 1, side-1),
				clampF(c.Y+rng.NormFloat64()*sigma, 1, side-1),
			)
			// Snap to a placement grid so no two FFs overlap exactly.
			p = geom.Pt(math.Round(p.X/0.2)*0.2, math.Round(p.Y/0.2)*0.2)
			key := [2]int{int(p.X * 5), int(p.Y * 5)}
			if !used[key] {
				used[key] = true
				break
			}
			if try > 64 {
				c = geom.Pt(rng.Float64()*side, rng.Float64()*side)
			}
		}
		insts[i] = design.Instance{
			Name:        fmt.Sprintf("ff_%05d", i),
			Macro:       "DFFQX1",
			Loc:         p,
			IsSink:      true,
			ClockPin:    "CK",
			ClockPinCap: ffPinCap,
		}
	}
	// Logic instances: uniform filler. They carry no clock pins but define
	// the utilization and the DEF's scale.
	for i := 0; i < nLogic; i++ {
		insts[nFF+i] = design.Instance{
			Name:  fmt.Sprintf("u_%06d", i),
			Macro: "NAND2X1",
			Loc:   geom.Pt(rng.Float64()*side, rng.Float64()*side),
		}
	}
	return d
}

func clampF(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// LEF returns the LEF-lite library covering every macro the generator (and
// the CTS buffer inserter) uses.
func LEF(bufferMacros []lefdef.Macro) *lefdef.LEF {
	lef := &lefdef.LEF{Version: "5.8", DBU: 1000, Macros: []*lefdef.Macro{
		{
			Name: "DFFQX1", Class: "CORE", W: ffW, H: ffH,
			Pins: []lefdef.MacroPin{
				{Name: "CK", Direction: "INPUT", Use: "CLOCK", Cap: ffPinCap},
				{Name: "D", Direction: "INPUT", Use: "SIGNAL", Cap: 0.8},
				{Name: "Q", Direction: "OUTPUT", Use: "SIGNAL"},
			},
		},
		{
			Name: "NAND2X1", Class: "CORE", W: logicW, H: logicH,
			Pins: []lefdef.MacroPin{
				{Name: "A", Direction: "INPUT", Use: "SIGNAL", Cap: 0.8},
				{Name: "B", Direction: "INPUT", Use: "SIGNAL", Cap: 0.8},
				{Name: "Y", Direction: "OUTPUT", Use: "SIGNAL"},
			},
		},
	}}
	for i := range bufferMacros {
		m := bufferMacros[i]
		lef.Macros = append(lef.Macros, &m)
	}
	return lef
}

// BufferMacros converts a buffer library into LEF macros so post-CTS DEF
// files (which instantiate the buffers) round-trip through the parsers.
func BufferMacros(lib *liberty.Library) []lefdef.Macro {
	var out []lefdef.Macro
	for _, c := range lib.Cells {
		h := 1.6
		out = append(out, lefdef.Macro{
			Name: c.Name, Class: "CORE", W: c.Area / h, H: h,
			Pins: []lefdef.MacroPin{
				{Name: "A", Direction: "INPUT", Use: "CLOCK", Cap: c.InputCap},
				{Name: "Y", Direction: "OUTPUT", Use: "CLOCK"},
			},
		})
	}
	return out
}

// DEF converts a generated design into DEF-lite form (components, clock IO
// pin, and the flat clock net).
func DEF(d *design.Design) *lefdef.DEF {
	def := &lefdef.DEF{
		Version: "5.8",
		Design:  d.Name,
		DBU:     d.DBU,
		Die:     d.Die,
	}
	clock := lefdef.Net{Name: d.ClockNet, Use: "CLOCK",
		Conns: []lefdef.Conn{{Comp: "PIN", Pin: d.ClockNet}}}
	for i := range d.Insts {
		inst := &d.Insts[i]
		def.Components = append(def.Components, lefdef.Component{
			Name: inst.Name, Macro: inst.Macro, Loc: inst.Loc, Placed: true, Orient: "N",
		})
		if inst.IsSink {
			clock.Conns = append(clock.Conns, lefdef.Conn{Comp: inst.Name, Pin: inst.ClockPin})
		}
	}
	def.Pins = append(def.Pins, lefdef.IOPin{
		Name: d.ClockNet, Net: d.ClockNet, Direction: "INPUT", Use: "CLOCK", Loc: d.ClockRoot,
	})
	def.Nets = append(def.Nets, clock)
	return def
}

// StreamDEF renders DEF(d) to w through a fixed-size buffer, byte-identical
// to DEF(d).WriteDEF() but without ever materializing the rendered text —
// the way multi-hundred-megabyte benchmark tiers reach disk.
func StreamDEF(w io.Writer, d *design.Design) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := DEF(d).WriteTo(bw); err != nil {
		return err
	}
	return bw.Flush()
}
