package baseline

import (
	"testing"

	"sllt/internal/cts"
	"sllt/internal/designgen"
)

// The proxies must reproduce the paper's qualitative profile (Tables 6/7).
// Individual designs are noisy, so the comparison aggregates several
// synthetic designs: OpenROAD-like loses on latency, skew, buffer count,
// area and capacitance; the commercial proxy stays in our ballpark.
func TestBaselineProfiles(t *testing.T) {
	type agg struct {
		lat, skew, area, cap, wl float64
		bufs                     int
	}
	var ours, or, com agg

	for seed := int64(5); seed < 8; seed++ {
		spec := designgen.Spec{Name: "prof", Insts: 3000, FFs: 600, Util: 0.62}
		d := designgen.Generate(spec, seed)
		run := func(opts cts.Options, a *agg) {
			res, err := cts.Run(d, opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Tree.Validate(); err != nil {
				t.Fatal(err)
			}
			a.lat += res.Report.MaxLatency
			a.skew += res.Report.Skew
			a.area += res.Report.BufArea
			a.cap += res.Report.ClockCap
			a.wl += res.Report.WL
			a.bufs += res.Report.Buffers
		}
		run(cts.DefaultOptions(), &ours)
		run(OpenROADLike(), &or)
		run(CommercialLike(), &com)
	}

	if or.lat <= ours.lat {
		t.Errorf("OpenROAD-like latency %.1f not above ours %.1f", or.lat, ours.lat)
	}
	if or.skew <= ours.skew {
		t.Errorf("OpenROAD-like skew %.1f not above ours %.1f", or.skew, ours.skew)
	}
	if or.bufs <= ours.bufs {
		t.Errorf("OpenROAD-like buffers %d not above ours %d", or.bufs, ours.bufs)
	}
	if or.area <= ours.area {
		t.Errorf("OpenROAD-like buffer area %.1f not above ours %.1f", or.area, ours.area)
	}
	if or.cap <= ours.cap {
		t.Errorf("OpenROAD-like clock cap %.1f not above ours %.1f", or.cap, ours.cap)
	}
	if r := com.lat / ours.lat; r < 0.8 || r > 1.4 {
		t.Errorf("commercial latency ratio %.2f out of band", r)
	}
	if r := com.wl / ours.wl; r < 0.8 || r > 1.1 {
		t.Errorf("commercial WL ratio %.2f out of band", r)
	}
}
