// Package baseline configures the two reference flows the paper compares
// against in Tables 6 and 7. Neither tool is available to this
// reproduction (OpenROAD has no Go port; the commercial tool is
// proprietary), so both are modeled as configurations of the same
// hierarchical framework whose algorithmic choices mirror each tool's
// published/observed character:
//
//   - OpenROADLike follows TritonCTS's shape: geometric sink clustering
//     (no balance refinement), zero-skew DME balancing on pure geometry
//     with no insertion-delay annotation between levels, and uniformly
//     large clock buffers. The profile that emerges — higher latency and
//     skew, more buffer area, more wire — is the one Tables 6/7 report
//     for OpenROAD.
//
//   - CommercialLike models a mature P&R engine: plain BST-DME topology
//     (strong skew control, heavier wire than CBS), exact timing-driven
//     insertion-delay annotation, conservative buffer sizing, and a much
//     larger optimization effort (longer annealing, multiple topology
//     candidates per net) — which is also what makes it an order of
//     magnitude slower, as in the paper's runtime columns.
package baseline

import (
	"sllt/internal/core"
	"sllt/internal/cts"
	"sllt/internal/dme"
	"sllt/internal/tree"
)

// OpenROADLike returns the OpenROAD-proxy flow configuration.
func OpenROADLike() cts.Options {
	opts := cts.DefaultOptions()
	// TritonCTS routes clusters competently; its weaknesses modeled here
	// are the estimate-blind balancing, uniform large buffers and deeper
	// hierarchy, not the per-net router. The builder is the same CBS
	// construction DefaultOptions names, so the inherited BuildID stays
	// accurate for stage-cache keying.
	opts.Build = cts.CBSBuilder(dme.GreedyDist, 0.1)
	opts.Est = cts.EstNone
	opts.UseSA = false
	opts.ForceCell = opts.Lib.Strongest().Name
	opts.BufferMargin = 1.0
	// TritonCTS-style deeper hierarchies: smaller clusters, more levels,
	// more (and uniformly large) buffers.
	opts.Cons.MaxFanout = 20
	return opts
}

// CommercialLike returns the commercial-proxy flow configuration.
func CommercialLike() cts.Options {
	opts := cts.DefaultOptions()
	opts.Build = bestOfCandidates()
	// bestOfCandidates replaces the default builder, so it must carry its
	// own cache identity: the BST-DME candidate sweep over all four topology
	// generators plus the CBS refinement at SALT eps 0.6.
	opts.BuildID = "bstdme-bestof4+cbs-refine/0.60"
	opts.Est = cts.EstExact
	opts.UseSA = true
	opts.SAIters = 30000
	opts.KMeansRestarts = 4
	opts.BufferMargin = 0.65 // conservative sizing: more, larger buffers
	// Much tighter internal skew targets than the constraint requires:
	// commercial engines balance aggressively and spend wire doing it.
	opts.Cons.SkewBound = cts.DefaultConstraints().SkewBound * 0.25
	return opts
}

// bestOfCandidates builds each net with BST-DME under all four merging-
// topology generators and refines the lightest with CBS — the kind of
// candidate sweep a commercial engine spends its runtime on. Because the
// final answer is a CBS refinement of a BST seed, the wire quality tracks
// the paper's observation that the commercial tool essentially matches on
// wirelength while spending far more runtime.
func bestOfCandidates() cts.TopoBuilder {
	return func(net *tree.Net, dopts dme.Options) (*tree.Tree, error) {
		var best *tree.Tree
		var firstErr error
		for _, m := range dme.AllTopoMethods {
			topo := dme.GenTopo(net, m, dopts.LengthBudget(net))
			t, err := dme.Build(net, topo, dopts)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			if best == nil || t.Wirelength() < best.Wirelength() {
				best = t
			}
		}
		if best == nil {
			return nil, firstErr
		}
		if refined, err := core.Refine(net, best, core.Options{
			DME: dopts, TopoMethod: dme.GreedyDist, SALTEps: 0.6,
		}); err == nil && refined.Wirelength() < best.Wirelength() {
			best = refined
		}
		return best, nil
	}
}
