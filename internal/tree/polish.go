package tree

import "sllt/internal/geom"

// OptimizeSteinerLocations iteratively moves every Steiner node to the
// component-wise median of its neighbors (parent and children), the L1
// Fermat point that minimizes the total length of its incident edges. Edge
// lengths are reset to Manhattan distances, so any snaking is discarded —
// callers that need a skew bound must re-balance afterwards.
//
// Returns the number of nodes moved. Iterates until a fixed point or
// maxIter sweeps.
func OptimizeSteinerLocations(t *Tree, maxIter int) int {
	if maxIter <= 0 {
		maxIter = 32
	}
	total := 0
	for iter := 0; iter < maxIter; iter++ {
		moved := 0
		t.Walk(func(n *Node) bool {
			if n.Kind != Steiner || n.Parent == nil || len(n.Children) == 0 {
				return true
			}
			xs := make([]float64, 0, len(n.Children)+1)
			ys := make([]float64, 0, len(n.Children)+1)
			xs = append(xs, n.Parent.Loc.X)
			ys = append(ys, n.Parent.Loc.Y)
			for _, c := range n.Children {
				xs = append(xs, c.Loc.X)
				ys = append(ys, c.Loc.Y)
			}
			best := geom.Pt(medianOf(xs), medianOf(ys))
			if !best.Eq(n.Loc) {
				// Accept only strict improvement to guarantee termination.
				before := n.Parent.Loc.Dist(n.Loc)
				after := n.Parent.Loc.Dist(best)
				for _, c := range n.Children {
					before += n.Loc.Dist(c.Loc)
					after += best.Dist(c.Loc)
				}
				if after < before-geom.Eps {
					n.Loc = best
					moved++
				}
			}
			return true
		})
		// Refresh all edge lengths to Manhattan distances after a sweep.
		if moved > 0 {
			t.Walk(func(n *Node) bool {
				if n.Parent != nil {
					n.EdgeLen = n.Parent.Loc.Dist(n.Loc)
				}
				return true
			})
		}
		total += moved
		if moved == 0 {
			break
		}
	}
	return total
}

// medianOf returns the lower median of xs. xs is clobbered.
func medianOf(xs []float64) float64 {
	// Insertion sort: neighbor lists are tiny.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	return xs[(len(xs)-1)/2]
}
