package tree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sllt/internal/geom"
)

// quickNet builds a reproducible random net from quick-generated integers.
func quickNet(seed int64, n int) *Net {
	rng := rand.New(rand.NewSource(seed))
	if n < 2 {
		n = 2
	}
	if n > 40 {
		n = 2 + n%39
	}
	net := &Net{Source: geom.Pt(rng.Float64()*100, rng.Float64()*100)}
	used := map[geom.Point]bool{net.Source: true}
	for len(net.Sinks) < n {
		p := geom.Pt(float64(rng.Intn(100)), float64(rng.Intn(100)))
		if used[p] {
			continue
		}
		used[p] = true
		net.Sinks = append(net.Sinks, PinSink{Name: "s", Loc: p, Cap: 1})
	}
	return net
}

// starTree wires every sink straight from the source.
func starTree(net *Net) *Tree {
	t := New(net.Source)
	for i := range net.Sinks {
		t.Root.AddChild(net.SinkNode(i))
	}
	return t
}

// Property: for any net, the star tree has α = 1 (paths are Manhattan
// shortest) and γ ≥ 1, and Measure's path stats are consistent.
func TestQuickStarTreeProperties(t *testing.T) {
	f := func(seed int64, n int) bool {
		net := quickNet(seed, n)
		tr := starTree(net)
		m := Measure(tr, net, tr.Wirelength())
		if m.Alpha > 1+1e-9 {
			return false
		}
		if m.Gamma < 1-1e-9 {
			return false
		}
		if m.MinPL > m.MeanPL+1e-9 || m.MeanPL > m.MaxPL+1e-9 {
			return false
		}
		if m.Beta != 1 {
			return false
		}
		return m.SkewPL() >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Canonicalize preserves the sink set and every sink's path
// length on arbitrary random tree shapes.
func TestQuickCanonicalizePreservesPaths(t *testing.T) {
	f := func(seed int64, n int) bool {
		net := quickNet(seed, n)
		rng := rand.New(rand.NewSource(seed ^ 0x5ca1e))
		// Random attachment order with random intermediate steiner points.
		tr := New(net.Source)
		nodes := []*Node{tr.Root}
		for i := range net.Sinks {
			parent := nodes[rng.Intn(len(nodes))]
			for parent.Kind == Sink {
				parent = nodes[rng.Intn(len(nodes))]
			}
			if rng.Intn(2) == 0 {
				st := NewNode(Steiner, parent.Loc.Lerp(net.Sinks[i].Loc, rng.Float64()))
				parent.AddChild(st)
				nodes = append(nodes, st)
				parent = st
			}
			s := net.SinkNode(i)
			parent.AddChild(s)
			nodes = append(nodes, s)
		}
		before := map[int]float64{}
		for _, s := range tr.Sinks() {
			before[s.SinkIdx] = PathLength(s)
		}
		Canonicalize(tr)
		if err := tr.Validate(); err != nil {
			return false
		}
		sinks := tr.Sinks()
		if len(sinks) != len(net.Sinks) {
			return false
		}
		for _, s := range sinks {
			if math.Abs(PathLength(s)-before[s.SinkIdx]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: OptimizeSteinerLocations never increases total wirelength and
// preserves validity.
func TestQuickPolishMonotone(t *testing.T) {
	f := func(seed int64, n int) bool {
		net := quickNet(seed, n)
		rng := rand.New(rand.NewSource(seed ^ 0x901154))
		tr := New(net.Source)
		// Chain with per-sink steiner detours.
		cur := tr.Root
		for i := range net.Sinks {
			st := NewNode(Steiner, geom.Pt(rng.Float64()*100, rng.Float64()*100))
			cur.AddChild(st)
			st.AddChild(net.SinkNode(i))
			cur = st
		}
		before := tr.Wirelength()
		OptimizeSteinerLocations(tr, 8)
		if err := tr.Validate(); err != nil {
			return false
		}
		return tr.Wirelength() <= before+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
