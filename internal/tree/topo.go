package tree

import (
	"fmt"

	"sllt/internal/geom"
)

// Topo is an abstract binary merging topology over the sinks of a Net: the
// input of deferred-merge embedding. Leaves reference sink indices; internal
// nodes carry no geometry — DME decides their embedding.
type Topo struct {
	Root *TopoNode
}

// TopoNode is one vertex of a merging topology. Leaves have SinkIdx >= 0 and
// nil children; internal nodes have SinkIdx == -1 and exactly two children.
type TopoNode struct {
	Left, Right *TopoNode
	SinkIdx     int
}

// TopoLeaf returns a leaf referencing sink i.
func TopoLeaf(i int) *TopoNode { return &TopoNode{SinkIdx: i, Left: nil, Right: nil} }

// TopoMerge returns an internal node over two subtrees.
func TopoMerge(l, r *TopoNode) *TopoNode { return &TopoNode{Left: l, Right: r, SinkIdx: -1} }

// IsLeaf reports whether n is a sink leaf.
func (n *TopoNode) IsLeaf() bool { return n.Left == nil && n.Right == nil }

// Leaves returns the sink indices below n in left-to-right order.
func (n *TopoNode) Leaves() []int {
	var out []int
	var rec func(*TopoNode)
	rec = func(v *TopoNode) {
		if v == nil {
			return
		}
		if v.IsLeaf() {
			out = append(out, v.SinkIdx)
			return
		}
		rec(v.Left)
		rec(v.Right)
	}
	rec(n)
	return out
}

// Validate checks that the topology is a proper binary tree covering each of
// the numSinks sink indices exactly once.
func (t *Topo) Validate(numSinks int) error {
	if t == nil || t.Root == nil {
		return fmt.Errorf("topo: nil topology")
	}
	seen := make([]bool, numSinks)
	var err error
	var rec func(*TopoNode) bool
	rec = func(n *TopoNode) bool {
		if n.IsLeaf() {
			if n.SinkIdx < 0 || n.SinkIdx >= numSinks {
				err = fmt.Errorf("topo: leaf sink index %d out of range [0,%d)", n.SinkIdx, numSinks)
				return false
			}
			if seen[n.SinkIdx] {
				err = fmt.Errorf("topo: sink %d appears twice", n.SinkIdx)
				return false
			}
			seen[n.SinkIdx] = true
			return true
		}
		if n.Left == nil || n.Right == nil {
			err = fmt.Errorf("topo: internal node with missing child")
			return false
		}
		return rec(n.Left) && rec(n.Right)
	}
	if !rec(t.Root) {
		return err
	}
	for i, s := range seen {
		if !s {
			return fmt.Errorf("topo: sink %d missing", i)
		}
	}
	return nil
}

// ExtractTopo derives a merging topology from an embedded clock tree: the
// paper's Step 2 and Step 4. Steiner structure is flattened to the binary
// merging order implied by the tree shape; sinks are identified by their
// SinkIdx, which every topology builder in this repository sets.
//
// The tree need not be binary: multi-way branches are reduced with nearest-
// pair grouping, mirroring Binarize.
func ExtractTopo(t *Tree, numSinks int) (*Topo, error) {
	var rec func(n *Node) []*topoCand
	rec = func(n *Node) []*topoCand {
		var cands []*topoCand
		for _, c := range n.Children {
			cands = append(cands, rec(c)...)
		}
		if n.Kind == Sink {
			if n.SinkIdx < 0 {
				return cands // stale sink without identity: ignore
			}
			return append(cands, &topoCand{node: TopoLeaf(n.SinkIdx), loc: n.Loc})
		}
		// Internal: merge this node's candidate list down to one subtree,
		// pairing nearest candidates first.
		if len(cands) == 0 {
			return nil
		}
		for len(cands) > 1 {
			i, j := closestCandPair(cands)
			a, b := cands[i], cands[j]
			cands = append(cands[:j], cands[j+1:]...)
			cands[i] = &topoCand{
				node: TopoMerge(a.node, b.node),
				loc:  a.loc.Lerp(b.loc, 0.5),
			}
		}
		return cands
	}
	cands := rec(t.Root)
	if len(cands) != 1 {
		return nil, fmt.Errorf("topo: extraction produced %d roots", len(cands))
	}
	topo := &Topo{Root: cands[0].node}
	if err := topo.Validate(numSinks); err != nil {
		return nil, err
	}
	return topo, nil
}

type topoCand struct {
	node *TopoNode
	loc  geom.Point
}

func closestCandPair(cands []*topoCand) (int, int) {
	bi, bj := 0, 1
	best := -1.0
	for i := 0; i < len(cands); i++ {
		for j := i + 1; j < len(cands); j++ {
			d := cands[i].loc.Dist(cands[j].loc)
			if best < 0 || d < best {
				best, bi, bj = d, i, j
			}
		}
	}
	return bi, bj
}
