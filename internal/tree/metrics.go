package tree

import (
	"math"

	"sllt/internal/geom"
)

// Metrics aggregates the SLLT quality measures of a clock tree.
//
// Shallowness α = max over sinks of PL(s)/MD(s)   (latency proxy)
// Lightness   β = WL(T)/WL(reference RSMT)        (load-capacitance proxy)
// Skewness    γ = max PL / mean PL                (skew proxy, Definition 2.1)
type Metrics struct {
	NumSinks int
	MaxPL    float64 // longest source-to-sink path length
	MinPL    float64 // shortest source-to-sink path length
	MeanPL   float64 // average source-to-sink path length
	WL       float64 // total wirelength
	Alpha    float64 // shallowness
	Beta     float64 // lightness (0 when no reference given)
	Gamma    float64 // skewness
}

// SkewPL returns the path-length skew max−min, the paper's Equation (1)
// proxy for clock skew under the wirelength delay model.
func (m Metrics) SkewPL() float64 { return m.MaxPL - m.MinPL }

// Mean returns the average of α, β and γ — the paper's Table 1 "Mean" column.
func (m Metrics) Mean() float64 { return (m.Alpha + m.Beta + m.Gamma) / 3 }

// Measure computes the SLLT metrics of t with respect to net (which supplies
// the Manhattan-distance denominators for α). refWL is the wirelength of the
// reference RSMT used as the β denominator; pass 0 to skip β.
//
// Sinks co-located with the source are skipped in the α maximum (their
// Manhattan distance is zero, making shallowness undefined there).
func Measure(t *Tree, net *Net, refWL float64) Metrics {
	m := Metrics{MinPL: math.Inf(1)}
	var sumPL float64
	t.Walk(func(n *Node) bool {
		m.WL += n.EdgeLen
		if n.Kind != Sink {
			return true
		}
		pl := PathLength(n)
		sumPL += pl
		m.NumSinks++
		if pl > m.MaxPL {
			m.MaxPL = pl
		}
		if pl < m.MinPL {
			m.MinPL = pl
		}
		md := net.Source.Dist(n.Loc)
		if md > 0 {
			if a := pl / md; a > m.Alpha {
				m.Alpha = a
			}
		}
		return true
	})
	if m.NumSinks == 0 {
		m.MinPL = 0
		return m
	}
	m.MeanPL = sumPL / float64(m.NumSinks)
	if m.MeanPL > 0 {
		m.Gamma = m.MaxPL / m.MeanPL
	} else {
		m.Gamma = 1
	}
	if refWL > 0 {
		m.Beta = m.WL / refWL
	}
	return m
}

// Dispersion returns max_s MD(s) / mean_s MD(s) for the net — the left-hand
// side of the paper's Equation (4).
func Dispersion(net *Net) float64 {
	var sum, max float64
	n := 0
	for _, s := range net.Sinks {
		d := net.Source.Dist(s.Loc)
		sum += d
		if d > max {
			max = d
		}
		n++
	}
	if n == 0 || geom.Sign(sum) == 0 {
		return 1
	}
	return max / (sum / float64(n))
}

// Theorem23Binding reports whether the paper's Theorem 2.3 applies at the
// given ε: when the pin dispersion exceeds (1+ε)², no SLLT over the net can
// simultaneously achieve α ≤ 1+ε and γ ≤ 1+ε.
func Theorem23Binding(net *Net, eps float64) bool {
	bound := (1 + eps) * (1 + eps)
	return Dispersion(net) > bound
}
