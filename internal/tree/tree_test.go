package tree

import (
	"testing"

	"sllt/internal/geom"
)

// chainTree builds source(0,0) -> steiner(5,0) -> two sinks.
func chainTree() (*Tree, *Net) {
	net := &Net{
		Name:   "t",
		Source: geom.Pt(0, 0),
		Sinks: []PinSink{
			{Name: "a", Loc: geom.Pt(10, 0), Cap: 2},
			{Name: "b", Loc: geom.Pt(5, 5), Cap: 3},
		},
	}
	t := New(net.Source)
	st := NewNode(Steiner, geom.Pt(5, 0))
	t.Root.AddChild(st)
	st.AddChild(net.SinkNode(0))
	st.AddChild(net.SinkNode(1))
	return t, net
}

func TestTreeBasics(t *testing.T) {
	tr, _ := chainTree()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Wirelength(); got != 15 {
		t.Errorf("WL = %g, want 15", got)
	}
	sinks := tr.Sinks()
	if len(sinks) != 2 {
		t.Fatalf("sinks = %d", len(sinks))
	}
	if pl := PathLength(sinks[0]); pl != 10 {
		t.Errorf("PL(a) = %g, want 10", pl)
	}
	if pl := PathLength(sinks[1]); pl != 10 {
		t.Errorf("PL(b) = %g, want 10", pl)
	}
	if d := tr.MaxDepth(); d != 2 {
		t.Errorf("depth = %d, want 2", d)
	}
	if n := tr.CountKind(Steiner); n != 1 {
		t.Errorf("steiner count = %d", n)
	}
}

func TestTreeClone(t *testing.T) {
	tr, _ := chainTree()
	cp := tr.Clone()
	if err := cp.Validate(); err != nil {
		t.Fatal(err)
	}
	// Mutating the clone must not affect the original.
	cp.Root.Children[0].Loc = geom.Pt(99, 99)
	if tr.Root.Children[0].Loc.Eq(geom.Pt(99, 99)) {
		t.Fatal("clone shares nodes with original")
	}
	if cp.Wirelength() != tr.Wirelength() {
		t.Error("clone wirelength differs before mutation effects")
	}
}

func TestValidateCatchesSinkWithChildren(t *testing.T) {
	tr, net := chainTree()
	sink := tr.Sinks()[0]
	sink.AddChild(NewNode(Steiner, geom.Pt(12, 0)))
	if err := tr.Validate(); err == nil {
		t.Fatal("expected validation error for sink with children")
	}
	LegalizeSinkLeaves(tr)
	if err := tr.Validate(); err != nil {
		t.Fatalf("after LegalizeSinkLeaves: %v", err)
	}
	_ = net
}

func TestValidateCatchesShortEdge(t *testing.T) {
	tr, _ := chainTree()
	tr.Root.Children[0].EdgeLen = 1 // Manhattan distance is 5
	if err := tr.Validate(); err == nil {
		t.Fatal("expected validation error for too-short edge")
	}
}

func TestTotalLoad(t *testing.T) {
	tr, _ := chainTree()
	// pins 2+3 = 5 fF; wire 15 units * 0.2 fF/unit = 3 fF
	if got := tr.TotalLoad(0.2); got != 8 {
		t.Errorf("TotalLoad = %g, want 8", got)
	}
}

func TestDetach(t *testing.T) {
	tr, _ := chainTree()
	st := tr.Root.Children[0]
	st.Detach()
	if len(tr.Root.Children) != 0 {
		t.Fatal("detach did not remove child")
	}
	if st.Parent != nil {
		t.Fatal("detach left parent pointer")
	}
}

func TestNetValidate(t *testing.T) {
	n := &Net{Name: "n", Source: geom.Pt(0, 0)}
	if err := n.Validate(); err == nil {
		t.Error("empty net should fail validation")
	}
	n.Sinks = []PinSink{{Name: "a", Loc: geom.Pt(1, 1)}, {Name: "b", Loc: geom.Pt(1, 1)}}
	if err := n.Validate(); err == nil {
		t.Error("duplicate sink locations should fail validation")
	}
	n.Sinks[1].Loc = geom.Pt(2, 2)
	if err := n.Validate(); err != nil {
		t.Errorf("valid net rejected: %v", err)
	}
}

func TestSplitEdge(t *testing.T) {
	tr, _ := chainTree()
	sink := tr.Sinks()[0] // at (10,0), parent steiner at (5,0), edge 5
	st := SplitEdge(sink, 2)
	if st == nil {
		t.Fatal("SplitEdge returned nil")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if st.EdgeLen != 2 || sink.EdgeLen != 3 {
		t.Errorf("edge lengths %g/%g, want 2/3", st.EdgeLen, sink.EdgeLen)
	}
	if !st.Loc.Eq(geom.Pt(7, 0)) {
		t.Errorf("split point %v, want (7,0)", st.Loc)
	}
	// Path length to the sink is unchanged.
	if pl := PathLength(sink); pl != 10 {
		t.Errorf("PL after split = %g, want 10", pl)
	}
}

func TestPointAlongL(t *testing.T) {
	a, b := geom.Pt(0, 0), geom.Pt(4, 3)
	if p := PointAlongL(a, b, 7, 2); !p.Eq(geom.Pt(2, 0)) {
		t.Errorf("horizontal leg point = %v", p)
	}
	if p := PointAlongL(a, b, 7, 6); !p.Eq(geom.Pt(4, 2)) {
		t.Errorf("vertical leg point = %v", p)
	}
	// Snaked edge: distance scales proportionally.
	if p := PointAlongL(a, b, 14, 4); !p.Eq(geom.Pt(2, 0)) {
		t.Errorf("snaked point = %v", p)
	}
}
