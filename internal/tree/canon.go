package tree

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"sllt/internal/geom"
)

// Canonicalize enforces the paper's Step-4 structural rules in place:
//  1. load pin (sink) nodes are leaf nodes;
//  2. the tree is binary (every internal node has at most two children);
//
// and additionally removes redundant Steiner nodes (degree-1 pass-throughs
// and childless Steiner leaves), which Step 2 and Step 5 also require.
func Canonicalize(t *Tree) {
	LegalizeSinkLeaves(t)
	RemoveRedundantSteiner(t)
	Binarize(t)
}

// LegalizeSinkLeaves rewrites any sink that has children into a Steiner node
// at the same location with the sink re-attached as a zero-length leaf child.
func LegalizeSinkLeaves(t *Tree) {
	// Collect first: we mutate the structure while walking otherwise.
	var bad []*Node
	t.Walk(func(n *Node) bool {
		if n.Kind == Sink && len(n.Children) > 0 {
			bad = append(bad, n)
		}
		return true
	})
	for _, s := range bad {
		st := NewNode(Steiner, s.Loc)
		st.Parent = s.Parent
		st.EdgeLen = s.EdgeLen
		if p := s.Parent; p != nil {
			for i, c := range p.Children {
				if c == s {
					p.Children[i] = st
					break
				}
			}
		} else {
			// A sink acting as root is unusual but possible in sub-trees.
			t.Root = st
		}
		st.Children = s.Children
		for _, c := range st.Children {
			c.Parent = st
		}
		s.Children = nil
		s.Parent = st
		s.EdgeLen = 0
		st.Children = append(st.Children, s)
	}
}

// RemoveRedundantSteiner deletes Steiner leaves and splices out Steiner (and
// buffer-less pass-through) nodes with exactly one child, accumulating edge
// lengths so path lengths are preserved.
func RemoveRedundantSteiner(t *Tree) {
	changed := true
	for changed {
		changed = false
		var rec func(n *Node)
		rec = func(n *Node) {
			for i := 0; i < len(n.Children); i++ {
				c := n.Children[i]
				if c.Kind == Steiner && len(c.Children) == 0 {
					// Childless Steiner point: drop.
					n.Children = append(n.Children[:i], n.Children[i+1:]...)
					i--
					changed = true
					continue
				}
				if c.Kind == Steiner && len(c.Children) == 1 {
					// Pass-through: splice out, keeping total length.
					g := c.Children[0]
					g.EdgeLen += c.EdgeLen
					g.Parent = n
					n.Children[i] = g
					changed = true
					i--
					continue
				}
				rec(c)
			}
		}
		rec(t.Root)
		// A root Steiner with a single child cannot be spliced (the root is
		// the source), so only the recursion above applies.
	}
}

// Binarize inserts zero-length Steiner nodes so that no node has more than
// two children. Children are paired greedily by proximity, which gives DME
// better merge candidates than arbitrary pairing.
func Binarize(t *Tree) {
	var rec func(n *Node)
	rec = func(n *Node) {
		for _, c := range n.Children {
			rec(c)
		}
		for len(n.Children) > 2 {
			i, j := closestPair(n.Children)
			a, b := n.Children[i], n.Children[j]
			// Remove b then a (j > i always from closestPair).
			n.Children = append(n.Children[:j], n.Children[j+1:]...)
			n.Children = append(n.Children[:i], n.Children[i+1:]...)
			st := NewNode(Steiner, n.Loc)
			st.Parent = n
			st.EdgeLen = 0
			st.Children = []*Node{a, b}
			a.Parent, b.Parent = st, st
			n.Children = append(n.Children, st)
		}
	}
	rec(t.Root)
}

// closestPair returns indices i < j of the two nodes whose locations are
// nearest in Manhattan distance.
func closestPair(nodes []*Node) (int, int) {
	bi, bj := 0, 1
	best := math.Inf(1)
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			if d := nodes[i].Loc.Dist(nodes[j].Loc); d < best {
				best, bi, bj = d, i, j
			}
		}
	}
	return bi, bj
}

// Fingerprint returns a canonical string encoding of the tree: kinds,
// locations, sink indices and edge lengths, with every node's children
// serialized in sorted order. Two trees have equal fingerprints iff they are
// structurally identical up to sibling ordering — the comparison the
// equivalence property tests use to assert that an accelerated kernel built
// the same tree as its exhaustive reference.
func Fingerprint(t *Tree) string {
	if t == nil || t.Root == nil {
		return ""
	}
	var enc func(n *Node) string
	enc = func(n *Node) string {
		var b strings.Builder
		fmt.Fprintf(&b, "(%d:%.9g,%.9g:%.9g:%d", int(n.Kind), n.Loc.X, n.Loc.Y, n.EdgeLen, n.SinkIdx)
		if len(n.Children) > 0 {
			kids := make([]string, len(n.Children))
			for i, c := range n.Children {
				kids[i] = enc(c)
			}
			sort.Strings(kids)
			for _, k := range kids {
				b.WriteString(k)
			}
		}
		b.WriteString(")")
		return b.String()
	}
	return enc(t.Root)
}

// SplitEdge inserts a Steiner node on the wire from n's parent to n at the
// given distance from the parent (along an L-shaped embedding through the
// horizontal-then-vertical bend). It returns the new node. dist must lie in
// (0, n.EdgeLen).
func SplitEdge(n *Node, dist float64) *Node {
	p := n.Parent
	if p == nil || dist <= 0 || dist >= n.EdgeLen {
		return nil
	}
	loc := PointAlongL(p.Loc, n.Loc, n.EdgeLen, dist)
	st := NewNode(Steiner, loc)
	st.Parent = p
	st.EdgeLen = dist
	for i, c := range p.Children {
		if c == n {
			p.Children[i] = st
			break
		}
	}
	n.Parent = st
	n.EdgeLen -= dist
	st.Children = []*Node{n}
	return st
}

// PointAlongL returns the point at routed distance d from a toward b along
// an L-shaped (horizontal-then-vertical) embedding whose total length is
// edgeLen. When edgeLen exceeds the Manhattan distance (snaked wire), the
// surplus is treated as spent at the bend, keeping the returned point on the
// nominal L route.
func PointAlongL(a, b geom.Point, edgeLen, d float64) geom.Point {
	md := a.Dist(b)
	if geom.Sign(md) == 0 {
		return a
	}
	// Scale d onto the physical L path proportionally when wire is snaked.
	if edgeLen > md && edgeLen > 0 {
		d = d * md / edgeLen
	}
	dx := math.Abs(b.X - a.X)
	if d <= dx {
		return geom.Pt(a.X+math.Copysign(d, b.X-a.X), a.Y)
	}
	rem := d - dx
	return geom.Pt(b.X, a.Y+math.Copysign(rem, b.Y-a.Y))
}
