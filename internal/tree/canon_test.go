package tree

import (
	"math/rand"
	"testing"

	"sllt/internal/geom"
)

func TestRemoveRedundantSteiner(t *testing.T) {
	net := &Net{Source: geom.Pt(0, 0), Sinks: []PinSink{{Name: "a", Loc: geom.Pt(10, 0)}}}
	tr := New(net.Source)
	// source -> st1(3,0) -> st2(6,0) -> sink(10,0), plus dangling steiner leaf.
	st1 := NewNode(Steiner, geom.Pt(3, 0))
	st2 := NewNode(Steiner, geom.Pt(6, 0))
	tr.Root.AddChild(st1)
	st1.AddChild(st2)
	st2.AddChild(net.SinkNode(0))
	dead := NewNode(Steiner, geom.Pt(5, 5))
	tr.Root.AddChild(dead)

	RemoveRedundantSteiner(tr)
	if n := tr.CountKind(Steiner); n != 0 {
		t.Fatalf("steiner nodes remaining: %d", n)
	}
	sink := tr.Sinks()[0]
	if PathLength(sink) != 10 {
		t.Errorf("path length after splice = %g, want 10", PathLength(sink))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveRedundantKeepsBranches(t *testing.T) {
	tr, _ := chainTree()
	before := tr.CountKind(Steiner)
	RemoveRedundantSteiner(tr)
	if tr.CountKind(Steiner) != before {
		t.Error("branching steiner node was removed")
	}
}

func TestBinarize(t *testing.T) {
	net := &Net{Source: geom.Pt(0, 0), Sinks: []PinSink{
		{Name: "a", Loc: geom.Pt(10, 0)},
		{Name: "b", Loc: geom.Pt(11, 1)},
		{Name: "c", Loc: geom.Pt(-10, 0)},
		{Name: "d", Loc: geom.Pt(0, 10)},
	}}
	tr := New(net.Source)
	for i := range net.Sinks {
		tr.Root.AddChild(net.SinkNode(i))
	}
	Binarize(tr)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	tr.Walk(func(n *Node) bool {
		if len(n.Children) > 2 {
			t.Errorf("node at %v has %d children after Binarize", n.Loc, len(n.Children))
		}
		return true
	})
	// Path lengths to sinks are preserved (zero-length steiner insertions).
	for _, s := range tr.Sinks() {
		want := net.Source.Dist(s.Loc)
		if PathLength(s) != want {
			t.Errorf("PL(%s) = %g, want %g", s.Name, PathLength(s), want)
		}
	}
	// a and b are closest; they should share the deepest group.
	var a *Node
	for _, s := range tr.Sinks() {
		if s.Name == "a" {
			a = s
		}
	}
	foundB := false
	for _, c := range a.Parent.Children {
		if c.Name == "b" {
			foundB = true
		}
	}
	if !foundB {
		t.Error("nearest sinks a and b were not paired first")
	}
}

func TestCanonicalizeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(15)
		net := &Net{Source: geom.Pt(0, 0)}
		for i := 0; i < n; i++ {
			net.Sinks = append(net.Sinks, PinSink{
				Name: "s", Loc: geom.Pt(float64(rng.Intn(1000)), float64(rng.Intn(1000))), Cap: 1,
			})
		}
		// Star tree with spurious pass-through steiner nodes.
		tr := New(net.Source)
		for i := range net.Sinks {
			mid := NewNode(Steiner, net.Source.Lerp(net.Sinks[i].Loc, 0.5))
			tr.Root.AddChild(mid)
			mid.AddChild(net.SinkNode(i))
		}
		Canonicalize(tr)
		if err := tr.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		tr.Walk(func(nd *Node) bool {
			if len(nd.Children) > 2 {
				t.Errorf("trial %d: fanout %d after Canonicalize", trial, len(nd.Children))
			}
			if nd.Kind == Steiner && len(nd.Children) < 2 {
				t.Errorf("trial %d: redundant steiner survived", trial)
			}
			return true
		})
		if got := len(tr.Sinks()); got != n {
			t.Fatalf("trial %d: sink count %d, want %d", trial, got, n)
		}
	}
}
