// Package tree defines the rooted rectilinear clock-tree data structure used
// throughout the repository, together with the SLLT quality metrics from the
// paper: shallowness α, lightness β and skewness γ (Definitions 2.1/2.2).
//
// A Tree is rooted at the clock source. Every non-root node carries the
// length of the wire connecting it to its parent; the length is at least the
// Manhattan distance between the endpoints and may exceed it when deferred
// merge embedding snakes wire to balance delays.
package tree

import (
	"fmt"

	"sllt/internal/geom"
)

// Kind classifies tree nodes.
type Kind int

// Node kinds.
const (
	Source  Kind = iota // the clock root
	Sink                // a load pin (flip-flop clock pin); must be a leaf
	Steiner             // a routing branch point
	Buffer              // an inserted clock buffer
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Source:
		return "source"
	case Sink:
		return "sink"
	case Steiner:
		return "steiner"
	case Buffer:
		return "buffer"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Node is a single clock-tree vertex.
type Node struct {
	Kind     Kind
	Name     string
	Loc      geom.Point
	Parent   *Node
	Children []*Node

	// EdgeLen is the routed wirelength from Parent to this node, in the same
	// units as coordinates. Zero for the root. Always >= Manhattan distance
	// to the parent (wire snaking makes it longer).
	EdgeLen float64

	// PinCap is the input pin capacitance in fF (sinks and buffers).
	PinCap float64

	// BufCell names the library cell when Kind == Buffer.
	BufCell string

	// SinkIdx is the index of this sink in the originating Net (-1 otherwise).
	SinkIdx int
}

// NewNode returns a node of the given kind at loc with SinkIdx -1.
func NewNode(k Kind, loc geom.Point) *Node {
	return &Node{Kind: k, Loc: loc, SinkIdx: -1}
}

// AddChild links c under n, setting c.Parent and a default EdgeLen equal to
// the Manhattan distance. Callers that snake wire overwrite EdgeLen after.
func (n *Node) AddChild(c *Node) {
	c.Parent = n
	c.EdgeLen = n.Loc.Dist(c.Loc)
	n.Children = append(n.Children, c)
}

// Detach unlinks n from its parent. No-op for the root.
func (n *Node) Detach() {
	p := n.Parent
	if p == nil {
		return
	}
	for i, c := range p.Children {
		if c == n {
			p.Children = append(p.Children[:i], p.Children[i+1:]...)
			break
		}
	}
	n.Parent = nil
	n.EdgeLen = 0
}

// Tree is a rooted clock tree.
type Tree struct {
	Root *Node
}

// New returns a tree rooted at a source node at loc.
func New(loc geom.Point) *Tree {
	return &Tree{Root: NewNode(Source, loc)}
}

// Walk visits every node in preorder. Returning false from fn prunes the
// subtree below the node.
func (t *Tree) Walk(fn func(*Node) bool) {
	if t == nil || t.Root == nil {
		return
	}
	var rec func(*Node)
	rec = func(n *Node) {
		if !fn(n) {
			return
		}
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(t.Root)
}

// Nodes returns all nodes in preorder.
func (t *Tree) Nodes() []*Node {
	var out []*Node
	t.Walk(func(n *Node) bool { out = append(out, n); return true })
	return out
}

// Sinks returns all sink nodes in preorder.
func (t *Tree) Sinks() []*Node {
	var out []*Node
	t.Walk(func(n *Node) bool {
		if n.Kind == Sink {
			out = append(out, n)
		}
		return true
	})
	return out
}

// Buffers returns all buffer nodes in preorder.
func (t *Tree) Buffers() []*Node {
	var out []*Node
	t.Walk(func(n *Node) bool {
		if n.Kind == Buffer {
			out = append(out, n)
		}
		return true
	})
	return out
}

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree {
	if t == nil || t.Root == nil {
		return nil
	}
	var rec func(*Node) *Node
	rec = func(n *Node) *Node {
		cp := *n
		cp.Parent = nil
		cp.Children = nil
		for _, c := range n.Children {
			cc := rec(c)
			cc.Parent = &cp
			cp.Children = append(cp.Children, cc)
		}
		return &cp
	}
	return &Tree{Root: rec(t.Root)}
}

// Wirelength returns the total routed wirelength of the tree.
func (t *Tree) Wirelength() float64 {
	var wl float64
	t.Walk(func(n *Node) bool {
		wl += n.EdgeLen
		return true
	})
	return wl
}

// PathLength returns the routed path length from the root to n.
func PathLength(n *Node) float64 {
	var pl float64
	for v := n; v.Parent != nil; v = v.Parent {
		pl += v.EdgeLen
	}
	return pl
}

// Validate checks structural invariants: parent/child links are mutual,
// edge lengths are at least the Manhattan distance, sinks are leaves, and
// there are no cycles. It returns the first violation found.
func (t *Tree) Validate() error {
	if t == nil || t.Root == nil {
		return fmt.Errorf("tree: nil tree")
	}
	if t.Root.Parent != nil {
		return fmt.Errorf("tree: root has a parent")
	}
	seen := make(map[*Node]bool)
	var err error
	var rec func(n *Node) bool
	rec = func(n *Node) bool {
		if seen[n] {
			err = fmt.Errorf("tree: cycle or shared node at %v", n.Loc)
			return false
		}
		seen[n] = true
		if n.Kind == Sink && len(n.Children) > 0 {
			err = fmt.Errorf("tree: sink %q at %v has %d children", n.Name, n.Loc, len(n.Children))
			return false
		}
		for _, c := range n.Children {
			if c.Parent != n {
				err = fmt.Errorf("tree: child at %v has wrong parent", c.Loc)
				return false
			}
			if c.EdgeLen < n.Loc.Dist(c.Loc)-geom.Eps {
				err = fmt.Errorf("tree: edge to %v shorter (%g) than Manhattan distance (%g)",
					c.Loc, c.EdgeLen, n.Loc.Dist(c.Loc))
				return false
			}
			if !rec(c) {
				return false
			}
		}
		return true
	}
	rec(t.Root)
	return err
}

// BBox returns the bounding box of all node locations.
func (t *Tree) BBox() geom.Rect {
	r := geom.EmptyRect()
	t.Walk(func(n *Node) bool { r = r.Grow(n.Loc); return true })
	return r
}

// CountKind returns the number of nodes of kind k.
func (t *Tree) CountKind(k Kind) int {
	var c int
	t.Walk(func(n *Node) bool {
		if n.Kind == k {
			c++
		}
		return true
	})
	return c
}

// MaxDepth returns the maximum number of edges on any root-to-leaf path.
func (t *Tree) MaxDepth() int {
	var rec func(*Node) int
	rec = func(n *Node) int {
		best := 0
		for _, c := range n.Children {
			if d := rec(c) + 1; d > best {
				best = d
			}
		}
		return best
	}
	if t == nil || t.Root == nil {
		return 0
	}
	return rec(t.Root)
}

// TotalLoad returns the total load capacitance of the tree seen from the
// root: sum of sink and buffer input pin caps plus wire capacitance at
// capPerUnit (fF per coordinate unit). This matches the paper's
// load = Σ Cap_pin(s_i) + c·WL(T).
func (t *Tree) TotalLoad(capPerUnit float64) float64 {
	var load float64
	t.Walk(func(n *Node) bool {
		load += n.EdgeLen * capPerUnit
		if n.Kind == Sink || n.Kind == Buffer {
			load += n.PinCap
		}
		return true
	})
	return load
}
