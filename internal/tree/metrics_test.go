package tree

import (
	"math"
	"testing"

	"sllt/internal/geom"
)

func TestMeasureChain(t *testing.T) {
	tr, net := chainTree()
	m := Measure(tr, net, 15) // use own WL as reference -> beta 1
	if m.NumSinks != 2 {
		t.Fatalf("NumSinks = %d", m.NumSinks)
	}
	if m.MaxPL != 10 || m.MinPL != 10 || m.MeanPL != 10 {
		t.Errorf("PL stats %g/%g/%g, want 10/10/10", m.MaxPL, m.MinPL, m.MeanPL)
	}
	if m.SkewPL() != 0 {
		t.Errorf("SkewPL = %g", m.SkewPL())
	}
	if m.Gamma != 1 {
		t.Errorf("gamma = %g, want 1 (zero skew)", m.Gamma)
	}
	// Sink a: PL 10, MD 10 -> 1. Sink b: PL 10, MD 10 -> 1.
	if m.Alpha != 1 {
		t.Errorf("alpha = %g, want 1", m.Alpha)
	}
	if m.Beta != 1 {
		t.Errorf("beta = %g, want 1", m.Beta)
	}
	if math.Abs(m.Mean()-1) > 1e-12 {
		t.Errorf("Mean = %g", m.Mean())
	}
}

func TestMeasureDetour(t *testing.T) {
	net := &Net{Source: geom.Pt(0, 0), Sinks: []PinSink{{Name: "a", Loc: geom.Pt(4, 0)}}}
	tr := New(net.Source)
	s := net.SinkNode(0)
	tr.Root.AddChild(s)
	s.EdgeLen = 8 // snaked to twice the Manhattan distance
	m := Measure(tr, net, 4)
	if m.Alpha != 2 {
		t.Errorf("alpha = %g, want 2", m.Alpha)
	}
	if m.Beta != 2 {
		t.Errorf("beta = %g, want 2", m.Beta)
	}
	if m.Gamma != 1 { // single sink: max == mean
		t.Errorf("gamma = %g, want 1", m.Gamma)
	}
}

func TestDispersion(t *testing.T) {
	// Two sinks at distances 10 and 10: dispersion 1.
	net := &Net{Source: geom.Pt(0, 0), Sinks: []PinSink{
		{Loc: geom.Pt(10, 0)}, {Loc: geom.Pt(0, 10)},
	}}
	if d := Dispersion(net); math.Abs(d-1) > 1e-12 {
		t.Errorf("dispersion = %g, want 1", d)
	}
	// Distances 10 and 30: mean 20, max 30 -> 1.5.
	net.Sinks[1].Loc = geom.Pt(0, 30)
	if d := Dispersion(net); math.Abs(d-1.5) > 1e-12 {
		t.Errorf("dispersion = %g, want 1.5", d)
	}
}

// Theorem 2.3: when dispersion > (1+eps)^2, no tree can have both alpha and
// gamma <= 1+eps. We verify the theorem's contrapositive empirically on the
// shortest-path star tree (alpha = 1, the most shallow tree possible).
func TestTheorem23(t *testing.T) {
	eps := 0.1
	net := &Net{Source: geom.Pt(0, 0), Sinks: []PinSink{
		{Name: "near1", Loc: geom.Pt(1, 0)},
		{Name: "near2", Loc: geom.Pt(0, 1)},
		{Name: "far", Loc: geom.Pt(50, 50)},
	}}
	if !Theorem23Binding(net, eps) {
		t.Fatal("dispersed net should trigger the theorem")
	}
	// Star tree: every sink wired straight from the source (alpha = 1).
	tr := New(net.Source)
	for i := range net.Sinks {
		tr.Root.AddChild(net.SinkNode(i))
	}
	m := Measure(tr, net, tr.Wirelength())
	if m.Alpha > 1+eps {
		t.Fatalf("star tree alpha = %g, expected <= 1+eps", m.Alpha)
	}
	if m.Gamma <= 1+eps {
		t.Fatalf("theorem violated: alpha=%g gamma=%g both within 1+eps on dispersed net", m.Alpha, m.Gamma)
	}
}

func TestTheorem23NotBindingOnRing(t *testing.T) {
	// Pins on a Manhattan circle: dispersion ~ 1, theorem does not bind.
	net := &Net{Source: geom.Pt(0, 0), Sinks: []PinSink{
		{Loc: geom.Pt(10, 0)}, {Loc: geom.Pt(0, 10)},
		{Loc: geom.Pt(-10, 0)}, {Loc: geom.Pt(0, -10)},
		{Loc: geom.Pt(5, 5)}, {Loc: geom.Pt(-5, 5)},
	}}
	if Theorem23Binding(net, 0.1) {
		t.Error("ring distribution should not trigger the theorem at eps=0.1")
	}
}
