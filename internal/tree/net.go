package tree

import (
	"fmt"

	"sllt/internal/geom"
)

// PinSink is a clock net load: a flip-flop or macro clock pin.
type PinSink struct {
	Name string
	Loc  geom.Point
	Cap  float64 // input pin capacitance, fF
}

// Net is a single clock net: one driver (source) and a set of load pins.
// All routing-topology algorithms in this repository consume a Net and
// produce a Tree.
type Net struct {
	Name   string
	Source geom.Point
	Sinks  []PinSink
}

// Validate reports the first problem with the net definition.
func (n *Net) Validate() error {
	if len(n.Sinks) == 0 {
		return fmt.Errorf("net %q: no sinks", n.Name)
	}
	// Sink locations come verbatim from the design description, never from
	// arithmetic, so duplicate detection wants exact-bit equality.
	//lint:ignore floatcmp exact-bit duplicate detection on verbatim input coordinates
	seen := make(map[geom.Point]string, len(n.Sinks))
	for _, s := range n.Sinks {
		if prev, dup := seen[s.Loc]; dup {
			return fmt.Errorf("net %q: sinks %q and %q share location %v", n.Name, prev, s.Name, s.Loc)
		}
		seen[s.Loc] = s.Name
	}
	return nil
}

// BBox returns the bounding box of the source and all sinks.
func (n *Net) BBox() geom.Rect {
	r := geom.RectOf(n.Source)
	for _, s := range n.Sinks {
		r = r.Grow(s.Loc)
	}
	return r
}

// SinkPoints returns the sink locations in order.
func (n *Net) SinkPoints() []geom.Point {
	pts := make([]geom.Point, len(n.Sinks))
	for i, s := range n.Sinks {
		pts[i] = s.Loc
	}
	return pts
}

// TotalPinCap returns the sum of sink pin capacitances in fF.
func (n *Net) TotalPinCap() float64 {
	var c float64
	for _, s := range n.Sinks {
		c += s.Cap
	}
	return c
}

// SinkNode returns a leaf node for sink i of the net.
func (n *Net) SinkNode(i int) *Node {
	s := n.Sinks[i]
	nd := NewNode(Sink, s.Loc)
	nd.Name = s.Name
	nd.PinCap = s.Cap
	nd.SinkIdx = i
	return nd
}
