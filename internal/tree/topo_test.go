package tree

import (
	"math/rand"
	"sort"
	"testing"

	"sllt/internal/geom"
)

func TestTopoValidate(t *testing.T) {
	topo := &Topo{Root: TopoMerge(TopoLeaf(0), TopoMerge(TopoLeaf(1), TopoLeaf(2)))}
	if err := topo.Validate(3); err != nil {
		t.Fatal(err)
	}
	if err := topo.Validate(4); err == nil {
		t.Error("missing sink not detected")
	}
	dup := &Topo{Root: TopoMerge(TopoLeaf(0), TopoLeaf(0))}
	if err := dup.Validate(2); err == nil {
		t.Error("duplicate sink not detected")
	}
	if err := (&Topo{}).Validate(1); err == nil {
		t.Error("nil root not detected")
	}
}

func TestTopoLeaves(t *testing.T) {
	topo := TopoMerge(TopoMerge(TopoLeaf(2), TopoLeaf(0)), TopoLeaf(1))
	got := topo.Leaves()
	want := []int{2, 0, 1}
	if len(got) != len(want) {
		t.Fatalf("leaves = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("leaves = %v, want %v", got, want)
		}
	}
}

func TestExtractTopoFromTree(t *testing.T) {
	tr, net := chainTree()
	topo, err := ExtractTopo(tr, len(net.Sinks))
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Validate(len(net.Sinks)); err != nil {
		t.Fatal(err)
	}
	leaves := topo.Root.Leaves()
	sort.Ints(leaves)
	if leaves[0] != 0 || leaves[1] != 1 {
		t.Errorf("leaves = %v", leaves)
	}
}

func TestExtractTopoMultiway(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(20)
		net := &Net{Source: geom.Pt(0, 0)}
		tr := New(net.Source)
		for i := 0; i < n; i++ {
			net.Sinks = append(net.Sinks, PinSink{
				Loc: geom.Pt(rng.Float64()*100, rng.Float64()*100),
			})
			tr.Root.AddChild(net.SinkNode(i)) // n-way star
		}
		topo, err := ExtractTopo(tr, n)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := topo.Validate(n); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
