package timing

import (
	"math"
	"math/rand"
	"testing"

	"sllt/internal/dme"
	"sllt/internal/geom"
	"sllt/internal/liberty"
	"sllt/internal/tech"
	"sllt/internal/tree"
)

// Long shared trunk, short divergence: CPPR must recover almost all of the
// naive pessimism.
func TestOCVCPPRRecoversSharedTrunk(t *testing.T) {
	lib := liberty.Default()
	tc := tech.Default28nm()
	tr := tree.New(geom.Pt(0, 0))
	trunkEnd := tree.NewNode(tree.Steiner, geom.Pt(400, 0))
	tr.Root.AddChild(trunkEnd)
	a := tree.NewNode(tree.Sink, geom.Pt(405, 5))
	a.PinCap = 1
	a.SinkIdx = 0
	b := tree.NewNode(tree.Sink, geom.Pt(405, -5))
	b.PinCap = 1
	b.SinkIdx = 1
	trunkEnd.AddChild(a)
	trunkEnd.AddChild(b)

	rep, err := AnalyzeOCV(tr, lib, tc, 20, DefaultOCV())
	if err != nil {
		t.Fatal(err)
	}
	if rep.NaiveSkew <= 0 {
		t.Fatalf("naive skew = %g", rep.NaiveSkew)
	}
	// The 400 µm trunk dominates both paths; CPPR keeps only the 10 µm
	// divergence's derate spread.
	if rep.Skew > rep.NaiveSkew*0.2 {
		t.Errorf("CPPR skew %g did not recover trunk pessimism (naive %g)", rep.Skew, rep.NaiveSkew)
	}
	if math.Abs(rep.Pessimism-(rep.NaiveSkew-rep.Skew)) > 1e-9 {
		t.Error("pessimism accounting inconsistent")
	}
}

func TestOCVZeroDerateMatchesNominal(t *testing.T) {
	lib := liberty.Default()
	tc := tech.Default28nm()
	rng := rand.New(rand.NewSource(81))
	net := &tree.Net{Source: geom.Pt(40, 40)}
	for i := 0; i < 20; i++ {
		net.Sinks = append(net.Sinks, tree.PinSink{
			Name: "s", Loc: geom.Pt(rng.Float64()*80, rng.Float64()*80), Cap: 1.2,
		})
	}
	topo := dme.GenTopo(net, dme.GreedyDist, 0)
	tr, err := dme.Build(net, topo, dme.Options{Model: dme.Elmore, SkewBound: 5, Tech: tc})
	if err != nil {
		t.Fatal(err)
	}
	unit := OCVParams{WireEarly: 1, WireLate: 1, CellEarly: 1, CellLate: 1}
	rep, err := AnalyzeOCV(tr, lib, tc, 20, unit)
	if err != nil {
		t.Fatal(err)
	}
	maxD, skew := Unbuffered(tr, tc)
	_ = maxD
	if math.Abs(rep.NaiveSkew-skew) > 1e-6 {
		t.Errorf("unit-derate naive skew %g != nominal skew %g", rep.NaiveSkew, skew)
	}
	if rep.Skew > rep.NaiveSkew+1e-9 {
		t.Error("CPPR skew exceeds naive skew")
	}
}

// The paper's OCV motivation: variation-induced skew grows with the delay
// depth below divergence points, so the same zero-nominal-skew construction
// on a larger (higher-latency) net leaves more residual OCV skew even after
// CPPR. Verified by scaling one net geometry.
func TestOCVGrowsWithTreeDepth(t *testing.T) {
	lib := liberty.Default()
	tc := tech.Default28nm()
	rng := rand.New(rand.NewSource(82))
	buildZST := func(scale float64) *tree.Tree {
		r := rand.New(rand.NewSource(82))
		_ = rng
		net := &tree.Net{Source: geom.Pt(37.5*scale, 37.5*scale)}
		used := map[geom.Point]bool{}
		for len(net.Sinks) < 24 {
			p := geom.Pt(float64(r.Intn(75))*scale, float64(r.Intn(75))*scale)
			if used[p] {
				continue
			}
			used[p] = true
			net.Sinks = append(net.Sinks, tree.PinSink{Name: "s", Loc: p, Cap: 1.2})
		}
		topo := dme.GenTopo(net, dme.GreedyDist, 0)
		tr, err := dme.Build(net, topo, dme.Options{Model: dme.Elmore, SkewBound: 0.01, Tech: tc})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	small, err := AnalyzeOCV(buildZST(1), lib, tc, 20, DefaultOCV())
	if err != nil {
		t.Fatal(err)
	}
	large, err := AnalyzeOCV(buildZST(4), lib, tc, 20, DefaultOCV())
	if err != nil {
		t.Fatal(err)
	}
	// Nominal skew of both is ~0; the residual is pure variation.
	if large.Skew <= small.Skew {
		t.Errorf("OCV skew did not grow with tree depth: %g (4x) vs %g (1x)", large.Skew, small.Skew)
	}
}
