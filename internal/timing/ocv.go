package timing

import (
	"fmt"
	"math"

	"sllt/internal/liberty"
	"sllt/internal/tech"
	"sllt/internal/tree"
)

// OCVParams model on-chip variation as early/late derating factors on wire
// and cell delays — the graph-based OCV approximation production STA uses.
// The paper's introduction motivates SLLT with exactly this effect:
// balanced-but-deep clock trees accumulate derate spread along their long
// divergent paths, so trees that are shallow where it counts see less
// variation-induced skew.
type OCVParams struct {
	WireEarly float64 // unit: 1 // multiplier on wire delay for the early race
	WireLate  float64 // unit: 1 // multiplier on wire delay for the late race
	CellEarly float64 // unit: 1 // multiplier on buffer delay, early
	CellLate  float64 // unit: 1 // multiplier on buffer delay, late
}

// DefaultOCV returns ±5 % wire and ±8 % cell derates, typical sign-off
// values at 28 nm.
func DefaultOCV() OCVParams {
	return OCVParams{WireEarly: 0.95, WireLate: 1.05, CellEarly: 0.92, CellLate: 1.08}
}

// OCVReport is the variation-aware skew analysis result.
type OCVReport struct {
	// NaiveSkew is max late arrival − min early arrival: the bound without
	// common-path pessimism removal.
	NaiveSkew float64 // unit: ps
	// Skew is the CPPR-corrected worst pair skew: derates only apply where
	// two sink paths actually diverge, since the shared trunk cannot be
	// simultaneously fast and slow.
	Skew float64 // unit: ps
	// Pessimism is the credit CPPR recovered on the worst pair.
	Pessimism float64 // unit: ps
}

// AnalyzeOCV computes variation-aware clock skew over a buffered tree. The
// CPPR-corrected skew is found by a single tree DP: two sink paths diverge
// at their lowest common ancestor, so the worst corrected pair through a
// node v is (max late arrival below one child of v) − (min early arrival
// below another), both measured from v.
func AnalyzeOCV(t *tree.Tree, lib *liberty.Library, tc tech.Tech, sourceSlew float64, p OCVParams) (*OCVReport, error) {
	if t == nil || t.Root == nil {
		return nil, fmt.Errorf("timing: nil tree")
	}
	// Stage capacitances (nominal — variation on caps is second-order).
	stageCap := make(map[*tree.Node]float64)
	bufLoad := make(map[*tree.Node]float64)
	var capOf func(n *tree.Node) float64
	capOf = func(n *tree.Node) float64 {
		var c float64
		switch n.Kind {
		case tree.Sink:
			c = n.PinCap
		case tree.Buffer:
			for _, ch := range n.Children {
				capOf(ch)
			}
			var cone float64
			for _, ch := range n.Children {
				cone += tc.WireCap(ch.EdgeLen) + stageCap[ch]
			}
			bufLoad[n] = cone
			stageCap[n] = n.PinCap
			return n.PinCap
		}
		for _, ch := range n.Children {
			c += tc.WireCap(ch.EdgeLen) + capOf(ch)
		}
		stageCap[n] = c
		return c
	}
	capOf(t.Root)

	// nodeDelay returns the nominal delay contribution of n itself (its
	// buffer, if any) plus the wire into n.
	nominalEdge := func(n *tree.Node) (wire, cell float64, err error) {
		if n.Parent != nil {
			wire = tc.WireElmore(n.EdgeLen, stageCap[n])
		}
		if n.Kind == tree.Buffer {
			c := lib.Cell(n.BufCell)
			if c == nil {
				return 0, 0, fmt.Errorf("timing: unknown buffer cell %q", n.BufCell)
			}
			cell = c.Delay(sourceSlew, bufLoad[n])
		}
		return wire, cell, nil
	}

	rep := &OCVReport{}
	worstPair := math.Inf(-1)
	globalLate, globalEarly := math.Inf(-1), math.Inf(1)

	// DP: for every node, the extreme early/late arrivals of sinks in its
	// subtree, measured from the node itself (after its own buffer).
	type ext struct{ minEarly, maxLate float64 }
	var analyzeErr error
	var dp func(n *tree.Node, lateFromRoot, earlyFromRoot float64) ext
	dp = func(n *tree.Node, lateFromRoot, earlyFromRoot float64) ext {
		if analyzeErr != nil {
			return ext{}
		}
		if n.Kind == tree.Sink {
			if lateFromRoot > globalLate {
				globalLate = lateFromRoot
			}
			if earlyFromRoot < globalEarly {
				globalEarly = earlyFromRoot
			}
			return ext{0, 0}
		}
		kids := make([]ext, 0, len(n.Children))
		for _, ch := range n.Children {
			wire, cell, err := nominalEdge(ch)
			if err != nil {
				analyzeErr = err
				return ext{}
			}
			late := wire*p.WireLate + cell*p.CellLate
			early := wire*p.WireEarly + cell*p.CellEarly
			e := dp(ch, lateFromRoot+late, earlyFromRoot+early)
			kids = append(kids, ext{e.minEarly + early, e.maxLate + late})
		}
		out := ext{math.Inf(1), math.Inf(-1)}
		for _, k := range kids {
			out.minEarly = math.Min(out.minEarly, k.minEarly)
			out.maxLate = math.Max(out.maxLate, k.maxLate)
		}
		// Cross-pair skew through this divergence point.
		for i := range kids {
			for j := range kids {
				if i == j {
					continue
				}
				if s := kids[i].maxLate - kids[j].minEarly; s > worstPair {
					worstPair = s
				}
			}
		}
		if len(kids) == 0 {
			return ext{0, 0}
		}
		return out
	}
	dp(t.Root, 0, 0)
	if analyzeErr != nil {
		return nil, analyzeErr
	}
	if math.IsInf(globalLate, -1) {
		return nil, fmt.Errorf("timing: tree has no sinks")
	}
	rep.NaiveSkew = globalLate - globalEarly
	if math.IsInf(worstPair, -1) {
		worstPair = 0 // single sink
	}
	rep.Skew = math.Max(worstPair, 0)
	rep.Pessimism = rep.NaiveSkew - rep.Skew
	return rep, nil
}
