// Package timing is the STA-lite engine: it propagates Elmore wire delay,
// PERI slew degradation and linear buffer delays (liberty.BufferCell,
// Equation 6 of the paper) through a buffered clock tree and reports the
// metrics the paper's Tables 6 and 7 compare: max latency, skew, buffer
// count and area, clock capacitance and wirelength.
package timing

import (
	"fmt"
	"math"

	"sllt/internal/liberty"
	"sllt/internal/tech"
	"sllt/internal/tree"
)

// Ln9 is the 10–90 % slew conversion factor for RC wires.
var Ln9 = math.Log(9) // unit: 1

// Report aggregates the timing and resource metrics of a clock tree.
type Report struct {
	MaxLatency float64 // unit: ps // slowest source-to-sink
	MinLatency float64 // unit: ps
	Skew       float64 // unit: ps // max - min
	MaxSlew    float64 // unit: ps // worst sink slew
	Buffers    int
	BufArea    float64 // unit: um^2
	ClockCap   float64 // unit: fF // wire + sink pins + buffer input pins
	WL         float64 // unit: um
	MaxStgCap  float64 // unit: fF // worst buffer stage load

	// SinkLatency maps sink index (tree.Node.SinkIdx) to its latency in ps.
	SinkLatency map[int]float64 // unit: ps
}

// Analyze runs STA over the tree. The clock source drives the first stage
// with the given input slew (sourceSlew, ps); buffers re-drive downstream
// stages. lib resolves buffer cells by Node.BufCell.
//
// Analyze is the flow's terminal stage: the report is a pure function of
// the tree and the library, so a cached replay keyed on both is sound.
//
// stage: timing
//
// unit: sourceSlew ps -> _, _
func Analyze(t *tree.Tree, lib *liberty.Library, tc tech.Tech, sourceSlew float64) (*Report, error) {
	if t == nil || t.Root == nil {
		return nil, fmt.Errorf("timing: nil tree")
	}
	rep := &Report{
		MinLatency:  math.Inf(1),
		SinkLatency: make(map[int]float64),
	}

	// stageCap[n]: downstream capacitance seen from n, cut at buffer inputs.
	// bufLoad[b]: the stage load each buffer drives.
	stageCap := make(map[*tree.Node]float64)
	bufLoad := make(map[*tree.Node]float64)
	var capOf func(n *tree.Node) float64
	capOf = func(n *tree.Node) float64 {
		var c float64
		switch n.Kind {
		case tree.Sink:
			c = n.PinCap
		case tree.Buffer:
			// A buffer's input pin terminates the upstream stage; its own
			// fanout cone is a separate stage computed below.
			for _, ch := range n.Children {
				capOf(ch)
			}
			cone := 0.0
			for _, ch := range n.Children {
				cone += tc.WireCap(ch.EdgeLen) + stageCap[ch]
			}
			stageCap[n] = n.PinCap // as seen from upstream
			// Remember the buffer's own load separately.
			bufLoad[n] = cone
			return n.PinCap
		}
		for _, ch := range n.Children {
			c += tc.WireCap(ch.EdgeLen) + capOf(ch)
		}
		stageCap[n] = c
		return c
	}
	capOf(t.Root)

	var err error
	var walk func(n *tree.Node, delay, slew float64)
	walk = func(n *tree.Node, delay, slew float64) {
		if err != nil {
			return
		}
		switch n.Kind {
		case tree.Buffer:
			cell := lib.Cell(n.BufCell)
			if cell == nil {
				err = fmt.Errorf("timing: unknown buffer cell %q at %v", n.BufCell, n.Loc)
				return
			}
			load := bufLoad[n]
			if load > rep.MaxStgCap {
				rep.MaxStgCap = load
			}
			delay += cell.Delay(slew, load)
			slew = cell.OutSlew(load)
			rep.Buffers++
			rep.BufArea += cell.Area
		case tree.Sink:
			rep.SinkLatency[n.SinkIdx] = delay
			if delay > rep.MaxLatency {
				rep.MaxLatency = delay
			}
			if delay < rep.MinLatency {
				rep.MinLatency = delay
			}
			if slew > rep.MaxSlew {
				rep.MaxSlew = slew
			}
		}
		for _, ch := range n.Children {
			wireDelay := tc.WireElmore(ch.EdgeLen, stageCap[ch])
			// PERI slew degradation across the wire segment.
			wireSlew := Ln9 * wireDelay
			childSlew := math.Sqrt(slew*slew + wireSlew*wireSlew)
			walk(ch, delay+wireDelay, childSlew)
		}
	}
	walk(t.Root, 0, sourceSlew)
	if err != nil {
		return nil, err
	}
	if len(rep.SinkLatency) == 0 {
		return nil, fmt.Errorf("timing: tree has no sinks")
	}
	rep.Skew = rep.MaxLatency - rep.MinLatency

	t.Walk(func(n *tree.Node) bool {
		rep.WL += n.EdgeLen
		switch n.Kind {
		case tree.Sink, tree.Buffer:
			rep.ClockCap += n.PinCap
		}
		return true
	})
	rep.ClockCap += tc.WireCap(rep.WL)
	return rep, nil
}
