package timing

import (
	"math"
	"testing"

	"sllt/internal/geom"
	"sllt/internal/liberty"
	"sllt/internal/tech"
	"sllt/internal/tree"
)

// buffered chain: source -> BUF(at 0,0) -> wire 100 -> sink(100,0).
func bufferedChain(lib *liberty.Library) (*tree.Tree, *liberty.BufferCell) {
	t := tree.New(geom.Pt(0, 0))
	cell := lib.Cell("CLKBUFX4")
	buf := tree.NewNode(tree.Buffer, geom.Pt(0, 0))
	buf.BufCell = cell.Name
	buf.PinCap = cell.InputCap
	t.Root.AddChild(buf)
	sink := tree.NewNode(tree.Sink, geom.Pt(100, 0))
	sink.PinCap = 2
	sink.SinkIdx = 0
	buf.AddChild(sink)
	return t, cell
}

func TestAnalyzeChainByHand(t *testing.T) {
	lib := liberty.Default()
	tc := tech.Default28nm()
	tr, cell := bufferedChain(lib)
	rep, err := Analyze(tr, lib, tc, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Stage load of the buffer: 100 µm wire + 2 fF pin.
	load := tc.WireCap(100) + 2
	wantBuf := cell.Delay(10, load)
	wantWire := tc.WireElmore(100, 2)
	want := wantBuf + wantWire
	if math.Abs(rep.MaxLatency-want) > 1e-9 {
		t.Errorf("latency = %g, want %g", rep.MaxLatency, want)
	}
	if rep.Skew != 0 {
		t.Errorf("single-sink skew = %g", rep.Skew)
	}
	if rep.Buffers != 1 || math.Abs(rep.BufArea-cell.Area) > 1e-12 {
		t.Errorf("buffers = %d area %g", rep.Buffers, rep.BufArea)
	}
	wantCap := tc.WireCap(100) + 2 + cell.InputCap
	if math.Abs(rep.ClockCap-wantCap) > 1e-9 {
		t.Errorf("clock cap = %g, want %g", rep.ClockCap, wantCap)
	}
	if rep.WL != 100 {
		t.Errorf("WL = %g", rep.WL)
	}
	if math.Abs(rep.MaxStgCap-load) > 1e-9 {
		t.Errorf("stage cap = %g, want %g", rep.MaxStgCap, load)
	}
}

// Buffers isolate downstream capacitance: adding load behind a buffer must
// not change the delay of a sibling branch before the buffer.
func TestBufferIsolatesCap(t *testing.T) {
	lib := liberty.Default()
	tc := tech.Default28nm()

	build := func(extraLoad float64) float64 {
		tr := tree.New(geom.Pt(0, 0))
		fork := tree.NewNode(tree.Steiner, geom.Pt(10, 0))
		tr.Root.AddChild(fork)
		s1 := tree.NewNode(tree.Sink, geom.Pt(10, 20))
		s1.PinCap = 2
		s1.SinkIdx = 0
		fork.AddChild(s1)
		buf := tree.NewNode(tree.Buffer, geom.Pt(20, 0))
		buf.BufCell = "CLKBUFX2"
		buf.PinCap = lib.Cell("CLKBUFX2").InputCap
		fork.AddChild(buf)
		s2 := tree.NewNode(tree.Sink, geom.Pt(20+extraLoad, 0))
		s2.PinCap = 2
		s2.SinkIdx = 1
		buf.AddChild(s2)
		rep, err := Analyze(tr, lib, tc, 10)
		if err != nil {
			t.Fatal(err)
		}
		return rep.SinkLatency[0]
	}
	if a, b := build(10), build(100); math.Abs(a-b) > 1e-9 {
		t.Errorf("sibling latency changed with post-buffer load: %g vs %g", a, b)
	}
}

func TestSlewDegradesAlongWire(t *testing.T) {
	lib := liberty.Default()
	tc := tech.Default28nm()

	slewAt := func(length float64) float64 {
		tr := tree.New(geom.Pt(0, 0))
		buf := tree.NewNode(tree.Buffer, geom.Pt(0, 0))
		buf.BufCell = "CLKBUFX8"
		buf.PinCap = lib.Cell("CLKBUFX8").InputCap
		tr.Root.AddChild(buf)
		s := tree.NewNode(tree.Sink, geom.Pt(length, 0))
		s.PinCap = 2
		s.SinkIdx = 0
		buf.AddChild(s)
		rep, err := Analyze(tr, lib, tc, 10)
		if err != nil {
			t.Fatal(err)
		}
		return rep.MaxSlew
	}
	if s50, s300 := slewAt(50), slewAt(300); s300 <= s50 {
		t.Errorf("slew should degrade with wire length: %g vs %g", s50, s300)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	lib := liberty.Default()
	tc := tech.Default28nm()
	if _, err := Analyze(nil, lib, tc, 10); err == nil {
		t.Error("nil tree should error")
	}
	tr := tree.New(geom.Pt(0, 0))
	if _, err := Analyze(tr, lib, tc, 10); err == nil {
		t.Error("sinkless tree should error")
	}
	tr2, _ := bufferedChain(lib)
	tr2.Buffers()[0].BufCell = "NOPE"
	if _, err := Analyze(tr2, lib, tc, 10); err == nil {
		t.Error("unknown buffer cell should error")
	}
}
