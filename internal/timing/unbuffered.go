package timing

import (
	"math"

	"sllt/internal/tech"
	"sllt/internal/tree"
)

// Unbuffered computes pure-wire Elmore sink delays of an unbuffered tree:
// the "Wire Delay" metric of the paper's Table 3. Returns the maximum and
// the spread (skew) over sinks, in ps.
//
// unit: -> ps, ps
func Unbuffered(t *tree.Tree, tc tech.Tech) (maxDelay, skew float64) {
	caps := make(map[*tree.Node]float64)
	var capOf func(n *tree.Node) float64
	capOf = func(n *tree.Node) float64 {
		c := 0.0
		if n.Kind == tree.Sink || n.Kind == tree.Buffer {
			c = n.PinCap
		}
		for _, ch := range n.Children {
			c += tc.WireCap(ch.EdgeLen) + capOf(ch)
		}
		caps[n] = c
		return c
	}
	capOf(t.Root)

	lo, hi := math.Inf(1), math.Inf(-1)
	var walk func(n *tree.Node, d float64)
	walk = func(n *tree.Node, d float64) {
		if n.Kind == tree.Sink {
			lo = math.Min(lo, d)
			hi = math.Max(hi, d)
		}
		for _, ch := range n.Children {
			walk(ch, d+tc.WireElmore(ch.EdgeLen, caps[ch]))
		}
	}
	walk(t.Root, 0)
	if math.IsInf(hi, -1) {
		return 0, 0
	}
	return hi, hi - lo
}
