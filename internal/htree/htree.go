// Package htree builds symmetric H-trees and generalized H-trees (GH-trees,
// Han/Kahng/Li, "Optimal Generalized H-Tree Topology and Buffering for
// High-Performance and Low-Power Clock Distribution"). These are the
// classical structured clock topologies the paper compares against in
// Table 1: easy skew compliance bought with extra path length and wire.
//
// The construction is top-down region splitting: every node taps the center
// of its sink region's bounding box, splits the sinks into k balanced slabs
// along the region's dominant axis (alternating axes for the binary H-tree),
// and recurses. GH-trees generalize the branching factor per level.
package htree

import (
	"sort"

	"sllt/internal/geom"
	"sllt/internal/tree"
)

// Build constructs a binary H-tree over the net (branching factor 2 at every
// level, axes alternating).
func Build(net *tree.Net) *tree.Tree {
	return BuildGH(net, nil)
}

// BuildGH constructs a generalized H-tree with the given branching factors
// per level; when factors are exhausted (or nil), branching factor 2 is
// used. Each level splits its sink set into balanced contiguous slabs along
// the bounding box's longer axis.
func BuildGH(net *tree.Net, factors []int) *tree.Tree {
	t := tree.New(net.Source)
	idx := make([]int, len(net.Sinks))
	for i := range idx {
		idx[i] = i
	}
	if len(idx) == 0 {
		return t
	}
	top := regionTap(net, idx)
	var anchor *tree.Node
	if top.Eq(net.Source) {
		anchor = t.Root
	} else {
		anchor = tree.NewNode(tree.Steiner, top)
		t.Root.AddChild(anchor)
	}
	buildLevel(net, anchor, idx, factors, 0, true)
	tree.RemoveRedundantSteiner(t)
	return t
}

// DefaultFactors returns a GH-tree branching schedule for n sinks: branching
// factor 4 while the level still holds many sinks, then 2. This mirrors the
// GH-tree's latency advantage over the plain H-tree (fewer levels, shorter
// trunks).
func DefaultFactors(n int) []int {
	var f []int
	for n > 4 {
		f = append(f, 4)
		n = (n + 3) / 4
	}
	for n > 1 {
		f = append(f, 2)
		n = (n + 1) / 2
	}
	return f
}

func buildLevel(net *tree.Net, parent *tree.Node, idx []int, factors []int, level int, vertFirst bool) {
	if len(idx) == 1 {
		parent.AddChild(net.SinkNode(idx[0]))
		return
	}
	k := 2
	if level < len(factors) {
		k = factors[level]
	}
	if k < 2 {
		k = 2
	}
	if k > len(idx) {
		k = len(idx)
	}
	slabs := splitSlabs(net, idx, k, level, vertFirst)
	for _, slab := range slabs {
		if len(slab) == 0 {
			continue
		}
		tap := regionTap(net, slab)
		child := parent
		if !tap.Eq(parent.Loc) {
			child = tree.NewNode(tree.Steiner, tap)
			parent.AddChild(child)
		}
		buildLevel(net, child, slab, factors, level+1, vertFirst)
	}
}

// splitSlabs sorts the sinks along the split axis (alternating by level for
// the binary H shape, dominant-axis for k-way) and cuts them into k balanced
// contiguous slabs.
func splitSlabs(net *tree.Net, idx []int, k, level int, vertFirst bool) [][]int {
	r := geom.EmptyRect()
	for _, i := range idx {
		r = r.Grow(net.Sinks[i].Loc)
	}
	byX := (level%2 == 0) == vertFirst
	if k > 2 {
		// k-way levels split along the dominant dimension.
		byX = r.W() >= r.H()
	}
	sorted := append([]int(nil), idx...)
	sort.Slice(sorted, func(a, b int) bool {
		pa, pb := net.Sinks[sorted[a]].Loc, net.Sinks[sorted[b]].Loc
		if byX {
			if pa.X != pb.X {
				return pa.X < pb.X
			}
			return pa.Y < pb.Y
		}
		if pa.Y != pb.Y {
			return pa.Y < pb.Y
		}
		return pa.X < pb.X
	})
	slabs := make([][]int, 0, k)
	n := len(sorted)
	for s := 0; s < k; s++ {
		lo := s * n / k
		hi := (s + 1) * n / k
		if lo < hi {
			slabs = append(slabs, sorted[lo:hi])
		}
	}
	return slabs
}

// regionTap returns the tap point for a sink subset: the center of its
// bounding box, the classical H-tree branch point.
func regionTap(net *tree.Net, idx []int) geom.Point {
	r := geom.EmptyRect()
	for _, i := range idx {
		r = r.Grow(net.Sinks[i].Loc)
	}
	return r.Center()
}
