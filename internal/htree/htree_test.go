package htree

import (
	"math/rand"
	"testing"

	"sllt/internal/geom"
	"sllt/internal/invariants"
	"sllt/internal/liberty"
	"sllt/internal/rsmt"
	"sllt/internal/tech"
	"sllt/internal/tree"
)

// grid16 returns a regular 4x4 sink grid with the source at the center —
// the canonical H-tree input.
func grid16() *tree.Net {
	net := &tree.Net{Name: "g", Source: geom.Pt(15, 15)}
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			net.Sinks = append(net.Sinks, tree.PinSink{
				Name: "s", Loc: geom.Pt(float64(x)*10, float64(y)*10), Cap: 1,
			})
		}
	}
	return net
}

func TestHTreeGridZeroSkew(t *testing.T) {
	net := grid16()
	tr := Build(net)
	if err := invariants.CheckTree(tr); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Sinks()); got != 16 {
		t.Fatalf("sinks = %d", got)
	}
	if err := invariants.CheckSkew(tr, 0, 1e-9); err != nil {
		t.Fatal(err)
	}
	// On a symmetric grid the H-tree is perfectly balanced.
	var lo, hi float64 = 1e18, -1
	for _, s := range tr.Sinks() {
		pl := tree.PathLength(s)
		if pl < lo {
			lo = pl
		}
		if pl > hi {
			hi = pl
		}
	}
	if hi-lo > 1e-9 {
		t.Errorf("H-tree skew on symmetric grid = %g, want 0", hi-lo)
	}
}

func TestHTreeRandomValid(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		net := &tree.Net{Source: geom.Pt(50, 50)}
		n := 1 + rng.Intn(40)
		used := map[geom.Point]bool{}
		for len(net.Sinks) < n {
			p := geom.Pt(float64(rng.Intn(100)), float64(rng.Intn(100)))
			if used[p] {
				continue
			}
			used[p] = true
			net.Sinks = append(net.Sinks, tree.PinSink{Loc: p, Cap: 1})
		}
		tr := Build(net)
		if err := invariants.CheckTree(tr); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := len(tr.Sinks()); got != n {
			t.Fatalf("trial %d: %d sinks, want %d", trial, got, n)
		}
		gh := BuildGH(net, DefaultFactors(n))
		if err := invariants.CheckTree(gh); err != nil {
			t.Fatalf("trial %d GH: %v", trial, err)
		}
		if got := len(gh.Sinks()); got != n {
			t.Fatalf("trial %d GH: %d sinks, want %d", trial, got, n)
		}
	}
}

// GH-tree with branching factor 4 should be shallower than the binary
// H-tree on spread-out sinks (its defining property in the paper).
func TestGHTreeShallowerThanH(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	var sumH, sumGH float64
	for trial := 0; trial < 20; trial++ {
		net := &tree.Net{Source: geom.Pt(50, 50)}
		used := map[geom.Point]bool{}
		for len(net.Sinks) < 32 {
			p := geom.Pt(float64(rng.Intn(100)), float64(rng.Intn(100)))
			if used[p] {
				continue
			}
			used[p] = true
			net.Sinks = append(net.Sinks, tree.PinSink{Loc: p, Cap: 1})
		}
		h := Build(net)
		gh := BuildGH(net, DefaultFactors(32))
		mH := tree.Measure(h, net, 0)
		mGH := tree.Measure(gh, net, 0)
		sumH += mH.MaxPL
		sumGH += mGH.MaxPL
	}
	if sumGH >= sumH {
		t.Errorf("GH-tree max path %g not shallower than H-tree %g", sumGH, sumH)
	}
}

// H-tree structure costs wire: it should be heavier than the RSMT on random
// inputs (Table 1's lightness ordering).
func TestHTreeHeavierThanRSMT(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	var sumH, sumR float64
	for trial := 0; trial < 15; trial++ {
		net := &tree.Net{Source: geom.Pt(50, 50)}
		used := map[geom.Point]bool{}
		for len(net.Sinks) < 24 {
			p := geom.Pt(float64(rng.Intn(100)), float64(rng.Intn(100)))
			if used[p] {
				continue
			}
			used[p] = true
			net.Sinks = append(net.Sinks, tree.PinSink{Loc: p, Cap: 1})
		}
		sumH += Build(net).Wirelength()
		sumR += rsmt.Build(net).Wirelength()
	}
	if sumH <= sumR {
		t.Errorf("H-tree WL %g unexpectedly lighter than RSMT %g", sumH, sumR)
	}
}

func TestDefaultFactors(t *testing.T) {
	f := DefaultFactors(64)
	prod := 1
	for _, k := range f {
		prod *= k
	}
	if prod < 64 {
		t.Errorf("factors %v cover only %d leaves", f, prod)
	}
	if len(DefaultFactors(1)) != 0 {
		t.Error("single sink should need no branching")
	}
}

func TestOptimalFactorsCoverAndWin(t *testing.T) {
	lib := liberty.Default()
	tc := tech.Default28nm()
	for _, n := range []int{8, 64, 500, 5000} {
		side := 100 + float64(n)/10
		factors := OptimalFactors(n, side, lib, tc)
		// The schedule must cover all n leaves.
		prod := 1
		for _, k := range factors {
			if k < 2 || k > 9 {
				t.Fatalf("n=%d: factor %d out of range", n, k)
			}
			prod *= k
		}
		if prod < n {
			t.Errorf("n=%d: factors %v cover only %d leaves", n, factors, prod)
		}
		// The optimizer must beat (or match) the plain binary schedule and
		// a flat max-branching schedule under its own cost model.
		opt := EstimatedDelay(factors, n, side, lib, tc)
		if bin := EstimatedDelay(nil, n, side, lib, tc); opt > bin+1e-9 {
			t.Errorf("n=%d: optimal %g worse than binary %g", n, opt, bin)
		}
		wide := []int{9, 9, 9, 9, 9, 9}
		if w := EstimatedDelay(wide, n, side, lib, tc); opt > w+1e-9 {
			t.Errorf("n=%d: optimal %g worse than flat-9 %g", n, opt, w)
		}
	}
}

func TestOptimalFactorsBuildable(t *testing.T) {
	lib := liberty.Default()
	tc := tech.Default28nm()
	rng := rand.New(rand.NewSource(35))
	net := &tree.Net{Source: geom.Pt(50, 50)}
	used := map[geom.Point]bool{}
	for len(net.Sinks) < 48 {
		p := geom.Pt(float64(rng.Intn(100)), float64(rng.Intn(100)))
		if used[p] {
			continue
		}
		used[p] = true
		net.Sinks = append(net.Sinks, tree.PinSink{Loc: p, Cap: 1})
	}
	factors := OptimalFactors(len(net.Sinks), 100, lib, tc)
	gh := BuildGH(net, factors)
	if err := invariants.CheckTree(gh); err != nil {
		t.Fatal(err)
	}
	if got := len(gh.Sinks()); got != 48 {
		t.Fatalf("sinks = %d", got)
	}
}
