package htree

import (
	"math"

	"sllt/internal/liberty"
	"sllt/internal/tech"
)

// OptimalFactors chooses per-level branching factors for a buffered GH-tree
// in the spirit of Han/Kahng/Li's optimal generalized H-tree: minimize the
// estimated source-to-sink delay of the buffered tree over n sinks spread
// across a square region of the given side (µm), using the library's linear
// buffer model and the technology's wire RC.
//
// The per-level model: branching k from a region of side s drives k child
// taps over trunks of roughly s/2 wire each; the level's driver sees
// k·(Cin + c·s/2) of load and each path takes one buffer delay plus the
// trunk's Elmore delay; children recurse on side s/√k. The factor sequence
// minimizing total path delay is found by exhaustive search with
// memoization (depth and branching are both small).
func OptimalFactors(n int, side float64, lib *liberty.Library, tc tech.Tech) []int {
	if n <= 1 {
		return nil
	}
	type key struct {
		n int
		s int // side quantized to 1 µm
	}
	type result struct {
		cost    float64
		factors []int
	}
	memo := map[key]result{}

	var solve func(n int, s float64) result
	solve = func(n int, s float64) result {
		if n <= 1 {
			return result{0, nil}
		}
		k := key{n, int(s + 0.5)}
		if r, ok := memo[k]; ok {
			return r
		}
		best := result{cost: math.Inf(1)}
		maxK := 9
		if n < maxK {
			maxK = n
		}
		for fan := 2; fan <= maxK; fan++ {
			trunk := s / 2
			load := float64(fan) * (lib.Smallest().InputCap + tc.WireCap(trunk))
			cell := lib.PickForLoad(load, 0.9)
			stage := cell.Delay(20, load) + tc.WireElmore(trunk, lib.Smallest().InputCap)
			sub := solve((n+fan-1)/fan, s/math.Sqrt(float64(fan)))
			if c := stage + sub.cost; c < best.cost {
				best = result{c, append([]int{fan}, sub.factors...)}
			}
		}
		memo[k] = best
		return best
	}
	return solve(n, side).factors
}

// EstimatedDelay evaluates the OptimalFactors cost model for a given factor
// schedule — exposed so callers (and tests) can compare schedules.
func EstimatedDelay(factors []int, n int, side float64, lib *liberty.Library, tc tech.Tech) float64 {
	var total float64
	s := side
	for _, fan := range factors {
		if n <= 1 {
			break
		}
		if fan < 2 {
			fan = 2
		}
		trunk := s / 2
		load := float64(fan) * (lib.Smallest().InputCap + tc.WireCap(trunk))
		cell := lib.PickForLoad(load, 0.9)
		total += cell.Delay(20, load) + tc.WireElmore(trunk, lib.Smallest().InputCap)
		n = (n + fan - 1) / fan
		s /= math.Sqrt(float64(fan))
	}
	// Unfinished schedules pay the default binary split for the remainder.
	for n > 1 {
		trunk := s / 2
		load := 2 * (lib.Smallest().InputCap + tc.WireCap(trunk))
		cell := lib.PickForLoad(load, 0.9)
		total += cell.Delay(20, load) + tc.WireElmore(trunk, lib.Smallest().InputCap)
		n = (n + 1) / 2
		s /= math.Sqrt2
	}
	return total
}
