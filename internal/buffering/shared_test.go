package buffering

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"sllt/internal/core"
	"sllt/internal/dme"
)

// TestInserterSharedAcrossGoroutines enforces the Inserter concurrency
// contract: cts.Run hands one *Inserter to every parallel cluster build, so
// no method may write an Inserter field. The test drives the full method
// surface (BufferTree, DecoupleSlowWires, RepeaterizePath, CriticalLength,
// LowerBound) from many goroutines over disjoint trees — under `go test
// -race` any field write is a hard failure — and then compares the struct
// against a pre-run snapshot, which catches single-goroutine mutation even
// in non-race runs.
func TestInserterSharedAcrossGoroutines(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	runtime.GOMAXPROCS(8)
	ins, tc, _ := setup()
	snapshot := *ins // Inserter is a comparable struct: pointers, floats, strings

	const goroutines = 8
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for trial := 0; trial < 4; trial++ {
				net := randomNet(rng, 20+rng.Intn(40), 400)
				tr, err := core.Build(net, core.Options{
					DME:        dme.Options{Model: dme.Elmore, SkewBound: 20, Tech: tc},
					TopoMethod: dme.GreedyDist,
					SALTEps:    0.1,
				})
				if err != nil {
					t.Errorf("seed %d: %v", seed, err)
					return
				}
				ins.BufferTree(tr)
				ins.DecoupleSlowWires(tr)
				for _, s := range tr.Sinks() {
					ins.RepeaterizePath(tr, s)
					break
				}
				ins.CriticalLength(ins.Lib.Smallest(), 40)
				ins.LowerBound(75)
			}
		}(int64(100 + g))
	}
	wg.Wait()

	if *ins != snapshot {
		t.Errorf("Inserter mutated during use:\n before %+v\n after  %+v", snapshot, *ins)
	}
}
