package buffering

import (
	"math"
	"math/rand"
	"testing"

	"sllt/internal/core"
	"sllt/internal/dme"
	"sllt/internal/geom"
	"sllt/internal/liberty"
	"sllt/internal/tech"
	"sllt/internal/timing"
	"sllt/internal/tree"
)

func setup() (*Inserter, tech.Tech, *liberty.Library) {
	tc := tech.Default28nm()
	lib := liberty.Default()
	return NewInserter(lib, tc, 150), tc, lib
}

func TestCriticalLengthFormula(t *testing.T) {
	ins, tc, lib := setup()
	cell := lib.Cell("CLKBUFX4")
	cap := 30.0
	want := 2 * math.Sqrt((cell.WC*cap+cell.WI)/(tc.RPerUm*tc.CPerUm*(math.Log(9)*cell.WS+1)))
	if got := ins.CriticalLength(cell, cap); math.Abs(got-want) > 1e-9 {
		t.Errorf("critical length = %g, want %g", got, want)
	}
	// Stronger drive (smaller WC) stretches the critical length only if its
	// intrinsic doesn't dominate; verify monotonicity in cap instead.
	if ins.CriticalLength(cell, 10) >= ins.CriticalLength(cell, 200) {
		t.Error("critical length should grow with decoupled cap")
	}
}

func TestLowerBoundIsLowerBound(t *testing.T) {
	ins, _, lib := setup()
	for _, load := range []float64{1, 20, 80, 250} {
		lb := ins.LowerBound(load)
		for _, c := range lib.Cells {
			if lb > c.Delay(0, load)+1e-9 {
				t.Errorf("Eq(7) bound %g exceeds %s delay %g", lb, c.Name, c.Delay(0, load))
			}
		}
	}
}

func randomNet(rng *rand.Rand, n int, box float64) *tree.Net {
	net := &tree.Net{Name: "r", Source: geom.Pt(box/2, box/2)}
	used := map[geom.Point]bool{}
	for len(net.Sinks) < n {
		p := geom.Pt(float64(rng.Intn(int(box))), float64(rng.Intn(int(box))))
		if used[p] {
			continue
		}
		used[p] = true
		net.Sinks = append(net.Sinks, tree.PinSink{Name: "s", Loc: p, Cap: 1.2})
	}
	return net
}

func TestBufferTreeRespectsCapLimit(t *testing.T) {
	ins, tc, lib := setup()
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 10; trial++ {
		net := randomNet(rng, 20+rng.Intn(60), 400)
		opts := core.Options{
			DME:        dme.Options{Model: dme.Elmore, SkewBound: 20, Tech: tc},
			TopoMethod: dme.GreedyDist,
			SALTEps:    0.1,
		}
		tr, err := core.Build(net, opts)
		if err != nil {
			t.Fatal(err)
		}
		inserted := ins.BufferTree(tr)
		if inserted == 0 {
			t.Fatal("no buffers inserted")
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rep, err := timing.Analyze(tr, lib, tc, 20)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Buffers != inserted {
			t.Errorf("trial %d: reported %d buffers, inserted %d", trial, rep.Buffers, inserted)
		}
		// The worst stage may overshoot the derated target at the node that
		// triggered insertion, but must stay within a structural factor.
		if rep.MaxStgCap > ins.MaxCap*1.5 {
			t.Errorf("trial %d: stage cap %g far above limit %g", trial, rep.MaxStgCap, ins.MaxCap)
		}
		if got := len(tr.Sinks()); got != len(net.Sinks) {
			t.Fatalf("trial %d: sinks lost", trial)
		}
	}
}

// More total load must never be solved with fewer buffers.
func TestBufferCountScalesWithLoad(t *testing.T) {
	ins, _, _ := setup()
	rng := rand.New(rand.NewSource(62))
	small := randomNet(rng, 20, 200)
	large := randomNet(rng, 200, 800)
	build := func(net *tree.Net) int {
		tr, err := core.Build(net, core.DefaultOptions(1e9))
		if err != nil {
			t.Fatal(err)
		}
		return ins.BufferTree(tr)
	}
	if a, b := build(small), build(large); b <= a {
		t.Errorf("buffer counts %d (small) vs %d (large)", a, b)
	}
}

func TestSplitLongEdges(t *testing.T) {
	tr := tree.New(geom.Pt(0, 0))
	s := tree.NewNode(tree.Sink, geom.Pt(1000, 0))
	s.PinCap = 1
	s.SinkIdx = 0
	tr.Root.AddChild(s)
	splitLongEdges(tr, 100)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	tr.Walk(func(n *tree.Node) bool {
		if n.Parent != nil && n.EdgeLen > 100+geom.Eps {
			t.Errorf("edge of length %g survived splitting", n.EdgeLen)
		}
		return true
	})
	if pl := tree.PathLength(tr.Sinks()[0]); math.Abs(pl-1000) > 1e-9 {
		t.Errorf("path length changed: %g", pl)
	}
}
