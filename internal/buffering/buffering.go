// Package buffering implements the paper's §3.4 buffering optimization:
// the critical-wirelength criterion for repeater insertion derived from the
// linear buffer delay model (Equation 6), the Equation-7 insertion-delay
// lower bound used to pre-annotate nodes before their drivers are chosen,
// and the tree transformation that inserts drivers and repeaters.
package buffering

import (
	"math"

	"sllt/internal/liberty"
	"sllt/internal/obs"
	"sllt/internal/tech"
	"sllt/internal/tree"
)

// Inserter drives buffer insertion over clock trees.
//
// Concurrency contract: every exported field is configuration, set once at
// construction and read-only afterwards — no method mutates the Inserter,
// and the Library and Tech it points to are likewise immutable after they
// are built. One Inserter is therefore safe to share across goroutines
// building disjoint trees, which is exactly what cts.Run does when
// Options.Workers fans the per-cluster builds out. Anyone adding a field
// here must keep it either immutable after construction or per-call local;
// TestInserterSharedAcrossGoroutines enforces the contract under the race
// detector.
type Inserter struct {
	Lib  *liberty.Library
	Tech tech.Tech
	// MaxCap is the per-stage load limit in fF (Table 5 uses 150 fF).
	MaxCap float64 // unit: fF
	// Margin derates cell max_capacitance when choosing drive strengths.
	Margin float64 // unit: 1
	// NominalSlew is the assumed input slew (ps) for critical-length math.
	NominalSlew float64 // unit: ps
	// MaxWireDelay caps the Elmore delay any single unbuffered wire may
	// contribute; edges above it get a decoupling repeater at the load end.
	// The cap matters on die-spanning trunks, where the r·L·C cross term
	// dwarfs what the critical-length formula (which assumes a fixed
	// decoupled load) accounts for.
	MaxWireDelay float64 // unit: ps
	// ForceCell, when non-empty, overrides load-based sizing with one fixed
	// cell (the OpenROAD-like baseline drives everything with large
	// buffers).
	ForceCell string
	// Kernel, when non-nil, receives insertion counters (BufInserted from
	// BufferTree, BufDecoupled from DecoupleSlowWires). The pointer is set
	// once at construction time like every other field, and the counters it
	// reaches are atomic — the shared-Inserter concurrency contract above is
	// unchanged.
	Kernel *obs.KernelCounters
}

// pick returns the cell for a stage load, honoring ForceCell. Sizing is
// delay-aware: among cells whose derated max_capacitance covers the load,
// the smallest cell within 10 % of the best achievable delay wins — the
// standard speed/area trade real sizers make.
//
// unit: load fF -> _
func (ins *Inserter) pick(load float64) *liberty.BufferCell {
	if ins.ForceCell != "" {
		if c := ins.Lib.Cell(ins.ForceCell); c != nil {
			return c
		}
	}
	slew := ins.NominalSlew
	best := ins.Lib.Strongest()
	bestDelay := best.Delay(slew, load)
	for _, c := range ins.Lib.Cells {
		if load > c.MaxCap*ins.Margin {
			continue
		}
		if d := c.Delay(slew, load); d < bestDelay {
			best, bestDelay = c, d
		}
	}
	for _, c := range ins.Lib.Cells { // smallest within 10% of best
		if load > c.MaxCap*ins.Margin {
			continue
		}
		if c.Delay(slew, load) <= bestDelay*1.10 {
			return c
		}
	}
	return best
}

// NewInserter returns an inserter with the repository defaults.
//
// unit: maxCap fF -> _
func NewInserter(lib *liberty.Library, tc tech.Tech, maxCap float64) *Inserter {
	return &Inserter{Lib: lib, Tech: tc, MaxCap: maxCap, Margin: 0.9, NominalSlew: 20, MaxWireDelay: 20}
}

// CriticalLength evaluates the paper's critical wirelength for the given
// cell: the wire length at which splitting the wire with one more buffer
// stops paying for itself,
//
//	L̂ = 2·sqrt((ωc·Cap + ωi) / (r·c·(ln9·ωs + 1))).
//
// cap is the capacitance the inserted buffer would decouple (the paper
// refines Cap_pin to Cap_load).
//
// unit: cap fF -> um
func (ins *Inserter) CriticalLength(cell *liberty.BufferCell, cap float64) float64 {
	r, c := ins.Tech.RPerUm, ins.Tech.CPerUm
	den := r * c * (math.Log(9)*cell.WS + 1)
	if den <= 0 {
		return math.Inf(1)
	}
	return 2 * math.Sqrt((cell.WC*cap+cell.WI)/den)
}

// LowerBound evaluates Equation (7) for a node with the given downstream
// load: the most conservative insertion-delay estimate across the library.
//
// unit: capLoad fF -> ps
func (ins *Inserter) LowerBound(capLoad float64) float64 {
	return ins.Lib.InsertionDelayLowerBound(capLoad)
}

// BufferTree inserts a driver at the tree root and repeaters so that no
// stage exceeds the cap limit and no unbuffered wire run exceeds the
// critical length. Cells are sized to their stage loads. Returns the number
// of buffers inserted. The tree is modified in place.
func (ins *Inserter) BufferTree(t *tree.Tree) int {
	n := ins.bufferTree(t)
	if ins.Kernel != nil {
		ins.Kernel.BufInserted.Add(int64(n))
	}
	return n
}

func (ins *Inserter) bufferTree(t *tree.Tree) int {
	if t == nil || t.Root == nil {
		return 0
	}
	// Pass 1: break long edges so repeater sites exist mid-wire. The
	// smallest cell's critical length at typical loads is the conservative
	// segment ceiling.
	lhat := ins.CriticalLength(ins.Lib.Smallest(), ins.MaxCap/2)
	splitLongEdges(t, lhat)

	// Pass 2: bottom-up cap-driven insertion. Accumulate stage cap; when a
	// node's downstream cone exceeds the limit, decouple the heaviest child
	// subtrees behind buffers until the cone fits, falling back to a buffer
	// at the node itself when a single cone is simply too big.
	inserted := 0
	trigger := ins.MaxCap * ins.Margin
	var build func(n *tree.Node) float64
	build = func(n *tree.Node) float64 {
		type contrib struct {
			ch   *tree.Node
			load float64
		}
		var kids []contrib
		var cone float64
		for _, ch := range n.Children {
			// Capture the edge wire before build can re-stage ch: if a
			// buffer lands above ch, the same wire now feeds the buffer.
			wcap := ins.Tech.WireCap(ch.EdgeLen)
			load := wcap + build(ch)
			kids = append(kids, contrib{ch, load})
			cone += load
		}
		switch n.Kind {
		case tree.Sink:
			return n.PinCap
		case tree.Buffer:
			return n.PinCap
		}
		for cone > trigger && len(kids) > 1 {
			// Decouple the heaviest child.
			hi := 0
			for i := range kids {
				if kids[i].load > kids[hi].load {
					hi = i
				}
			}
			k := kids[hi]
			childCone := k.load - ins.Tech.WireCap(k.ch.EdgeLen)
			cell := ins.pick(childCone)
			if childCone <= cell.InputCap || insertBufferAbove(k.ch, cell) == nil {
				break // decoupling would not reduce the cone
			}
			inserted++
			cone += -childCone + cell.InputCap
			kids[hi].load = ins.Tech.WireCap(k.ch.EdgeLen) + cell.InputCap
		}
		if n.Parent != nil && cone > trigger {
			cell := ins.pick(cone)
			if insertBufferAbove(n, cell) != nil {
				inserted++
				return cell.InputCap
			}
		}
		return cone
	}
	rootCone := build(t.Root)

	// Pass 2b: decouple slow wires. A long trunk whose downstream stage
	// capacitance rides along pays r·L·C in Elmore delay; a repeater at its
	// load end cuts the wire's burden to r·L·(c·L/2 + Cin).
	inserted += ins.DecoupleSlowWires(t)

	// Pass 3: root driver sized for whatever remains at the source — unless
	// pass 2 already left a buffer right at the top with next to nothing in
	// front of it, in which case another driver would only burn a stage of
	// intrinsic delay.
	if len(t.Root.Children) == 1 && t.Root.Children[0].Kind == tree.Buffer &&
		rootCone <= ins.Lib.Smallest().MaxCap*ins.Margin {
		return inserted
	}
	cell := ins.pick(rootCone)
	if len(t.Root.Children) > 0 {
		buf := tree.NewNode(tree.Buffer, t.Root.Loc)
		buf.BufCell = cell.Name
		buf.PinCap = cell.InputCap
		kids := append([]*tree.Node(nil), t.Root.Children...)
		lens := make([]float64, len(kids))
		for i, ch := range kids {
			lens[i] = ch.EdgeLen
			ch.Detach()
		}
		t.Root.AddChild(buf)
		for i, ch := range kids {
			buf.Children = append(buf.Children, ch)
			ch.Parent = buf
			ch.EdgeLen = lens[i] // the buffer sits at the root's location
		}
		inserted++
	}
	return inserted
}

// DecoupleSlowWires inserts a repeater at the load end of every in-stage
// edge whose Elmore contribution exceeds MaxWireDelay, iterating because an
// insertion re-partitions the stage capacitances. BufferTree runs it as its
// pass 2b; flows also re-run it after skew repair, whose snaking otherwise
// leaves long high-capacitance serpentines loading shared stages.
func (ins *Inserter) DecoupleSlowWires(t *tree.Tree) int {
	n := ins.decoupleSlowWires(t)
	if ins.Kernel != nil {
		ins.Kernel.BufDecoupled.Add(int64(n))
	}
	return n
}

func (ins *Inserter) decoupleSlowWires(t *tree.Tree) int {
	if ins.MaxWireDelay <= 0 {
		return 0
	}
	total := 0
	for iter := 0; iter < 128; iter++ {
		// Stage capacitance below each node (cut at buffer inputs).
		caps := make(map[*tree.Node]float64)
		var capOf func(n *tree.Node) float64
		capOf = func(n *tree.Node) float64 {
			switch n.Kind {
			case tree.Sink:
				caps[n] = n.PinCap
				return n.PinCap
			case tree.Buffer:
				for _, c := range n.Children {
					capOf(c)
				}
				caps[n] = n.PinCap
				return n.PinCap
			}
			var c float64
			for _, ch := range n.Children {
				c += ins.Tech.WireCap(ch.EdgeLen) + capOf(ch)
			}
			caps[n] = c
			return c
		}
		capOf(t.Root)

		var worst *tree.Node
		worstD := ins.MaxWireDelay
		t.Walk(func(n *tree.Node) bool {
			if n.Parent == nil {
				return true
			}
			if d := ins.Tech.WireElmore(n.EdgeLen, caps[n]); d > worstD {
				worstD, worst = d, n
			}
			return true
		})
		if worst == nil {
			return total
		}
		cell := ins.pick(caps[worst])
		if caps[worst] <= cell.InputCap || insertBufferAbove(worst, cell) == nil {
			return total
		}
		total++
	}
	return total
}

// splitLongEdges subdivides every edge longer than lhat into segments of at
// most lhat, inserting Steiner nodes (repeater sites for pass 2 — they only
// become buffers if the cap criterion also fires) and direct repeaters for
// truly long runs.
//
// unit: lhat um ->
func splitLongEdges(t *tree.Tree, lhat float64) {
	if lhat <= 0 || math.IsInf(lhat, 1) {
		return
	}
	var work []*tree.Node
	t.Walk(func(n *tree.Node) bool {
		if n.Parent != nil && n.EdgeLen > lhat {
			work = append(work, n)
		}
		return true
	})
	for _, n := range work {
		for n.EdgeLen > lhat {
			st := tree.SplitEdge(n, lhat)
			if st == nil {
				break
			}
			// Keep splitting the remainder (n's edge shrank).
		}
	}
}

// insertBufferAbove converts the edge into n into a buffered stage: a new
// buffer node takes n's place under its parent at n's own location, with n
// re-attached below at zero distance.
func insertBufferAbove(n *tree.Node, cell *liberty.BufferCell) *tree.Node {
	p := n.Parent
	if p == nil {
		return nil
	}
	buf := tree.NewNode(tree.Buffer, n.Loc)
	buf.BufCell = cell.Name
	buf.PinCap = cell.InputCap
	buf.Parent = p
	buf.EdgeLen = n.EdgeLen
	for i, c := range p.Children {
		if c == n {
			p.Children[i] = buf
			break
		}
	}
	n.Parent = buf
	n.EdgeLen = 0
	buf.Children = []*tree.Node{n}
	return buf
}

// RepeaterizePath inserts repeaters every critical length along the path
// from the root to the given node, sized for the accumulated wire cap. Used
// by flows that buffer top-level trunks explicitly.
func (ins *Inserter) RepeaterizePath(t *tree.Tree, n *tree.Node) int {
	count := 0
	lhat := ins.CriticalLength(ins.Lib.Strongest(), ins.MaxCap/2)
	for v := n; v != nil && v.Parent != nil; v = v.Parent {
		for v.EdgeLen > lhat {
			st := tree.SplitEdge(v, lhat)
			if st == nil {
				break
			}
			cell := ins.Lib.PickForLoad(ins.Tech.WireCap(lhat)+ins.MaxCap/2, ins.Margin)
			if b := insertBufferAbove(st, cell); b != nil {
				count++
			}
		}
	}
	return count
}
