// Package parallel is the deterministic fan-out primitive behind every
// concurrent loop in the CTS flow. The paper's hierarchy (§3, Fig. 3)
// synthesizes each level's clusters independently, which makes the hot
// loops embarrassingly parallel — but the repository's contract is byte
// reproducibility for a fixed seed, so raw goroutines-plus-channels (whose
// completion order leaks into append order, float accumulation order, or
// error selection) are banned from algorithm packages by the slltlint
// sharedstate rule. ForEach is the sanctioned shape: an indexed fan-out
// whose tasks may only write state partitioned by their own index, so the
// observable result is identical for any worker count and any schedule.
//
// Determinism rules for code built on this package:
//
//   - a task for index i writes only slots[i]-style state; never append,
//     never shared accumulators;
//   - reductions over task results happen after ForEach returns, in index
//     order, so float rounding matches the serial loop bit-for-bit;
//   - any randomness inside a task derives its seed from the task index
//     (seed + f(i)), never from a shared stream.
package parallel

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError is a panic recovered from a task, carrying the task index and
// the goroutine stack at the point of the panic. ForEach converts panics to
// errors instead of crashing the process so a failed cluster build surfaces
// like any other per-net failure.
type PanicError struct {
	Index int
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: task %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// Clamp normalizes a Workers option: values below 1 mean "serial" and map
// to 1, values above GOMAXPROCS are capped to it (more workers than
// schedulable threads only adds contention).
func Clamp(workers int) int {
	if workers < 1 {
		return 1
	}
	if p := runtime.GOMAXPROCS(0); workers > p {
		return p
	}
	return workers
}

// ForEach runs fn(0), fn(1), …, fn(n-1) on up to workers goroutines and
// returns the error of the lowest-index failing task, or nil.
//
// Tasks are dispatched in index order but may complete in any order; fn
// must therefore confine its writes to state partitioned by its index (see
// the package comment). With workers <= 1 (or n <= 1) the calls happen
// serially on the caller's goroutine, stopping at the first error — the
// reference semantics the parallel path reproduces: because dispatch is
// monotone in the index, every task below a recorded failure has also run,
// so the lowest-index recorded error is exactly the error the serial loop
// would have returned. After an error is recorded, not-yet-dispatched
// tasks are skipped; callers must treat all per-index results as invalid
// when ForEach returns non-nil.
//
// A panicking task does not crash the run: the panic is captured as a
// *PanicError and participates in lowest-index-wins like any other error.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Clamp(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := runTask(i, fn); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := runTask(i, fn); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runTask invokes fn(i) with panic capture.
func runTask(i int, fn func(int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}
