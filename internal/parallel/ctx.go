package parallel

import (
	"context"

	"sllt/internal/obs"
)

// ForEachCtx is ForEach with cooperative cancellation: no new task is
// dispatched once ctx is cancelled. A nil ctx never cancels and behaves
// exactly like ForEach.
//
// Cancellation keeps the package's determinism contract the same way errors
// do: dispatch is monotone in the index, so when ForEachCtx returns
// non-nil, callers must treat all per-index results as invalid. The
// returned error is the lowest-index task error when one was recorded,
// otherwise ctx.Err() when the fan-out was cut short — mirroring the serial
// reference loop, which observes the context between consecutive tasks and
// returns ctx.Err() in place of the task it refused to start. Tasks already
// running when ctx fires are not interrupted (fn observes ctx itself if it
// wants mid-task cancellation); ForEachCtx returns only after every started
// task has finished, so no task goroutine outlives the call.
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	if ctx == nil {
		return ForEach(workers, n, fn)
	}
	if n <= 0 {
		return nil
	}
	workers = Clamp(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := runTask(i, fn); err != nil {
				return err
			}
		}
		return nil
	}
	// The claim-side check: a cancelled context reads as an error at the
	// claimed index, which stops further dispatch exactly like a task
	// failure. ForEach's lowest-index scan then prefers a genuine task error
	// below the cancellation point; above it, nothing was dispatched, so
	// ctx.Err() is exactly what the serial loop would have returned.
	return ForEach(workers, n, func(i int) error {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		return fn(i)
	})
}

// ForEachSpanCtx is ForEachSpan with the cancellation semantics of
// ForEachCtx: per-task observability spans, no dispatch after ctx fires.
func ForEachSpanCtx(ctx context.Context, workers, n int, parent *obs.Span, name string, fn func(i int) error) error {
	if parent == nil {
		return ForEachCtx(ctx, workers, n, fn)
	}
	return ForEachCtx(ctx, workers, n, func(i int) error {
		sp := parent.BeginTask(i, name)
		defer sp.End()
		return fn(i)
	})
}
