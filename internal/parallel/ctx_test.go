package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"sllt/internal/obs"
)

// TestForEachCtxNilCtx pins that a nil context is the zero-cost path: every
// task runs, exactly like ForEach.
func TestForEachCtxNilCtx(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		if err := ForEachCtx(nil, workers, 50, func(i int) error {
			ran.Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ran.Load() != 50 {
			t.Errorf("workers=%d: ran %d tasks, want 50", workers, ran.Load())
		}
	}
}

// TestForEachCtxPreCancelled pins the entry check: a context cancelled
// before the call dispatches zero tasks and returns ctx.Err().
func TestForEachCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := ForEachCtx(ctx, workers, 50, func(i int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if ran.Load() != 0 {
			t.Errorf("workers=%d: %d tasks ran after pre-cancellation, want 0", workers, ran.Load())
		}
	}
}

// TestForEachCtxCutsDispatch cancels mid-run and checks that dispatch stops:
// far fewer than n tasks run, and the error is the cancellation.
func TestForEachCtxCutsDispatch(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		err := ForEachCtx(ctx, workers, 10000, func(i int) error {
			if ran.Add(1) == 10 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// Already-claimed tasks may finish; at most one extra per worker.
		if got := ran.Load(); got > 10+int64(workers) {
			t.Errorf("workers=%d: %d tasks ran after cancellation at task 10", workers, got)
		}
	}
}

// TestForEachCtxTaskErrorWins pins error selection: a genuine task error
// below the cancellation point beats the cancellation marker.
func TestForEachCtxTaskErrorWins(t *testing.T) {
	boom := fmt.Errorf("task 0 failed")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := ForEachCtx(ctx, 4, 100, func(i int) error {
		if i == 0 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the task-0 error", err)
	}
}

// TestForEachCtxPanicCapture pins that the ctx path keeps ForEach's
// panic-to-error conversion.
func TestForEachCtxPanicCapture(t *testing.T) {
	ctx := context.Background()
	for _, workers := range []int{1, 4} {
		err := ForEachCtx(ctx, workers, 8, func(i int) error {
			if i == 2 {
				panic("kaboom")
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) || pe.Index != 2 {
			t.Fatalf("workers=%d: err = %v, want PanicError at index 2", workers, err)
		}
	}
}

// TestForEachSpanCtx checks the span variant: spans are recorded per
// dispatched task, and a nil parent degrades to ForEachCtx.
func TestForEachSpanCtx(t *testing.T) {
	rec := obs.New(obs.NewManualClock(1))
	root := rec.Begin("fanout")
	if err := ForEachSpanCtx(context.Background(), 2, 4, root, "task", func(i int) error {
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	root.End()
	rep := rec.Snapshot()
	n := 0
	rep.Span.Walk(func(depth int, s *obs.SpanJSON) {
		if s.Name == "task" {
			n++
		}
	})
	if n != 4 {
		t.Errorf("recorded %d task spans, want 4", n)
	}

	var ran atomic.Int64
	if err := ForEachSpanCtx(context.Background(), 2, 4, nil, "task", func(i int) error {
		ran.Add(1)
		return nil
	}); err != nil || ran.Load() != 4 {
		t.Errorf("nil-parent path: err=%v ran=%d, want nil/4", err, ran.Load())
	}
}
