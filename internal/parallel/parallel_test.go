package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

// TestForEachComputesAllIndices checks the basic contract: every index runs
// exactly once and results land in their own slots.
func TestForEachComputesAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		n := 1000
		out := make([]int, n)
		var calls atomic.Int64
		err := ForEach(workers, n, func(i int) error {
			calls.Add(1)
			out[i] = i * i
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if calls.Load() != int64(n) {
			t.Errorf("workers=%d: %d calls, want %d", workers, calls.Load(), n)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestForEachLowestIndexErrorWins is the error-selection contract: when
// several tasks fail, the error of the lowest failing index is returned,
// matching what the serial reference loop would have reported.
func TestForEachLowestIndexErrorWins(t *testing.T) {
	failAt := map[int]bool{3: true, 40: true, 90: true}
	for _, workers := range []int{1, 2, 8} {
		err := ForEach(workers, 100, func(i int) error {
			if failAt[i] {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "task 3 failed" {
			t.Errorf("workers=%d: err = %v, want task 3 failed", workers, err)
		}
	}
}

// TestForEachPanicRecovery: a panicking task surfaces as a *PanicError with
// its index and stack instead of crashing the run, and participates in
// lowest-index-wins.
func TestForEachPanicRecovery(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForEach(workers, 50, func(i int) error {
			if i == 17 {
				panic("cluster 17 exploded")
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Index != 17 {
			t.Errorf("workers=%d: panic index = %d, want 17", workers, pe.Index)
		}
		if pe.Value != "cluster 17 exploded" {
			t.Errorf("workers=%d: panic value = %v", workers, pe.Value)
		}
		if !strings.Contains(pe.Error(), "goroutine") {
			t.Errorf("workers=%d: panic error carries no stack: %q", workers, pe.Error())
		}
	}
}

// TestForEachPanicBeatsLaterError: a panic at a lower index wins over a
// plain error at a higher one.
func TestForEachPanicBeatsLaterError(t *testing.T) {
	err := ForEach(4, 20, func(i int) error {
		switch i {
		case 2:
			panic("low")
		case 15:
			return errors.New("high")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 2 {
		t.Fatalf("err = %v, want panic at index 2", err)
	}
}

// TestForEachSerialFallback: Workers <= 0 (and 1) must run on the caller's
// goroutine, in index order, stopping at the first error.
func TestForEachSerialFallback(t *testing.T) {
	for _, workers := range []int{-3, 0, 1} {
		caller := goroutineID()
		var order []int // safe: serial path shares the caller's goroutine
		err := ForEach(workers, 10, func(i int) error {
			if goroutineID() != caller {
				t.Errorf("workers=%d: task %d ran off the caller goroutine", workers, i)
			}
			order = append(order, i)
			if i == 6 {
				return errors.New("stop")
			}
			return nil
		})
		if err == nil || err.Error() != "stop" {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if len(order) != 7 {
			t.Errorf("workers=%d: serial path ran %d tasks after error at 6, want 7", workers, len(order))
		}
		for i, v := range order {
			if v != i {
				t.Errorf("workers=%d: serial order[%d] = %d", workers, i, v)
			}
		}
	}
}

// TestForEachOrderingInvariance is the determinism pillar: for any
// GOMAXPROCS in 1..8 and any worker count, the per-index results are
// byte-identical to the serial reference, including float accumulation
// performed by the caller in index order after ForEach returns.
func TestForEachOrderingInvariance(t *testing.T) {
	const n = 4096
	compute := func(workers int) (string, float64) {
		vals := make([]float64, n)
		ids := make([]string, n)
		err := ForEach(workers, n, func(i int) error {
			// A value whose float rounding would expose any reordering of
			// the reduction below.
			vals[i] = 1.0 / float64(3*i+1)
			ids[i] = fmt.Sprintf("t%d:%.17g", i, vals[i])
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, v := range vals { // index-order reduction
			sum += v
		}
		return strings.Join(ids, ","), sum
	}

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	refIDs, refSum := compute(1)
	for procs := 1; procs <= 8; procs++ {
		runtime.GOMAXPROCS(procs)
		for _, workers := range []int{1, 2, 3, 8} {
			ids, sum := compute(workers)
			if ids != refIDs {
				t.Fatalf("GOMAXPROCS=%d workers=%d: per-index results differ from serial", procs, workers)
			}
			if sum != refSum {
				t.Fatalf("GOMAXPROCS=%d workers=%d: reduction %.17g != serial %.17g", procs, workers, sum, refSum)
			}
		}
	}
}

// TestClamp pins the Workers normalization rules.
func TestClamp(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	runtime.GOMAXPROCS(4)
	for _, tc := range []struct{ in, want int }{
		{-1, 1}, {0, 1}, {1, 1}, {3, 3}, {4, 4}, {100, 4},
	} {
		if got := Clamp(tc.in); got != tc.want {
			t.Errorf("Clamp(%d) = %d, want %d (GOMAXPROCS=4)", tc.in, got, tc.want)
		}
	}
}

// TestForEachEmpty: n <= 0 is a no-op.
func TestForEachEmpty(t *testing.T) {
	called := false
	if err := ForEach(8, 0, func(int) error { called = true; return nil }); err != nil || called {
		t.Fatalf("n=0: err=%v called=%v", err, called)
	}
}

// goroutineID extracts the current goroutine's id from the stack header;
// good enough to assert "same goroutine" in tests.
func goroutineID() string {
	buf := make([]byte, 64)
	buf = buf[:runtime.Stack(buf, false)]
	s := string(buf)
	if i := strings.Index(s, "["); i > 0 {
		return s[:i]
	}
	return s
}
