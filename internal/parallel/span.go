package parallel

import "sllt/internal/obs"

// ForEachSpan is ForEach with per-task observability spans: task i runs
// inside parent.BeginTask(i, name), so the span tree records every task's
// duration while serialization stays index-ascending regardless of the
// schedule (task spans occupy index-pinned slots; see obs.Span). A nil
// parent — observability disabled — delegates straight to ForEach, adding
// nothing to the hot path.
func ForEachSpan(workers, n int, parent *obs.Span, name string, fn func(i int) error) error {
	if parent == nil {
		return ForEach(workers, n, fn)
	}
	return ForEach(workers, n, func(i int) error {
		sp := parent.BeginTask(i, name)
		defer sp.End()
		return fn(i)
	})
}
