package salt

import (
	"sllt/internal/geom"
	"sllt/internal/tree"
)

// Reroute greedily reattaches subtrees to nearer tree vertices when doing so
// saves wire without pushing any sink's path length beyond
// max((1+eps)·MD(sink), its current length). It is the "optimize" half of
// the paper's Step 3 ("the SALT algorithm is used to relax and optimize
// above topology"): the relaxation bounds shallowness, the rerouting
// recovers lightness. Returns the number of reattachments performed.
func Reroute(t *tree.Tree, eps float64) int {
	if t == nil || t.Root == nil || eps < 0 {
		eps = 0
	}
	moves := 0
	// One reattachment per scan, with bookkeeping rebuilt from scratch in
	// between: O(n²) per move, and the move count is bounded because every
	// move strictly reduces total wirelength.
	maxMoves := 4*len(t.Nodes()) + 8
	for moves < maxMoves {
		if rerouteOnce(t, eps) == 0 {
			break
		}
		moves++
	}
	// Reattachment targets may be sinks; restore the load-pins-are-leaves
	// invariant by splitting them into Steiner + zero-length leaf.
	tree.LegalizeSinkLeaves(t)
	return moves
}

func rerouteOnce(t *tree.Tree, eps float64) int {
	root := t.Root
	nodes := t.Nodes()
	pl := make(map[*tree.Node]float64, len(nodes))
	for _, n := range nodes {
		pl[n] = tree.PathLength(n)
	}
	// slack[v]: the largest uniform path increase the sinks below v (and v
	// itself, if a sink) can absorb while staying within (1+eps)·MD. Nodes
	// with no sinks below have unlimited slack.
	slack := make(map[*tree.Node]float64, len(nodes))
	var comp func(n *tree.Node) float64
	comp = func(n *tree.Node) float64 {
		s := 1e18
		if n.Kind == tree.Sink {
			md := root.Loc.Dist(n.Loc)
			s = (1+eps)*md - pl[n]
		}
		for _, c := range n.Children {
			if cs := comp(c); cs < s {
				s = cs
			}
		}
		slack[n] = s
		return s
	}
	comp(root)

	// inSubtree via preorder intervals.
	index := make(map[*tree.Node]int, len(nodes))
	last := make(map[*tree.Node]int, len(nodes))
	i := 0
	var number func(n *tree.Node)
	number = func(n *tree.Node) {
		index[n] = i
		i++
		for _, c := range n.Children {
			number(c)
		}
		last[n] = i
	}
	number(root)
	inSub := func(w, v *tree.Node) bool { return index[w] >= index[v] && index[w] < last[v] }

	moved := 0
	for _, v := range nodes {
		if v.Parent == nil {
			continue
		}
		bestGain := geom.Eps
		var bestW *tree.Node
		for _, w := range nodes {
			if w == v.Parent || inSub(w, v) {
				continue
			}
			gain := v.Parent.Loc.Dist(v.Loc) - w.Loc.Dist(v.Loc)
			if gain <= bestGain {
				continue
			}
			delta := pl[w] + w.Loc.Dist(v.Loc) - pl[v]
			if delta > slack[v]+1e-9 && delta > 1e-9 {
				continue // would overrun a sink's shallowness budget
			}
			bestGain, bestW = gain, w
		}
		if bestW != nil {
			v.Detach()
			bestW.AddChild(v)
			// Conservative single-move-per-pass bookkeeping: recompute on
			// the next pass rather than patching pl/slack incrementally.
			moved++
			return moved
		}
	}
	return moved
}
