// Package salt implements rectilinear Steiner shallow-light trees (R-SALT,
// Chen & Young, "SALT: Provably Good Routing Topology by a Novel Steiner
// Shallow-Light Tree Algorithm").
//
// A shallow-light tree approximates the shortest-path tree (shallowness
// α = max PL(s)/MD(s) ≤ 1+ε) while staying close to the minimum Steiner tree
// in weight (lightness β). The construction here follows the KRY recipe the
// SALT paper builds on: traverse a light seed tree depth-first and, whenever
// a vertex's tree path exceeds (1+ε) times its Manhattan distance from the
// source, reattach it to the best already-visited vertex that restores the
// bound — then recover wirelength with median-point Steinerization, which
// never lengthens a path.
package salt

import (
	"sllt/internal/obs"
	"sllt/internal/rsmt"
	"sllt/internal/tree"
)

// Build constructs an R-SALT tree over the net with shallowness parameter
// eps >= 0. The result satisfies PL(s) <= (1+eps)·MD(s) for every sink s.
// eps = 0 yields a shortest-path Steiner tree (α = 1).
func Build(net *tree.Net, eps float64) *tree.Tree {
	t := rsmt.Build(net)
	Relax(t, eps)
	return t
}

// Relax applies the shallow-light transformation to t in place: the paper's
// CBS Step 3. All wire snaking is removed (edges are reset to Manhattan
// length — this deliberately "breaks the skew legitimacy" as the paper puts
// it; a later BST pass restores it), and any vertex whose root path exceeds
// (1+eps)·MD is reconnected to the cheapest visited vertex that restores the
// bound. A final Steinerization pass recovers wirelength without lengthening
// any path.
func Relax(t *tree.Tree, eps float64) {
	RelaxK(t, eps, nil)
}

// RelaxK is Relax with the final Steinerization pass's kernel counters
// attributed to kern (nil kern: exactly Relax).
func RelaxK(t *tree.Tree, eps float64, kern *obs.KernelCounters) {
	if t == nil || t.Root == nil {
		return
	}
	root := t.Root
	if eps < 0 {
		eps = 0
	}
	bound := 1 + eps

	// Vertices visited so far in DFS preorder, with their (current) root
	// path lengths. Reattachment targets come from this set, which can
	// never contain a descendant of the vertex being moved.
	order := []*tree.Node{root}
	dist := map[*tree.Node]float64{root: 0}

	var dfs func(n *tree.Node)
	dfs = func(n *tree.Node) {
		// Copy: reattachment rewrites children slices during iteration.
		kids := append([]*tree.Node(nil), n.Children...)
		for _, c := range kids {
			if c.Parent != n {
				continue // moved away by an earlier reattachment
			}
			// Drop snaking: the relaxation works on pure geometry.
			c.EdgeLen = n.Loc.Dist(c.Loc)
			d := dist[n] + c.EdgeLen
			md := root.Loc.Dist(c.Loc)
			if d > bound*md+1e-9 {
				// Too deep: reattach to the cheapest visited vertex w with
				// dist(w) + d(w,c) within the bound. The root always
				// qualifies (0 + MD <= bound·MD).
				bestW := root
				bestWire := root.Loc.Dist(c.Loc)
				for _, w := range order {
					wire := w.Loc.Dist(c.Loc)
					if dist[w]+wire <= bound*md+1e-9 && wire < bestWire {
						bestW, bestWire = w, wire
					}
				}
				c.Detach()
				bestW.AddChild(c)
				d = dist[bestW] + bestWire
			}
			order = append(order, c)
			dist[c] = d
			dfs(c)
		}
	}
	dfs(root)

	rsmt.SteinerizeK(t, kern)
	tree.RemoveRedundantSteiner(t)
}

// Shallowness returns the worst-case PL/MD ratio over the sinks of t,
// ignoring sinks co-located with the root.
func Shallowness(t *tree.Tree) float64 {
	worst := 1.0
	root := t.Root
	for _, s := range t.Sinks() {
		md := root.Loc.Dist(s.Loc)
		if md <= 0 {
			continue
		}
		if a := tree.PathLength(s) / md; a > worst {
			worst = a
		}
	}
	return worst
}
