package salt

import (
	"math/rand"
	"testing"

	"sllt/internal/geom"
	"sllt/internal/rsmt"
	"sllt/internal/tree"
)

func TestRerouteNeverIncreasesWL(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for trial := 0; trial < 20; trial++ {
		net := randomNet(rng, 5+rng.Intn(30), 100)
		tr := Build(net, 0.2)
		before := tr.Wirelength()
		Reroute(tr, 0.2)
		if err := tr.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if after := tr.Wirelength(); after > before+geom.Eps {
			t.Fatalf("trial %d: reroute grew WL %g -> %g", trial, before, after)
		}
		if got := len(tr.Sinks()); got != len(net.Sinks) {
			t.Fatalf("trial %d: sink count changed", trial)
		}
	}
}

func TestRerouteRespectsShallownessBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	const eps = 0.3
	for trial := 0; trial < 20; trial++ {
		net := randomNet(rng, 10+rng.Intn(20), 100)
		tr := Build(net, eps)
		Reroute(tr, eps)
		for _, s := range tr.Sinks() {
			md := net.Source.Dist(s.Loc)
			if pl := tree.PathLength(s); pl > (1+eps)*md+1e-6 {
				t.Fatalf("trial %d: sink PL %g exceeds (1+eps)MD %g after reroute", trial, pl, (1+eps)*md)
			}
		}
	}
}

// A star tree (every sink wired from the source) should collapse toward an
// MST-like structure when eps is generous.
func TestRerouteImprovesStar(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	net := randomNet(rng, 20, 100)
	star := tree.New(net.Source)
	for i := range net.Sinks {
		star.Root.AddChild(net.SinkNode(i))
	}
	before := star.Wirelength()
	Reroute(star, 10)
	after := star.Wirelength()
	if after >= before {
		t.Fatalf("reroute failed to improve star: %g -> %g", before, after)
	}
	// With an essentially unconstrained budget the result should approach
	// the MST (within a generous factor).
	pts := append([]geom.Point{net.Source}, net.SinkPoints()...)
	if mst := rsmt.MSTWL(pts); after > 1.3*mst {
		t.Errorf("rerouted star WL %g still far above MST %g", after, mst)
	}
}
