package salt

import (
	"math/rand"
	"testing"

	"sllt/internal/geom"
	"sllt/internal/invariants"
	"sllt/internal/rsmt"
	"sllt/internal/tree"
)

func randomNet(rng *rand.Rand, n int, box float64) *tree.Net {
	net := &tree.Net{Name: "r", Source: geom.Pt(rng.Float64()*box, rng.Float64()*box)}
	used := map[geom.Point]bool{net.Source: true}
	for len(net.Sinks) < n {
		p := geom.Pt(float64(rng.Intn(int(box))), float64(rng.Intn(int(box))))
		if used[p] {
			continue
		}
		used[p] = true
		net.Sinks = append(net.Sinks, tree.PinSink{Name: "s", Loc: p, Cap: 1})
	}
	return net
}

// The shallowness guarantee is SALT's contract: PL(s) <= (1+eps)·MD(s).
func TestShallownessGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, eps := range []float64{0, 0.1, 0.5, 2.0} {
		for trial := 0; trial < 20; trial++ {
			net := randomNet(rng, 3+rng.Intn(35), 150)
			tr := Build(net, eps)
			if err := invariants.CheckTree(tr); err != nil {
				t.Fatalf("eps=%g trial %d: %v", eps, trial, err)
			}
			if err := invariants.CheckLoad(tr, 0.12); err != nil {
				t.Fatalf("eps=%g trial %d: %v", eps, trial, err)
			}
			for _, s := range tr.Sinks() {
				md := net.Source.Dist(s.Loc)
				if pl := tree.PathLength(s); pl > (1+eps)*md+1e-6 {
					t.Fatalf("eps=%g trial %d: sink %v PL %g > (1+eps)·MD %g",
						eps, trial, s.Loc, pl, (1+eps)*md)
				}
			}
		}
	}
}

func TestEpsZeroGivesShortestPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		net := randomNet(rng, 3+rng.Intn(25), 120)
		tr := Build(net, 0)
		if a := Shallowness(tr); a > 1+1e-9 {
			t.Fatalf("trial %d: eps=0 shallowness = %g", trial, a)
		}
	}
}

// Larger eps must never hurt wirelength systematically: eps=inf ~ RSMT.
func TestEpsTradeoff(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	var wlTight, wlLoose float64
	for trial := 0; trial < 25; trial++ {
		net := randomNet(rng, 20, 150)
		wlTight += Build(net, 0).Wirelength()
		wlLoose += Build(net, 100).Wirelength()
	}
	if wlTight < wlLoose {
		t.Errorf("eps=0 WL %g unexpectedly lighter than eps=100 WL %g", wlTight, wlLoose)
	}
	// Loose eps should essentially match the RSMT seed.
	rng = rand.New(rand.NewSource(12))
	var wlSeed float64
	for trial := 0; trial < 25; trial++ {
		net := randomNet(rng, 20, 150)
		wlSeed += rsmt.Build(net).Wirelength()
	}
	if wlLoose > wlSeed*1.02 {
		t.Errorf("loose SALT WL %g much worse than RSMT %g", wlLoose, wlSeed)
	}
}

// Relax must preserve the sink set and keep the tree structurally sound even
// when fed snaked trees.
func TestRelaxOnSnakedTree(t *testing.T) {
	net := &tree.Net{Source: geom.Pt(0, 0), Sinks: []tree.PinSink{
		{Name: "a", Loc: geom.Pt(10, 0), Cap: 1},
		{Name: "b", Loc: geom.Pt(0, 10), Cap: 1},
	}}
	tr := tree.New(net.Source)
	a := net.SinkNode(0)
	b := net.SinkNode(1)
	tr.Root.AddChild(a)
	tr.Root.AddChild(b)
	a.EdgeLen = 30 // heavily snaked
	Relax(tr, 0)
	if err := invariants.CheckTree(tr); err != nil {
		t.Fatal(err)
	}
	for _, s := range tr.Sinks() {
		if pl := tree.PathLength(s); pl != 10 {
			t.Errorf("sink %s PL = %g, want 10 (snaking removed)", s.Name, pl)
		}
	}
}

func TestRelaxPreservesSinks(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 15; trial++ {
		net := randomNet(rng, 4+rng.Intn(20), 100)
		tr := rsmt.Build(net)
		Relax(tr, 0.2)
		if got := len(tr.Sinks()); got != len(net.Sinks) {
			t.Fatalf("trial %d: %d sinks after relax, want %d", trial, got, len(net.Sinks))
		}
		seen := map[int]bool{}
		for _, s := range tr.Sinks() {
			if seen[s.SinkIdx] {
				t.Fatalf("trial %d: duplicated sink %d", trial, s.SinkIdx)
			}
			seen[s.SinkIdx] = true
		}
	}
}

// Adversarial geometry: collinear pins, duplicated rows, pins coincident
// with the source's row — the degenerate nets EDA code always meets.
func TestBuildAdversarialGeometry(t *testing.T) {
	nets := []*tree.Net{
		{Source: geom.Pt(0, 0), Sinks: []tree.PinSink{ // all collinear
			{Name: "a", Loc: geom.Pt(10, 0), Cap: 1},
			{Name: "b", Loc: geom.Pt(20, 0), Cap: 1},
			{Name: "c", Loc: geom.Pt(30, 0), Cap: 1},
			{Name: "d", Loc: geom.Pt(40, 0), Cap: 1},
		}},
		{Source: geom.Pt(5, 5), Sinks: []tree.PinSink{ // tight cluster far away
			{Name: "a", Loc: geom.Pt(100, 100), Cap: 1},
			{Name: "b", Loc: geom.Pt(100.1, 100), Cap: 1},
			{Name: "c", Loc: geom.Pt(100, 100.1), Cap: 1},
		}},
		{Source: geom.Pt(50, 0), Sinks: []tree.PinSink{ // symmetric about source
			{Name: "a", Loc: geom.Pt(0, 0), Cap: 1},
			{Name: "b", Loc: geom.Pt(100, 0), Cap: 1},
		}},
	}
	for i, net := range nets {
		for _, eps := range []float64{0, 0.25} {
			tr := Build(net, eps)
			if err := invariants.CheckTree(tr); err != nil {
				t.Fatalf("net %d eps %g: %v", i, eps, err)
			}
			if got := len(tr.Sinks()); got != len(net.Sinks) {
				t.Fatalf("net %d eps %g: %d sinks", i, eps, got)
			}
			for _, s := range tr.Sinks() {
				md := net.Source.Dist(s.Loc)
				if pl := tree.PathLength(s); pl > (1+eps)*md+1e-6 {
					t.Fatalf("net %d eps %g: shallowness violated (%g > %g)", i, eps, pl, (1+eps)*md)
				}
			}
		}
	}
}
