package cache

import (
	"bytes"
	"testing"
)

// FuzzDecodeEntry asserts the on-disk entry decoder returns errors — never
// panics or over-allocates — on arbitrary input, and that acceptance is
// exact: anything DecodeEntry accepts re-encodes to the identical bytes
// (EncodeEntry is the only writer, so a valid entry has exactly one form).
func FuzzDecodeEntry(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte(entryMagic))
	f.Add(EncodeEntry(nil))
	f.Add(EncodeEntry([]byte("stage value")))
	long := EncodeEntry([]byte("declared longer than real"))
	long[len(entryMagic)+7] += 8
	f.Add(long)
	flip := EncodeEntry([]byte("checksum mismatch"))
	flip[entryHeaderLen] ^= 1
	f.Add(flip)
	huge := EncodeEntry(nil)
	huge[len(entryMagic)] = 0xff // ~2^56 declared payload
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := DecodeEntry(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeEntry(payload), data) {
			t.Fatalf("accepted entry is not canonical: %d-byte input, %d-byte payload", len(data), len(payload))
		}
	})
}
