package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
)

// Entry format of one on-disk cache file, designed so a reader can reject
// truncation, garbage and bit rot without trusting anything in the file:
//
//	offset  size  field
//	0       8     magic "SLLTCAv1"
//	8       8     payload length, big-endian uint64
//	16      n     payload (the stage value bytes)
//	16+n    32    SHA-256 of the payload
//
// DecodeEntry verifies all three; any failure surfaces as an error the
// Cache treats as a miss (recompute and rewrite). The filename is the hex
// content address of the KEY, not the payload — the trailing digest is what
// ties the payload to itself.
const (
	entryMagic     = "SLLTCAv1"
	entryHeaderLen = len(entryMagic) + 8
	entryMinLen    = entryHeaderLen + sha256.Size
)

// MaxEntryLen bounds a decodable payload (1 GiB): a declared length beyond
// it is rejected before any allocation, so a corrupt header cannot ask the
// decoder for petabytes.
const MaxEntryLen = 1 << 30

// EncodeEntry frames a payload in the on-disk entry format.
func EncodeEntry(payload []byte) []byte {
	out := make([]byte, 0, entryMinLen+len(payload))
	out = append(out, entryMagic...)
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(len(payload)))
	out = append(out, n[:]...)
	out = append(out, payload...)
	sum := sha256.Sum256(payload)
	return append(out, sum[:]...)
}

// DecodeEntry validates an on-disk entry and returns its payload. The
// returned slice aliases data.
func DecodeEntry(data []byte) ([]byte, error) {
	if len(data) < entryMinLen {
		return nil, fmt.Errorf("cache: entry truncated: %d bytes, want at least %d", len(data), entryMinLen)
	}
	if string(data[:len(entryMagic)]) != entryMagic {
		return nil, fmt.Errorf("cache: bad entry magic")
	}
	n := binary.BigEndian.Uint64(data[len(entryMagic):entryHeaderLen])
	if n > MaxEntryLen {
		return nil, fmt.Errorf("cache: declared payload length %d exceeds limit", n)
	}
	if uint64(len(data)) != uint64(entryMinLen)+n {
		return nil, fmt.Errorf("cache: entry length %d does not match declared payload %d", len(data), n)
	}
	payload := data[entryHeaderLen : entryHeaderLen+int(n)]
	var sum [sha256.Size]byte
	copy(sum[:], data[entryHeaderLen+int(n):])
	if sha256.Sum256(payload) != sum {
		return nil, fmt.Errorf("cache: payload checksum mismatch")
	}
	return payload, nil
}

// DiskStore is the on-disk tier: one file per key under root, sharded by the
// first key byte (root/ab/abcdef….sllt) to keep directories small. Writes
// are atomic (temp file + rename), so a concurrent reader sees either the
// complete entry or nothing.
type DiskStore struct {
	root string
}

// NewDiskStore returns a store rooted at dir, creating it if needed.
func NewDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	return &DiskStore{root: dir}, nil
}

func (d *DiskStore) path(key Key) string {
	hex := key.String()
	return filepath.Join(d.root, hex[:2], hex+".sllt")
}

// Get reads and validates the entry for key. Unreadable, truncated or
// corrupt entries are deleted and reported as a miss, so one damaged file
// degrades to a single recompute instead of a persistent failure.
func (d *DiskStore) Get(key Key) ([]byte, bool) {
	p := d.path(key)
	data, err := os.ReadFile(p)
	if err != nil {
		return nil, false
	}
	payload, err := DecodeEntry(data)
	if err != nil {
		os.Remove(p)
		return nil, false
	}
	return payload, true
}

// Put writes the entry for key atomically. An existing entry is left in
// place untouched — entries are immutable, so the bytes are already right.
func (d *DiskStore) Put(key Key, value []byte) error {
	p := d.path(key)
	if _, err := os.Stat(p); err == nil {
		return nil
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), filepath.Base(p)+".tmp*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(EncodeEntry(value))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
