package cache

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Enc builds a canonical value encoding: fixed-width big-endian integers,
// bit-pattern floats, length-prefixed strings. It is the writer half of the
// stage-value codecs in internal/cts; Dec is the reader. The encoding is
// deterministic by construction — identical values always serialize to
// identical bytes — which is what makes stored stage outputs comparable and
// content-addressable.
type Enc struct {
	buf []byte
}

// NewEnc returns an encoder with the given initial capacity.
func NewEnc(capacity int) *Enc { return &Enc{buf: make([]byte, 0, capacity)} }

// Bytes returns the accumulated encoding.
func (e *Enc) Bytes() []byte { return e.buf }

// U64 appends a fixed-width unsigned integer.
func (e *Enc) U64(v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

// I64 appends a signed integer.
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int.
func (e *Enc) Int(v int) { e.I64(int64(v)) }

// F64 appends a float by IEEE-754 bit pattern (exact round-trip).
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Str appends a length-prefixed string.
func (e *Enc) Str(s string) {
	e.U64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Dec reads an Enc-produced encoding. The first malformed read latches an
// error; subsequent reads return zero values, so decode loops stay linear
// and check Err once at the end.
type Dec struct {
	data []byte
	off  int
	err  error
}

// NewDec returns a decoder over data.
func NewDec(data []byte) *Dec { return &Dec{data: data} }

// err2 latches a truncation error naming the field kind being read.
func (d *Dec) err2(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("cache: decode: truncated %s at offset %d", what, d.off)
	}
}

// Err returns the first decode error, or nil.
func (d *Dec) Err() error { return d.err }

// Done reports whether the whole input was consumed without error.
func (d *Dec) Done() bool { return d.err == nil && d.off == len(d.data) }

// U64 reads a fixed-width unsigned integer.
func (d *Dec) U64() uint64 {
	if d.err != nil || d.off+8 > len(d.data) {
		d.err2("u64")
		return 0
	}
	v := binary.BigEndian.Uint64(d.data[d.off:])
	d.off += 8
	return v
}

// I64 reads a signed integer.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// Int reads an int, rejecting values outside the platform int range.
func (d *Dec) Int() int {
	v := d.I64()
	n := int(v)
	if int64(n) != v && d.err == nil {
		d.err = fmt.Errorf("cache: decode: int overflow at offset %d", d.off)
		return 0
	}
	return n
}

// F64 reads a float.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Str reads a length-prefixed string. Lengths beyond the remaining input are
// rejected before allocation.
func (d *Dec) Str() string {
	n := d.U64()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.data)-d.off) {
		d.err2("string")
		return ""
	}
	s := string(d.data[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}
