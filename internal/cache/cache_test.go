package cache

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"sync"
	"testing"
)

func key(b byte) Key {
	var k Key
	k[0] = b
	return k
}

func TestGetPutRoundTrip(t *testing.T) {
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	v := []byte("payload")
	if _, ok := c.Get("s", key(1)); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("s", key(1), v)
	got, ok := c.Get("s", key(1))
	if !ok || !bytes.Equal(got, v) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, v)
	}
	st := c.Stats().Stages["s"]
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 put", st)
	}
}

// TestLRUEviction drives the memory tier past a tiny budget and checks the
// least-recently-used entries leave first — and that a touched entry is
// spared.
func TestLRUEviction(t *testing.T) {
	val := make([]byte, 256)
	// Budget for exactly 3 entries of (256 + entryOverhead) bytes.
	c, err := New(Config{MemBytes: 3 * (256 + entryOverhead)})
	if err != nil {
		t.Fatal(err)
	}
	for b := byte(1); b <= 3; b++ {
		c.Put("s", key(b), val)
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
	// Touch 1 so 2 becomes the LRU victim.
	c.Get("s", key(1))
	c.Put("s", key(4), val)
	if c.Len() != 3 {
		t.Fatalf("len after eviction = %d, want 3", c.Len())
	}
	if _, ok := c.Get("s", key(2)); ok {
		t.Error("LRU entry 2 survived eviction")
	}
	for _, b := range []byte{1, 3, 4} {
		if _, ok := c.Get("s", key(b)); !ok {
			t.Errorf("entry %d evicted, want resident", b)
		}
	}
	if ev := c.Stats().Total().Evictions; ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
}

func TestOversizedValueNotAdmitted(t *testing.T) {
	c, err := New(Config{MemBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	c.Put("s", key(1), make([]byte, 1024))
	if c.Len() != 0 {
		t.Error("value larger than the whole budget was admitted")
	}
}

func TestDelete(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c.Put("s", key(1), []byte("v"))
	c.Delete(key(1))
	if _, ok := c.Get("s", key(1)); ok {
		t.Error("deleted entry still readable")
	}
	if _, err := os.Stat(c.disk.path(key(1))); !os.IsNotExist(err) {
		t.Error("deleted entry still on disk")
	}
}

func TestNilCacheSafe(t *testing.T) {
	var c *Cache
	if _, ok := c.Get("s", key(1)); ok {
		t.Error("nil cache hit")
	}
	c.Put("s", key(1), []byte("v"))
	c.Delete(key(1))
	c.ResetStats()
	if c.Len() != 0 {
		t.Error("nil cache has entries")
	}
	if got := c.Stats().Total(); got != (StageStats{}) {
		t.Error("nil cache has stats")
	}
}

func TestStatsSub(t *testing.T) {
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	c.Put("a", key(1), []byte("v"))
	prev := c.Stats()
	c.Get("a", key(1))
	c.Get("b", key(2))
	d := c.Stats().Sub(prev)
	if d.Stages["a"].Hits != 1 || d.Stages["a"].Puts != 0 {
		t.Errorf("delta a = %+v, want exactly 1 hit", d.Stages["a"])
	}
	if d.Stages["b"].Misses != 1 {
		t.Errorf("delta b = %+v, want 1 miss", d.Stages["b"])
	}
	if names := d.StageNames(); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("stage names = %v, want [a b]", names)
	}
}

// TestDiskTierPromotion checks a fresh Cache over a warm directory serves
// from disk and promotes into memory (second Get reads no further bytes).
func TestDiskTierPromotion(t *testing.T) {
	dir := t.TempDir()
	c1, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	v := []byte("stage value bytes")
	c1.Put("s", key(7), v)

	c2, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get("s", key(7))
	if !ok || !bytes.Equal(got, v) {
		t.Fatal("disk tier miss on warm directory")
	}
	r1 := c2.Stats().Total().BytesRead
	if r1 != int64(len(v)) {
		t.Errorf("bytes read = %d, want %d", r1, len(v))
	}
	c2.Get("s", key(7))
	if r2 := c2.Stats().Total().BytesRead; r2 != r1 {
		t.Error("second Get read from disk again; promotion failed")
	}
}

// TestCorruptDiskEntryFallsBack flips one payload byte in a stored entry:
// the read must miss (recompute path), and the damaged file must be gone so
// the recompute's Put can rewrite it.
func TestCorruptDiskEntryFallsBack(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c.Put("s", key(3), []byte("precious bytes"))
	p := c.disk.path(key(3))

	corrupt := func(mut func([]byte) []byte) {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, mut(data), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cases := map[string]func([]byte) []byte{
		"bit flip":  func(d []byte) []byte { d[entryHeaderLen] ^= 0x40; return d },
		"truncated": func(d []byte) []byte { return d[:len(d)-5] },
		"bad magic": func(d []byte) []byte { d[0] = 'X'; return d },
		"empty":     func(d []byte) []byte { return nil },
	}
	for name, mut := range cases {
		t.Run(name, func(t *testing.T) {
			fresh, err := New(Config{Dir: dir}) // cold memory, warm disk
			if err != nil {
				t.Fatal(err)
			}
			c.Put("s", key(3), []byte("precious bytes")) // restore
			corrupt(mut)
			if _, ok := fresh.Get("s", key(3)); ok {
				t.Fatal("corrupt entry served as a hit")
			}
			if _, err := os.Stat(p); !os.IsNotExist(err) {
				t.Error("corrupt entry not deleted after failed read")
			}
			// The recompute path rewrites it; the rewrite must be readable.
			fresh.Put("s", key(3), []byte("precious bytes"))
			if _, ok := fresh.Get("s", key(3)); !ok {
				t.Error("rewrite after corruption not readable")
			}
		})
	}
}

func TestEntryEncodeDecode(t *testing.T) {
	payload := []byte("some stage value")
	enc := EncodeEntry(payload)
	got, err := DecodeEntry(enc)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("round trip = %q, %v", got, err)
	}
	if _, err := DecodeEntry(enc[:entryMinLen-1]); err == nil {
		t.Error("truncated entry decoded")
	}
	bad := append([]byte{}, enc...)
	bad[3] = 'x'
	if _, err := DecodeEntry(bad); err == nil {
		t.Error("bad magic decoded")
	}
	long := append([]byte{}, enc...)
	long[len(entryMagic)] = 0xff // declared length ~2^56: rejected pre-alloc
	if _, err := DecodeEntry(long); err == nil {
		t.Error("absurd declared length decoded")
	}
	flip := append([]byte{}, enc...)
	flip[entryHeaderLen] ^= 1
	if _, err := DecodeEntry(flip); err == nil {
		t.Error("checksum mismatch decoded")
	}
}

// TestConcurrentReadersWriters hammers one Cache from many goroutines (run
// under -race in CI): concurrent Get/Put on overlapping keys, including
// same-key races, must stay consistent — every hit returns the exact bytes
// some Put stored for that key.
func TestConcurrentReadersWriters(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Config{MemBytes: 64 << 10, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	valFor := func(i int) []byte { return []byte(fmt.Sprintf("value-%03d", i%32)) }
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := key(byte(i % 32))
				if got, ok := c.Get("s", k); ok {
					if !bytes.Equal(got, valFor(i)) {
						t.Errorf("goroutine %d: key %d returned %q, want %q", g, i%32, got, valFor(i))
						return
					}
				} else {
					c.Put("s", k, valFor(i))
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestHasherFraming(t *testing.T) {
	sum := func(f func(*Hasher)) Key {
		h := NewHasher("salt")
		f(h)
		return h.Sum()
	}
	if sum(func(h *Hasher) { h.Str("ab").Str("c") }) == sum(func(h *Hasher) { h.Str("a").Str("bc") }) {
		t.Error("string boundary collision")
	}
	if sum(func(h *Hasher) { h.I64(1).I64(2) }) == sum(func(h *Hasher) { h.Str("\x01\x02") }) {
		t.Error("cross-type collision")
	}
	if sum(func(h *Hasher) { h.List(2).Int(1).Int(2) }) == sum(func(h *Hasher) { h.List(1).Int(1).List(1).Int(2) }) {
		t.Error("list boundary collision")
	}
	if NewHasher("a").Sum() == NewHasher("b").Sum() {
		t.Error("salt not folded in")
	}
	if sum(func(h *Hasher) { h.F64(0) }) == sum(func(h *Hasher) { h.F64(negZero()) }) {
		t.Error("+0 and -0 hash equal; keys must be bit-pattern exact")
	}
}

// negZero returns IEEE-754 negative zero (the literal -0.0 is a constant
// expression Go folds to +0).
func negZero() float64 { return math.Copysign(0, -1) }

func TestEncDecRoundTrip(t *testing.T) {
	e := NewEnc(64)
	e.U64(42)
	e.I64(-7)
	e.Int(1 << 40)
	e.F64(3.14159)
	e.Str("hello")
	e.Str("")
	d := NewDec(e.Bytes())
	if v := d.U64(); v != 42 {
		t.Errorf("U64 = %d", v)
	}
	if v := d.I64(); v != -7 {
		t.Errorf("I64 = %d", v)
	}
	if v := d.Int(); v != 1<<40 {
		t.Errorf("Int = %d", v)
	}
	if v := d.F64(); v != 3.14159 {
		t.Errorf("F64 = %v", v)
	}
	if v := d.Str(); v != "hello" {
		t.Errorf("Str = %q", v)
	}
	if v := d.Str(); v != "" {
		t.Errorf("empty Str = %q", v)
	}
	if !d.Done() {
		t.Errorf("not done: err=%v", d.Err())
	}
}

func TestDecErrorLatching(t *testing.T) {
	d := NewDec([]byte{1, 2, 3}) // too short for any read
	_ = d.U64()
	if d.Err() == nil {
		t.Fatal("truncated read did not error")
	}
	first := d.Err()
	_ = d.Str()
	_ = d.F64()
	if d.Err() != first {
		t.Error("later reads replaced the first error")
	}
	if d.Done() {
		t.Error("errored decoder reports done")
	}

	// A declared string length beyond the input must fail before allocating.
	e := NewEnc(16)
	e.U64(1 << 40)
	d2 := NewDec(e.Bytes())
	if s := d2.Str(); s != "" || d2.Err() == nil {
		t.Error("absurd string length decoded")
	}
}
