package cache

import "container/list"

// memLRU is the in-memory tier: a byte-budgeted LRU over immutable values.
// Not safe for concurrent use; Cache serializes access.
type memLRU struct {
	budget  int64
	used    int64
	order   *list.List // front = most recently used; values are *memEntry
	entries map[Key]*list.Element
}

type memEntry struct {
	key   Key
	value []byte
}

// entryOverhead approximates the bookkeeping bytes per entry (key, list
// element, map slot) charged against the budget alongside the value bytes.
const entryOverhead = 128

func newMemLRU(budget int64) *memLRU {
	return &memLRU{
		budget:  budget,
		order:   list.New(),
		entries: make(map[Key]*list.Element),
	}
}

func (m *memLRU) get(key Key) ([]byte, bool) {
	el, ok := m.entries[key]
	if !ok {
		return nil, false
	}
	m.order.MoveToFront(el)
	return el.Value.(*memEntry).value, true
}

// put admits the value, evicting least-recently-used entries to stay under
// budget, and returns how many entries were evicted. A value larger than the
// whole budget is not admitted (it would evict everything for one entry that
// can never be joined by another).
func (m *memLRU) put(key Key, value []byte) (evicted int) {
	if _, ok := m.entries[key]; ok {
		return 0 // immutable: same key implies same bytes
	}
	cost := int64(len(value)) + entryOverhead
	if cost > m.budget {
		return 0
	}
	for m.used+cost > m.budget {
		back := m.order.Back()
		if back == nil {
			break
		}
		e := back.Value.(*memEntry)
		m.order.Remove(back)
		delete(m.entries, e.key)
		m.used -= int64(len(e.value)) + entryOverhead
		evicted++
	}
	el := m.order.PushFront(&memEntry{key: key, value: value})
	m.entries[key] = el
	m.used += cost
	return evicted
}

func (m *memLRU) delete(key Key) {
	el, ok := m.entries[key]
	if !ok {
		return
	}
	e := el.Value.(*memEntry)
	m.order.Remove(el)
	delete(m.entries, key)
	m.used -= int64(len(e.value)) + entryOverhead
}

func (m *memLRU) len() int { return len(m.entries) }
