package cache

import "testing"

// guardHasher is reused across runs; guardReset truncates it in place so
// every guarded write lands in the hasher's existing backing, mirroring the
// steady state of a key computation.
var (
	guardHasher = NewHasher("hot-guard")
	guardBytes  = []byte("payload")
	guardKey    Key

	guardSinkK Key
)

func guardReset() *Hasher {
	guardHasher.buf = guardHasher.buf[:0]
	return guardHasher
}

// allocFreeGuards pins every // hot: alloc-free kernel in this package at
// zero steady-state allocations, keyed by the kernel's display name. The
// guardcov test in internal/analysis/hotpath checks the map stays in sync
// with the annotations.
var allocFreeGuards = map[string]func(){
	"Hasher.u64":   func() { guardReset().u64(42) },
	"Hasher.Str":   func() { guardReset().Str("key") },
	"Hasher.Bytes": func() { guardReset().Bytes(guardBytes) },
	"Hasher.I64":   func() { guardReset().I64(-7) },
	"Hasher.Int":   func() { guardReset().Int(7) },
	"Hasher.F64":   func() { guardReset().F64(3.25) },
	"Hasher.Bool":  func() { guardReset().Bool(true) },
	"Hasher.Key":   func() { guardReset().Key(guardKey) },
	"Hasher.List":  func() { guardReset().List(3) },
	"Hasher.Reset": func() { guardHasher.Reset("hot-guard") },
	"Hasher.Sum":   func() { guardSinkK = guardReset().Str("x").Sum() },
}

func TestAllocFreeGuards(t *testing.T) {
	for name, fn := range allocFreeGuards {
		fn() // warm up any first-call growth before measuring
		if n := testing.AllocsPerRun(100, fn); n != 0 {
			t.Errorf("%s allocates %.1f times per op, want 0", name, n)
		}
	}
}
