package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
)

// Hasher accumulates a canonical, collision-resistant encoding of a stage's
// inputs and folds it into a Key. Every write is framed with a type tag
// (and, for variable-length data, a length prefix), so distinct field
// sequences can never collide by concatenation — H("ab","c") ≠ H("a","bc"),
// H(int 1, int 2) ≠ H(string "\x01\x02").
//
// Floats are hashed by their IEEE-754 bit pattern: the cache key must
// distinguish inputs the flow's float arithmetic distinguishes, bit for bit.
type Hasher struct {
	buf []byte
}

// Tag bytes framing each written field.
const (
	tagString byte = 0x01
	tagBytes  byte = 0x02
	tagI64    byte = 0x03
	tagF64    byte = 0x04
	tagBool   byte = 0x05
	tagKey    byte = 0x06
	tagList   byte = 0x07
)

// NewHasher returns a Hasher seeded with the given salt (the code/schema
// version of the keyed computation — bump the salt to invalidate every key
// derived under the old scheme).
func NewHasher(salt string) *Hasher {
	h := &Hasher{buf: make([]byte, 0, 256)}
	h.Str(salt)
	return h
}

// u64 appends v big-endian; every framed write below funnels through it.
//
// hot: alloc-free
func (h *Hasher) u64(v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	h.buf = append(h.buf, b[:]...)
}

// Str appends a length-prefixed string field.
//
// hot: alloc-free
func (h *Hasher) Str(s string) *Hasher {
	h.buf = append(h.buf, tagString)
	h.u64(uint64(len(s)))
	h.buf = append(h.buf, s...)
	return h
}

// Bytes appends a length-prefixed raw byte field.
//
// hot: alloc-free
func (h *Hasher) Bytes(b []byte) *Hasher {
	h.buf = append(h.buf, tagBytes)
	h.u64(uint64(len(b)))
	h.buf = append(h.buf, b...)
	return h
}

// I64 appends a signed integer field.
//
// hot: alloc-free
func (h *Hasher) I64(v int64) *Hasher {
	h.buf = append(h.buf, tagI64)
	h.u64(uint64(v))
	return h
}

// Int appends an int field.
//
// hot: alloc-free
func (h *Hasher) Int(v int) *Hasher { return h.I64(int64(v)) }

// F64 appends a float field by bit pattern.
//
// hot: alloc-free
func (h *Hasher) F64(v float64) *Hasher {
	h.buf = append(h.buf, tagF64)
	h.u64(math.Float64bits(v))
	return h
}

// Bool appends a boolean field.
//
// hot: alloc-free
func (h *Hasher) Bool(v bool) *Hasher {
	h.buf = append(h.buf, tagBool)
	if v {
		h.buf = append(h.buf, 1)
	} else {
		h.buf = append(h.buf, 0)
	}
	return h
}

// Key appends another content address (hierarchical keying: a stage input
// that is itself the output of a keyed stage contributes its producer's key,
// not its bytes).
//
// hot: alloc-free
func (h *Hasher) Key(k Key) *Hasher {
	h.buf = append(h.buf, tagKey)
	h.buf = append(h.buf, k[:]...)
	return h
}

// List appends a list header with the element count; callers then write the
// elements. The explicit count keeps adjacent lists from merging.
//
// hot: alloc-free
func (h *Hasher) List(n int) *Hasher {
	h.buf = append(h.buf, tagList)
	h.u64(uint64(n))
	return h
}

// Sum finalizes the accumulated encoding into a Key. The Hasher remains
// usable (further writes extend the same encoding).
//
// hot: alloc-free
func (h *Hasher) Sum() Key { return Key(sha256.Sum256(h.buf)) }

// Reset truncates the accumulated encoding in place — keeping the backing
// buffer — and re-seeds it with salt, so one Hasher can key many records
// without reallocating.
//
// hot: alloc-free
func (h *Hasher) Reset(salt string) *Hasher {
	h.buf = h.buf[:0]
	return h.Str(salt)
}
