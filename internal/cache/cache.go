// Package cache is a content-addressed store for flow-stage results: values
// are canonical byte encodings of stage outputs, addressed by the SHA-256
// hash of the stage's complete input description (see Hasher). The store is
// the substrate of the cts cache driver — dagger's content-addressed DAG
// caching applied to the CTS stage graph.
//
// A Cache layers an in-memory LRU (always present) over an optional on-disk
// directory (atomic, checksummed entries; see disk.go). Lookups consult
// memory first, then disk; a disk hit is promoted into memory. Every entry
// is immutable once written — the same key always maps to the same bytes,
// so concurrent writers racing on one key are benign.
//
// The package never decides what is cacheable: admission is the caller's
// contract (in this repository, the stagepure analyzer verifies that every
// cached stage is a pure function of the hashed inputs). The store is
// correspondingly exempt from the stagepure purity rules, exactly like the
// obs recorder: for a verified-pure stage, replaying the stored bytes is
// observationally identical to recomputing them — a property the cached
// vs. uncached byte-identity tests in internal/cts enforce at runtime.
package cache

import (
	"fmt"
	"os"
	"sort"
	"sync"
)

// Key is a content address: the SHA-256 of a canonical input encoding.
type Key [32]byte

// String renders the key as lowercase hex.
func (k Key) String() string { return fmt.Sprintf("%x", k[:]) }

// Cache is a two-tier content-addressed store. The zero value is not usable;
// construct with New. All methods are safe for concurrent use.
type Cache struct {
	mu   sync.Mutex
	mem  *memLRU
	disk *DiskStore // nil: memory only

	stats statsMap
}

// Config sizes a Cache.
type Config struct {
	// MemBytes bounds the in-memory tier (keys + values). Zero selects
	// DefaultMemBytes.
	MemBytes int64
	// Dir, when non-empty, enables the on-disk tier rooted at this
	// directory (created on first write).
	Dir string
}

// DefaultMemBytes is the in-memory budget when Config.MemBytes is zero:
// 256 MiB, enough for every stage of a million-sink flow.
const DefaultMemBytes = 256 << 20

// New returns a Cache with the given configuration.
func New(cfg Config) (*Cache, error) {
	if cfg.MemBytes <= 0 {
		cfg.MemBytes = DefaultMemBytes
	}
	c := &Cache{
		mem:   newMemLRU(cfg.MemBytes),
		stats: make(statsMap),
	}
	if cfg.Dir != "" {
		d, err := NewDiskStore(cfg.Dir)
		if err != nil {
			return nil, err
		}
		c.disk = d
	}
	return c, nil
}

// Get returns the value stored under key, or (nil, false). stage labels the
// lookup for the per-stage hit statistics; it never affects addressing.
// The returned slice must not be modified by the caller.
func (c *Cache) Get(stage string, key Key) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	if v, ok := c.mem.get(key); ok {
		c.stats.bump(stage, func(s *StageStats) { s.Hits++ })
		c.mu.Unlock()
		return v, true
	}
	disk := c.disk
	c.mu.Unlock()
	if disk != nil {
		if v, ok := disk.Get(key); ok {
			c.mu.Lock()
			c.mem.put(key, v)
			c.stats.bump(stage, func(s *StageStats) { s.Hits++; s.BytesRead += int64(len(v)) })
			c.mu.Unlock()
			return v, true
		}
	}
	c.mu.Lock()
	c.stats.bump(stage, func(s *StageStats) { s.Misses++ })
	c.mu.Unlock()
	return nil, false
}

// Put stores value under key. Values are immutable: a second Put of the same
// key is a no-op in memory and overwrites the identical bytes on disk. The
// cache takes ownership of value; callers must not modify it afterwards.
func (c *Cache) Put(stage string, key Key, value []byte) {
	if c == nil {
		return
	}
	c.mu.Lock()
	evicted := c.mem.put(key, value)
	c.stats.bump(stage, func(s *StageStats) {
		s.Puts++
		s.BytesWritten += int64(len(value))
		s.Evictions += int64(evicted)
	})
	disk := c.disk
	c.mu.Unlock()
	if disk != nil {
		// Disk errors (full volume, permissions) degrade to memory-only
		// operation; they must never fail the flow.
		if err := disk.Put(key, value); err != nil {
			c.mu.Lock()
			c.stats.bump(stage, func(s *StageStats) { s.DiskErrors++ })
			c.mu.Unlock()
		}
	}
}

// Delete removes key from both tiers. Used when a stored value fails its
// caller-level decode (a codec/schema skew the entry checksum cannot see):
// dropping the entry turns a persistent decode failure into one recompute.
func (c *Cache) Delete(key Key) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.mem.delete(key)
	disk := c.disk
	c.mu.Unlock()
	if disk != nil {
		os.Remove(disk.path(key))
	}
}

// StageStats counts one stage's cache traffic.
type StageStats struct {
	Hits         int64
	Misses       int64
	Puts         int64
	BytesRead    int64 // value bytes read from the disk tier
	BytesWritten int64 // value bytes admitted (memory tier)
	Evictions    int64
	DiskErrors   int64
}

// HitRate returns Hits/(Hits+Misses), or 0 when no lookups happened.
func (s StageStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

type statsMap map[string]*StageStats

func (m statsMap) bump(stage string, f func(*StageStats)) {
	s, ok := m[stage]
	if !ok {
		s = &StageStats{}
		m[stage] = s
	}
	f(s)
}

// Stats is a point-in-time copy of the per-stage counters.
type Stats struct {
	Stages map[string]StageStats
}

// Stats snapshots the per-stage counters since construction (or the last
// ResetStats).
func (c *Cache) Stats() Stats {
	out := Stats{Stages: make(map[string]StageStats)}
	if c == nil {
		return out
	}
	c.mu.Lock()
	for name, s := range c.stats {
		out.Stages[name] = *s
	}
	c.mu.Unlock()
	return out
}

// ResetStats zeroes the per-stage counters, keeping the stored entries. Used
// between runs that share one cache to attribute traffic per run.
func (c *Cache) ResetStats() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.stats = make(statsMap)
	c.mu.Unlock()
}

// Total sums the per-stage counters.
func (s Stats) Total() StageStats {
	var t StageStats
	for _, st := range s.Stages {
		t.Hits += st.Hits
		t.Misses += st.Misses
		t.Puts += st.Puts
		t.BytesRead += st.BytesRead
		t.BytesWritten += st.BytesWritten
		t.Evictions += st.Evictions
		t.DiskErrors += st.DiskErrors
	}
	return t
}

// StageNames returns the stages with recorded traffic, sorted.
func (s Stats) StageNames() []string {
	names := make([]string, 0, len(s.Stages))
	for n := range s.Stages {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Sub returns the per-stage difference s - prev, dropping stages with no
// traffic in the interval. Used to attribute counters to one run when a
// cache is shared across runs.
func (s Stats) Sub(prev Stats) Stats {
	out := Stats{Stages: make(map[string]StageStats)}
	for name, cur := range s.Stages {
		p := prev.Stages[name]
		d := StageStats{
			Hits:         cur.Hits - p.Hits,
			Misses:       cur.Misses - p.Misses,
			Puts:         cur.Puts - p.Puts,
			BytesRead:    cur.BytesRead - p.BytesRead,
			BytesWritten: cur.BytesWritten - p.BytesWritten,
			Evictions:    cur.Evictions - p.Evictions,
			DiskErrors:   cur.DiskErrors - p.DiskErrors,
		}
		if d != (StageStats{}) {
			out.Stages[name] = d
		}
	}
	return out
}

// Len returns the number of entries resident in the memory tier.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mem.len()
}
