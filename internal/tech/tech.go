// Package tech holds the process-technology parameters shared by delay,
// capacitance and buffering calculations.
//
// Unit system (chosen so Elmore products come out in picoseconds directly):
//
//	length       µm
//	resistance   kΩ (wire resistance given per µm)
//	capacitance  fF (wire capacitance given per µm)
//	time         ps   (1 kΩ · 1 fF = 1 ps)
//	area         µm²
//
// The default values model a 28 nm process clock routing layer pair; they are
// synthetic (no PDK is available) but calibrated so that net-level wire
// delays, load capacitances and full-flow latencies land in the ranges the
// paper reports (Tables 2, 3, 6, 7).
package tech

// Tech is a process technology description.
type Tech struct {
	Name string

	// RPerUm is wire resistance in kΩ/µm.
	RPerUm float64 // unit: kohm/um
	// CPerUm is wire capacitance in fF/µm.
	CPerUm float64 // unit: fF/um
	// SinkCap is the default flip-flop clock pin capacitance in fF.
	SinkCap float64 // unit: fF
}

// Default28nm returns the synthetic 28 nm-class technology used throughout
// the experiments.
func Default28nm() Tech {
	return Tech{
		Name:    "sim28",
		RPerUm:  0.003, // 3 Ω/µm
		CPerUm:  0.12,  // 0.12 fF/µm
		SinkCap: 1.2,   // fF
	}
}

// WireCap returns the capacitance of length µm of wire, in fF.
//
// unit: length um -> fF
func (t Tech) WireCap(length float64) float64 { return t.CPerUm * length }

// WireRes returns the resistance of length µm of wire, in kΩ.
//
// unit: length um -> kohm
func (t Tech) WireRes(length float64) float64 { return t.RPerUm * length }

// WireElmore returns the Elmore delay in ps of a wire of the given length
// driving the given downstream load (fF): r·L·(c·L/2 + load).
//
// unit: length um, load fF -> ps
func (t Tech) WireElmore(length, load float64) float64 {
	return t.RPerUm * length * (t.CPerUm*length/2 + load)
}
