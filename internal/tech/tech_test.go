package tech

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefault28nmMagnitudes(t *testing.T) {
	tc := Default28nm()
	// 100 µm of wire: a few fF, a fraction of a kΩ, single-digit ps into a
	// small load — the regime all calibration rests on.
	if c := tc.WireCap(100); c < 5 || c > 50 {
		t.Errorf("WireCap(100um) = %g fF out of 28nm range", c)
	}
	if r := tc.WireRes(100); r < 0.05 || r > 2 {
		t.Errorf("WireRes(100um) = %g kOhm out of range", r)
	}
	if d := tc.WireElmore(100, 10); d < 0.5 || d > 40 {
		t.Errorf("WireElmore(100um,10fF) = %g ps out of range", d)
	}
}

func TestWireElmoreProperties(t *testing.T) {
	tc := Default28nm()
	// Quadratic in length, linear in load, zero at zero.
	if tc.WireElmore(0, 50) != 0 {
		t.Error("zero-length wire has delay")
	}
	f := func(l, c float64) bool {
		l = math.Abs(math.Mod(l, 1000))
		c = math.Abs(math.Mod(c, 200))
		// Monotone in both arguments.
		return tc.WireElmore(l+1, c) >= tc.WireElmore(l, c) &&
			tc.WireElmore(l, c+1) >= tc.WireElmore(l, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	// Superposition: delay(L, C) = rL(cL/2 + C) decomposes exactly.
	l, c := 123.0, 17.0
	want := tc.RPerUm * l * (tc.CPerUm*l/2 + c)
	if got := tc.WireElmore(l, c); math.Abs(got-want) > 1e-12 {
		t.Errorf("WireElmore = %g, want %g", got, want)
	}
}
