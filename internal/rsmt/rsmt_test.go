package rsmt

import (
	"math/rand"
	"testing"

	"sllt/internal/geom"
	"sllt/internal/tree"
)

func randomNet(rng *rand.Rand, n int, box float64) *tree.Net {
	net := &tree.Net{Name: "r", Source: geom.Pt(rng.Float64()*box, rng.Float64()*box)}
	used := map[geom.Point]bool{net.Source: true}
	for len(net.Sinks) < n {
		p := geom.Pt(float64(rng.Intn(int(box))), float64(rng.Intn(int(box))))
		if used[p] {
			continue
		}
		used[p] = true
		net.Sinks = append(net.Sinks, tree.PinSink{Name: "s", Loc: p, Cap: 1})
	}
	return net
}

func TestMSTKnown(t *testing.T) {
	// Collinear points: MST is the chain, WL = 10.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(10, 0), geom.Pt(7, 0)}
	if wl := MSTWL(pts); wl != 10 {
		t.Errorf("MST WL = %g, want 10", wl)
	}
}

func TestMSTSquare(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(0, 10), geom.Pt(10, 10)}
	if wl := MSTWL(pts); wl != 30 {
		t.Errorf("square MST WL = %g, want 30", wl)
	}
}

func TestBuildValidTree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		net := randomNet(rng, 2+rng.Intn(30), 100)
		tr := Build(net)
		if err := tr.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := len(tr.Sinks()); got != len(net.Sinks) {
			t.Fatalf("trial %d: %d sinks in tree, want %d", trial, got, len(net.Sinks))
		}
	}
}

// The classic Steiner win: 4 corners of a rectangle plus center-line
// terminals. Steinerization must beat the plain MST.
func TestSteinerBeatsMST(t *testing.T) {
	net := &tree.Net{Source: geom.Pt(0, 0), Sinks: []tree.PinSink{
		{Name: "a", Loc: geom.Pt(10, 10)},
		{Name: "b", Loc: geom.Pt(10, -10)},
		{Name: "c", Loc: geom.Pt(20, 0)},
	}}
	pts := append([]geom.Point{net.Source}, net.SinkPoints()...)
	mstWL := MSTWL(pts)
	tr := Build(net)
	if tr.Wirelength() >= mstWL {
		t.Errorf("steinerized WL %g not better than MST %g", tr.Wirelength(), mstWL)
	}
	// Optimal RSMT here: source-(10,0) trunk + three branches = 40.
	if tr.Wirelength() != 40 {
		t.Errorf("RSMT WL = %g, want 40 (optimal)", tr.Wirelength())
	}
}

func TestSteinerNeverWorseThanMST(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var sumRatio float64
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		net := randomNet(rng, 5+rng.Intn(35), 200)
		pts := append([]geom.Point{net.Source}, net.SinkPoints()...)
		mstWL := MSTWL(pts)
		got := Build(net).Wirelength()
		if got > mstWL+geom.Eps {
			t.Fatalf("trial %d: steinerized WL %g exceeds MST %g", trial, got, mstWL)
		}
		sumRatio += got / mstWL
	}
	// On random instances the heuristic should recover a solid chunk of the
	// ~10-11% RSMT/RMST gap.
	if avg := sumRatio / trials; avg > 0.97 {
		t.Errorf("average WL ratio vs MST = %.4f, expected < 0.97", avg)
	}
}

// Steiner insertion uses component-wise medians, so no source-sink path may
// lengthen relative to the MST routing.
func TestSteinerPreservesPathLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		net := randomNet(rng, 3+rng.Intn(25), 150)
		pts := append([]geom.Point{net.Source}, net.SinkPoints()...)
		parent := MST(pts)
		mst := treeFromParents(net, pts, parent)
		before := sinkPLs(mst, net)
		st := mst.Clone()
		Steinerize(st)
		after := sinkPLs(st, net)
		for i := range before {
			if after[i] > before[i]+geom.Eps {
				t.Fatalf("trial %d: sink %d path grew %g -> %g", trial, i, before[i], after[i])
			}
		}
	}
}

func sinkPLs(t *tree.Tree, net *tree.Net) []float64 {
	out := make([]float64, len(net.Sinks))
	for _, s := range t.Sinks() {
		out[s.SinkIdx] = tree.PathLength(s)
	}
	return out
}

func TestMedian3(t *testing.T) {
	m := median3(geom.Pt(0, 5), geom.Pt(10, 0), geom.Pt(4, 9))
	if !m.Eq(geom.Pt(4, 5)) {
		t.Errorf("median3 = %v, want (4,5)", m)
	}
}

func TestBuildSingleSink(t *testing.T) {
	net := &tree.Net{Source: geom.Pt(0, 0), Sinks: []tree.PinSink{{Name: "a", Loc: geom.Pt(5, 5), Cap: 1}}}
	tr := Build(net)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Wirelength() != 10 {
		t.Errorf("WL = %g, want 10", tr.Wirelength())
	}
}
