// Package rsmt builds rectilinear Steiner minimal trees heuristically. It is
// the repository's substitute for FLUTE: the paper uses FLUTE both as the
// lightest routing topology (Table 1) and as the wirelength reference in the
// lightness metric β ≈ WL(T)/WL(T_FLUTE).
//
// The heuristic is a rectilinear minimum spanning tree followed by greedy
// median-point Steinerization: for adjacent edge pairs (u,a), (u,b), the
// component-wise median s of {u,a,b} lies on rectilinear shortest paths
// between every pair, so replacing the two edges by u–s, s–a, s–b never
// lengthens any path and saves d(u,a)+d(u,b) − d(u,s) − d(s,a) − d(s,b)
// wire. Iterating to a fixed point recovers most of the ~10 % RSMT-vs-RMST
// gap, which is all the β denominator needs.
package rsmt

import (
	"math"

	"sllt/internal/geom"
	"sllt/internal/obs"
	"sllt/internal/tree"
)

// Build returns a rectilinear Steiner tree over the net's source and sinks,
// rooted at the source. Edge lengths equal Manhattan distances (no snaking).
func Build(net *tree.Net) *tree.Tree {
	return BuildK(net, nil)
}

// BuildK is Build with kernel-counter attribution (MST builds and points,
// Steiner insertions, edge-swap moves). A nil kern makes it exactly Build;
// the counters never feed back into any construction decision.
//
// pure:
func BuildK(net *tree.Net, kern *obs.KernelCounters) *tree.Tree {
	if len(net.Sinks)+1 <= hananThreshold {
		t := buildSmall(net)
		SteinerizeK(t, kern)
		ImproveK(t, kern)
		return t
	}
	pts := make([]geom.Point, 0, len(net.Sinks)+1)
	pts = append(pts, net.Source)
	pts = append(pts, net.SinkPoints()...)

	parent := MSTK(pts, kern)
	t := treeFromParents(net, pts, parent)
	SteinerizeK(t, kern)
	ImproveK(t, kern)
	return t
}

// WL returns the wirelength of the heuristic RSMT over the net. It is the β
// denominator used by tree.Measure callers.
func WL(net *tree.Net) float64 { return Build(net).Wirelength() }

// MST computes a minimum spanning tree over pts under Manhattan distance and
// returns the parent index of each point, with parent[0] == -1 (point 0 is
// the root). Below mstGridThreshold it runs the exhaustive O(n²) Prim, which
// is exact and fast for clock-net sizes (tens of pins); above it the
// grid-accelerated Prim takes over, returning the identical parent array
// (see mstGrid) in near-linear time.
//
// pure:
func MST(pts []geom.Point) []int {
	return MSTK(pts, nil)
}

// MSTK is MST with kernel-counter attribution: one MSTBuilds tick, the
// point count into MSTPoints, and (on the grid path) the index's query
// counters. Nil kern makes it exactly MST.
func MSTK(pts []geom.Point, kern *obs.KernelCounters) []int {
	if kern != nil {
		kern.MSTBuilds.Add(1)
		kern.MSTPoints.Add(int64(len(pts)))
	}
	if len(pts) < mstGridThreshold {
		return MSTExhaustive(pts)
	}
	return mstGrid(pts, kern)
}

// MSTExhaustive is the retained O(n²) Prim reference: the lowest-index
// unvisited point among the minima is picked each round, and ties for a
// point's best tree neighbor keep the earliest-added one. MST's grid path is
// defined — and property-tested — as byte-identical to this kernel; it also
// anchors the speedup column of the BENCH_*.json trajectory.
func MSTExhaustive(pts []geom.Point) []int {
	n := len(pts)
	parent := make([]int, n)
	if n == 0 {
		return parent
	}
	inTree := make([]bool, n)
	best := make([]float64, n)
	from := make([]int, n)
	for i := range best {
		best[i] = math.Inf(1)
		from[i] = -1
	}
	parent[0] = -1
	inTree[0] = true
	for i := 1; i < n; i++ {
		best[i] = pts[0].Dist(pts[i])
		from[i] = 0
	}
	for added := 1; added < n; added++ {
		pick := -1
		for i := 0; i < n; i++ {
			if !inTree[i] && (pick < 0 || best[i] < best[pick]) {
				pick = i
			}
		}
		inTree[pick] = true
		parent[pick] = from[pick]
		for i := 0; i < n; i++ {
			if !inTree[i] {
				if d := pts[pick].Dist(pts[i]); d < best[i] {
					best[i] = d
					from[i] = pick
				}
			}
		}
	}
	return parent
}

// MSTWL returns the total Manhattan wirelength of the MST over pts.
func MSTWL(pts []geom.Point) float64 {
	parent := MST(pts)
	var wl float64
	for i, p := range parent {
		if p >= 0 {
			wl += pts[i].Dist(pts[p])
		}
	}
	return wl
}

// MSTTree returns the rooted MST routing tree over the net with no
// Steinerization or local search applied — the shared starting point for the
// Steinerize/Improve kernels and their benchmarks.
func MSTTree(net *tree.Net) *tree.Tree {
	pts := make([]geom.Point, 0, len(net.Sinks)+1)
	pts = append(pts, net.Source)
	pts = append(pts, net.SinkPoints()...)
	return treeFromParents(net, pts, MST(pts))
}

// treeFromParents converts a parent-index array over [source, sinks...] into
// a rooted tree.Tree. Children are attached in a single breadth-first pass
// (O(n), replacing the old repeated-scan loop): bucketing child indices in
// ascending order and draining parents in BFS rounds reproduces exactly the
// child ordering the round-based attachment produced — every node's children
// arrive in ascending point index.
func treeFromParents(net *tree.Net, pts []geom.Point, parent []int) *tree.Tree {
	t := tree.New(net.Source)
	n := len(pts)
	nodes := make([]*tree.Node, n)
	nodes[0] = t.Root
	for i := 1; i < n; i++ {
		nodes[i] = net.SinkNode(i - 1)
	}
	// Bucket children per parent, ascending child index.
	childCount := make([]int32, n)
	for i := 1; i < n; i++ {
		if p := parent[i]; p >= 0 {
			childCount[p]++
		}
	}
	children := make([][]int32, n)
	backing := make([]int32, 0, n-1)
	off := 0
	for p, c := range childCount {
		children[p] = backing[off : off : off+int(c)]
		off += int(c)
	}
	for i := 1; i < n; i++ {
		if p := parent[i]; p >= 0 {
			children[p] = append(children[p], int32(i))
		}
	}
	// BFS from the root; unreachable entries of a malformed parent array are
	// simply never attached, matching the old loop's tolerance.
	queue := make([]int32, 0, n)
	queue = append(queue, 0)
	for head := 0; head < len(queue); head++ {
		p := queue[head]
		for _, c := range children[p] {
			nodes[p].AddChild(nodes[c])
			queue = append(queue, c)
		}
	}
	return t
}

// Steinerize greedily inserts median Steiner points at multi-fanout nodes of
// t until no insertion saves wire. Because every inserted point is the
// component-wise median of the three endpoints, no source-to-sink path
// length increases. The tree is modified in place.
//
// Both sink-parent legality and redundancy cleanup are preserved: Steiner
// insertion only happens below nodes with >= 2 children.
//
// Below steinerQueueThreshold nodes the exhaustive per-move rescan runs
// (retained as SteinerizeReference); above it a candidate priority queue
// applies the same greedy moves while re-evaluating only pairs whose
// endpoints the last accepted move touched.
func Steinerize(t *tree.Tree) {
	SteinerizeK(t, nil)
}

// SteinerizeK is Steinerize with accepted insertions counted into
// kern.SteinerInserts (nil kern: exactly Steinerize).
func SteinerizeK(t *tree.Tree, kern *obs.KernelCounters) {
	tree.LegalizeSinkLeaves(t)
	if countNodes(t) >= steinerQueueThreshold {
		steinerizeQueue(t, kern)
		return
	}
	steinerizeScan(t, kern)
}

// countNodes counts tree nodes without materializing the slice t.Nodes()
// would allocate — the dispatch above only needs the count.
func countNodes(t *tree.Tree) int {
	n := 0
	t.Walk(func(*tree.Node) bool { n++; return true })
	return n
}

// SteinerizeReference is the retained exhaustive kernel: a full-tree rescan
// for the best move after every accepted insertion. It anchors the
// Steinerize equivalence property tests and the BENCH_*.json speedup column.
func SteinerizeReference(t *tree.Tree) {
	tree.LegalizeSinkLeaves(t)
	steinerizeScan(t, nil)
}

func steinerizeScan(t *tree.Tree, kern *obs.KernelCounters) {
	for {
		n, a, b, gain := bestSteinerMove(t)
		if gain <= geom.Eps {
			return
		}
		s := median3(n.Loc, a.Loc, b.Loc)
		a.Detach()
		b.Detach()
		st := tree.NewNode(tree.Steiner, s)
		n.AddChild(st)
		st.AddChild(a)
		st.AddChild(b)
		if kern != nil {
			kern.SteinerInserts.Add(1)
		}
	}
}

// bestSteinerMove scans all (node, child-pair) triples and returns the one
// with the largest wirelength saving.
func bestSteinerMove(t *tree.Tree) (n, a, b *tree.Node, gain float64) {
	t.Walk(func(v *tree.Node) bool {
		for i := 0; i < len(v.Children); i++ {
			for j := i + 1; j < len(v.Children); j++ {
				ca, cb := v.Children[i], v.Children[j]
				s := median3(v.Loc, ca.Loc, cb.Loc)
				g := ca.EdgeLen + cb.EdgeLen -
					(v.Loc.Dist(s) + s.Dist(ca.Loc) + s.Dist(cb.Loc))
				if g > gain {
					n, a, b, gain = v, ca, cb, g
				}
			}
		}
		return true
	})
	return n, a, b, gain
}

// median3 returns the component-wise median of three points: the unique
// point minimizing total Manhattan distance to all three.
//
// hot: alloc-free
func median3(a, b, c geom.Point) geom.Point {
	return geom.Pt(median(a.X, b.X, c.X), median(a.Y, b.Y, c.Y))
}

// median returns the middle of three values.
//
// hot: alloc-free
func median(a, b, c float64) float64 {
	return math.Max(math.Min(a, b), math.Min(math.Max(a, b), c))
}
