package rsmt

import (
	"testing"

	"sllt/internal/geom"
)

// Guard fixtures: presized heap backings (steady-state pushes must land in
// existing capacity) and sinks that keep the compiler from discarding the
// guarded calls.
var (
	guardCandBacking = make([]mstCand, 0, 8)
	guardMoveBacking = make(moveHeap, 0, 8)

	guardSinkB bool
	guardSinkC mstCand
	guardSinkM steinerMove
	guardSinkP geom.Point
	guardSinkF float64
)

// allocFreeGuards pins every // hot: alloc-free kernel in this package at
// zero steady-state allocations, keyed by the kernel's display name. The
// guardcov test in internal/analysis/hotpath checks the map stays in sync
// with the annotations.
var allocFreeGuards = map[string]func(){
	"candLess": func() {
		guardSinkB = candLess(mstCand{d: 1, v: 2}, mstCand{d: 1, v: 3})
	},
	"candPush": func() {
		h := guardCandBacking
		candPush(&h, mstCand{d: 3, v: 1})
		candPush(&h, mstCand{d: 1, v: 2})
	},
	"candPop": func() {
		h := guardCandBacking
		candPush(&h, mstCand{d: 3, v: 1})
		candPush(&h, mstCand{d: 1, v: 2})
		guardSinkC = candPop(&h)
	},
	"median3": func() {
		guardSinkP = median3(geom.Pt(0, 9), geom.Pt(4, 1), geom.Pt(2, 5))
	},
	"median": func() {
		guardSinkF = median(3, 1, 2)
	},
	"moveBefore": func() {
		guardSinkB = moveBefore(steinerMove{gain: 2, seq: 1}, steinerMove{gain: 1, seq: 0})
	},
	"moveSiftDown": func() {
		h := append(guardMoveBacking, steinerMove{gain: 1}, steinerMove{gain: 5, seq: 1}, steinerMove{gain: 3, seq: 2})
		moveSiftDown(h, 0, len(h))
	},
	"moveHeapInit": func() {
		h := append(guardMoveBacking, steinerMove{gain: 1}, steinerMove{gain: 5, seq: 1}, steinerMove{gain: 3, seq: 2})
		moveHeapInit(h)
	},
	"moveHeapPush": func() {
		h := guardMoveBacking
		moveHeapPush(&h, steinerMove{gain: 1})
		moveHeapPush(&h, steinerMove{gain: 5, seq: 1})
	},
	"moveHeapPop": func() {
		h := guardMoveBacking
		moveHeapPush(&h, steinerMove{gain: 1})
		moveHeapPush(&h, steinerMove{gain: 5, seq: 1})
		guardSinkM = moveHeapPop(&h)
	},
}

func TestAllocFreeGuards(t *testing.T) {
	for name, fn := range allocFreeGuards {
		fn() // warm up any first-call growth before measuring
		if n := testing.AllocsPerRun(100, fn); n != 0 {
			t.Errorf("%s allocates %.1f times per op, want 0", name, n)
		}
	}
}
