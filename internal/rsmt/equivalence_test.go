package rsmt

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"sllt/internal/geom"
	"sllt/internal/geom/index"
	"sllt/internal/tree"
)

func randomEquivPts(n int, rng *rand.Rand, integer bool) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		if integer {
			// Small integer coordinates force many exact distance ties,
			// exercising the full (d, v, ord) tie-break chain.
			pts[i] = geom.Pt(float64(rng.Intn(30)), float64(rng.Intn(30)))
		} else {
			pts[i] = geom.Pt(rng.Float64()*500, rng.Float64()*500)
		}
	}
	return pts
}

// TestMSTGridMatchesExhaustive is the tentpole equivalence property: the
// grid-accelerated Prim must reproduce the exhaustive reference's parent
// array element-for-element — ties included — on sizes straddling the
// dispatch threshold.
func TestMSTGridMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{2, 5, 63, 65, 200, 1000} {
		for _, integer := range []bool{false, true} {
			for trial := 0; trial < 3; trial++ {
				pts := randomEquivPts(n, rng, integer)
				ref := MSTExhaustive(pts)
				got := mstGrid(pts, nil)
				for i := range ref {
					if got[i] != ref[i] {
						t.Fatalf("n=%d integer=%v trial=%d: parent[%d]=%d, reference %d",
							n, integer, trial, i, got[i], ref[i])
					}
				}
			}
		}
	}
}

// TestMSTDispatchMatchesExhaustive checks the public MST entry point across
// the threshold (below it the dispatch must literally be the reference).
func TestMSTDispatchMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, n := range []int{0, 1, 2, 40, 64, 500} {
		pts := randomEquivPts(n, rng, false)
		ref := MSTExhaustive(pts)
		got := MST(pts)
		if len(got) != len(ref) {
			t.Fatalf("n=%d: len %d vs %d", n, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("n=%d: parent[%d]=%d, reference %d", n, i, got[i], ref[i])
			}
		}
	}
}

func benchNet(pts []geom.Point) *tree.Net {
	net := &tree.Net{Name: "equiv", Source: pts[0]}
	for i, p := range pts[1:] {
		net.Sinks = append(net.Sinks, tree.PinSink{Name: fmt.Sprintf("s%d", i), Loc: p, Cap: 1})
	}
	return net
}

// TestSteinerizeQueueMatchesReference: the candidate-queue Steinerizer must
// build the same tree (up to sibling order) as the exhaustive rescan. Both
// kernels share the (gain, discovery order) apply rule, so their canonical
// fingerprints must match exactly.
func TestSteinerizeQueueMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{10, 50, 120, 400} {
		for trial := 0; trial < 3; trial++ {
			pts := randomEquivPts(n, rng, false)
			base := MSTTree(benchNet(pts))

			fast := base.Clone()
			tree.LegalizeSinkLeaves(fast)
			steinerizeQueue(fast, nil)

			ref := base.Clone()
			SteinerizeReference(ref)

			if ff, rf := tree.Fingerprint(fast), tree.Fingerprint(ref); ff != rf {
				t.Fatalf("n=%d trial=%d: queue tree != reference tree\nqueue: %.120s\nref:   %.120s",
					n, trial, ff, rf)
			}
			if err := fast.Validate(); err != nil {
				t.Fatalf("n=%d trial=%d: queue tree invalid: %v", n, trial, err)
			}
		}
	}
}

// TestTreeFromParentsLinearAttach: the single-pass attachment must produce a
// valid tree whose child lists are in ascending point order (the invariant
// the old round-based loop established) and identical wirelength to the MST.
func TestTreeFromParentsLinearAttach(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for _, n := range []int{2, 17, 300, 1500} {
		pts := randomEquivPts(n, rng, false)
		net := benchNet(pts)
		tr := MSTTree(net)
		// Raw MST trees may keep sinks internal (legalization happens later
		// in Build), so check the attachment structurally: every point
		// reachable, parent pointers consistent.
		seen := 0
		tr.Walk(func(nd *tree.Node) bool {
			seen++
			for _, c := range nd.Children {
				if c.Parent != nd {
					t.Fatalf("n=%d: broken parent link", n)
				}
			}
			return true
		})
		if seen != n {
			t.Fatalf("n=%d: attached %d nodes", n, seen)
		}
		var mstWL float64
		for i, p := range MST(pts) {
			if p >= 0 {
				mstWL += pts[i].Dist(pts[p])
			}
		}
		if geom.Sign(tr.Wirelength()-mstWL) != 0 {
			t.Fatalf("n=%d: tree WL %g != MST WL %g", n, tr.Wirelength(), mstWL)
		}
		// Same seed, same tree, byte for byte.
		if a, b := tree.Fingerprint(tr), tree.Fingerprint(MSTTree(net)); a != b {
			t.Fatalf("n=%d: MSTTree not deterministic", n)
		}
	}
}

// TestEdgeSwapGridMatchesScanWL: grid-backed edge swapping may pick a
// different equally-near candidate than the scan on exact ties, but both run
// best-first to a local optimum of the same neighborhood, and on tie-free
// random instances the accepted move sequence is identical. Compare trees.
func TestEdgeSwapGridMatchesScanWL(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for trial := 0; trial < 3; trial++ {
		pts := randomEquivPts(150, rng, false)
		base := MSTTree(benchNet(pts))

		a := base.Clone()
		movesScan := edgeSwapScan(a, a.Nodes())
		b := base.Clone()
		movesGrid := edgeSwapGrid(b, b.Nodes(), nil)

		if movesScan != movesGrid {
			t.Fatalf("trial=%d: scan accepted %d moves, grid %d", trial, movesScan, movesGrid)
		}
		if fa, fb := tree.Fingerprint(a), tree.Fingerprint(b); fa != fb {
			t.Fatalf("trial=%d: scan and grid swap trees differ", trial)
		}
	}
}

// TestOctantNeighborsContainMST: Kruskal over the union of every point's
// eight octant-nearest neighbors must reach the exact MST wirelength — the
// sparse-superset theorem the octant query exists to serve.
func TestOctantNeighborsContainMST(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	pts := randomEquivPts(600, rng, false)
	g := index.New(pts)

	type edge struct {
		d    float64
		a, b int
	}
	var edges []edge
	for i, p := range pts {
		for oct := 0; oct < 8; oct++ {
			j, d := g.NearestInOctant(p, oct, func(k int) bool { return k == i })
			if j >= 0 {
				a, b := i, j
				if a > b {
					a, b = b, a
				}
				edges = append(edges, edge{d, a, b})
			}
		}
	}
	sort.Slice(edges, func(x, y int) bool {
		if edges[x].d != edges[y].d {
			return edges[x].d < edges[y].d
		}
		if edges[x].a != edges[y].a {
			return edges[x].a < edges[y].a
		}
		return edges[x].b < edges[y].b
	})
	parent := make([]int, len(pts))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	var kruskalWL float64
	joined := 0
	for _, e := range edges {
		ra, rb := find(e.a), find(e.b)
		if ra != rb {
			parent[ra] = rb
			kruskalWL += e.d
			joined++
		}
	}
	if joined != len(pts)-1 {
		t.Fatalf("octant edge set disconnected: %d joins for %d points", joined, len(pts))
	}
	if ref := MSTWL(pts); geom.Sign(kruskalWL-ref) != 0 {
		t.Fatalf("octant-superset Kruskal WL %g != MST WL %g", kruskalWL, ref)
	}
}

// TestImproveLargeDeterministic: the full Improve stack (grid swaps + queue
// Steinerizer) must be same-input deterministic and only ever reduce
// wirelength.
func TestImproveLargeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	pts := randomEquivPts(250, rng, false)
	base := MSTTree(benchNet(pts))
	before := base.Wirelength()

	a := base.Clone()
	Improve(a)
	b := base.Clone()
	Improve(b)

	if fa, fb := tree.Fingerprint(a), tree.Fingerprint(b); fa != fb {
		t.Fatal("Improve is not deterministic on identical input")
	}
	if a.Wirelength() > before+geom.Eps {
		t.Fatalf("Improve increased WL: %g -> %g", before, a.Wirelength())
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("Improve produced invalid tree: %v", err)
	}
}
