package rsmt

import (
	"sllt/internal/geom"
	"sllt/internal/geom/index"
	"sllt/internal/obs"
	"sllt/internal/tree"
)

// swapGridThreshold is the node count at which edge swapping switches from
// the exhaustive all-pairs scan to grid-backed candidate queries. Flow-level
// cluster nets stay below it, keeping their outputs byte-identical.
const swapGridThreshold = 96

// Improve runs unconstrained wirelength local search on t: alternating
// edge swaps (reattach a subtree to the nearest non-descendant vertex when
// that shortens its incoming edge) with median-point Steinerization, until
// neither pass finds a saving. Every accepted move strictly reduces total
// wirelength, so the loop terminates.
func Improve(t *tree.Tree) {
	ImproveK(t, nil)
}

// ImproveK is Improve with kernel-counter attribution: accepted
// reattachments land in kern.EdgeSwapMoves, each round in
// kern.EdgeSwapPasses, and the Steinerization inserts in
// kern.SteinerInserts (nil kern: exactly Improve).
func ImproveK(t *tree.Tree, kern *obs.KernelCounters) {
	for pass := 0; pass < 16; pass++ {
		moved := edgeSwapOnce(t, kern)
		if kern != nil {
			kern.EdgeSwapPasses.Add(1)
			kern.EdgeSwapMoves.Add(int64(moved))
		}
		SteinerizeK(t, kern)
		tree.RemoveRedundantSteiner(t)
		if moved == 0 {
			return
		}
	}
}

// edgeSwapOnce applies every profitable reattachment it finds, best-first,
// until none remains, and reports the number of accepted moves. Small trees
// run the exhaustive all-pairs scan; large ones answer each vertex's
// best-candidate-parent question with a grid nearest-neighbor query instead
// of a full sweep.
func edgeSwapOnce(t *tree.Tree, kern *obs.KernelCounters) int {
	nodes := t.Nodes()
	if len(nodes) >= swapGridThreshold {
		return edgeSwapGrid(t, nodes, kern)
	}
	return edgeSwapScan(t, nodes)
}

// swapOrder renumbers the tree into order/last: order is the current
// preorder, and a node at position p roots the subtree order[p:last[p]].
// Both slices are reused across iterations — the bookkeeping the old
// implementation rebuilt as fresh maps inside every retry of the inner loop
// is now two O(n) slice passes with zero allocation.
func swapOrder(t *tree.Tree, order []*tree.Node, last []int) ([]*tree.Node, []int) {
	order, last = order[:0], last[:0]
	var number func(n *tree.Node)
	number = func(n *tree.Node) {
		pos := len(order)
		order = append(order, n)
		last = append(last, 0)
		for _, c := range n.Children {
			number(c)
		}
		last[pos] = len(order)
	}
	number(t.Root)
	return order, last
}

// edgeSwapScan is the retained exhaustive kernel: every (vertex, candidate
// parent) pair is scored each round, the single best reattachment applied,
// and the preorder intervals refreshed. Scan order and tie-breaking are
// identical to the original implementation (preorder, first strict
// improvement wins), so outputs are unchanged.
func edgeSwapScan(t *tree.Tree, nodes []*tree.Node) int {
	moves := 0
	order := make([]*tree.Node, 0, len(nodes))
	last := make([]int, 0, len(nodes))
	for {
		order, last = swapOrder(t, order, last)
		var bestV, bestW *tree.Node
		bestGain := geom.Eps
		for vp, v := range order {
			if v.Parent == nil {
				continue
			}
			cur := v.Parent.Loc.Dist(v.Loc)
			for wp, w := range order {
				if w == v.Parent || (wp >= vp && wp < last[vp]) {
					continue
				}
				if gain := cur - w.Loc.Dist(v.Loc); gain > bestGain {
					bestGain, bestV, bestW = gain, v, w
				}
			}
		}
		if bestV == nil {
			break
		}
		bestV.Detach()
		bestW.AddChild(bestV)
		moves++
	}
	if moves > 0 {
		tree.LegalizeSinkLeaves(t)
	}
	return moves
}

// edgeSwapGrid mirrors edgeSwapScan on large trees: for each vertex the best
// candidate parent is by definition the nearest valid vertex (gain = current
// edge − candidate distance), so one expanding-ring query per vertex replaces
// the O(n) sweep. Node locations never change during swapping — moves only
// relink — so the grid is built once per call. Results match the scan except
// for exact-tie candidate choices (grid: lowest build index; scan: first in
// preorder), which is why the fast path sits behind swapGridThreshold.
func edgeSwapGrid(t *tree.Tree, nodes []*tree.Node, kern *obs.KernelCounters) int {
	moves := 0
	locs := make([]geom.Point, len(nodes))
	id := make(map[*tree.Node]int, len(nodes))
	for i, n := range nodes {
		locs[i] = n.Loc
		id[n] = i
	}
	g := index.New(locs)
	g.Kernel = kern
	order := make([]*tree.Node, 0, len(nodes))
	last := make([]int, 0, len(nodes))
	pos := make([]int, len(nodes)) // build index -> current preorder position
	for {
		order, last = swapOrder(t, order, last)
		for p, n := range order {
			pos[id[n]] = p
		}
		var bestV, bestW *tree.Node
		bestGain := geom.Eps
		for vp, v := range order {
			if v.Parent == nil {
				continue
			}
			cur := v.Parent.Loc.Dist(v.Loc)
			if cur-bestGain <= 0 {
				continue // even a zero-length edge cannot beat the incumbent
			}
			parent, sublo, subhi := v.Parent, vp, last[vp]
			j, d := g.Nearest(v.Loc, func(w int) bool {
				if nodes[w] == parent {
					return true
				}
				wp := pos[w]
				return wp >= sublo && wp < subhi
			})
			if j < 0 {
				continue
			}
			if gain := cur - d; gain > bestGain {
				bestGain, bestV, bestW = gain, v, nodes[j]
			}
		}
		if bestV == nil {
			break
		}
		bestV.Detach()
		bestW.AddChild(bestV)
		moves++
	}
	if moves > 0 {
		tree.LegalizeSinkLeaves(t)
	}
	return moves
}
