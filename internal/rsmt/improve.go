package rsmt

import (
	"sllt/internal/geom"
	"sllt/internal/tree"
)

// Improve runs unconstrained wirelength local search on t: alternating
// edge swaps (reattach a subtree to the nearest non-descendant vertex when
// that shortens its incoming edge) with median-point Steinerization, until
// neither pass finds a saving. Every accepted move strictly reduces total
// wirelength, so the loop terminates.
func Improve(t *tree.Tree) {
	for pass := 0; pass < 16; pass++ {
		moved := edgeSwapOnce(t)
		Steinerize(t)
		tree.RemoveRedundantSteiner(t)
		if moved == 0 {
			return
		}
	}
}

// edgeSwapOnce scans all (vertex, candidate-parent) pairs and applies every
// profitable reattachment it finds in one sweep, refreshing subtree
// intervals after each apply.
func edgeSwapOnce(t *tree.Tree) int {
	moves := 0
	for {
		nodes := t.Nodes()
		index := make(map[*tree.Node]int, len(nodes))
		last := make(map[*tree.Node]int, len(nodes))
		i := 0
		var number func(n *tree.Node)
		number = func(n *tree.Node) {
			index[n] = i
			i++
			for _, c := range n.Children {
				number(c)
			}
			last[n] = i
		}
		number(t.Root)
		inSub := func(w, v *tree.Node) bool { return index[w] >= index[v] && index[w] < last[v] }

		var bestV, bestW *tree.Node
		bestGain := geom.Eps
		for _, v := range nodes {
			if v.Parent == nil {
				continue
			}
			cur := v.Parent.Loc.Dist(v.Loc)
			for _, w := range nodes {
				if w == v.Parent || inSub(w, v) {
					continue
				}
				if gain := cur - w.Loc.Dist(v.Loc); gain > bestGain {
					bestGain, bestV, bestW = gain, v, w
				}
			}
		}
		if bestV == nil {
			break
		}
		bestV.Detach()
		bestW.AddChild(bestV)
		moves++
	}
	if moves > 0 {
		tree.LegalizeSinkLeaves(t)
	}
	return moves
}
