package rsmt

import (
	"fmt"
	"math/rand"
	"testing"

	"sllt/internal/geom"
	"sllt/internal/tree"
)

// queueSizedTree builds a steinerized tree big enough to take the candidate
// queue path (>= steinerQueueThreshold nodes).
func queueSizedTree(tb testing.TB, sinks int) *tree.Tree {
	tb.Helper()
	rng := rand.New(rand.NewSource(77))
	net := &tree.Net{Name: "alloc", Source: geom.Pt(250, 250)}
	for i := 0; i < sinks; i++ {
		net.Sinks = append(net.Sinks, tree.PinSink{
			Name: fmt.Sprintf("s%d", i),
			Loc:  geom.Pt(rng.Float64()*500, rng.Float64()*500),
			Cap:  1,
		})
	}
	t := Build(net)
	if countNodes(t) < steinerQueueThreshold {
		tb.Fatalf("tree has %d nodes, need >= %d for the queue path", countNodes(t), steinerQueueThreshold)
	}
	return t
}

// steinerizeQueueAllocCap bounds the steady-state allocations of one
// re-steinerize on an already-optimal tree: zero. The candidate heap backing
// is pooled and the heap code is concrete (no container/heap interface
// traffic), so nothing — not the queue, not the closures, not a boxed pop —
// may allocate once the pool is warm.
const steinerizeQueueAllocCap = 0

// TestSteinerizeQueueAllocs pins the queue kernel's steady-state allocation
// count: re-steinerizing a tree that admits no further moves must not
// allocate the candidate heap anew (backing recycled via moveHeapPool).
func TestSteinerizeQueueAllocs(t *testing.T) {
	tr := queueSizedTree(t, 150)
	Steinerize(tr) // settle: further calls stage candidates but apply none
	avg := testing.AllocsPerRun(50, func() {
		Steinerize(tr)
	})
	if avg > steinerizeQueueAllocCap {
		t.Errorf("re-steinerize allocates %.1f objects/run, cap %d — candidate queue reuse regressed",
			avg, steinerizeQueueAllocCap)
	}
}

// BenchmarkSteinerizeQueueAllocs reports the same quantity for tracking.
func BenchmarkSteinerizeQueueAllocs(b *testing.B) {
	tr := queueSizedTree(b, 150)
	Steinerize(tr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Steinerize(tr)
	}
}
