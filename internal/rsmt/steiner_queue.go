package rsmt

import (
	"container/heap"
	"sync"

	"sllt/internal/geom"
	"sllt/internal/obs"
	"sllt/internal/tree"
)

// steinerQueueThreshold is the node count at which Steinerize switches from
// the exhaustive rescan to the candidate queue. Flow-level cluster nets stay
// below it, keeping their outputs byte-identical to the reference.
const steinerQueueThreshold = 96

// steinerMove is one candidate insertion: children a, b of n replaced by a
// median Steiner point. The gain is fixed while the pair stays valid (it
// depends only on the three locations and the two child edge lengths, all of
// which change only when a reattachment invalidates the pair).
type steinerMove struct {
	gain    float64 // unit: um
	seq     int
	n, a, b *tree.Node
}

// moveHeap is a max-heap on (gain, insertion sequence): the largest saving
// first, ties to the earliest-discovered pair, so the apply order — and
// therefore the final tree — is deterministic.
type moveHeap []steinerMove

func (h moveHeap) Len() int { return len(h) }
func (h moveHeap) Less(i, j int) bool {
	//slltlint:ignore floatcmp exact comparison keeps the deterministic (gain, seq) apply order
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	return h[i].seq < h[j].seq
}
func (h moveHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *moveHeap) Push(x interface{}) { *h = append(*h, x.(steinerMove)) }
func (h *moveHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// steinerizeQueue runs the same greedy loop as steinerizeScan — always apply
// the highest-gain median insertion — but instead of rescanning the whole
// tree after every accepted move it keeps all profitable (node, child-pair)
// candidates in a priority queue. A pop is valid iff both children still
// hang under the node (a lazy-deletion stamp: any move that touched an
// endpoint reparented it, invalidating the entry for free); an applied move
// enqueues only the pairs it created — the new Steiner point with each
// remaining sibling, and the relocated pair beneath it. Gains never change
// while a pair is valid, so the valid heap top is exactly the full rescan's
// best move, and on tie-free inputs the two kernels produce the identical
// tree (the equivalence property test compares canonical forms).
// moveHeapPool recycles candidate-queue backing arrays across calls: the
// flow steinerizes one net per cluster, and the per-call heap allocation
// dominated this kernel's steady-state allocation profile
// (BenchmarkSteinerizeQueueAllocs guards the re-use).
var moveHeapPool = sync.Pool{New: func() any { return new(moveHeap) }}

func steinerizeQueue(t *tree.Tree, kern *obs.KernelCounters) {
	hp := moveHeapPool.Get().(*moveHeap)
	h := (*hp)[:0]
	defer func() {
		// Zero the backing before pooling: a recycled array must not pin
		// nodes of trees the caller has released.
		h = h[:cap(h)]
		for i := range h {
			h[i] = steinerMove{}
		}
		*hp = h[:0]
		moveHeapPool.Put(hp)
	}()
	seq := 0
	stage := func(n, a, b *tree.Node) (steinerMove, bool) {
		s := median3(n.Loc, a.Loc, b.Loc)
		g := a.EdgeLen + b.EdgeLen - (n.Loc.Dist(s) + s.Dist(a.Loc) + s.Dist(b.Loc))
		if g <= geom.Eps {
			return steinerMove{}, false
		}
		m := steinerMove{gain: g, seq: seq, n: n, a: a, b: b}
		seq++
		return m, true
	}
	t.Walk(func(v *tree.Node) bool {
		for i := 0; i < len(v.Children); i++ {
			for j := i + 1; j < len(v.Children); j++ {
				if m, ok := stage(v, v.Children[i], v.Children[j]); ok {
					h = append(h, m)
				}
			}
		}
		return true
	})
	heap.Init(&h)
	for h.Len() > 0 {
		m := heap.Pop(&h).(steinerMove)
		if m.a.Parent != m.n || m.b.Parent != m.n {
			continue // a later move reparented an endpoint; entry is dead
		}
		s := median3(m.n.Loc, m.a.Loc, m.b.Loc)
		m.a.Detach()
		m.b.Detach()
		st := tree.NewNode(tree.Steiner, s)
		m.n.AddChild(st)
		st.AddChild(m.a)
		st.AddChild(m.b)
		if kern != nil {
			kern.SteinerInserts.Add(1)
		}
		// Only pairs with a touched endpoint need (re-)evaluation: the new
		// Steiner child against each surviving sibling, and the moved pair.
		for _, c := range m.n.Children {
			if c == st {
				continue
			}
			if nm, ok := stage(m.n, c, st); ok {
				heap.Push(&h, nm)
			}
		}
		if nm, ok := stage(st, m.a, m.b); ok {
			heap.Push(&h, nm)
		}
	}
}
