package rsmt

import (
	"sync"

	"sllt/internal/geom"
	"sllt/internal/obs"
	"sllt/internal/tree"
)

// steinerQueueThreshold is the node count at which Steinerize switches from
// the exhaustive rescan to the candidate queue. Flow-level cluster nets stay
// below it, keeping their outputs byte-identical to the reference.
const steinerQueueThreshold = 96

// steinerMove is one candidate insertion: children a, b of n replaced by a
// median Steiner point. The gain is fixed while the pair stays valid (it
// depends only on the three locations and the two child edge lengths, all of
// which change only when a reattachment invalidates the pair).
type steinerMove struct {
	gain    float64 // unit: um
	seq     int
	n, a, b *tree.Node
}

// moveHeap is a max-heap on (gain, insertion sequence): the largest saving
// first, ties to the earliest-discovered pair, so the apply order — and
// therefore the final tree — is deterministic. The heap functions are
// hand-rolled concrete code, like mstCand's candPush/candPop: the
// container/heap protocol would take the heap through its interface (the
// slice header escapes) and box every popped steinerMove through
// interface{}, both of which show up as per-op allocations in the
// steady-state guard.
type moveHeap []steinerMove

// moveBefore reports whether a must pop before b: strict (gain desc, seq
// asc) order. seq values are unique per staging, so the order is total and
// the pop sequence is independent of the heap's internal layout.
//
// hot: alloc-free
func moveBefore(a, b steinerMove) bool {
	//slltlint:ignore floatcmp exact comparison keeps the deterministic (gain, seq) apply order
	if a.gain != b.gain {
		return a.gain > b.gain
	}
	return a.seq < b.seq
}

// moveSiftDown restores the heap order below slot i over s[:n].
//
// hot: alloc-free
func moveSiftDown(s moveHeap, i, n int) {
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && moveBefore(s[r], s[l]) {
			m = r
		}
		if !moveBefore(s[m], s[i]) {
			return
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
}

// moveHeapInit heapifies an unordered backing in O(n).
//
// hot: alloc-free
func moveHeapInit(h moveHeap) {
	n := len(h)
	for i := n/2 - 1; i >= 0; i-- {
		moveSiftDown(h, i, n)
	}
}

// moveHeapPush appends m and sifts it up. Steady-state callers push into
// pooled backing with spare capacity, so the append does not grow.
//
// hot: alloc-free
func moveHeapPush(h *moveHeap, m steinerMove) {
	s := append(*h, m)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !moveBefore(s[i], s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
	*h = s
}

// moveHeapPop removes and returns the best move. The vacated tail slot is
// zeroed immediately so the live backing never pins popped moves' nodes.
//
// hot: alloc-free
func moveHeapPop(h *moveHeap) steinerMove {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s[last] = steinerMove{}
	s = s[:last]
	moveSiftDown(s, 0, last)
	*h = s
	return top
}

// moveHeapPool recycles candidate-queue backing arrays across calls: the
// flow steinerizes one net per cluster, and the per-call heap allocation
// dominated this kernel's steady-state allocation profile
// (TestSteinerizeQueueAllocs pins the re-use at zero allocations).
var moveHeapPool = sync.Pool{New: func() any { return new(moveHeap) }}

// steinerizeQueue runs the same greedy loop as steinerizeScan — always apply
// the highest-gain median insertion — but instead of rescanning the whole
// tree after every accepted move it keeps all profitable (node, child-pair)
// candidates in a priority queue. A pop is valid iff both children still
// hang under the node (a lazy-deletion stamp: any move that touched an
// endpoint reparented it, invalidating the entry for free); an applied move
// enqueues only the pairs it created — the new Steiner point with each
// remaining sibling, and the relocated pair beneath it. Gains never change
// while a pair is valid, so the valid heap top is exactly the full rescan's
// best move, and on tie-free inputs the two kernels produce the identical
// tree (the equivalence property test compares canonical forms).
//
// The queue lives on the pooled backing for the whole call — the heap
// functions take the pool's *moveHeap directly, so no local slice header
// ever escapes and a settled re-steinerize performs zero allocations.
//
// hot:
func steinerizeQueue(t *tree.Tree, kern *obs.KernelCounters) {
	hp := moveHeapPool.Get().(*moveHeap)
	*hp = (*hp)[:0]
	defer func() {
		// Zero the backing before pooling: a recycled array must not pin
		// nodes of trees the caller has released.
		s := (*hp)[:cap(*hp)]
		for i := range s {
			s[i] = steinerMove{}
		}
		*hp = s[:0]
		moveHeapPool.Put(hp)
	}()
	seq := 0
	stage := func(n, a, b *tree.Node) (steinerMove, bool) {
		s := median3(n.Loc, a.Loc, b.Loc)
		g := a.EdgeLen + b.EdgeLen - (n.Loc.Dist(s) + s.Dist(a.Loc) + s.Dist(b.Loc))
		if g <= geom.Eps {
			return steinerMove{}, false
		}
		m := steinerMove{gain: g, seq: seq, n: n, a: a, b: b}
		seq++
		return m, true
	}
	t.Walk(func(v *tree.Node) bool {
		for i := 0; i < len(v.Children); i++ {
			for j := i + 1; j < len(v.Children); j++ {
				if m, ok := stage(v, v.Children[i], v.Children[j]); ok {
					*hp = append(*hp, m)
				}
			}
		}
		return true
	})
	moveHeapInit(*hp)
	for len(*hp) > 0 {
		m := moveHeapPop(hp)
		if m.a.Parent != m.n || m.b.Parent != m.n {
			continue // a later move reparented an endpoint; entry is dead
		}
		s := median3(m.n.Loc, m.a.Loc, m.b.Loc)
		m.a.Detach()
		m.b.Detach()
		//lint:ignore hotpath each applied move creates exactly one Steiner node; structural output, not incidental garbage
		st := tree.NewNode(tree.Steiner, s)
		m.n.AddChild(st)
		st.AddChild(m.a)
		st.AddChild(m.b)
		if kern != nil {
			kern.SteinerInserts.Add(1)
		}
		// Only pairs with a touched endpoint need (re-)evaluation: the new
		// Steiner child against each surviving sibling, and the moved pair.
		for _, c := range m.n.Children {
			if c == st {
				continue
			}
			if nm, ok := stage(m.n, c, st); ok {
				moveHeapPush(hp, nm)
			}
		}
		if nm, ok := stage(st, m.a, m.b); ok {
			moveHeapPush(hp, nm)
		}
	}
}
