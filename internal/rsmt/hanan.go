package rsmt

import (
	"sllt/internal/geom"
	"sllt/internal/tree"
)

// hananThreshold bounds the terminal count for which Build upgrades to the
// iterated 1-Steiner construction over the Hanan grid. The O(n⁴)-ish cost
// is negligible below it and the quality gain matters most on small nets
// (Table 1's demonstration net has 9 terminals).
const hananThreshold = 12

// iterated1Steiner repeatedly adds the Hanan-grid candidate that reduces
// the MST over terminals+Steiner points the most, until no candidate helps.
// Returns the chosen Steiner points.
func iterated1Steiner(terms []geom.Point) []geom.Point {
	var xs, ys []float64
	for _, p := range terms {
		xs = append(xs, p.X)
		ys = append(ys, p.Y)
	}
	present := make(map[geom.Point]bool, len(terms))
	for _, p := range terms {
		present[p] = true
	}

	var steiners []geom.Point
	pts := append([]geom.Point(nil), terms...)
	for len(steiners) < len(terms) {
		base := MSTWL(pts)
		var best geom.Point
		bestWL := base - geom.Eps
		for _, x := range xs {
			for _, y := range ys {
				c := geom.Pt(x, y)
				if present[c] {
					continue
				}
				if wl := MSTWL(append(pts, c)); wl < bestWL {
					bestWL, best = wl, c
				}
			}
		}
		if bestWL >= base-geom.Eps {
			break
		}
		steiners = append(steiners, best)
		pts = append(pts, best)
		present[best] = true
	}
	return steiners
}

// buildSmall constructs the routing tree for nets with few terminals using
// iterated 1-Steiner, then converts the MST over terminals+Steiner points
// into a rooted tree.
func buildSmall(net *tree.Net) *tree.Tree {
	terms := append([]geom.Point{net.Source}, net.SinkPoints()...)
	steiners := iterated1Steiner(terms)
	pts := append(append([]geom.Point(nil), terms...), steiners...)
	parent := MST(pts)

	t := tree.New(net.Source)
	nodes := make([]*tree.Node, len(pts))
	nodes[0] = t.Root
	for i := 1; i < len(terms); i++ {
		nodes[i] = net.SinkNode(i - 1)
	}
	for i := len(terms); i < len(pts); i++ {
		nodes[i] = tree.NewNode(tree.Steiner, pts[i])
	}
	attached := make([]bool, len(pts))
	attached[0] = true
	for remaining := len(pts) - 1; remaining > 0; {
		progress := false
		for i := 1; i < len(pts); i++ {
			if !attached[i] && attached[parent[i]] {
				nodes[parent[i]].AddChild(nodes[i])
				attached[i] = true
				remaining--
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	tree.LegalizeSinkLeaves(t)
	tree.RemoveRedundantSteiner(t)
	return t
}
