package rsmt

import (
	"sllt/internal/geom"
	"sllt/internal/geom/index"
	"sllt/internal/obs"
)

// mstGridThreshold is the point count at which MST switches from the
// exhaustive O(n²) Prim to the grid-accelerated variant. Flow-level clock
// nets stay below it (MaxFanout caps clusters at a few dozen pins), so the
// hierarchical flow's outputs are untouched; the fast path serves the
// full-net wirelength references and the 10⁴–10⁵-sink kernel tiers.
const mstGridThreshold = 64

// mstCand is one cut-edge candidate: tree point `from` (added at position
// `ord`) to non-tree point `v` at Manhattan distance d. An entry whose v has
// since joined the tree is stale, and its d is then a lower bound on from's
// true nearest-neighbor distance (removals only eliminate competitors) — it
// gets repaired with a fresh grid query when it surfaces.
type mstCand struct {
	d    float64 // unit: um
	v    int32
	ord  int32
	from int32
}

// candLess orders candidates by (distance, non-tree index, tree-point
// addition order) — exactly the tie rules of the exhaustive Prim: the
// lowest-index unvisited point among the minima is picked, and it attaches
// to the earliest-added tree point at that distance.
//
// hot: alloc-free
func candLess(a, b mstCand) bool {
	//slltlint:ignore floatcmp exact comparisons implement the exhaustive Prim tie order
	if a.d != b.d {
		return a.d < b.d
	}
	if a.v != b.v {
		return a.v < b.v
	}
	return a.ord < b.ord
}

// candPush / candPop are a concrete binary min-heap over mstCand — the
// container/heap protocol would box every candidate through interface{} and
// dispatch every comparison indirectly, which profiles as a measurable slice
// of the MST kernel at the 10⁵ tier. Steady-state pushes land in the spare
// capacity of the caller's presized backing.
//
// hot: alloc-free
func candPush(h *[]mstCand, c mstCand) {
	s := append(*h, c)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !candLess(s[i], s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
	*h = s
}

// candPop removes and returns the heap minimum.
//
// hot: alloc-free
func candPop(h *[]mstCand) mstCand {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	i := 0
	for {
		l := 2*i + 1
		if l >= last {
			break
		}
		m := l
		if r := l + 1; r < last && candLess(s[r], s[l]) {
			m = r
		}
		if !candLess(s[m], s[i]) {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	*h = s
	return top
}

// mstGrid is Prim's algorithm with a removable grid over the non-tree
// points. Each tree point keeps one candidate in the heap: either its exact
// nearest remaining non-tree point (fresh grid query) or a stale lower-bound
// entry left over from an accepted edge. Stale entries are repaired on pop;
// alive entries are exact, so the popped alive minimum is the true minimum
// cut edge, and the heap's tie order reproduces the exhaustive Prim's parent
// array byte-for-byte (property-tested in equivalence_test.go, ties
// included). Deferring the repair this way means most tree points never pay
// a second query: their lower-bound entry sinks and the run ends first.
//
// Expected time is O(n log n) on the near-uniform point sets clock levels
// produce: every accepted edge costs one expanding-ring query plus O(log n)
// heap work, grid compaction keeps ring walks at ~1 live point per cell as
// the set drains, and repairs amortize the same way.
//
// hot:
func mstGrid(pts []geom.Point, kern *obs.KernelCounters) []int {
	n := len(pts)
	parent := make([]int, n)
	if n == 0 {
		return parent
	}
	parent[0] = -1
	if n == 1 {
		return parent
	}
	g := index.NewRemovable(pts)
	g.Kernel = kern
	g.Remove(0)
	inTree := make([]bool, n)
	inTree[0] = true

	h := make([]mstCand, 0, n)
	if j, d := g.Nearest(pts[0], nil); j >= 0 {
		candPush(&h, mstCand{d: d, v: int32(j), ord: 0, from: 0})
	}
	for added := 1; added < n && len(h) > 0; {
		c := candPop(&h)
		if inTree[c.v] {
			// Stale lower bound: repair with an exact query and re-queue.
			if j, d := g.Nearest(pts[c.from], nil); j >= 0 {
				candPush(&h, mstCand{d: d, v: int32(j), ord: c.ord, from: c.from})
			}
			continue
		}
		v := int(c.v)
		parent[v] = int(c.from)
		inTree[v] = true
		g.Remove(v)
		added++
		// The new tree point needs an exact candidate; the extended one keeps
		// its consumed entry as a stale lower bound (v just left the set, so
		// from's next-nearest distance is ≥ c.d).
		if j, d := g.Nearest(pts[v], nil); j >= 0 {
			candPush(&h, mstCand{d: d, v: int32(j), ord: int32(added - 1), from: c.v})
		}
		candPush(&h, c)
	}
	return parent
}
