package partition

import (
	"math/rand"
	"runtime"
	"testing"

	"sllt/internal/geom"
)

// scatter generates a deterministic point cloud large enough to cross the
// minParallelPoints gate so the parallel passes really run.
func scatter(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
	}
	return pts
}

// TestKMeansPWorkersInvariant is the byte-determinism contract of the
// parallel k-means: for every workers value the centers and assignment are
// bit-identical to the serial reference — including the float coordinates,
// which would drift on any reordering of the center-update accumulation.
func TestKMeansPWorkersInvariant(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	runtime.GOMAXPROCS(8)
	pts := scatter(3000, 5)
	const k, iters, seed = 37, 24, 11
	refC, refA := KMeans(pts, k, iters, seed)
	for _, workers := range []int{2, 3, 8} {
		c, a := KMeansP(pts, k, iters, seed, workers)
		for j := range refC {
			if c[j] != refC[j] {
				t.Fatalf("workers=%d: center %d = %v, serial %v", workers, j, c[j], refC[j])
			}
		}
		for i := range refA {
			if a[i] != refA[i] {
				t.Fatalf("workers=%d: assign[%d] = %d, serial %d", workers, i, a[i], refA[i])
			}
		}
	}
}

// TestSilhouettePWorkersInvariant: the fanned-out silhouette score equals
// the serial score exactly (same float), for clusterings with and without
// degenerate singleton clusters.
func TestSilhouettePWorkersInvariant(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	runtime.GOMAXPROCS(8)
	pts := scatter(900, 6)
	const k = 9
	_, assign := KMeans(pts, k, 24, 3)
	// Force a singleton cluster so the undefined-score path is exercised.
	withSingleton := append([]int(nil), assign...)
	for i := range withSingleton {
		if withSingleton[i] == k-1 {
			withSingleton[i] = 0
		}
	}
	withSingleton[0] = k - 1
	for _, a := range [][]int{assign, withSingleton} {
		ref := Silhouette(pts, a, k)
		for _, workers := range []int{2, 5, 8} {
			if got := SilhouetteP(pts, a, k, workers); got != ref {
				t.Fatalf("workers=%d: silhouette %.17g != serial %.17g", workers, got, ref)
			}
		}
	}
}
