package partition

import (
	"container/heap"
	"math"

	"sllt/internal/geom"
	"sllt/internal/obs"
)

// assignMCF solves the capacitated assignment exactly as a min-cost
// max-flow: source → point (cap 1) → center (cap 1, cost = Manhattan
// distance) → sink (cap = cluster capacity). Successive shortest paths with
// Johnson potentials keep every Dijkstra run on non-negative reduced costs.
func assignMCF(pts []geom.Point, centers []geom.Point, cap int, kern *obs.KernelCounters) []int {
	n, k := len(pts), len(centers)
	// Node ids: 0 = source, 1..n = points, n+1..n+k = centers, n+k+1 = sink.
	src, snk := 0, n+k+1
	g := newFlowGraph(n + k + 2)
	for i, p := range pts {
		g.addEdge(src, 1+i, 1, 0)
		for j, c := range centers {
			g.addEdge(1+i, 1+n+j, 1, p.Dist(c))
		}
	}
	for j := 0; j < k; j++ {
		g.addEdge(1+n+j, snk, cap, 0)
	}
	g.minCostFlow(src, snk, n, kern)

	assign := make([]int, n)
	for i := 0; i < n; i++ {
		assign[i] = 0
		for _, eid := range g.adj[1+i] {
			e := &g.edges[eid]
			if e.to >= 1+n && e.to <= n+k && e.cap == 0 {
				assign[i] = e.to - 1 - n
				break
			}
		}
	}
	return assign
}

// flowGraph is a residual-edge min-cost max-flow structure.
type flowGraph struct {
	adj   [][]int // node -> edge ids
	edges []flowEdge
	pot   []float64 // Johnson potentials
}

type flowEdge struct {
	to   int
	cap  int
	cost float64
}

func newFlowGraph(nodes int) *flowGraph {
	return &flowGraph{adj: make([][]int, nodes), pot: make([]float64, nodes)}
}

// addEdge inserts a directed edge and its zero-capacity reverse.
func (g *flowGraph) addEdge(from, to, cap int, cost float64) {
	g.adj[from] = append(g.adj[from], len(g.edges))
	g.edges = append(g.edges, flowEdge{to: to, cap: cap, cost: cost})
	g.adj[to] = append(g.adj[to], len(g.edges))
	g.edges = append(g.edges, flowEdge{to: from, cap: 0, cost: -cost})
}

// minCostFlow pushes up to want units from src to snk along successive
// shortest paths, returning the units sent and total cost.
func (g *flowGraph) minCostFlow(src, snk, want int, kern *obs.KernelCounters) (int, float64) {
	sent := 0
	var total float64
	dist := make([]float64, len(g.adj))
	prevEdge := make([]int, len(g.adj))
	for sent < want {
		// Dijkstra on reduced costs.
		for i := range dist {
			dist[i] = math.Inf(1)
			prevEdge[i] = -1
		}
		dist[src] = 0
		pq := &nodePQ{{src, 0}}
		for pq.Len() > 0 {
			it := heap.Pop(pq).(nodeItem)
			if it.d > dist[it.n] {
				continue
			}
			for _, eid := range g.adj[it.n] {
				e := &g.edges[eid]
				if e.cap <= 0 {
					continue
				}
				nd := it.d + e.cost + g.pot[it.n] - g.pot[e.to]
				if nd < dist[e.to]-1e-12 {
					dist[e.to] = nd
					prevEdge[e.to] = eid
					heap.Push(pq, nodeItem{e.to, nd})
				}
			}
		}
		if math.IsInf(dist[snk], 1) {
			break // saturated
		}
		if kern != nil {
			kern.MCFAugments.Add(1)
		}
		for i := range g.pot {
			if !math.IsInf(dist[i], 1) {
				g.pot[i] += dist[i]
			}
		}
		// Augment one unit (all path capacities here are >= 1 and the
		// bottleneck source edge has capacity 1).
		aug := math.MaxInt32
		for v := snk; v != src; {
			e := &g.edges[prevEdge[v]]
			if e.cap < aug {
				aug = e.cap
			}
			v = g.edges[prevEdge[v]^1].to
		}
		for v := snk; v != src; {
			eid := prevEdge[v]
			g.edges[eid].cap -= aug
			g.edges[eid^1].cap += aug
			total += float64(aug) * g.edges[eid].cost
			v = g.edges[eid^1].to
		}
		sent += aug
	}
	return sent, total
}

type nodeItem struct {
	n int
	d float64
}

type nodePQ []nodeItem

func (q nodePQ) Len() int            { return len(q) }
func (q nodePQ) Less(i, j int) bool  { return q[i].d < q[j].d }
func (q nodePQ) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nodePQ) Push(x interface{}) { *q = append(*q, x.(nodeItem)) }
func (q *nodePQ) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}
