// Package partition implements the paper's §3.2 partition scheme: balanced
// k-means clustering with min-cost-flow sink assignment, silhouette-scored
// cluster quality, the latency/capacitance-adaptive cost
// Cost = p·σ(Cap) + q·σ(T), and simulated-annealing refinement whose local
// moves follow Fig. 4 (convex-hull boundary instances migrate to the
// nearest neighboring net).
package partition

import (
	"math"
	"math/rand"
	"sort"

	"sllt/internal/geom"
)

// KMeans runs Lloyd's algorithm with deterministic farthest-point seeding
// and returns the cluster centers and per-point assignment. k is clamped to
// [1, len(pts)].
func KMeans(pts []geom.Point, k, iters int, seed int64) ([]geom.Point, []int) {
	n := len(pts)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewSource(seed))
	centers := seedCenters(pts, k, rng)
	assign := make([]int, n)
	for it := 0; it < iters; it++ {
		changed := false
		for i, p := range pts {
			best, bd := 0, math.Inf(1)
			for j, c := range centers {
				if d := p.Dist(c); d < bd {
					best, bd = j, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Recompute centers; re-seed empty clusters at the point farthest
		// from its center.
		sx := make([]float64, k)
		sy := make([]float64, k)
		cnt := make([]int, k)
		for i, p := range pts {
			a := assign[i]
			sx[a] += p.X
			sy[a] += p.Y
			cnt[a]++
		}
		for j := 0; j < k; j++ {
			if cnt[j] == 0 {
				centers[j] = farthestPoint(pts, assign, centers)
				changed = true
				continue
			}
			centers[j] = geom.Pt(sx[j]/float64(cnt[j]), sy[j]/float64(cnt[j]))
		}
		if !changed {
			break
		}
	}
	return centers, assign
}

// seedCenters picks k starting centers: the first at the centroid-nearest
// point, the rest by farthest-point traversal — deterministic given rng
// only breaks exact ties.
func seedCenters(pts []geom.Point, k int, rng *rand.Rand) []geom.Point {
	centers := make([]geom.Point, 0, k)
	centers = append(centers, pts[rng.Intn(len(pts))])
	minD := make([]float64, len(pts))
	for i, p := range pts {
		minD[i] = p.Dist(centers[0])
	}
	for len(centers) < k {
		best, bd := 0, -1.0
		for i, d := range minD {
			if d > bd {
				best, bd = i, d
			}
		}
		c := pts[best]
		centers = append(centers, c)
		for i, p := range pts {
			if d := p.Dist(c); d < minD[i] {
				minD[i] = d
			}
		}
	}
	return centers
}

func farthestPoint(pts []geom.Point, assign []int, centers []geom.Point) geom.Point {
	best, bd := 0, -1.0
	for i, p := range pts {
		if d := p.Dist(centers[assign[i]]); d > bd {
			best, bd = i, d
		}
	}
	return pts[best]
}

// Silhouette returns the mean silhouette coefficient of the clustering:
// for each point, (b−a)/max(a,b) with a the mean distance to its own
// cluster and b the smallest mean distance to another cluster. Values near
// 1 indicate compact, well-separated clusters. O(n²); intended for the
// cluster-count selection on moderate instance counts.
func Silhouette(pts []geom.Point, assign []int, k int) float64 {
	n := len(pts)
	if n == 0 || k < 2 {
		return 0
	}
	var total float64
	counted := 0
	for i, p := range pts {
		sum := make([]float64, k)
		cnt := make([]int, k)
		for j, q := range pts {
			if i == j {
				continue
			}
			sum[assign[j]] += p.Dist(q)
			cnt[assign[j]]++
		}
		own := assign[i]
		if cnt[own] == 0 {
			continue // singleton cluster: silhouette undefined, skip
		}
		a := sum[own] / float64(cnt[own])
		b := math.Inf(1)
		for j := 0; j < k; j++ {
			if j == own || cnt[j] == 0 {
				continue
			}
			if m := sum[j] / float64(cnt[j]); m < b {
				b = m
			}
		}
		if math.IsInf(b, 1) {
			continue
		}
		den := math.Max(a, b)
		if den > 0 {
			total += (b - a) / den
			counted++
		}
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}

// BalancedAssign produces an assignment of points to the given centers in
// which no cluster exceeds cap members. Small instances are solved exactly
// as a min-cost flow (a transportation problem); large ones use nearest
// assignment with regret-ordered overflow repair, which is within a few
// percent of optimal in practice and scales to hundred-thousand-sink
// designs.
func BalancedAssign(pts []geom.Point, centers []geom.Point, cap int) []int {
	if cap*len(centers) < len(pts) {
		cap = (len(pts) + len(centers) - 1) / len(centers)
	}
	if len(pts)*len(centers) <= 200_000 {
		return assignMCF(pts, centers, cap)
	}
	return assignGreedyRepair(pts, centers, cap)
}

// assignGreedyRepair assigns each point to its nearest center, then drains
// over-capacity clusters by moving their lowest-regret members (smallest
// extra cost to go elsewhere) to the nearest cluster with slack.
func assignGreedyRepair(pts []geom.Point, centers []geom.Point, cap int) []int {
	n, k := len(pts), len(centers)
	assign := make([]int, n)
	load := make([]int, k)
	for i, p := range pts {
		best, bd := 0, math.Inf(1)
		for j, c := range centers {
			if d := p.Dist(c); d < bd {
				best, bd = j, d
			}
		}
		assign[i] = best
		load[best]++
	}
	for j := 0; j < k; j++ {
		for load[j] > cap {
			// Members of j, ordered by regret ascending.
			type cand struct {
				idx    int
				regret float64
				to     int
			}
			var cands []cand
			for i, p := range pts {
				if assign[i] != j {
					continue
				}
				// Cheapest alternative with slack.
				bestTo, bd := -1, math.Inf(1)
				for jj, c := range centers {
					if jj == j || load[jj] >= cap {
						continue
					}
					if d := p.Dist(c); d < bd {
						bestTo, bd = jj, d
					}
				}
				if bestTo >= 0 {
					cands = append(cands, cand{i, bd - p.Dist(centers[j]), bestTo})
				}
			}
			if len(cands) == 0 {
				break // nowhere to move; give up on strict balance
			}
			sort.Slice(cands, func(a, b int) bool { return cands[a].regret < cands[b].regret })
			move := cands[0]
			assign[move.idx] = move.to
			load[j]--
			load[move.to]++
		}
	}
	return assign
}
