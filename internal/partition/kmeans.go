// Package partition implements the paper's §3.2 partition scheme: balanced
// k-means clustering with min-cost-flow sink assignment, silhouette-scored
// cluster quality, the latency/capacitance-adaptive cost
// Cost = p·σ(Cap) + q·σ(T), and simulated-annealing refinement whose local
// moves follow Fig. 4 (convex-hull boundary instances migrate to the
// nearest neighboring net).
package partition

import (
	"math"
	"math/rand"
	"sort"

	"sllt/internal/geom"
	"sllt/internal/geom/index"
	"sllt/internal/obs"
	"sllt/internal/parallel"
)

// minParallelPoints gates the parallel k-means passes: below this the
// per-level goroutine handoff costs more than the O(n·k) distance scan it
// splits. The gate only affects wall clock, never results — the parallel
// passes are byte-identical to the serial ones by construction.
const minParallelPoints = 2048

// assignGridMinCenters gates the grid-indexed assignment pass: a grid over
// the centers only pays off once the per-point O(k) center sweep it replaces
// is wide enough. The gate affects wall clock only — the grid's
// lowest-index tie rule is exactly the ascending scan's, so assignments are
// byte-identical either way (property-tested, ties included).
const assignGridMinCenters = 24

// seedSampleThreshold is the point count above which farthest-point seeding
// runs on a deterministic stride sample of seedSampleSize points instead of
// the full set, bounding the O(n·k) seeding sweep at 10⁵⁺-sink levels.
// Below the threshold seeding is exhaustive and unchanged.
const (
	seedSampleThreshold = 16384
	seedSampleSize      = 4096
)

// silhouetteExactThreshold is the point count above which Silhouette scores
// a deterministic per-cluster stratified sample of silhouetteSampleTarget
// points instead of running the exact O(n²) scoring. Below it (which
// includes every call the hierarchical flow makes — cts subsamples to 2500
// first) the exact kernel runs, unchanged.
const (
	silhouetteExactThreshold = 4096
	silhouetteSampleTarget   = 2048
)

// KMeans runs Lloyd's algorithm with deterministic farthest-point seeding
// and returns the cluster centers and per-point assignment. k is clamped to
// [1, len(pts)].
func KMeans(pts []geom.Point, k, iters int, seed int64) ([]geom.Point, []int) {
	return KMeansP(pts, k, iters, seed, 1)
}

// KMeansP is KMeans with an indexed worker fan-out over the two O(n·k)
// passes of each Lloyd iteration. Results are identical to KMeans for every
// workers value: the assignment pass is per-point independent, and the
// center-update pass accumulates each cluster's coordinate sums over its
// members in ascending point order — the same float addition sequence the
// serial accumulator performs — before a serial, ascending-j re-seeding
// sweep for empty clusters (whose mid-sweep reads of mixed old/new centers
// are part of the reference semantics).
func KMeansP(pts []geom.Point, k, iters int, seed int64, workers int) ([]geom.Point, []int) {
	return KMeansPK(pts, k, iters, seed, workers, nil)
}

// KMeansPK is KMeansP with kernel-counter attribution: each Lloyd iteration
// bumps kern.KMeansIters and the assignment pass's grid reports its query
// counts, when kern is non-nil. The counters never feed back into the
// algorithm, so KMeansPK(… , nil) and KMeansP are the same function.
//
// pure:
func KMeansPK(pts []geom.Point, k, iters int, seed int64, workers int, kern *obs.KernelCounters) ([]geom.Point, []int) {
	n := len(pts)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	if n < minParallelPoints {
		workers = 1
	}
	rng := rand.New(rand.NewSource(seed))
	centers := seedCenters(pts, k, rng)
	assign := make([]int, n)
	members := make([][]int, k)
	newCenters := make([]geom.Point, k)
	for it := 0; it < iters; it++ {
		if kern != nil {
			kern.KMeansIters.Add(1)
		}
		changed := assignPointsK(pts, centers, assign, workers, kern)

		// Bucket members per cluster, ascending point index (serial O(n)).
		for j := range members {
			members[j] = members[j][:0]
		}
		for i, a := range assign {
			members[a] = append(members[a], i)
		}

		// Center update: per-cluster sums over the member list reproduce the
		// serial accumulator's addition order exactly, so the pass can fan
		// out over clusters.
		parallel.ForEach(workers, k, func(j int) error {
			mem := members[j]
			if len(mem) == 0 {
				return nil
			}
			var sx, sy float64
			for _, i := range mem {
				sx += pts[i].X
				sy += pts[i].Y
			}
			newCenters[j] = geom.Pt(sx/float64(len(mem)), sy/float64(len(mem)))
			return nil
		})

		// Serial apply + empty-cluster re-seeding in ascending j: an empty
		// cluster's farthest-point probe sees centers[0..j-1] updated and
		// centers[j..] stale, exactly like the fused serial loop did.
		for j := 0; j < k; j++ {
			if len(members[j]) == 0 {
				centers[j] = farthestPoint(pts, assign, centers)
				changed = true
				continue
			}
			centers[j] = newCenters[j]
		}
		if !changed {
			break
		}
	}
	return centers, assign
}

// assignPoints writes each point's nearest-center index into assign and
// reports whether any assignment changed. Each point's answer is
// independent of every other's, so the pass partitions into contiguous
// chunks; per-chunk change flags are OR-reduced after the fan-out.
func assignPoints(pts []geom.Point, centers []geom.Point, assign []int, workers int) bool {
	return assignPointsK(pts, centers, assign, workers, nil)
}

// assignPointsK is assignPoints with optional kernel-counter attribution on
// the center grid's queries.
//
// hot:
func assignPointsK(pts []geom.Point, centers []geom.Point, assign []int, workers int, kern *obs.KernelCounters) bool {
	n := len(pts)
	workers = parallel.Clamp(workers)
	// A grid over the centers answers each point's nearest-center query in
	// near-constant time with the scan's exact lowest-index tie rule, so the
	// indexed pass is byte-identical to the exhaustive one. The grid is
	// built once here and only read inside the fan-out.
	var g *index.Grid
	if len(centers) >= assignGridMinCenters && n >= minParallelPoints {
		g = index.New(centers)
		g.Kernel = kern
	}
	if workers == 1 {
		return assignRange(pts, centers, assign, 0, n, g)
	}
	chunks := workers * 4
	if chunks > n {
		chunks = n
	}
	chg := make([]bool, chunks)
	parallel.ForEach(workers, chunks, func(c int) error {
		lo, hi := c*n/chunks, (c+1)*n/chunks
		chg[c] = assignRange(pts, centers, assign, lo, hi, g)
		return nil
	})
	for _, c := range chg {
		if c {
			return true
		}
	}
	return false
}

// AssignPoints writes each point's nearest-center index (lowest index on
// exact ties) into assign and reports whether any entry changed. Exported
// for the kernel benchmarks; KMeansP uses the same pass internally.
func AssignPoints(pts []geom.Point, centers []geom.Point, assign []int, workers int) bool {
	return assignPoints(pts, centers, assign, workers)
}

// AssignPointsExhaustive is the retained O(n·k) reference assignment pass,
// the oracle the grid-indexed pass is property-tested against and the
// baseline of the BENCH_*.json speedup column.
func AssignPointsExhaustive(pts []geom.Point, centers []geom.Point, assign []int) bool {
	return assignRange(pts, centers, assign, 0, len(pts), nil)
}

// assignRange is the serial kernel of the assignment pass over pts[lo:hi].
// With a grid it queries the center index; without it, the ascending scan.
//
// hot: alloc-free
func assignRange(pts []geom.Point, centers []geom.Point, assign []int, lo, hi int, g *index.Grid) bool {
	changed := false
	for i := lo; i < hi; i++ {
		p := pts[i]
		best := 0
		if g != nil {
			best, _ = g.Nearest(p, nil)
		} else {
			bd := math.Inf(1)
			for j, c := range centers {
				if d := p.Dist(c); d < bd {
					best, bd = j, d
				}
			}
		}
		if assign[i] != best {
			assign[i] = best
			changed = true
		}
	}
	return changed
}

// seedCenters picks k starting centers: the first at an rng-chosen point,
// the rest by farthest-point traversal — deterministic given rng only
// breaks exact ties. Above seedSampleThreshold points the traversal runs on
// a deterministic stride sample (the first center is still drawn from the
// full set with the same single rng call, so the rng stream downstream is
// unaffected); below it the pass is exhaustive and unchanged.
func seedCenters(pts []geom.Point, k int, rng *rand.Rand) []geom.Point {
	first := pts[rng.Intn(len(pts))]
	pool := pts
	// Keep the sample at least 4× the center count so the traversal never
	// runs out of distinct candidates.
	if target := max(seedSampleSize, 4*k); len(pts) >= seedSampleThreshold && len(pts) > target {
		stride := (len(pts) + target - 1) / target
		if stride > 1 {
			pool = make([]geom.Point, 0, len(pts)/stride+1)
			for i := 0; i < len(pts); i += stride {
				pool = append(pool, pts[i])
			}
		}
	}
	centers := make([]geom.Point, 0, k)
	centers = append(centers, first)
	minD := make([]float64, len(pool))
	for i, p := range pool {
		minD[i] = p.Dist(centers[0])
	}
	for len(centers) < k {
		best, bd := 0, -1.0
		for i, d := range minD {
			if d > bd {
				best, bd = i, d
			}
		}
		c := pool[best]
		centers = append(centers, c)
		for i, p := range pool {
			if d := p.Dist(c); d < minD[i] {
				minD[i] = d
			}
		}
	}
	return centers
}

// farthestPoint returns the point farthest from its assigned center, the
// re-seeding probe for emptied clusters.
//
// hot: alloc-free
func farthestPoint(pts []geom.Point, assign []int, centers []geom.Point) geom.Point {
	best, bd := 0, -1.0
	for i, p := range pts {
		if d := p.Dist(centers[assign[i]]); d > bd {
			best, bd = i, d
		}
	}
	return pts[best]
}

// Silhouette returns the mean silhouette coefficient of the clustering:
// for each point, (b−a)/max(a,b) with a the mean distance to its own
// cluster and b the smallest mean distance to another cluster. Values near
// 1 indicate compact, well-separated clusters. O(n²); intended for the
// cluster-count selection on moderate instance counts.
func Silhouette(pts []geom.Point, assign []int, k int) float64 {
	return SilhouetteP(pts, assign, k, 1)
}

// SilhouetteP is Silhouette with the O(n²) per-point scoring fanned out
// over workers. Each point's coefficient is an independent function of the
// whole point set, so tasks write only their own slot; the mean is then
// reduced serially in point order, giving the exact float result of the
// serial loop for every workers value.
//
// Above silhouetteExactThreshold points the score is a deterministic
// stratified-sample estimate: every cluster contributes a stride sample
// proportional to its size, and the exact kernel runs on the sample. Below
// the threshold the result is exact.
//
// pure:
func SilhouetteP(pts []geom.Point, assign []int, k, workers int) float64 {
	if len(pts) > silhouetteExactThreshold {
		sp, sa := stratifiedSample(pts, assign, k, silhouetteSampleTarget)
		return SilhouetteExact(sp, sa, k, workers)
	}
	return SilhouetteExact(pts, assign, k, workers)
}

// SilhouetteExact is the retained exact O(n²) scorer, with the same worker
// fan-out as SilhouetteP but no sampling at any size. It is the oracle for
// the estimator's tests and the baseline of the BENCH_*.json speedup column.
//
// hot:
func SilhouetteExact(pts []geom.Point, assign []int, k, workers int) float64 {
	n := len(pts)
	if n == 0 || k < 2 {
		return 0
	}
	const unscored = math.MaxFloat64 // sentinel: point contributes nothing
	scores := make([]float64, n)
	// Chunked fan-out so the O(k) scoring scratch is allocated once per chunk
	// instead of once per point (the 2500-point flow call used to pay 2·n
	// slice allocations here). Each scores[i] is an independent function of
	// (pts, assign) and the scratch is fully reinitialized per point, so the
	// result is float-identical to the per-point fan-out for every workers
	// value.
	chunks := parallel.Clamp(workers) * 4
	if chunks > n {
		chunks = n
	}
	parallel.ForEach(workers, chunks, func(c int) error {
		//lint:ignore hotpath per-chunk scoring scratch: two k-sized slices per chunk, amortized over n/chunks points
		sum, cnt := make([]float64, k), make([]int, k)
		for i := c * n / chunks; i < (c+1)*n/chunks; i++ {
			scores[i] = silhouetteOf(pts, assign, k, i, sum, cnt)
		}
		return nil
	})
	var total float64
	counted := 0
	for _, s := range scores {
		if s == unscored {
			continue
		}
		total += s
		counted++
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}

// stratifiedSample picks ~target points, each cluster contributing a stride
// sample (ascending member order) proportional to its share of the points.
// Fully deterministic: no randomness, and the returned points keep their
// ascending original order so downstream float reductions are stable.
func stratifiedSample(pts []geom.Point, assign []int, k, target int) ([]geom.Point, []int) {
	n := len(pts)
	if n <= target {
		return pts, assign
	}
	members := make([][]int32, k)
	for i, a := range assign {
		members[a] = append(members[a], int32(i))
	}
	picked := make([]int32, 0, target+k)
	for _, mem := range members {
		if len(mem) == 0 {
			continue
		}
		want := (len(mem)*target + n - 1) / n // ceil: every cluster is represented
		stride := (len(mem) + want - 1) / want
		for i := 0; i < len(mem); i += stride {
			picked = append(picked, mem[i])
		}
	}
	sort.Slice(picked, func(a, b int) bool { return picked[a] < picked[b] })
	sp := make([]geom.Point, len(picked))
	sa := make([]int, len(picked))
	for i, idx := range picked {
		sp[i] = pts[idx]
		sa[i] = assign[idx]
	}
	return sp, sa
}

// silhouetteOf computes point i's silhouette coefficient, or the unscored
// sentinel when it is undefined (singleton cluster, no other cluster, or a
// degenerate zero denominator). sum and cnt are caller-provided k-sized
// scratch, reinitialized here so reuse across points cannot leak state.
//
// hot: alloc-free
func silhouetteOf(pts []geom.Point, assign []int, k, i int, sum []float64, cnt []int) float64 {
	for j := 0; j < k; j++ {
		sum[j], cnt[j] = 0, 0
	}
	p := pts[i]
	for j, q := range pts {
		if i == j {
			continue
		}
		sum[assign[j]] += p.Dist(q)
		cnt[assign[j]]++
	}
	own := assign[i]
	if cnt[own] == 0 {
		return math.MaxFloat64 // singleton cluster: silhouette undefined, skip
	}
	a := sum[own] / float64(cnt[own])
	b := math.Inf(1)
	for j := 0; j < k; j++ {
		if j == own || cnt[j] == 0 {
			continue
		}
		if m := sum[j] / float64(cnt[j]); m < b {
			b = m
		}
	}
	if math.IsInf(b, 1) {
		return math.MaxFloat64
	}
	den := math.Max(a, b)
	if den <= 0 {
		return math.MaxFloat64
	}
	return (b - a) / den
}

// BalancedAssign produces an assignment of points to the given centers in
// which no cluster exceeds cap members. Small instances are solved exactly
// as a min-cost flow (a transportation problem); large ones use nearest
// assignment with regret-ordered overflow repair, which is within a few
// percent of optimal in practice and scales to hundred-thousand-sink
// designs.
func BalancedAssign(pts []geom.Point, centers []geom.Point, cap int) []int {
	assign, _ := BalancedAssignK(pts, centers, cap, nil)
	return assign
}

// BalancedAssignK is BalancedAssign with run-report attribution: it also
// returns which solver ran ("mcf" or "greedy"), and the flow solver bumps
// kern.MCFAugments per augmenting path when kern is non-nil.
//
// pure:
func BalancedAssignK(pts []geom.Point, centers []geom.Point, cap int, kern *obs.KernelCounters) ([]int, string) {
	if cap*len(centers) < len(pts) {
		cap = (len(pts) + len(centers) - 1) / len(centers)
	}
	if len(pts)*len(centers) <= 200_000 {
		return assignMCF(pts, centers, cap, kern), "mcf"
	}
	return assignGreedyRepair(pts, centers, cap), "greedy"
}

// assignGreedyRepair assigns each point to its nearest center, then drains
// over-capacity clusters by moving their lowest-regret members (smallest
// extra cost to go elsewhere) to the nearest cluster with slack.
func assignGreedyRepair(pts []geom.Point, centers []geom.Point, cap int) []int {
	n, k := len(pts), len(centers)
	assign := make([]int, n)
	load := make([]int, k)
	for i, p := range pts {
		best, bd := 0, math.Inf(1)
		for j, c := range centers {
			if d := p.Dist(c); d < bd {
				best, bd = j, d
			}
		}
		assign[i] = best
		load[best]++
	}
	for j := 0; j < k; j++ {
		for load[j] > cap {
			// Members of j, ordered by regret ascending.
			type cand struct {
				idx    int
				regret float64
				to     int
			}
			var cands []cand
			for i, p := range pts {
				if assign[i] != j {
					continue
				}
				// Cheapest alternative with slack.
				bestTo, bd := -1, math.Inf(1)
				for jj, c := range centers {
					if jj == j || load[jj] >= cap {
						continue
					}
					if d := p.Dist(c); d < bd {
						bestTo, bd = jj, d
					}
				}
				if bestTo >= 0 {
					cands = append(cands, cand{i, bd - p.Dist(centers[j]), bestTo})
				}
			}
			if len(cands) == 0 {
				break // nowhere to move; give up on strict balance
			}
			sort.Slice(cands, func(a, b int) bool { return cands[a].regret < cands[b].regret })
			move := cands[0]
			assign[move.idx] = move.to
			load[j]--
			load[move.to]++
		}
	}
	return assign
}
