package partition

import (
	"math"
	"math/rand"
	"testing"

	"sllt/internal/geom"
)

// fourBlobs returns points in four well-separated clusters.
func fourBlobs(rng *rand.Rand, per int) []geom.Point {
	centers := []geom.Point{geom.Pt(0, 0), geom.Pt(100, 0), geom.Pt(0, 100), geom.Pt(100, 100)}
	var pts []geom.Point
	for _, c := range centers {
		for i := 0; i < per; i++ {
			pts = append(pts, geom.Pt(c.X+rng.Float64()*10, c.Y+rng.Float64()*10))
		}
	}
	return pts
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	pts := fourBlobs(rng, 25)
	_, assign := KMeans(pts, 4, 50, 1)
	// All points of one blob must share a cluster.
	for b := 0; b < 4; b++ {
		want := assign[b*25]
		for i := b * 25; i < (b+1)*25; i++ {
			if assign[i] != want {
				t.Fatalf("blob %d split across clusters", b)
			}
		}
	}
	// And the four blobs use four distinct clusters.
	seen := map[int]bool{}
	for b := 0; b < 4; b++ {
		seen[assign[b*25]] = true
	}
	if len(seen) != 4 {
		t.Fatalf("blobs merged: %d clusters used", len(seen))
	}
}

func TestKMeansDegenerate(t *testing.T) {
	pts := []geom.Point{geom.Pt(1, 1), geom.Pt(2, 2)}
	centers, assign := KMeans(pts, 5, 10, 1)
	if len(centers) != 2 {
		t.Errorf("k clamped to %d, want 2", len(centers))
	}
	_, assign = KMeans(pts, 1, 10, 1)
	if assign[0] != 0 || assign[1] != 0 {
		t.Error("k=1 should put everything in cluster 0")
	}
}

func TestSilhouette(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	pts := fourBlobs(rng, 20)
	_, good := KMeans(pts, 4, 50, 1)
	sGood := Silhouette(pts, good, 4)
	if sGood < 0.7 {
		t.Errorf("silhouette of clean blobs = %.3f, want > 0.7", sGood)
	}
	// A deliberately bad clustering (round-robin) must score far lower.
	bad := make([]int, len(pts))
	for i := range bad {
		bad[i] = i % 4
	}
	if sBad := Silhouette(pts, bad, 4); sBad >= sGood {
		t.Errorf("round-robin silhouette %.3f >= clean %.3f", sBad, sGood)
	}
}

func TestBalancedAssignRespectsCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	pts := fourBlobs(rng, 30) // 120 points
	centers, _ := KMeans(pts, 6, 30, 1)
	for _, cap := range []int{20, 25, 40} {
		assign := BalancedAssign(pts, centers, cap)
		load := map[int]int{}
		for _, a := range assign {
			load[a]++
		}
		for j, l := range load {
			if l > cap {
				t.Errorf("cap %d: cluster %d has %d members", cap, j, l)
			}
		}
	}
}

// The MCF assignment must beat (or match) greedy repair on total distance —
// it is exact.
func TestMCFBeatsGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	for trial := 0; trial < 10; trial++ {
		n := 40 + rng.Intn(40)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
		}
		k := 4 + rng.Intn(3)
		centers, _ := KMeans(pts, k, 20, 2)
		cap := n/k + 1
		cost := func(assign []int) float64 {
			var c float64
			for i, a := range assign {
				c += pts[i].Dist(centers[a])
			}
			return c
		}
		mcf := assignMCF(pts, centers, cap, nil)
		greedy := assignGreedyRepair(pts, centers, cap)
		if cost(mcf) > cost(greedy)+1e-6 {
			t.Fatalf("trial %d: MCF cost %.2f worse than greedy %.2f", trial, cost(mcf), cost(greedy))
		}
		load := map[int]int{}
		for _, a := range mcf {
			load[a]++
		}
		for j, l := range load {
			if l > cap {
				t.Fatalf("trial %d: MCF overloaded cluster %d (%d > %d)", trial, j, l, cap)
			}
		}
	}
}

// Forced-contention instance where pure nearest-assignment must violate
// capacity: MCF finds the optimal capacitated split.
func TestMCFForcedContention(t *testing.T) {
	// 4 points near center A, capacity 2: two must go to B.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1), geom.Pt(1, 1)}
	centers := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)}
	assign := assignMCF(pts, centers, 2, nil)
	loadA := 0
	for _, a := range assign {
		if a == 0 {
			loadA++
		}
	}
	if loadA != 2 {
		t.Fatalf("loadA = %d, want 2 (capacity binding)", loadA)
	}
	// Optimal: the two points nearest B's direction (x=1) move.
	if assign[0] != 0 || assign[2] != 0 {
		t.Errorf("wrong points moved: %v", assign)
	}
}

func TestRefineSAImprovesCost(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	pts := fourBlobs(rng, 25)
	caps := make([]float64, len(pts))
	for i := range caps {
		caps[i] = 1.2
	}
	// Start from a deliberately scrambled assignment.
	assign := make([]int, len(pts))
	for i := range assign {
		assign[i] = rng.Intn(4)
	}
	opt := DefaultSAOptions(1)
	opt.Iters = 1500
	before := newSAState(pts, caps, 4, assign, opt).Cost()
	refined := RefineSA(pts, caps, 4, assign, opt)
	after := newSAState(pts, caps, 4, refined, opt).Cost()
	if after >= before {
		t.Errorf("SA did not improve cost: %.2f -> %.2f", before, after)
	}
}

func TestRefineSAKeepsAllPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	pts := fourBlobs(rng, 20)
	caps := make([]float64, len(pts))
	for i := range caps {
		caps[i] = 1
	}
	centers, assign := KMeans(pts, 4, 30, 1)
	_ = centers
	opt := DefaultSAOptions(2)
	opt.Iters = 300
	refined := RefineSA(pts, caps, 4, assign, opt)
	if len(refined) != len(pts) {
		t.Fatal("assignment length changed")
	}
	for i, a := range refined {
		if a < 0 || a >= 4 {
			t.Fatalf("point %d assigned to invalid cluster %d", i, a)
		}
	}
}

func TestVariance(t *testing.T) {
	if v := variance([]float64{2, 2, 2}); v != 0 {
		t.Errorf("constant variance = %g", v)
	}
	if v := variance([]float64{0, 2}); math.Abs(v-1) > 1e-12 {
		t.Errorf("variance = %g, want 1", v)
	}
	if v := variance(nil); v != 0 {
		t.Errorf("empty variance = %g", v)
	}
}
