package partition

import (
	"math"
	"math/rand"
	"sort"

	"sllt/internal/geom"
	"sllt/internal/geom/index"
	"sllt/internal/obs"
)

// saGridThreshold is the instance count at which the annealer's
// nearest-other-net query switches from the all-members scan to a grid
// expanding-ring query. Below it (every level the golden-path designs
// produce) the scan runs unchanged; above it the grid keeps each move
// near-O(1) instead of O(n). The two resolve exact distance ties
// differently (scan: lowest cluster then member order; grid: lowest
// instance index), which is why the fast path sits behind the threshold.
const saGridThreshold = 2048

// SAOptions configures simulated-annealing partition refinement.
type SAOptions struct {
	Iters int
	Seed  int64
	// P and Q weight the capacitance and delay variances in the paper's
	// Cost = p·σ(Cap) + q·σ(T) metric.
	P, Q float64
	// CPerUm converts estimated net wirelength to capacitance, making
	// capacitance the unified violation metric (§3.2).
	CPerUm float64
	// MaxCap, MaxWL, MaxFanout are the per-net constraints (Table 5);
	// violations are charged as equivalent capacitance.
	MaxCap    float64
	MaxWL     float64
	MaxFanout int
	// InitTemp is the starting temperature; 0 picks a default from the
	// initial cost.
	InitTemp float64
	// Stats, when non-nil, receives the run's move counts. RefineSA is
	// called from the serial level loop, so plain ints suffice.
	Stats *SAStats
	// Kernel, when non-nil, receives the same counts as atomic kernel
	// counters (plus the instance grid's query counters on large levels).
	// Neither sink feeds back into any decision.
	Kernel *obs.KernelCounters
}

// SAStats reports one RefineSA run's annealing activity.
type SAStats struct {
	Proposed int // moves attempted (a hull instance found a target net)
	Accepted int // moves kept by the annealing rule
}

// DefaultSAOptions returns the options used by the hierarchical flow.
func DefaultSAOptions(seed int64) SAOptions {
	return SAOptions{
		Iters: 400, Seed: seed,
		P: 1, Q: 1,
		CPerUm: 0.12, MaxCap: 150, MaxWL: 300, MaxFanout: 32,
	}
}

// clusterState tracks incremental cluster statistics during annealing.
//
// Members are held as a sorted index slice, not a map: SA refinement walks
// the membership when rebuilding bounding boxes, picking hull instances and
// scanning for nearest nets, and map iteration order would make those walks
// — and therefore the refined assignment — vary from run to run under the
// same seed.
type clusterState struct {
	members []int // instance indices, sorted ascending
	capSum  float64
	bbox    geom.Rect
	cx, cy  float64 // coordinate sums for the centroid

	// Memoized per-cluster geometry, recomputed lazily from the member set
	// after a membership change. Both derive deterministically from the
	// sorted members, so a cached value is bit-identical to a recompute —
	// the caches change wall clock, never results.
	hull   []geom.Point // convex hull of member locations; nil when stale
	radius float64      // unit: um // netDelayProxy value; < 0 when stale
}

// insert adds i to the sorted member set (no-op if present).
func (c *clusterState) insert(i int) {
	pos := sort.SearchInts(c.members, i)
	if pos < len(c.members) && c.members[pos] == i {
		return
	}
	c.members = append(c.members, 0)
	copy(c.members[pos+1:], c.members[pos:])
	c.members[pos] = i
	c.hull, c.radius = nil, -1
}

// remove deletes i from the sorted member set (no-op if absent).
func (c *clusterState) remove(i int) {
	pos := sort.SearchInts(c.members, i)
	if pos >= len(c.members) || c.members[pos] != i {
		return
	}
	c.members = append(c.members[:pos], c.members[pos+1:]...)
	c.hull, c.radius = nil, -1
}

// saState is the annealing state over a whole partition.
type saState struct {
	pts      []geom.Point
	caps     []float64
	assign   []int
	clusters []*clusterState
	opt      SAOptions
	// grid indexes the (fixed) instance locations for nearestOtherNet on
	// large levels; nil below saGridThreshold. Moves change only assign, so
	// the index never needs rebuilding.
	grid *index.Grid
}

func newSAState(pts []geom.Point, caps []float64, k int, assign []int, opt SAOptions) *saState {
	st := &saState{pts: pts, caps: caps, assign: append([]int(nil), assign...), opt: opt}
	st.clusters = make([]*clusterState, k)
	for j := range st.clusters {
		st.clusters[j] = &clusterState{bbox: geom.EmptyRect(), radius: -1}
	}
	for i := range pts {
		st.addTo(assign[i], i)
	}
	if len(pts) >= saGridThreshold {
		st.grid = index.New(pts)
		st.grid.Kernel = opt.Kernel
	}
	return st
}

func (st *saState) addTo(j, i int) {
	c := st.clusters[j]
	c.insert(i)
	c.capSum += st.caps[i]
	c.bbox = c.bbox.Grow(st.pts[i])
	c.cx += st.pts[i].X
	c.cy += st.pts[i].Y
	st.assign[i] = j
}

func (st *saState) removeFrom(j, i int) {
	c := st.clusters[j]
	c.remove(i)
	c.capSum -= st.caps[i]
	c.cx -= st.pts[i].X
	c.cy -= st.pts[i].Y
	// bbox must be rebuilt after removal.
	c.bbox = geom.EmptyRect()
	for _, m := range c.members {
		c.bbox = c.bbox.Grow(st.pts[m])
	}
}

// netCap estimates a cluster net's total capacitance: pins plus wire at the
// HPWL-based length estimate.
func (st *saState) netCap(j int) float64 {
	c := st.clusters[j]
	return c.capSum + st.opt.CPerUm*st.netWL(j)
}

// netWL estimates routed wirelength as 1.2 × bounding-box half-perimeter, a
// standard pre-route estimate.
func (st *saState) netWL(j int) float64 {
	return 1.2 * st.clusters[j].bbox.HalfPerimeter()
}

// netDelayProxy is the T_j term: the cluster radius (max member distance
// from the centroid), which tracks the net's max driver-to-sink delay. The
// value is memoized on the cluster: Cost() evaluates every cluster each
// annealing move, but only the two clusters the move touched changed.
func (st *saState) netDelayProxy(j int) float64 {
	c := st.clusters[j]
	if c.radius >= 0 {
		return c.radius
	}
	n := len(c.members)
	if n == 0 {
		c.radius = 0
		return 0
	}
	ctr := geom.Pt(c.cx/float64(n), c.cy/float64(n))
	var r float64
	for _, m := range c.members {
		if d := st.pts[m].Dist(ctr); d > r {
			r = d
		}
	}
	c.radius = r
	return r
}

// Cost evaluates the paper's partition metric over the current state:
// p·σ(Cap) + q·σ(T) plus capacitance-unified constraint violations.
func (st *saState) Cost() float64 {
	k := len(st.clusters)
	capV := make([]float64, 0, k)
	tV := make([]float64, 0, k)
	var viol float64
	for j := range st.clusters {
		if len(st.clusters[j].members) == 0 {
			continue
		}
		nc := st.netCap(j)
		capV = append(capV, nc)
		tV = append(tV, st.netDelayProxy(j))
		if nc > st.opt.MaxCap {
			viol += nc - st.opt.MaxCap
		}
		if wl := st.netWL(j); wl > st.opt.MaxWL {
			viol += st.opt.CPerUm * (wl - st.opt.MaxWL)
		}
		if st.opt.MaxFanout > 0 && len(st.clusters[j].members) > st.opt.MaxFanout {
			// Each extra sink charged at the mean pin cap.
			viol += float64(len(st.clusters[j].members)-st.opt.MaxFanout) * 2
		}
	}
	return st.opt.P*variance(capV) + st.opt.Q*variance(tV) + 4*viol
}

func variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var v float64
	for _, x := range xs {
		v += (x - mean) * (x - mean)
	}
	return v / float64(len(xs))
}

// perNetCost ranks nets for move selection: their own cap plus violations.
func (st *saState) perNetCost(j int) float64 {
	c := st.clusters[j]
	if len(c.members) == 0 {
		return 0
	}
	cost := st.netCap(j) + st.opt.CPerUm*st.netWL(j)
	if nc := st.netCap(j); nc > st.opt.MaxCap {
		cost += 4 * (nc - st.opt.MaxCap)
	}
	return cost
}

// RefineSA improves a balanced-k-means partition with the Fig. 4 local
// search: repeatedly pick a high-cost net, take an instance on its convex
// hull, move it to the nearest other net, and accept by the annealing rule.
// Returns the refined assignment (the input slice is not modified).
//
// pure:
//
//slltlint:ignore stagepure opt.Stats and opt.Kernel are write-only observability out-params that never feed back into the search; sa_determinism_test pins the returned assignment
func RefineSA(pts []geom.Point, caps []float64, k int, assign []int, opt SAOptions) []int {
	if opt.Iters <= 0 || k < 2 {
		return append([]int(nil), assign...)
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	st := newSAState(pts, caps, k, assign, opt)
	cur := st.Cost()
	best := cur
	bestAssign := append([]int(nil), st.assign...)

	temp := opt.InitTemp
	if temp <= 0 {
		temp = math.Max(cur*0.05, 1e-6)
	}
	cool := math.Pow(1e-3, 1/float64(opt.Iters)) // reach 0.1% of T0 at the end

	for it := 0; it < opt.Iters; it++ {
		j := st.pickCostlyNet(rng)
		if j < 0 {
			break
		}
		i := st.pickHullInstance(j, rng)
		if i < 0 {
			continue
		}
		to := st.nearestOtherNet(i, j)
		if to < 0 {
			continue
		}
		if opt.Stats != nil {
			opt.Stats.Proposed++
		}
		if opt.Kernel != nil {
			opt.Kernel.SAProposed.Add(1)
		}
		st.removeFrom(j, i)
		st.addTo(to, i)
		next := st.Cost()
		delta := next - cur
		if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
			if opt.Stats != nil {
				opt.Stats.Accepted++
			}
			if opt.Kernel != nil {
				opt.Kernel.SAAccepted.Add(1)
			}
			cur = next
			if cur < best {
				best = cur
				copy(bestAssign, st.assign)
			}
		} else {
			// Reject: undo.
			st.removeFrom(to, i)
			st.addTo(j, i)
		}
		temp *= cool
	}
	return bestAssign
}

// pickCostlyNet samples nets with probability weighted by cost (greedy in
// expectation — the paper's observation that descending net cost order
// reduces global cost efficiently — but still stochastic for annealing).
func (st *saState) pickCostlyNet(rng *rand.Rand) int {
	var total float64
	costs := make([]float64, len(st.clusters))
	for j := range st.clusters {
		c := st.perNetCost(j)
		// Square to sharpen toward the worst nets.
		costs[j] = c * c
		total += costs[j]
	}
	if total <= 0 {
		return -1
	}
	r := rng.Float64() * total
	for j, c := range costs {
		r -= c
		if r <= 0 {
			return j
		}
	}
	return len(st.clusters) - 1
}

// pickHullInstance returns a member of net j lying on the cluster's convex
// hull (a boundary instance, per the paper's first observation: moving
// interior instances crosses interconnections).
func (st *saState) pickHullInstance(j int, rng *rand.Rand) int {
	c := st.clusters[j]
	if len(c.members) <= 1 {
		return -1
	}
	if c.hull == nil {
		locs := make([]geom.Point, len(c.members))
		for idx, m := range c.members {
			locs[idx] = st.pts[m]
		}
		c.hull = geom.ConvexHull(locs)
	}
	if len(c.hull) == 0 {
		return -1
	}
	// The memoized hull is rebuilt from the same sorted member set the old
	// code walked, so the rng.Intn stream and the chosen vertex are
	// unchanged; co-located members still resolve to the lowest index.
	target := c.hull[rng.Intn(len(c.hull))]
	for _, m := range c.members {
		if st.pts[m].Eq(target) {
			return m
		}
	}
	return -1
}

// nearestOtherNet returns the cluster (≠ from) whose nearest member is
// closest to point i. Above saGridThreshold the answer comes from one
// expanding-ring query over the instance grid (skipping members of from —
// including i itself, whose assignment is still from at call time); below
// it the original all-members scan runs unchanged.
func (st *saState) nearestOtherNet(i, from int) int {
	if st.grid != nil {
		q := st.pts[i]
		j, _ := st.grid.Nearest(q, func(m int) bool { return st.assign[m] == from })
		if j < 0 {
			return -1
		}
		return st.assign[j]
	}
	best, bd := -1, math.Inf(1)
	for j := range st.clusters {
		if j == from || len(st.clusters[j].members) == 0 {
			continue
		}
		for _, m := range st.clusters[j].members {
			if d := st.pts[i].Dist(st.pts[m]); d < bd {
				best, bd = j, d
			}
		}
	}
	return best
}
