package partition

import (
	"testing"

	"sllt/internal/geom"
)

// Guard fixtures: a 16-point set split between two centers, with the
// assignment settled once up front so the guarded calls run steady-state.
var (
	guardPts = func() []geom.Point {
		pts := make([]geom.Point, 0, 16)
		for i := 0; i < 16; i++ {
			pts = append(pts, geom.Pt(float64(i%4)*9+float64(i), float64(i/4)*6))
		}
		return pts
	}()
	guardCenters = []geom.Point{geom.Pt(2, 2), geom.Pt(30, 14)}
	guardAssign  = func() []int {
		assign := make([]int, len(guardPts))
		assignRange(guardPts, guardCenters, assign, 0, len(guardPts), nil)
		return assign
	}()
	guardSum = make([]float64, len(guardCenters))
	guardCnt = make([]int, len(guardCenters))

	guardSinkB bool
	guardSinkP geom.Point
	guardSinkF float64
)

// allocFreeGuards pins every // hot: alloc-free kernel in this package at
// zero steady-state allocations, keyed by the kernel's display name. The
// guardcov test in internal/analysis/hotpath checks the map stays in sync
// with the annotations.
var allocFreeGuards = map[string]func(){
	"assignRange": func() {
		guardSinkB = assignRange(guardPts, guardCenters, guardAssign, 0, len(guardPts), nil)
	},
	"farthestPoint": func() {
		guardSinkP = farthestPoint(guardPts, guardAssign, guardCenters)
	},
	"silhouetteOf": func() {
		guardSinkF = silhouetteOf(guardPts, guardAssign, len(guardCenters), 3, guardSum, guardCnt)
	},
}

func TestAllocFreeGuards(t *testing.T) {
	for name, fn := range allocFreeGuards {
		fn() // warm up any first-call growth before measuring
		if n := testing.AllocsPerRun(100, fn); n != 0 {
			t.Errorf("%s allocates %.1f times per op, want 0", name, n)
		}
	}
}
