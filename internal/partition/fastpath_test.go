package partition

import (
	"math"
	"math/rand"
	"testing"

	"sllt/internal/geom"
)

func fastpathPts(n int, rng *rand.Rand, integer bool) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		if integer {
			pts[i] = geom.Pt(float64(rng.Intn(64)), float64(rng.Intn(64)))
		} else {
			pts[i] = geom.Pt(rng.Float64()*400, rng.Float64()*400)
		}
	}
	return pts
}

// TestAssignPointsGridMatchesExhaustive: above the grid gates (≥24 centers,
// ≥2048 points) the indexed pass must be byte-identical to the ascending
// scan — including exact ties, which both resolve to the lowest center.
func TestAssignPointsGridMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, integer := range []bool{false, true} {
		n := minParallelPoints + 500
		pts := fastpathPts(n, rng, integer)
		centers := fastpathPts(64, rng, integer)

		got := make([]int, n)
		ref := make([]int, n)
		gc := AssignPoints(pts, centers, got, 1)
		rc := AssignPointsExhaustive(pts, centers, ref)
		if gc != rc {
			t.Fatalf("integer=%v: changed flags differ: %v vs %v", integer, gc, rc)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("integer=%v: assign[%d]=%d, reference %d", integer, i, got[i], ref[i])
			}
		}
		// Second identical pass must report no change through both paths.
		if AssignPoints(pts, centers, got, 1) || AssignPointsExhaustive(pts, centers, ref) {
			t.Fatalf("integer=%v: stable assignment reported a change", integer)
		}
	}
}

// TestKMeansPWorkersInvariantGrid re-pins the workers-invariance contract on
// inputs large enough to cross both the parallel and the grid-index gates.
func TestKMeansPWorkersInvariantGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	pts := fastpathPts(minParallelPoints+700, rng, false)
	k := 80 // > assignGridMinCenters

	c1, a1 := KMeansP(pts, k, 12, 7, 1)
	c8, a8 := KMeansP(pts, k, 12, 7, 8)
	if len(c1) != len(c8) {
		t.Fatalf("center counts differ: %d vs %d", len(c1), len(c8))
	}
	for i := range c1 {
		if c1[i] != c8[i] {
			t.Fatalf("center %d differs: %v vs %v", i, c1[i], c8[i])
		}
	}
	for i := range a1 {
		if a1[i] != a8[i] {
			t.Fatalf("assign[%d] differs: %d vs %d", i, a1[i], a8[i])
		}
	}
}

// TestNearestOtherNetGridMatchesScan compares the annealer's grid fast path
// against the retained all-members scan on the same state. Random float
// coordinates make exact cross-cluster distance ties measure-zero, so the
// two tie rules coincide and the answers must match exactly.
func TestNearestOtherNetGridMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	n := saGridThreshold + 300
	pts := fastpathPts(n, rng, false)
	caps := make([]float64, n)
	for i := range caps {
		caps[i] = 1
	}
	k := 40
	assign := make([]int, n)
	for i := range assign {
		assign[i] = rng.Intn(k)
	}
	st := newSAState(pts, caps, k, assign, DefaultSAOptions(1))
	if st.grid == nil {
		t.Fatalf("grid not built at n=%d", n)
	}
	g := st.grid
	for trial := 0; trial < 400; trial++ {
		i := rng.Intn(n)
		from := st.assign[i]
		st.grid = g
		fast := st.nearestOtherNet(i, from)
		st.grid = nil
		slow := st.nearestOtherNet(i, from)
		if fast != slow {
			t.Fatalf("trial=%d i=%d: grid chose net %d, scan %d", trial, i, fast, slow)
		}
	}
}

// TestRefineSALargeDeterministic: with the grid, hull memo and radius memo
// active, same-seed refinement must still be reproducible and well-formed.
func TestRefineSALargeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	n := saGridThreshold + 200
	pts := fastpathPts(n, rng, false)
	caps := make([]float64, n)
	for i := range caps {
		caps[i] = 1.5
	}
	k := 48
	assign := make([]int, n)
	for i := range assign {
		assign[i] = i % k
	}
	opt := DefaultSAOptions(5)
	opt.Iters = 150
	a := RefineSA(pts, caps, k, assign, opt)
	b := RefineSA(pts, caps, k, assign, opt)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("assign[%d] differs across identical runs: %d vs %d", i, a[i], b[i])
		}
		if a[i] < 0 || a[i] >= k {
			t.Fatalf("assign[%d]=%d out of range", i, a[i])
		}
	}
}

// TestSilhouetteSampledPath: above the exact threshold SilhouetteP switches
// to the stratified estimator — which must be deterministic, bounded like a
// silhouette, and close to the exact score; below it, it must literally be
// the exact score.
func TestSilhouetteSampledPath(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	k := 12

	small := fastpathPts(1500, rng, false)
	sAssign := make([]int, len(small))
	for i := range sAssign {
		sAssign[i] = i % k
	}
	if got, ref := SilhouetteP(small, sAssign, k, 1), SilhouetteExact(small, sAssign, k, 1); got != ref {
		t.Fatalf("below threshold SilhouetteP=%g != exact %g", got, ref)
	}

	// Clustered (not uniform) points give a meaningful positive silhouette.
	big := make([]geom.Point, silhouetteExactThreshold+2000)
	bAssign := make([]int, len(big))
	for i := range big {
		c := i % k
		cx, cy := float64(c%4)*200, float64(c/4)*200
		big[i] = geom.Pt(cx+rng.NormFloat64()*8, cy+rng.NormFloat64()*8)
		bAssign[i] = c
	}
	est := SilhouetteP(big, bAssign, k, 1)
	if est2 := SilhouetteP(big, bAssign, k, 1); est != est2 {
		t.Fatalf("sampled silhouette not deterministic: %g vs %g", est, est2)
	}
	if est < -1 || est > 1 {
		t.Fatalf("sampled silhouette %g out of [-1,1]", est)
	}
	exact := SilhouetteExact(big, bAssign, k, 1)
	if math.Abs(est-exact) > 0.05 {
		t.Fatalf("sampled silhouette %g too far from exact %g", est, exact)
	}
	// Workers must not change the sampled estimate either.
	if est8 := SilhouetteP(big, bAssign, k, 8); est8 != est {
		t.Fatalf("sampled silhouette differs across workers: %g vs %g", est, est8)
	}
}
