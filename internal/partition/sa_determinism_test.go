package partition

import (
	"math/rand"
	"testing"

	"sllt/internal/geom"
)

// TestRefineSASameSeedTwice is the determinism regression for the
// clusterState members rewrite: running the annealer twice on identical
// inputs with the same seed must yield identical assignments. With the old
// map-backed membership, bbox rebuilds and hull/nearest-net scans walked
// the members in map iteration order, so two runs could diverge.
func TestRefineSASameSeedTwice(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := fourBlobs(rng, 40)
	// Perturb a few points toward the middle so refinement has real moves
	// to make, and add duplicate locations to exercise hull tie-breaking.
	for i := 0; i < 8; i++ {
		pts[i*17%len(pts)] = geom.Pt(45+float64(i), 52)
	}
	pts = append(pts, pts[3], pts[50], pts[50])
	caps := make([]float64, len(pts))
	for i := range caps {
		caps[i] = 1 + float64(i%5)*0.3
	}
	_, assign := KMeans(pts, 4, 30, 1)
	// Deliberately mis-assign some instances so refinement has genuine
	// cost-improving moves to find and accept.
	for i := 0; i < len(assign); i += 9 {
		assign[i] = (assign[i] + 1) % 4
	}

	opt := DefaultSAOptions(12345)
	opt.Iters = 300
	// Tight constraints force violation-driven moves so the hull-pick /
	// nearest-net / bbox-rebuild paths all run.
	opt.MaxFanout = 30
	opt.MaxCap = 40

	run := func() []int {
		in := append([]int(nil), assign...)
		return RefineSA(pts, caps, 4, in, opt)
	}
	a := run()
	b := run()
	if len(a) != len(b) {
		t.Fatalf("assignment lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed runs diverge at instance %d: %d vs %d", i, a[i], b[i])
		}
	}
	// The refinement must also actually have done something beyond echoing
	// the input (otherwise this test proves nothing about the SA loops).
	moved := 0
	for i := range a {
		if a[i] != assign[i] {
			moved++
		}
	}
	if moved == 0 {
		t.Log("warning: SA made no moves; determinism check is vacuous for the move path")
	}
}
