package dme

import (
	"testing"

	"sllt/internal/geom"
	"sllt/internal/tech"
)

// Guard fixtures: an Elmore-model option set (so delayAdd/wireCap exercise
// the tech formulas, not the Linear early-outs) and two disjoint merge
// nodes.
var (
	guardOpts = Options{Model: Elmore, Tech: tech.Default28nm()}
	guardA    = &mnode{ms: geom.OctFromPoint(geom.Pt(0, 0)).Expand(2), lo: 0, hi: 1, cap: 3}
	guardB    = &mnode{ms: geom.OctFromPoint(geom.Pt(30, 10)).Expand(1), lo: 4, hi: 5, cap: 2}

	guardSinkF  float64
	guardSinkF2 float64
)

// allocFreeGuards pins every // hot: alloc-free kernel in this package at
// zero steady-state allocations, keyed by the kernel's display name. The
// guardcov test in internal/analysis/hotpath checks the map stays in sync
// with the annotations.
var allocFreeGuards = map[string]func(){
	"Options.delayAdd": func() {
		guardSinkF = guardOpts.delayAdd(120, 4)
	},
	"Options.invDelayAdd": func() {
		guardSinkF = guardOpts.invDelayAdd(50, 4)
	},
	"Options.wireCap": func() {
		guardSinkF = guardOpts.wireCap(120)
	},
	"clampF": func() {
		guardSinkF = clampF(5, 0, 3)
	},
	"linearSplit": func() {
		guardSinkF, guardSinkF2 = linearSplit(guardA, guardB, guardA.ms.Dist(guardB.ms), 2)
	},
	"linearMergeCost": func() {
		guardSinkF = linearMergeCost(guardA, guardB, 2)
	},
}

func TestAllocFreeGuards(t *testing.T) {
	for name, fn := range allocFreeGuards {
		fn() // warm up any first-call growth before measuring
		if n := testing.AllocsPerRun(100, fn); n != 0 {
			t.Errorf("%s allocates %.1f times per op, want 0", name, n)
		}
	}
}
