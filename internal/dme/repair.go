package dme

import (
	"fmt"
	"math"

	"sllt/internal/tree"
)

// RepairSkew performs bounded-skew balancing on a tree whose topology and
// node placement are already fixed: the degenerate form of BST-DME in which
// every merging region is pinned to its embedded point, leaving only the
// per-edge wire lengths (snaking) as free variables. This is the paper's CBS
// Step 5: running BST on the topology that SALT relaxation produced, so the
// final tree "closely approximates the result by SALT" while restoring skew
// legality.
//
// The pass is a single bottom-up sweep. At every internal node the children's
// delay intervals are aligned by snaking each entirely-too-fast child's edge
// with just enough wire that the merged interval spans at most the bound.
// Padding is therefore applied as high in the tree as possible (one shared
// snake fixes a whole fast subtree), which minimizes added wire. For the
// Elmore model the added wire's capacitance is accounted for bottom-up, so
// upstream edge delays see the repaired subtree loads; upstream padding
// shifts whole subtrees equally and cannot break spans already established.
//
// Sinks pick up initial delays from opts.SinkDelay (keyed by Node.SinkIdx)
// so hierarchical CTS can balance cluster roots that already drive subtrees.
func RepairSkew(t *tree.Tree, net *tree.Net, opts Options) error {
	if t == nil || t.Root == nil {
		return fmt.Errorf("dme: repair on nil tree")
	}
	B := opts.SkewBound

	// repair returns the subtree's delay interval measured from n, and the
	// total downstream capacitance at n (pins + wires below, excluding n's
	// own incoming edge).
	var repair func(n *tree.Node) (lo, hi, cap float64, err error)
	repair = func(n *tree.Node) (float64, float64, float64, error) {
		ownCap := 0.0
		if n.Kind == tree.Sink || n.Kind == tree.Buffer {
			ownCap = n.PinCap
		}
		if len(n.Children) == 0 {
			var d0 float64
			if n.Kind == tree.Sink && n.SinkIdx >= 0 && net != nil && n.SinkIdx < len(net.Sinks) {
				s := net.Sinks[n.SinkIdx]
				if opts.SinkDelay != nil {
					d0 = opts.SinkDelay(n.SinkIdx, s)
				}
				if opts.SinkCap != nil {
					ownCap = opts.SinkCap(n.SinkIdx, s)
				}
			}
			return d0, d0, ownCap, nil
		}

		type kid struct {
			n        *tree.Node
			slo, shi float64 // interval below the child, measured from it
			cap      float64
		}
		kids := make([]kid, 0, len(n.Children))
		hmax := math.Inf(-1)
		for _, c := range n.Children {
			slo, shi, cap, err := repair(c)
			if err != nil {
				return 0, 0, 0, err
			}
			kids = append(kids, kid{c, slo, shi, cap})
			if hi := shi + opts.delayAdd(c.EdgeLen, cap); hi > hmax {
				hmax = hi
			}
		}

		mlo, mhi := math.Inf(1), math.Inf(-1)
		capSum := ownCap
		for _, k := range kids {
			e := opts.delayAdd(k.n.EdgeLen, k.cap)
			if target := hmax - B - k.slo; e < target-1e-12 {
				// Entirely too fast: snake this edge so its slowest-case
				// alignment leaves the merged span within the bound. The
				// child's own span is <= B by induction, so its new high end
				// (hmax - B + span) cannot exceed hmax.
				k.n.EdgeLen = opts.invDelayAdd(target, k.cap)
				e = opts.delayAdd(k.n.EdgeLen, k.cap)
				if opts.Kernel != nil {
					opts.Kernel.DMESnakes.Add(1)
				}
			}
			mlo = math.Min(mlo, k.slo+e)
			mhi = math.Max(mhi, k.shi+e)
			capSum += k.cap + opts.wireCap(k.n.EdgeLen)
		}
		if mhi-mlo > B+1e-6 {
			return 0, 0, 0, fmt.Errorf("dme: repair failed at %v: span %g > bound %g", n.Loc, mhi-mlo, B)
		}
		return mlo, mhi, capSum, nil
	}
	_, _, _, err := repair(t.Root)
	return err
}
