package dme

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sllt/internal/geom"
	"sllt/internal/invariants"
	"sllt/internal/tech"
	"sllt/internal/tree"
)

func quickNet(seed int64, n int) *tree.Net {
	rng := rand.New(rand.NewSource(seed))
	if n < 2 {
		n = 2
	}
	if n > 30 {
		n = 2 + n%29
	}
	net := &tree.Net{Source: geom.Pt(50, 50)}
	used := map[geom.Point]bool{}
	for len(net.Sinks) < n {
		p := geom.Pt(float64(rng.Intn(100)), float64(rng.Intn(100)))
		if used[p] {
			continue
		}
		used[p] = true
		net.Sinks = append(net.Sinks, tree.PinSink{Name: "s", Loc: p, Cap: 1.2})
	}
	return net
}

// Property: for any net, topology method and non-negative bound, linear BST
// yields a valid tree whose path-length skew respects the bound and whose
// wirelength is at least the MST lower bound divided by the Steiner ratio.
func TestQuickBSTContract(t *testing.T) {
	f := func(seed int64, n int, methodPick uint8, boundPick uint8) bool {
		net := quickNet(seed, n)
		method := AllTopoMethods[int(methodPick)%len(AllTopoMethods)]
		bound := float64(boundPick%100) / 2 // 0..49.5 µm
		topo := GenTopo(net, method, bound)
		if err := topo.Validate(len(net.Sinks)); err != nil {
			return false
		}
		tr, err := Build(net, topo, BST(bound))
		if err != nil {
			return false
		}
		if err := invariants.CheckTree(tr); err != nil {
			return false
		}
		if len(tr.Sinks()) != len(net.Sinks) {
			return false
		}
		return invariants.CheckSkew(tr, bound, 1e-6) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: Elmore BST respects the ps bound for arbitrary region greeds.
func TestQuickElmoreRegionContract(t *testing.T) {
	tc := tech.Default28nm()
	f := func(seed int64, n int, boundPick, greedPick uint8) bool {
		net := quickNet(seed, n)
		bound := 1 + float64(boundPick%40) // 1..40 ps
		greed := float64(greedPick%101) / 100
		opts := Options{Model: Elmore, SkewBound: bound, Tech: tc, RegionGreed: greed}
		topo := GenTopo(net, GreedyDist, opts.LengthBudget(net))
		tr, err := Build(net, topo, opts)
		if err != nil {
			return false
		}
		if err := invariants.CheckTree(tr); err != nil {
			return false
		}
		return elmoreSkew(tr, tc) <= bound+1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: RepairSkew enforces its bound on arbitrary star trees with
// random initial sink delays (linear model is exact in one pass).
func TestQuickRepairSkewContract(t *testing.T) {
	f := func(seed int64, n int, boundPick uint8) bool {
		net := quickNet(seed, n)
		rng := rand.New(rand.NewSource(seed ^ 0xbeef))
		delays := make([]float64, len(net.Sinks))
		for i := range delays {
			delays[i] = rng.Float64() * 30
		}
		tr := tree.New(net.Source)
		for i := range net.Sinks {
			tr.Root.AddChild(net.SinkNode(i))
		}
		bound := float64(boundPick % 50)
		opts := BST(bound)
		opts.SinkDelay = func(i int, s tree.PinSink) float64 { return delays[i] }
		if err := RepairSkew(tr, net, opts); err != nil {
			return false
		}
		if err := invariants.CheckTree(tr); err != nil {
			return false
		}
		lo, hi := 1e18, -1e18
		for _, s := range tr.Sinks() {
			d := tree.PathLength(s) + delays[s.SinkIdx]
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
		}
		return hi-lo <= bound+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
