package dme

import (
	"math"
	"sort"

	"sllt/internal/geom"
	"sllt/internal/tree"
)

// TopoMethod selects the merging-topology generation scheme used to seed
// BST/ZST construction — the four candidates named in the paper (§2.3):
// Greedy-Dist, Greedy-Merge, Bi-Partition and Bi-Cluster.
type TopoMethod int

// Topology generation methods.
const (
	// GreedyDist merges the two closest subtrees at each step.
	GreedyDist TopoMethod = iota
	// GreedyMerge merges the pair with the minimum merging cost (total wire
	// including any snaking the skew bound forces) at each step.
	GreedyMerge
	// BiPartition recursively splits the sink set in two, choosing the cut
	// (x- or y-median) with the smaller diameter cost.
	BiPartition
	// BiCluster recursively bi-partitions with 2-means clustering.
	BiCluster
)

// String implements fmt.Stringer.
func (m TopoMethod) String() string {
	switch m {
	case GreedyDist:
		return "greedy-dist"
	case GreedyMerge:
		return "greedy-merge"
	case BiPartition:
		return "bi-partition"
	case BiCluster:
		return "bi-cluster"
	}
	return "unknown"
}

// AllTopoMethods lists every generation scheme, in paper order.
var AllTopoMethods = []TopoMethod{GreedyDist, GreedyMerge, BiPartition, BiCluster}

// GenTopo builds a binary merging topology over the net's sinks.
// lengthSkewBudget is the path-length skew allowance used by the greedy
// methods' cost model (pass the linear-model skew bound; for Elmore runs,
// pass Options.LengthBudget).
//
// pure:
func GenTopo(net *tree.Net, method TopoMethod, lengthSkewBudget float64) *tree.Topo {
	n := len(net.Sinks)
	if n == 0 {
		return &tree.Topo{}
	}
	if n == 1 {
		return &tree.Topo{Root: tree.TopoLeaf(0)}
	}
	switch method {
	case GreedyDist, GreedyMerge:
		return greedyTopo(net, method, lengthSkewBudget)
	case BiPartition:
		idx := allIdx(n)
		return &tree.Topo{Root: biPartition(net, idx)}
	case BiCluster:
		idx := allIdx(n)
		return &tree.Topo{Root: biCluster(net, idx, 0)}
	}
	return greedyTopo(net, GreedyDist, lengthSkewBudget)
}

// LengthBudget converts the configured skew bound into an equivalent
// path-length allowance for topology guidance: identical for the linear
// model; for Elmore, the wire length whose delay into an average sink load
// equals the bound.
func (o Options) LengthBudget(net *tree.Net) float64 {
	if o.Model == Linear {
		return o.SkewBound
	}
	var avgCap float64
	for i, s := range net.Sinks {
		c := s.Cap
		if o.SinkCap != nil {
			c = o.SinkCap(i, s)
		}
		avgCap += c
	}
	if len(net.Sinks) > 0 {
		avgCap /= float64(len(net.Sinks))
	}
	return o.invDelayAdd(o.SkewBound, avgCap)
}

func allIdx(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// greedyTopo implements Greedy-Dist and Greedy-Merge: bottom-up pairwise
// merging with either region distance or full merging cost as the
// selection criterion. Cluster state tracks linear-model merging segments
// and delay intervals so snaking costs are visible to Greedy-Merge.
func greedyTopo(net *tree.Net, method TopoMethod, budget float64) *tree.Topo {
	type cluster struct {
		ms     geom.TRR
		lo, hi float64
		tn     *tree.TopoNode
	}
	var clusters []*cluster
	for i, s := range net.Sinks {
		clusters = append(clusters, &cluster{
			ms: geom.TRRFromPoint(s.Loc),
			tn: tree.TopoLeaf(i),
		})
	}
	// Lightweight linear-model merge cost: total wire including any
	// snaking the skew budget forces (see linearSplit for the math).
	cost := func(a, b *cluster) (d, ea, eb float64) {
		d = a.ms.Dist(b.ms)
		am := &mnode{lo: a.lo, hi: a.hi}
		bm := &mnode{lo: b.lo, hi: b.hi}
		ea, eb = linearSplit(am, bm, d, budget)
		return d, ea, eb
	}
	for len(clusters) > 1 {
		bi, bj := 0, 1
		best := math.Inf(1)
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				var c float64
				if method == GreedyDist {
					c = clusters[i].ms.Dist(clusters[j].ms)
				} else {
					_, ea, eb := cost(clusters[i], clusters[j])
					c = ea + eb
				}
				if c < best {
					best, bi, bj = c, i, j
				}
			}
		}
		a, b := clusters[bi], clusters[bj]
		_, ea, eb := cost(a, b)
		ms := a.ms.Expand(ea).Intersect(b.ms.Expand(eb))
		if ms.Empty() {
			ms = a.ms.Expand(ea + 1e-6).Intersect(b.ms.Expand(eb + 1e-6))
		}
		nc := &cluster{
			ms: ms,
			lo: math.Min(a.lo+ea, b.lo+eb),
			hi: math.Max(a.hi+ea, b.hi+eb),
			tn: tree.TopoMerge(a.tn, b.tn),
		}
		clusters = append(clusters[:bj], clusters[bj+1:]...)
		clusters[bi] = nc
	}
	return &tree.Topo{Root: clusters[0].tn}
}

// biPartition recursively splits idx by the x- or y-median, whichever gives
// the smaller diameter cost (sum of subset bounding-box half-perimeters).
func biPartition(net *tree.Net, idx []int) *tree.TopoNode {
	if len(idx) == 1 {
		return tree.TopoLeaf(idx[0])
	}
	if len(idx) == 2 {
		return tree.TopoMerge(tree.TopoLeaf(idx[0]), tree.TopoLeaf(idx[1]))
	}
	byX := append([]int(nil), idx...)
	sort.Slice(byX, func(i, j int) bool { return net.Sinks[byX[i]].Loc.X < net.Sinks[byX[j]].Loc.X })
	byY := append([]int(nil), idx...)
	sort.Slice(byY, func(i, j int) bool { return net.Sinks[byY[i]].Loc.Y < net.Sinks[byY[j]].Loc.Y })
	mid := len(idx) / 2
	costX := diam(net, byX[:mid]) + diam(net, byX[mid:])
	costY := diam(net, byY[:mid]) + diam(net, byY[mid:])
	split := byX
	if costY < costX {
		split = byY
	}
	return tree.TopoMerge(biPartition(net, split[:mid]), biPartition(net, split[mid:]))
}

func diam(net *tree.Net, idx []int) float64 {
	r := geom.EmptyRect()
	for _, i := range idx {
		r = r.Grow(net.Sinks[i].Loc)
	}
	return r.HalfPerimeter()
}

// biCluster recursively splits idx with 2-means (Lloyd) clustering.
func biCluster(net *tree.Net, idx []int, depth int) *tree.TopoNode {
	if len(idx) == 1 {
		return tree.TopoLeaf(idx[0])
	}
	if len(idx) == 2 {
		return tree.TopoMerge(tree.TopoLeaf(idx[0]), tree.TopoLeaf(idx[1]))
	}
	a, b := twoMeans(net, idx)
	if len(a) == 0 || len(b) == 0 {
		// Degenerate geometry (coincident points): fall back to a plain
		// half split to guarantee progress.
		mid := len(idx) / 2
		a, b = idx[:mid], idx[mid:]
	}
	return tree.TopoMerge(biCluster(net, a, depth+1), biCluster(net, b, depth+1))
}

// twoMeans partitions idx into two clusters with Lloyd's algorithm seeded by
// the bounding-box extremes. Deterministic.
func twoMeans(net *tree.Net, idx []int) (a, b []int) {
	// Seeds: the pair of points realizing the bbox diagonal.
	var pa, pb geom.Point
	var bestD float64 = -1
	// O(n) seeding: extreme points along the dominant axis.
	r := geom.EmptyRect()
	for _, i := range idx {
		r = r.Grow(net.Sinks[i].Loc)
	}
	for _, i := range idx {
		p := net.Sinks[i].Loc
		if d := p.Dist(geom.Pt(r.XLo, r.YLo)); d > bestD {
			// farthest from the low corner seeds pb
			bestD, pb = d, p
		}
	}
	bestD = -1
	for _, i := range idx {
		p := net.Sinks[i].Loc
		if d := p.Dist(pb); d > bestD {
			bestD, pa = d, p
		}
	}
	ca, cb := pa, pb
	for iter := 0; iter < 16; iter++ {
		a, b = a[:0], b[:0]
		for _, i := range idx {
			p := net.Sinks[i].Loc
			if p.Dist(ca) <= p.Dist(cb) {
				a = append(a, i)
			} else {
				b = append(b, i)
			}
		}
		if len(a) == 0 || len(b) == 0 {
			return a, b
		}
		na, nb := centroid(net, a), centroid(net, b)
		if na.Eq(ca) && nb.Eq(cb) {
			break
		}
		ca, cb = na, nb
	}
	return a, b
}

func centroid(net *tree.Net, idx []int) geom.Point {
	var sx, sy float64
	for _, i := range idx {
		sx += net.Sinks[i].Loc.X
		sy += net.Sinks[i].Loc.Y
	}
	n := float64(len(idx))
	return geom.Pt(sx/n, sy/n)
}
