package dme

import (
	"math"
	"math/rand"
	"testing"

	"sllt/internal/geom"
	"sllt/internal/invariants"
	"sllt/internal/tech"
	"sllt/internal/tree"
)

func randomNet(rng *rand.Rand, n int, box float64) *tree.Net {
	net := &tree.Net{Name: "r", Source: geom.Pt(rng.Float64()*box, rng.Float64()*box)}
	used := map[geom.Point]bool{}
	for len(net.Sinks) < n {
		p := geom.Pt(float64(rng.Intn(int(box))), float64(rng.Intn(int(box))))
		if used[p] {
			continue
		}
		used[p] = true
		net.Sinks = append(net.Sinks, tree.PinSink{Name: "s", Loc: p, Cap: 1.2})
	}
	return net
}

// pathSkew returns max-min source-to-sink path length.
func pathSkew(t *tree.Tree) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range t.Sinks() {
		pl := tree.PathLength(s)
		lo = math.Min(lo, pl)
		hi = math.Max(hi, pl)
	}
	return hi - lo
}

// elmore computes per-sink Elmore delays of an unbuffered tree.
func elmore(t *tree.Tree, tc tech.Tech) map[*tree.Node]float64 {
	caps := map[*tree.Node]float64{}
	var capOf func(n *tree.Node) float64
	capOf = func(n *tree.Node) float64 {
		c := n.PinCap
		for _, ch := range n.Children {
			c += tc.WireCap(ch.EdgeLen) + capOf(ch)
		}
		caps[n] = c
		return c
	}
	capOf(t.Root)
	delays := map[*tree.Node]float64{t.Root: 0}
	var walk func(n *tree.Node)
	walk = func(n *tree.Node) {
		for _, ch := range n.Children {
			delays[ch] = delays[n] + tc.WireElmore(ch.EdgeLen, caps[ch])
			walk(ch)
		}
	}
	walk(t.Root)
	return delays
}

func elmoreSkew(t *tree.Tree, tc tech.Tech) float64 {
	d := elmore(t, tc)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range t.Sinks() {
		lo = math.Min(lo, d[s])
		hi = math.Max(hi, d[s])
	}
	return hi - lo
}

func TestZSTLinearZeroSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, method := range AllTopoMethods {
		for trial := 0; trial < 15; trial++ {
			net := randomNet(rng, 2+rng.Intn(30), 100)
			topo := GenTopo(net, method, 0)
			tr, err := Build(net, topo, ZST())
			if err != nil {
				t.Fatalf("%v trial %d: %v", method, trial, err)
			}
			if err := invariants.CheckTree(tr); err != nil {
				t.Fatalf("%v trial %d: %v", method, trial, err)
			}
			if got := len(tr.Sinks()); got != len(net.Sinks) {
				t.Fatalf("%v trial %d: %d sinks, want %d", method, trial, got, len(net.Sinks))
			}
			if err := invariants.CheckSkew(tr, 0, 1e-6); err != nil {
				t.Fatalf("%v trial %d: %v", method, trial, err)
			}
		}
	}
}

func TestBSTLinearSkewBound(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, bound := range []float64{1, 5, 20, 80} {
		for trial := 0; trial < 10; trial++ {
			net := randomNet(rng, 5+rng.Intn(30), 120)
			topo := GenTopo(net, GreedyDist, bound)
			tr, err := Build(net, topo, BST(bound))
			if err != nil {
				t.Fatalf("bound %g trial %d: %v", bound, trial, err)
			}
			if err := invariants.CheckTree(tr); err != nil {
				t.Fatalf("bound %g trial %d: %v", bound, trial, err)
			}
			if err := invariants.CheckSkew(tr, bound, 1e-6); err != nil {
				t.Fatalf("bound %g trial %d: %v", bound, trial, err)
			}
		}
	}
}

// Relaxing the skew bound should never cost wire on average: BST is a
// monotone relaxation of ZST.
func TestBSTWireMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var wlZST, wlBST float64
	for trial := 0; trial < 25; trial++ {
		net := randomNet(rng, 20, 100)
		topo := GenTopo(net, GreedyDist, 0)
		z, err := Build(net, topo, ZST())
		if err != nil {
			t.Fatal(err)
		}
		b, err := Build(net, topo, BST(40))
		if err != nil {
			t.Fatal(err)
		}
		wlZST += z.Wirelength()
		wlBST += b.Wirelength()
	}
	if wlBST > wlZST {
		t.Errorf("BST total WL %g exceeds ZST %g", wlBST, wlZST)
	}
}

func TestZSTElmore(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	tc := tech.Default28nm()
	for trial := 0; trial < 15; trial++ {
		net := randomNet(rng, 3+rng.Intn(25), 75)
		topo := GenTopo(net, GreedyDist, 0)
		tr, err := Build(net, topo, Options{Model: Elmore, SkewBound: 0, Tech: tc})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if skew := elmoreSkew(tr, tc); skew > 1e-4 {
			t.Fatalf("trial %d: elmore ZST skew = %g ps", trial, skew)
		}
	}
}

func TestBSTElmoreBound(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	tc := tech.Default28nm()
	for _, bound := range []float64{5, 10, 80} {
		opts := Options{Model: Elmore, SkewBound: bound, Tech: tc}
		for trial := 0; trial < 10; trial++ {
			net := randomNet(rng, 10+rng.Intn(30), 75)
			topo := GenTopo(net, GreedyDist, opts.LengthBudget(net))
			tr, err := Build(net, topo, opts)
			if err != nil {
				t.Fatalf("bound %g trial %d: %v", bound, trial, err)
			}
			if skew := elmoreSkew(tr, tc); skew > bound+1e-4 {
				t.Fatalf("bound %g trial %d: elmore skew = %g", bound, trial, skew)
			}
		}
	}
}

// Initial sink delays (hierarchical CTS balancing cluster roots) must be
// absorbed: total delay = path length + initial delay is equalized by ZST.
func TestZSTWithSinkDelays(t *testing.T) {
	net := &tree.Net{Source: geom.Pt(0, 0), Sinks: []tree.PinSink{
		{Name: "a", Loc: geom.Pt(-20, 0), Cap: 1},
		{Name: "b", Loc: geom.Pt(20, 0), Cap: 1},
	}}
	d0 := []float64{0, 14}
	opts := ZST()
	opts.SinkDelay = func(i int, s tree.PinSink) float64 { return d0[i] }
	topo := GenTopo(net, GreedyDist, 0)
	tr, err := Build(net, topo, opts)
	if err != nil {
		t.Fatal(err)
	}
	var tot [2]float64
	for _, s := range tr.Sinks() {
		tot[s.SinkIdx] = tree.PathLength(s) + d0[s.SinkIdx]
	}
	if math.Abs(tot[0]-tot[1]) > 1e-6 {
		t.Fatalf("total delays not balanced: %g vs %g", tot[0], tot[1])
	}
}

func TestSnakingKeepsValidEdges(t *testing.T) {
	// Force snaking: two sinks very close together with wildly different
	// initial delays.
	net := &tree.Net{Source: geom.Pt(0, 0), Sinks: []tree.PinSink{
		{Name: "a", Loc: geom.Pt(10, 0), Cap: 1},
		{Name: "b", Loc: geom.Pt(12, 0), Cap: 1},
	}}
	d0 := []float64{30, 0}
	opts := ZST()
	opts.SinkDelay = func(i int, s tree.PinSink) float64 { return d0[i] }
	tr, err := Build(net, GenTopo(net, GreedyDist, 0), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := invariants.CheckTree(tr); err != nil {
		t.Fatal(err)
	}
	var tot [2]float64
	for _, s := range tr.Sinks() {
		tot[s.SinkIdx] = tree.PathLength(s) + d0[s.SinkIdx]
	}
	if math.Abs(tot[0]-tot[1]) > 1e-6 {
		t.Fatalf("snaked delays not balanced: %g vs %g", tot[0], tot[1])
	}
}

func TestSingleSink(t *testing.T) {
	net := &tree.Net{Source: geom.Pt(0, 0), Sinks: []tree.PinSink{{Name: "a", Loc: geom.Pt(7, 3), Cap: 1}}}
	tr, err := Build(net, GenTopo(net, BiPartition, 0), ZST())
	if err != nil {
		t.Fatal(err)
	}
	if wl := tr.Wirelength(); wl != 10 {
		t.Errorf("single-sink WL = %g, want 10", wl)
	}
}

func TestGenTopoValid(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for _, method := range AllTopoMethods {
		for trial := 0; trial < 10; trial++ {
			net := randomNet(rng, 1+rng.Intn(40), 150)
			topo := GenTopo(net, method, 10)
			if err := topo.Validate(len(net.Sinks)); err != nil {
				t.Fatalf("%v trial %d (n=%d): %v", method, trial, len(net.Sinks), err)
			}
		}
	}
}

func TestGenTopoCoincidentSinks(t *testing.T) {
	// Degenerate geometry: all sinks in a tiny cluster plus clones on a line.
	net := &tree.Net{Source: geom.Pt(0, 0)}
	for i := 0; i < 9; i++ {
		net.Sinks = append(net.Sinks, tree.PinSink{Loc: geom.Pt(float64(i%3)*0.001, float64(i/3)*0.001), Cap: 1})
	}
	for _, method := range AllTopoMethods {
		topo := GenTopo(net, method, 0)
		if err := topo.Validate(len(net.Sinks)); err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if _, err := Build(net, topo, ZST()); err != nil {
			t.Fatalf("%v: %v", method, err)
		}
	}
}

func TestLinearSplitBalance(t *testing.T) {
	a := &mnode{ms: geom.OctFromPoint(geom.Pt(0, 0)), lo: 0, hi: 0}
	b := &mnode{ms: geom.OctFromPoint(geom.Pt(10, 0)), lo: 0, hi: 0}
	ea, eb := linearSplit(a, b, 10, 0)
	if ea != 5 || eb != 5 {
		t.Errorf("balanced split = (%g,%g), want (5,5)", ea, eb)
	}
	// b already 4 slower: a gets more wire.
	b.lo, b.hi = 4, 4
	ea, eb = linearSplit(a, b, 10, 0)
	if ea != 7 || eb != 3 {
		t.Errorf("offset split = (%g,%g), want (7,3)", ea, eb)
	}
	// b 20 slower than the distance allows: snake a.
	b.lo, b.hi = 20, 20
	ea, eb = linearSplit(a, b, 10, 0)
	if ea != 20 || eb != 0 {
		t.Errorf("snaked split = (%g,%g), want (20,0)", ea, eb)
	}
	// With a generous bound no snaking is needed.
	ea, eb = linearSplit(a, b, 10, 80)
	if ea+eb != 10 {
		t.Errorf("relaxed split total = %g, want 10", ea+eb)
	}
}

func TestMergeCostMatchesSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	for i := 0; i < 200; i++ {
		a := &mnode{ms: geom.OctFromPoint(geom.Pt(rng.Float64()*100, rng.Float64()*100))}
		b := &mnode{ms: geom.OctFromPoint(geom.Pt(rng.Float64()*100, rng.Float64()*100))}
		a.lo = rng.Float64() * 20
		a.hi = a.lo + rng.Float64()*5
		b.lo = rng.Float64() * 20
		b.hi = b.lo + rng.Float64()*5
		B := 5 + rng.Float64()*10
		if a.hi-a.lo > B || b.hi-b.lo > B {
			continue
		}
		cost := linearMergeCost(a, b, B)
		d := a.ms.Dist(b.ms)
		if cost < d-1e-9 {
			t.Fatalf("merge cost %g below distance %g", cost, d)
		}
	}
}

// elmoreSplit with the linear delay model must agree with the closed-form
// linearSplit on arbitrary inputs.
func TestSplitsAgreeOnLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	opts := Options{Model: Linear}
	for i := 0; i < 500; i++ {
		a := &mnode{lo: rng.Float64() * 50}
		a.hi = a.lo + rng.Float64()*10
		b := &mnode{lo: rng.Float64() * 50}
		b.hi = b.lo + rng.Float64()*10
		B := 10 + rng.Float64()*20
		d := rng.Float64() * 80
		la, lb := linearSplit(a, b, d, B)
		ea, eb := elmoreSplit(a, b, d, B, opts)
		// Both must satisfy the constraints with the same total wire; the
		// split point may differ inside the feasible window.
		if math.Abs((la+lb)-(ea+eb)) > 1e-6 {
			t.Fatalf("total wire differs: linear %g vs general %g (d=%g B=%g a=[%g,%g] b=[%g,%g])",
				la+lb, ea+eb, d, B, a.lo, a.hi, b.lo, b.hi)
		}
		for _, s := range [][2]float64{{la, lb}, {ea, eb}} {
			inc := a.hi + s[0] - b.lo - s[1]
			dec := b.hi + s[1] - a.lo - s[0]
			if inc > B+1e-6 || dec > B+1e-6 {
				t.Fatalf("constraint violated: inc=%g dec=%g B=%g", inc, dec, B)
			}
		}
	}
}

// Regression: a top-level merge with a huge delay offset, a large region
// distance and a tight Elmore bound must balance, not bail out. (The golden
// section + extreme-split code this replaced chose the wrong split here.)
func TestElmoreMergeLargeOffsetTightBound(t *testing.T) {
	tc := tech.Default28nm()
	opts := Options{Model: Elmore, SkewBound: 6.6, Tech: tc}
	a := &mnode{ms: geom.OctFromPoint(geom.Pt(0, 0)), lo: 10, hi: 14, cap: 40}
	b := &mnode{ms: geom.OctFromPoint(geom.Pt(500, 0)), lo: 180, hi: 184, cap: 40}
	m, err := merge(a, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if span := m.hi - m.lo; span > opts.SkewBound+1e-6 {
		t.Fatalf("merged span %g exceeds bound", span)
	}
	var total float64
	if m.detour {
		total = m.eaFix + m.ebFix
	} else {
		total = m.d
	}
	if total < 500 {
		t.Fatalf("merge wire %g shorter than region distance", total)
	}
}

// Region-based merging must save wire over segment merging while honoring
// the skew bound — the defining property of BST-DME merging regions.
func TestRegionsSaveWire(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	tc := tech.Default28nm()
	var wlSeg, wlReg float64
	for trial := 0; trial < 25; trial++ {
		net := randomNet(rng, 10+rng.Intn(25), 75)
		topo := GenTopo(net, GreedyDist, 10)
		seg := Options{Model: Elmore, SkewBound: 10, Tech: tc, RegionGreed: SegmentRegions}
		reg := Options{Model: Elmore, SkewBound: 10, Tech: tc, RegionGreed: 1}
		ts, err := Build(net, topo, seg)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := Build(net, topo, reg)
		if err != nil {
			t.Fatal(err)
		}
		if err := invariants.CheckTree(tr); err != nil {
			t.Fatal(err)
		}
		if err := invariants.CheckLoad(tr, tc.CPerUm); err != nil {
			t.Fatal(err)
		}
		if skew := elmoreSkew(tr, tc); skew > 10+1e-4 {
			t.Fatalf("trial %d: region BST skew %g over bound", trial, skew)
		}
		wlSeg += ts.Wirelength()
		wlReg += tr.Wirelength()
	}
	if wlReg >= wlSeg*0.97 {
		t.Errorf("regions did not save wire: %g vs segments %g", wlReg, wlSeg)
	}
}

// UST realizes scheduled skews: each sink's path length lands at its
// offset (relative to the earliest) within the slack.
func TestUSTScheduledSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	for trial := 0; trial < 15; trial++ {
		net := randomNet(rng, 4+rng.Intn(16), 100)
		offsets := make([]float64, len(net.Sinks))
		for i := range offsets {
			offsets[i] = rng.Float64() * 25
		}
		slack := 2.0
		opts := UST(offsets, slack)
		topo := GenTopo(net, GreedyDist, slack)
		tr, err := Build(net, topo, opts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// delay_i − offset_i must be equal across sinks within the slack.
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, s := range tr.Sinks() {
			v := tree.PathLength(s) - offsets[s.SinkIdx]
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if hi-lo > slack+1e-6 {
			t.Fatalf("trial %d: scheduled-skew residual %g exceeds slack", trial, hi-lo)
		}
	}
}

// merge's output check grants m.hi-m.lo up to B+1e-6 of rounding slack, so
// its input guard must accept children carrying that much: deep trees
// (million-sink runs) hand a span a few 1e-9 over an exact bound back into
// the next merge, and rejecting them fails a legal construction.
func TestMergeAcceptsProducerRoundingSlack(t *testing.T) {
	opts := Options{Model: Linear, SkewBound: 20, RegionGreed: -1}
	a := &mnode{ms: geom.OctFromPoint(geom.Pt(0, 0)), sinkIdx: -1, lo: 0, hi: 20 + 5e-7}
	b := &mnode{ms: geom.OctFromPoint(geom.Pt(1, 0)), sinkIdx: 0, lo: 10.5, hi: 10.5}
	if _, err := merge(a, b, opts); err != nil {
		t.Fatalf("merge rejected a child within producer rounding slack: %v", err)
	}
	a.hi = 20 + 1e-3 // a genuinely over-bound child must still be rejected
	if _, err := merge(a, b, opts); err == nil {
		t.Fatal("merge accepted a genuinely over-bound child")
	}
}
