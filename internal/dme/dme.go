// Package dme implements deferred-merge embedding for clock trees: the
// classic two-phase construction of zero-skew trees (ZST, Chao et al.) and
// bounded-skew trees (BST, Cong/Kahng/Koh/Tsao) on the Manhattan plane.
//
// Phase 1 walks a binary merging topology bottom-up, computing for every
// internal node a merging region (a tilted rectangular region — see
// geom.TRR) together with the subtree's delay interval and the wire lengths
// assigned to its two child edges. Wire is snaked (edge longer than the
// Manhattan distance) when the skew bound cannot be met otherwise. Phase 2
// embeds the tree top-down, picking for every node the point of its merging
// region nearest to its parent's embedding.
//
// Two delay models are supported: Linear (delay = path length, the model
// under which the paper's SLLT metrics are defined) and Elmore (RC wire
// delay in picoseconds using the tech parameters).
package dme

import (
	"fmt"
	"math"

	"sllt/internal/geom"
	"sllt/internal/obs"
	"sllt/internal/tech"
	"sllt/internal/tree"
)

// Model selects the wire delay model used in merging.
type Model int

// Delay models.
const (
	// Linear treats delay as routed path length (µm).
	Linear Model = iota
	// Elmore uses first-order RC delay (ps) with the tech wire parameters.
	Elmore
)

// String implements fmt.Stringer.
func (m Model) String() string {
	if m == Linear {
		return "linear"
	}
	return "elmore"
}

// SinkFn annotates a sink with a per-sink scalar (its downstream delay or
// load capacitance). Values of this type are called from inside the
// bottom-up merge, so any side effect or hidden input would leak into the
// embedding; implementations must be pure functions of (i, s) and whatever
// immutable data they close over.
//
// pure: contract
type SinkFn func(i int, s tree.PinSink) float64

// Options configures a DME run.
type Options struct {
	// Model is the wire delay model (default Linear).
	Model Model
	// SkewBound is the allowed max−min sink delay: µm of path length for
	// Linear, ps for Elmore. Zero builds a zero-skew tree.
	SkewBound float64
	// Tech supplies wire R/C for the Elmore model.
	Tech tech.Tech
	// SinkDelay optionally gives each sink an initial downstream delay
	// (hierarchical CTS balances cluster roots that already drive subtrees).
	// Nil means zero for all sinks.
	SinkDelay SinkFn
	// SinkCap optionally overrides each sink's load capacitance for Elmore
	// merging. Nil uses s.Cap.
	SinkCap SinkFn
	// RegionGreed in (0,1] controls how much of the skew slack merging
	// regions may consume. Small values approach classic ZST-style merging
	// segments (one split per merge); 1 grows each region to the full union
	// of feasible splits, the Cong et al. BST-DME behavior that trades
	// delay-interval tightness for downstream wirelength. The zero value
	// means the default (1); SegmentRegions selects pure segments.
	RegionGreed float64
	// Kernel, when non-nil, receives work counters (merge constructions,
	// skew-repair snakes). Purely observational: the counters never feed
	// back into any merging decision.
	Kernel *obs.KernelCounters
}

// SegmentRegions is the RegionGreed value for classic single-split merging
// segments (the pre-region ablation baseline).
const SegmentRegions = -1

// regionGreed resolves the RegionGreed default.
func (o Options) regionGreed() float64 {
	switch {
	case geom.Sign(o.RegionGreed) < 0:
		return 0
	case geom.Sign(o.RegionGreed) == 0 || o.RegionGreed > 1:
		return 1
	default:
		return o.RegionGreed
	}
}

// ZST returns options for a zero-skew tree under the linear delay model.
func ZST() Options { return Options{Model: Linear, SkewBound: 0} }

// BST returns options for a bounded-skew tree under the linear delay model.
func BST(bound float64) Options { return Options{Model: Linear, SkewBound: bound} }

// mnode is a subtree during the bottom-up phase.
type mnode struct {
	ms     geom.Octagon // merging region (degenerate = arc/point; octagon for BST)
	lo, hi float64      // delay interval covering every embedding in ms (model units)
	cap    float64      // unit: fF // total downstream capacitance (Elmore)

	// Merge parameters, used by the top-down phase to realize edges.
	// Along the no-detour family the wire toward the left child is t and
	// toward the right child d−t, with t free inside [tlo, thi]; tstar is
	// the span-minimizing preference. Detour merges fix the split.
	d        float64 // unit: um
	tlo, thi float64 // unit: um
	tstar    float64 // unit: um
	detour   bool
	eaFix    float64 // unit: um
	ebFix    float64 // unit: um

	left, right *mnode
	sinkIdx     int // >= 0 for leaves
}

// Build runs DME over the given merging topology and returns the embedded
// clock tree rooted at the net's source. The topology must cover all sinks
// of the net exactly once (tree.Topo.Validate). The result is a pure
// function of (net, topo, opts): stagepure verifies the whole merge reaches
// no clock, randomness or mutable package state.
//
// pure:
func Build(net *tree.Net, topo *tree.Topo, opts Options) (*tree.Tree, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	if err := topo.Validate(len(net.Sinks)); err != nil {
		return nil, err
	}
	root, err := bottomUp(net, topo.Root, opts)
	if err != nil {
		return nil, err
	}
	return topDown(net, root), nil
}

// bottomUp computes merging regions recursively.
//
// hot:
func bottomUp(net *tree.Net, tn *tree.TopoNode, opts Options) (*mnode, error) {
	if tn.IsLeaf() {
		s := net.Sinks[tn.SinkIdx]
		var d0 float64
		if opts.SinkDelay != nil {
			d0 = opts.SinkDelay(tn.SinkIdx, s)
		}
		c := s.Cap
		if opts.SinkCap != nil {
			c = opts.SinkCap(tn.SinkIdx, s)
		}
		return &mnode{
			ms:      geom.OctFromPoint(s.Loc),
			lo:      d0,
			hi:      d0,
			cap:     c,
			sinkIdx: tn.SinkIdx,
		}, nil
	}
	a, err := bottomUp(net, tn.Left, opts)
	if err != nil {
		return nil, err
	}
	b, err := bottomUp(net, tn.Right, opts)
	if err != nil {
		return nil, err
	}
	return merge(a, b, opts)
}

// topDown embeds the merge tree, returning a clock tree rooted at the
// source. The merge-tree root embeds at its region's nearest point to the
// source; every other node embeds at the nearest point of its region to its
// parent's location. Edge lengths are realized per node: the chosen point
// pins the split parameter into the sub-window the bottom-up phase left
// open, keeping the realized delays inside the stored intervals.
func topDown(net *tree.Net, root *mnode) *tree.Tree {
	t := tree.New(net.Source)
	rootLoc := root.ms.Nearest(net.Source)

	var place func(m *mnode, loc geom.Point, parent *tree.Node, edgeLen float64)
	place = func(m *mnode, loc geom.Point, parent *tree.Node, edgeLen float64) {
		var n *tree.Node
		if m.sinkIdx >= 0 {
			n = net.SinkNode(m.sinkIdx)
		} else {
			n = tree.NewNode(tree.Steiner, loc)
		}
		parent.AddChild(n)
		if edgeLen > n.EdgeLen {
			n.EdgeLen = edgeLen // snaked wire
		}
		if m.left == nil {
			return
		}
		var ea, eb float64
		if m.detour {
			ea, eb = m.eaFix, m.ebFix
		} else {
			// loc lies in the union of feasible split rectangles, so the
			// geometric window intersects the delay-feasible one; numeric
			// slop falls back to the geometry.
			da := m.left.ms.DistPoint(loc)
			db := m.right.ms.DistPoint(loc)
			lo := math.Max(m.tlo, da)
			hi := math.Min(m.thi, m.d-db)
			if lo > hi {
				lo = da
				hi = math.Max(da, m.d-db)
			}
			tt := clampF(m.tstar, lo, hi)
			ea, eb = tt, m.d-tt
		}
		place(m.left, m.left.ms.Nearest(loc), n, ea)
		place(m.right, m.right.ms.Nearest(loc), n, eb)
	}

	if root.sinkIdx >= 0 {
		// Single-sink net: direct wire.
		place(root, rootLoc, t.Root, net.Source.Dist(net.Sinks[root.sinkIdx].Loc))
		return t
	}
	place(root, rootLoc, t.Root, net.Source.Dist(rootLoc))
	tree.RemoveRedundantSteiner(t)
	return t
}

// delayAdd returns the delay increase of a wire of the given length driving
// a subtree with the given downstream capacitance. The result is in model
// units (µm for Linear, ps for Elmore), so it stays unannotated.
//
// unit: length um, subCap fF -> _
//
// hot: alloc-free
func (o Options) delayAdd(length, subCap float64) float64 {
	if o.Model == Linear {
		return length
	}
	return o.Tech.WireElmore(length, subCap)
}

// invDelayAdd returns the minimal wire length whose delayAdd reaches target
// (>= 0, in model units) into a subtree with the given capacitance.
//
// unit: subCap fF -> um
//
// hot: alloc-free
func (o Options) invDelayAdd(target, subCap float64) float64 {
	if target <= 0 {
		return 0
	}
	if o.Model == Linear {
		return target
	}
	// Solve r·L·(c·L/2 + cap) = target for L >= 0.
	r, c := o.Tech.RPerUm, o.Tech.CPerUm
	a := r * c / 2
	bq := r * subCap
	// a·L² + b·L − target = 0
	return (-bq + math.Sqrt(bq*bq+4*a*target)) / (2 * a)
}

// merge combines two subtrees under the skew bound, computing the merging
// region, the covering delay interval, and the split parameters the
// top-down phase realizes edges from.
//
// The skew constraints bound the relative delay shift
// δ = g_a(e_a) − g_b(e_b) to [δlo, δhi]; along the no-detour family
// (e_a, e_b) = (t, d−t) the shift h(t) is strictly increasing, so
// feasibility at total wire d is an interval test. When feasible, the
// merging region is the union of the per-t intersection rectangles over the
// window the delay budget allows (scaled by Options.RegionGreed) — a convex
// octilinear region, per Cong et al. — and the stored interval covers every
// embedding in it. Infeasible merges snake exactly one side.
//
// hot:
func merge(a, b *mnode, opts Options) (*mnode, error) {
	d := a.ms.Dist(b.ms)
	B := opts.SkewBound
	spanA := a.hi - a.lo
	spanB := b.hi - b.lo
	// Accept exactly what merge itself guarantees: the output check below
	// bounds m.hi-m.lo by B+1e-6, so a child produced by an earlier merge
	// may carry up to that much accumulated rounding error (hi and lo are
	// absolute delays, so the span subtraction cancels more bits as trees
	// deepen — million-sink runs land a few 1e-9 over an exact bound).
	if spanA > B+1e-6 || spanB > B+1e-6 {
		return nil, fmt.Errorf("dme: child subtree skew (%g, %g) exceeds bound %g", spanA, spanB, B)
	}
	m := &mnode{d: d, left: a, right: b, sinkIdx: -1}
	if opts.Kernel != nil {
		opts.Kernel.DMEMerges.Add(1)
	}

	dlo := b.hi - a.lo - B
	dhi := B - a.hi + b.lo
	dc := clampF(((b.hi+b.lo)-(a.hi+a.lo))/2, dlo, dhi)
	h := func(t float64) float64 {
		return opts.delayAdd(t, a.cap) - opts.delayAdd(d-t, b.cap)
	}

	var ea, eb float64 // only for detour merges
	switch {
	case h(d) < dlo:
		// Even with all of d on a's side, a stays too fast: snake a.
		m.detour = true
		ea, eb = opts.invDelayAdd(dlo, a.cap), 0
	case h(0) > dhi:
		// b too fast: snake b.
		m.detour = true
		ea, eb = 0, opts.invDelayAdd(-dhi, b.cap)
	default:
		t1 := invMonotone(h, d, math.Max(dlo, h(0)))
		t2 := invMonotone(h, d, math.Min(dhi, h(d)))
		ts := invMonotone(h, d, clampF(dc, h(0), h(d)))
		lam := maxWindowScale(a, b, d, B, t1, t2, ts, opts) * opts.regionGreed()
		m.tstar = ts
		m.tlo = ts + lam*(t1-ts)
		m.thi = ts + lam*(t2-ts)
	}

	if m.detour {
		if opts.Kernel != nil {
			opts.Kernel.DMESnakes.Add(1)
		}
		m.eaFix, m.ebFix = ea, eb
		m.ms = a.ms.Expand(ea).Intersect(b.ms.Expand(eb))
		if m.ms.Empty() {
			m.ms = a.ms.Expand(ea + 1e-6).Intersect(b.ms.Expand(eb + 1e-6))
			if m.ms.Empty() {
				return nil, fmt.Errorf("dme: empty merging region (d=%g ea=%g eb=%g)", d, ea, eb)
			}
		}
		da := opts.delayAdd(ea, a.cap)
		db := opts.delayAdd(eb, b.cap)
		m.lo = math.Min(a.lo+da, b.lo+db)
		m.hi = math.Max(a.hi+da, b.hi+db)
		m.cap = a.cap + b.cap + opts.wireCap(ea+eb)
	} else {
		m.ms = unionRegion(a.ms, b.ms, d, m.tlo, m.thi)
		if m.ms.Empty() {
			return nil, fmt.Errorf("dme: empty merging window region (d=%g t=[%g,%g])\nA=%v\nB=%v\nAexp=%v\nBexp=%v\nint=%v", d, m.tlo, m.thi, a.ms, b.ms, a.ms.Expand(m.tlo), b.ms.Expand(d-m.tlo), a.ms.Expand(m.tlo).Intersect(b.ms.Expand(d-m.tlo)))
		}
		// Pessimistic interval over the whole window: lo endpoints at the
		// monotone extremes (g_a increasing, g_b(d−t) decreasing).
		m.lo = math.Min(a.lo+opts.delayAdd(m.tlo, a.cap), b.lo+opts.delayAdd(d-m.thi, b.cap))
		m.hi = math.Max(a.hi+opts.delayAdd(m.thi, a.cap), b.hi+opts.delayAdd(d-m.tlo, b.cap))
		m.cap = a.cap + b.cap + opts.wireCap(d)
	}
	if m.hi-m.lo > B+1e-6 {
		return nil, fmt.Errorf("dme: merged skew %g exceeds bound %g", m.hi-m.lo, B)
	}
	return m, nil
}

// invMonotone returns t in [0, d] with h(t) = target for strictly
// increasing h (clamped to the range boundary).
func invMonotone(h func(float64) float64, d, target float64) float64 {
	lo, hi := 0.0, d
	if h(lo) >= target {
		return lo
	}
	if h(hi) <= target {
		return hi
	}
	for i := 0; i < 64 && hi-lo > 1e-12*(d+1); i++ {
		mid := (lo + hi) / 2
		if h(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// maxWindowScale finds the largest λ in [0,1] such that the delay interval
// covering the window W(λ) = [ts+λ(t1−ts), ts+λ(t2−ts)] still spans at most
// B. The span is monotone in λ.
func maxWindowScale(a, b *mnode, d, B, t1, t2, ts float64, opts Options) float64 {
	span := func(lam float64) float64 {
		wlo := ts + lam*(t1-ts)
		whi := ts + lam*(t2-ts)
		lo := math.Min(a.lo+opts.delayAdd(wlo, a.cap), b.lo+opts.delayAdd(d-whi, b.cap))
		hi := math.Max(a.hi+opts.delayAdd(whi, a.cap), b.hi+opts.delayAdd(d-wlo, b.cap))
		return hi - lo
	}
	if span(1) <= B+1e-12 {
		return 1
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 48; i++ {
		mid := (lo + hi) / 2
		if span(mid) <= B+1e-12 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// unionRegion returns the union of A.Expand(t) ∩ B.Expand(d−t) over
// t ∈ [tlo, thi]. The true union is a convex octilinear region whose
// support in the eight canonical directions is the per-direction extremum
// over t, so the octagonal hull of sampled slices is an exact-at-samples,
// always-valid under-approximation.
func unionRegion(A, B geom.Octagon, d, tlo, thi float64) geom.Octagon {
	const samples = 9
	var out geom.Octagon
	have := false
	for i := 0; i <= samples; i++ {
		t := tlo + (thi-tlo)*float64(i)/float64(samples)
		r := A.Expand(t).Intersect(B.Expand(d - t))
		if r.Empty() {
			r = A.Expand(t + 1e-6).Intersect(B.Expand(d - t + 1e-6))
			if r.Empty() {
				continue
			}
		}
		if !have {
			out, have = r, true
		} else {
			out = out.Hull(r)
		}
	}
	if !have {
		return geom.Octagon{ULo: 1, UHi: 0} // empty; caller reports
	}
	return out
}

// linearSplit computes the child edge lengths for a linear-model merge in
// closed form. Under the linear model the binding constraints are
//
//	inc(t) = a.hi − b.lo − d + 2t ≤ B   (a's slowest vs b's fastest)
//	dec(t) = b.hi − a.lo + d − 2t ≤ B   (b's slowest vs a's fastest)
//
// giving a feasible window [tlo, thi] that is non-empty whenever it
// intersects [0, d]; otherwise exactly one side must be snaked.
//
// unit: d um -> um, um
//
// hot: alloc-free
func linearSplit(a, b *mnode, d, B float64) (ea, eb float64) {
	tlo := (b.hi - a.lo + d - B) / 2
	thi := (B - a.hi + b.lo + d) / 2
	switch {
	case tlo <= d+1e-12 && thi >= -1e-12:
		// Feasible at total length d. Target the delay-balance point, which
		// minimizes the merged interval's span.
		t0 := (b.hi+b.lo-a.hi-a.lo)/4 + d/2
		t := clampF(t0, math.Max(0, tlo), math.Min(d, thi))
		return t, d - t
	case tlo > d:
		// a is too fast: all wire on a's side plus snaking.
		return b.hi - a.lo - B, 0
	default: // thi < 0
		// b is too fast.
		return 0, a.hi - b.lo - B
	}
}

// clampF clamps x into [lo, hi].
//
// hot: alloc-free
func clampF(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// elmoreSplit computes child edge lengths under the Elmore model. The skew
// constraints translate into a band on δ = g_a(e_a) − g_b(e_b), the relative
// delay shift between the subtrees:
//
//	δlo = b.hi − a.lo − B   (b's slowest vs a's fastest)
//	δhi = B − a.hi + b.lo   (a's slowest vs b's fastest)
//
// with δlo ≤ δhi whenever both child spans are within the bound. Along the
// no-detour family e_a = t, e_b = d−t, the shift h(t) = g_a(t) − g_b(d−t)
// is strictly increasing, so feasibility at total length d reduces to an
// interval test and the split to one binary search; when the band lies
// outside h's range, exactly one side is snaked by the closed-form inverse.
//
// unit: d um -> um, um
func elmoreSplit(a, b *mnode, d, B float64, opts Options) (ea, eb float64) {
	dlo := b.hi - a.lo - B
	dhi := B - a.hi + b.lo
	// Midpoint alignment minimizes the merged span.
	dc := clampF(((b.hi+b.lo)-(a.hi+a.lo))/2, dlo, dhi)
	h := func(t float64) float64 {
		return opts.delayAdd(t, a.cap) - opts.delayAdd(d-t, b.cap)
	}
	switch {
	case h(d) < dlo:
		// Even with all of d on a's side, a stays too fast: snake a.
		return opts.invDelayAdd(dlo, a.cap), 0
	case h(0) > dhi:
		// b too fast: snake b (−dhi = a.hi − b.lo − B > g_b(d) here).
		return 0, opts.invDelayAdd(-dhi, b.cap)
	default:
		// Feasible at total length d: solve h(t) = target.
		target := clampF(dc, h(0), h(d))
		lo, hi := 0.0, d
		for i := 0; i < 64 && hi-lo > 1e-12*(d+1); i++ {
			mid := (lo + hi) / 2
			if h(mid) < target {
				lo = mid
			} else {
				hi = mid
			}
		}
		t := (lo + hi) / 2
		return t, d - t
	}
}

// linearMergeCost returns the total wire length a linear-model merge of a
// and b would need under skew bound B, without allocating. Used by the
// Greedy-Merge topology generator's O(n³) pair scan.
//
// unit: -> um
//
// hot: alloc-free
func linearMergeCost(a, b *mnode, B float64) float64 {
	d := a.ms.Dist(b.ms)
	ea, eb := linearSplit(a, b, d, B)
	return ea + eb
}

// wireCap returns the wire capacitance a merge adds; zero under Linear,
// where capacitance never enters the delay model.
//
// unit: length um -> fF
//
// hot: alloc-free
func (o Options) wireCap(length float64) float64 {
	if o.Model == Linear {
		return 0
	}
	return o.Tech.WireCap(length)
}

// UST returns options for a useful-skew tree under the linear delay model:
// sink i's arrival is scheduled offsets[i] later than the common base, with
// at most slack of residual spread (Tsao/Koh's UST/DME generalization of
// BST — scheduled skews fall out of the initial-delay machinery by
// annotating each sink with the negative of its offset).
func UST(offsets []float64, slack float64) Options {
	return Options{
		Model:     Linear,
		SkewBound: slack,
		SinkDelay: func(i int, _ tree.PinSink) float64 {
			if i < len(offsets) {
				return -offsets[i]
			}
			return 0
		},
	}
}
