// Package design is the placement database that hierarchical CTS consumes:
// a die, placed instances with identified flip-flops, and the clock source.
// It is assembled from LEF (macro footprints and pin capacitances) plus DEF
// (placement and connectivity) via FromLEFDEF, or synthesized directly by
// the designgen package.
package design

import (
	"fmt"

	"sllt/internal/geom"
	"sllt/internal/lefdef"
	"sllt/internal/tree"
)

// Instance is one placed cell.
type Instance struct {
	Name  string
	Macro string
	Loc   geom.Point
	// IsSink marks instances whose clock pin belongs to the CTS clock net.
	IsSink bool
	// ClockPin and ClockPinCap describe the clock input when IsSink.
	ClockPin    string
	ClockPinCap float64
}

// Design is a placed netlist ready for CTS.
type Design struct {
	Name     string
	Die      geom.Rect
	DBU      int
	Insts    []Instance
	ClockNet string
	// ClockRoot is where the clock enters the design (IO pin location).
	ClockRoot geom.Point
}

// NumFFs returns the number of clock sinks.
func (d *Design) NumFFs() int {
	n := 0
	for i := range d.Insts {
		if d.Insts[i].IsSink {
			n++
		}
	}
	return n
}

// Utilization returns placed cell area over die area, given a function that
// maps macro names to areas (µm²). Unknown macros count as 0.
func (d *Design) Utilization(areaOf func(macro string) float64) float64 {
	dieArea := d.Die.W() * d.Die.H()
	if dieArea <= 0 {
		return 0
	}
	var a float64
	for i := range d.Insts {
		a += areaOf(d.Insts[i].Macro)
	}
	return a / dieArea
}

// Net returns the flat clock net: source at the clock root, one sink per
// flip-flop clock pin.
func (d *Design) Net() *tree.Net {
	net := &tree.Net{Name: d.ClockNet, Source: d.ClockRoot}
	for i := range d.Insts {
		inst := &d.Insts[i]
		if !inst.IsSink {
			continue
		}
		net.Sinks = append(net.Sinks, tree.PinSink{
			Name: inst.Name + "/" + inst.ClockPin,
			Loc:  inst.Loc,
			Cap:  inst.ClockPinCap,
		})
	}
	return net
}

// FromLEFDEF builds a Design from parsed LEF and DEF. clockNet selects the
// net to synthesize; pass "" to use the first net with USE CLOCK (or, as a
// fallback, a net named "clk").
func FromLEFDEF(lef *lefdef.LEF, def *lefdef.DEF, clockNet string) (*Design, error) {
	d := &Design{Name: def.Design, Die: def.Die, DBU: def.DBU}

	net := def.FindNet(clockNet)
	if clockNet == "" {
		for i := range def.Nets {
			if def.Nets[i].Use == "CLOCK" {
				net = &def.Nets[i]
				break
			}
		}
		if net == nil {
			net = def.FindNet("clk")
		}
	}
	if net == nil {
		return nil, fmt.Errorf("design %s: clock net %q not found", def.Design, clockNet)
	}
	d.ClockNet = net.Name

	// Index the clock net's component pins.
	type sinkPin struct{ pin string }
	onNet := make(map[string]sinkPin)
	rootFound := false
	for _, c := range net.Conns {
		if c.Comp == "PIN" {
			io := def.FindPin(c.Pin)
			if io == nil {
				return nil, fmt.Errorf("design %s: net %s references missing IO pin %s", def.Design, net.Name, c.Pin)
			}
			d.ClockRoot = io.Loc
			rootFound = true
			continue
		}
		onNet[c.Comp] = sinkPin{pin: c.Pin}
	}
	if !rootFound {
		return nil, fmt.Errorf("design %s: clock net %s has no IO pin (clock root)", def.Design, net.Name)
	}

	for _, comp := range def.Components {
		inst := Instance{Name: comp.Name, Macro: comp.Macro, Loc: comp.Loc}
		if sp, ok := onNet[comp.Name]; ok {
			m := lef.FindMacro(comp.Macro)
			if m == nil {
				return nil, fmt.Errorf("design %s: component %s uses unknown macro %s", def.Design, comp.Name, comp.Macro)
			}
			inst.IsSink = true
			inst.ClockPin = sp.pin
			for _, p := range m.Pins {
				if p.Name == sp.pin {
					inst.ClockPinCap = p.Cap
				}
			}
		}
		d.Insts = append(d.Insts, inst)
	}
	if d.NumFFs() == 0 {
		return nil, fmt.Errorf("design %s: clock net %s drives no instances", def.Design, net.Name)
	}
	return d, nil
}
