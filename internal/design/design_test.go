package design

import (
	"testing"

	"sllt/internal/geom"
	"sllt/internal/lefdef"
)

func sampleLEF(t *testing.T) *lefdef.LEF {
	t.Helper()
	lef, err := lefdef.ParseLEF(`
VERSION 5.8 ;
UNITS
  DATABASE MICRONS 1000 ;
END UNITS
MACRO DFFQX1
  CLASS CORE ;
  SIZE 2.5 BY 1.8 ;
  PIN CK
    DIRECTION INPUT ;
    USE CLOCK ;
    CAPACITANCE 1.2 ;
  END CK
END DFFQX1
END LIBRARY`)
	if err != nil {
		t.Fatal(err)
	}
	return lef
}

func sampleDEF(t *testing.T) *lefdef.DEF {
	t.Helper()
	def, err := lefdef.ParseDEF(`
VERSION 5.8 ;
DESIGN demo ;
UNITS DISTANCE MICRONS 1000 ;
DIEAREA ( 0 0 ) ( 50000 50000 ) ;
COMPONENTS 2 ;
  - ff_a DFFQX1 + PLACED ( 10000 10000 ) N ;
  - ff_b DFFQX1 + PLACED ( 40000 40000 ) N ;
END COMPONENTS
PINS 1 ;
  - clk + NET clk + DIRECTION INPUT + USE CLOCK + PLACED ( 0 25000 ) N ;
END PINS
NETS 1 ;
  - clk ( PIN clk ) ( ff_a CK ) ( ff_b CK ) + USE CLOCK ;
END NETS
END DESIGN`)
	if err != nil {
		t.Fatal(err)
	}
	return def
}

func TestFromLEFDEF(t *testing.T) {
	d, err := FromLEFDEF(sampleLEF(t), sampleDEF(t), "")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "demo" || d.ClockNet != "clk" {
		t.Errorf("identity: %s %s", d.Name, d.ClockNet)
	}
	if !d.ClockRoot.Eq(geom.Pt(0, 25)) {
		t.Errorf("clock root = %v", d.ClockRoot)
	}
	if d.NumFFs() != 2 {
		t.Fatalf("FFs = %d", d.NumFFs())
	}
	net := d.Net()
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(net.Sinks) != 2 || net.Sinks[0].Cap != 1.2 {
		t.Errorf("net sinks = %+v", net.Sinks)
	}
	if !net.Source.Eq(d.ClockRoot) {
		t.Error("net source != clock root")
	}
}

func TestFromLEFDEFErrors(t *testing.T) {
	lef, def := sampleLEF(t), sampleDEF(t)
	if _, err := FromLEFDEF(lef, def, "nosuch"); err == nil {
		t.Error("missing net should error")
	}
	// Net without IO pin: no clock root.
	def2 := sampleDEF(t)
	def2.Nets[0].Conns = def2.Nets[0].Conns[1:]
	if _, err := FromLEFDEF(lef, def2, "clk"); err == nil {
		t.Error("net without IO pin should error")
	}
	// Unknown macro on the clock net.
	def3 := sampleDEF(t)
	def3.Components[0].Macro = "MYSTERY"
	if _, err := FromLEFDEF(lef, def3, "clk"); err == nil {
		t.Error("unknown macro should error")
	}
}

func TestUtilization(t *testing.T) {
	d, err := FromLEFDEF(sampleLEF(t), sampleDEF(t), "clk")
	if err != nil {
		t.Fatal(err)
	}
	util := d.Utilization(func(m string) float64 {
		if m == "DFFQX1" {
			return 4.5
		}
		return 0
	})
	want := 2 * 4.5 / (50.0 * 50.0)
	if diff := util - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("util = %g, want %g", util, want)
	}
}
