package geom

import "sort"

// ConvexHull returns the convex hull of pts in counter-clockwise order using
// Andrew's monotone chain. Collinear boundary points are dropped. The input
// slice is not modified. Degenerate inputs (0, 1, 2 points, or all collinear)
// return the extreme points that remain.
func ConvexHull(pts []Point) []Point {
	n := len(pts)
	if n <= 2 {
		out := make([]Point, n)
		copy(out, pts)
		return out
	}
	sorted := make([]Point, n)
	copy(sorted, pts)
	sort.Slice(sorted, func(i, j int) bool {
		//slltlint:ignore floatcmp exact tie-break keeps the sort comparator transitive
		if sorted[i].X != sorted[j].X {
			return sorted[i].X < sorted[j].X
		}
		return sorted[i].Y < sorted[j].Y
	})
	// Dedup.
	uniq := sorted[:1]
	for _, p := range sorted[1:] {
		if !p.Eq(uniq[len(uniq)-1]) {
			uniq = append(uniq, p)
		}
	}
	if len(uniq) <= 2 {
		return uniq
	}

	hull := make([]Point, 0, 2*len(uniq))
	// Lower hull.
	for _, p := range uniq {
		for len(hull) >= 2 && cross(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	// Upper hull.
	lower := len(hull) + 1
	for i := len(uniq) - 2; i >= 0; i-- {
		p := uniq[i]
		for len(hull) >= lower && cross(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	return hull[:len(hull)-1]
}

// cross returns the z-component of (b-a) × (c-a): positive if a→b→c turns
// counter-clockwise.
func cross(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// OnHull reports whether p is a vertex of the given hull.
func OnHull(hull []Point, p Point) bool {
	for _, h := range hull {
		if h.Eq(p) {
			return true
		}
	}
	return false
}
