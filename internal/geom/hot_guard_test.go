package geom

import "testing"

// Guard fixtures: two disjoint octagons and sinks that keep the compiler
// from discarding the guarded calls.
var (
	guardOctA = OctFromPoint(Pt(0, 0)).Expand(3)
	guardOctB = OctFromPoint(Pt(40, 25)).Expand(2)

	guardSinkP Point
	guardSinkF float64
	guardSinkN int
)

// allocFreeGuards pins every // hot: alloc-free kernel in this package at
// zero steady-state allocations, keyed by the kernel's display name. The
// guardcov test in internal/analysis/hotpath checks the map stays in sync
// with the annotations.
var allocFreeGuards = map[string]func(){
	"Octagon.verticesInto": func() {
		var buf [8]Point
		guardSinkN = guardOctA.verticesInto(&buf)
	},
	"clipUVInto": func() {
		var in, out [8][2]float64
		in[0] = [2]float64{1, 0}
		in[1] = [2]float64{1, 1}
		in[2] = [2]float64{0, 1}
		in[3] = [2]float64{0, 0}
		guardSinkN = clipUVInto(&in, 4, 1, 1, 1.2, &out)
	},
	"Octagon.Nearest": func() {
		guardSinkP = guardOctA.Nearest(Pt(30, -20))
	},
	"Octagon.Dist": func() {
		guardSinkF = guardOctA.Dist(guardOctB)
	},
	"nearestOnSegmentL1": func() {
		guardSinkP = nearestOnSegmentL1(Pt(0, 0), Pt(10, 4), Pt(3, 9))
	},
}

func TestAllocFreeGuards(t *testing.T) {
	for name, fn := range allocFreeGuards {
		fn() // warm up any first-call growth before measuring
		if n := testing.AllocsPerRun(100, fn); n != 0 {
			t.Errorf("%s allocates %.1f times per op, want 0", name, n)
		}
	}
}
