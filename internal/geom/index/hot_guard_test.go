package index

import (
	"math"
	"testing"

	"sllt/internal/geom"
)

// Guard fixtures: a static grid over a deterministic 8×8 lattice and sinks
// that keep the compiler from discarding the guarded calls.
var (
	guardPts = func() []geom.Point {
		pts := make([]geom.Point, 0, 64)
		for i := 0; i < 64; i++ {
			pts = append(pts, geom.Pt(float64(i%8)*7.5, float64(i/8)*5.25))
		}
		return pts
	}()
	guardGrid = New(guardPts)

	guardSinkN int
	guardSinkF float64
)

// allocFreeGuards pins every // hot: alloc-free kernel in this package at
// zero steady-state allocations, keyed by the kernel's display name. The
// guardcov test in internal/analysis/hotpath checks the map stays in sync
// with the annotations.
var allocFreeGuards = map[string]func(){
	"Grid.Nearest": func() {
		guardSinkN, guardSinkF = guardGrid.Nearest(geom.Pt(13, 11), nil)
	},
	"Grid.NearestInOctant": func() {
		guardSinkN, guardSinkF = guardGrid.NearestInOctant(geom.Pt(13, 11), 3, nil)
	},
	"Grid.nearest": func() {
		guardSinkN, guardSinkF = guardGrid.nearest(geom.Pt(29, 2), -1, nil)
	},
	"Grid.scanCell": func() {
		guardSinkN, guardSinkF = guardGrid.scanCell(geom.Pt(3, 3), 0, -1, nil, -1, math.Inf(1))
	},
}

func TestAllocFreeGuards(t *testing.T) {
	for name, fn := range allocFreeGuards {
		fn() // warm up any first-call growth before measuring
		if n := testing.AllocsPerRun(100, fn); n != 0 {
			t.Errorf("%s allocates %.1f times per op, want 0", name, n)
		}
	}
}
