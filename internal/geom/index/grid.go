// Package index provides deterministic spatial indexes over Manhattan-plane
// point sets: a uniform bucket grid with expanding-ring nearest-neighbor
// queries (optionally supporting point removal), and octant-restricted
// nearest queries used for rectilinear-MST candidate generation.
//
// Every query is byte-identical to the exhaustive scan it replaces: the true
// nearest point always wins, and exact distance ties break toward the lowest
// point index. That rule is what lets the rsmt and partition hot paths swap
// their O(n) scans for grid queries without perturbing a single output bit
// of the same-seed determinism contract (see DESIGN.md "Determinism &
// invariants").
//
// Queries allocate nothing in steady state — the ring walk touches only
// prebuilt cell slices — which the AllocsPerRun guard in grid_test.go pins.
package index

import (
	"math"

	"sllt/internal/geom"
	"sllt/internal/obs"
)

// Grid is a uniform bucket grid over a fixed point set. The zero value is
// not usable; construct with New or NewRemovable. Queries are read-only and
// safe for concurrent use; Remove is not.
type Grid struct {
	pts  []geom.Point // coordinates in µm, like all placement geometry
	cell float64      // unit: um // cell side length
	x0   float64      // unit: um // grid origin
	y0   float64      // unit: um
	nx   int
	ny   int
	// cells holds point indices per cell in ascending order (fill order).
	cells [][]int32
	// alive tracks removals (NewRemovable only; nil means all points live).
	alive      []bool
	liveInCell []int32
	liveTotal  int
	// rebuildAt triggers compaction: when liveTotal drains to it, the cell
	// table is rebuilt over the survivors so query rings stay ~1 point per
	// cell instead of expanding across emptied buckets.
	rebuildAt int
	// Kernel, when non-nil, receives per-query counters (GridQueries and
	// GridRingSteps). Atomic adds keep queries schedule-independent and
	// allocation-free, so the counters never perturb results or the
	// steady-state zero-alloc guarantee.
	Kernel *obs.KernelCounters
}

// New builds a static grid over pts. The points slice is retained, not
// copied; callers must not mutate it while the grid is in use.
func New(pts []geom.Point) *Grid {
	return build(pts, false)
}

// NewRemovable builds a grid over pts that additionally supports Remove.
func NewRemovable(pts []geom.Point) *Grid {
	return build(pts, true)
}

func build(pts []geom.Point, removable bool) *Grid {
	g := &Grid{pts: pts, liveTotal: len(pts)}
	n := len(pts)
	if n == 0 {
		g.cell = 1
		g.nx, g.ny = 1, 1
		g.cells = make([][]int32, 1)
		return g
	}
	if removable {
		g.alive = make([]bool, n)
		for i := range g.alive {
			g.alive[i] = true
		}
		g.rebuildAt = n / 2
	}
	g.rebuild()
	return g
}

// rebuild lays out and fills the cell table over the live point set. Called
// at construction and again by Remove-triggered compaction; the live set and
// the lowest-index tie rule fully determine every query answer, so a rebuild
// changes walk cost only, never results.
func (g *Grid) rebuild() {
	n := g.liveTotal
	r := geom.EmptyRect()
	for i, p := range g.pts {
		if g.alive != nil && !g.alive[i] {
			continue
		}
		r = r.Grow(p)
	}
	g.x0, g.y0 = r.XLo, r.YLo
	w, h := r.W(), r.H()
	// Aim for ~1 point per cell; degenerate extents (collinear or coincident
	// sets) fall back to slicing the longer axis, then to a single cell.
	cell := math.Sqrt(w * h / float64(n))
	if cell <= 0 {
		cell = math.Max(w, h) / float64(n)
	}
	if cell <= 0 {
		cell = 1
	}
	nx, ny := int(w/cell)+1, int(h/cell)+1
	// Skewed aspect ratios can explode the cell count (nx·ny ≈ n·w/h for a
	// thin sliver); coarsen until the table stays linear in n.
	for nx*ny > 4*n+4 {
		cell *= 2
		nx, ny = int(w/cell)+1, int(h/cell)+1
	}
	g.cell, g.nx, g.ny = cell, nx, ny
	g.cells = make([][]int32, nx*ny)
	counts := make([]int32, nx*ny)
	for i, p := range g.pts {
		if g.alive != nil && !g.alive[i] {
			continue
		}
		counts[g.cellOf(p)]++
	}
	backing := make([]int32, n)
	off := int32(0)
	for ci, c := range counts {
		g.cells[ci] = backing[off : off : off+c]
		off += c
	}
	// Ascending fill keeps each cell's indices sorted, preserving the
	// lowest-index tie rule across compactions.
	for i, p := range g.pts {
		if g.alive != nil && !g.alive[i] {
			continue
		}
		ci := g.cellOf(p)
		g.cells[ci] = append(g.cells[ci], int32(i))
	}
	if g.alive != nil {
		g.liveInCell = counts // fill counts double as live counts
	}
}

// cellOf returns the flattened cell index containing p, clamped to the grid.
func (g *Grid) cellOf(p geom.Point) int {
	cx, cy := g.coords(p)
	return cy*g.nx + cx
}

// coords returns p's clamped (cx, cy) cell coordinates.
func (g *Grid) coords(p geom.Point) (int, int) {
	cx := int((p.X - g.x0) / g.cell)
	cy := int((p.Y - g.y0) / g.cell)
	if cx < 0 {
		cx = 0
	} else if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= g.ny {
		cy = g.ny - 1
	}
	return cx, cy
}

// Len returns the number of indexed points (including removed ones).
func (g *Grid) Len() int { return len(g.pts) }

// Live returns the number of points still present (Len for static grids).
func (g *Grid) Live() int { return g.liveTotal }

// Remove deletes point i from a grid built with NewRemovable. Removing an
// already-removed point is a no-op. Panics on static grids.
//
// Each time the live count halves, the cell table is recompacted over the
// survivors (amortized O(1) per removal, geometric series), so drain-heavy
// callers like grid-Prim keep ~1 live point per cell throughout instead of
// walking ever-wider rings of emptied buckets.
//
// hot:
func (g *Grid) Remove(i int) {
	if !g.alive[i] {
		return
	}
	g.alive[i] = false
	g.liveInCell[g.cellOf(g.pts[i])]--
	g.liveTotal--
	if g.liveTotal > 0 && g.liveTotal <= g.rebuildAt {
		g.rebuild()
		g.rebuildAt = g.liveTotal / 2
	}
}

// Nearest returns the index of the live point nearest to q under Manhattan
// distance, together with that distance, skipping points for which skip
// returns true (skip may be nil). Exact distance ties break toward the
// lowest index — the same answer an ascending exhaustive scan produces.
// Returns (-1, 0) when no live point qualifies.
//
// unit: -> _, um
//
// hot: alloc-free
func (g *Grid) Nearest(q geom.Point, skip func(int) bool) (int, float64) {
	return g.nearest(q, -1, skip)
}

// NearestInOctant is Nearest restricted to points whose displacement from q
// falls in the given octant (0..7, counter-clockwise from east; each sector
// boundary ray belongs to exactly one of its two neighbors, and points
// coincident with q count as octant 0). The union of the eight
// octant-nearest neighbors of every point is the classic sparse edge
// superset that contains a rectilinear MST.
//
// unit: -> _, um
//
// hot: alloc-free
func (g *Grid) NearestInOctant(q geom.Point, oct int, skip func(int) bool) (int, float64) {
	return g.nearest(q, oct, skip)
}

// nearest is the expanding-ring walk behind both public queries: prebuilt
// cell slices only, no per-query state.
//
// hot: alloc-free
func (g *Grid) nearest(q geom.Point, oct int, skip func(int) bool) (int, float64) {
	if g.liveTotal == 0 {
		return -1, 0
	}
	if g.Kernel != nil {
		g.Kernel.GridQueries.Add(1)
	}
	rings := int64(0)
	cx, cy := g.coords(q)
	best := -1
	bestD := math.Inf(1)
	maxRing := g.nx + g.ny
	for r := 0; r <= maxRing; r++ {
		rings = int64(r)
		// A point in a ring-r cell is at least (r−1)·cell away from q (q may
		// sit anywhere inside its own clamped cell), so once the bound passes
		// the incumbent the search is complete.
		if best >= 0 && float64(r-1)*g.cell > bestD {
			break
		}
		top, bot := cy-r, cy+r
		xlo, xhi := cx-r, cx+r
		if top < 0 && bot >= g.ny && xlo < 0 && xhi >= g.nx {
			break // the ring lies entirely outside the grid; so do all later ones
		}
		// Full top/bottom rows of the ring, x-clamped once up front.
		rxlo, rxhi := xlo, xhi
		if rxlo < 0 {
			rxlo = 0
		}
		if rxhi >= g.nx {
			rxhi = g.nx - 1
		}
		if top >= 0 {
			row := top * g.nx
			for x := rxlo; x <= rxhi; x++ {
				best, bestD = g.scanCell(q, row+x, oct, skip, best, bestD)
			}
		}
		if bot < g.ny && bot != top {
			row := bot * g.nx
			for x := rxlo; x <= rxhi; x++ {
				best, bestD = g.scanCell(q, row+x, oct, skip, best, bestD)
			}
		}
		// Side columns between the rows, y-clamped.
		sylo, syhi := top+1, bot-1
		if sylo < 0 {
			sylo = 0
		}
		if syhi >= g.ny {
			syhi = g.ny - 1
		}
		scanL, scanR := xlo >= 0, xhi < g.nx && xhi != xlo
		if scanL || scanR {
			for y := sylo; y <= syhi; y++ {
				row := y * g.nx
				if scanL {
					best, bestD = g.scanCell(q, row+xlo, oct, skip, best, bestD)
				}
				if scanR {
					best, bestD = g.scanCell(q, row+xhi, oct, skip, best, bestD)
				}
			}
		}
	}
	if g.Kernel != nil {
		g.Kernel.GridRingSteps.Add(rings)
	}
	if best < 0 {
		return -1, 0
	}
	return best, bestD
}

// scanCell folds cell ci's live points into the (best, bestD) incumbent.
//
// hot: alloc-free
func (g *Grid) scanCell(q geom.Point, ci, oct int, skip func(int) bool, best int, bestD float64) (int, float64) {
	if g.alive != nil && g.liveInCell[ci] == 0 {
		return best, bestD
	}
	for _, i32 := range g.cells[ci] {
		i := int(i32)
		if g.alive != nil && !g.alive[i] {
			continue
		}
		if skip != nil && skip(i) {
			continue
		}
		p := g.pts[i]
		if oct >= 0 && octantOf(p.X-q.X, p.Y-q.Y) != oct {
			continue
		}
		d := q.Dist(p)
		//slltlint:ignore floatcmp exact equality implements the lowest-index tie rule the scans it replaces rely on
		if d < bestD || (d == bestD && i < best) {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// octantOf classifies a displacement into one of eight 45° sectors,
// counter-clockwise from east; every boundary ray lands in exactly one of
// its two adjacent sectors, so the sectors partition the plane. The zero
// displacement maps to octant 0.
func octantOf(dx, dy float64) int {
	switch {
	case dx > 0 && dy >= 0:
		if dy < dx {
			return 0
		}
		return 1
	case dx <= 0 && dy > 0:
		if -dx <= dy {
			return 2
		}
		return 3
	case dx < 0 && dy <= 0:
		if -dy <= -dx {
			return 4
		}
		return 5
	case dy < 0:
		if dx < -dy {
			return 6
		}
		return 7
	}
	return 0 // dx == 0 && dy == 0
}
