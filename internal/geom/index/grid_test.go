package index

import (
	"math"
	"math/rand"
	"testing"

	"sllt/internal/geom"
)

// bruteNearest is the oracle: ascending scan, strict-< keeps the lowest
// index on exact ties — the rule every accelerated caller relies on.
func bruteNearest(pts []geom.Point, q geom.Point, skip func(int) bool) (int, float64) {
	best, bd := -1, math.Inf(1)
	for i, p := range pts {
		if skip != nil && skip(i) {
			continue
		}
		if d := q.Dist(p); d < bd {
			best, bd = i, d
		}
	}
	if best < 0 {
		return -1, 0
	}
	return best, bd
}

func bruteNearestInOctant(pts []geom.Point, q geom.Point, oct int, skip func(int) bool) (int, float64) {
	return bruteNearest(pts, q, func(i int) bool {
		if skip != nil && skip(i) {
			return true
		}
		return octantOf(pts[i].X-q.X, pts[i].Y-q.Y) != oct
	})
}

func randPts(n int, rng *rand.Rand) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	return pts
}

func TestNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 7, 50, 300} {
		pts := randPts(n, rng)
		g := New(pts)
		for trial := 0; trial < 200; trial++ {
			q := geom.Pt(rng.Float64()*120-10, rng.Float64()*120-10)
			gi, gd := g.Nearest(q, nil)
			bi, bd := bruteNearest(pts, q, nil)
			if gi != bi || gd != bd {
				t.Fatalf("n=%d q=%v: grid (%d,%g) != brute (%d,%g)", n, q, gi, gd, bi, bd)
			}
		}
	}
}

func TestNearestWithSkip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	pts := randPts(120, rng)
	g := New(pts)
	skip := func(i int) bool { return i%3 == 0 }
	for trial := 0; trial < 200; trial++ {
		q := pts[rng.Intn(len(pts))]
		gi, gd := g.Nearest(q, skip)
		bi, bd := bruteNearest(pts, q, skip)
		if gi != bi || gd != bd {
			t.Fatalf("q=%v: grid (%d,%g) != brute (%d,%g)", q, gi, gd, bi, bd)
		}
	}
	// Skipping everything must report no result.
	if i, _ := g.Nearest(pts[0], func(int) bool { return true }); i != -1 {
		t.Fatalf("all-skipped query returned %d, want -1", i)
	}
}

// TestNearestLowestIndexTies uses integer coordinates so that many points sit
// at exactly equal Manhattan distances; the grid must resolve every tie to
// the lowest index, like the ascending scans it replaces.
func TestNearestLowestIndexTies(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pts := make([]geom.Point, 400)
	for i := range pts {
		pts[i] = geom.Pt(float64(rng.Intn(12)), float64(rng.Intn(12)))
	}
	g := New(pts)
	for trial := 0; trial < 300; trial++ {
		q := geom.Pt(float64(rng.Intn(14)-1), float64(rng.Intn(14)-1))
		gi, gd := g.Nearest(q, nil)
		bi, bd := bruteNearest(pts, q, nil)
		if gi != bi || gd != bd {
			t.Fatalf("q=%v: grid (%d,%g) != brute (%d,%g)", q, gi, gd, bi, bd)
		}
	}
}

func TestNearestWithRemovals(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	pts := randPts(250, rng)
	g := NewRemovable(pts)
	alive := make([]bool, len(pts))
	for i := range alive {
		alive[i] = true
	}
	skipDead := func(i int) bool { return !alive[i] }
	order := rng.Perm(len(pts))
	for k, victim := range order {
		g.Remove(victim)
		g.Remove(victim) // double removal must be a no-op
		alive[victim] = false
		if g.Live() != len(pts)-k-1 {
			t.Fatalf("Live()=%d after %d removals", g.Live(), k+1)
		}
		q := pts[order[(k+7)%len(order)]]
		gi, gd := g.Nearest(q, nil)
		bi, bd := bruteNearest(pts, q, skipDead)
		if gi != bi || gd != bd {
			t.Fatalf("after %d removals q=%v: grid (%d,%g) != brute (%d,%g)", k+1, q, gi, gd, bi, bd)
		}
	}
	if i, _ := g.Nearest(geom.Pt(0, 0), nil); i != -1 {
		t.Fatalf("empty grid returned %d, want -1", i)
	}
}

func TestNearestDegenerateSets(t *testing.T) {
	cases := map[string][]geom.Point{
		"empty":      {},
		"single":     {geom.Pt(3, 4)},
		"coincident": {geom.Pt(5, 5), geom.Pt(5, 5), geom.Pt(5, 5), geom.Pt(5, 5)},
		"hline":      {geom.Pt(0, 2), geom.Pt(1, 2), geom.Pt(2, 2), geom.Pt(9, 2), geom.Pt(40, 2)},
		"vline":      {geom.Pt(-1, 0), geom.Pt(-1, 3), geom.Pt(-1, 80), geom.Pt(-1, 81)},
		"sliver":     {geom.Pt(0, 0), geom.Pt(10000, 1), geom.Pt(20000, 0.5), geom.Pt(5000, 0.2), geom.Pt(15000, 0.9)},
	}
	for name, pts := range cases {
		g := New(pts)
		queries := append([]geom.Point{geom.Pt(0, 0), geom.Pt(7, 7), geom.Pt(-3, 50)}, pts...)
		for _, q := range queries {
			gi, gd := g.Nearest(q, nil)
			bi, bd := bruteNearest(pts, q, nil)
			if gi != bi || gd != bd {
				t.Fatalf("%s q=%v: grid (%d,%g) != brute (%d,%g)", name, q, gi, gd, bi, bd)
			}
		}
	}
}

func TestOctantOfPartitionsPlane(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	// Every displacement (including axis and diagonal cases) must land in
	// exactly one octant 0..7 adjacent to its ray — boundary rays belong to
	// exactly one of their two neighboring sectors.
	checks := []struct {
		dx, dy float64
		want   int
	}{
		{1, 0, 0}, {1, 1, 1}, {0, 1, 2}, {-1, 1, 2},
		{-1, 0, 4}, {-1, -1, 4}, {0, -1, 6}, {1, -1, 7},
	}
	for _, c := range checks {
		if got := octantOf(c.dx, c.dy); got != c.want {
			t.Fatalf("octantOf(%g,%g)=%d, want %d", c.dx, c.dy, got, c.want)
		}
	}
	if got := octantOf(0, 0); got != 0 {
		t.Fatalf("octantOf(0,0)=%d, want 0", got)
	}
	for trial := 0; trial < 1000; trial++ {
		dx, dy := rng.NormFloat64(), rng.NormFloat64()
		oct := octantOf(dx, dy)
		if oct < 0 || oct > 7 {
			t.Fatalf("octantOf(%g,%g)=%d out of range", dx, dy, oct)
		}
	}
}

func TestNearestInOctantMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	pts := randPts(300, rng)
	g := New(pts)
	for trial := 0; trial < 100; trial++ {
		qi := rng.Intn(len(pts))
		q := pts[qi]
		self := func(i int) bool { return i == qi }
		for oct := 0; oct < 8; oct++ {
			gi, gd := g.NearestInOctant(q, oct, self)
			bi, bd := bruteNearestInOctant(pts, q, oct, self)
			if gi != bi || gd != bd {
				t.Fatalf("q=%v oct=%d: grid (%d,%g) != brute (%d,%g)", q, oct, gi, gd, bi, bd)
			}
		}
	}
}

// TestNearestSteadyStateZeroAllocs pins the package contract that queries
// allocate nothing: a regression here silently wrecks the MST and swap
// kernels' constants at the 10⁵ tier.
func TestNearestSteadyStateZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pts := randPts(2000, rng)
	g := New(pts)
	q := geom.Pt(50, 50)
	if avg := testing.AllocsPerRun(100, func() { g.Nearest(q, nil) }); avg != 0 {
		t.Fatalf("Nearest allocates %.1f/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { g.NearestInOctant(q, 3, nil) }); avg != 0 {
		t.Fatalf("NearestInOctant allocates %.1f/op, want 0", avg)
	}
}
