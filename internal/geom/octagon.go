package geom

import (
	"fmt"
	"math"
)

// Octagon is a convex octilinear region: the intersection of half-planes in
// the four Manhattan-relevant directions. In the rotated (u,v) space it is
//
//	ULo ≤ u ≤ UHi,  VLo ≤ v ≤ VHi,
//	SLo ≤ u+v ≤ SHi  (u+v = 2x),
//	WLo ≤ u−v ≤ WHi  (u−v = 2y),
//
// which covers TRRs (S/W unconstrained), axis-aligned rectangles (U/V
// unconstrained) and every shape in between. Bounded-skew DME merging
// regions are exactly such octagons (Cong/Kahng/Koh/Tsao), which is why the
// type lives here.
//
// Operations keep the octagon in canonical (tightened) form, where every
// bound is attained.
type Octagon struct {
	ULo, UHi float64
	VLo, VHi float64
	SLo, SHi float64
	WLo, WHi float64
}

// OctFromTRR lifts a TRR into octagon form.
func OctFromTRR(t TRR) Octagon {
	o := Octagon{
		ULo: t.ULo, UHi: t.UHi,
		VLo: t.VLo, VHi: t.VHi,
		SLo: math.Inf(-1), SHi: math.Inf(1),
		WLo: math.Inf(-1), WHi: math.Inf(1),
	}
	return o.Canon()
}

// OctFromPoint returns the degenerate octagon holding exactly p.
func OctFromPoint(p Point) Octagon { return OctFromTRR(TRRFromPoint(p)) }

// String implements fmt.Stringer.
func (o Octagon) String() string {
	return fmt.Sprintf("Oct[u:%g..%g v:%g..%g s:%g..%g w:%g..%g]",
		o.ULo, o.UHi, o.VLo, o.VHi, o.SLo, o.SHi, o.WLo, o.WHi)
}

// Canon tightens all bounds to their attained values (difference-bound
// closure over the four direction pairs). Bound pairs that come out
// inverted within tolerance — the float residue of long expand/intersect
// chains on degenerate regions — are snapped to their midpoint, which
// stops the inversion from amplifying through repeated tightening while
// leaving genuinely empty regions (gap above Eps) inverted.
func (o Octagon) Canon() Octagon {
	for i := 0; i < 3; i++ {
		o.SLo = math.Max(o.SLo, o.ULo+o.VLo)
		o.SHi = math.Min(o.SHi, o.UHi+o.VHi)
		o.WLo = math.Max(o.WLo, o.ULo-o.VHi)
		o.WHi = math.Min(o.WHi, o.UHi-o.VLo)
		o.ULo = math.Max(o.ULo, math.Max(o.SLo-o.VHi, o.WLo+o.VLo))
		o.UHi = math.Min(o.UHi, math.Min(o.SHi-o.VLo, o.WHi+o.VHi))
		o.VLo = math.Max(o.VLo, math.Max(o.SLo-o.UHi, o.ULo-o.WHi))
		o.VHi = math.Min(o.VHi, math.Min(o.SHi-o.ULo, o.UHi-o.WLo))
	}
	snapPair(&o.ULo, &o.UHi)
	snapPair(&o.VLo, &o.VHi)
	snapPair(&o.SLo, &o.SHi)
	snapPair(&o.WLo, &o.WHi)
	return o
}

func snapPair(lo, hi *float64) {
	if *lo > *hi && *lo-*hi <= Eps {
		m := (*lo + *hi) / 2
		*lo, *hi = m, m
	}
}

// Empty reports whether the region contains no points.
func (o Octagon) Empty() bool {
	return o.ULo > o.UHi+Eps || o.VLo > o.VHi+Eps ||
		o.SLo > o.SHi+Eps || o.WLo > o.WHi+Eps
}

// Contains reports whether p lies in the region (within Eps).
func (o Octagon) Contains(p Point) bool {
	q := p.ToUV()
	s, w := q.U+q.V, q.U-q.V
	return q.U >= o.ULo-Eps && q.U <= o.UHi+Eps &&
		q.V >= o.VLo-Eps && q.V <= o.VHi+Eps &&
		s >= o.SLo-2*Eps && s <= o.SHi+2*Eps &&
		w >= o.WLo-2*Eps && w <= o.WHi+2*Eps
}

// Expand returns the Minkowski sum with the Manhattan ball of radius r: the
// tilted square of radius r in (x,y), which is the Chebyshev square in
// (u,v). u/v bounds grow by r; the diagonal s/w bounds grow by 2r (the
// square's support in the diagonal directions).
func (o Octagon) Expand(r float64) Octagon {
	if r < 0 {
		r = 0
	}
	return Octagon{
		ULo: o.ULo - r, UHi: o.UHi + r,
		VLo: o.VLo - r, VHi: o.VHi + r,
		SLo: o.SLo - 2*r, SHi: o.SHi + 2*r,
		WLo: o.WLo - 2*r, WHi: o.WHi + 2*r,
	}.Canon()
}

// Intersect returns the intersection (possibly empty).
func (o Octagon) Intersect(p Octagon) Octagon {
	return Octagon{
		ULo: math.Max(o.ULo, p.ULo), UHi: math.Min(o.UHi, p.UHi),
		VLo: math.Max(o.VLo, p.VLo), VHi: math.Min(o.VHi, p.VHi),
		SLo: math.Max(o.SLo, p.SLo), SHi: math.Min(o.SHi, p.SHi),
		WLo: math.Max(o.WLo, p.WLo), WHi: math.Min(o.WHi, p.WHi),
	}.Canon()
}

// Hull returns the smallest octagon containing both operands: per-direction
// support maxima. For 4-direction octagons this is exactly the convex hull
// when the operands slide along a common corner trajectory (the DME merging
// union); in general it is the tightest octagonal cover.
func (o Octagon) Hull(p Octagon) Octagon {
	return Octagon{
		ULo: math.Min(o.ULo, p.ULo), UHi: math.Max(o.UHi, p.UHi),
		VLo: math.Min(o.VLo, p.VLo), VHi: math.Max(o.VHi, p.VHi),
		SLo: math.Min(o.SLo, p.SLo), SHi: math.Max(o.SHi, p.SHi),
		WLo: math.Min(o.WLo, p.WLo), WHi: math.Max(o.WHi, p.WHi),
	}.Canon()
}

// Vertices returns the (up to 8) corners of the octagon in (x,y),
// counter-clockwise, computed by clipping the U/V rectangle against the
// four diagonal half-planes (Sutherland–Hodgman). Degenerate octagons may
// return fewer vertices; an empty octagon returns none.
func (o Octagon) Vertices() []Point {
	var buf [8]Point
	n := o.verticesInto(&buf)
	if n == 0 {
		return nil
	}
	out := make([]Point, n)
	copy(out, buf[:n])
	return out
}

// verticesInto writes the octagon's corners (counter-clockwise,
// deduplicated) into buf and returns the count. A 4-gon clipped by four
// half-planes gains at most one vertex per clip, so eight slots always
// suffice and the whole computation stays on the caller's stack — this is
// the zero-allocation core behind Vertices, Nearest, and Dist, which the
// DME merge loop calls per candidate pair.
//
// hot: alloc-free
func (o Octagon) verticesInto(buf *[8]Point) int {
	if o.Empty() {
		return 0
	}
	// Start from the (u,v) rectangle, counter-clockwise.
	var pa, pb [8][2]float64
	pa[0] = [2]float64{o.UHi, o.VLo}
	pa[1] = [2]float64{o.UHi, o.VHi}
	pa[2] = [2]float64{o.ULo, o.VHi}
	pa[3] = [2]float64{o.ULo, o.VLo}
	n := 4
	// Half-planes a·u + b·v <= c.
	clips := [4][3]float64{
		{1, 1, o.SHi},
		{-1, -1, -o.SLo},
		{1, -1, o.WHi},
		{-1, 1, -o.WLo},
	}
	cur, nxt := &pa, &pb
	for _, hp := range clips {
		n = clipUVInto(cur, n, hp[0], hp[1], hp[2], nxt)
		if n == 0 {
			return 0
		}
		cur, nxt = nxt, cur
	}
	m := 0
	for _, c := range cur[:n] {
		p := UV{U: c[0], V: c[1]}.ToXY()
		if m == 0 || !buf[m-1].Eq(p) {
			buf[m] = p
			m++
		}
	}
	if m > 1 && buf[0].Eq(buf[m-1]) {
		m--
	}
	return m
}

// clipUVInto clips the convex polygon in[:n] (in (u,v) coordinates) against
// a·u+b·v <= c, writing the result into out and returning its vertex count.
// Clipping a convex polygon by one half-plane adds at most one vertex, so
// out never needs more than 8 slots along the verticesInto chain.
//
// hot: alloc-free
func clipUVInto(in *[8][2]float64, n int, a, b, c float64, out *[8][2]float64) int {
	m := 0
	for i := 0; i < n; i++ {
		p, q := in[i], in[(i+1)%n]
		fp := a*p[0] + b*p[1] - c
		fq := a*q[0] + b*q[1] - c
		if fp <= Eps {
			out[m] = p
			m++
		}
		if (fp < -Eps && fq > Eps) || (fp > Eps && fq < -Eps) {
			t := fp / (fp - fq)
			out[m] = [2]float64{p[0] + t*(q[0]-p[0]), p[1] + t*(q[1]-p[1])}
			m++
		}
	}
	return m
}

// Nearest returns the point of the region with minimum Manhattan distance
// to p.
//
// hot: alloc-free
func (o Octagon) Nearest(p Point) Point {
	if o.Contains(p) {
		return p
	}
	var buf [8]Point
	n := o.verticesInto(&buf)
	verts := buf[:n]
	best := verts[0]
	bestD := best.Dist(p)
	for i := range verts {
		a, b := verts[i], verts[(i+1)%len(verts)]
		q := nearestOnSegmentL1(a, b, p)
		if d := q.Dist(p); d < bestD {
			best, bestD = q, d
		}
	}
	return best
}

// DistPoint returns the Manhattan distance from p to the region.
func (o Octagon) DistPoint(p Point) float64 {
	return o.Nearest(p).Dist(p)
}

// Dist returns the minimum Manhattan distance between two octagons (0 when
// they intersect). Computed over vertex-edge pairs, which is exact for
// convex polygons under any norm.
//
// hot: alloc-free
func (o Octagon) Dist(p Octagon) float64 {
	if !o.Intersect(p).Empty() {
		return 0
	}
	best := math.Inf(1)
	var bo, bp [8]Point
	vo, vp := bo[:o.verticesInto(&bo)], bp[:p.verticesInto(&bp)]
	for _, v := range vo {
		for i := range vp {
			q := nearestOnSegmentL1(vp[i], vp[(i+1)%len(vp)], v)
			if d := q.Dist(v); d < best {
				best = d
			}
		}
	}
	for _, v := range vp {
		for i := range vo {
			q := nearestOnSegmentL1(vo[i], vo[(i+1)%len(vo)], v)
			if d := q.Dist(v); d < best {
				best = d
			}
		}
	}
	return best
}

// AnyPoint returns a representative interior point.
func (o Octagon) AnyPoint() Point {
	u := (o.ULo + o.UHi) / 2
	v := (o.VLo + o.VHi) / 2
	// Clamp the center into the diagonal bands.
	s := clamp(u+v, o.SLo, o.SHi)
	w := clamp(u-v, o.WLo, o.WHi)
	return UV{U: (s + w) / 2, V: (s - w) / 2}.ToXY()
}

// nearestOnSegmentL1 returns the point on segment ab minimizing Manhattan
// distance to p. The distance along the segment is piecewise linear in the
// parameter, so the minimum is at one of at most six breakpoints, collected
// in a fixed stack buffer.
//
// hot: alloc-free
func nearestOnSegmentL1(a, b, p Point) Point {
	dx, dy := b.X-a.X, b.Y-a.Y
	var cands [6]float64
	cands[0], cands[1] = 0, 1
	n := 2
	if Sign(dx) != 0 {
		cands[n] = (p.X - a.X) / dx // |dx(t)| = 0
		n++
	}
	if Sign(dy) != 0 {
		cands[n] = (p.Y - a.Y) / dy // |dy(t)| = 0
		n++
	}
	// |dx(t)| = |dy(t)| breakpoints.
	if Sign(dx-dy) != 0 {
		cands[n] = (p.X - a.X - (p.Y - a.Y)) / (dx - dy)
		n++
	}
	if Sign(dx+dy) != 0 {
		cands[n] = (p.X - a.X + (p.Y - a.Y)) / (dx + dy)
		n++
	}
	best := a
	bestD := math.Inf(1)
	for _, t := range cands[:n] {
		t = clamp(t, 0, 1)
		q := Pt(a.X+t*dx, a.Y+t*dy)
		if d := q.Dist(p); d < bestD {
			best, bestD = q, d
		}
	}
	return best
}
