package geom

import (
	"math/rand"
	"testing"
)

func TestConvexHullSquare(t *testing.T) {
	pts := []Point{
		Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10),
		Pt(5, 5), Pt(3, 7), Pt(1, 1), // interior
		Pt(5, 0), Pt(0, 5), // collinear on boundary
	}
	h := ConvexHull(pts)
	if len(h) != 4 {
		t.Fatalf("hull size = %d, want 4: %v", len(h), h)
	}
	for _, c := range []Point{Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10)} {
		if !OnHull(h, c) {
			t.Errorf("corner %v missing from hull %v", c, h)
		}
	}
	if OnHull(h, Pt(5, 5)) {
		t.Error("interior point on hull")
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	if got := ConvexHull(nil); len(got) != 0 {
		t.Errorf("empty hull = %v", got)
	}
	if got := ConvexHull([]Point{Pt(1, 1)}); len(got) != 1 {
		t.Errorf("single-point hull = %v", got)
	}
	// All-collinear points collapse to the two extremes.
	got := ConvexHull([]Point{Pt(0, 0), Pt(1, 1), Pt(2, 2), Pt(3, 3)})
	if len(got) != 2 {
		t.Errorf("collinear hull = %v", got)
	}
}

func TestConvexHullContainsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		pts := make([]Point, 30)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*100, rng.Float64()*100)
		}
		h := ConvexHull(pts)
		if len(h) < 3 {
			t.Fatalf("hull degenerate for random points: %v", h)
		}
		// Every input point must be inside or on the hull (CCW orientation:
		// cross >= 0 for every edge).
		for _, p := range pts {
			for i := range h {
				a, b := h[i], h[(i+1)%len(h)]
				if cross(a, b, p) < -1e-6 {
					t.Fatalf("point %v outside hull edge %v-%v", p, a, b)
				}
			}
		}
	}
}
