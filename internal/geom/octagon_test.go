package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randOct(rng *rand.Rand) Octagon {
	// Random non-empty octagon: a TRR expanded and clipped by diagonal bands.
	p := Pt(rng.Float64()*100-50, rng.Float64()*100-50)
	o := OctFromPoint(p).Expand(rng.Float64() * 20)
	if rng.Intn(2) == 0 {
		cut := Octagon{
			ULo: math.Inf(-1), UHi: math.Inf(1),
			VLo: math.Inf(-1), VHi: math.Inf(1),
			SLo: 2*p.X - 30*rng.Float64(), SHi: 2*p.X + 30*rng.Float64(),
			WLo: math.Inf(-1), WHi: math.Inf(1),
		}
		if c := o.Intersect(cut); !c.Empty() {
			o = c
		}
	}
	return o
}

func randPointIn(o Octagon, rng *rand.Rand) (Point, bool) {
	for try := 0; try < 200; try++ {
		u := o.ULo + rng.Float64()*(o.UHi-o.ULo)
		v := o.VLo + rng.Float64()*(o.VHi-o.VLo)
		p := UV{U: u, V: v}.ToXY()
		if o.Contains(p) {
			return p, true
		}
	}
	return o.AnyPoint(), !o.Empty()
}

func TestOctFromPoint(t *testing.T) {
	p := Pt(3, 7)
	o := OctFromPoint(p)
	if !o.Contains(p) {
		t.Fatal("point octagon misses its point")
	}
	if o.Contains(Pt(3.1, 7)) {
		t.Fatal("point octagon contains a neighbor")
	}
	if !o.AnyPoint().Eq(p) {
		t.Fatalf("AnyPoint = %v", o.AnyPoint())
	}
}

func TestOctExpandContains(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		o := randOct(rng)
		if o.Empty() {
			continue
		}
		p, ok := randPointIn(o, rng)
		if !ok {
			continue
		}
		r := rng.Float64() * 10
		ex := o.Expand(r)
		// Any point within Manhattan distance r of p is in the expansion.
		ang := rng.Float64() * r
		q := Pt(p.X+ang, p.Y+(r-ang))
		if !ex.Contains(q) {
			t.Fatalf("expand(%g) misses %v at distance %g from %v\no=%v\nex=%v", r, q, p.Dist(q), p, o, ex)
		}
	}
}

func TestOctVerticesInside(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		o := randOct(rng)
		if o.Empty() {
			continue
		}
		for _, v := range o.Vertices() {
			if !o.Contains(v) {
				t.Fatalf("vertex %v outside its octagon %v", v, o)
			}
		}
	}
}

func TestOctNearestIsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		o := randOct(rng)
		if o.Empty() {
			continue
		}
		p := Pt(rng.Float64()*300-150, rng.Float64()*300-150)
		n := o.Nearest(p)
		if !o.Contains(n) {
			t.Fatalf("Nearest %v not in octagon %v", n, o)
		}
		best := n.Dist(p)
		// No sampled interior point may be closer.
		for i := 0; i < 60; i++ {
			q, ok := randPointIn(o, rng)
			if ok && q.Dist(p) < best-1e-6 {
				t.Fatalf("sample %v closer (%g) than Nearest %v (%g) to %v in %v",
					q, q.Dist(p), n, best, p, o)
			}
		}
	}
}

func TestOctDistSymmetricAndTight(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 150; trial++ {
		a, b := randOct(rng), randOct(rng)
		if a.Empty() || b.Empty() {
			continue
		}
		d1, d2 := a.Dist(b), b.Dist(a)
		if math.Abs(d1-d2) > 1e-6 {
			t.Fatalf("asymmetric distance %g vs %g", d1, d2)
		}
		// No sampled pair may be closer; expansion by d must intersect.
		for i := 0; i < 40; i++ {
			p, ok1 := randPointIn(a, rng)
			q, ok2 := randPointIn(b, rng)
			if ok1 && ok2 && p.Dist(q) < d1-1e-6 {
				t.Fatalf("sampled pair at %g below Dist %g", p.Dist(q), d1)
			}
		}
		if d1 > 0 && a.Expand(d1+1e-6).Intersect(b).Empty() {
			t.Fatalf("expansion by Dist %g does not reach the other region", d1)
		}
	}
}

func TestOctMatchesTRR(t *testing.T) {
	// Octagon ops must reduce to TRR ops on TRR-shaped inputs.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		p1 := Pt(rng.Float64()*100, rng.Float64()*100)
		p2 := Pt(rng.Float64()*100, rng.Float64()*100)
		r1, r2 := rng.Float64()*25, rng.Float64()*25
		t1 := TRRFromPoint(p1).Expand(r1)
		t2 := TRRFromPoint(p2).Expand(r2)
		o1 := OctFromTRR(t1)
		o2 := OctFromTRR(t2)
		if got, want := o1.Dist(o2), t1.Dist(t2); math.Abs(got-want) > 1e-6 {
			t.Fatalf("octagon dist %g != TRR dist %g", got, want)
		}
		q := Pt(rng.Float64()*200-50, rng.Float64()*200-50)
		if got, want := o1.Nearest(q).Dist(q), t1.Nearest(q).Dist(q); math.Abs(got-want) > 1e-6 {
			t.Fatalf("octagon nearest dist %g != TRR %g", got, want)
		}
	}
}

func TestOctHullContainsBoth(t *testing.T) {
	f := func(ax, ay, bx, by, ra, rb float64) bool {
		norm := func(x float64) float64 { return math.Mod(math.Abs(x), 100) }
		a := OctFromPoint(Pt(norm(ax), norm(ay))).Expand(norm(ra) / 4)
		b := OctFromPoint(Pt(norm(bx), norm(by))).Expand(norm(rb) / 4)
		h := a.Hull(b)
		return h.Contains(a.AnyPoint()) && h.Contains(b.AnyPoint()) &&
			!h.Intersect(a).Empty() && !h.Intersect(b).Empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOctCanonIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 200; trial++ {
		o := randOct(rng).Canon()
		o2 := o.Canon()
		if o != o2 {
			t.Fatalf("canon not idempotent: %v vs %v", o, o2)
		}
	}
}
