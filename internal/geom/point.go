// Package geom provides Manhattan-plane geometry for clock tree synthesis:
// points, bounding boxes, rotated (u,v) coordinates, tilted rectangular
// regions (TRRs) used by deferred-merge embedding, and convex hulls.
//
// Coordinates are float64 in micrometers. Algorithms that need exact integer
// geometry (DEF emission) convert database units at the boundary.
package geom

import (
	"fmt"
	"math"
)

// Eps is the tolerance used for geometric comparisons. One millionth of a
// micrometer (a picometer) is far below any manufacturable grid.
const Eps = 1e-6

// Point is a location on the Manhattan plane, in micrometers.
type Point struct {
	X, Y float64
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%g,%g)", p.X, p.Y) }

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p translated by -q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p with both coordinates multiplied by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dist returns the Manhattan (L1) distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

// DistEuclid returns the Euclidean (L2) distance between p and q.
func (p Point) DistEuclid(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Eq reports whether p and q coincide within Eps.
func (p Point) Eq(q Point) bool {
	return math.Abs(p.X-q.X) <= Eps && math.Abs(p.Y-q.Y) <= Eps
}

// Lerp returns the point a fraction t of the way from p to q (t in [0,1]).
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// UV is a point in the 45°-rotated coordinate system u = x+y, v = x−y.
// Manhattan distance in (x,y) equals Chebyshev (L∞) distance in (u,v),
// which turns tilted rectangles into axis-aligned ones.
type UV struct {
	U, V float64
}

// ToUV rotates p into (u,v) space.
func (p Point) ToUV() UV { return UV{U: p.X + p.Y, V: p.X - p.Y} }

// ToXY rotates back into (x,y) space.
func (q UV) ToXY() Point { return Point{X: (q.U + q.V) / 2, Y: (q.U - q.V) / 2} }

// Cheb returns the Chebyshev distance between two UV points, which equals
// the Manhattan distance between their pre-images.
func (q UV) Cheb(r UV) float64 {
	du := math.Abs(q.U - r.U)
	dv := math.Abs(q.V - r.V)
	return math.Max(du, dv)
}

// Rect is an axis-aligned rectangle on the (x,y) plane. It is closed:
// boundary points are inside. An empty rectangle has XLo > XHi or YLo > YHi.
type Rect struct {
	XLo, YLo, XHi, YHi float64
}

// EmptyRect returns the canonical empty rectangle, ready to Grow.
func EmptyRect() Rect {
	inf := math.Inf(1)
	return Rect{XLo: inf, YLo: inf, XHi: -inf, YHi: -inf}
}

// RectOf returns the bounding box of the given points.
func RectOf(pts ...Point) Rect {
	r := EmptyRect()
	for _, p := range pts {
		r = r.Grow(p)
	}
	return r
}

// Empty reports whether r contains no points.
func (r Rect) Empty() bool { return r.XLo > r.XHi || r.YLo > r.YHi }

// Grow returns r expanded to contain p.
func (r Rect) Grow(p Point) Rect {
	return Rect{
		XLo: math.Min(r.XLo, p.X), YLo: math.Min(r.YLo, p.Y),
		XHi: math.Max(r.XHi, p.X), YHi: math.Max(r.YHi, p.Y),
	}
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		XLo: math.Min(r.XLo, s.XLo), YLo: math.Min(r.YLo, s.YLo),
		XHi: math.Max(r.XHi, s.XHi), YHi: math.Max(r.YHi, s.YHi),
	}
}

// Contains reports whether p lies in r (boundary inclusive, within Eps).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.XLo-Eps && p.X <= r.XHi+Eps && p.Y >= r.YLo-Eps && p.Y <= r.YHi+Eps
}

// Center returns the midpoint of r.
func (r Rect) Center() Point { return Point{(r.XLo + r.XHi) / 2, (r.YLo + r.YHi) / 2} }

// W returns the width of r (0 for empty).
func (r Rect) W() float64 {
	if r.Empty() {
		return 0
	}
	return r.XHi - r.XLo
}

// H returns the height of r (0 for empty).
func (r Rect) H() float64 {
	if r.Empty() {
		return 0
	}
	return r.YHi - r.YLo
}

// HalfPerimeter returns the half-perimeter wirelength of r.
func (r Rect) HalfPerimeter() float64 { return r.W() + r.H() }
