package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestTRRFromPointContains(t *testing.T) {
	p := Pt(3, 7)
	trr := TRRFromPoint(p)
	if !trr.IsPoint() {
		t.Fatal("point TRR should be degenerate")
	}
	if !trr.Contains(p) {
		t.Fatal("point TRR should contain its point")
	}
	if trr.Contains(Pt(3.5, 7)) {
		t.Fatal("point TRR should not contain other points")
	}
}

func TestTRRExpandContains(t *testing.T) {
	p := Pt(0, 0)
	trr := TRRFromPoint(p).Expand(5)
	// Boundary of a radius-5 tilted square.
	for _, q := range []Point{Pt(5, 0), Pt(0, 5), Pt(-5, 0), Pt(0, -5), Pt(2, 3), Pt(-2.5, -2.5)} {
		if !trr.Contains(q) {
			t.Errorf("expanded TRR should contain %v", q)
		}
	}
	for _, q := range []Point{Pt(5.1, 0), Pt(3, 3), Pt(-4, 2)} {
		if trr.Contains(q) {
			t.Errorf("expanded TRR should not contain %v", q)
		}
	}
}

// Expanding two point-TRRs by radii that sum to their distance must yield a
// non-empty intersection (the merging segment) whose every corner is at the
// right distance from both centers. This is the core DME invariant.
func TestTRRMergingSegment(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a := Pt(rng.Float64()*100, rng.Float64()*100)
		b := Pt(rng.Float64()*100, rng.Float64()*100)
		d := a.Dist(b)
		if d < 1 {
			continue
		}
		ra := rng.Float64() * d
		rb := d - ra
		ms := TRRFromPoint(a).Expand(ra).Intersect(TRRFromPoint(b).Expand(rb))
		if ms.Empty() {
			t.Fatalf("merging segment empty: a=%v b=%v ra=%g rb=%g", a, b, ra, rb)
		}
		for _, c := range ms.Corners() {
			da, db := c.Dist(a), c.Dist(b)
			if da > ra+1e-6 || db > rb+1e-6 {
				t.Fatalf("corner %v outside radii: da=%g ra=%g db=%g rb=%g", c, da, ra, db, rb)
			}
		}
	}
}

func TestTRRDist(t *testing.T) {
	a := TRRFromPoint(Pt(0, 0))
	b := TRRFromPoint(Pt(10, 0))
	if got := a.Dist(b); math.Abs(got-10) > 1e-9 {
		t.Errorf("point-point TRR dist = %g, want 10", got)
	}
	// Expanded regions move closer by the sum of radii.
	if got := a.Expand(3).Dist(b.Expand(2)); math.Abs(got-5) > 1e-9 {
		t.Errorf("expanded TRR dist = %g, want 5", got)
	}
	// Overlapping regions have distance 0.
	if got := a.Expand(6).Dist(b.Expand(6)); got != 0 {
		t.Errorf("overlapping TRR dist = %g, want 0", got)
	}
}

func TestTRRDistMatchesNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		a := TRRFromPoint(Pt(rng.Float64()*200-100, rng.Float64()*200-100)).Expand(rng.Float64() * 30)
		b := TRRFromPoint(Pt(rng.Float64()*200-100, rng.Float64()*200-100)).Expand(rng.Float64() * 30)
		d := a.Dist(b)
		pa, pb := a.NearestTo(b)
		if !a.Contains(pa) || !b.Contains(pb) {
			t.Fatalf("nearest points outside their regions: %v %v", pa, pb)
		}
		if math.Abs(pa.Dist(pb)-d) > 1e-6 {
			t.Fatalf("NearestTo dist %g != Dist %g", pa.Dist(pb), d)
		}
	}
}

func TestTRRNearestIsClosest(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		trr := TRRFromPoint(Pt(rng.Float64()*100, rng.Float64()*100)).Expand(rng.Float64() * 20)
		p := Pt(rng.Float64()*300-100, rng.Float64()*300-100)
		n := trr.Nearest(p)
		if !trr.Contains(n) {
			t.Fatalf("Nearest %v not inside %v", n, trr)
		}
		// Sample the region; nothing should be closer.
		best := n.Dist(p)
		for j := 0; j < 50; j++ {
			u := trr.ULo + rng.Float64()*(trr.UHi-trr.ULo)
			v := trr.VLo + rng.Float64()*(trr.VHi-trr.VLo)
			q := UV{U: u, V: v}.ToXY()
			if q.Dist(p) < best-1e-6 {
				t.Fatalf("sample %v closer (%g) than Nearest %v (%g)", q, q.Dist(p), n, best)
			}
		}
	}
}

func TestTRRIntersectEmpty(t *testing.T) {
	a := TRRFromPoint(Pt(0, 0)).Expand(1)
	b := TRRFromPoint(Pt(100, 100)).Expand(1)
	if !a.Intersect(b).Empty() {
		t.Error("far-apart TRRs should not intersect")
	}
}

func TestTRRFromSegment(t *testing.T) {
	// Points on a common +45 line form a Manhattan arc (degenerate in v).
	a, b := Pt(0, 0), Pt(5, 5)
	trr := TRRFromSegment(a, b)
	if math.Abs(trr.VHi-trr.VLo) > Eps {
		t.Errorf("45-degree segment should be degenerate in v: %v", trr)
	}
	if !trr.Contains(Pt(2, 2)) {
		t.Error("segment TRR should contain midpoint")
	}
}
