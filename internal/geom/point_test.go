package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Pt(0, 0), Pt(0, 0), 0},
		{Pt(0, 0), Pt(3, 4), 7},
		{Pt(-1, -2), Pt(1, 2), 6},
		{Pt(5, 5), Pt(5, 9), 4},
	}
	for _, c := range cases {
		if got := c.p.Dist(c.q); got != c.want {
			t.Errorf("Dist(%v,%v) = %g, want %g", c.p, c.q, got, c.want)
		}
		if got := c.q.Dist(c.p); got != c.want {
			t.Errorf("Dist symmetric (%v,%v) = %g, want %g", c.q, c.p, got, c.want)
		}
	}
}

func TestUVRoundTrip(t *testing.T) {
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
			return true
		}
		x = math.Mod(x, 1e9)
		y = math.Mod(y, 1e9)
		p := Pt(x, y)
		q := p.ToUV().ToXY()
		return math.Abs(p.X-q.X) < 1e-6 && math.Abs(p.Y-q.Y) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUVChebEqualsManhattan(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		p := Pt(rng.Float64()*1000-500, rng.Float64()*1000-500)
		q := Pt(rng.Float64()*1000-500, rng.Float64()*1000-500)
		md := p.Dist(q)
		cd := p.ToUV().Cheb(q.ToUV())
		if math.Abs(md-cd) > 1e-9 {
			t.Fatalf("Manhattan %g != Chebyshev-in-UV %g for %v %v", md, cd, p, q)
		}
	}
}

func TestLerp(t *testing.T) {
	p, q := Pt(0, 0), Pt(10, 20)
	if got := p.Lerp(q, 0.5); !got.Eq(Pt(5, 10)) {
		t.Errorf("Lerp half = %v", got)
	}
	if got := p.Lerp(q, 0); !got.Eq(p) {
		t.Errorf("Lerp 0 = %v", got)
	}
	if got := p.Lerp(q, 1); !got.Eq(q) {
		t.Errorf("Lerp 1 = %v", got)
	}
}

func TestRectBasics(t *testing.T) {
	r := RectOf(Pt(1, 2), Pt(5, -3), Pt(0, 0))
	if r.XLo != 0 || r.XHi != 5 || r.YLo != -3 || r.YHi != 2 {
		t.Fatalf("RectOf = %+v", r)
	}
	if !r.Contains(Pt(3, 0)) || r.Contains(Pt(6, 0)) {
		t.Error("Contains wrong")
	}
	if r.W() != 5 || r.H() != 5 || r.HalfPerimeter() != 10 {
		t.Errorf("W/H/HPWL = %g %g %g", r.W(), r.H(), r.HalfPerimeter())
	}
	if EmptyRect().Empty() != true {
		t.Error("EmptyRect not empty")
	}
	if !EmptyRect().Union(r).Center().Eq(r.Center()) {
		t.Error("Union with empty should be identity")
	}
}
