package geom

import "math"

// AlmostEqual reports whether a and b are equal within Eps. It is the
// epsilon-comparison helper the floatcmp lint rule prescribes wherever
// geometry or timing code would otherwise compare floats exactly: merged
// coordinates, path lengths and Elmore delays all carry rounding error, so
// exact == on them is a branch-nondeterminism hazard.
func AlmostEqual(a, b float64) bool {
	return math.Abs(a-b) <= Eps
}

// Sign returns the sign of x with Eps tolerance: -1 when x < -Eps, +1 when
// x > Eps, and 0 when x is within Eps of zero. It replaces exact zero tests
// (x == 0, x != 0) on inexact quantities.
func Sign(x float64) int {
	switch {
	case x > Eps:
		return 1
	case x < -Eps:
		return -1
	}
	return 0
}
