package geom

import (
	"math"
	"testing"
)

func TestAlmostEqual(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{0, 0, true},
		{1, 1, true},
		{1, 1 + Eps/2, true},
		{1, 1 + 2*Eps, false},
		{-3.5, -3.5 - Eps/4, true},
		{0, 1, false},
		// The motivating case: an accumulated rounding error below Eps.
		{0.1 + 0.2, 0.3, true},
	}
	for _, c := range cases {
		if got := AlmostEqual(c.a, c.b); got != c.want {
			t.Errorf("AlmostEqual(%g, %g) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	if AlmostEqual(math.NaN(), math.NaN()) {
		t.Error("NaN must not compare almost-equal")
	}
}

func TestSign(t *testing.T) {
	cases := []struct {
		x    float64
		want int
	}{
		{0, 0},
		{Eps / 2, 0},
		{-Eps / 2, 0},
		{2 * Eps, 1},
		{-2 * Eps, -1},
		{1e9, 1},
		{-1e9, -1},
	}
	for _, c := range cases {
		if got := Sign(c.x); got != c.want {
			t.Errorf("Sign(%g) = %d, want %d", c.x, got, c.want)
		}
	}
}
