package geom

import (
	"fmt"
	"math"
)

// TRR is a tilted rectangular region: a rectangle whose sides have slope ±1
// on the (x,y) plane. In the rotated (u,v) space it is axis-aligned, so all
// TRR algebra reduces to interval arithmetic.
//
// TRRs are the fundamental object of deferred-merge embedding (DME): the
// locus of points at a fixed Manhattan distance from a point is a tilted
// square boundary, the set within distance r is a tilted square (a TRR),
// and merging segments are degenerate TRRs (Manhattan arcs).
//
// The zero TRR is invalid; construct with TRRFromPoint, TRRFromUV, or by
// expanding/intersecting existing TRRs. An empty TRR has ULo > UHi or
// VLo > VHi.
type TRR struct {
	ULo, VLo, UHi, VHi float64
}

// TRRFromPoint returns the degenerate TRR holding exactly p.
func TRRFromPoint(p Point) TRR {
	q := p.ToUV()
	return TRR{ULo: q.U, VLo: q.V, UHi: q.U, VHi: q.V}
}

// TRRFromSegment returns the TRR spanning the Manhattan arc between two
// points that must lie on a common ±45° line (or coincide). For general
// point pairs it returns their (u,v) bounding box, which is the smallest
// TRR containing both.
func TRRFromSegment(p, q Point) TRR {
	a, b := p.ToUV(), q.ToUV()
	return TRR{
		ULo: math.Min(a.U, b.U), VLo: math.Min(a.V, b.V),
		UHi: math.Max(a.U, b.U), VHi: math.Max(a.V, b.V),
	}
}

// String implements fmt.Stringer.
func (t TRR) String() string {
	return fmt.Sprintf("TRR[u:%g..%g v:%g..%g]", t.ULo, t.UHi, t.VLo, t.VHi)
}

// Empty reports whether t contains no points.
func (t TRR) Empty() bool { return t.ULo > t.UHi+Eps || t.VLo > t.VHi+Eps }

// IsPoint reports whether t is a single point (within Eps).
func (t TRR) IsPoint() bool {
	return !t.Empty() && t.UHi-t.ULo <= Eps && t.VHi-t.VLo <= Eps
}

// Expand returns the Minkowski sum of t with a tilted square of radius r:
// every point within Manhattan distance r of t. r must be >= 0.
func (t TRR) Expand(r float64) TRR {
	if r < 0 {
		r = 0
	}
	return TRR{ULo: t.ULo - r, VLo: t.VLo - r, UHi: t.UHi + r, VHi: t.VHi + r}
}

// Intersect returns the intersection of t and s (possibly empty).
func (t TRR) Intersect(s TRR) TRR {
	return TRR{
		ULo: math.Max(t.ULo, s.ULo), VLo: math.Max(t.VLo, s.VLo),
		UHi: math.Min(t.UHi, s.UHi), VHi: math.Min(t.VHi, s.VHi),
	}
}

// Dist returns the minimum Manhattan distance between any point of t and any
// point of s (0 if they intersect). Both must be non-empty.
func (t TRR) Dist(s TRR) float64 {
	du := intervalGap(t.ULo, t.UHi, s.ULo, s.UHi)
	dv := intervalGap(t.VLo, t.VHi, s.VLo, s.VHi)
	// Chebyshev separation between axis-aligned rectangles in (u,v):
	// the gap along each axis closes independently, so the distance is the
	// larger of the two gaps.
	return math.Max(du, dv)
}

func intervalGap(aLo, aHi, bLo, bHi float64) float64 {
	if aHi < bLo {
		return bLo - aHi
	}
	if bHi < aLo {
		return aLo - bHi
	}
	return 0
}

// Contains reports whether p lies in t.
func (t TRR) Contains(p Point) bool {
	q := p.ToUV()
	return q.U >= t.ULo-Eps && q.U <= t.UHi+Eps && q.V >= t.VLo-Eps && q.V <= t.VHi+Eps
}

// Nearest returns the point of t with minimum Manhattan distance to p.
// For degenerate directions the lattice-consistent clamp is used, so the
// result is stable and always inside t.
func (t TRR) Nearest(p Point) Point {
	q := p.ToUV()
	u := clamp(q.U, t.ULo, t.UHi)
	v := clamp(q.V, t.VLo, t.VHi)
	return UV{U: u, V: v}.ToXY()
}

// NearestTo returns the pair of points (one in t, one in s) achieving the
// minimum Manhattan distance between the two regions.
func (t TRR) NearestTo(s TRR) (Point, Point) {
	// Work per axis in (u,v): closest interval points.
	tu, su := nearestOnAxis(t.ULo, t.UHi, s.ULo, s.UHi)
	tv, sv := nearestOnAxis(t.VLo, t.VHi, s.VLo, s.VHi)
	return UV{U: tu, V: tv}.ToXY(), UV{U: su, V: sv}.ToXY()
}

func nearestOnAxis(aLo, aHi, bLo, bHi float64) (a, b float64) {
	switch {
	case aHi < bLo:
		return aHi, bLo
	case bHi < aLo:
		return aLo, bHi
	default: // overlapping: meet in the shared interval
		lo := math.Max(aLo, bLo)
		hi := math.Min(aHi, bHi)
		m := (lo + hi) / 2
		return m, m
	}
}

// AnyPoint returns a representative point of t (its center).
func (t TRR) AnyPoint() Point {
	return UV{U: (t.ULo + t.UHi) / 2, V: (t.VLo + t.VHi) / 2}.ToXY()
}

// Corners returns the four corners of t on the (x,y) plane in order.
// Degenerate TRRs repeat corners.
func (t TRR) Corners() [4]Point {
	return [4]Point{
		UV{U: t.ULo, V: t.VLo}.ToXY(),
		UV{U: t.UHi, V: t.VLo}.ToXY(),
		UV{U: t.UHi, V: t.VHi}.ToXY(),
		UV{U: t.ULo, V: t.VHi}.ToXY(),
	}
}

// BBox returns the axis-aligned (x,y) bounding box of t.
func (t TRR) BBox() Rect {
	c := t.Corners()
	return RectOf(c[0], c[1], c[2], c[3])
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
