package invariants

import (
	"math"
	"strings"
	"testing"

	"sllt/internal/geom"
	"sllt/internal/tree"
)

// balancedTree builds a small well-formed tree: source at the origin, two
// Steiner arms, four sinks at equal path length 20.
func balancedTree() *tree.Tree {
	t := tree.New(geom.Pt(0, 0))
	left := tree.NewNode(tree.Steiner, geom.Pt(-10, 0))
	right := tree.NewNode(tree.Steiner, geom.Pt(10, 0))
	t.Root.AddChild(left)
	t.Root.AddChild(right)
	for i, p := range []geom.Point{
		geom.Pt(-10, 10), geom.Pt(-10, -10), geom.Pt(10, 10), geom.Pt(10, -10),
	} {
		s := tree.NewNode(tree.Sink, p)
		s.PinCap = 2
		s.SinkIdx = i
		if p.X < 0 {
			left.AddChild(s)
		} else {
			right.AddChild(s)
		}
	}
	return t
}

func wantErr(t *testing.T, err error, substr string) {
	t.Helper()
	if err == nil {
		t.Fatalf("expected error containing %q, got nil", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("error %q does not contain %q", err, substr)
	}
}

func TestCheckTreeAcceptsWellFormed(t *testing.T) {
	tr := balancedTree()
	if err := CheckTree(tr); err != nil {
		t.Fatalf("well-formed tree rejected: %v", err)
	}
	if err := CheckLoad(tr, 0.2); err != nil {
		t.Fatalf("load check failed: %v", err)
	}
	if err := CheckSkew(tr, 0, geom.Eps); err != nil {
		t.Fatalf("balanced tree has skew: %v", err)
	}
	if err := CheckGamma(tr, 1, geom.Eps); err != nil {
		t.Fatalf("balanced tree has γ>1: %v", err)
	}
}

func TestCheckTreeNil(t *testing.T) {
	wantErr(t, CheckTree(nil), "nil tree")
	wantErr(t, CheckTree(&tree.Tree{}), "nil tree")
}

func TestCheckTreeRootParent(t *testing.T) {
	tr := balancedTree()
	tr.Root.Parent = tr.Root.Children[0]
	wantErr(t, CheckTree(tr), "root has a parent")
}

func TestCheckTreeCycle(t *testing.T) {
	tr := balancedTree()
	// Close a cycle: a leaf adopts the root as its child.
	leaf := tr.Root.Children[0].Children[0]
	leaf.Kind = tree.Steiner
	leaf.Children = append(leaf.Children, tr.Root)
	tr.Root.Parent = leaf
	tr.Root.Parent = nil // keep the root check quiet; the cycle must still trip
	wantErr(t, CheckTree(tr), "wrong parent")
}

func TestCheckTreeSharedNode(t *testing.T) {
	tr := balancedTree()
	shared := tr.Root.Children[0].Children[0]
	// Graft the same node under the other arm as well.
	tr.Root.Children[1].Children = append(tr.Root.Children[1].Children, shared)
	wantErr(t, CheckTree(tr), "wrong parent")
	// With the parent pointer "fixed" toward the second arm, the first arm
	// now holds the asymmetric link.
	wantErr(t, CheckTree(tr), "parent")
}

func TestCheckTreeParentChildSymmetry(t *testing.T) {
	tr := balancedTree()
	tr.Root.Children[0].Children[0].Parent = tr.Root
	wantErr(t, CheckTree(tr), "wrong parent")
}

func TestCheckTreeSinkLeaf(t *testing.T) {
	tr := balancedTree()
	s := tr.Root.Children[0].Children[0]
	s.Children = append(s.Children, tree.NewNode(tree.Steiner, s.Loc))
	s.Children[0].Parent = s
	wantErr(t, CheckTree(tr), "has 1 children")
}

func TestCheckTreeEdgeBelowManhattan(t *testing.T) {
	tr := balancedTree()
	tr.Root.Children[0].EdgeLen = 5 // Manhattan distance is 10
	wantErr(t, CheckTree(tr), "below Manhattan")
}

func TestCheckTreeSnakedEdgeAllowed(t *testing.T) {
	tr := balancedTree()
	tr.Root.Children[0].EdgeLen = 17 // snaking beyond Manhattan is legal
	if err := CheckTree(tr); err != nil {
		t.Fatalf("snaked edge rejected: %v", err)
	}
}

func TestCheckTreeBadScalars(t *testing.T) {
	tr := balancedTree()
	tr.Root.Children[0].EdgeLen = -1
	wantErr(t, CheckTree(tr), "bad edge length")

	tr = balancedTree()
	tr.Root.Children[0].Children[0].PinCap = -3
	wantErr(t, CheckTree(tr), "bad pin cap")

	tr = balancedTree()
	tr.Root.Children[1].Loc = geom.Pt(math.Inf(1), 2)
	wantErr(t, CheckTree(tr), "non-finite location")
}

func TestCheckLoadMatchesTotalLoad(t *testing.T) {
	tr := balancedTree()
	if err := CheckLoad(tr, 0.12); err != nil {
		t.Fatalf("CheckLoad: %v", err)
	}
	wantErr(t, CheckLoad(nil, 0.12), "nil tree")
	wantErr(t, CheckLoad(tr, -1), "negative capPerUnit")
}

func TestCheckSkewBound(t *testing.T) {
	tr := balancedTree()
	// Lengthen one sink's edge: skew becomes 7.
	tr.Root.Children[0].Children[0].EdgeLen += 7
	if err := CheckSkew(tr, 7, geom.Eps); err != nil {
		t.Fatalf("skew within bound rejected: %v", err)
	}
	wantErr(t, CheckSkew(tr, 6.5, geom.Eps), "skew")
}

func TestCheckSkewFewSinks(t *testing.T) {
	tr := tree.New(geom.Pt(0, 0))
	s := tree.NewNode(tree.Sink, geom.Pt(5, 5))
	tr.Root.AddChild(s)
	if err := CheckSkew(tr, 0, 0); err != nil {
		t.Fatalf("single-sink tree must trivially pass: %v", err)
	}
}

func TestCheckGammaBound(t *testing.T) {
	tr := balancedTree()
	tr.Root.Children[0].Children[0].EdgeLen += 20 // one path 40, rest 20: γ = 40/25
	if err := CheckGamma(tr, 1.6, geom.Eps); err != nil {
		t.Fatalf("γ within bound rejected: %v", err)
	}
	wantErr(t, CheckGamma(tr, 1.5, geom.Eps), "skewness")
}
