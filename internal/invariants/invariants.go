// Package invariants provides a runtime checker for clock-tree structural
// and electrical invariants, for use in test suites after every tree
// construction or transformation. It complements the static slltlint
// analyzers: the analyzers keep the algorithms deterministic at the source
// level, this package keeps the trees they build well-formed at run time.
//
// CheckTree is the entry point; the finer-grained checks (CheckLoad,
// CheckSkew, CheckGamma) let suites assert the electrical bounds their
// algorithm declares.
package invariants

import (
	"fmt"
	"math"

	"sllt/internal/geom"
	"sllt/internal/tree"
)

// CheckTree verifies the structural invariants every clock tree in this
// repository must satisfy:
//
//   - the tree and its root are non-nil, and the root has no parent and a
//     zero incoming edge;
//   - the node graph is acyclic and nodes are not shared between branches;
//   - parent/child pointers are symmetric in both directions (each child's
//     Parent is its parent, and each node's Parent lists it as a child);
//   - sinks are leaves;
//   - every edge length is finite, non-negative and at least the Manhattan
//     distance between its endpoints (wire may snake, never tunnel);
//   - coordinates are finite and pin capacitances are finite and
//     non-negative.
//
// It returns the first violation found, or nil.
func CheckTree(t *tree.Tree) error {
	if t == nil || t.Root == nil {
		return fmt.Errorf("invariants: nil tree")
	}
	if t.Root.Parent != nil {
		return fmt.Errorf("invariants: root has a parent")
	}
	if t.Root.EdgeLen != 0 {
		//slltlint:ignore floatcmp the root edge must be exactly zero, not merely small
		return fmt.Errorf("invariants: root has incoming edge length %g", t.Root.EdgeLen)
	}
	seen := make(map[*tree.Node]bool)
	var err error
	var rec func(n *tree.Node) bool
	rec = func(n *tree.Node) bool {
		if seen[n] {
			err = fmt.Errorf("invariants: cycle or shared node %q at %v", n.Name, n.Loc)
			return false
		}
		seen[n] = true
		if err = checkNodeScalars(n); err != nil {
			return false
		}
		if n.Kind == tree.Sink && len(n.Children) > 0 {
			err = fmt.Errorf("invariants: sink %q at %v has %d children", n.Name, n.Loc, len(n.Children))
			return false
		}
		for _, c := range n.Children {
			if c == nil {
				err = fmt.Errorf("invariants: node at %v has a nil child", n.Loc)
				return false
			}
			if c.Parent != n {
				err = fmt.Errorf("invariants: child %q at %v points at the wrong parent", c.Name, c.Loc)
				return false
			}
			// Scalars first: a non-finite child location would poison the
			// Manhattan-distance comparison below.
			if err = checkNodeScalars(c); err != nil {
				return false
			}
			if md := n.Loc.Dist(c.Loc); c.EdgeLen < md-geom.Eps {
				err = fmt.Errorf("invariants: edge %v→%v length %g below Manhattan distance %g",
					n.Loc, c.Loc, c.EdgeLen, md)
				return false
			}
			if !rec(c) {
				return false
			}
		}
		return true
	}
	rec(t.Root)
	return err
}

func checkNodeScalars(n *tree.Node) error {
	if math.IsNaN(n.Loc.X) || math.IsInf(n.Loc.X, 0) ||
		math.IsNaN(n.Loc.Y) || math.IsInf(n.Loc.Y, 0) {
		return fmt.Errorf("invariants: node %q has non-finite location %v", n.Name, n.Loc)
	}
	if math.IsNaN(n.EdgeLen) || math.IsInf(n.EdgeLen, 0) || n.EdgeLen < 0 {
		return fmt.Errorf("invariants: node %q at %v has bad edge length %g", n.Name, n.Loc, n.EdgeLen)
	}
	if math.IsNaN(n.PinCap) || math.IsInf(n.PinCap, 0) || n.PinCap < 0 {
		return fmt.Errorf("invariants: node %q at %v has bad pin cap %g", n.Name, n.Loc, n.PinCap)
	}
	return nil
}

// CheckLoad verifies the non-negative capacitance accounting of the tree:
// every subtree's load (pin caps plus wire cap at capPerUnit fF per unit)
// is non-negative, and the per-subtree sums add up to the root total
// reported by Tree.TotalLoad. A mismatch means some transformation
// double-counted or dropped capacitance.
func CheckLoad(t *tree.Tree, capPerUnit float64) error {
	if t == nil || t.Root == nil {
		return fmt.Errorf("invariants: nil tree")
	}
	if capPerUnit < 0 {
		return fmt.Errorf("invariants: negative capPerUnit %g", capPerUnit)
	}
	var err error
	var rec func(n *tree.Node) float64
	rec = func(n *tree.Node) float64 {
		load := n.EdgeLen * capPerUnit
		if n.Kind == tree.Sink || n.Kind == tree.Buffer {
			load += n.PinCap
		}
		if load < 0 && err == nil {
			err = fmt.Errorf("invariants: negative load contribution %g at %v", load, n.Loc)
		}
		for _, c := range n.Children {
			sub := rec(c)
			if sub < 0 && err == nil {
				err = fmt.Errorf("invariants: negative subtree load %g under %v", sub, c.Loc)
			}
			load += sub
		}
		return load
	}
	total := rec(t.Root)
	if err != nil {
		return err
	}
	want := t.TotalLoad(capPerUnit)
	if !almostEqualRel(total, want) {
		return fmt.Errorf("invariants: load accounting mismatch: bottom-up %g vs walk %g", total, want)
	}
	return nil
}

// CheckSkew verifies that the path-length skew (max − min source-to-sink
// path length) does not exceed bound, with tol absorbing float round-off.
// Trees with fewer than two sinks trivially pass.
func CheckSkew(t *tree.Tree, bound, tol float64) error {
	if t == nil || t.Root == nil {
		return fmt.Errorf("invariants: nil tree")
	}
	minPL, maxPL := math.Inf(1), math.Inf(-1)
	n := 0
	for _, s := range t.Sinks() {
		pl := tree.PathLength(s)
		minPL = math.Min(minPL, pl)
		maxPL = math.Max(maxPL, pl)
		n++
	}
	if n < 2 {
		return nil
	}
	if skew := maxPL - minPL; skew > bound+tol {
		return fmt.Errorf("invariants: skew %g exceeds declared bound %g (max PL %g, min PL %g)",
			skew, bound, maxPL, minPL)
	}
	return nil
}

// CheckGamma verifies the skewness γ = max PL / mean PL (Definition 2.1)
// stays within the declared bound, with tol absorbing float round-off.
// Trees with no sinks or zero mean path length trivially pass.
func CheckGamma(t *tree.Tree, gamma, tol float64) error {
	if t == nil || t.Root == nil {
		return fmt.Errorf("invariants: nil tree")
	}
	var sum, maxPL float64
	n := 0
	for _, s := range t.Sinks() {
		pl := tree.PathLength(s)
		sum += pl
		maxPL = math.Max(maxPL, pl)
		n++
	}
	if n == 0 {
		return nil
	}
	mean := sum / float64(n)
	if geom.Sign(mean) == 0 {
		return nil
	}
	if g := maxPL / mean; g > gamma+tol {
		return fmt.Errorf("invariants: skewness γ=%g exceeds declared bound %g", g, gamma)
	}
	return nil
}

// almostEqualRel compares with a relative tolerance so load totals on large
// trees (thousands of edges) are not failed by accumulation order.
func almostEqualRel(a, b float64) bool {
	diff := math.Abs(a - b)
	if diff <= geom.Eps {
		return true
	}
	return diff <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}
