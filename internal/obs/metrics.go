package obs

import (
	"math"
	"sync/atomic"
)

// Metric units share the unitflow analyzer's vocabulary; registration uses
// these constants so report units and `// unit:` annotations cannot drift.
// These are unit *names* (the strings carry no dimension themselves, so
// they take no `// unit:` directive — the directives go on the quantities
// registered under them).
const (
	UnitNone  = "1" // dimensionless counts and ratios
	UnitPs    = "ps"
	UnitFF    = "fF"
	UnitUm    = "um"
	UnitUm2   = "um^2"
	UnitBytes = "B"
)

// Counter is a monotonically increasing int64 metric. Atomic adds commute,
// so the total is identical for every worker count and schedule. All
// methods are safe on nil (the disabled path).
type Counter struct {
	name string
	unit string
	v    atomic.Int64
}

// Add increments the counter. No-op on nil.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a set-last-wins float64 metric, written from serial code (the
// level loop); concurrent writers would race semantically even though the
// store itself is atomic.
type Gauge struct {
	name string
	unit string
	bits atomic.Uint64
}

// Set stores the gauge value. No-op on nil.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the gauge value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Dist is a fixed-bucket distribution: bucket i counts observations v with
// v <= Bounds[i]; one overflow bucket counts the rest. Bucket counts, the
// observation count and the min/max are all order-independent (atomic int
// adds and monotone CAS loops), so parallel observers produce identical
// snapshots for every schedule. The deliberately omitted running sum is the
// one aggregate float addition order could perturb.
type Dist struct {
	name    string
	unit    string
	bounds  []float64 // ascending, fixed at registration
	buckets []atomic.Int64
	count   atomic.Int64
	min     atomic.Uint64 // float64 bits; initialized to +Inf
	max     atomic.Uint64 // float64 bits; initialized to -Inf
}

func newDist(name, unit string, bounds []float64) *Dist {
	d := &Dist{name: name, unit: unit, bounds: append([]float64(nil), bounds...)}
	d.buckets = make([]atomic.Int64, len(d.bounds)+1)
	d.min.Store(math.Float64bits(math.Inf(1)))
	d.max.Store(math.Float64bits(math.Inf(-1)))
	return d
}

// Observe records one value. No-op on nil.
func (d *Dist) Observe(v float64) {
	if d == nil {
		return
	}
	i := 0
	for i < len(d.bounds) && v > d.bounds[i] {
		i++
	}
	d.buckets[i].Add(1)
	d.count.Add(1)
	for {
		old := d.min.Load()
		if v >= math.Float64frombits(old) || d.min.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := d.max.Load()
		if v <= math.Float64frombits(old) || d.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations (0 on nil).
func (d *Dist) Count() int64 {
	if d == nil {
		return 0
	}
	return d.count.Load()
}

// MetricJSON is one serialized metric (see the package doc's schema).
type MetricJSON struct {
	Name    string    `json:"name"`
	Kind    string    `json:"kind"` // "counter" | "gauge" | "dist"
	Unit    string    `json:"unit"`
	Value   float64   `json:"value,omitempty"`
	Count   int64     `json:"count,omitempty"`
	Min     float64   `json:"min,omitempty"`
	Max     float64   `json:"max,omitempty"`
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []int64   `json:"buckets,omitempty"`
}

func (c *Counter) snapshot() MetricJSON {
	return MetricJSON{Name: c.name, Kind: "counter", Unit: c.unit, Value: float64(c.v.Load())}
}

func (g *Gauge) snapshot() MetricJSON {
	return MetricJSON{Name: g.name, Kind: "gauge", Unit: g.unit, Value: g.Value()}
}

func (d *Dist) snapshot() MetricJSON {
	m := MetricJSON{Name: d.name, Kind: "dist", Unit: d.unit, Count: d.count.Load(),
		Bounds: append([]float64(nil), d.bounds...)}
	if m.Count > 0 {
		m.Min = math.Float64frombits(d.min.Load())
		m.Max = math.Float64frombits(d.max.Load())
	}
	m.Buckets = make([]int64, len(d.buckets))
	for i := range d.buckets {
		m.Buckets[i] = d.buckets[i].Load()
	}
	return m
}
