package obs

// CacheStageJSON is one flow stage's content-addressed cache traffic in the
// run report (schema v1.1, optional "cache" section).
type CacheStageJSON struct {
	Stage        string  `json:"stage"`
	Hits         int64   `json:"hits"`
	Misses       int64   `json:"misses"`
	Puts         int64   `json:"puts"`
	HitRate      float64 `json:"hit_rate"`      // unit: 1
	BytesRead    int64   `json:"bytes_read"`    // unit: B // from the disk tier
	BytesWritten int64   `json:"bytes_written"` // unit: B // admitted to the store
}

// CacheJSON is the report's stage-cache section: per-stage counters (sorted
// by stage name) plus run totals. Absent ("cache" omitted) when the run had
// no cache attached — the section is additive, which is why v1 -> v1.1 is a
// minor bump.
type CacheJSON struct {
	Stages       []CacheStageJSON `json:"stages"`
	Hits         int64            `json:"hits"`
	Misses       int64            `json:"misses"`
	Puts         int64            `json:"puts"`
	HitRate      float64          `json:"hit_rate"`      // unit: 1
	BytesRead    int64            `json:"bytes_read"`    // unit: B
	BytesWritten int64            `json:"bytes_written"` // unit: B
	Evictions    int64            `json:"evictions"`
	DiskErrors   int64            `json:"disk_errors"`
}

// SetCache records the run's stage-cache counters for the report. The
// recorder takes ownership of c.
func (r *Recorder) SetCache(c *CacheJSON) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.cache = c
	r.mu.Unlock()
}
