package obs

import (
	"sort"
	"sync"
)

// SchemaVersion identifies the run-report JSON layout. Bump on any
// backwards-incompatible change and extend ValidateReport accordingly.
// v1.1 adds the optional "cache" section (stage-cache hit/miss/byte
// counters); everything in v1 is unchanged.
const SchemaVersion = "sllt.obs.report/v1.1"

// Recorder collects one run's spans, metrics and QoR records. The nil
// *Recorder is the disabled state: every method no-ops (returning nil
// handles whose methods also no-op), allocating nothing — the flow's
// default configuration pays one pointer test per instrumentation site.
//
// A Recorder is safe for concurrent use: spans and counters may be touched
// from parallel cluster tasks; QoR records and gauges are written by the
// serial level loop.
type Recorder struct {
	clock  Clock
	sink   Sink
	root   *Span
	kernel KernelCounters

	mu       sync.Mutex
	design   string
	engine   string
	seed     int64
	workers  int
	counters map[string]*Counter
	gauges   map[string]*Gauge
	dists    map[string]*Dist
	levels   []LevelQoR
	totals   Totals
	cache    *CacheJSON
}

// New returns an enabled Recorder using the given clock (nil selects the
// production wall clock). The root span "run" starts immediately.
func New(clock Clock) *Recorder { return NewWithSink(clock, nil) }

// NewWithSink is New with a live event sink attached: every span begin/end
// and level-QoR record is forwarded to sink as it happens (see Sink for the
// concurrency contract). A nil sink is New.
func NewWithSink(clock Clock, sink Sink) *Recorder {
	if clock == nil {
		clock = NewWallClock()
	}
	r := &Recorder{
		clock:    clock,
		sink:     sink,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		dists:    make(map[string]*Dist),
	}
	r.root = &Span{rec: r, name: "run", task: -1, start: clock.Now()}
	r.emit(Event{Kind: EventSpanBegin, Span: "run", Task: -1, AtNs: r.root.start})
	return r
}

// Enabled reports whether the recorder collects anything.
func (r *Recorder) Enabled() bool { return r != nil }

// Root returns the implicit "run" span (nil when disabled).
func (r *Recorder) Root() *Span {
	if r == nil {
		return nil
	}
	return r.root
}

// Begin starts a top-level stage span under the run root.
func (r *Recorder) Begin(name string) *Span { return r.Root().Begin(name) }

// Kernel returns the run's kernel counter block (nil when disabled), for
// plumbing into dme.Options, buffering.Inserter and the partition stats.
func (r *Recorder) Kernel() *KernelCounters {
	if r == nil {
		return nil
	}
	return &r.kernel
}

// SetMeta records the run identity serialized in the report header.
func (r *Recorder) SetMeta(design, engine string, seed int64, workers int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.design, r.engine, r.seed, r.workers = design, engine, seed, workers
	r.mu.Unlock()
}

// AddLevel appends one level's QoR record (called by the serial level loop,
// bottom-up).
func (r *Recorder) AddLevel(q LevelQoR) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.levels = append(r.levels, q)
	r.mu.Unlock()
	// Sink-gated so the sink-less path neither reads the clock (ManualClock
	// sequences are part of the golden fixtures) nor heap-copies q.
	if r.sink != nil {
		lq := q
		r.sink.Emit(Event{Kind: EventLevel, Task: -1, AtNs: r.clock.Now(), Level: &lq})
	}
}

// SetTotals records the flow's final QoR numbers.
func (r *Recorder) SetTotals(t Totals) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.totals = t
	r.mu.Unlock()
}

// Counter returns (registering on first use) the named counter. The unit
// must come from the Unit* vocabulary; the first registration wins.
func (r *Recorder) Counter(name, unit string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name, unit: unit}
	r.counters[name] = c
	return c
}

// Gauge returns (registering on first use) the named gauge.
func (r *Recorder) Gauge(name, unit string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name, unit: unit}
	r.gauges[name] = g
	return g
}

// Dist returns (registering on first use) the named distribution with the
// given ascending bucket bounds. The first registration fixes the layout.
func (r *Recorder) Dist(name, unit string, bounds []float64) *Dist {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if d, ok := r.dists[name]; ok {
		return d
	}
	d := newDist(name, unit, bounds)
	r.dists[name] = d
	return d
}

// Snapshot serializes the recorder into a canonical Report. The run root
// span is closed as of the call; kernel counters appear as "kernel.*"
// metrics alongside the registry's, sorted by name.
func (r *Recorder) Snapshot() *Report {
	if r == nil {
		return nil
	}
	if r.root.dur == 0 {
		r.root.End()
	}
	r.mu.Lock()
	rep := &Report{
		Schema:  SchemaVersion,
		Design:  r.design,
		Engine:  r.engine,
		Seed:    r.seed,
		Workers: r.workers,
		Levels:  append([]LevelQoR(nil), r.levels...),
		Totals:  r.totals,
		Cache:   r.cache,
	}
	for _, c := range r.counters {
		rep.Metrics = append(rep.Metrics, c.snapshot())
	}
	for _, g := range r.gauges {
		rep.Metrics = append(rep.Metrics, g.snapshot())
	}
	for _, d := range r.dists {
		rep.Metrics = append(rep.Metrics, d.snapshot())
	}
	r.mu.Unlock()
	for _, m := range kernelMetrics(r.kernel.Snapshot()) {
		rep.Metrics = append(rep.Metrics, m)
	}
	sort.Slice(rep.Metrics, func(i, j int) bool { return rep.Metrics[i].Name < rep.Metrics[j].Name })
	rep.Span = r.root.snapshot()
	return rep
}

// kernelMetrics flattens a kernel snapshot into counter metrics.
func kernelMetrics(s KernelSnapshot) []MetricJSON {
	entries := []struct {
		name string
		v    int64
	}{
		{"kernel.rsmt.mst_builds", s.MSTBuilds},
		{"kernel.rsmt.mst_points", s.MSTPoints},
		{"kernel.rsmt.steiner_inserts", s.SteinerInserts},
		{"kernel.rsmt.edgeswap_moves", s.EdgeSwapMoves},
		{"kernel.rsmt.edgeswap_passes", s.EdgeSwapPasses},
		{"kernel.dme.merges", s.DMEMerges},
		{"kernel.dme.snakes", s.DMESnakes},
		{"kernel.buffering.inserted", s.BufInserted},
		{"kernel.buffering.decoupled", s.BufDecoupled},
		{"kernel.partition.kmeans_iters", s.KMeansIters},
		{"kernel.partition.sa_proposed", s.SAProposed},
		{"kernel.partition.sa_accepted", s.SAAccepted},
		{"kernel.partition.mcf_augments", s.MCFAugments},
		{"kernel.grid.queries", s.GridQueries},
		{"kernel.grid.ring_steps", s.GridRingSteps},
	}
	out := make([]MetricJSON, len(entries))
	for i, e := range entries {
		out[i] = MetricJSON{Name: e.name, Kind: "counter", Unit: UnitNone, Value: float64(e.v)}
	}
	return out
}
