package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Report is one run's serialized observability record. See the package doc
// for the schema contract; ValidateReport checks a serialized instance
// against it.
type Report struct {
	Schema  string       `json:"schema"`
	Design  string       `json:"design"`
	Engine  string       `json:"engine"`
	Seed    int64        `json:"seed"`
	Workers int          `json:"workers"`
	Levels  []LevelQoR   `json:"levels"`
	Totals  Totals       `json:"totals"`
	Cache   *CacheJSON   `json:"cache,omitempty"`
	Metrics []MetricJSON `json:"metrics"`
	Span    *SpanJSON    `json:"span"`
}

// JSON renders the report as canonical indented JSON with a trailing
// newline. The encoding is deterministic: the report holds no maps, metrics
// are pre-sorted by name, and span children are ordered by call order then
// task index.
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteTrace renders the span tree as an indented text profile, one line
// per span with its duration in milliseconds and share of the parent.
func (r *Report) WriteTrace(w io.Writer) error {
	if r.Span == nil {
		_, err := fmt.Fprintln(w, "(no spans)")
		return err
	}
	var werr error
	parentDur := []int64{r.Span.DurNs}
	r.Span.Walk(func(depth int, s *SpanJSON) {
		if werr != nil {
			return
		}
		for len(parentDur) <= depth+1 {
			parentDur = append(parentDur, 0)
		}
		parentDur[depth+1] = s.DurNs
		name := s.Name
		if s.Task >= 0 {
			name = fmt.Sprintf("%s[%d]", s.Name, s.Task)
		}
		line := fmt.Sprintf("%s%-*s %10.3fms", strings.Repeat("  ", depth), 28-2*depth, name,
			float64(s.DurNs)/1e6)
		if depth > 0 && parentDur[depth] > 0 {
			line += fmt.Sprintf(" %5.1f%%", 100*float64(s.DurNs)/float64(parentDur[depth]))
		}
		_, werr = fmt.Fprintln(w, line)
	})
	return werr
}

// StageNs sums the durations of top-level stage spans by name (a stage
// appearing once per level accumulates across levels). Nil-safe.
func (r *Report) StageNs() map[string]int64 { // unit: ns
	out := make(map[string]int64)
	if r == nil || r.Span == nil {
		return out
	}
	var rec func(s *SpanJSON)
	rec = func(s *SpanJSON) {
		for _, c := range s.Children {
			out[c.Name] += c.DurNs
			rec(c)
		}
	}
	rec(r.Span)
	return out
}

// ValidateReport checks that data is a schema-conforming run report:
// correct schema tag, all required top-level fields with the right JSON
// types, well-formed level records, metric entries and span tree. It is the
// hand-rolled counterpart of the schema in the package doc — no external
// JSON-schema machinery.
func ValidateReport(data []byte) error {
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("report: not a JSON object: %w", err)
	}
	var schema string
	if err := need(raw, "schema", &schema); err != nil {
		return err
	}
	if schema != SchemaVersion {
		return fmt.Errorf("report: schema %q, want %q", schema, SchemaVersion)
	}
	var s string
	var n float64
	for _, key := range []string{"design", "engine"} {
		if err := need(raw, key, &s); err != nil {
			return err
		}
	}
	for _, key := range []string{"seed", "workers"} {
		if err := need(raw, key, &n); err != nil {
			return err
		}
	}
	var levels []map[string]json.RawMessage
	if err := need(raw, "levels", &levels); err != nil {
		return err
	}
	for i, lv := range levels {
		for _, key := range []string{"level", "nodes", "clusters", "wl_um", "skew_ps",
			"max_latency_ps", "max_cluster_cap_ff", "buffers", "buf_area_um2",
			"kmeans_iters", "kmeans_restarts", "sa_proposed", "sa_accepted",
			"sa_accept_rate", "grid_queries", "grid_ring_steps", "grid_hit_rate"} {
			if err := need(lv, key, &n); err != nil {
				return fmt.Errorf("levels[%d]: %w", i, err)
			}
		}
		if err := need(lv, "assign_method", &s); err != nil {
			return fmt.Errorf("levels[%d]: %w", i, err)
		}
	}
	var totals map[string]json.RawMessage
	if err := need(raw, "totals", &totals); err != nil {
		return err
	}
	for _, key := range []string{"wl_um", "skew_ps", "max_latency_ps", "buffers",
		"buf_area_um2", "clock_cap_ff", "max_stage_cap_ff", "max_slew_ps"} {
		if err := need(totals, key, &n); err != nil {
			return fmt.Errorf("totals: %w", err)
		}
	}
	if cacheRaw, ok := raw["cache"]; ok {
		if err := validateCache(cacheRaw); err != nil {
			return err
		}
	}
	var metrics []map[string]json.RawMessage
	if err := need(raw, "metrics", &metrics); err != nil {
		return err
	}
	prev := ""
	for i, m := range metrics {
		var name, kind, unit string
		if err := need(m, "name", &name); err != nil {
			return fmt.Errorf("metrics[%d]: %w", i, err)
		}
		if err := need(m, "kind", &kind); err != nil {
			return fmt.Errorf("metrics[%d]: %w", i, err)
		}
		if err := need(m, "unit", &unit); err != nil {
			return fmt.Errorf("metrics[%d]: %w", i, err)
		}
		if kind != "counter" && kind != "gauge" && kind != "dist" {
			return fmt.Errorf("metrics[%d] %s: bad kind %q", i, name, kind)
		}
		if name < prev {
			return fmt.Errorf("metrics[%d] %s: not sorted by name (after %s)", i, name, prev)
		}
		prev = name
	}
	var span json.RawMessage
	if err := need(raw, "span", &span); err != nil {
		return err
	}
	return validateSpan(span, 0)
}

// validateCache checks the optional v1.1 "cache" section: total counters plus
// per-stage records sorted by stage name.
func validateCache(data json.RawMessage) error {
	var c map[string]json.RawMessage
	if err := json.Unmarshal(data, &c); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	var n float64
	for _, key := range []string{"hits", "misses", "puts", "hit_rate",
		"bytes_read", "bytes_written", "evictions", "disk_errors"} {
		if err := need(c, key, &n); err != nil {
			return fmt.Errorf("cache: %w", err)
		}
	}
	var stages []map[string]json.RawMessage
	if err := need(c, "stages", &stages); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	prev := ""
	for i, st := range stages {
		var name string
		if err := need(st, "stage", &name); err != nil {
			return fmt.Errorf("cache.stages[%d]: %w", i, err)
		}
		for _, key := range []string{"hits", "misses", "puts", "hit_rate",
			"bytes_read", "bytes_written"} {
			if err := need(st, key, &n); err != nil {
				return fmt.Errorf("cache.stages[%d] %s: %w", i, name, err)
			}
		}
		if name < prev {
			return fmt.Errorf("cache.stages[%d] %s: not sorted by stage (after %s)", i, name, prev)
		}
		prev = name
	}
	return nil
}

func validateSpan(data json.RawMessage, depth int) error {
	if depth > 64 {
		return fmt.Errorf("span: nesting deeper than 64")
	}
	var sp map[string]json.RawMessage
	if err := json.Unmarshal(data, &sp); err != nil {
		return fmt.Errorf("span: %w", err)
	}
	var name string
	if err := need(sp, "name", &name); err != nil {
		return fmt.Errorf("span: %w", err)
	}
	var n float64
	for _, key := range []string{"task", "start_ns", "dur_ns"} {
		if err := need(sp, key, &n); err != nil {
			return fmt.Errorf("span %s: %w", name, err)
		}
	}
	if children, ok := sp["children"]; ok {
		var cs []json.RawMessage
		if err := json.Unmarshal(children, &cs); err != nil {
			return fmt.Errorf("span %s: children: %w", name, err)
		}
		for _, c := range cs {
			if err := validateSpan(c, depth+1); err != nil {
				return err
			}
		}
	}
	return nil
}

// need unmarshals raw[key] into dst, failing when the key is absent or the
// JSON type does not match.
func need(raw map[string]json.RawMessage, key string, dst any) error {
	v, ok := raw[key]
	if !ok {
		return fmt.Errorf("missing field %q", key)
	}
	if err := json.Unmarshal(v, dst); err != nil {
		return fmt.Errorf("field %q: %w", key, err)
	}
	return nil
}
