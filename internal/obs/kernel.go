package obs

import "sync/atomic"

// KernelCounters is the low-overhead side channel the kernel layers
// increment: rsmt (MST, Steinerize, edge swap), dme (merges, skew snaking),
// buffering (inserted repeaters, decoupled wires), partition (k-means
// iterations, SA moves, min-cost-flow augmentations) and geom/index (grid
// queries). Fields are atomic int64s — order-independent under any
// schedule, so totals are byte-stable for every worker count — and the
// struct is plumbed as a nil-able pointer: a nil *KernelCounters (obs
// disabled) costs one branch per increment site and allocates nothing.
//
// The counters never feed back into any algorithm decision; they exist so
// the run report can attribute work (and, per level, work deltas) to the
// kernels that did it.
type KernelCounters struct {
	// rsmt
	MSTBuilds      atomic.Int64 // MST constructions
	MSTPoints      atomic.Int64 // points across all MST builds
	SteinerInserts atomic.Int64 // accepted median Steiner insertions
	EdgeSwapMoves  atomic.Int64 // accepted reattachment moves
	EdgeSwapPasses atomic.Int64 // edge-swap rounds run
	// dme
	DMEMerges atomic.Int64 // merge-segment/region constructions
	DMESnakes atomic.Int64 // skew-repair wire extensions
	// buffering
	BufInserted  atomic.Int64 // repeaters + drivers inserted
	BufDecoupled atomic.Int64 // slow-wire decoupling repeaters
	// partition
	KMeansIters atomic.Int64 // Lloyd iterations across all runs
	SAProposed  atomic.Int64 // annealing moves proposed
	SAAccepted  atomic.Int64 // annealing moves accepted
	MCFAugments atomic.Int64 // min-cost-flow augmenting paths
	// geom/index
	GridQueries   atomic.Int64 // nearest-neighbor queries answered
	GridRingSteps atomic.Int64 // expanding-ring radius extensions taken
}

// KernelSnapshot is a plain-int copy of KernelCounters, used for per-level
// deltas and report assembly.
type KernelSnapshot struct {
	MSTBuilds, MSTPoints, SteinerInserts, EdgeSwapMoves, EdgeSwapPasses int64
	DMEMerges, DMESnakes                                                int64
	BufInserted, BufDecoupled                                           int64
	KMeansIters, SAProposed, SAAccepted, MCFAugments                    int64
	GridQueries, GridRingSteps                                          int64
}

// Snapshot copies the current counter values (zero value on nil).
func (k *KernelCounters) Snapshot() KernelSnapshot {
	if k == nil {
		return KernelSnapshot{}
	}
	return KernelSnapshot{
		MSTBuilds:      k.MSTBuilds.Load(),
		MSTPoints:      k.MSTPoints.Load(),
		SteinerInserts: k.SteinerInserts.Load(),
		EdgeSwapMoves:  k.EdgeSwapMoves.Load(),
		EdgeSwapPasses: k.EdgeSwapPasses.Load(),
		DMEMerges:      k.DMEMerges.Load(),
		DMESnakes:      k.DMESnakes.Load(),
		BufInserted:    k.BufInserted.Load(),
		BufDecoupled:   k.BufDecoupled.Load(),
		KMeansIters:    k.KMeansIters.Load(),
		SAProposed:     k.SAProposed.Load(),
		SAAccepted:     k.SAAccepted.Load(),
		MCFAugments:    k.MCFAugments.Load(),
		GridQueries:    k.GridQueries.Load(),
		GridRingSteps:  k.GridRingSteps.Load(),
	}
}

// Sub returns the per-field difference k - prev.
func (k KernelSnapshot) Sub(prev KernelSnapshot) KernelSnapshot {
	return KernelSnapshot{
		MSTBuilds:      k.MSTBuilds - prev.MSTBuilds,
		MSTPoints:      k.MSTPoints - prev.MSTPoints,
		SteinerInserts: k.SteinerInserts - prev.SteinerInserts,
		EdgeSwapMoves:  k.EdgeSwapMoves - prev.EdgeSwapMoves,
		EdgeSwapPasses: k.EdgeSwapPasses - prev.EdgeSwapPasses,
		DMEMerges:      k.DMEMerges - prev.DMEMerges,
		DMESnakes:      k.DMESnakes - prev.DMESnakes,
		BufInserted:    k.BufInserted - prev.BufInserted,
		BufDecoupled:   k.BufDecoupled - prev.BufDecoupled,
		KMeansIters:    k.KMeansIters - prev.KMeansIters,
		SAProposed:     k.SAProposed - prev.SAProposed,
		SAAccepted:     k.SAAccepted - prev.SAAccepted,
		MCFAugments:    k.MCFAugments - prev.MCFAugments,
		GridQueries:    k.GridQueries - prev.GridQueries,
		GridRingSteps:  k.GridRingSteps - prev.GridRingSteps,
	}
}
