package obs

import (
	"sync"
	"testing"
)

// collectSink is the test Sink: a mutex-guarded event log.
type collectSink struct {
	mu     sync.Mutex
	events []Event
}

func (c *collectSink) Emit(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// TestSinkEventStream pins the event protocol for a serial run under a
// ManualClock: begin/end pairs in call order, level events carrying the QoR
// record, and monotone clock readings — the determinism the server's golden
// progress-stream fixtures rely on.
func TestSinkEventStream(t *testing.T) {
	sink := &collectSink{}
	rec := NewWithSink(NewManualClock(1), sink)
	lvl := rec.Begin("level")
	cl := lvl.Begin("clusters")
	cl.End()
	lvl.End()
	rec.AddLevel(LevelQoR{Level: 0, Nodes: 4, Clusters: 1})
	rec.Snapshot() // closes the run root, emitting its span_end

	want := []struct {
		kind, span string
	}{
		{EventSpanBegin, "run"},
		{EventSpanBegin, "level"},
		{EventSpanBegin, "clusters"},
		{EventSpanEnd, "clusters"},
		{EventSpanEnd, "level"},
		{EventLevel, ""},
		{EventSpanEnd, "run"},
	}
	if len(sink.events) != len(want) {
		t.Fatalf("got %d events, want %d: %+v", len(sink.events), len(want), sink.events)
	}
	var prev int64 = -1
	for i, e := range sink.events {
		if e.Kind != want[i].kind || e.Span != want[i].span {
			t.Errorf("event %d = {%s %q}, want {%s %q}", i, e.Kind, e.Span, want[i].kind, want[i].span)
		}
		if e.AtNs < prev {
			t.Errorf("event %d clock reading %d went backwards (prev %d)", i, e.AtNs, prev)
		}
		prev = e.AtNs
	}
	if lv := sink.events[5].Level; lv == nil || lv.Nodes != 4 {
		t.Errorf("level event payload = %+v, want the AddLevel record", sink.events[5].Level)
	}
	if end := sink.events[3]; end.DurNs == 0 {
		t.Errorf("span_end carries no duration: %+v", end)
	}
}

// TestSinkTaskSpans pins task-span attribution: BeginTask events carry the
// task index, sequential spans carry -1.
func TestSinkTaskSpans(t *testing.T) {
	sink := &collectSink{}
	rec := NewWithSink(NewManualClock(1), sink)
	p := rec.Begin("clusters")
	for i := 0; i < 3; i++ {
		sp := p.BeginTask(i, "cluster")
		sp.End()
	}
	p.End()

	var tasks []int
	for _, e := range sink.events {
		if e.Kind == EventSpanBegin && e.Span == "cluster" {
			tasks = append(tasks, e.Task)
		}
	}
	if len(tasks) != 3 || tasks[0] != 0 || tasks[1] != 1 || tasks[2] != 2 {
		t.Errorf("task indices = %v, want [0 1 2]", tasks)
	}
	for _, e := range sink.events {
		if e.Span == "clusters" && e.Task != -1 {
			t.Errorf("sequential span carries task %d, want -1", e.Task)
		}
	}
}

// TestSinklessRecorderUnchanged pins that a sink-less recorder behaves as
// before: no panic, and the nil recorder stays inert through the emit path.
func TestSinklessRecorderUnchanged(t *testing.T) {
	rec := New(NewManualClock(1))
	sp := rec.Begin("stage")
	sp.End()
	rec.AddLevel(LevelQoR{})
	rec.Snapshot()

	var disabled *Recorder
	disabled.emit(Event{Kind: EventSpanBegin})
	disabled.AddLevel(LevelQoR{})
	disabled.Begin("x").End()
}
