package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestDisabledPathAllocs pins the disabled-observability contract: every
// instrumentation primitive on a nil recorder must allocate nothing, so the
// default flow configuration is a no-op apart from nil checks.
func TestDisabledPathAllocs(t *testing.T) {
	var rec *Recorder
	allocs := testing.AllocsPerRun(100, func() {
		sp := rec.Begin("stage")
		child := sp.Begin("inner")
		task := sp.BeginTask(3, "task")
		task.End()
		child.End()
		sp.End()
		rec.Counter("c", UnitNone).Add(1)
		rec.Gauge("g", UnitPs).Set(1.5)
		rec.Dist("d", UnitUm, []float64{1, 2}).Observe(1.0)
		if k := rec.Kernel(); k != nil { // the increment-site idiom
			k.MSTBuilds.Add(1)
		}
		rec.Kernel().Snapshot()
		rec.AddLevel(LevelQoR{})
		rec.SetTotals(Totals{})
		rec.SetMeta("d", "e", 1, 2)
		_ = rec.Snapshot()
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocated %v times per run, want 0", allocs)
	}
}

func TestDisabledAccessors(t *testing.T) {
	var rec *Recorder
	if rec.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	if rec.Root() != nil || rec.Begin("x") != nil || rec.Kernel() != nil {
		t.Fatal("nil recorder returned non-nil handles")
	}
	var sp *Span
	if sp.Name() != "" || sp.Duration() != 0 {
		t.Fatal("nil span accessors not zero")
	}
	var c *Counter
	if c.Value() != 0 {
		t.Fatal("nil counter value not zero")
	}
	var g *Gauge
	if g.Value() != 0 {
		t.Fatal("nil gauge value not zero")
	}
	var d *Dist
	if d.Count() != 0 {
		t.Fatal("nil dist count not zero")
	}
}

// TestManualClockSpans checks span timing against the deterministic clock:
// every Now() call advances by the step, so durations are exact.
func TestManualClockSpans(t *testing.T) {
	rec := New(NewManualClock(10))
	// root start consumed t=0; next Now() returns 10.
	sp := rec.Begin("stage") // start=10
	in := sp.Begin("inner")  // start=20
	in.End()                 // end=30 -> dur 10
	sp.End()                 // end=40 -> dur 30
	if got := in.Duration(); got != 10 {
		t.Fatalf("inner duration = %d, want 10", got)
	}
	if got := sp.Duration(); got != 30 {
		t.Fatalf("stage duration = %d, want 30", got)
	}
	rep := rec.Snapshot()
	if rep.Span.Name != "run" || len(rep.Span.Children) != 1 {
		t.Fatalf("unexpected root span shape: %+v", rep.Span)
	}
}

// TestTaskSpanOrder checks the determinism contract of BeginTask: no matter
// the completion order of concurrent tasks, serialization is by task index,
// after sequential children.
func TestTaskSpanOrder(t *testing.T) {
	rec := New(NewManualClock(1))
	sp := rec.Begin("fanout")
	seq := sp.Begin("prep")
	seq.End()
	const n = 16
	var wg sync.WaitGroup
	for i := n - 1; i >= 0; i-- { // start in reverse to stress ordering
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ts := sp.BeginTask(i, "cluster")
			ts.End()
		}(i)
	}
	wg.Wait()
	sp.End()
	js := sp.snapshot()
	if len(js.Children) != n+1 {
		t.Fatalf("got %d children, want %d", len(js.Children), n+1)
	}
	if js.Children[0].Name != "prep" || js.Children[0].Task != -1 {
		t.Fatalf("sequential child not first: %+v", js.Children[0])
	}
	for i := 0; i < n; i++ {
		c := js.Children[i+1]
		if c.Task != i || c.Name != "cluster" {
			t.Fatalf("task child %d out of order: task=%d name=%s", i, c.Task, c.Name)
		}
	}
}

func TestCounterGaugeDist(t *testing.T) {
	rec := New(NewManualClock(1))
	c := rec.Counter("builds", UnitNone)
	c.Add(2)
	rec.Counter("builds", UnitNone).Add(3) // same instance by name
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := rec.Gauge("skew", UnitPs)
	g.Set(4.25)
	if g.Value() != 4.25 {
		t.Fatalf("gauge = %v, want 4.25", g.Value())
	}
	d := rec.Dist("wl", UnitUm, []float64{10, 100})
	for _, v := range []float64{5, 50, 500, 7} {
		d.Observe(v)
	}
	m := d.snapshot()
	if m.Count != 4 || m.Min != 5 || m.Max != 500 {
		t.Fatalf("dist snapshot = %+v", m)
	}
	want := []int64{2, 1, 1}
	for i, b := range m.Buckets {
		if b != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, b, want[i])
		}
	}
}

// TestDistConcurrent checks that parallel observers produce an
// order-independent snapshot (counts and extrema, no float sums).
func TestDistConcurrent(t *testing.T) {
	rec := New(NewManualClock(1))
	d := rec.Dist("x", UnitNone, []float64{100, 1000})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				d.Observe(float64(w*250 + i))
			}
		}(w)
	}
	wg.Wait()
	m := d.snapshot()
	if m.Count != 2000 || m.Min != 0 || m.Max != 1999 {
		t.Fatalf("dist = count %d min %v max %v", m.Count, m.Min, m.Max)
	}
	if m.Buckets[0] != 101 || m.Buckets[1] != 900 || m.Buckets[2] != 999 {
		t.Fatalf("buckets = %v", m.Buckets)
	}
}

func TestKernelSnapshotSub(t *testing.T) {
	var k KernelCounters
	k.MSTBuilds.Add(3)
	k.GridQueries.Add(10)
	before := k.Snapshot()
	k.MSTBuilds.Add(2)
	k.GridQueries.Add(5)
	d := k.Snapshot().Sub(before)
	if d.MSTBuilds != 2 || d.GridQueries != 5 {
		t.Fatalf("delta = %+v", d)
	}
}

func TestSnapshotValidates(t *testing.T) {
	rec := New(NewManualClock(5))
	rec.SetMeta("toy", "sllt", 42, 4)
	sp := rec.Begin("level")
	sp.BeginTask(0, "cluster").End()
	sp.End()
	rec.Counter("nets", UnitNone).Add(1)
	rec.Gauge("skew", UnitPs).Set(2)
	rec.Dist("wl", UnitUm, []float64{10}).Observe(3)
	rec.Kernel().DMEMerges.Add(7)
	rec.AddLevel(LevelQoR{Level: 0, Nodes: 8, Clusters: 2, AssignMethod: "mcf"})
	rec.SetTotals(Totals{WL: 123, Buffers: 4})
	rep := rec.Snapshot()
	b, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateReport(b); err != nil {
		t.Fatalf("snapshot does not validate: %v\n%s", err, b)
	}
	var sb strings.Builder
	if err := rep.WriteTrace(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "cluster[0]") {
		t.Fatalf("trace missing task span:\n%s", sb.String())
	}
	if ns := rep.StageNs(); ns["level"] == 0 {
		t.Fatalf("StageNs missing level stage: %v", ns)
	}
}

func TestValidateReportRejects(t *testing.T) {
	cases := map[string]string{
		"not json":      "[",
		"wrong schema":  `{"schema":"bogus/v0"}`,
		"missing field": `{"schema":"sllt.obs.report/v1.1","design":"d"}`,
		"bad metric kind": `{"schema":"sllt.obs.report/v1.1","design":"d","engine":"e","seed":1,
			"workers":1,"levels":[],"totals":{"wl_um":0,"skew_ps":0,"max_latency_ps":0,"buffers":0,
			"buf_area_um2":0,"clock_cap_ff":0,"max_stage_cap_ff":0,"max_slew_ps":0},
			"metrics":[{"name":"a","kind":"histogram","unit":"1"}],
			"span":{"name":"run","task":-1,"start_ns":0,"dur_ns":1}}`,
		"unsorted metrics": `{"schema":"sllt.obs.report/v1.1","design":"d","engine":"e","seed":1,
			"workers":1,"levels":[],"totals":{"wl_um":0,"skew_ps":0,"max_latency_ps":0,"buffers":0,
			"buf_area_um2":0,"clock_cap_ff":0,"max_stage_cap_ff":0,"max_slew_ps":0},
			"metrics":[{"name":"b","kind":"counter","unit":"1"},{"name":"a","kind":"counter","unit":"1"}],
			"span":{"name":"run","task":-1,"start_ns":0,"dur_ns":1}}`,
	}
	for name, data := range cases {
		if err := ValidateReport([]byte(data)); err == nil {
			t.Errorf("%s: validated, want error", name)
		}
	}
}
