package obs

// Event kinds emitted to a Sink.
const (
	// EventSpanBegin fires when a span starts (Begin/BeginTask, and the
	// implicit "run" root at recorder construction).
	EventSpanBegin = "span_begin"
	// EventSpanEnd fires when a span closes.
	EventSpanEnd = "span_end"
	// EventLevel fires when the flow records one level's QoR (AddLevel).
	EventLevel = "level"
)

// Event is one live progress notification: a stage transition or a per-level
// QoR record, emitted as it happens rather than at Snapshot time. Events are
// what a serving layer streams to clients while a job runs; the Snapshot
// report remains the authoritative post-run record (the event stream is its
// prefix-observable form, not a replacement).
type Event struct {
	Kind  string    `json:"kind"`
	Span  string    `json:"span,omitempty"`
	Task  int       `json:"task"`             // >= 0 for fan-out task spans, -1 otherwise
	AtNs  int64     `json:"at_ns"`            // unit: ns // clock reading at emission
	DurNs int64     `json:"dur_ns,omitempty"` // unit: ns // span duration on span_end
	Level *LevelQoR `json:"level,omitempty"`  // set on level events
}

// Sink receives live events from a Recorder. Implementations must be safe
// for concurrent use: parallel cluster tasks emit span events from worker
// goroutines. Emit must not block for long — it runs inline on the flow's
// goroutines — and must not call back into the Recorder. Event order across
// concurrent tasks follows the schedule; byte-stable streams require a
// serial run (Workers=1) and a ManualClock, which is exactly how the server
// package's golden tests pin the stream format.
type Sink interface {
	Emit(Event)
}

// emit forwards an event to the recorder's sink, if any. Nil-safe on both
// the recorder and the sink: the disabled path and the sink-less path cost
// one pointer test each.
func (r *Recorder) emit(e Event) {
	if r == nil || r.sink == nil {
		return
	}
	r.sink.Emit(e)
}
