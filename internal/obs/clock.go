package obs

import (
	"sync/atomic"
	"time"
)

// Clock supplies the monotonic timestamps spans record. Implementations
// must be safe for concurrent use.
type Clock interface {
	// Now returns elapsed nanoseconds on a monotonic scale. The zero point
	// is arbitrary but fixed for the lifetime of the clock.
	Now() int64 // unit: ns
}

// wallClock reads the process monotonic clock, anchored at construction so
// span timestamps start near zero.
type wallClock struct {
	base time.Time
}

// NewWallClock returns the production Clock: monotonic elapsed time since
// the call. This is the only place the observability layer touches the real
// clock; algorithm packages receive timestamps only through spans, never
// read them back.
func NewWallClock() Clock {
	return &wallClock{base: time.Now()}
}

func (c *wallClock) Now() int64 { return int64(time.Since(c.base)) }

// ManualClock is a deterministic Clock for tests and golden fixtures: every
// Now call advances it by Step nanoseconds, so a serial run produces the
// same timestamp sequence on every machine.
type ManualClock struct {
	now  atomic.Int64
	step int64
}

// NewManualClock returns a ManualClock starting at 0 that advances by step
// nanoseconds per Now call.
func NewManualClock(step int64) *ManualClock {
	return &ManualClock{step: step}
}

// Now returns the current reading and advances the clock by the step.
func (c *ManualClock) Now() int64 { return c.now.Add(c.step) - c.step }

// Set jumps the clock to t nanoseconds.
func (c *ManualClock) Set(t int64) { c.now.Store(t) }
