package obs

import (
	"sync"
)

// Span is one timed stage of the flow. Spans form a tree: sequential
// children are appended in call order, task children (BeginTask) occupy
// their task-index slot so a parallel fan-out serializes deterministically.
// All methods are safe on a nil *Span (the disabled path) and safe for
// concurrent use on distinct spans; BeginTask on one parent may be called
// concurrently from many tasks.
type Span struct {
	rec   *Recorder
	name  string
	task  int   // >= 0 when created by BeginTask
	start int64 // unit: ns
	dur   int64 // unit: ns

	mu       sync.Mutex
	children []*Span // sequential children, call order
	tasks    []*Span // indexed children; nil slots were never begun
}

// Begin starts a sequential child span. Returns nil when s is nil.
func (s *Span) Begin(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{rec: s.rec, name: name, task: -1, start: s.rec.clock.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	s.rec.emit(Event{Kind: EventSpanBegin, Span: name, Task: -1, AtNs: c.start})
	return c
}

// BeginTask starts a child span pinned to task slot i. Concurrent calls
// with distinct i are safe; the serialized order is by index regardless of
// scheduling. Returns nil when s is nil.
func (s *Span) BeginTask(i int, name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{rec: s.rec, name: name, task: i, start: s.rec.clock.Now()}
	s.mu.Lock()
	for len(s.tasks) <= i {
		s.tasks = append(s.tasks, nil)
	}
	s.tasks[i] = c
	s.mu.Unlock()
	s.rec.emit(Event{Kind: EventSpanBegin, Span: name, Task: i, AtNs: c.start})
	return c
}

// End closes the span, capturing its duration. No-op on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := s.rec.clock.Now()
	if d := now - s.start; d > 0 {
		s.dur = d
	}
	s.rec.emit(Event{Kind: EventSpanEnd, Span: s.name, Task: s.task, AtNs: now, DurNs: s.dur})
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the recorded duration in nanoseconds (0 on nil or
// unfinished spans).
func (s *Span) Duration() int64 { // unit: ns
	if s == nil {
		return 0
	}
	return s.dur
}

// snapshot converts the span subtree to its serialized form: sequential
// children first (call order), then task children in ascending index.
func (s *Span) snapshot() *SpanJSON {
	s.mu.Lock()
	seq := append([]*Span(nil), s.children...)
	tasks := append([]*Span(nil), s.tasks...)
	s.mu.Unlock()
	out := &SpanJSON{Name: s.name, Task: s.task, StartNs: s.start, DurNs: s.dur}
	for _, c := range seq {
		out.Children = append(out.Children, c.snapshot())
	}
	for _, c := range tasks {
		if c != nil {
			out.Children = append(out.Children, c.snapshot())
		}
	}
	return out
}

// SpanJSON is the serialized form of a span subtree (see the package doc's
// schema). Field order is the canonical encoding order.
type SpanJSON struct {
	Name     string      `json:"name"`
	Task     int         `json:"task"`
	StartNs  int64       `json:"start_ns"` // unit: ns
	DurNs    int64       `json:"dur_ns"`   // unit: ns
	Children []*SpanJSON `json:"children,omitempty"`
}

// Walk visits the span tree depth-first, parents before children.
func (sj *SpanJSON) Walk(fn func(depth int, s *SpanJSON)) {
	var rec func(d int, s *SpanJSON)
	rec = func(d int, s *SpanJSON) {
		fn(d, s)
		for _, c := range s.Children {
			rec(d+1, c)
		}
	}
	if sj != nil {
		rec(0, sj)
	}
}
