// Package obs is the observability layer of the hierarchical CTS flow: a
// span-based stage tracer, a typed metrics registry, and a run-report writer
// that together turn every synthesis into a machine-readable account of
// where wirelength, skew, latency, buffer area and wall-clock time were
// created or lost — per level, per cluster, per kernel.
//
// The package is deliberately zero-dependency (stdlib only) and inert by
// default: the nil *Recorder is the disabled state, every method on every
// type is nil-receiver safe, and the disabled path allocates nothing
// (guarded by an AllocsPerRun==0 test). Observability must never perturb
// the repository's seeded-determinism contract, so time is captured through
// an injectable Clock — the algorithm packages themselves still never call
// time.Now (the wallclock lint rule), and no recorded value feeds back into
// any construction decision.
//
// # Span model
//
// Spans nest level → cluster → kernel. A span started with Begin is a
// sequential child appended in call order; a span started with BeginTask(i,
// name) is pinned to slot i of its parent, which is how the per-cluster
// fan-out of internal/parallel attributes work: tasks may finish in any
// order on any worker, but the serialized span tree lists them by task
// index, byte-identically for every worker count. Durations come from the
// recorder's Clock (monotonic nanoseconds); tests and golden fixtures
// substitute a ManualClock for fully deterministic traces.
//
// # Metrics
//
// The registry holds three metric kinds, all safe for concurrent use:
//
//   - Counter: monotonically increasing int64 (atomic adds are
//     order-independent, so totals are identical for any schedule);
//   - Gauge: a float64 set-last-wins value, written from serial code;
//   - Dist: a fixed-bucket distribution (int64 bucket counts, count,
//     min/max) for per-level populations such as cluster sizes.
//
// Every metric carries a unit string from the same vocabulary the unitflow
// analyzer checks on `// unit:` annotations (ps, fF, um, um^2, 1, ...);
// LevelQoR's fields are annotated so unitflow verifies the QoR units too.
//
// # Report schema
//
// Snapshot serializes the recorder as canonical JSON. The schema is
// versioned by the Schema field ("sllt.obs.report/v1.1"); any
// backwards-incompatible change to the layout below must bump the version
// and extend ValidateReport:
//
//	{
//	  "schema":  "sllt.obs.report/v1.1",
//	  "design":  "<design name>",
//	  "engine":  "<flow name>",
//	  "seed":    1,
//	  "workers": 8,
//	  "levels": [            // bottom-up, one entry per hierarchy level
//	    {
//	      "level": 0, "nodes": 300, "clusters": 12,
//	      "wl_um": 0.0,             // this level's net wire only
//	      "skew_ps": 0.0,           // spread of estimated cluster-root delays
//	      "max_latency_ps": 0.0,
//	      "max_cluster_cap_ff": 0.0,
//	      "buffers": 0, "buf_area_um2": 0.0,
//	      "kmeans_iters": 0, "kmeans_restarts": 0,
//	      "sa_proposed": 0, "sa_accepted": 0, "sa_accept_rate": 0.0,
//	      "assign_method": "mcf" | "greedy" | "",
//	      "grid_queries": 0, "grid_ring_steps": 0, "grid_hit_rate": 0.0
//	    }, ...
//	  ],
//	  "totals": {            // final timing.Report numbers
//	    "wl_um": 0.0, "skew_ps": 0.0, "max_latency_ps": 0.0,
//	    "buffers": 0, "buf_area_um2": 0.0, "clock_cap_ff": 0.0,
//	    "max_stage_cap_ff": 0.0, "max_slew_ps": 0.0
//	  },
//	  "cache": {             // OPTIONAL (v1.1): stage-cache traffic
//	    "stages": [          // sorted by stage name
//	      {"stage": "cluster_build", "hits": 0, "misses": 0, "puts": 0,
//	       "hit_rate": 0.0, "bytes_read": 0, "bytes_written": 0}, ...
//	    ],
//	    "hits": 0, "misses": 0, "puts": 0, "hit_rate": 0.0,
//	    "bytes_read": 0, "bytes_written": 0,
//	    "evictions": 0, "disk_errors": 0
//	  },
//	  "metrics": [           // sorted by name
//	    {"name": "...", "kind": "counter", "unit": "1", "value": 0},
//	    {"name": "...", "kind": "gauge", "unit": "ps", "value": 0.0},
//	    {"name": "...", "kind": "dist", "unit": "1", "count": 0,
//	     "min": 0.0, "max": 0.0, "bounds": [...], "buckets": [...]},
//	  ],
//	  "span": {              // root of the span tree
//	    "name": "run", "start_ns": 0, "dur_ns": 0,
//	    "task": -1,          // >= 0 for BeginTask children
//	    "children": [...]    // sequential children, then tasks by index
//	  }
//	}
//
// Map-free serialization plus sorted metrics make the encoding canonical:
// two recorders holding the same data produce the same bytes.
package obs
