package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden fixtures")

// goldenRecorder builds a fully-populated recorder with the deterministic
// clock, exercising every serialized feature: nested and task spans,
// all three metric kinds, kernel counters, level QoR and totals.
func goldenRecorder() *Recorder {
	rec := New(NewManualClock(100))
	rec.SetMeta("golden16", "sllt-cts", 7, 4)

	lv := rec.Begin("level")
	part := lv.Begin("partition")
	part.End()
	for i := 0; i < 3; i++ {
		ts := lv.BeginTask(i, "cluster")
		ts.Begin("topology").End()
		ts.End()
	}
	lv.End()
	top := rec.Begin("top-net")
	top.End()

	rec.Counter("cts.nets_built", UnitNone).Add(4)
	rec.Gauge("cts.final_skew", UnitPs).Set(12.5)
	d := rec.Dist("cts.net_wl", UnitUm, []float64{100, 1000, 10000})
	for _, v := range []float64{40, 250, 3000, 800} {
		d.Observe(v)
	}
	k := rec.Kernel()
	k.MSTBuilds.Add(4)
	k.MSTPoints.Add(64)
	k.SteinerInserts.Add(11)
	k.DMEMerges.Add(60)
	k.BufInserted.Add(9)
	k.KMeansIters.Add(35)
	k.SAProposed.Add(1200)
	k.SAAccepted.Add(300)
	k.GridQueries.Add(480)
	k.GridRingSteps.Add(96)

	rec.AddLevel(LevelQoR{
		Level: 0, Nodes: 16, Clusters: 4,
		WL: 1234.5, Skew: 9.25, MaxLatency: 87.5, MaxClusterCap: 42.0,
		Buffers: 9, BufArea: 18.75,
		KMeansIters: 35, KMeansRestarts: 5,
		SAProposed: 1200, SAAccepted: 300, SAAcceptRate: 0.25,
		AssignMethod: "mcf",
		GridQueries:  480, GridRingSteps: 96, GridHitRate: 0.8,
	})
	rec.SetTotals(Totals{
		WL: 1500.25, Skew: 12.5, MaxLatency: 95.0,
		Buffers: 10, BufArea: 20.5, ClockCap: 130.0,
		MaxStageCap: 45.0, MaxSlew: 60.0,
	})
	rec.SetCache(&CacheJSON{
		Stages: []CacheStageJSON{
			{Stage: "cluster_build", Hits: 3, Misses: 1, Puts: 1, HitRate: 0.75, BytesRead: 4096, BytesWritten: 1024},
			{Stage: "partition", Hits: 1, Misses: 0, Puts: 0, HitRate: 1.0},
		},
		Hits: 4, Misses: 1, Puts: 1, HitRate: 0.8,
		BytesRead: 4096, BytesWritten: 1024, Evictions: 2, DiskErrors: 0,
	})
	return rec
}

// TestReportGolden pins the exact serialized report bytes. Any change to
// the schema, field order, or canonical encoding shows up as a diff here;
// regenerate deliberately with -update after bumping SchemaVersion if the
// change is intended.
func TestReportGolden(t *testing.T) {
	rep := goldenRecorder().Snapshot()
	got, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateReport(got); err != nil {
		t.Fatalf("golden report does not validate: %v", err)
	}
	path := filepath.Join("testdata", "report_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("report bytes differ from golden fixture %s\n--- got ---\n%s", path, got)
	}
}

// TestReportGoldenStable re-runs the golden construction and requires
// byte-identical output: the serialization path itself is deterministic.
func TestReportGoldenStable(t *testing.T) {
	a, err := goldenRecorder().Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := goldenRecorder().Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two identical recorder constructions serialized differently")
	}
}
