package obs

// LevelQoR is one hierarchy level's quality-of-result record: how much
// wire, skew, latency and buffer resource this level created, and how hard
// the partition kernels worked to create it. Field tags are the canonical
// JSON schema names; units ride on the fields so unitflow checks them.
type LevelQoR struct {
	Level    int `json:"level"`
	Nodes    int `json:"nodes"`    // balancing points entering the level
	Clusters int `json:"clusters"` // nets built at the level

	WL             float64 `json:"wl_um"`              // unit: um // this level's net wire only (pre-graft)
	Skew           float64 `json:"skew_ps"`            // unit: ps // spread of estimated cluster-root delays
	MaxLatency     float64 `json:"max_latency_ps"`     // unit: ps // worst estimated cluster-root delay
	MaxClusterCap  float64 `json:"max_cluster_cap_ff"` // unit: fF // largest cluster sink-cap sum
	Buffers        int     `json:"buffers"`
	BufArea        float64 `json:"buf_area_um2"` // unit: um^2
	KMeansIters    int     `json:"kmeans_iters"`
	KMeansRestarts int     `json:"kmeans_restarts"`
	SAProposed     int     `json:"sa_proposed"`
	SAAccepted     int     `json:"sa_accepted"`
	SAAcceptRate   float64 `json:"sa_accept_rate"` // unit: 1
	AssignMethod   string  `json:"assign_method"`  // "mcf" | "greedy" | ""
	GridQueries    int64   `json:"grid_queries"`
	GridRingSteps  int64   `json:"grid_ring_steps"`
	GridHitRate    float64 `json:"grid_hit_rate"` // unit: 1 // 1 - ring_steps/queries, clamped at 0
}

// Totals mirrors timing.Report: the flow's final QoR numbers.
type Totals struct {
	WL          float64 `json:"wl_um"`          // unit: um
	Skew        float64 `json:"skew_ps"`        // unit: ps
	MaxLatency  float64 `json:"max_latency_ps"` // unit: ps
	Buffers     int     `json:"buffers"`
	BufArea     float64 `json:"buf_area_um2"`     // unit: um^2
	ClockCap    float64 `json:"clock_cap_ff"`     // unit: fF
	MaxStageCap float64 `json:"max_stage_cap_ff"` // unit: fF
	MaxSlew     float64 `json:"max_slew_ps"`      // unit: ps
}

// NetQoR is the per-net build record a cluster task fills: the net's own
// wire and buffer resources, measured before lower-level subtrees are
// grafted in. Tasks write only their own NetQoR, so the level reduction
// (serial, index order) is deterministic.
type NetQoR struct {
	WL      float64 // unit: um
	Buffers int
	BufArea float64 // unit: um^2
}
