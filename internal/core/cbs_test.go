package core

import (
	"math"
	"math/rand"
	"testing"

	"sllt/internal/dme"
	"sllt/internal/geom"
	"sllt/internal/invariants"
	"sllt/internal/rsmt"
	"sllt/internal/salt"
	"sllt/internal/tech"
	"sllt/internal/tree"
)

func randomNet(rng *rand.Rand, n int, box float64) *tree.Net {
	net := &tree.Net{Name: "r", Source: geom.Pt(rng.Float64()*box, rng.Float64()*box)}
	used := map[geom.Point]bool{}
	for len(net.Sinks) < n {
		p := geom.Pt(float64(rng.Intn(int(box))), float64(rng.Intn(int(box))))
		if used[p] {
			continue
		}
		used[p] = true
		net.Sinks = append(net.Sinks, tree.PinSink{Name: "s", Loc: p, Cap: 1.2})
	}
	return net
}

func pathSkew(t *tree.Tree) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range t.Sinks() {
		pl := tree.PathLength(s)
		lo = math.Min(lo, pl)
		hi = math.Max(hi, pl)
	}
	return hi - lo
}

// CBS's contract: the final tree honors the skew bound (like BST) while
// being structurally valid.
func TestCBSSkewLegal(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, bound := range []float64{2, 10, 40} {
		for _, method := range dme.AllTopoMethods {
			for trial := 0; trial < 5; trial++ {
				net := randomNet(rng, 10+rng.Intn(30), 75)
				opts := DefaultOptions(bound)
				opts.TopoMethod = method
				tr, err := Build(net, opts)
				if err != nil {
					t.Fatalf("bound %g %v trial %d: %v", bound, method, trial, err)
				}
				if err := invariants.CheckTree(tr); err != nil {
					t.Fatalf("bound %g %v trial %d: %v", bound, method, trial, err)
				}
				if err := invariants.CheckSkew(tr, bound, 1e-6); err != nil {
					t.Fatalf("bound %g %v trial %d: %v", bound, method, trial, err)
				}
				if got := len(tr.Sinks()); got != len(net.Sinks) {
					t.Fatalf("bound %g %v trial %d: lost sinks (%d != %d)", bound, method, trial, got, len(net.Sinks))
				}
			}
		}
	}
}

// Against plain BST-DME, CBS should reduce wirelength and max latency on
// average — the Table 3 comparison. The test runs in the paper's regime:
// Elmore delay, picosecond skew bounds that are moderate relative to the
// nets' natural skew.
func TestCBSBeatsBSTOnAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var wlBST, wlCBS, plBST, plCBS float64
	opts := Options{
		DME:        dme.Options{Model: dme.Elmore, SkewBound: 10, Tech: tech.Default28nm()},
		TopoMethod: dme.GreedyDist,
		SALTEps:    0.1,
	}
	for trial := 0; trial < 30; trial++ {
		net := randomNet(rng, 10+rng.Intn(31), 75)
		net.Source = geom.Pt(37.5, 37.5)
		bst, err := BuildStep1(net, opts)
		if err != nil {
			t.Fatal(err)
		}
		cbs, err := Refine(net, bst, opts)
		if err != nil {
			t.Fatal(err)
		}
		mB := tree.Measure(bst, net, 0)
		mC := tree.Measure(cbs, net, 0)
		wlBST += mB.WL
		wlCBS += mC.WL
		plBST += mB.MaxPL
		plCBS += mC.MaxPL
	}
	if wlCBS >= wlBST {
		t.Errorf("CBS total WL %.1f not below BST %.1f", wlCBS, wlBST)
	}
	if plCBS >= plBST {
		t.Errorf("CBS total max-PL %.1f not below BST %.1f", plCBS, plBST)
	}
}

// Against R-SALT, CBS controls skewness while R-SALT does not (Table 1's
// qualitative comparison).
func TestCBSControlsSkewVsSALT(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	bound := 5.0
	var saltViolations int
	for trial := 0; trial < 20; trial++ {
		net := randomNet(rng, 20+rng.Intn(21), 75)
		saltTree := salt.Build(net, 0.1)
		if pathSkew(saltTree) > bound {
			saltViolations++
		}
		cbsTree, err := Build(net, DefaultOptions(bound))
		if err != nil {
			t.Fatal(err)
		}
		if skew := pathSkew(cbsTree); skew > bound+1e-6 {
			t.Fatalf("trial %d: CBS skew %g over bound", trial, skew)
		}
	}
	if saltViolations == 0 {
		t.Error("expected R-SALT to violate a tight skew bound on some nets (otherwise the comparison is vacuous)")
	}
}

// CBS shallowness should sit between SALT (alpha ~ 1) and ZST, and its
// lightness should stay close to the RSMT (Table 1 shape). Run in the
// paper's Elmore/ps regime.
func TestCBSMetricOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	var aZST, aCBS, sumBeta float64
	const trials = 20
	opts := Options{
		DME:        dme.Options{Model: dme.Elmore, SkewBound: 10, Tech: tech.Default28nm()},
		TopoMethod: dme.GreedyDist,
		SALTEps:    0.1,
	}
	for trial := 0; trial < trials; trial++ {
		net := randomNet(rng, 25, 75)
		net.Source = geom.Pt(37.5, 37.5)
		ref := rsmt.WL(net)

		topo := dme.GenTopo(net, dme.GreedyDist, 0)
		zst, err := dme.Build(net, topo, dme.ZST())
		if err != nil {
			t.Fatal(err)
		}
		cbs, err := Build(net, opts)
		if err != nil {
			t.Fatal(err)
		}
		mZ := tree.Measure(zst, net, ref)
		mC := tree.Measure(cbs, net, ref)
		aZST += mZ.Alpha
		aCBS += mC.Alpha
		sumBeta += mC.Beta
	}
	if aCBS >= aZST {
		t.Errorf("CBS mean alpha %.3f not below ZST %.3f", aCBS/trials, aZST/trials)
	}
	if avgBeta := sumBeta / trials; avgBeta > 1.3 {
		t.Errorf("CBS mean beta %.3f too heavy", avgBeta)
	}
}

func TestCBSElmoreModel(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	opts := Options{
		DME:        dme.Options{Model: dme.Elmore, SkewBound: 10, Tech: tech.Default28nm()},
		TopoMethod: dme.GreedyDist,
		SALTEps:    0.1,
	}
	for trial := 0; trial < 10; trial++ {
		net := randomNet(rng, 10+rng.Intn(30), 75)
		tr, err := Build(net, opts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := invariants.CheckTree(tr); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := invariants.CheckLoad(tr, opts.DME.Tech.CPerUm); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestCBSSingleAndTinyNets(t *testing.T) {
	net1 := &tree.Net{Source: geom.Pt(0, 0), Sinks: []tree.PinSink{{Name: "a", Loc: geom.Pt(3, 4), Cap: 1}}}
	tr, err := Build(net1, DefaultOptions(5))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Wirelength() != 7 {
		t.Errorf("single-sink CBS WL = %g", tr.Wirelength())
	}
	net2 := &tree.Net{Source: geom.Pt(0, 0), Sinks: []tree.PinSink{
		{Name: "a", Loc: geom.Pt(3, 4), Cap: 1},
		{Name: "b", Loc: geom.Pt(-3, 4), Cap: 1},
	}}
	tr2, err := Build(net2, DefaultOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	if skew := pathSkew(tr2); skew > 1e-9 {
		t.Errorf("two-sink ZST-mode CBS skew = %g", skew)
	}
}
