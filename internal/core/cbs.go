// Package core implements the paper's primary contribution: CBS (Concurrent
// BST and SALT), the construction of skew-latency-load trees (SLLTs) that
// keep the skew control of bounded-skew DME while approaching the
// shallowness and lightness of Steiner shallow-light trees.
//
// The five-step flow follows the paper's Fig. 2:
//
//	Step 1: build an initial SLLT with BST-DME over a chosen merging
//	        topology (Greedy-Dist / Greedy-Merge / Bi-Partition / Bi-Cluster).
//	Step 2: extract its tree topology, eliminating redundant Steiner nodes.
//	Step 3: relax with SALT — paths much longer than their Manhattan lower
//	        bound are re-attached closer to the source, deliberately breaking
//	        skew legality in exchange for shallowness and lightness.
//	Step 4: re-canonicalize: binary tree, load pins as leaves.
//	Step 5: re-run BST-DME on the relaxed topology, restoring the skew bound
//	        while keeping the improved structure; redundant nodes are
//	        eliminated again in embedding.
package core

import (
	"fmt"

	"sllt/internal/dme"
	"sllt/internal/rsmt"
	"sllt/internal/salt"
	"sllt/internal/tree"
)

// Options configures CBS construction.
type Options struct {
	// DME carries the delay model, skew bound and technology.
	DME dme.Options
	// TopoMethod selects the Step-1 merging topology generator.
	TopoMethod dme.TopoMethod
	// SALTEps is the Step-3 shallowness slack: paths longer than
	// (1+SALTEps)·MD are re-attached. Smaller is more aggressive.
	SALTEps float64
}

// DefaultOptions returns the configuration used in the paper's net-level
// experiments: linear-model BST with the given skew bound, Greedy-Dist
// topology and a moderate SALT slack.
func DefaultOptions(skewBound float64) Options {
	return Options{
		DME:        dme.BST(skewBound),
		TopoMethod: dme.GreedyDist,
		SALTEps:    0.1,
	}
}

// Build runs the full five-step CBS flow on the net.
func Build(net *tree.Net, opts Options) (*tree.Tree, error) {
	// Step 1: initial SLLT by BST.
	initial, err := BuildStep1(net, opts)
	if err != nil {
		return nil, fmt.Errorf("cbs step 1: %w", err)
	}
	return Refine(net, initial, opts)
}

// BuildStep1 builds the initial bounded-skew tree (Step 1), exposed
// separately for ablation studies.
func BuildStep1(net *tree.Net, opts Options) (*tree.Tree, error) {
	budget := opts.DME.LengthBudget(net)
	topo := dme.GenTopo(net, opts.TopoMethod, budget)
	return dme.Build(net, topo, opts.DME)
}

// Refine applies Steps 2–5 to an existing skew-legal tree: topology
// extraction, SALT relaxation, canonicalization, and a BST pass on the
// relaxed topology. The input tree is not modified.
func Refine(net *tree.Net, initial *tree.Tree, opts Options) (*tree.Tree, error) {
	// Steps 2+3: extract the topology implicitly by relaxing the embedded
	// tree with SALT. Relax removes snaking (redundant "Steiner length"),
	// re-attaches overlong paths, and Steinerizes — skew legality is broken
	// here, exactly as the paper notes.
	relaxed := initial.Clone()
	salt.RelaxK(relaxed, opts.SALTEps, opts.DME.Kernel)

	// The BST seed leaves its Steiner points at delay-balance positions,
	// which are poor for wirelength once balancing is deferred to Step 5.
	// Alternate L1-median repositioning, rerouting, and Steinerization until
	// no pass finds an improvement.
	for i := 0; i < 4; i++ {
		moved := tree.OptimizeSteinerLocations(relaxed, 16)
		moved += salt.Reroute(relaxed, opts.SALTEps)
		if moved == 0 {
			break
		}
		rsmt.SteinerizeK(relaxed, opts.DME.Kernel)
		tree.RemoveRedundantSteiner(relaxed)
	}

	// Step 4: structural rules — binary tree, load pins as leaves,
	// redundant Steiner nodes eliminated.
	tree.Canonicalize(relaxed)

	// Step 5: BST on the Step-4 topology. With every node's embedding fixed
	// by the relaxation, BST-DME degenerates to its wire-sizing component: a
	// bottom-up bounded-skew repair that snakes the edges of too-fast
	// subtrees as high in the tree as possible. This is what lets the final
	// tree "closely approximate the result by SALT" (the paper's own
	// description of Step 5) instead of re-balancing from scratch.
	if err := dme.RepairSkew(relaxed, net, opts.DME); err != nil {
		return nil, fmt.Errorf("cbs step 5: %w", err)
	}
	return relaxed, nil
}

// RefineReembed is the ablation variant of Refine that re-runs full
// positional DME on the topology extracted from the relaxed tree instead of
// repairing in place. It generally wastes wire on chain-shaped topologies
// (balance-point drift) and exists to quantify that choice.
func RefineReembed(net *tree.Net, initial *tree.Tree, opts Options) (*tree.Tree, error) {
	relaxed := initial.Clone()
	salt.Relax(relaxed, opts.SALTEps)
	tree.Canonicalize(relaxed)
	topo, err := tree.ExtractTopo(relaxed, len(net.Sinks))
	if err != nil {
		return nil, fmt.Errorf("cbs step 4: %w", err)
	}
	final, err := dme.Build(net, topo, opts.DME)
	if err != nil {
		return nil, fmt.Errorf("cbs step 5: %w", err)
	}
	return final, nil
}
