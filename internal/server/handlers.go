package server

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
)

// maxRequestBytes bounds a job submission body. Inline LEF/DEF text for
// the designs this daemon targets runs to tens of megabytes; beyond this
// the client should split the design, not the server its memory.
const maxRequestBytes = 256 << 20 // unit: B

// Handler returns the daemon's HTTP API:
//
//	POST   /jobs              submit (202; 400 bad request; 429 queue full, Retry-After; 503 draining)
//	GET    /jobs/{id}         status JSON
//	DELETE /jobs/{id}         request cancellation (202)
//	GET    /jobs/{id}/def     post-CTS DEF (409 until done)
//	GET    /jobs/{id}/report  run report, schema sllt.obs.report/v1.1 (409 until done)
//	GET    /jobs/{id}/events  NDJSON progress stream: replay, then follow until terminal
//	GET    /healthz           liveness
//	GET    /stats             queue/load counters
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/def", s.handleDEF)
	mux.HandleFunc("GET /jobs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	return mux
}

// handleSubmit is the admission path: decode strictly, enqueue or shed.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "request body too large or unreadable")
		return
	}
	req, err := DecodeJobRequest(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	j, err := s.Submit(req)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Load shedding: the queue is the backpressure signal. Tell the
		// client when to come back rather than buffering unboundedly.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.Cancel(id) {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	j, _ := s.Job(id)
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) handleDEF(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	def, _, ok := j.artifacts()
	if !ok {
		writeError(w, http.StatusConflict, "job not done: "+string(j.status().State))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write(def)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	_, report, ok := j.artifacts()
	if !ok {
		writeError(w, http.StatusConflict, "job not done: "+string(j.status().State))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(report)
}

// handleEvents streams the job's progress as chunked NDJSON: everything
// recorded so far replays immediately, then the connection follows live
// events until the job reaches a terminal state or the client goes away.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, canFlush := w.(http.Flusher)
	from := 0
	for {
		lines, next, done, wake := j.events.since(from)
		for _, ln := range lines {
			if _, err := w.Write(ln); err != nil {
				return
			}
		}
		if len(lines) > 0 && canFlush {
			flusher.Flush()
		}
		from = next
		if done {
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, "encoding failure", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
