package server_test

import (
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"sllt/internal/obs"
	"sllt/internal/server"
)

var updateGolden = flag.Bool("update", false, "rewrite the progress-stream golden fixture")

// TestProgressStreamGolden pins the progress feed byte for byte. With the
// manual clock, an injected job-ID source, one runner and a serial worker
// budget, every clock read and event emission happens in one deterministic
// sequence — so the NDJSON a client receives is identical on every machine
// and any drift in the event schema, the span structure or the flow's stage
// order shows up as a fixture diff. Regenerate deliberately with -update.
func TestProgressStreamGolden(t *testing.T) {
	lefSrc, defSrc := fixtureSources(200, 40, 7)

	seq := 0
	s := server.New(server.Config{
		QueueDepth: 2,
		Runners:    1,
		Workers:    1,
		Clock:      obs.NewManualClock(1000),
		NewJobID: func() string {
			seq++
			return fmt.Sprintf("golden-%d", seq)
		},
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var st server.JobStatus
	if resp := postJob(t, ts.URL, &server.JobRequest{LEF: lefSrc, DEF: defSrc}, &st); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d, want 202", resp.StatusCode)
	}
	if st.JobID != "golden-1" {
		t.Fatalf("injected ID source ignored: job ID %q", st.JobID)
	}
	pollUntil(t, ts.URL, st.JobID, func(s server.JobStatus) bool { return s.State == server.StateDone })

	code, events := getBytes(t, ts.URL+"/jobs/"+st.JobID+"/events")
	if code != http.StatusOK {
		t.Fatalf("GET events = %d, want 200", code)
	}

	golden := filepath.Join("testdata", "progress_golden.ndjson")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, events, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(events))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v — run with -update to create the fixture", err)
	}
	if string(events) != string(want) {
		t.Errorf("progress stream drifted from %s (got %d bytes, want %d); rerun with -update if the change is intentional",
			golden, len(events), len(want))
	}
}
