package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"sllt/internal/cache"
	"sllt/internal/obs"
	"sllt/internal/server"
)

// gatedFlow is a FlowFunc that blocks until release closes (or the job is
// cancelled), letting tests hold the queue at a known occupancy.
func gatedFlow(release <-chan struct{}) server.FlowFunc {
	return func(ctx context.Context, req *server.JobRequest, workers int, rec *obs.Recorder, store *cache.Cache) (*server.FlowResult, error) {
		select {
		case <-release:
			return &server.FlowResult{DEF: []byte("DESIGN stub ;\n"), Fingerprint: "stub-fp"}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// TestSaturationLoadShedding drives the daemon at 4x its admission capacity
// while the single runner is wedged, and requires bounded-queue behavior:
// exactly the capacity's worth of jobs admitted with 202, everything beyond
// shed with 429 + Retry-After — never buffered, never blocked. After the
// runner is released every admitted job completes. The race CI job runs
// this test under -race, so the concurrent submissions also double as a
// data-race probe on the admission path.
func TestSaturationLoadShedding(t *testing.T) {
	release := make(chan struct{})
	const queueDepth, runners = 2, 1
	capacity := queueDepth + runners // wedged runner holds 1, queue holds 2
	s := server.New(server.Config{
		QueueDepth: queueDepth,
		Runners:    runners,
		Flow:       gatedFlow(release),
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, err := json.Marshal(&server.JobRequest{LEF: "l", DEF: "d"})
	if err != nil {
		t.Fatal(err)
	}

	const submissions = 4 * (queueDepth + runners) // 4x capacity, concurrently
	type outcome struct {
		code       int
		retryAfter string
		jobID      string
	}
	outcomes := make([]outcome, submissions)
	var wg sync.WaitGroup
	for i := 0; i < submissions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("submission %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			var st server.JobStatus
			if resp.StatusCode == http.StatusAccepted {
				if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
					t.Errorf("submission %d: %v", i, err)
					return
				}
			}
			outcomes[i] = outcome{code: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After"), jobID: st.JobID}
		}(i)
	}
	wg.Wait()

	var accepted []string
	shed := 0
	for i, o := range outcomes {
		switch o.code {
		case http.StatusAccepted:
			accepted = append(accepted, o.jobID)
		case http.StatusTooManyRequests:
			shed++
			if o.retryAfter == "" {
				t.Errorf("submission %d: 429 without Retry-After", i)
			}
		default:
			t.Errorf("submission %d: status %d, want 202 or 429", i, o.code)
		}
	}
	// The queue is bounded: admissions can never exceed capacity. At least
	// the queue's worth must get in (the runner may or may not have claimed
	// one before the burst landed), and everything else must have been shed.
	if len(accepted) > capacity {
		t.Errorf("admitted %d jobs, capacity is %d — queue is not bounded", len(accepted), capacity)
	}
	if len(accepted) < queueDepth {
		t.Errorf("admitted %d jobs, want >= the queue depth %d", len(accepted), queueDepth)
	}
	if want := submissions - len(accepted); shed != want {
		t.Errorf("shed %d submissions, want %d", shed, want)
	}

	stats := s.Stats()
	if stats.Shed != int64(shed) {
		t.Errorf("stats.Shed = %d, want %d", stats.Shed, shed)
	}
	if stats.Jobs != len(accepted) {
		t.Errorf("stats.Jobs = %d, want %d admitted", stats.Jobs, len(accepted))
	}

	// Releasing the runner lets every admitted job finish — shedding lost
	// requests, never accepted work.
	close(release)
	for _, id := range accepted {
		st := pollUntil(t, ts.URL, id, func(s server.JobStatus) bool { return s.State == server.StateDone })
		if st.Fingerprint != "stub-fp" {
			t.Errorf("job %s finished without its result", id)
		}
	}
}

// TestDrainGracefulShutdown pins the SIGTERM path: draining refuses new
// work with 503 while letting admitted jobs finish; Drain honors its
// context deadline when they don't.
func TestDrainGracefulShutdown(t *testing.T) {
	release := make(chan struct{})
	s := server.New(server.Config{QueueDepth: 2, Runners: 1, Flow: gatedFlow(release)})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var st server.JobStatus
	if resp := postJob(t, ts.URL, &server.JobRequest{LEF: "l", DEF: "d"}, &st); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d, want 202", resp.StatusCode)
	}

	// The wedged job keeps Drain from completing within a short deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	err := s.Drain(ctx)
	cancel()
	if err == nil {
		t.Fatal("Drain returned nil with a job still running")
	}

	// Draining: admissions now refuse with 503.
	if resp := postJob(t, ts.URL, &server.JobRequest{LEF: "l", DEF: "d"}, nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST /jobs while draining = %d, want 503", resp.StatusCode)
	}

	// Release the flow: the admitted job finishes and Drain completes.
	close(release)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if err := s.Drain(ctx2); err != nil {
		t.Fatalf("Drain after release: %v", err)
	}
	final := pollUntil(t, ts.URL, st.JobID, func(s server.JobStatus) bool { return s.State == server.StateDone })
	if final.State != server.StateDone {
		t.Fatalf("drained job state = %s, want done", final.State)
	}
}
