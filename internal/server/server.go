// Package server is the sllt synthesis daemon's core: an HTTP/JSON job
// service wrapping the cts flow. Jobs enter a bounded FIFO queue (admission
// control sheds load with 429 once it fills), runner goroutines execute them
// under a per-job share of the global worker budget, and every job exposes
// its status, result artifacts and a streaming NDJSON progress feed backed
// by an obs span-sink.
//
// Determinism carries over from the flow: the daemon's DEF output for a
// request is byte-identical to what cmd/slltcts produces offline for the
// same inputs, for any queue depth, runner count or worker budget. Time and
// job identity are injected (obs.Clock, NewJobID) so tests pin exact event
// streams; production uses the wall clock and sequential IDs.
package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"sllt/internal/cache"
	"sllt/internal/obs"
)

// Sentinel errors for admission control; the HTTP layer maps them to 429
// and 503 respectively.
var (
	ErrQueueFull = errors.New("server: job queue full")
	ErrDraining  = errors.New("server: draining, not accepting jobs")
)

// Config sizes and wires a Server. The zero value is usable: depth-8 queue,
// one runner, GOMAXPROCS worker budget, wall clock, sequential job IDs, the
// production flow, and no stage cache.
type Config struct {
	// QueueDepth bounds the jobs waiting for a runner (admission control
	// sheds beyond it). <= 0 selects 8.
	QueueDepth int
	// Runners is the number of concurrent job executors. <= 0 selects 1.
	Runners int
	// Workers is the global goroutine budget split evenly across runners;
	// a job gets max(1, Workers/Runners), further capped by its own
	// options.workers. <= 0 selects GOMAXPROCS.
	Workers int
	// Clock stamps job transitions and feeds each job's recorder. nil
	// selects the wall clock; tests inject obs.NewManualClock for
	// deterministic event streams.
	Clock obs.Clock
	// NewJobID mints job identifiers. nil selects sequential "job-%06d"
	// IDs — no global randomness anywhere in the server.
	NewJobID func() string
	// Cache, when non-nil, is shared by every job: concurrent submissions
	// of the same design converge on one set of stage computations.
	Cache *cache.Cache
	// Flow executes one job. nil selects RunFlow; tests substitute slow or
	// failing flows to exercise the queue.
	Flow FlowFunc
}

// Server owns the queue, the runner pool and the job table. Create with
// New, serve via Handler, stop with Drain (graceful) and/or Close.
type Server struct {
	cfg   Config
	clock obs.Clock
	flow  FlowFunc
	store *cache.Cache

	ctx    context.Context // parent of every job context; Close cancels it
	cancel context.CancelFunc
	queue  chan *Job

	runnersWG sync.WaitGroup // runner goroutines
	pending   sync.WaitGroup // submitted jobs not yet terminal

	mu       sync.Mutex
	jobs     map[string]*Job
	seq      int
	draining bool
	shed     int64 // submissions refused with ErrQueueFull
}

// New builds a server from cfg and starts its runners.
func New(cfg Config) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	if cfg.Runners <= 0 {
		cfg.Runners = 1
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Clock == nil {
		cfg.Clock = obs.NewWallClock()
	}
	if cfg.Flow == nil {
		cfg.Flow = RunFlow
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:    cfg,
		clock:  cfg.Clock,
		flow:   cfg.Flow,
		store:  cfg.Cache,
		ctx:    ctx,
		cancel: cancel,
		queue:  make(chan *Job, cfg.QueueDepth),
		jobs:   make(map[string]*Job),
	}
	for i := 0; i < cfg.Runners; i++ {
		s.runnersWG.Add(1)
		go s.runner()
	}
	return s
}

// Submit admits a job or refuses it: ErrDraining while shutting down,
// ErrQueueFull when the FIFO is at capacity (the load-shedding path — the
// client backs off and retries). The send is non-blocking by construction,
// so a full queue never stalls the HTTP handler.
func (s *Server) Submit(req *JobRequest) (*Job, error) {
	now := s.clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	s.seq++
	id := fmt.Sprintf("job-%06d", s.seq)
	if s.cfg.NewJobID != nil {
		id = s.cfg.NewJobID()
	}
	ctx, cancel := context.WithCancel(s.ctx)
	j := &Job{
		id:          id,
		req:         req,
		ctx:         ctx,
		cancel:      cancel,
		events:      newEventLog(),
		done:        make(chan struct{}),
		state:       StateQueued,
		submittedNs: now,
	}
	select {
	case s.queue <- j:
	default:
		s.shed++
		cancel()
		return nil, ErrQueueFull
	}
	s.jobs[id] = j
	s.pending.Add(1)
	j.events.appendState(id, StateQueued, "", now)
	return j, nil
}

// Job looks up a submitted job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel requests cancellation of a job. A running job's flow observes the
// context at its next stage boundary; a queued job is marked cancelled when
// a runner claims it. Returns false for unknown IDs.
func (s *Server) Cancel(id string) bool {
	j, ok := s.Job(id)
	if !ok {
		return false
	}
	j.cancel()
	return true
}

// Stats is the GET /stats body.
type Stats struct {
	QueueDepth int   `json:"queue_depth"` // jobs currently waiting
	QueueCap   int   `json:"queue_cap"`
	Jobs       int   `json:"jobs"` // all jobs ever admitted
	Shed       int64 `json:"shed"` // submissions refused with 429
	Draining   bool  `json:"draining"`
}

// Stats snapshots the server's load counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		QueueDepth: len(s.queue),
		QueueCap:   cap(s.queue),
		Jobs:       len(s.jobs),
		Shed:       s.shed,
		Draining:   s.draining,
	}
}

// Drain stops admitting jobs and waits for every admitted job to reach a
// terminal state, or for ctx to expire. The SIGTERM path in cmd/slltd is
// Drain with a deadline, then Close.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	idle := make(chan struct{})
	go func() {
		s.pending.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close cancels all job contexts, stops the runners and marks any jobs
// still queued as cancelled. Safe after Drain; safe to call exactly once.
func (s *Server) Close() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.cancel()
	s.runnersWG.Wait()
	for {
		select {
		case j := <-s.queue:
			s.finishJob(j, StateCancelled, context.Canceled.Error())
		default:
			return
		}
	}
}

// runner is one executor: claim from the FIFO, run, repeat until the
// server context ends.
func (s *Server) runner() {
	defer s.runnersWG.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

// jobWorkers computes a job's goroutine budget: an even share of the global
// budget, tightened by the request's own cap.
func (s *Server) jobWorkers(req *JobRequest) int {
	w := s.cfg.Workers / s.cfg.Runners
	if w < 1 {
		w = 1
	}
	if rw := req.Options.Workers; rw > 0 && rw < w {
		w = rw
	}
	return w
}

// runJob executes one claimed job and drives its terminal transition.
func (s *Server) runJob(j *Job) {
	if err := j.ctx.Err(); err != nil {
		// Cancelled (or server-closed) while queued: never ran.
		s.finishJob(j, StateCancelled, err.Error())
		return
	}
	workers := s.jobWorkers(j.req)
	j.setRunning(s.clock.Now(), workers)
	rec := obs.NewWithSink(s.clock, jobSink{log: j.events})
	res, err := s.flow(j.ctx, j.req, workers, rec, s.store)
	switch {
	case err == nil:
		j.setResult(res)
		s.finishJob(j, StateDone, "")
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.finishJob(j, StateCancelled, err.Error())
	default:
		s.finishJob(j, StateFailed, err.Error())
	}
}

// finishJob applies a terminal transition and releases its pending slot.
func (s *Server) finishJob(j *Job, state State, errMsg string) {
	if j.finish(state, errMsg, s.clock.Now()) {
		s.pending.Done()
	}
}
