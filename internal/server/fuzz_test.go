package server_test

import (
	"encoding/json"
	"reflect"
	"testing"

	"sllt/internal/server"
)

// FuzzDecodeJobRequest asserts the submission decoder returns errors —
// never panics — on arbitrary bytes, and pins two invariants on anything
// it accepts: required fields survived the decode, and the accepted request
// round-trips through encode/decode unchanged (the strict decoder accepts
// its own canonical encoding). The committed corpus under
// testdata/fuzz/FuzzDecodeJobRequest keeps past regression inputs in CI's
// 30s smoke run.
func FuzzDecodeJobRequest(f *testing.F) {
	f.Add([]byte(`{"lef":"L","def":"D"}`))
	f.Add([]byte(`{"design":"x","net":"clk","lef":"L","def":"D","liberty":"lib",
		"options":{"engine":"ours","skew_ps":80,"fanout":32,"max_cap_ff":150,"seed":1,"workers":8}}`))
	f.Add([]byte(`{"lef":"L","def":"D","options":{"engine":"openroad"}}`))
	f.Add([]byte(`{"lef":"L","def":"D","options":{"workers":4096}}`))
	f.Add([]byte(`{"lef":"L","def":"D","unknown":1}`))
	f.Add([]byte(`{"lef":"L","def":"D"}{"trailing":true}`))
	f.Add([]byte(`{"options":{"skew_ps":-1}}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`[]`))
	f.Add([]byte("\x00\xff{"))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := server.DecodeJobRequest(data)
		if err != nil {
			return
		}
		if req.LEF == "" || req.DEF == "" {
			t.Fatalf("accepted a request without lef/def: %+v", req)
		}
		enc, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("re-encoding an accepted request: %v", err)
		}
		again, err := server.DecodeJobRequest(enc)
		if err != nil {
			t.Fatalf("canonical re-encoding rejected: %v\n%s", err, enc)
		}
		if !reflect.DeepEqual(req, again) {
			t.Fatalf("round trip drift:\nfirst:  %+v\nsecond: %+v", req, again)
		}
	})
}
