package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// JobRequest is the POST /jobs payload: the design sources inline plus the
// synthesis knobs. The LEF/DEF/Liberty strings are the same text the
// offline CLIs read from disk; at ingest they stream through the repo's
// fixed-buffer Parse*Reader paths, so a request is parsed with the same
// bounded-memory machinery as a file.
type JobRequest struct {
	// Design, when non-empty, overrides the DEF's DESIGN name in reports.
	Design string `json:"design,omitempty"`
	// Net names the clock net; empty selects the first USE CLOCK net.
	Net string `json:"net,omitempty"`
	// LEF and DEF are the design sources (required).
	LEF string `json:"lef"`
	DEF string `json:"def"`
	// Liberty, when non-empty, replaces the built-in buffer library.
	Liberty string `json:"liberty,omitempty"`
	// Options are the synthesis knobs; the zero value means server defaults.
	Options JobOptions `json:"options"`
}

// JobOptions mirrors the slltcts flags. Zero values select the engine
// defaults, so a minimal request is just {lef, def}.
type JobOptions struct {
	// Engine is "ours" (default), "commercial" or "openroad".
	Engine string `json:"engine,omitempty"`
	// SkewPs overrides the skew bound when > 0.
	SkewPs float64 `json:"skew_ps,omitempty"` // unit: ps
	// Fanout overrides the max fanout when > 0.
	Fanout int `json:"fanout,omitempty"`
	// MaxCapFF overrides the max stage capacitance when > 0.
	MaxCapFF float64 `json:"max_cap_ff,omitempty"` // unit: fF
	// Seed overrides the random seed when != 0.
	Seed int64 `json:"seed,omitempty"`
	// Workers caps this job's goroutines; the server clamps it to the
	// per-job share of its global worker budget. <= 0 takes the full share.
	Workers int `json:"workers,omitempty"`
}

// maxWorkersOption bounds the per-job worker request; anything above is a
// client error rather than a silent clamp.
const maxWorkersOption = 4096

// DecodeJobRequest parses and validates a job-submission payload. The
// decode is strict — unknown fields, trailing data and out-of-range knobs
// are errors, so a typo'd field name can never silently select a default.
// It never panics on arbitrary input (FuzzDecodeJobRequest) and an accepted
// request survives an encode/decode round trip unchanged.
func DecodeJobRequest(data []byte) (*JobRequest, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	req := &JobRequest{}
	if err := dec.Decode(req); err != nil {
		return nil, fmt.Errorf("job request: %w", err)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return nil, fmt.Errorf("job request: trailing data after JSON object")
	}
	if err := req.validate(); err != nil {
		return nil, fmt.Errorf("job request: %w", err)
	}
	return req, nil
}

// validate checks the decoded request's semantic constraints.
func (r *JobRequest) validate() error {
	if r.LEF == "" {
		return fmt.Errorf("missing required field \"lef\"")
	}
	if r.DEF == "" {
		return fmt.Errorf("missing required field \"def\"")
	}
	switch r.Options.Engine {
	case "", "ours", "commercial", "openroad":
	default:
		return fmt.Errorf("unknown engine %q (want ours, commercial or openroad)", r.Options.Engine)
	}
	if r.Options.SkewPs < 0 {
		return fmt.Errorf("skew_ps %v out of range (want >= 0)", r.Options.SkewPs)
	}
	if r.Options.Fanout < 0 {
		return fmt.Errorf("fanout %d out of range (want >= 0)", r.Options.Fanout)
	}
	if r.Options.MaxCapFF < 0 {
		return fmt.Errorf("max_cap_ff %v out of range (want >= 0)", r.Options.MaxCapFF)
	}
	if r.Options.Workers < 0 || r.Options.Workers > maxWorkersOption {
		return fmt.Errorf("workers %d out of range (want 0..%d)", r.Options.Workers, maxWorkersOption)
	}
	return nil
}
