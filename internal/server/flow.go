package server

import (
	"bytes"
	"context"
	"fmt"
	"strings"

	"sllt/internal/baseline"
	"sllt/internal/cache"
	"sllt/internal/cts"
	"sllt/internal/design"
	"sllt/internal/lefdef"
	"sllt/internal/liberty"
	"sllt/internal/obs"
	"sllt/internal/tree"
)

// FlowResult is what one job produces: the post-CTS DEF exactly as the
// offline slltcts -out flag would write it, the canonical tree fingerprint,
// the versioned run report, and the level/cluster shape for status.
type FlowResult struct {
	DEF         []byte
	Fingerprint string
	Report      []byte // canonical JSON, schema sllt.obs.report/v1.1
	Levels      int
	Clusters    []int
}

// FlowFunc runs one synthesis job. The server owns scheduling (ctx, the
// worker budget, the shared cache, the recorder feeding the progress
// stream); the flow owns everything between request bytes and result
// bytes. Tests substitute slow or failing flows to drive the queue.
type FlowFunc func(ctx context.Context, req *JobRequest, workers int, rec *obs.Recorder, store *cache.Cache) (*FlowResult, error)

// RunFlow is the production flow: the same parse -> synthesize -> export
// pipeline as cmd/slltcts, fed from the request strings instead of files.
// Both paths stream through the fixed-buffer Parse*Reader ingests and the
// streaming DEF exporter, so for identical inputs the daemon's DEF is
// byte-identical to the offline CLI's — the property the e2e test pins.
func RunFlow(ctx context.Context, req *JobRequest, workers int, rec *obs.Recorder, store *cache.Cache) (*FlowResult, error) {
	lef, err := lefdef.ParseLEFReader(strings.NewReader(req.LEF))
	if err != nil {
		return nil, fmt.Errorf("lef: %w", err)
	}
	df, err := lefdef.ParseDEFReader(strings.NewReader(req.DEF))
	if err != nil {
		return nil, fmt.Errorf("def: %w", err)
	}
	d, err := design.FromLEFDEF(lef, df, req.Net)
	if err != nil {
		return nil, err
	}
	if req.Design != "" {
		d.Name = req.Design
	}

	var opts cts.Options
	switch req.Options.Engine {
	case "", "ours":
		opts = cts.DefaultOptions()
	case "commercial":
		opts = baseline.CommercialLike()
	case "openroad":
		opts = baseline.OpenROADLike()
	default:
		// validate() already refused unknown engines; keep the guard for
		// callers constructing requests directly.
		return nil, fmt.Errorf("unknown engine %q", req.Options.Engine)
	}
	if req.Liberty != "" {
		lib, err := liberty.ParseReader(strings.NewReader(req.Liberty))
		if err != nil {
			return nil, fmt.Errorf("liberty: %w", err)
		}
		opts.Lib = lib
	}
	if req.Options.SkewPs > 0 {
		opts.Cons.SkewBound = req.Options.SkewPs
	}
	if req.Options.Fanout > 0 {
		opts.Cons.MaxFanout = req.Options.Fanout
	}
	if req.Options.MaxCapFF > 0 {
		opts.Cons.MaxCap = req.Options.MaxCapFF
	}
	if req.Options.Seed != 0 {
		opts.Seed = req.Options.Seed
	}
	opts.Workers = workers
	opts.Obs = rec
	opts.Cache = store
	opts.Ctx = ctx

	res, err := cts.Run(d, opts)
	if err != nil {
		return nil, err
	}

	var buf bytes.Buffer
	if _, err := cts.ExportDEFWriter(&buf, d, res); err != nil {
		return nil, fmt.Errorf("export: %w", err)
	}
	out := &FlowResult{
		DEF:         buf.Bytes(),
		Fingerprint: tree.Fingerprint(res.Tree),
		Levels:      res.Levels,
		Clusters:    res.Clusters,
	}
	if rec.Enabled() {
		rep := rec.Snapshot()
		data, err := rep.JSON()
		if err != nil {
			return nil, fmt.Errorf("report: %w", err)
		}
		out.Report = data
	}
	return out, nil
}
