package server_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"sllt/internal/cache"
	"sllt/internal/obs"
	"sllt/internal/server"
)

// TestCancelRunningJob pins prompt cancellation end to end: DELETE on a
// running job cancels its context, the flow observes it immediately, the
// job lands in state cancelled carrying ctx.Err(), and the progress stream
// terminates with that job_state — a follower is not left hanging.
func TestCancelRunningJob(t *testing.T) {
	started := make(chan struct{}, 1)
	flow := func(ctx context.Context, req *server.JobRequest, workers int, rec *obs.Recorder, store *cache.Cache) (*server.FlowResult, error) {
		started <- struct{}{}
		<-ctx.Done() // a real flow polls at stage boundaries; the stub just waits
		return nil, ctx.Err()
	}
	s := server.New(server.Config{QueueDepth: 2, Runners: 1, Flow: flow})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var st server.JobStatus
	if resp := postJob(t, ts.URL, &server.JobRequest{LEF: "l", DEF: "d"}, &st); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d, want 202", resp.StatusCode)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("runner never claimed the job")
	}

	// Attach a live follower before cancelling; it must unblock on its own.
	streamDone := make(chan []byte, 1)
	go func() {
		resp, err := http.Get(fmt.Sprintf("%s/jobs/%s/events", ts.URL, st.JobID))
		if err != nil {
			streamDone <- nil
			return
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		streamDone <- data
	}()

	delReq, err := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+st.JobID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE /jobs/{id} = %d, want 202", resp.StatusCode)
	}

	final := pollUntil(t, ts.URL, st.JobID, func(s server.JobStatus) bool { return s.State == server.StateCancelled })
	if !strings.Contains(final.Error, context.Canceled.Error()) {
		t.Errorf("cancelled job error = %q, want ctx.Err() text", final.Error)
	}

	select {
	case events := <-streamDone:
		if !strings.Contains(string(events), `"state":"cancelled"`) {
			t.Errorf("follower's stream missing the terminal cancelled state:\n%s", events)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("event stream did not terminate after cancellation")
	}

	// A finished job refuses its artifacts with 409 — it has none.
	if code, _ := getBytes(t, ts.URL+"/jobs/"+st.JobID+"/def"); code != http.StatusConflict {
		t.Errorf("GET def on cancelled job = %d, want 409", code)
	}
}

// TestCancelQueuedJob pins the other cancellation path: a job cancelled
// before any runner claims it never runs and still reaches a clean
// terminal state.
func TestCancelQueuedJob(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s := server.New(server.Config{QueueDepth: 2, Runners: 1, Flow: gatedFlow(release)})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// First job wedges the runner; the second stays queued.
	if resp := postJob(t, ts.URL, &server.JobRequest{LEF: "l", DEF: "d"}, nil); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d, want 202", resp.StatusCode)
	}
	var queued server.JobStatus
	if resp := postJob(t, ts.URL, &server.JobRequest{LEF: "l", DEF: "d"}, &queued); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d, want 202", resp.StatusCode)
	}

	if !s.Cancel(queued.JobID) {
		t.Fatalf("Cancel(%s) = false", queued.JobID)
	}
	// Unwedge the runner: it claims the cancelled job and retires it unrun.
	release <- struct{}{}
	final := pollUntil(t, ts.URL, queued.JobID, func(s server.JobStatus) bool { return s.State == server.StateCancelled })
	if final.StartedNs != 0 {
		t.Errorf("queued-then-cancelled job recorded a start: %+v", final)
	}
}

// TestCancelNoGoroutineLeak closes the loop on lifecycle hygiene: a full
// submit → cancel → drain → close cycle must return the process to its
// starting goroutine count. A leaked runner, follower or job context shows
// up here as a stuck count.
func TestCancelNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	flow := func(ctx context.Context, req *server.JobRequest, workers int, rec *obs.Recorder, store *cache.Cache) (*server.FlowResult, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	s := server.New(server.Config{QueueDepth: 4, Runners: 2, Flow: flow})
	ts := httptest.NewServer(s.Handler())

	ids := make([]string, 3)
	for i := range ids {
		var st server.JobStatus
		if resp := postJob(t, ts.URL, &server.JobRequest{LEF: "l", DEF: "d"}, &st); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("POST /jobs = %d, want 202", resp.StatusCode)
		}
		ids[i] = st.JobID
	}
	for _, id := range ids {
		s.Cancel(id)
	}
	for _, id := range ids {
		pollUntil(t, ts.URL, id, func(s server.JobStatus) bool { return s.State == server.StateCancelled })
	}
	ts.Close()
	s.Close()

	// Goroutine teardown is asynchronous; give it a bounded settle window.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
