package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"sllt/internal/cts"
	"sllt/internal/design"
	"sllt/internal/designgen"
	"sllt/internal/lefdef"
	"sllt/internal/liberty"
	"sllt/internal/server"
	"sllt/internal/tree"
)

// fixtureSources renders a generated design to the same LEF/DEF text a real
// flow would read from disk — the daemon's wire payload and the offline
// reference parse identical bytes.
func fixtureSources(insts, ffs int, seed int64) (lefSrc, defSrc string) {
	d := designgen.Generate(designgen.Spec{Name: "srv", Insts: insts, FFs: ffs, Util: 0.6}, seed)
	lefSrc = designgen.LEF(designgen.BufferMacros(liberty.Default())).WriteLEF()
	defSrc = designgen.DEF(d).WriteDEF()
	return lefSrc, defSrc
}

// offlineReference runs the cmd/slltcts pipeline in-process: stream-parse,
// synthesize, stream-export. Its bytes are the truth the daemon must match.
func offlineReference(t *testing.T, lefSrc, defSrc string) (defOut []byte, fp string) {
	t.Helper()
	lef, err := lefdef.ParseLEFReader(strings.NewReader(lefSrc))
	if err != nil {
		t.Fatal(err)
	}
	df, err := lefdef.ParseDEFReader(strings.NewReader(defSrc))
	if err != nil {
		t.Fatal(err)
	}
	d, err := design.FromLEFDEF(lef, df, "")
	if err != nil {
		t.Fatal(err)
	}
	opts := cts.DefaultOptions()
	opts.Workers = 1
	res, err := cts.Run(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := cts.ExportDEFWriter(&buf, d, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), tree.Fingerprint(res.Tree)
}

// postJob submits a request and decodes the response body into out (a
// *server.JobStatus for 202, a map for error bodies).
func postJob(t *testing.T, baseURL string, req *server.JobRequest, out any) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", resp.Status, err)
		}
	}
	return resp
}

// getJSON fetches path and decodes its JSON body into out, returning the
// status code.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", resp.Status, err)
		}
	}
	return resp.StatusCode
}

// pollUntil polls a job's status until pred accepts it; a terminal state
// pred rejects is fatal, as is the deadline.
func pollUntil(t *testing.T, baseURL, id string, pred func(server.JobStatus) bool) server.JobStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		var st server.JobStatus
		if code := getJSON(t, baseURL+"/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("GET /jobs/%s = %d", id, code)
		}
		if pred(st) {
			return st
		}
		switch st.State {
		case server.StateDone, server.StateFailed, server.StateCancelled:
			t.Fatalf("job %s reached unexpected terminal state %s (error %q)", id, st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func getBytes(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// TestE2EByteIdentity is the service contract end to end: submit a design
// over HTTP, follow it through the queue, and require the daemon's DEF and
// tree fingerprint to be byte-identical to the offline slltcts pipeline on
// the same input text. The progress stream and the versioned run report
// must both be served for the finished job.
func TestE2EByteIdentity(t *testing.T) {
	lefSrc, defSrc := fixtureSources(400, 80, 11)
	wantDEF, wantFP := offlineReference(t, lefSrc, defSrc)

	s := server.New(server.Config{QueueDepth: 4, Runners: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var st server.JobStatus
	resp := postJob(t, ts.URL, &server.JobRequest{LEF: lefSrc, DEF: defSrc}, &st)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d, want 202", resp.StatusCode)
	}
	if st.JobID == "" || st.State != server.StateQueued {
		t.Fatalf("submission status = %+v, want queued with an ID", st)
	}

	final := pollUntil(t, ts.URL, st.JobID, func(s server.JobStatus) bool { return s.State == server.StateDone })
	if final.Fingerprint != wantFP {
		t.Errorf("daemon fingerprint %s != offline %s", final.Fingerprint, wantFP)
	}
	if final.Levels == 0 || len(final.Clusters) == 0 {
		t.Errorf("done status missing tree shape: %+v", final)
	}

	code, gotDEF := getBytes(t, ts.URL+"/jobs/"+st.JobID+"/def")
	if code != http.StatusOK {
		t.Fatalf("GET def = %d, want 200", code)
	}
	if !bytes.Equal(gotDEF, wantDEF) {
		t.Errorf("daemon DEF (%d bytes) differs from offline slltcts DEF (%d bytes)", len(gotDEF), len(wantDEF))
	}

	code, report := getBytes(t, ts.URL+"/jobs/"+st.JobID+"/report")
	if code != http.StatusOK {
		t.Fatalf("GET report = %d, want 200", code)
	}
	if !bytes.Contains(report, []byte("sllt.obs.report/v1.1")) {
		t.Errorf("report does not carry the versioned schema marker")
	}
	if out := os.Getenv("SLLTD_REPORT_OUT"); out != "" {
		if err := os.WriteFile(out, report, 0o644); err != nil {
			t.Fatalf("SLLTD_REPORT_OUT: %v", err)
		}
	}

	// The finished job's progress stream replays in full and terminates.
	code, events := getBytes(t, ts.URL+"/jobs/"+st.JobID+"/events")
	if code != http.StatusOK {
		t.Fatalf("GET events = %d, want 200", code)
	}
	lines := strings.Split(strings.TrimSpace(string(events)), "\n")
	if len(lines) < 5 {
		t.Fatalf("progress stream has %d lines, want the span/level/state feed", len(lines))
	}
	for _, want := range []string{`"state":"queued"`, `"state":"running"`, `"state":"done"`, `"kind":"span_begin"`, `"kind":"level"`} {
		if !strings.Contains(string(events), want) {
			t.Errorf("progress stream missing %s", want)
		}
	}
	last := lines[len(lines)-1]
	if !strings.Contains(last, `"state":"done"`) {
		t.Errorf("stream's final line is %s, want the terminal job_state", last)
	}

	// Artifact endpoints refuse unfinished/unknown jobs cleanly.
	if code, _ := getBytes(t, ts.URL+"/jobs/nope/def"); code != http.StatusNotFound {
		t.Errorf("GET unknown def = %d, want 404", code)
	}
}

// TestE2EStreamFollowsLiveJob pins the follow half of the progress stream:
// a client connected while the job runs receives events as they happen and
// the stream closes on its own at the terminal state — no client timeout.
func TestE2EStreamFollowsLiveJob(t *testing.T) {
	lefSrc, defSrc := fixtureSources(300, 60, 3)

	s := server.New(server.Config{QueueDepth: 4, Runners: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var st server.JobStatus
	if resp := postJob(t, ts.URL, &server.JobRequest{LEF: lefSrc, DEF: defSrc}, &st); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d, want 202", resp.StatusCode)
	}

	// Connect immediately — most of the stream arrives while running.
	resp, err := http.Get(fmt.Sprintf("%s/jobs/%s/events", ts.URL, st.JobID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events, err := io.ReadAll(resp.Body) // returns only when the server ends the stream
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(events), `"state":"done"`) {
		t.Fatalf("live-followed stream never delivered the terminal state:\n%s", events)
	}
}
