package server

import (
	"encoding/json"

	"sync"

	"sllt/internal/obs"
)

// eventLog is one job's progress stream: an append-only buffer of NDJSON
// lines with replay-then-follow semantics. A subscriber reads everything
// recorded so far, then waits on the wake channel for more; close marks the
// stream complete so followers drain and return instead of waiting forever.
// Safe for concurrent appenders (parallel flow tasks emit span events) and
// any number of concurrent readers.
type eventLog struct {
	mu     sync.Mutex
	lines  [][]byte
	closed bool
	wake   chan struct{} // closed and replaced on every append/close
}

func newEventLog() *eventLog {
	return &eventLog{wake: make(chan struct{})}
}

// append records one NDJSON line (the trailing newline is the caller's).
// No-op after close.
func (l *eventLog) append(line []byte) {
	l.mu.Lock()
	if !l.closed {
		l.lines = append(l.lines, line)
		close(l.wake)
		l.wake = make(chan struct{})
	}
	l.mu.Unlock()
}

// close completes the stream and wakes all waiters.
func (l *eventLog) close() {
	l.mu.Lock()
	if !l.closed {
		l.closed = true
		close(l.wake)
	}
	l.mu.Unlock()
}

// since returns the lines recorded at or after index from, the index to
// resume from, whether the stream is complete, and a channel that closes
// when either changes.
func (l *eventLog) since(from int) (lines [][]byte, next int, done bool, wake <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < len(l.lines) {
		lines = l.lines[from:len(l.lines):len(l.lines)]
	}
	return lines, len(l.lines), l.closed, l.wake
}

// jobSink adapts an eventLog to obs.Sink: every recorder event serializes
// to one NDJSON line. Marshal order is the Event struct's field order, so a
// serial run under a ManualClock yields a byte-stable stream — what the
// progress-golden test pins.
type jobSink struct{ log *eventLog }

func (s jobSink) Emit(e obs.Event) {
	line, err := json.Marshal(e)
	if err != nil {
		return // Event is a plain struct; Marshal cannot fail on it
	}
	s.log.append(append(line, '\n'))
}

// stateEvent is the job-lifecycle line interleaved with the recorder's
// span/level events: queued, running, then exactly one terminal state.
type stateEvent struct {
	Kind  string `json:"kind"` // always "job_state"
	JobID string `json:"job_id"`
	State State  `json:"state"`
	Error string `json:"error,omitempty"`
	AtNs  int64  `json:"at_ns"` // unit: ns
}

// appendState records a job-lifecycle line on the log.
func (l *eventLog) appendState(id string, state State, errMsg string, atNs int64) {
	line, err := json.Marshal(stateEvent{Kind: "job_state", JobID: id, State: state, Error: errMsg, AtNs: atNs})
	if err != nil {
		return
	}
	l.append(append(line, '\n'))
}
