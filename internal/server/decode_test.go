package server_test

import (
	"strings"
	"testing"

	"sllt/internal/server"
)

func TestDecodeJobRequest(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		wantErr string // substring; empty means accept
	}{
		{"minimal", `{"lef":"L","def":"D"}`, ""},
		{"full", `{"design":"x","net":"clk","lef":"L","def":"D","liberty":"lib",
			"options":{"engine":"commercial","skew_ps":60,"fanout":24,"max_cap_ff":120,"seed":7,"workers":4}}`, ""},
		{"missing lef", `{"def":"D"}`, `"lef"`},
		{"missing def", `{"lef":"L"}`, `"def"`},
		{"unknown field", `{"lef":"L","def":"D","lefdef":"typo"}`, "unknown field"},
		{"unknown option", `{"lef":"L","def":"D","options":{"skew":80}}`, "unknown field"},
		{"bad engine", `{"lef":"L","def":"D","options":{"engine":"magic"}}`, "unknown engine"},
		{"negative skew", `{"lef":"L","def":"D","options":{"skew_ps":-1}}`, "skew_ps"},
		{"negative fanout", `{"lef":"L","def":"D","options":{"fanout":-2}}`, "fanout"},
		{"negative cap", `{"lef":"L","def":"D","options":{"max_cap_ff":-0.5}}`, "max_cap_ff"},
		{"workers over cap", `{"lef":"L","def":"D","options":{"workers":5000}}`, "workers"},
		{"negative workers", `{"lef":"L","def":"D","options":{"workers":-1}}`, "workers"},
		{"trailing data", `{"lef":"L","def":"D"}{"again":true}`, "trailing data"},
		{"not json", `DESIGN top ;`, "job request"},
		{"empty", ``, "job request"},
		{"wrong type", `{"lef":"L","def":"D","options":{"fanout":"many"}}`, "job request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := server.DecodeJobRequest([]byte(tc.in))
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("DecodeJobRequest: %v", err)
				}
				if req.LEF == "" || req.DEF == "" {
					t.Fatalf("accepted request lost required fields: %+v", req)
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted %q, want error containing %q", tc.in, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
