package server

import (
	"context"
	"sync"
)

// State is a job's lifecycle phase. Transitions are strictly forward:
// queued -> running -> one of {done, failed, cancelled}; a queued job
// cancelled before a runner claims it skips running.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// terminal reports whether s is an end state.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Job is one synthesis request moving through the server. The immutable
// identity fields are set at submission; everything behind mu is written by
// the runner goroutine and read by status handlers.
type Job struct {
	id     string
	req    *JobRequest
	ctx    context.Context    // child of the server context; DELETE cancels it
	cancel context.CancelFunc
	events *eventLog
	done   chan struct{} // closed exactly once, at the terminal transition

	mu          sync.Mutex
	state       State
	errMsg      string
	submittedNs int64 // unit: ns
	startedNs   int64 // unit: ns
	doneNs      int64 // unit: ns
	workers     int   // budget granted by the runner, 0 until running
	def         []byte
	fingerprint string
	report      []byte
	levels      int
	clusters    []int
}

// JobStatus is the GET /jobs/{id} body. Result payloads (DEF, report)
// stay behind their own endpoints; status is always small.
type JobStatus struct {
	JobID       string `json:"job_id"`
	State       State  `json:"state"`
	Error       string `json:"error,omitempty"`
	SubmittedNs int64  `json:"submitted_ns"`          // unit: ns
	StartedNs   int64  `json:"started_ns,omitempty"`  // unit: ns
	DoneNs      int64  `json:"done_ns,omitempty"`     // unit: ns
	Workers     int    `json:"workers,omitempty"`
	Levels      int    `json:"levels,omitempty"`
	Clusters    []int  `json:"clusters,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
}

// status snapshots the job for the API.
func (j *Job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		JobID:       j.id,
		State:       j.state,
		Error:       j.errMsg,
		SubmittedNs: j.submittedNs,
		StartedNs:   j.startedNs,
		DoneNs:      j.doneNs,
		Workers:     j.workers,
		Levels:      j.levels,
		Clusters:    j.clusters,
		Fingerprint: j.fingerprint,
	}
}

// setRunning marks the claim by a runner and records the worker budget.
func (j *Job) setRunning(atNs int64, workers int) {
	j.mu.Lock()
	j.state = StateRunning
	j.startedNs = atNs
	j.workers = workers
	j.mu.Unlock()
	j.events.appendState(j.id, StateRunning, "", atNs)
}

// finish performs the single terminal transition: record the outcome,
// emit the job_state line, complete the event stream and release waiters.
// It reports whether this call performed the transition — the runner and
// the close-drain path never both own a job, but the guard keeps a stray
// second call from double-releasing the server's pending count.
func (j *Job) finish(state State, errMsg string, atNs int64) bool {
	j.mu.Lock()
	if j.state.terminal() {
		j.mu.Unlock()
		return false
	}
	j.state = state
	j.errMsg = errMsg
	j.doneNs = atNs
	j.mu.Unlock()
	j.events.appendState(j.id, state, errMsg, atNs)
	j.events.close()
	close(j.done)
	j.cancel() // release the context subtree; no-op if DELETE got there first
	return true
}

// setResult stores a successful flow's artifacts; called before finish.
func (j *Job) setResult(res *FlowResult) {
	j.mu.Lock()
	j.def = res.DEF
	j.fingerprint = res.Fingerprint
	j.report = res.Report
	j.levels = res.Levels
	j.clusters = res.Clusters
	j.mu.Unlock()
}

// artifacts returns the DEF and report bytes if the job completed.
func (j *Job) artifacts() (def, report []byte, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil, nil, false
	}
	return j.def, j.report, true
}
