// Package analysis is a self-contained static-analysis framework modeled on
// golang.org/x/tools/go/analysis, built only on the standard library so the
// repository stays dependency-free. It loads packages through the go tool
// (`go list -export`), typechecks them from source against compiler export
// data, and runs Analyzers over the typed syntax trees.
//
// The framework exists to machine-check the two properties every result in
// this repository depends on: determinism (bit-identical trees for a given
// seed) and structural validity. The concrete rules live in the analyzer
// subpackages (maporder, floatcmp, seededrand, wallclock) and are driven by
// cmd/slltlint.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// An Analyzer describes one static-analysis rule.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	// It must be a valid Go identifier.
	Name string

	// Doc is a one-paragraph description of what the analyzer checks.
	Doc string

	// URL points at the analyzer's long-form documentation (conventionally
	// a DESIGN.md anchor). SARIF output emits it as the rule's helpUri so
	// code-scanning UIs can link each finding to its contract.
	URL string

	// Prepare, if non-nil, runs once per Run invocation over the whole
	// batch of loaded packages before any per-package pass. Analyzers that
	// need cross-package knowledge (unitflow's annotation registry) build
	// it here; the hook sees every target package of the run, so facts
	// declared in one package are visible while checking another.
	Prepare func(pkgs []*Package) error

	// Run applies the rule to one package, reporting findings through
	// pass.Reportf. A non-nil error aborts the whole lint run (reserved
	// for internal failures, not findings).
	Run func(*Pass) error
}

// A Pass provides one analyzer with one typechecked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// GoVersion is the module language version ("go1.22"), empty when the
	// go tool did not report one.
	GoVersion string

	diags *[]Diagnostic
}

// A TextEdit replaces the source range [Pos, End) with NewText.
type TextEdit struct {
	Pos, End token.Pos
	NewText  string
}

// A SuggestedFix is one way to resolve a diagnostic, expressed as a set of
// non-overlapping source edits. cmd/slltlint -fix renders fixes as dry-run
// diffs; nothing in the framework rewrites files.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// A Diagnostic is a single finding.
type Diagnostic struct {
	Pos      token.Pos
	Position token.Position // resolved from Pos at report time
	Analyzer string
	Message  string
	Fixes    []SuggestedFix
}

// String formats the diagnostic in the conventional path:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Position, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportFix records a finding at pos carrying one suggested fix.
func (p *Pass) ReportFix(pos token.Pos, fix SuggestedFix, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Fixes:    []SuggestedFix{fix},
	})
}

// FileVersion returns the effective language version of the file containing
// pos: the module version from go.mod, possibly lowered by the file's
// //go:build goN.M constraint (the typechecker records the per-file result
// in TypesInfo.FileVersions). Empty when unknown.
func (p *Pass) FileVersion(pos token.Pos) string {
	tf := p.Fset.File(pos)
	if tf == nil {
		return p.GoVersion
	}
	for _, f := range p.Files {
		if p.Fset.File(f.Pos()) == tf {
			if v, ok := p.TypesInfo.FileVersions[f]; ok && v != "" {
				return v
			}
			return p.GoVersion
		}
	}
	return p.GoVersion
}

// VersionAtLeast reports whether language version v ("go1.22") is at least
// go<major>.<minor>. Unknown or malformed versions report false, so callers
// default to the conservative pre-1.22 semantics.
func VersionAtLeast(v string, major, minor int) bool {
	v = strings.TrimPrefix(v, "go")
	parts := strings.SplitN(v, ".", 3)
	if len(parts) < 2 {
		return false
	}
	maj, err1 := strconv.Atoi(parts[0])
	min, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		return false
	}
	return maj > major || (maj == major && min >= minor)
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.TypesInfo.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := p.TypesInfo.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// PkgBase returns the last segment of the package's import path, the name
// analyzers scope their rules by (e.g. "dme", "partition").
func (p *Pass) PkgBase() string {
	path := p.Pkg.Path()
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// ImportedPkgOf resolves a selector expression's qualifier: if sel.X is an
// identifier naming an imported package, the package's import path is
// returned, otherwise "".
func (p *Pass) ImportedPkgOf(sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := p.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// Preorder walks every node of every file in the pass in depth-first order,
// skipping generated files (SkipFile): machine-written code is exempt from
// the style-level rules, and routing the check through here keeps every
// Preorder-based analyzer consistent about it.
func (p *Pass) Preorder(fn func(ast.Node)) {
	for _, f := range p.Files {
		if SkipFile(p.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if n != nil {
				fn(n)
			}
			return true
		})
	}
}

// IsFloat reports whether t's underlying type is a floating-point basic type.
func IsFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// IsMap reports whether t's underlying type is a map.
func IsMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}
