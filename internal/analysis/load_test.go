package analysis

import (
	"strings"
	"testing"
)

// The loader must typecheck a real module package — including its
// in-module and standard-library imports — purely from export data.
func TestLoadTypechecksModulePackage(t *testing.T) {
	pkgs, err := Load(".", "../geom", "../tree")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			t.Errorf("%s: unexpected type errors: %v", pkg.ImportPath, pkg.TypeErrors)
		}
		if len(pkg.Files) == 0 {
			t.Errorf("%s: no files", pkg.ImportPath)
		}
		if len(pkg.TypesInfo.Types) == 0 {
			t.Errorf("%s: no expression types recorded", pkg.ImportPath)
		}
	}
	// tree imports geom; the import must resolve to a complete package.
	var treePkg *Package
	for _, pkg := range pkgs {
		if pkg.ImportPath == "sllt/internal/tree" {
			treePkg = pkg
		}
	}
	if treePkg == nil {
		t.Fatal("sllt/internal/tree not loaded")
	}
	for _, imp := range treePkg.Types.Imports() {
		if imp.Path() == "sllt/internal/geom" && !imp.Complete() {
			t.Error("geom import not complete")
		}
	}
}

// A pattern naming a directory that does not exist must be a load error
// (exit 2 territory for cmd/slltlint), not an empty success.
func TestLoadNonexistentPackage(t *testing.T) {
	_, err := Load(".", "./testdata/src/does-not-exist")
	if err == nil {
		t.Fatal("Load of a nonexistent package succeeded")
	}
	if !strings.Contains(err.Error(), "analysis:") {
		t.Errorf("error %q does not carry the analysis: prefix", err)
	}
}

// A file that passes go list's shallow scan but fails the full parse must
// surface as a load error naming the file.
func TestLoadSyntaxError(t *testing.T) {
	_, err := Load(".", "./testdata/src/broken")
	if err == nil {
		t.Fatal("Load of a syntactically broken package succeeded")
	}
	if !strings.Contains(err.Error(), "broken.go") {
		t.Errorf("error %q does not name the broken file", err)
	}
}

// An import of a module that is neither required nor vendored must be a
// load error (go list -e reports it on the dependency entry).
func TestLoadUnresolvableImport(t *testing.T) {
	_, err := Load(".", "./testdata/src/badimport")
	if err == nil {
		t.Fatal("Load of a package with an unresolvable import succeeded")
	}
	if !strings.Contains(err.Error(), "vendored.example/missing/dep") {
		t.Errorf("error %q does not name the unresolvable import", err)
	}
}

// A package that parses but fails typechecking is rejected at list time:
// `go list -export` compiles targets to produce export data, so the compile
// failure arrives as a package error before our own typechecker runs. The
// error must name the offending file.
func TestLoadTypeErrors(t *testing.T) {
	_, err := Load(".", "./testdata/src/typeerr")
	if err == nil {
		t.Fatal("Load of a package that does not typecheck succeeded")
	}
	if !strings.Contains(err.Error(), "typeerr.go") {
		t.Errorf("error %q does not name the file with type errors", err)
	}
}

// Diagnostics suppressed by //slltlint:ignore directives must not survive
// Run; unsuppressed ones must.
func TestIgnoreDirectives(t *testing.T) {
	pkgs, err := Load(".", "../geom")
	if err != nil {
		t.Fatal(err)
	}
	az := &Analyzer{
		Name: "filedecl",
		Doc:  "reports every file's package clause (test analyzer)",
		Run: func(p *Pass) error {
			for _, f := range p.Files {
				p.Reportf(f.Package, "package clause")
			}
			return nil
		},
	}
	diags, err := Run(pkgs, []*Analyzer{az})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != len(pkgs[0].Files) {
		t.Fatalf("got %d diagnostics, want one per file (%d)", len(diags), len(pkgs[0].Files))
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1].Position, diags[i].Position
		if b.Filename < a.Filename {
			t.Error("diagnostics not sorted by file")
		}
	}
}
