package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// IgnorePrefix is the legacy comment directive that suppresses diagnostics:
//
//	//slltlint:ignore maporder iteration feeds a commutative sum
//
// placed on the flagged line or the line directly above it. The analyzer
// name list may contain several comma-separated names.
const IgnorePrefix = "slltlint:ignore"

// LintIgnorePrefix is the conventional suppression directive shared with
// other Go linters:
//
//	//lint:ignore unitflow DBU-to-µm conversion site, checked by hand
//
// Same placement and name-list rules as IgnorePrefix; the reason text after
// the names is required so every suppression is justified in place.
const LintIgnorePrefix = "lint:ignore"

// Run applies every analyzer to every package and returns the surviving
// diagnostics sorted by position. Ignore directives are honored here so all
// analyzers share one suppression mechanism.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	for _, az := range analyzers {
		if az.Prepare != nil {
			if err := az.Prepare(pkgs); err != nil {
				return nil, fmt.Errorf("analysis: %s prepare: %v", az.Name, err)
			}
		}
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ign := ignoresOf(pkg)
		for _, az := range analyzers {
			var found []Diagnostic
			pass := &Pass{
				Analyzer:  az,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				GoVersion: pkg.GoVersion,
				diags:     &found,
			}
			if err := az.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %v", az.Name, pkg.ImportPath, err)
			}
			for _, d := range found {
				if !ign.match(d.Position.Filename, d.Position.Line, d.Analyzer) {
					diags = append(diags, d)
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// ignoreSet maps file -> line -> analyzer names suppressed there.
type ignoreSet map[string]map[int][]string

func (s ignoreSet) match(file string, line int, analyzer string) bool {
	byLine, ok := s[file]
	if !ok {
		return false
	}
	// A directive applies to its own line (trailing comment) and to the
	// line below it (comment-above style).
	for _, l := range []int{line, line - 1} {
		for _, name := range byLine[l] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

// ignoresOf scans a package's comments for ignore directives, accepting
// both the legacy //slltlint:ignore form and the conventional //lint:ignore.
func ignoresOf(pkg *Package) ignoreSet {
	set := make(ignoreSet)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				var rest string
				switch {
				case strings.HasPrefix(text, IgnorePrefix):
					rest = strings.TrimPrefix(text, IgnorePrefix)
				case strings.HasPrefix(text, LintIgnorePrefix):
					rest = strings.TrimPrefix(text, LintIgnorePrefix)
				default:
					continue
				}
				names := strings.Fields(strings.TrimSpace(rest))
				if len(names) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				byLine := set[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]string)
					set[pos.Filename] = byLine
				}
				for _, name := range strings.Split(names[0], ",") {
					if name != "" {
						byLine[pos.Line] = append(byLine[pos.Line], name)
					}
				}
			}
		}
	}
	return set
}
