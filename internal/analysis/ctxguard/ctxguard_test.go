package ctxguard_test

import (
	"testing"

	"sllt/internal/analysis"
	"sllt/internal/analysis/ctxguard"
)

func TestBad(t *testing.T) {
	analysis.RunTest(t, ctxguard.Analyzer, "testdata/src/ctxbad")
}

func TestGood(t *testing.T) {
	analysis.RunTest(t, ctxguard.Analyzer, "testdata/src/ctxgood")
}
