// Package ctxgood is the negative fixture: correct context threading,
// cancellable loops, and escaped sends produce no findings.
package ctxgood

import "context"

func lookup(ctx context.Context, key string) string { return key }

func Handle(ctx context.Context, key string) string {
	return lookup(ctx, key)
}

// Root has no context parameter, so starting a fresh one is legitimate.
func Root(key string) string {
	return lookup(context.Background(), key)
}

func Pump(ctx context.Context, ch chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case ch <- 1:
		}
	}
}

func Counted(ctx context.Context, ch chan int, n int) {
	for i := 0; i < n; i++ { // bounded loop: terminates on its own
		ch <- i
	}
}

func Buffered(n int) int {
	ch := make(chan int, 1)
	go func() { ch <- n }() // buffered: the send cannot block
	return <-ch
}

func SafeSend(ctx context.Context, n int) int {
	ch := make(chan int)
	go func() {
		select {
		case ch <- n:
		case <-ctx.Done():
		}
	}()
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

func DefaultSend(n int) int {
	ch := make(chan int)
	go func() {
		select {
		case ch <- n:
		default:
		}
	}()
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}
