// Package ctxbad is the positive fixture: every function breaks one
// ctxguard rule.
package ctxbad

import (
	"context"

	"sllt/internal/parallel"
)

func lookup(ctx context.Context, key string) string { return key }

func Handle(ctx context.Context, key string) string {
	return lookup(context.Background(), key) // want "thread it instead of context.Background"
}

func Todo(ctx context.Context, key string) string {
	return lookup(context.TODO(), key) // want "thread it instead of context.TODO"
}

func Unnamed(_ context.Context, key string) string {
	return lookup(context.Background(), key) // want "name the parameter and thread it"
}

func Pump(ctx context.Context, ch chan int) {
	for { // want "never checks ctx.Done()"
		ch <- 1
	}
}

func Serve(ctx context.Context, batches [][]float64) {
	for { // want "never checks ctx.Done()"
		_ = parallel.ForEach(1, len(batches), func(i int) error { return nil })
	}
}

func Leak(n int) []int {
	ch := make(chan int)
	go func() {
		ch <- compute(n) // want "blocks forever"
	}()
	if n < 0 {
		return nil // receiver bails out: the goroutine above leaks
	}
	return []int{<-ch}
}

func compute(n int) int { return n * n }
