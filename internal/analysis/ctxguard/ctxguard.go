// Package ctxguard enforces the context discipline a long-lived CTS server
// needs before flow runs can be cancelled. Three rules:
//
//  1. A function that already receives a context.Context must thread it:
//     calling context.Background() or context.TODO() inside such a function
//     severs the cancellation chain. The finding carries a mechanical
//     suggested fix replacing the call with the context parameter.
//
//  2. An infinite loop (for {}) in a context-carrying function that drives
//     channel work or parallel.ForEach/ForEachSpan fan-out must observe the
//     context somewhere in its body (ctx.Done(), ctx.Err(), or passing ctx
//     on); otherwise the daemon cannot cancel it.
//
//  3. A goroutine whose body sends on a channel made unbuffered in the same
//     function must have an escape: the send inside a select with a default
//     or a Done() case. Without one, the goroutine blocks forever when the
//     receiver bails out early — the classic leak under request timeouts.
//
// Order-safe exceptions carry //slltlint:ignore ctxguard <reason>.
package ctxguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"sllt/internal/analysis"
)

// parallelPath is the fan-out package whose drivers rule 2 recognizes.
const parallelPath = "sllt/internal/parallel"

// Analyzer is the ctxguard rule set.
var Analyzer = &analysis.Analyzer{
	Name: "ctxguard",
	Doc:  "daemon-readiness context discipline: thread context.Context into callees instead of calling context.Background/TODO, make infinite channel or fan-out loops cancellable, and give unbuffered sends in goroutines an escape",
	URL:  "DESIGN.md#purity--cancellation-contracts",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if analysis.SkipFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name, obj := ctxParam(pass, fd)
			if obj != nil {
				checkBackgroundCalls(pass, fd.Body, name)
				checkInfiniteLoops(pass, fd.Body, obj, name)
			}
			checkUnbufferedSends(pass, fd)
		}
	}
	return nil
}

// ctxParam returns the name and object of the function's first
// context.Context parameter, or ("", nil).
func ctxParam(pass *analysis.Pass, fd *ast.FuncDecl) (string, types.Object) {
	if fd.Type.Params == nil {
		return "", nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj != nil && isCtxType(obj.Type()) {
				return name.Name, obj
			}
		}
	}
	return "", nil
}

func isCtxType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkBackgroundCalls flags context.Background()/context.TODO() inside a
// function that already has a context parameter (rule 1).
func checkBackgroundCalls(pass *analysis.Pass, body *ast.BlockStmt, ctxName string) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || pass.ImportedPkgOf(sel) != "context" {
			return true
		}
		fname := sel.Sel.Name
		if fname != "Background" && fname != "TODO" {
			return true
		}
		if ctxName == "" || ctxName == "_" {
			pass.Reportf(call.Pos(),
				"context.%s() inside a function that receives a context.Context; name the parameter and thread it through",
				fname)
			return true
		}
		pass.ReportFix(call.Pos(), analysis.SuggestedFix{
			Message: "thread the " + ctxName + " parameter",
			Edits:   []analysis.TextEdit{{Pos: call.Pos(), End: call.End(), NewText: ctxName}},
		}, "context.%s() severs the cancellation chain; thread it instead of context.%s (function already has context parameter %q)",
			fname, fname, ctxName)
		return true
	})
}

// checkInfiniteLoops flags for-loops without a condition that drive channel
// work or parallel fan-out but never observe the context (rule 2).
func checkInfiniteLoops(pass *analysis.Pass, body *ast.BlockStmt, ctxObj types.Object, ctxName string) {
	ast.Inspect(body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		hazard := false
		usesCtx := false
		ast.Inspect(loop.Body, func(m ast.Node) bool {
			switch x := m.(type) {
			case *ast.SendStmt:
				hazard = true
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					hazard = true
				}
			case *ast.CallExpr:
				if isParallelDriver(pass, x) {
					hazard = true
				}
			case *ast.Ident:
				if pass.TypesInfo.Uses[x] == ctxObj {
					usesCtx = true
				}
			}
			return true
		})
		if hazard && !usesCtx {
			pass.Reportf(loop.Pos(),
				"infinite loop drives channel or fan-out work but never checks %s.Done(); a server cannot cancel it",
				ctxName)
		}
		return true
	})
}

// isParallelDriver reports whether the call is parallel.ForEach or
// parallel.ForEachSpan.
func isParallelDriver(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || pass.ImportedPkgOf(sel) != parallelPath {
		return false
	}
	return sel.Sel.Name == "ForEach" || sel.Sel.Name == "ForEachSpan"
}

// checkUnbufferedSends flags goroutine sends on channels made unbuffered in
// the same function when the send has no escape (rule 3).
func checkUnbufferedSends(pass *analysis.Pass, fd *ast.FuncDecl) {
	unbuf := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				if i < len(s.Lhs) && isUnbufferedMake(pass, rhs) {
					if id, ok := s.Lhs[i].(*ast.Ident); ok {
						if obj := pass.TypesInfo.Defs[id]; obj != nil {
							unbuf[obj] = true
						} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
							unbuf[obj] = true
						}
					}
				}
			}
		case *ast.ValueSpec:
			for i, rhs := range s.Values {
				if i < len(s.Names) && isUnbufferedMake(pass, rhs) {
					if obj := pass.TypesInfo.Defs[s.Names[i]]; obj != nil {
						unbuf[obj] = true
					}
				}
			}
		}
		return true
	})
	if len(unbuf) == 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := g.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		safe := safeSelectRanges(pass, lit.Body)
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			send, ok := m.(*ast.SendStmt)
			if !ok {
				return true
			}
			id, ok := send.Chan.(*ast.Ident)
			if !ok || !unbuf[pass.TypesInfo.Uses[id]] {
				return true
			}
			for _, r := range safe {
				if send.Pos() >= r[0] && send.End() <= r[1] {
					return true
				}
			}
			pass.Reportf(send.Pos(),
				"goroutine sends on unbuffered channel %q with no select default or Done() escape; if the receiver returns early this goroutine blocks forever",
				id.Name)
			return true
		})
		return true
	})
}

// isUnbufferedMake matches make(chan T) and make(chan T, 0).
func isUnbufferedMake(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	if t := pass.TypeOf(call.Args[0]); t == nil || !isChanType(t) {
		return false
	}
	if len(call.Args) == 1 {
		return true
	}
	if lit, ok := call.Args[1].(*ast.BasicLit); ok && lit.Kind == token.INT {
		if v, err := strconv.ParseInt(lit.Value, 0, 64); err == nil {
			return v == 0
		}
	}
	return false
}

func isChanType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// safeSelectRanges returns the source ranges of select statements that have
// an escape: a default clause or a case receiving from a Done() channel.
func safeSelectRanges(pass *analysis.Pass, body *ast.BlockStmt) [][2]token.Pos {
	var out [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, clause := range sel.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			if cc.Comm == nil || hasDoneCall(cc.Comm) {
				out = append(out, [2]token.Pos{sel.Pos(), sel.End()})
				break
			}
		}
		return true
	})
	return out
}

// hasDoneCall reports whether the comm statement involves a .Done() call
// (the conventional cancellation case).
func hasDoneCall(stmt ast.Stmt) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				found = true
			}
		}
		return !found
	})
	return found
}
