// Package seeded is the negative seededrand fixture: the compliant
// seed-flow convention.
package seeded

import "math/rand"

// Clean: RNG constructed from an explicit seed parameter.
func Pick(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}

// Clean: methods on an injected *rand.Rand.
func Shuffle(rng *rand.Rand, xs []int) {
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
