// Package jitter is the positive seededrand fixture (it sits under
// internal/, so the library-code rule applies).
package jitter

import (
	"math/rand"
	"time"
)

// Flagged: global source draws.
func PickBad(n int) int {
	return rand.Intn(n) // want "global math/rand state"
}

// Flagged: wall-clock seeding.
func NewRNGBad() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "seeded from the wall clock"
}

// Flagged: both hazards on one line — global Shuffle.
func ShuffleBad(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global math/rand state"
}
