package seededrand_test

import (
	"testing"

	"sllt/internal/analysis"
	"sllt/internal/analysis/seededrand"
)

func TestSeededRand(t *testing.T) {
	analysis.RunTest(t, seededrand.Analyzer,
		"testdata/src/jitter", // positive: global rand + wall-clock seed
		"testdata/src/seeded", // negative: explicit seed flow
	)
}
