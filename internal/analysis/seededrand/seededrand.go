// Package seededrand enforces the repository's seed-flow convention in
// library code (everything under internal/): all randomness must come from
// an explicit *rand.Rand constructed from a seed parameter. Two patterns
// are flagged:
//
//  1. calls to math/rand (or math/rand/v2) package-level functions, which
//     draw from the global, possibly randomly-seeded source;
//  2. seeding a source from the wall clock, i.e. time.Now anywhere inside
//     the arguments of rand.NewSource / rand.New / rand.NewPCG.
//
// Either one makes a run irreproducible, which invalidates every seeded
// comparison in the paper's tables.
package seededrand

import (
	"go/ast"

	"sllt/internal/analysis"
)

// Analyzer is the seededrand rule.
var Analyzer = &analysis.Analyzer{
	Name: "seededrand",
	Doc:  "forbids global math/rand state and wall-clock seeding in library code; randomness must flow from an explicit seed parameter",
	URL:  "DESIGN.md#determinism--invariants",
	Run:  run,
}

// globalFns are the math/rand and math/rand/v2 package-level functions that
// consume the shared global source.
var globalFns = map[string]bool{
	"Int": true, "Intn": true, "IntN": true,
	"Int31": true, "Int31n": true, "Int32": true, "Int32N": true,
	"Int63": true, "Int63n": true, "Int64": true, "Int64N": true,
	"Uint32": true, "Uint32N": true, "Uint64": true, "Uint64N": true,
	"Uint": true, "UintN": true,
	"Float32": true, "Float64": true,
	"NormFloat64": true, "ExpFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true, "N": true,
}

// sourceCtors are the constructors whose arguments must not involve the
// wall clock.
var sourceCtors = map[string]bool{
	"NewSource": true, "New": true, "NewPCG": true,
}

func isRandPath(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

// inLibrary reports whether the package is library code: anything under an
// internal/ directory. Commands and examples may seed however they like.
func inLibrary(path string) bool {
	for i := 0; i+len("internal") <= len(path); i++ {
		if path[i:i+len("internal")] == "internal" &&
			(i == 0 || path[i-1] == '/') &&
			(i+len("internal") == len(path) || path[i+len("internal")] == '/') {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !inLibrary(pass.Pkg.Path()) {
		return nil
	}
	pass.Preorder(func(n ast.Node) {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || !isRandPath(pass.ImportedPkgOf(sel)) {
			return
		}
		if globalFns[sel.Sel.Name] {
			pass.Reportf(sel.Pos(),
				"use of global math/rand state (rand.%s) in library code: thread a *rand.Rand built from an explicit seed parameter",
				sel.Sel.Name)
		}
	})
	// Wall-clock seeding: time.Now anywhere inside the arguments of a
	// rand source constructor.
	pass.Preorder(func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		fn, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !isRandPath(pass.ImportedPkgOf(fn)) || !sourceCtors[fn.Sel.Name] {
			return
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				// A nested source constructor (rand.New(rand.NewSource(...)))
				// is reported on its own; don't double-report through it.
				if inner, ok := m.(*ast.CallExpr); ok {
					if f, ok := inner.Fun.(*ast.SelectorExpr); ok &&
						isRandPath(pass.ImportedPkgOf(f)) && sourceCtors[f.Sel.Name] {
						return false
					}
				}
				s, ok := m.(*ast.SelectorExpr)
				if ok && s.Sel.Name == "Now" && pass.ImportedPkgOf(s) == "time" {
					pass.Reportf(s.Pos(),
						"RNG seeded from the wall clock (rand.%s(time.Now()...)): seeds must be explicit parameters so runs are reproducible",
						fn.Sel.Name)
				}
				return true
			})
		}
	})
	return nil
}
