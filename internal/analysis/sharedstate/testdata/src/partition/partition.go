//go:build go1.21

// Fixture: the goroutine shapes sharedstate must flag inside an algorithm
// package, plus the index-partitioned shapes it must accept. The go1.21
// build constraint lowers this file's language version below the module's
// go1.22, pinning the shared per-loop variable semantics where capturing a
// loop variable is a schedule hazard; the cts fixture covers the >= 1.22
// per-iteration semantics.
package partition

import "sync"

type stats struct{ total int }

// fanOutBad is the canonical anti-pattern: raw goroutines capturing the
// loop variables and racing on an accumulator.
func fanOutBad(items []int) int {
	sum := 0
	done := make(chan struct{}, len(items))
	for i, v := range items {
		go func() {
			_ = i    // want "captures loop variable \"i\""
			sum += v // want "captures loop variable \"v\"" "writes captured variable \"sum\""
			done <- struct{}{}
		}()
	}
	for range items {
		<-done
	}
	return sum
}

// forLoopVar covers the three-clause for loop's `:=` variables.
func forLoopVar(out []int) {
	var wg sync.WaitGroup
	for j := 0; j < len(out); j++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			k := j // want "captures loop variable \"j\""
			_ = k
		}()
	}
	wg.Wait()
}

// sharedSlots: writes into a captured slice must be partitioned by a
// goroutine-local index; a captured or constant index is a shared slot.
func sharedSlots(out []int, s *stats) {
	idx := 0
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		out[idx] = 1 // want "writes captured \"out\" without a goroutine-local index"
	}()
	go func() {
		defer wg.Done()
		out[0] = 2 // want "writes captured \"out\" without a goroutine-local index"
	}()
	go func() {
		defer wg.Done()
		s.total = 3 // want "writes field total of captured \"s\""
	}()
	wg.Wait()
}

// pointerWrite: mutation through a captured pointer is shared state too.
func pointerWrite(p *int) {
	ch := make(chan struct{})
	go func() {
		*p = 7 // want "writes through captured pointer \"p\""
		close(ch)
	}()
	<-ch
}

// partitionedOK is the compliant shape: every goroutine derives its own
// index from its argument and writes only its own slot — what
// internal/parallel.ForEach tasks do. Nothing here may be flagged.
func partitionedOK(items []int) []int {
	out := make([]int, len(items))
	var wg sync.WaitGroup
	wg.Add(len(items))
	for i := range items {
		go func(i int) {
			defer wg.Done()
			local := i * 2
			out[i] = local
			out[i+0] = local
		}(i)
	}
	wg.Wait()
	return out
}
