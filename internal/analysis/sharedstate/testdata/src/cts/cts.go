// Fixture: Go >= 1.22 per-iteration loop variable semantics. This file has
// no version-lowering build constraint, so it checks at the module's go1.22:
// capturing a loop variable is safe (each iteration declares a fresh one)
// and a captured loop variable is a valid partitioning index — but racing
// writes to genuinely shared state must still be flagged.
package cts

import "sync"

// fanOut captures both loop variables; under per-iteration semantics only
// the racing accumulator write is a hazard.
func fanOut(items []int) int {
	sum := 0
	done := make(chan struct{}, len(items))
	for i, v := range items {
		go func() {
			_ = i
			sum += v // want "writes captured variable \"sum\""
			done <- struct{}{}
		}()
	}
	for range items {
		<-done
	}
	return sum
}

// partitionedByLoopVar writes out[i] with the captured per-iteration i:
// every goroutine owns a distinct i, so the slots are disjoint and nothing
// may be flagged.
func partitionedByLoopVar(items []int) []int {
	out := make([]int, len(items))
	var wg sync.WaitGroup
	wg.Add(len(items))
	for i := range items {
		go func() {
			defer wg.Done()
			out[i] = i * 2
		}()
	}
	wg.Wait()
	return out
}

// sharedIndex still collapses the partition: idx is a plain captured
// variable, not a loop variable, so every goroutine hits the same slot.
func sharedIndex(out []int) {
	idx := 0
	var wg sync.WaitGroup
	wg.Add(2)
	for j := 0; j < 2; j++ {
		go func() {
			defer wg.Done()
			out[idx] = j // want "writes captured \"out\" without a goroutine-local index"
		}()
	}
	wg.Wait()
}

// staleLoopVar spawns the goroutine after the loop has finished: the last
// iteration's variable is an ordinary captured variable by then, so writing
// through it is a shared slot even under per-iteration semantics.
func staleLoopVar(out []int) {
	last := 0
	for j := range out {
		last = j
	}
	_ = last
	var k int
	for k = range out {
		_ = k
	}
	done := make(chan struct{})
	go func() {
		out[k] = 1 // want "writes captured \"out\" without a goroutine-local index"
		close(done)
	}()
	<-done
}
