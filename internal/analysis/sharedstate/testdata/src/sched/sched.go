// Fixture: an out-of-scope package. The same hazards as the positive
// fixture, but "sched" is not an algorithm package, so sharedstate must
// stay silent — infrastructure code is allowed plain goroutines.
package sched

func fanOut(items []int) int {
	sum := 0
	done := make(chan struct{}, len(items))
	for _, v := range items {
		go func() {
			sum += v
			done <- struct{}{}
		}()
	}
	for range items {
		<-done
	}
	return sum
}
