package sharedstate_test

import (
	"testing"

	"sllt/internal/analysis"
	"sllt/internal/analysis/sharedstate"
)

func TestSharedState(t *testing.T) {
	analysis.RunTest(t, sharedstate.Analyzer,
		"testdata/src/partition", // positive: pre-1.22 shared loop variable semantics (//go:build go1.21)
		"testdata/src/cts",       // positive: go1.22 per-iteration semantics
		"testdata/src/sched",     // negative: out-of-scope package
	)
}
