package sharedstate_test

import (
	"testing"

	"sllt/internal/analysis"
	"sllt/internal/analysis/sharedstate"
)

func TestSharedState(t *testing.T) {
	analysis.RunTest(t, sharedstate.Analyzer,
		"testdata/src/partition", // positive: algorithm-package basename
		"testdata/src/sched",     // negative: out-of-scope package
	)
}
