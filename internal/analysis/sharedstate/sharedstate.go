// Package sharedstate flags raw `go func` closures in the algorithm
// packages whose bodies capture enclosing loop variables or write captured
// state without index-partitioned access. Both shapes make results depend
// on the goroutine schedule — exactly the nondeterminism internal/parallel
// exists to prevent: its ForEach hands every task its own index, so writes
// land in disjoint slice slots and reductions happen afterwards in index
// order. A raw goroutine in core/dme/cts/... is therefore either a schedule
// hazard or a ForEach rewrite waiting to happen; order-safe exceptions may
// carry an `//slltlint:ignore sharedstate <reason>` directive.
package sharedstate

import (
	"go/ast"
	"go/token"
	"go/types"

	"sllt/internal/analysis"
	"sllt/internal/analysis/maporder"
)

// Analyzer is the sharedstate rule. It scopes to the same packages as
// maporder: the ones whose outputs must be byte-reproducible per seed.
var Analyzer = &analysis.Analyzer{
	Name: "sharedstate",
	Doc:  "flags go-statement closures in algorithm packages that capture loop variables or write captured state without index-partitioned access (use internal/parallel.ForEach)",
	URL:  "DESIGN.md#parallel-execution",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !maporder.AlgorithmPackages[pass.PkgBase()] {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.SkipFile(pass.Fset, f) {
			continue
		}
		// loops maps each enclosing-loop variable object to its loop body,
		// so a closure can be tested for "spawned inside that loop".
		loops := map[types.Object]*ast.BlockStmt{}
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.RangeStmt:
				addLoopVar(pass, loops, s.Key, s.Body)
				addLoopVar(pass, loops, s.Value, s.Body)
			case *ast.ForStmt:
				if init, ok := s.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
					for _, lhs := range init.Lhs {
						addLoopVar(pass, loops, lhs, s.Body)
					}
				}
			case *ast.GoStmt:
				if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
					checkClosure(pass, lit, loops)
				}
			}
			return true
		})
	}
	return nil
}

func addLoopVar(pass *analysis.Pass, loops map[types.Object]*ast.BlockStmt, e ast.Expr, body *ast.BlockStmt) {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		loops[obj] = body
	}
}

// checkClosure reports the two schedule hazards inside one `go func` body:
// uses of enclosing loop variables, and writes to captured state that are
// not partitioned by a goroutine-local index.
func checkClosure(pass *analysis.Pass, lit *ast.FuncLit, loops map[types.Object]*ast.BlockStmt) {
	reported := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// A nested go closure gets its own checkClosure visit from the
			// file walk; re-checking it here would double-report.
			if _, ok := n.Call.Fun.(*ast.FuncLit); ok {
				for _, a := range n.Call.Args {
					ast.Inspect(a, func(m ast.Node) bool { return inspectLeaf(pass, lit, loops, reported, m) })
				}
				return false
			}
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true // := declares closure-locals, no captured write
			}
			for _, lhs := range n.Lhs {
				checkWrite(pass, lit, lhs, reported, loops)
			}
		case *ast.IncDecStmt:
			checkWrite(pass, lit, n.X, reported, loops)
		}
		return inspectLeaf(pass, lit, loops, reported, n)
	})
}

// inspectLeaf handles the per-ident loop-variable check and always allows
// descent; split out so the nested-go argument walk shares it.
func inspectLeaf(pass *analysis.Pass, lit *ast.FuncLit, loops map[types.Object]*ast.BlockStmt, reported map[types.Object]bool, n ast.Node) bool {
	id, ok := n.(*ast.Ident)
	if !ok {
		return true
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil || reported[obj] {
		return true
	}
	body, isLoopVar := loops[obj]
	if !isLoopVar || !within(lit, body) || !capturedBy(obj, lit) {
		return true
	}
	// Per-iteration loop variable semantics (Go >= 1.22, possibly lowered
	// per file by a //go:build constraint): every iteration declares a
	// fresh variable, so capturing it is no longer a schedule hazard.
	if analysis.VersionAtLeast(pass.FileVersion(id.Pos()), 1, 22) {
		return true
	}
	reported[obj] = true
	pass.Reportf(id.Pos(),
		"goroutine closure captures loop variable %q: results depend on the schedule; fan out with internal/parallel.ForEach instead",
		id.Name)
	return true
}

// checkWrite flags assignment targets that mutate state captured from the
// enclosing function. The one permitted shape is the index-partitioned
// write `captured[i] = ...` where i involves a variable local to the
// closure and nothing captured — the contract parallel.ForEach tasks obey.
func checkWrite(pass *analysis.Pass, lit *ast.FuncLit, lhs ast.Expr, reported map[types.Object]bool, loops map[types.Object]*ast.BlockStmt) {
	for {
		if p, ok := lhs.(*ast.ParenExpr); ok {
			lhs = p.X
			continue
		}
		break
	}
	switch e := lhs.(type) {
	case *ast.Ident:
		if obj := capturedVar(pass, e, lit); obj != nil && !reported[obj] {
			reported[obj] = true
			pass.Reportf(e.Pos(),
				"goroutine closure writes captured variable %q: racing writes are schedule-dependent; give each task its own slot via internal/parallel.ForEach",
				e.Name)
		}
	case *ast.IndexExpr:
		base := rootIdent(e.X)
		if base == nil {
			return
		}
		obj := capturedVar(pass, base, lit)
		if obj == nil {
			return
		}
		if indexPartitioned(pass, e.Index, lit, loops) {
			return
		}
		if !reported[obj] {
			reported[obj] = true
			pass.Reportf(e.Pos(),
				"goroutine closure writes captured %q without a goroutine-local index: tasks must write disjoint slots (internal/parallel.ForEach gives each task its index)",
				base.Name)
		}
	case *ast.SelectorExpr:
		if base := rootIdent(e.X); base != nil {
			if obj := capturedVar(pass, base, lit); obj != nil && !reported[obj] {
				reported[obj] = true
				pass.Reportf(e.Pos(),
					"goroutine closure writes field %s of captured %q: shared mutation is schedule-dependent; restructure as index-partitioned results",
					e.Sel.Name, base.Name)
			}
		}
	case *ast.StarExpr:
		if base := rootIdent(e.X); base != nil {
			if obj := capturedVar(pass, base, lit); obj != nil && !reported[obj] {
				reported[obj] = true
				pass.Reportf(e.Pos(),
					"goroutine closure writes through captured pointer %q: shared mutation is schedule-dependent; restructure as index-partitioned results",
					base.Name)
			}
		}
	}
}

// indexPartitioned reports whether an index expression partitions writes
// across goroutines: it must involve at least one goroutine-local variable
// (the task's own index) and no shared variable (which would collapse the
// partition). A variable declared inside the closure is local; so is a
// captured loop variable of the loop the goroutine is spawned in under the
// per-iteration semantics of Go >= 1.22, where each iteration's goroutine
// sees its own distinct copy.
func indexPartitioned(pass *analysis.Pass, idx ast.Expr, lit *ast.FuncLit, loops map[types.Object]*ast.BlockStmt) bool {
	local, shared := false, false
	ast.Inspect(idx, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		if !capturedBy(obj, lit) {
			local = true
			return true
		}
		if body, isLoopVar := loops[obj]; isLoopVar && within(lit, body) &&
			analysis.VersionAtLeast(pass.FileVersion(id.Pos()), 1, 22) {
			local = true
			return true
		}
		shared = true
		return true
	})
	return local && !shared
}

// rootIdent peels parens, selectors, stars and indexes down to the base
// identifier of an assignment target, or nil for anything more exotic.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// capturedVar resolves id to a variable declared outside lit, or nil.
func capturedVar(pass *analysis.Pass, id *ast.Ident, lit *ast.FuncLit) types.Object {
	obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || !capturedBy(obj, lit) {
		return nil
	}
	return obj
}

// capturedBy reports whether obj is declared outside lit (and therefore
// shared with the spawning function and every sibling goroutine). Closure
// parameters and locals have positions inside the literal.
func capturedBy(obj types.Object, lit *ast.FuncLit) bool {
	return obj.Pos() < lit.Pos() || obj.Pos() >= lit.End()
}

// within reports whether lit lies inside the given loop body.
func within(lit *ast.FuncLit, body *ast.BlockStmt) bool {
	return lit.Pos() >= body.Pos() && lit.End() <= body.End()
}
