package registry

import (
	"path/filepath"
	"sort"
	"testing"

	"sllt/internal/analysis"
)

// TestRosterSuppressionContract loads a fixture package that violates every
// registered analyzer in three parallel files — live.go (bare violations),
// ignored.go (the same violations under both //slltlint:ignore and
// //lint:ignore), gen.go (the same violations behind a Code generated
// marker) — and asserts the whole roster agrees on the suppression
// contract: every analyzer fires on live.go, and nothing at all survives
// from the other two files.
func TestRosterSuppressionContract(t *testing.T) {
	pkgs, err := analysis.Load(".", "./testdata/src/dme")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	fired := map[string]bool{}
	for _, d := range diags {
		fired[d.Analyzer] = true
		if base := filepath.Base(d.Position.Filename); base != "live.go" {
			t.Errorf("%s finding escaped suppression in %s:%d: %s",
				d.Analyzer, base, d.Position.Line, d.Message)
		}
	}
	var silent []string
	for _, az := range All() {
		if !fired[az.Name] {
			silent = append(silent, az.Name)
		}
	}
	sort.Strings(silent)
	for _, name := range silent {
		t.Errorf("analyzer %s reported nothing on the fixture; its live.go violation no longer trips it", name)
	}
}
