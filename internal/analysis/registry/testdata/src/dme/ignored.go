package dme

import (
	"context"
	"math/rand"
	"time"
)

// The violations of live.go again, each suppressed — alternating between
// the //slltlint:ignore and //lint:ignore forms so both are exercised
// against every analyzer.

func RangeMapIgnored(m map[int]float64) float64 {
	var total float64
	//slltlint:ignore maporder fixture: suppression must hold for every analyzer
	for _, v := range m {
		total += v
	}
	return total
}

func StampIgnored() time.Time {
	//lint:ignore wallclock fixture: suppression must hold for every analyzer
	return time.Now()
}

func EqualCoordsIgnored(a, b float64) bool {
	//slltlint:ignore floatcmp fixture: suppression must hold for every analyzer
	return a == b
}

func DrawIgnored() int {
	//lint:ignore seededrand fixture: suppression must hold for every analyzer
	return rand.Intn(10)
}

func DetachedIgnored(ctx context.Context, key string) string {
	//slltlint:ignore ctxguard fixture: suppression must hold for every analyzer
	return lookup(context.Background(), key)
}

func FanIgnored(xs []float64) float64 {
	var total float64
	done := make(chan struct{})
	go func() {
		for _, x := range xs {
			//lint:ignore sharedstate fixture: suppression must hold for every analyzer
			total += x
		}
		close(done)
	}()
	<-done
	return total
}

// unit: d ps, c fF -> ps
func BadSumIgnored(d, c float64) float64 {
	//slltlint:ignore unitflow fixture: suppression must hold for every analyzer
	return d + c
}

// pure:
//lint:ignore stagepure fixture: suppression must hold for every analyzer
func CountIgnored(n int) int {
	counter += n
	return counter
}

// hot: alloc-free
func ScratchIgnored(n int) []int {
	//slltlint:ignore hotpath fixture: suppression must hold for every analyzer
	return make([]int, n)
}
