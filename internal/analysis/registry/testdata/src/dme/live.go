// Package dme is a roster fixture shaped like an algorithm package: its
// basename puts it in scope of every package-scoped rule, and each function
// below violates exactly one registered analyzer. ignored.go repeats the
// violations under both ignore-directive forms, gen.go behind a generated
// marker; the registry test asserts findings come from this file only.
package dme

import (
	"context"
	"math/rand"
	"time"
)

// RangeMap trips maporder: a float fold over randomized iteration order.
func RangeMap(m map[int]float64) float64 {
	var total float64
	for _, v := range m {
		total += v
	}
	return total
}

// Stamp trips wallclock.
func Stamp() time.Time {
	return time.Now()
}

// EqualCoords trips floatcmp.
func EqualCoords(a, b float64) bool {
	return a == b
}

// Draw trips seededrand.
func Draw() int {
	return rand.Intn(10)
}

func lookup(ctx context.Context, key string) string {
	_ = ctx
	return key
}

// Detached trips ctxguard: a context-threaded function that reaches for
// context.Background anyway.
func Detached(ctx context.Context, key string) string {
	return lookup(context.Background(), key)
}

// Fan trips sharedstate: a goroutine closure writing captured state.
func Fan(xs []float64) float64 {
	var total float64
	done := make(chan struct{})
	go func() {
		for _, x := range xs {
			total += x
		}
		close(done)
	}()
	<-done
	return total
}

// BadSum trips unitflow.
// unit: d ps, c fF -> ps
func BadSum(d, c float64) float64 {
	return d + c
}

// counter is package state for the stagepure violation.
var counter int

// Count trips stagepure.
//
// pure:
func Count(n int) int {
	counter += n
	return counter
}

// Scratch trips hotpath.
//
// hot: alloc-free
func Scratch(n int) []int {
	return make([]int, n)
}
