package registry_test

import (
	"bytes"
	"encoding/json"
	"go/token"
	"regexp"
	"sort"
	"testing"

	"sllt/internal/analysis"
	"sllt/internal/analysis/registry"
)

var identRe = regexp.MustCompile(`^[a-z][a-z0-9]*$`)

// TestRosterMetadata asserts every registered analyzer is fully described:
// a valid identifier name, a one-paragraph doc, and a doc URI. SARIF rules
// inherit all three, so a gap here ships anonymous findings to code
// scanning.
func TestRosterMetadata(t *testing.T) {
	all := registry.All()
	if len(all) < 9 {
		t.Fatalf("roster has %d analyzers, want at least 9", len(all))
	}
	seen := map[string]bool{}
	names := make([]string, 0, len(all))
	for _, az := range all {
		if az == nil {
			t.Fatal("nil analyzer in roster")
		}
		if !identRe.MatchString(az.Name) {
			t.Errorf("analyzer name %q is not a lowercase identifier", az.Name)
		}
		if seen[az.Name] {
			t.Errorf("duplicate analyzer name %q", az.Name)
		}
		seen[az.Name] = true
		if az.Doc == "" {
			t.Errorf("analyzer %s has no Doc", az.Name)
		}
		if az.URL == "" {
			t.Errorf("analyzer %s has no URL (doc URI)", az.Name)
		}
		if az.Run == nil {
			t.Errorf("analyzer %s has no Run", az.Name)
		}
		names = append(names, az.Name)
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("roster is not in alphabetical order: %v", names)
	}
}

// TestRosterSARIF renders one diagnostic per analyzer and checks the SARIF
// output is a structurally valid 2.1.0 log: every rule carries non-empty
// metadata and every result's ruleIndex points at its own rule.
func TestRosterSARIF(t *testing.T) {
	all := registry.All()
	diags := make([]analysis.Diagnostic, 0, len(all))
	for _, az := range all {
		diags = append(diags, analysis.Diagnostic{
			Analyzer: az.Name,
			Message:  "synthetic finding for " + az.Name,
			Position: token.Position{Filename: "/src/pkg/file.go", Line: 1, Column: 1},
		})
	}
	var buf bytes.Buffer
	if err := analysis.WriteSARIF(&buf, diags, all, "/src"); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}

	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
						HelpURI string `json:"helpUri"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || log.Schema == "" {
		t.Fatalf("bad SARIF header: version %q schema %q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "slltlint" {
		t.Errorf("driver name %q, want slltlint", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != len(all) {
		t.Fatalf("got %d rules, want %d", len(run.Tool.Driver.Rules), len(all))
	}
	for i, rule := range run.Tool.Driver.Rules {
		if rule.ID != all[i].Name {
			t.Errorf("rule %d id %q, want %q", i, rule.ID, all[i].Name)
		}
		if rule.ShortDescription.Text == "" {
			t.Errorf("rule %s has empty shortDescription", rule.ID)
		}
		if rule.HelpURI == "" {
			t.Errorf("rule %s has empty helpUri", rule.ID)
		}
	}
	if len(run.Results) != len(all) {
		t.Fatalf("got %d results, want %d", len(run.Results), len(all))
	}
	for _, res := range run.Results {
		if res.RuleIndex < 0 || res.RuleIndex >= len(run.Tool.Driver.Rules) {
			t.Errorf("result %s has out-of-range ruleIndex %d", res.RuleID, res.RuleIndex)
			continue
		}
		if got := run.Tool.Driver.Rules[res.RuleIndex].ID; got != res.RuleID {
			t.Errorf("result %s ruleIndex points at %s", res.RuleID, got)
		}
		if len(res.Locations) != 1 || res.Locations[0].PhysicalLocation.ArtifactLocation.URI != "pkg/file.go" {
			t.Errorf("result %s has bad location %+v", res.RuleID, res.Locations)
		}
	}
}
