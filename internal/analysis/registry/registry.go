// Package registry is the single source of truth for the slltlint analyzer
// roster. cmd/slltlint drives it, CI runs it, and the framework test
// asserts every entry carries complete rule metadata (name, doc, URL) so
// SARIF uploads never ship anonymous rules.
package registry

import (
	"sllt/internal/analysis"
	"sllt/internal/analysis/ctxguard"
	"sllt/internal/analysis/floatcmp"
	"sllt/internal/analysis/hotpath"
	"sllt/internal/analysis/maporder"
	"sllt/internal/analysis/seededrand"
	"sllt/internal/analysis/sharedstate"
	"sllt/internal/analysis/stagepure"
	"sllt/internal/analysis/unitflow"
	"sllt/internal/analysis/wallclock"
)

// All returns the full analyzer roster in stable (alphabetical) order. The
// returned slice is fresh on every call; callers may filter it.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxguard.Analyzer,
		floatcmp.Analyzer,
		hotpath.Analyzer,
		maporder.Analyzer,
		seededrand.Analyzer,
		sharedstate.Analyzer,
		stagepure.Analyzer,
		unitflow.Analyzer,
		wallclock.Analyzer,
	}
}
