package stagepure_test

import (
	"testing"

	"sllt/internal/analysis"
	"sllt/internal/analysis/stagepure"
)

func TestPureFlow(t *testing.T) {
	analysis.RunTest(t, stagepure.Analyzer, "testdata/src/pureflow")
}

func TestImpure(t *testing.T) {
	analysis.RunTest(t, stagepure.Analyzer, "testdata/src/impure")
}

func TestCrossPackage(t *testing.T) {
	analysis.RunTest(t, stagepure.Analyzer, "testdata/src/xstage", "testdata/src/xhelper")
}

func TestPureTypeContract(t *testing.T) {
	analysis.RunTest(t, stagepure.Analyzer, "testdata/src/puretype")
}

func TestFieldSensitivity(t *testing.T) {
	analysis.RunTest(t, stagepure.Analyzer, "testdata/src/fieldsens")
}
