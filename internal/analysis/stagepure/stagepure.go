// Package stagepure verifies the purity contracts that make flow stages
// cacheable. A function annotated // stage: <name> or // pure: must be a
// pure function of its arguments: the analyzer computes an effect summary
// for every function in the batch, propagates parameter-mutation facts
// across call edges to a fixpoint, and walks the call graph from each
// annotated function reporting every reachable impurity — package-state
// reads and writes, wall-clock reads, draws from the global rand stream,
// I/O, unvetted dynamic calls, and mutation of arguments that form the
// cache key.
//
// Annotated callees are trusted boundaries: a caller's check stops at them,
// so each contract is verified exactly once, where it is declared. Calls
// into sllt/internal/obs are exempt (the recorder observes and never feeds
// back — the obs-on/obs-off golden tests enforce this at runtime), and so
// are obs-typed parameters.
//
// Mutation tracking is field-sensitive at one level: struct composite
// literals are tracked per field, selections off parameters record which
// field the alias came from, and call edges conduct a callee's mutations
// only when the mutated field matches the field that held the alias. A
// builder that retains a caller slice read-only in one field while mutating
// a private copy in another therefore stays pure; append with a
// reference-free element type counts as a genuine copy.
//
// Known, deliberate gaps (soundness trades for signal): aliases of package
// variables captured into locals before mutation, globals mutated through
// callee parameters, functions that return aliases of their arguments, and
// two pointers to the same struct tracked as separate containers are not
// chased. The determinism analyzers (sharedstate, seededrand, maporder) own
// the hazards those would mostly duplicate.
package stagepure

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"sllt/internal/analysis"
)

// Analyzer is the stagepure rule.
var Analyzer = &analysis.Analyzer{
	Name:    "stagepure",
	Doc:     "verifies that // stage: and // pure: annotated functions are pure functions of their arguments (cacheable): no package-state reads or writes, wall clock, global rand, I/O, unvetted dynamic calls, or mutation of cache-key arguments",
	URL:     "DESIGN.md#purity--cancellation-contracts",
	Prepare: prepare,
	Run:     run,
}

// reg holds the batch-wide state between Prepare and the per-package Run
// passes, rebuilt on every Run invocation.
var reg *registry

func prepare(pkgs []*analysis.Package) error {
	reg = newRegistry()
	for _, p := range pkgs {
		reg.batch[p.ImportPath] = true
	}
	if len(pkgs) > 0 {
		reg.modPrefix = modulePrefix(pkgs[0].ImportPath)
	}
	for _, p := range pkgs {
		collectAnnotations(p, reg)
	}
	for _, p := range pkgs {
		scanGlobalWrites(p, reg)
	}
	for _, p := range pkgs {
		collectSummaries(p, reg)
	}
	finalize(reg)
	return nil
}

func run(pass *analysis.Pass) error {
	if reg == nil {
		return nil
	}
	for _, d := range reg.diags[pass.Pkg.Path()] {
		pass.Reportf(d.pos, "%s", d.msg)
	}
	return nil
}

// modulePrefix derives the module path prefix from an import path: calls to
// module packages outside the lint batch cannot be verified and are
// reported as such.
func modulePrefix(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i+1]
	}
	return path + "/"
}

// scanGlobalWrites records every package-level variable assigned outside
// its own declaration and outside init functions. Reads of such vars are
// impure; vars only written at declaration time are effectively constants.
func scanGlobalWrites(pkg *analysis.Package, reg *registry) {
	mark := func(e ast.Expr) {
		if key := writeTargetGlobal(pkg, e); key != "" {
			if _, seen := reg.mutGlobal[key]; !seen {
				reg.mutGlobal[key] = e.Pos()
			}
		}
	}
	for _, f := range pkg.Files {
		if analysis.SkipFile(pkg.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Name.Name == "init" {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.AssignStmt:
					if s.Tok == token.DEFINE {
						return true
					}
					for _, lhs := range s.Lhs {
						mark(lhs)
					}
				case *ast.IncDecStmt:
					mark(s.X)
				case *ast.RangeStmt:
					if s.Tok == token.ASSIGN {
						mark(s.Key)
						mark(s.Value)
					}
				}
				return true
			})
		}
	}
}

// writeTargetGlobal resolves an assignment target to the package-level var
// it writes into, or "". The root identifier is what matters: g = v,
// g[i] = v, g.f = v and *g = v all mutate g's state.
func writeTargetGlobal(pkg *analysis.Package, e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			// Qualified cross-package write pkg.Var = v.
			if qual, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := pkg.TypesInfo.Uses[qual].(*types.PkgName); isPkg {
					return globalKey(pkg.TypesInfo.Uses[x.Sel])
				}
			}
			e = x.X
		case *ast.Ident:
			obj := pkg.TypesInfo.Uses[x]
			if obj == nil {
				obj = pkg.TypesInfo.Defs[x]
			}
			return globalKey(obj)
		default:
			return ""
		}
	}
}

// ---- fixpoint + reporting ----

// finalize propagates parameter mutations across call edges to a fixpoint,
// then walks the call graph from each annotated function and renders every
// reachable impurity as a diagnostic at the annotation site.
func finalize(reg *registry) {
	keys := sortedKeys(reg.sums)
	for _, k := range keys {
		s := reg.sums[k]
		s.allMutates = make(map[mutKey]mutation, len(s.mutates))
		for i, m := range s.mutates {
			s.allMutates[i] = m
		}
	}
	// Mutation fixpoint: a tainted argument to a mutating callee mutates
	// the caller's parameter too. Edges narrowed to one field of the callee
	// parameter (the argument was a tracked struct) only conduct mutations
	// of that field; a mutation with an unknown field ("") conducts through
	// any edge. Annotated callees are trusted boundaries — their contract is
	// verified at their own declaration.
	for changed := true; changed; {
		changed = false
		for _, k := range keys {
			s := reg.sums[k]
			for _, fl := range s.flows {
				if reg.funcs[fl.calleeKey] != nil {
					continue
				}
				callee := reg.sums[fl.calleeKey]
				if callee == nil {
					continue
				}
				for _, mk := range sortedMutKeys(callee.allMutates) {
					if mk.param != fl.calleeParam {
						continue
					}
					if fl.calleeField != "" && mk.field != "" && mk.field != fl.calleeField {
						continue
					}
					ck := mutKey{param: fl.callerParam, field: fl.callerField}
					if _, have := s.allMutates[ck]; have {
						continue
					}
					cm := callee.allMutates[mk]
					via := callee.name
					if cm.via != "" {
						via += " → " + cm.via
					}
					s.allMutates[ck] = mutation{
						name: s.paramNames[fl.callerParam], pos: fl.pos, via: via,
					}
					changed = true
				}
			}
		}
	}

	for _, k := range sortedKeys(reg.funcs) {
		ann := reg.funcs[k]
		s := reg.sums[k]
		if s == nil {
			reg.report(ann.pkg, ann.pos, "%s annotation on %s cannot be verified: no function summary (declaration skipped or generated)",
				annWord(ann.kind), ann.name)
			continue
		}
		emitFindings(reg, ann, s)
	}
}

// A cause is one reachable impurity, attributed through the call chain that
// reaches it.
type cause struct {
	kind   effectKind
	detail string
	chain  []string // callee display names from the annotated function down
}

// emitFindings BFS-walks the call graph from s, collecting each distinct
// (kind, detail) impurity with its shortest call chain, then renders the
// diagnostics in deterministic order.
func emitFindings(reg *registry, ann *funcAnn, root *summary) {
	type item struct {
		key   string
		chain []string
	}
	visited := map[string]bool{root.key: true}
	queue := []item{{key: root.key}}
	causes := map[string]cause{}
	addCause := func(kind effectKind, detail string, chain []string) {
		ck := fmt.Sprintf("%d|%s", kind, detail)
		if _, have := causes[ck]; !have {
			causes[ck] = cause{kind: kind, detail: detail, chain: chain}
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		s := reg.sums[cur.key]
		if s == nil {
			addCause(effUnknownCall, cur.key, cur.chain)
			continue
		}
		for _, e := range s.effects {
			addCause(e.kind, e.detail, cur.chain)
		}
		edges := make([]calleeEdge, len(s.callees))
		copy(edges, s.callees)
		sort.Slice(edges, func(i, j int) bool { return edges[i].key < edges[j].key })
		for _, e := range edges {
			if visited[e.key] {
				continue
			}
			visited[e.key] = true
			if e.key != root.key && reg.funcs[e.key] != nil {
				continue // trusted annotated boundary
			}
			name := e.key
			if cs := reg.sums[e.key]; cs != nil {
				name = cs.name
			}
			queue = append(queue, item{key: e.key, chain: appendChain(cur.chain, name)})
		}
	}

	subject := subjectOf(ann)
	list := make([]cause, 0, len(causes))
	for _, c := range causes {
		list = append(list, c)
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].kind != list[j].kind {
			return list[i].kind < list[j].kind
		}
		return list[i].detail < list[j].detail
	})
	for _, c := range list {
		reg.report(ann.pkg, ann.pos, "%s %s", subject, causeText(c))
	}
	// One diagnostic per mutated parameter: the ""-field entry (whole
	// parameter) sorts first and wins over per-field entries.
	seenParam := map[int]bool{}
	for _, mk := range sortedMutKeys(root.allMutates) {
		if seenParam[mk.param] {
			continue
		}
		seenParam[mk.param] = true
		m := root.allMutates[mk]
		via := ""
		if m.via != "" {
			via = " (via " + m.via + ")"
		}
		reg.report(ann.pkg, ann.pos,
			"%s mutates cache-key argument %q%s; callers' inputs must stay intact for the key to be stable",
			subject, m.name, via)
	}
}

func subjectOf(ann *funcAnn) string {
	if ann.kind == annStage {
		return fmt.Sprintf("stage %q (%s)", ann.stage, ann.name)
	}
	return fmt.Sprintf("pure function %s", ann.name)
}

func causeText(c cause) string {
	via := ""
	if len(c.chain) > 0 {
		via = " (via " + strings.Join(c.chain, " → ") + ")"
	}
	switch c.kind {
	case effGlobalWrite:
		return fmt.Sprintf("writes package-level var %s%s; a cacheable stage must not mutate package state", c.detail, via)
	case effGlobalRead:
		return fmt.Sprintf("reads package-level var %s, which is written elsewhere%s; mutable-global reads make cached results stale", c.detail, via)
	case effWallClock:
		return fmt.Sprintf("reads the wall clock (%s)%s; cached replay would freeze time-dependent results", c.detail, via)
	case effGlobalRand:
		return fmt.Sprintf("draws from the global rand stream (%s)%s; seed an explicit generator from the cache key instead", c.detail, via)
	case effIO:
		return fmt.Sprintf("performs I/O (%s)%s; a cacheable stage must be a pure function of its arguments", c.detail, via)
	case effDynamic:
		return fmt.Sprintf("calls through %s, a function value not covered by a // pure: contract type%s; the callee cannot be part of the cache key", c.detail, via)
	default:
		return fmt.Sprintf("calls %s, which is outside this lint batch%s; run slltlint over the whole module to verify it", c.detail, via)
	}
}

func appendChain(chain []string, name string) []string {
	out := make([]string, 0, len(chain)+1)
	out = append(out, chain...)
	return append(out, name)
}

func sortedMutKeys(m map[mutKey]mutation) []mutKey {
	out := make([]mutKey, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].param != out[j].param {
			return out[i].param < out[j].param
		}
		return out[i].field < out[j].field
	})
	return out
}
