package stagepure

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"sllt/internal/analysis"
)

// obsPath is the observability package: calls into it are exempt from the
// purity rules by design. The recorder observes, it never feeds back into
// any algorithm decision (a property the obs-on/obs-off byte-identical
// golden tests enforce at runtime), so spans, counters and QoR writes do
// not make a stage uncacheable.
const obsPath = "sllt/internal/obs"

// cachePath is the content-addressed stage store: calls into it are exempt
// like obs calls, but for the dual reason — the store only ever replays the
// outputs of stages this analyzer verified pure, so a hit is observationally
// identical to recomputing (a property the cached/uncached byte-identity
// tests in internal/cts enforce at runtime). The exemption covers the store
// traffic itself (lookup, admission, disk tiers); it does not bless reading
// any other mutable state inside a stage.
const cachePath = "sllt/internal/cache"

// exemptPkg reports whether path is exempt from the purity rules.
func exemptPkg(path string) bool { return path == obsPath || path == cachePath }

// An effectKind classifies one direct impurity.
type effectKind int

const (
	effGlobalWrite effectKind = iota
	effGlobalRead
	effWallClock
	effGlobalRand
	effIO
	effDynamic
	effUnknownCall
)

// An effect is one direct impurity observed in a function body.
type effect struct {
	kind   effectKind
	detail string
	pos    token.Pos
}

// A calleeEdge is a static reference to another in-batch function (called,
// deferred, spawned, or passed as a value — all of which may execute it).
type calleeEdge struct {
	key string
	pos token.Pos
}

// A mutation records a write that reaches memory owned by one of the
// function's parameters.
type mutation struct {
	name string // parameter name in the reporting function
	pos  token.Pos
	via  string // display chain for transitive mutations, "" when direct
}

// A mutKey identifies one mutated region: a parameter and, when known, the
// first field selected from it on the write path. Field granularity is what
// lets the fixpoint keep "writes st.assign (a private copy)" apart from
// "writes st.pts (a retained caller slice)".
type mutKey struct {
	param int
	field string // "" when the parameter itself (or an unknown part) is written
}

// A flowEdge records a call argument that aliases a caller parameter: if
// the callee mutates its parameter, the caller's parameter is mutated too.
// calleeField narrows the edge to one field of the callee's parameter (the
// argument was a tracked struct whose field f held the alias); callerField
// records which field of the caller's parameter is reached.
type flowEdge struct {
	calleeKey   string
	calleeParam int    // flat index in the callee (receiver first)
	calleeField string // "" = the whole parameter aliases the caller's memory
	callerParam int    // flat index in the caller
	callerField string // first-hop field of the caller parameter, "" = itself
	pos         token.Pos
}

// summary is one function's purity-relevant behavior.
type summary struct {
	key, name, pkg string
	pos            token.Pos
	effects        []effect
	callees        []calleeEdge
	flows          []flowEdge
	mutates        map[mutKey]mutation // direct parameter mutations
	allMutates     map[mutKey]mutation // after interprocedural fixpoint
	paramNames     []string            // flat: receiver (if any) first
	paramExempt    []bool              // obs-typed parameters are observers, not key inputs
	annotated      bool
}

// paramSet is a bitset over flat parameter indices (parameters beyond 64
// are untracked).
type paramSet uint64

func (s paramSet) has(i int) bool { return i < 64 && s&(1<<uint(i)) != 0 }
func bit(i int) paramSet {
	if i >= 64 {
		return 0
	}
	return 1 << uint(i)
}

// Taint kinds: tValue is a local copy that may carry references into
// caller-owned memory (a struct with pointer fields); tAlias is a reference
// whose pointees are caller-owned (writes through it mutate the caller).
const (
	tNone = iota
	tValue
	tAlias
)

// taint tracks which parameters and package-level vars a local value
// derives from.
//
// field is first-hop provenance: when a value was selected off a parameter
// (p.Stats, st.pts), field names which part of the parameter it came from,
// so a later write through it blames (param, field) rather than the whole
// parameter.
//
// fields, when non-nil, marks the value as a tracked fresh struct (built by
// a composite literal in this body) whose per-field taints are known
// individually. A struct that retains a caller slice read-only in one field
// while mutating a private copy in another then stays innocent. A fields
// container carries no flat params/globals of its own.
type taint struct {
	kind    int
	params  paramSet
	globals map[string]bool
	field   string
	fields  map[string]taint
}

func (t taint) none() bool { return t.kind == tNone }

func mergeTaint(a, b taint) taint {
	if a.none() {
		return b
	}
	if b.none() {
		return a
	}
	if a.fields != nil && b.fields != nil {
		out := taint{kind: a.kind, fields: map[string]taint{}}
		if b.kind > out.kind {
			out.kind = b.kind
		}
		for k, t := range a.fields {
			out.fields[k] = t
		}
		for k, t := range b.fields {
			out.fields[k] = mergeTaint(out.fields[k], t)
		}
		return out
	}
	a, b = flatten(a), flatten(b)
	out := taint{kind: a.kind, params: a.params | b.params}
	if b.kind > out.kind {
		out.kind = b.kind
	}
	if a.field == b.field {
		out.field = a.field // diverging provenance degrades to "the whole parameter"
	}
	if a.globals != nil || b.globals != nil {
		out.globals = map[string]bool{}
		for g := range a.globals {
			out.globals[g] = true
		}
		for g := range b.globals {
			out.globals[g] = true
		}
	}
	return out
}

// flatten collapses a fields container into ordinary taint: the union of
// every field's origins at value level (the container itself is a fresh
// struct, so it is not an alias even if a field holds one).
func flatten(t taint) taint {
	if t.fields == nil {
		return t
	}
	out := taint{kind: t.kind, params: t.params, field: t.field}
	for g := range t.globals {
		if out.globals == nil {
			out.globals = map[string]bool{}
		}
		out.globals[g] = true
	}
	for _, ft := range t.fields {
		f := flatten(ft)
		out.params |= f.params
		for g := range f.globals {
			if out.globals == nil {
				out.globals = map[string]bool{}
			}
			out.globals[g] = true
		}
	}
	if out.params == 0 && len(out.globals) == 0 {
		return taint{}
	}
	if out.kind < tValue {
		out.kind = tValue
	}
	return out
}

// withKind adjusts the taint kind, keeping the origin sets.
func (t taint) withKind(k int) taint {
	if t.none() {
		return t
	}
	t.kind = k
	return t
}

// fctx is the per-function collection context.
type fctx struct {
	pkg      *analysis.Package
	p        *analysis.Pass // type-info shim for the shared Pass helpers
	reg      *registry
	sum      *summary
	paramIdx map[types.Object]int
	locals   map[types.Object]taint
	// skipIdents marks identifiers already handled structurally (write
	// targets, resolved call/reference sites) so the generic use-scan does
	// not double-report them.
	skipIdents map[*ast.Ident]bool
}

// collectSummaries builds a summary for every function declaration in pkg.
func collectSummaries(pkg *analysis.Package, reg *registry) {
	shim := &analysis.Pass{Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Types, TypesInfo: pkg.TypesInfo}
	for _, f := range pkg.Files {
		if analysis.SkipFile(pkg.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Name.Name == "init" {
				continue
			}
			c := &fctx{
				pkg: pkg,
				p:   shim,
				reg: reg,
				sum: &summary{
					key:     symKey(pkg.ImportPath, fd),
					name:    displayName(fd),
					pkg:     pkg.ImportPath,
					pos:     fd.Name.Pos(),
					mutates: map[mutKey]mutation{},
				},
				paramIdx:   map[types.Object]int{},
				locals:     map[types.Object]taint{},
				skipIdents: map[*ast.Ident]bool{},
			}
			c.sum.annotated = reg.funcs[c.sum.key] != nil
			c.bindParams(fd)
			// Two taint passes so aliases established later in source order
			// (loop-carried locals) are visible to earlier statements.
			c.taintPass(fd.Body)
			c.taintPass(fd.Body)
			c.effectPass(fd.Body)
			reg.sums[c.sum.key] = c.sum
		}
	}
}

func displayName(fd *ast.FuncDecl) string {
	if r := recvName(fd); r != "" {
		return r + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// bindParams assigns flat indices (receiver first) and records names and
// observer exemptions.
func (c *fctx) bindParams(fd *ast.FuncDecl) {
	add := func(field *ast.Field) {
		for _, name := range field.Names {
			idx := len(c.sum.paramNames)
			c.sum.paramNames = append(c.sum.paramNames, name.Name)
			c.sum.paramExempt = append(c.sum.paramExempt, isObsType(c.pkg.TypesInfo.Defs[name]))
			if obj := c.pkg.TypesInfo.Defs[name]; obj != nil {
				c.paramIdx[obj] = idx
			}
		}
		if len(field.Names) == 0 { // unnamed parameter still occupies a slot
			c.sum.paramNames = append(c.sum.paramNames, "_")
			c.sum.paramExempt = append(c.sum.paramExempt, false)
		}
	}
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			add(field)
		}
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			add(field)
		}
	}
}

// isObsType reports whether obj's type peels to a named type defined in the
// observability package.
func isObsType(obj types.Object) bool {
	if obj == nil {
		return false
	}
	t := obj.Type()
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Named:
			if p := u.Obj().Pkg(); p != nil && exemptPkg(p.Path()) {
				return true
			}
			return false
		default:
			return false
		}
	}
}

// refType reports whether values of t are references: writing through them
// reaches shared memory, and copying them copies the reference.
func refType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature:
		return true
	}
	return false
}

// hasRefs reports whether values of t can transitively reach other memory:
// copying a value of a ref-free type (numbers, strings, flat structs and
// arrays of them) yields fully independent storage. Strings are immutable,
// so sharing their bytes cannot leak a write. Interfaces, pointers, slices,
// maps, channels and funcs all count as references.
func hasRefs(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if hasRefs(u.Field(i).Type()) {
				return true
			}
		}
		return false
	case *types.Array:
		return hasRefs(u.Elem())
	}
	return true
}

// ---- taint pass ----

// taintPass records, for every local, which parameters and package vars its
// value derives from. Assignments are processed in syntax order; the caller
// runs the pass twice to reach loop-carried aliases.
func (c *fctx) taintPass(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				// st.f = rhs on a tracked container updates that field's
				// taint in place, preserving per-field provenance.
				if sel, ok := unparen(lhs).(*ast.SelectorExpr); ok && s.Tok == token.ASSIGN {
					c.assignField(sel, s, i)
					continue
				}
				id, ok := unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := c.objOf(id)
				if obj == nil {
					continue
				}
				if _, isParam := c.paramIdx[obj]; isParam {
					continue // parameters keep their own taint
				}
				var t taint
				if len(s.Rhs) == len(s.Lhs) {
					t = c.taintOf(s.Rhs[i])
				}
				c.locals[obj] = mergeTaint(c.locals[obj], t)
			}
		case *ast.ValueSpec:
			for i, name := range s.Names {
				obj := c.pkg.TypesInfo.Defs[name]
				if obj == nil || name.Name == "_" {
					continue
				}
				if i < len(s.Values) {
					c.locals[obj] = mergeTaint(c.locals[obj], c.taintOf(s.Values[i]))
				}
			}
		case *ast.RangeStmt:
			if s.Tok != token.DEFINE || s.Value == nil {
				return true
			}
			base := c.taintOf(s.X)
			if v, ok := unparen(s.Value).(*ast.Ident); ok && v.Name != "_" && !base.none() {
				if obj := c.pkg.TypesInfo.Defs[v]; obj != nil {
					k := tValue
					if refType(c.p.TypeOf(s.Value)) {
						k = tAlias
					}
					c.locals[obj] = mergeTaint(c.locals[obj], base.withKind(k))
				}
			}
		}
		return true
	})
}

// assignField folds `local.f = rhs` into the tracked container held by
// local, if any. Parameters and globals are untouched (the effect pass owns
// those writes); deeper selectors (st.grid.Kernel = x) land in memory the
// container already accounts for and are skipped.
func (c *fctx) assignField(sel *ast.SelectorExpr, s *ast.AssignStmt, i int) {
	id, ok := unparen(sel.X).(*ast.Ident)
	if !ok {
		return
	}
	obj := c.objOf(id)
	if obj == nil {
		return
	}
	if _, isParam := c.paramIdx[obj]; isParam {
		return
	}
	lt, ok := c.locals[obj]
	if !ok || lt.fields == nil {
		return
	}
	var t taint
	if len(s.Rhs) == len(s.Lhs) {
		t = flatten(c.taintOf(s.Rhs[i])) // field values stay flat, see structLit
	}
	lt.fields[sel.Sel.Name] = mergeTaint(lt.fields[sel.Sel.Name], t)
	c.locals[obj] = lt
}

// taintOf evaluates which caller-owned origins an expression's value can
// reach.
func (c *fctx) taintOf(e ast.Expr) taint {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return c.taintOf(e.X)
	case *ast.Ident:
		return c.useTaint(c.objOf(e))
	case *ast.SelectorExpr:
		// A qualified package identifier resolves like a plain ident.
		if c.p.ImportedPkgOf(e) != "" {
			return c.useTaint(c.pkg.TypesInfo.Uses[e.Sel])
		}
		return c.selectField(c.taintOf(e.X), e.Sel.Name, c.p.TypeOf(e))
	case *ast.IndexExpr:
		return c.derived(c.taintOf(e.X), c.p.TypeOf(e))
	case *ast.StarExpr:
		return c.derived(c.taintOf(e.X), c.p.TypeOf(e))
	case *ast.SliceExpr:
		return c.taintOf(e.X) // reslicing shares the backing array
	case *ast.TypeAssertExpr:
		return c.taintOf(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if _, fresh := unparen(e.X).(*ast.CompositeLit); fresh {
				// &T{...} is fresh memory carrying whatever its elements
				// reference — value-level taint, not an alias.
				return c.taintOf(e.X)
			}
			return c.taintOf(e.X).withKind(tAlias)
		}
		return taint{}
	case *ast.CompositeLit:
		// A struct literal with keyed elements becomes a tracked container:
		// each field's taint is kept separate, so writes to one field never
		// implicate the callers' memory another field retains read-only.
		if t, ok := c.structLit(e); ok {
			return t
		}
		var t taint
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			t = mergeTaint(t, c.taintOf(el).withKind(tValue))
		}
		return t
	case *ast.CallExpr:
		// append can return its first argument's backing array; conversions
		// pass the value through. Other calls' results are treated as fresh
		// (functions returning aliases of their arguments are not tracked).
		if id, ok := unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := c.pkg.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(e.Args) > 0 {
				// The result may share the first argument's backing array;
				// later arguments' elements are copied in. When the element
				// type carries no references (ints, floats, flat structs),
				// the copy severs taint entirely: append([]int(nil), xs...)
				// is a genuinely private clone of xs.
				t := c.taintOf(e.Args[0])
				var elem types.Type
				if sl, ok := c.p.TypeOf(e).Underlying().(*types.Slice); ok {
					elem = sl.Elem()
				}
				if elem == nil || hasRefs(elem) {
					for _, a := range e.Args[1:] {
						t = mergeTaint(t, c.taintOf(a).withKind(tValue))
					}
				}
				return t
			}
		}
		if tv, ok := c.pkg.TypesInfo.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return c.taintOf(e.Args[0])
		}
		return taint{}
	}
	return taint{}
}

// structLit builds a tracked per-field taint container for a struct
// composite literal whose elements are all keyed (the repo style). The
// container is fresh memory: an empty or untainted literal is still tracked
// so later field assignments (st.xs = xs) keep per-field provenance.
func (c *fctx) structLit(e *ast.CompositeLit) (taint, bool) {
	t := c.p.TypeOf(e)
	if t == nil {
		return taint{}, false
	}
	if _, ok := t.Underlying().(*types.Struct); !ok {
		return taint{}, false
	}
	fields := map[string]taint{}
	for _, el := range e.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			return taint{}, false // positional literal: fall back to merged taint
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			return taint{}, false
		}
		// Field values are stored flat (one-level sensitivity): nested
		// containers collapse here, which also keeps self-referential
		// structures from recursing without bound.
		if ft := flatten(c.taintOf(kv.Value)); !ft.none() {
			fields[key.Name] = ft
		}
	}
	return taint{kind: tValue, fields: fields}, true
}

// derived applies the selection/indexing/dereference rule: tainted bases
// yield aliases when the result is a reference, value-level taint otherwise.
func (c *fctx) derived(base taint, result types.Type) taint {
	if base.none() {
		return base
	}
	if refType(result) {
		return base.withKind(tAlias)
	}
	return base.withKind(tValue)
}

// selectField resolves base.name: a tracked container answers from its field
// map (an unset field of fresh memory is untainted); anything else derives
// from the base, recording the field as first-hop provenance when the base
// is the parameter (or global) itself.
func (c *fctx) selectField(base taint, name string, result types.Type) taint {
	if base.none() {
		return base
	}
	if base.fields != nil {
		if ft, ok := base.fields[name]; ok {
			return ft
		}
		rest := base
		rest.fields = nil
		if rest.params == 0 && len(rest.globals) == 0 {
			return taint{}
		}
		return c.derived(rest, result)
	}
	t := c.derived(base, result)
	if t.field == "" {
		t.field = name
	}
	return t
}

func (c *fctx) useTaint(obj types.Object) taint {
	if obj == nil {
		return taint{}
	}
	if idx, ok := c.paramIdx[obj]; ok {
		k := tValue
		if refType(obj.Type()) {
			k = tAlias
		}
		return taint{kind: k, params: bit(idx)}
	}
	if key := globalKey(obj); key != "" {
		k := tValue
		if refType(obj.Type()) {
			k = tAlias
		}
		return taint{kind: k, globals: map[string]bool{key: true}}
	}
	if t, ok := c.locals[obj]; ok {
		return t
	}
	return taint{}
}

// globalKey returns the registry key of a package-level variable, or "".
func globalKey(obj types.Object) string {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return ""
	}
	return v.Pkg().Path() + "." + v.Name()
}

func (c *fctx) objOf(id *ast.Ident) types.Object {
	if o := c.pkg.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return c.pkg.TypesInfo.Defs[id]
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// ---- effect pass ----

func (c *fctx) effect(kind effectKind, pos token.Pos, detail string) {
	c.sum.effects = append(c.sum.effects, effect{kind: kind, detail: detail, pos: pos})
}

// effectPass walks the body once, recording direct impurities, callee
// edges, parameter mutations and argument flows. Function literals are part
// of the body, so closure effects merge into this function's summary.
func (c *fctx) effectPass(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range s.Lhs {
				c.checkWriteTarget(lhs)
			}
		case *ast.IncDecStmt:
			c.checkWriteTarget(s.X)
		case *ast.RangeStmt:
			if s.Tok == token.ASSIGN {
				c.checkWriteTarget(s.Key)
				c.checkWriteTarget(s.Value)
			}
		case *ast.SendStmt:
			if t := c.taintOf(s.Chan); !t.none() {
				c.effect(effIO, s.Arrow, "send on a channel reaching caller or package state")
			}
		case *ast.CallExpr:
			c.handleCall(s)
		case *ast.Ident:
			c.checkUse(s)
		}
		return true
	})
}

// checkWriteTarget classifies one assignment target: writes that land in
// package-level or caller-owned memory are effects; writes to locals are
// not.
func (c *fctx) checkWriteTarget(lhs ast.Expr) {
	if lhs == nil {
		return
	}
	lhs = unparen(lhs)
	switch l := lhs.(type) {
	case *ast.Ident:
		c.skipIdents[l] = true
		if key := globalKey(c.objOf(l)); key != "" {
			c.effect(effGlobalWrite, l.Pos(), key)
		}
	case *ast.SelectorExpr:
		if c.p.ImportedPkgOf(l) != "" {
			c.skipIdents[l.Sel] = true
			if key := globalKey(c.pkg.TypesInfo.Uses[l.Sel]); key != "" {
				c.effect(effGlobalWrite, l.Pos(), key)
			}
			return
		}
		if bt := c.p.TypeOf(l.X); bt != nil && refType(bt) {
			c.blameWrite(c.taintOf(l.X), l.Sel.Pos(), l.Sel.Name, l.Sel.Name)
			return
		}
		c.checkWriteTarget(l.X)
	case *ast.IndexExpr:
		bt := c.p.TypeOf(l.X)
		if bt != nil && !refType(bt) { // array value: the cell is part of the base
			c.checkWriteTarget(l.X)
			return
		}
		c.blameWrite(c.taintOf(l.X), l.Pos(), exprName(l.X), "")
	case *ast.StarExpr:
		c.blameWrite(c.taintOf(l.X), l.Pos(), exprName(l.X), "")
	}
}

// blameWrite attributes a write through a reference to its origins. Only
// alias-level taint reaches caller memory: writes into local copies (value
// taint) stay local. The mutation is keyed by the first-hop field the alias
// was selected from (or, for a direct field write through the parameter
// itself, the written field name), so the fixpoint can tell a write into
// p.Stats apart from one into p.pts.
func (c *fctx) blameWrite(t taint, pos token.Pos, name, selField string) {
	if t.kind != tAlias {
		return
	}
	field := t.field
	if field == "" {
		field = selField
	}
	for g := range t.globals {
		c.effect(effGlobalWrite, pos, g)
	}
	for i := range c.sum.paramNames {
		if t.params.has(i) && !c.sum.paramExempt[i] {
			k := mutKey{param: i, field: field}
			if _, have := c.sum.mutates[k]; !have {
				c.sum.mutates[k] = mutation{name: c.sum.paramNames[i], pos: pos}
			}
		}
	}
}

// checkUse flags reads of mutable package-level state and records bare
// function references. Reads of vars never written outside their
// declaration are effectively constants and allowed.
func (c *fctx) checkUse(id *ast.Ident) {
	if c.skipIdents[id] {
		return
	}
	obj := c.pkg.TypesInfo.Uses[id]
	if fn, ok := obj.(*types.Func); ok {
		// A reference not in call position: the function may be invoked
		// later, so classify it like a call (without argument flows).
		c.skipIdents[id] = true
		c.funcRef(fn, nil, nil, id.Pos())
		return
	}
	key := globalKey(obj)
	if key == "" {
		return
	}
	if pkg := obj.Pkg(); pkg != nil && exemptPkg(pkg.Path()) {
		return
	}
	if _, mutated := c.reg.mutGlobal[key]; mutated {
		c.effect(effGlobalRead, id.Pos(), key)
		return
	}
	// Stdlib vars in denied packages (os.Stdout, ...) are I/O handles.
	if pkg := obj.Pkg(); pkg != nil && deniedPkg(pkg.Path()) {
		c.effect(effIO, id.Pos(), key)
	}
}

// handleCall classifies one call expression.
func (c *fctx) handleCall(call *ast.CallExpr) {
	fun := unparen(call.Fun)
	// Conversions only pass values through.
	if tv, ok := c.pkg.TypesInfo.Types[fun]; ok && tv.IsType() {
		return
	}
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := c.pkg.TypesInfo.Uses[id].(*types.Builtin); ok {
			c.skipIdents[id] = true
			c.builtinCall(b.Name(), call)
			return
		}
	}
	var fn *types.Func
	var recvExpr ast.Expr
	switch f := fun.(type) {
	case *ast.Ident:
		fn, _ = c.pkg.TypesInfo.Uses[f].(*types.Func)
		if fn != nil {
			c.skipIdents[f] = true
		}
	case *ast.SelectorExpr:
		fn, _ = c.pkg.TypesInfo.Uses[f.Sel].(*types.Func)
		if fn != nil {
			c.skipIdents[f.Sel] = true
		}
		if _, isSel := c.pkg.TypesInfo.Selections[f]; isSel {
			recvExpr = f.X
		}
	}
	if fn == nil {
		c.dynamicCall(fun)
		return
	}
	c.funcRef(fn, recvExpr, call, fun.Pos())
}

// funcRef handles a resolved function reference — called here (call != nil)
// or referenced as a value (call == nil; a reference may be invoked later,
// so it is classified identically, minus argument flows).
func (c *fctx) funcRef(fn *types.Func, recvExpr ast.Expr, call *ast.CallExpr, pos token.Pos) {
	fn = fn.Origin() // instantiated generics summarize as their origin
	pkg := fn.Pkg()
	if pkg == nil {
		return // universe scope: error.Error
	}
	path := pkg.Path()
	if exemptPkg(path) {
		return // observer / stage-store exemption
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
			c.interfaceCall(fn, path, pos)
			return
		}
	}
	if c.reg.batch[path] {
		key := typesFuncKey(fn, sig)
		c.sum.callees = append(c.sum.callees, calleeEdge{key: key, pos: pos})
		if call != nil {
			c.recordFlows(key, sig, recvExpr, call)
		}
		return
	}
	if strings.HasPrefix(path, c.reg.modPrefix) {
		c.effect(effUnknownCall, pos, path+"."+fn.Name())
		return
	}
	if eff, detail := classifyExternal(path, fn.Name(), sig); eff >= 0 {
		c.effect(eff, pos, detail)
		return
	}
	// Allowed external call; a handful of stdlib helpers still mutate
	// their first argument in place.
	if call != nil && stdlibMutatesArg0(path, fn.Name()) && len(call.Args) > 0 {
		c.blameWrite(c.taintOf(call.Args[0]), call.Args[0].Pos(), exprName(call.Args[0]), "")
	}
}

// recordFlows maps tainted call arguments onto callee parameter slots.
// Globals handed to mutating callees are not chased interprocedurally; the
// root-ident global-write scan covers the direct cases (see package doc for
// the stated gaps).
func (c *fctx) recordFlows(calleeKey string, sig *types.Signature, recvExpr ast.Expr, call *ast.CallExpr) {
	flat := 0
	if sig.Recv() != nil {
		if recvExpr != nil {
			c.flowArg(calleeKey, 0, recvExpr)
		}
		flat = 1
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= np-1 {
			pi = np - 1
		}
		if pi >= np {
			break
		}
		c.flowArg(calleeKey, flat+pi, arg)
	}
}

func (c *fctx) flowArg(calleeKey string, calleeParam int, arg ast.Expr) {
	t := c.taintOf(arg)
	if t.none() {
		return
	}
	if t.fields != nil {
		// A tracked container: one edge per field, so only callee mutations
		// of that field implicate the field's origins.
		for _, f := range sortedKeys(t.fields) {
			c.flowEdges(calleeKey, calleeParam, f, flatten(t.fields[f]), arg.Pos())
		}
		rest := t
		rest.fields = nil
		c.flowEdges(calleeKey, calleeParam, "", rest, arg.Pos())
		return
	}
	c.flowEdges(calleeKey, calleeParam, "", t, arg.Pos())
}

func (c *fctx) flowEdges(calleeKey string, calleeParam int, calleeField string, t taint, pos token.Pos) {
	if t.none() {
		return
	}
	for i := range c.sum.paramNames {
		if t.params.has(i) && !c.sum.paramExempt[i] {
			c.sum.flows = append(c.sum.flows, flowEdge{
				calleeKey: calleeKey, calleeParam: calleeParam, calleeField: calleeField,
				callerParam: i, callerField: t.field, pos: pos,
			})
		}
	}
}

// dynamicCall handles calls through function values. A value held in an
// untainted local originated from function literals or named functions seen
// in this body (whose effects and edges are already recorded), so it is
// allowed. A parameter-rooted value is allowed in unannotated helpers — the
// caller accounts for what it passes in (the parallel.ForEach shape) — but
// an annotated function may only make such calls through a named function
// type carrying a // pure: contract annotation: a raw func argument cannot
// be part of a cache key.
func (c *fctx) dynamicCall(fun ast.Expr) {
	if t := c.p.TypeOf(fun); t != nil {
		if named, ok := t.(*types.Named); ok {
			if p := named.Obj().Pkg(); p != nil && c.reg.pureTypes[p.Path()+"."+named.Obj().Name()] {
				return
			}
		}
	}
	t := c.taintOf(fun)
	if t.none() {
		return
	}
	if len(t.globals) == 0 && !c.sum.annotated {
		return // caller-accounted higher-order helper
	}
	c.effect(effDynamic, fun.Pos(), exprName(fun))
}

// builtinCall models the builtins with effects: print/println are I/O,
// copy/clear/delete mutate their first argument.
func (c *fctx) builtinCall(name string, call *ast.CallExpr) {
	switch name {
	case "print", "println":
		c.effect(effIO, call.Pos(), "builtin "+name)
	case "copy", "clear", "delete":
		if len(call.Args) > 0 {
			c.blameWrite(c.taintOf(call.Args[0]), call.Args[0].Pos(), exprName(call.Args[0]), "")
		}
	}
}

// interfaceCall classifies a method call whose receiver is an interface:
// the implementation is unresolvable, so classify by the interface's own
// package. Module interfaces get a dynamic-call effect; stdlib interfaces
// follow the same package policy as functions (io.Reader is I/O,
// fmt.Stringer is pure).
func (c *fctx) interfaceCall(fn *types.Func, path string, pos token.Pos) {
	if c.reg.batch[path] || strings.HasPrefix(path, c.reg.modPrefix) {
		c.effect(effDynamic, pos, "interface method "+fn.Name())
		return
	}
	if eff, detail := classifyExternal(path, fn.Name(), nil); eff >= 0 {
		c.effect(eff, pos, detail)
	}
}

// typesFuncKey builds the summary key of a resolved in-batch function.
func typesFuncKey(fn *types.Func, sig *types.Signature) string {
	key := fn.Pkg().Path() + "."
	if sig != nil && sig.Recv() != nil {
		if name := recvTypeName(sig.Recv().Type()); name != "" {
			key += name + "."
		}
	}
	return key + fn.Name()
}

// recvTypeName peels pointers down to the named receiver type's name.
func recvTypeName(t types.Type) string {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			return x.Obj().Name()
		default:
			return ""
		}
	}
}

func exprName(e ast.Expr) string {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprName(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprName(e.X) + "[...]"
	case *ast.StarExpr:
		return exprName(e.X)
	case *ast.CallExpr:
		return exprName(e.Fun) + "(...)"
	}
	return "expression"
}

// ---- external classification ----

// deniedPkgs perform I/O or reach process state by design; any call into
// them (or read of their package vars) is impure.
var deniedPkgs = []string{
	"bufio", "database", "io", "io/fs", "io/ioutil", "log", "net",
	"os", "os/exec", "os/signal", "os/user", "plugin",
	"runtime/pprof", "runtime/trace", "syscall", "testing",
}

func deniedPkg(path string) bool {
	for _, d := range deniedPkgs {
		if path == d || strings.HasPrefix(path, d+"/") {
			return true
		}
	}
	return false
}

// wallClockFuncs in package time read the wall clock or schedule against it.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// randConstructors build explicitly-seeded generators; everything else at
// package level in math/rand draws from the shared global stream. (That the
// generator is seeded from the run's own seed is the seededrand analyzer's
// concern, not this one's.)
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true,
}

// fmtIOFuncs write to stdout or an arbitrary writer, or read input; the
// Sprint/Sscan/Errorf families are pure.
var fmtIOFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Scan": true, "Scanf": true, "Scanln": true,
	"Fscan": true, "Fscanf": true, "Fscanln": true,
}

// runtimeAllowed are runtime reads that cannot leak into results: the
// parallel package's determinism contract (tested in CI) makes outputs
// byte-identical for any worker count, so sizing a pool from GOMAXPROCS is
// not an impurity.
var runtimeAllowed = map[string]bool{
	"GOMAXPROCS": true, "NumCPU": true, "Gosched": true, "KeepAlive": true,
}

// classifyExternal classifies a call into a package outside the analysis
// batch. It returns (-1, "") for allowed calls.
func classifyExternal(path, name string, sig *types.Signature) (effectKind, string) {
	detail := path + "." + name
	switch {
	case path == "time":
		if wallClockFuncs[name] {
			return effWallClock, detail
		}
	case path == "math/rand" || path == "math/rand/v2":
		if (sig == nil || sig.Recv() == nil) && !randConstructors[name] {
			return effGlobalRand, detail
		}
	case path == "fmt":
		if fmtIOFuncs[name] {
			return effIO, detail
		}
	case path == "runtime":
		if !runtimeAllowed[name] {
			return effIO, detail
		}
	case path == "runtime/debug":
		if name != "Stack" { // debug.Stack only runs on the panic path
			return effIO, detail
		}
	case deniedPkg(path):
		return effIO, detail
	}
	return -1, ""
}

// stdlibMutatesArg0 lists allowed stdlib helpers that nonetheless reorder
// or overwrite their first argument in place.
func stdlibMutatesArg0(path, name string) bool {
	switch path {
	case "sort":
		switch name {
		case "Slice", "SliceStable", "Sort", "Stable", "Ints", "Float64s", "Strings":
			return true
		}
	case "slices":
		switch name {
		case "Sort", "SortFunc", "SortStableFunc", "Reverse", "Delete", "Insert":
			return true
		}
	}
	return false
}

// sortedKeys returns map keys in deterministic order.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
