package stagepure

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"

	"sllt/internal/analysis"
)

// The annotation grammar. A directive is a doc-comment line on a function,
// method or named function type:
//
//	// stage: <name>
//
// declares a flow-stage function: a cacheable boundary whose result must be
// a pure function of its arguments (the cache key). The name is the stage's
// identity in cache keys and reports (e.g. "partition", "timing").
//
//	// pure:
//	// pure: <note>
//
// on a function or method asserts purity without declaring a stage; the
// analyzer verifies it exactly like a stage, and annotated callees are
// trusted boundaries (a caller's check stops at them — each contract is
// verified once, where it is declared).
//
//	// pure: contract
//
// on a named function type (e.g. cts.TopoBuilder) declares that every value
// of that type must be pure. Dynamic calls through such a type are trusted;
// the functions assigned to it carry their own // pure: annotations, which
// is where the contract is enforced.
const (
	stagePrefix = "stage:"
	purePrefix  = "pure:"
)

type annKind int

const (
	annNone annKind = iota
	annPure
	annStage
)

// funcAnn is one annotated function: the machine-checked contract site.
type funcAnn struct {
	kind  annKind
	stage string // stage name, "" for pure
	key   string // symbol key, see symKey
	name  string // display name (Recv.Name or Name)
	pos   token.Pos
	pkg   string // defining package import path
}

// annDiag is an annotation-site problem, reported when the owning package's
// pass runs.
type annDiag struct {
	pos token.Pos
	msg string
}

// registry holds the annotation set and analysis results of one Run batch,
// keyed by stable symbol strings (see unitflow's registry for the rationale:
// string keys are identity-free across packages).
type registry struct {
	funcs     map[string]*funcAnn  // annotated functions by key
	pureTypes map[string]bool      // named func types declared // pure: contract
	diags     map[string][]annDiag // final diagnostics by package import path
	sums      map[string]*summary  // every function's effect summary
	batch     map[string]bool      // import paths loaded from source this run
	mutGlobal map[string]token.Pos // package-level vars written outside their declaration/init
	modPrefix string               // module path prefix ("sllt/"): module calls outside the batch are unverifiable
}

func newRegistry() *registry {
	return &registry{
		funcs:     make(map[string]*funcAnn),
		pureTypes: make(map[string]bool),
		diags:     make(map[string][]annDiag),
		sums:      make(map[string]*summary),
		batch:     make(map[string]bool),
		mutGlobal: make(map[string]token.Pos),
	}
}

func (r *registry) report(pkg string, pos token.Pos, format string, args ...any) {
	r.diags[pkg] = append(r.diags[pkg], annDiag{pos, fmt.Sprintf(format, args...)})
}

// symKey builds the registry key of a function declaration:
// "pkg/path.Name" for package functions, "pkg/path.Recv.Name" for methods.
func symKey(path string, fd *ast.FuncDecl) string {
	key := path + "."
	if name := recvName(fd); name != "" {
		key += name + "."
	}
	return key + fd.Name.Name
}

// recvName returns the receiver type name of a method declaration.
func recvName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.ParenExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// directiveIn extracts the first stage:/pure: directive from the comment
// group. The payload is cut at any embedded "//" so fixture want comments
// can share the line.
func directiveIn(g *ast.CommentGroup) (kind annKind, payload string, ok bool) {
	if g == nil {
		return annNone, "", false
	}
	for _, c := range g.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		var k annKind
		switch {
		case strings.HasPrefix(text, stagePrefix):
			k, text = annStage, strings.TrimPrefix(text, stagePrefix)
		case strings.HasPrefix(text, purePrefix):
			k, text = annPure, strings.TrimPrefix(text, purePrefix)
		default:
			continue
		}
		text = strings.TrimSpace(text)
		if i := strings.Index(text, "//"); i >= 0 {
			text = strings.TrimSpace(text[:i])
		}
		return k, text, true
	}
	return annNone, "", false
}

// collectAnnotations scans one package for stage:/pure: directives on
// function declarations and named function types.
func collectAnnotations(pkg *analysis.Package, reg *registry) {
	path := pkg.ImportPath
	for _, f := range pkg.Files {
		if analysis.SkipFile(pkg.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				kind, payload, ok := directiveIn(d.Doc)
				if !ok {
					continue
				}
				if kind == annStage && payload == "" {
					reg.report(path, d.Name.Pos(), "stage annotation on %s needs a name: // stage: <name>", d.Name.Name)
					continue
				}
				if d.Body == nil {
					reg.report(path, d.Name.Pos(), "%s annotation on bodyless declaration %s cannot be verified", annWord(kind), d.Name.Name)
					continue
				}
				name := d.Name.Name
				if r := recvName(d); r != "" {
					name = r + "." + name
				}
				reg.funcs[symKey(path, d)] = &funcAnn{
					kind: kind, stage: payload, key: symKey(path, d),
					name: name, pos: d.Name.Pos(), pkg: path,
				}
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					doc := ts.Doc
					if doc == nil && len(d.Specs) == 1 {
						doc = d.Doc
					}
					kind, _, ok := directiveIn(doc)
					if !ok {
						continue
					}
					if kind != annPure {
						reg.report(path, ts.Name.Pos(), "stage annotation is for functions; use // pure: contract on type %s", ts.Name.Name)
						continue
					}
					if _, isFunc := ts.Type.(*ast.FuncType); !isFunc {
						reg.report(path, ts.Name.Pos(), "pure annotation on type %s, which is not a function type", ts.Name.Name)
						continue
					}
					reg.pureTypes[path+"."+ts.Name.Name] = true
				}
			}
		}
	}
}

func annWord(k annKind) string {
	if k == annStage {
		return "stage"
	}
	return "pure"
}
