// Package puretype exercises the // pure: contract annotation on named
// function types: dynamic calls through such a type are trusted, raw func
// parameters in annotated functions are not.
package puretype

// Builder constructs a topology over the points.
// pure: contract
type Builder func(xs []float64) []int

// pure: contract
type Weight float64 // want "pure annotation on type Weight, which is not a function type"

// stage: topo
func Topo(xs []float64, b Builder) []int {
	return b(xs)
}

// stage: rawtopo
func RawTopo(xs []float64, b func([]float64) []int) []int { // want "calls through b"
	return b(xs)
}

// Half is a conforming Builder implementation; its own contract is checked
// here, where it is declared.
// pure:
func Half(xs []float64) []int {
	out := make([]int, len(xs)/2)
	for i := range out {
		out[i] = i
	}
	return out
}
