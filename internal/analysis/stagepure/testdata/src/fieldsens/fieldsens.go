// Package fieldsens exercises one-level field-sensitive mutation tracking:
// a builder struct that retains caller slices read-only in some fields while
// mutating private state in others must not implicate the annotated caller,
// but an aliased field that IS written still must.
package fieldsens

// state is the solver scratchpad: xs is retained read-only from the caller,
// work is a private copy, out is fresh output storage.
type state struct {
	xs   []float64
	work []int
	out  []float64
	gain float64
}

// build wires the scratchpad: xs is aliased but never written; work is a
// genuine copy (ref-free int elements), so mutating it is private.
func build(xs []float64, assign []int) *state {
	st := &state{
		xs:   xs,
		work: append([]int(nil), assign...),
	}
	st.out = make([]float64, len(xs))
	st.gain = 2
	return st
}

func (st *state) step(i int) {
	st.work[i]++                   // private copy: silent
	st.out[i] = st.xs[i] * st.gain // fresh storage fed from a read: silent
}

func (st *state) grow() {
	st.gain *= 2 // receiver field of unknown ownership, but not xs/work
}

// stage: smooth
func Smooth(xs []float64, assign []int) []float64 {
	st := build(xs, assign)
	for i := range assign {
		st.step(i)
	}
	st.grow()
	return st.out
}

// scaleXS writes through the retained caller slice.
func (st *state) scaleXS(f float64) {
	for i := range st.xs {
		st.xs[i] *= f
	}
}

// pure:
func Leak(xs []float64) float64 { // want "mutates cache-key argument \"xs\""
	st := &state{xs: xs}
	st.scaleXS(2)
	return st.gain
}

// pure:
func LeakLate(xs []float64) float64 { // want "mutates cache-key argument \"xs\""
	st := &state{}
	st.xs = xs
	st.scaleXS(3)
	return st.gain
}
