// Package xhelper is the unannotated cross-package helper whose impurities
// must surface at annotated callers in other packages.
package xhelper

import "time"

// Jitter perturbs xs in place by the current time — both a wall-clock read
// and a mutation of its argument.
func Jitter(xs []float64) {
	t := float64(time.Now().UnixNano())
	for i := range xs {
		xs[i] += t
	}
}

// Sum is pure: annotated callers may use it freely.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
