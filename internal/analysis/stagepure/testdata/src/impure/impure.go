// Package impure is the positive fixture: every annotated function violates
// the purity contract in one distinct way.
package impure

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"
)

var counter int

var table = map[string]int{}

// put makes table a mutated global, so reads of it elsewhere are stale.
func put(k string) { table[k] = 1 }

// stage: clock
func Clock(pts []float64) float64 { // want "reads the wall clock (time.Now)"
	_ = time.Now()
	return pts[0]
}

// stage: entropy
func Entropy(n int) int { // want "draws from the global rand stream (math/rand.Intn)"
	return rand.Intn(n)
}

// pure:
func Bump() int { // want "writes package-level var" "reads package-level var"
	counter++
	return counter
}

// stage: stale
func Stale(k string) int { // want "reads package-level var"
	return table[k]
}

// stage: loud
func Loud(x int) int { // want "performs I/O (fmt.Println)"
	fmt.Println(x)
	return x
}

// pure:
func Dump(x []byte) error { // want "performs I/O (os.WriteFile)"
	return os.WriteFile("x", x, 0o644)
}

// stage: sortinplace
func SortInPlace(xs []float64) []float64 { // want "mutates cache-key argument \"xs\""
	sort.Float64s(xs)
	return xs
}

type node struct {
	val  float64
	next *node
}

// pure:
func Scale(n *node, f float64) { // want "mutates cache-key argument \"n\""
	n.val *= f
}

// zero is unannotated: its mutation propagates to annotated callers.
func zero(xs []float64) {
	for i := range xs {
		xs[i] = 0
	}
}

// stage: wipe
func Wipe(xs []float64) []float64 { // want "mutates cache-key argument \"xs\" (via zero)"
	zero(xs)
	return xs
}

// stage: dyn
func Dyn(xs []float64, f func(float64) float64) []float64 { // want "calls through f"
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = f(x)
	}
	return out
}

// stage:
func NoName(x int) int { // want "stage annotation on NoName needs a name"
	return x
}
