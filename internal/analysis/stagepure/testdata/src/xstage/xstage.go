// Package xstage holds annotated stages whose violations live in another
// fixture package (xhelper) or outside the lint batch entirely.
package xstage

import (
	"sllt/internal/analysis/stagepure/testdata/src/xhelper"
	"sllt/internal/geom"
)

// stage: jitter
func Jitter(xs []float64) []float64 { // want "reads the wall clock (time.Now) (via Jitter)" "mutates cache-key argument \"xs\" (via Jitter)"
	xhelper.Jitter(xs)
	return xs
}

// pure:
func Total(xs []float64) float64 {
	return xhelper.Sum(xs)
}

// pure:
func Near(a, b float64) bool { // want "outside this lint batch"
	return geom.AlmostEqual(a, b)
}
