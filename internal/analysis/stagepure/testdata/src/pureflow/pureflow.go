// Package pureflow is the negative fixture: every annotated function obeys
// the purity contract, so the analyzer must stay silent.
package pureflow

import (
	"math"
	"math/rand"
	"sort"
)

// lut is written only at declaration: effectively constant, free to read.
var lut = []float64{1, 2, 4, 8}

// stage: partition
func Partition(pts []float64, k int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, len(pts))
	for i := range out {
		out[i] = rng.Intn(k)
	}
	local := append([]float64(nil), pts...) // copy, then sort the copy
	sort.Float64s(local)
	scale := lut[k%len(lut)]
	_ = math.Sqrt(scale)
	return out
}

// pure: absolute gap between two costs
func Cost(a, b float64) float64 { return math.Abs(a - b) }

// stage: route
func Route(order []int) []int {
	return normalize(order)
}

// normalize copies before sorting, so the stage's input stays intact.
func normalize(order []int) []int {
	out := make([]int, len(order))
	copy(out, order)
	sort.Ints(out)
	return out
}

// each is an unannotated fan-out helper: calling its func parameter is
// accounted by the caller, whose closure effects merge into its own summary.
func each(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// stage: cluster
func Cluster(pts []float64) []float64 {
	out := make([]float64, len(pts))
	each(len(pts), func(i int) { out[i] = pts[i] * 2 })
	return out
}
