package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// SARIF 2.1.0 document structure — the subset code-scanning backends
// require: schema/version header, one run with a tool driver declaring its
// rules, and one result per diagnostic with a physical location.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string        `json:"id"`
	ShortDescription sarifMessage  `json:"shortDescription"`
	FullDescription  *sarifMessage `json:"fullDescription,omitempty"`
	HelpURI          string        `json:"helpUri,omitempty"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders the diagnostics as a SARIF 2.1.0 log for the given
// analyzer set (every analyzer becomes a rule, findings or not, so rule
// metadata is stable across runs). File paths are emitted relative to root
// with forward slashes, the form code-scanning uploads expect.
func WriteSARIF(w io.Writer, diags []Diagnostic, analyzers []*Analyzer, root string) error {
	driver := sarifDriver{
		Name:  "slltlint",
		Rules: []sarifRule{},
	}
	ruleIndex := make(map[string]int)
	for _, az := range analyzers {
		ruleIndex[az.Name] = len(driver.Rules)
		rule := sarifRule{
			ID:               az.Name,
			ShortDescription: sarifMessage{Text: az.Doc},
			HelpURI:          az.URL,
		}
		if az.Doc != "" {
			rule.FullDescription = &sarifMessage{Text: az.Doc}
		}
		driver.Rules = append(driver.Rules, rule)
	}
	results := []sarifResult{}
	for _, d := range diags {
		idx, ok := ruleIndex[d.Analyzer]
		if !ok {
			idx = len(driver.Rules)
			ruleIndex[d.Analyzer] = idx
			driver.Rules = append(driver.Rules, sarifRule{
				ID:               d.Analyzer,
				ShortDescription: sarifMessage{Text: d.Analyzer},
			})
		}
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: idx,
			Level:     "warning",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{
						URI:       RelPath(root, d.Position.Filename),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{
						StartLine:   d.Position.Line,
						StartColumn: d.Position.Column,
					},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// RelPath returns path relative to root in slash form, or the slashed
// absolute path when it does not sit under root (or root is empty).
func RelPath(root, path string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(path)
}
