package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// A Package is one loaded, typechecked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info

	// ModDir is the root directory of the module containing the package;
	// SARIF and baseline output relativize file paths against it.
	ModDir string
	// GoVersion is the module's language version ("go1.22"); per-file
	// //go:build downgrades are recorded in TypesInfo.FileVersions.
	GoVersion string

	// TypeErrors holds typechecking problems. A package with type errors
	// still carries partial information, but analyzer results on it are
	// unreliable; cmd/slltlint treats these as hard failures.
	TypeErrors []error
}

// listPkg mirrors the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Module     *struct{ Dir, GoVersion string }
	Error      *struct{ Err string }
}

// Load resolves the given go-tool patterns (e.g. "./...") relative to dir
// and returns the matched packages, parsed and typechecked. Dependencies —
// both in-module and standard library — are imported from compiler export
// data produced by `go list -export`, so only the target packages are
// typechecked from source. Test files are not loaded: the lint rules govern
// library code, while tests are free to, e.g., compare floats exactly
// against goldens.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=Dir,ImportPath,Name,GoFiles,Export,DepOnly,Standard,Module,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	}
	// One shared importer so dependency packages are loaded once and share
	// identity across targets.
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		pkg, err := check(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// check parses and typechecks one target package.
func check(fset *token.FileSet, imp types.Importer, t listPkg) (*Package, error) {
	var files []*ast.File
	for _, gf := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, gf), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
	}
	pkg := &Package{
		ImportPath: t.ImportPath,
		Dir:        t.Dir,
		Fset:       fset,
		Files:      files,
		TypesInfo: &types.Info{
			Types:        make(map[ast.Expr]types.TypeAndValue),
			Defs:         make(map[*ast.Ident]types.Object),
			Uses:         make(map[*ast.Ident]types.Object),
			Implicits:    make(map[ast.Node]types.Object),
			Selections:   make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:       make(map[ast.Node]*types.Scope),
			FileVersions: make(map[*ast.File]string),
		},
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	if t.Module != nil {
		pkg.ModDir = t.Module.Dir
		if v := t.Module.GoVersion; v != "" {
			pkg.GoVersion = "go" + v
			// Setting the language version makes the typechecker apply
			// per-file //go:build downgrades and record them in
			// FileVersions, which the sharedstate analyzer consults for
			// pre/post-1.22 loop-variable semantics.
			conf.GoVersion = pkg.GoVersion
		}
	}
	tp, err := conf.Check(t.ImportPath, fset, files, pkg.TypesInfo)
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	pkg.Types = tp
	return pkg, nil
}
