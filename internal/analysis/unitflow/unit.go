package unitflow

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// A Unit is a product of base dimensions with integer exponents. The base
// dimensions mirror the repository's unit system (internal/tech doc):
//
//	ps  time (algorithmic: delays, slews, skew)
//	fF  capacitance
//	um  length
//	ns  wall-clock time (observability spans)
//	B   bytes (cache traffic counters)
//
// ns is deliberately its OWN base dimension, not a scaled ps: span
// timestamps from internal/obs measure the flow's execution, never its
// electrical behavior, and must not silently add to or compare against
// Elmore-domain picoseconds. Mixing them is exactly the bug class this
// analyzer exists to catch.
//
// Resistance is not a base dimension: the system is chosen so that
// 1 kΩ · 1 fF = 1 ps, which makes kohm ≡ ps/fF definitionally — exactly the
// identity that lets Elmore products r·L·(c·L/2 + load) type-check to ps.
// The zero-length Unit is dimensionless (annotated "1"), distinct from an
// unannotated (unknown) quantity.
type Unit map[string]int

// baseUnits maps every accepted annotation token to its dimension vector.
// Unicode spellings are accepted alongside ASCII so annotations can match
// the prose comments they sit next to.
var baseUnits = map[string]Unit{
	"ps":   {"ps": 1},
	"fF":   {"fF": 1},
	"um":   {"um": 1},
	"µm":   {"um": 1},
	"kohm": {"ps": 1, "fF": -1},
	"kOhm": {"ps": 1, "fF": -1},
	"kΩ":   {"ps": 1, "fF": -1},
	"ns":   {"ns": 1},
	"B":    {"B": 1},
	"1":    {},
}

// dimOrder fixes the rendering order of dimensions in diagnostics.
var dimOrder = []string{"ps", "fF", "um", "ns", "B"}

// Mul returns the product unit (exponents add).
func (u Unit) Mul(v Unit) Unit {
	out := make(Unit, len(u)+len(v))
	for d, e := range u {
		out[d] = e
	}
	for d, e := range v {
		out[d] += e
		if out[d] == 0 {
			delete(out, d)
		}
	}
	return out
}

// Div returns the quotient unit (exponents subtract).
func (u Unit) Div(v Unit) Unit {
	inv := make(Unit, len(v))
	for d, e := range v {
		inv[d] = -e
	}
	return u.Mul(inv)
}

// Equal reports dimension-for-dimension equality.
func (u Unit) Equal(v Unit) bool {
	if len(u) != len(v) {
		return false
	}
	for d, e := range u {
		if v[d] != e {
			return false
		}
	}
	return true
}

// Sqrt halves every exponent. ok is false when any exponent is odd — the
// square root of such a quantity is dimensionally incoherent.
func (u Unit) Sqrt() (Unit, bool) {
	out := make(Unit, len(u))
	for d, e := range u {
		if e%2 != 0 {
			return nil, false
		}
		out[d] = e / 2
	}
	return out, true
}

// Dimensionless reports whether the unit has no dimensions.
func (u Unit) Dimensionless() bool { return len(u) == 0 }

// String renders the unit in numerator/denominator form: "ps", "fF/µm",
// "µm²", "ps/(fF·µm)", "1" for dimensionless. Units dimensionally equal to
// a resistance render through the base dimensions (kΩ shows as ps/fF),
// which keeps the printer total and the identity kΩ·fF = ps visible.
func (u Unit) String() string {
	var num, den []string
	render := func(d string, e int) string {
		name := d
		if name == "um" {
			name = "µm"
		}
		switch e {
		case 1:
			return name
		case 2:
			return name + "²"
		case 3:
			return name + "³"
		default:
			return name + "^" + strconv.Itoa(e)
		}
	}
	dims := make([]string, 0, len(u))
	for d := range u {
		dims = append(dims, d)
	}
	sort.Slice(dims, func(i, j int) bool { return dimIndex(dims[i]) < dimIndex(dims[j]) })
	for _, d := range dims {
		if e := u[d]; e > 0 {
			num = append(num, render(d, e))
		} else {
			den = append(den, render(d, -e))
		}
	}
	switch {
	case len(num) == 0 && len(den) == 0:
		return "1"
	case len(den) == 0:
		return strings.Join(num, "·")
	case len(num) == 0:
		return "1/" + parenthesize(den)
	default:
		return strings.Join(num, "·") + "/" + parenthesize(den)
	}
}

func parenthesize(parts []string) string {
	if len(parts) == 1 {
		return parts[0]
	}
	return "(" + strings.Join(parts, "·") + ")"
}

func dimIndex(d string) int {
	for i, x := range dimOrder {
		if x == d {
			return i
		}
	}
	return len(dimOrder)
}

// ParseUnit parses one unit expression from an annotation:
//
//	expr := term { ("*" | "·" | "/") term }
//	term := base [ "^" int ] | base "²" | base "³"
//
// evaluated left to right (so "ps/fF·µm" is (ps/fF)·µm, matching the
// informal way the doc comments write composite units). Unknown base
// tokens are errors — a typo'd annotation must surface as a diagnostic,
// not silently check nothing.
func ParseUnit(s string) (Unit, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("empty unit expression")
	}
	// Tokenize into terms and operators.
	var terms []string
	var ops []byte
	cur := strings.Builder{}
	flush := func() error {
		if cur.Len() == 0 {
			return fmt.Errorf("missing unit term in %q", s)
		}
		terms = append(terms, cur.String())
		cur.Reset()
		return nil
	}
	for _, r := range s {
		switch r {
		case '*', '·', '/':
			if err := flush(); err != nil {
				return nil, err
			}
			if r == '/' {
				ops = append(ops, '/')
			} else {
				ops = append(ops, '*')
			}
		case ' ', '\t':
			// insignificant inside an expression
		default:
			cur.WriteRune(r)
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}

	out, err := parseTerm(terms[0])
	if err != nil {
		return nil, err
	}
	for i, op := range ops {
		t, err := parseTerm(terms[i+1])
		if err != nil {
			return nil, err
		}
		if op == '/' {
			out = out.Div(t)
		} else {
			out = out.Mul(t)
		}
	}
	return out, nil
}

// parseTerm parses one base unit with an optional exponent.
func parseTerm(t string) (Unit, error) {
	exp := 1
	switch {
	case strings.HasSuffix(t, "²"):
		exp, t = 2, strings.TrimSuffix(t, "²")
	case strings.HasSuffix(t, "³"):
		exp, t = 3, strings.TrimSuffix(t, "³")
	default:
		if i := strings.IndexByte(t, '^'); i >= 0 {
			e, err := strconv.Atoi(t[i+1:])
			if err != nil {
				return nil, fmt.Errorf("bad exponent in unit term %q", t)
			}
			exp, t = e, t[:i]
		}
	}
	base, ok := baseUnits[t]
	if !ok {
		return nil, fmt.Errorf("unknown unit %q (known: ps, fF, um/µm, kohm/kΩ, ns, B, 1)", t)
	}
	out := make(Unit, len(base))
	for d, e := range base {
		if e*exp != 0 {
			out[d] = e * exp
		}
	}
	return out, nil
}
