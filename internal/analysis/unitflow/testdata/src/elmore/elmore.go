// Package elmore exercises the unitflow annotation grammar and dimensional
// algebra: positive derivations (kΩ·fF → ps, fF/µm · µm → fF) must stay
// silent, deliberate mixes must be rejected naming both units.
package elmore

import "math"

// Tech mirrors the real technology table's per-unit-length constants.
type Tech struct {
	RPerUm  float64 // unit: kohm/um
	CPerUm  float64 // unit: fF/um
	SinkCap float64 // unit: fF
}

// Node is a clock-tree node with a load and an arrival time.
type Node struct {
	Cap   float64 // unit: fF
	Delay float64 // unit: ps
}

// NominalSlew is the reference transition time.
const NominalSlew = 20.0 // unit: ps

// WireCap is the capacitance of a wire: fF/µm · µm must derive fF, and the
// annotated result enforces that the algebra actually lands there.
// unit: length um -> fF
func (t Tech) WireCap(length float64) float64 {
	return t.CPerUm * length
}

// WireElmore is the Elmore delay of a loaded wire: kΩ · fF must derive ps.
// unit: length um, load fF -> ps
func (t Tech) WireElmore(length, load float64) float64 {
	r := t.RPerUm * length
	return r * (t.WireCap(length)/2 + load)
}

// LoadOf inverts Elmore: ps / kΩ must derive fF.
// unit: d ps, r kohm -> fF
func LoadOf(d, r float64) float64 {
	return d / r
}

// Mean averages element units through range, accumulation and len().
// unit: xs um -> um
func Mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Area squares a length through a compound assignment.
// unit: step um -> um²
func Area(step float64) float64 {
	a := step
	a *= step
	return a
}

// Diag recovers a length from an area.
// unit: area um² -> um
func Diag(area float64) float64 {
	return math.Sqrt(area)
}

// Slew scales the nominal slew by a dimensionless load ratio.
// unit: load fF -> ps
func Slew(t Tech, load float64) float64 {
	return NominalSlew * (load / t.SinkCap)
}

// BadSum mixes time and capacitance.
// unit: d ps, c fF -> ps
func BadSum(d, c float64) float64 {
	return d + c // want "cannot add \"ps\" and \"fF\""
}

// BadDensity adds a capacitance to a capacitance density.
// unit: c fF -> fF
func BadDensity(t Tech, c float64) float64 {
	return c + t.CPerUm // want "cannot add \"fF\" and \"fF/µm\""
}

// BadLoad passes a wire length where a load is expected.
// unit: length um -> ps
func BadLoad(t Tech, length float64) float64 {
	return t.WireElmore(length, length) // want "argument \"load\" of WireElmore wants \"fF\", got \"µm\""
}

// BadReturn returns a capacitance as a delay.
// unit: length um -> ps
func BadReturn(t Tech, length float64) float64 {
	return t.WireCap(length) // want "returning \"fF\" where result 1 is declared \"ps\""
}

// BadSqrt takes the square root of a bare time.
// unit: d ps -> ps
func BadSqrt(d float64) float64 {
	return math.Sqrt(d) // want "math.Sqrt of \"ps\" is dimensionally incoherent"
}

// BadCompare orders a skew against a wirelength.
// unit: skew ps, wl um -> 1
func BadCompare(skew, wl float64) float64 {
	if skew > wl { // want "cannot compare \"ps\" and \"µm\""
		return 1
	}
	return 0
}

// BadStore writes a delay into a capacitance field.
// unit: d ps ->
func BadStore(n *Node, d float64) {
	n.Cap = d // want "cannot assign \"ps\" to Cap (declared \"fF\")"
}

// BadLiteral builds a node with its fields crossed.
// unit: d ps ->
func BadLiteral(d float64) Node {
	return Node{Cap: d, Delay: d} // want "field Cap declared \"fF\", got \"ps\""
}

// BadSwitch compares a delay tag against a capacitance case.
// unit: d ps, c fF -> 1
func BadSwitch(d, c float64) int {
	switch d {
	case c: // want "cannot compare \"ps\" and \"fF\""
		return 1
	}
	return 0
}

// BadLocal binds a wirelength to a locally-annotated time budget.
// unit: length um -> ps
func BadLocal(length float64) float64 {
	var budget = length // unit: ps // want "cannot assign \"µm\" to budget (declared \"ps\")"
	return budget
}

// Suppressed mixes units on purpose; the ignore directive must absorb the
// diagnostic.
// unit: d ps, c fF -> ps
func Suppressed(d, c float64) float64 {
	//lint:ignore unitflow deliberate mixed-unit fixture
	return d + c
}

// BadAnn carries a typo'd unit token, which must itself be a diagnostic.
type BadAnn struct {
	X float64 // unit: pss // want "unknown unit \"pss\""
}

// BadParamName annotates a parameter the function does not declare.
// unit: wl um -> ps
func BadParamName(length float64) float64 { // want "names parameter \"wl\""
	return 0
}
