package unitflow

import "testing"

func mustParse(t *testing.T, s string) Unit {
	t.Helper()
	u, err := ParseUnit(s)
	if err != nil {
		t.Fatalf("ParseUnit(%q): %v", s, err)
	}
	return u
}

// TestResistanceTimesCapacitanceIsTime pins the identity the whole unit
// system is built around: kΩ·fF → ps, so Elmore products type-check.
func TestResistanceTimesCapacitanceIsTime(t *testing.T) {
	r := mustParse(t, "kohm")
	c := mustParse(t, "fF")
	ps := mustParse(t, "ps")
	if got := r.Mul(c); !got.Equal(ps) {
		t.Errorf("kΩ·fF = %s, want ps", got)
	}
	// And the inverse: ps/kΩ → fF, ps/fF → kΩ.
	if got := ps.Div(r); !got.Equal(c) {
		t.Errorf("ps/kΩ = %s, want fF", got)
	}
	if got := ps.Div(c); !got.Equal(r) {
		t.Errorf("ps/fF = %s, want kΩ", got)
	}
}

// TestCapacitanceDensityTimesLengthIsCapacitance pins fF/µm · µm → fF, the
// wire-capacitance derivation.
func TestCapacitanceDensityTimesLengthIsCapacitance(t *testing.T) {
	density := mustParse(t, "fF/um")
	length := mustParse(t, "um")
	fF := mustParse(t, "fF")
	if got := density.Mul(length); !got.Equal(fF) {
		t.Errorf("fF/µm · µm = %s, want fF", got)
	}
}

func TestParseUnit(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"ps", "ps"},
		{"fF", "fF"},
		{"um", "µm"},
		{"µm", "µm"},
		{"kohm", "ps/fF"},
		{"kΩ", "ps/fF"},
		{"1", "1"},
		{"um^2", "µm²"},
		{"um²", "µm²"},
		{"um³", "µm³"},
		{"fF/um", "fF/µm"},
		{"kohm/um", "ps/(fF·µm)"},
		{"ps / fF", "ps/fF"},
		{"ps·fF", "ps·fF"},
		{"ps*fF/um", "ps·fF/µm"},
		{"1/ps", "1/ps"},
		{"kohm*fF", "ps"}, // left-to-right composition collapses
		{"ns", "ns"},
		{"1/ns", "1/ns"},
	}
	for _, tc := range cases {
		u, err := ParseUnit(tc.in)
		if err != nil {
			t.Errorf("ParseUnit(%q): %v", tc.in, err)
			continue
		}
		if got := u.String(); got != tc.want {
			t.Errorf("ParseUnit(%q).String() = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestParseUnitErrors(t *testing.T) {
	for _, in := range []string{"", "pss", "ps/", "/ps", "ps^x", "nm", "ps//fF"} {
		if _, err := ParseUnit(in); err == nil {
			t.Errorf("ParseUnit(%q): expected error", in)
		}
	}
}

func TestSqrt(t *testing.T) {
	area := mustParse(t, "um²")
	um := mustParse(t, "um")
	got, ok := area.Sqrt()
	if !ok || !got.Equal(um) {
		t.Errorf("sqrt(µm²) = %s, %v; want µm, true", got, ok)
	}
	if _, ok := mustParse(t, "ps").Sqrt(); ok {
		t.Errorf("sqrt(ps) should be incoherent")
	}
	// ps²/µm² → ps/µm: mixed even exponents halve together.
	mixed := mustParse(t, "ps²/um²")
	want := mustParse(t, "ps/um")
	if got, ok := mixed.Sqrt(); !ok || !got.Equal(want) {
		t.Errorf("sqrt(ps²/µm²) = %s, %v; want ps/µm, true", got, ok)
	}
}

func TestDimensionless(t *testing.T) {
	one := mustParse(t, "1")
	if !one.Dimensionless() {
		t.Errorf("1 should be dimensionless")
	}
	fF := mustParse(t, "fF")
	if got := fF.Div(fF); !got.Dimensionless() {
		t.Errorf("fF/fF = %s, want dimensionless", got)
	}
	if fF.Dimensionless() {
		t.Errorf("fF should not be dimensionless")
	}
}

func TestParseFuncDirective(t *testing.T) {
	fu, err := parseFuncDirective("length um, load fF -> ps")
	if err != nil {
		t.Fatal(err)
	}
	if !fu.params["length"].Equal(mustParse(t, "um")) || !fu.params["load"].Equal(mustParse(t, "fF")) {
		t.Errorf("params = %v", fu.params)
	}
	if len(fu.results) != 1 || !fu.results[0].Equal(mustParse(t, "ps")) {
		t.Errorf("results = %v", fu.results)
	}

	fu, err = parseFuncDirective("-> ps, _")
	if err != nil {
		t.Fatal(err)
	}
	if len(fu.params) != 0 || len(fu.results) != 2 || fu.results[1] != nil {
		t.Errorf("got %v / %v", fu.params, fu.results)
	}

	if _, err := parseFuncDirective("ps"); err == nil {
		t.Errorf("value-form directive on a function should be rejected")
	}
	if _, err := parseFuncDirective("x -> ps"); err == nil {
		t.Errorf("parameter without unit should be rejected")
	}
}
