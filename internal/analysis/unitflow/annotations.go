package unitflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"sllt/internal/analysis"
)

// The annotation grammar. A directive is a comment line of the form
//
//	// unit: <expr>
//
// attached to a struct field, package-level const or var (doc comment or
// trailing line comment), where <expr> is a unit expression (see ParseUnit):
//
//	RPerUm float64 // unit: kohm/um
//	SinkCap float64 // unit: fF
//
// On a field of map, slice or array type the unit describes the elements.
// Function and method doc comments use the signature form, which must
// contain "->":
//
//	// unit: length um, load fF -> ps
//	// unit: -> fF
//
// naming parameters by their declared names (unnamed parameters cannot be
// annotated) and listing result units positionally; "_" skips a position.
// Unknown unit tokens and malformed directives are themselves diagnostics,
// reported at the annotated declaration.

// directivePrefix introduces a unit annotation inside a comment.
const directivePrefix = "unit:"

// funcUnits is the parsed signature annotation of one function.
type funcUnits struct {
	params  map[string]Unit
	results []Unit // positional; nil entry = unannotated
}

// annDiag is an annotation-site problem, reported when the owning package's
// pass runs.
type annDiag struct {
	pos token.Pos
	msg string
}

// registry holds every annotation of a Run batch, keyed by stable symbol
// strings so lookups work across packages (a types.Object for tech.Tech
// loaded from export data while checking timing is a different object than
// the one from tech's own source — the string key is identity-free):
//
//	values:    "pkg/path.Name"            consts and vars
//	           "pkg/path.Type.Field"      struct fields
//	functions: "pkg/path.Name"            package functions
//	           "pkg/path.Type.Method"     methods (any receiver form)
type registry struct {
	vals  map[string]Unit
	funcs map[string]funcUnits
	diags map[string][]annDiag // by package import path
}

func newRegistry() *registry {
	return &registry{
		vals:  make(map[string]Unit),
		funcs: make(map[string]funcUnits),
		diags: make(map[string][]annDiag),
	}
}

// collectPkg scans one loaded package's syntax for unit directives.
func collectPkg(pkg *analysis.Package, reg *registry) {
	path := pkg.ImportPath
	report := func(pos token.Pos, format string, args ...any) {
		reg.diags[path] = append(reg.diags[path], annDiag{pos, fmt.Sprintf(format, args...)})
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				switch d.Tok {
				case token.CONST, token.VAR:
					collectValues(pkg, d, path, reg, report)
				case token.TYPE:
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						st, ok := ts.Type.(*ast.StructType)
						if !ok {
							continue
						}
						collectFields(pkg, ts.Name.Name, st, path, reg, report)
					}
				}
			case *ast.FuncDecl:
				collectFunc(pkg, d, path, reg, report)
			}
		}
	}
}

// collectValues records const/var annotations: on each spec's own doc or
// line comment, or on the decl's doc when it holds a single spec.
func collectValues(pkg *analysis.Package, d *ast.GenDecl, path string, reg *registry, report func(token.Pos, string, ...any)) {
	for _, spec := range d.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		text, ok := directiveIn(vs.Doc, vs.Comment)
		if !ok && len(d.Specs) == 1 {
			text, ok = directiveIn(d.Doc, nil)
		}
		if !ok {
			continue
		}
		u, err := ParseUnit(text)
		if err != nil {
			report(vs.Pos(), "bad unit annotation: %v", err)
			continue
		}
		for _, name := range vs.Names {
			if name.Name == "_" {
				continue
			}
			if obj := pkg.TypesInfo.Defs[name]; obj != nil && !numericCarrier(obj.Type()) {
				report(name.Pos(), "unit annotation %q on non-numeric %s", u, obj.Type())
				continue
			}
			reg.vals[path+"."+name.Name] = u
		}
	}
}

// collectFields records struct field annotations.
func collectFields(pkg *analysis.Package, typeName string, st *ast.StructType, path string, reg *registry, report func(token.Pos, string, ...any)) {
	for _, field := range st.Fields.List {
		text, ok := directiveIn(field.Doc, field.Comment)
		if !ok {
			continue
		}
		u, err := ParseUnit(text)
		if err != nil {
			report(field.Pos(), "bad unit annotation: %v", err)
			continue
		}
		for _, name := range field.Names {
			if obj := pkg.TypesInfo.Defs[name]; obj != nil && !numericCarrier(obj.Type()) {
				report(name.Pos(), "unit annotation %q on non-numeric %s", u, obj.Type())
				continue
			}
			reg.vals[path+"."+typeName+"."+name.Name] = u
		}
	}
}

// collectFunc records a function's signature annotation from its doc.
func collectFunc(pkg *analysis.Package, fd *ast.FuncDecl, path string, reg *registry, report func(token.Pos, string, ...any)) {
	text, ok := directiveIn(fd.Doc, nil)
	if !ok {
		return
	}
	fu, err := parseFuncDirective(text)
	if err != nil {
		report(fd.Name.Pos(), "bad unit annotation: %v", err)
		return
	}
	// Validate the named parameters against the declaration.
	declared := map[string]bool{}
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			for _, n := range f.Names {
				declared[n.Name] = true
			}
		}
	}
	for name := range fu.params {
		if !declared[name] {
			report(fd.Name.Pos(), "unit annotation names parameter %q, which %s does not declare", name, fd.Name.Name)
		}
	}
	nres := 0
	if fd.Type.Results != nil {
		for _, f := range fd.Type.Results.List {
			if n := len(f.Names); n > 0 {
				nres += n
			} else {
				nres++
			}
		}
	}
	if len(fu.results) > nres {
		report(fd.Name.Pos(), "unit annotation declares %d results, %s has %d", len(fu.results), fd.Name.Name, nres)
		return
	}
	key := path + "."
	if name := astRecvName(fd); name != "" {
		key += name + "."
	}
	key += fd.Name.Name
	reg.funcs[key] = fu
}

// directiveIn extracts the first unit directive from the given comment
// groups. The expression is cut at any embedded "//" so fixture want
// comments can share the line.
func directiveIn(groups ...*ast.CommentGroup) (string, bool) {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			text = strings.TrimSpace(strings.TrimPrefix(text, directivePrefix))
			if i := strings.Index(text, "//"); i >= 0 {
				text = strings.TrimSpace(text[:i])
			}
			return text, true
		}
	}
	return "", false
}

// parseFuncDirective parses the signature form
// "name unit, name unit -> unit, unit".
func parseFuncDirective(text string) (funcUnits, error) {
	fu := funcUnits{params: map[string]Unit{}}
	left, right, found := strings.Cut(text, "->")
	if !found {
		return fu, fmt.Errorf("function unit annotation needs the signature form %q", "name unit, ... -> unit, ...")
	}
	if left = strings.TrimSpace(left); left != "" {
		for _, part := range strings.Split(left, ",") {
			fields := strings.Fields(part)
			if len(fields) < 2 {
				return fu, fmt.Errorf("parameter annotation %q is not %q", strings.TrimSpace(part), "name unit")
			}
			u, err := ParseUnit(strings.Join(fields[1:], " "))
			if err != nil {
				return fu, err
			}
			fu.params[fields[0]] = u
		}
	}
	if right = strings.TrimSpace(right); right != "" {
		for _, part := range strings.Split(right, ",") {
			part = strings.TrimSpace(part)
			if part == "_" {
				fu.results = append(fu.results, nil)
				continue
			}
			u, err := ParseUnit(part)
			if err != nil {
				return fu, err
			}
			fu.results = append(fu.results, u)
		}
	}
	return fu, nil
}

// numericCarrier reports whether a unit annotation makes sense on t: a
// numeric type, or a slice/array/map/pointer/channel of one (the unit then
// describes the elements).
func numericCarrier(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&(types.IsNumeric) != 0
	case *types.Slice:
		return numericCarrier(u.Elem())
	case *types.Array:
		return numericCarrier(u.Elem())
	case *types.Map:
		return numericCarrier(u.Elem())
	case *types.Pointer:
		return numericCarrier(u.Elem())
	case *types.Chan:
		return numericCarrier(u.Elem())
	}
	return false
}

// astRecvName returns the receiver type name of a method declaration.
func astRecvName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.ParenExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// Lookup helpers used by the dataflow pass. They key by the defining
// package of the object, so cross-package references resolve as long as the
// defining package was part of the Run batch.

// valUnit resolves a package-level const/var annotation.
func (r *registry) valUnit(obj types.Object) (Unit, bool) {
	if obj == nil || obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
		return nil, false
	}
	u, ok := r.vals[obj.Pkg().Path()+"."+obj.Name()]
	return u, ok
}

// fieldUnit resolves a struct field annotation given the field object and
// the receiver type it was selected from.
func (r *registry) fieldUnit(field *types.Var, recv types.Type) (Unit, bool) {
	if field == nil || field.Pkg() == nil {
		return nil, false
	}
	name := recvTypeName(recv)
	if name == "" {
		return nil, false
	}
	u, ok := r.vals[field.Pkg().Path()+"."+name+"."+field.Name()]
	return u, ok
}

// funcUnitsOf resolves a function or method annotation.
func (r *registry) funcUnitsOf(fn *types.Func) (funcUnits, bool) {
	if fn == nil || fn.Pkg() == nil {
		return funcUnits{}, false
	}
	key := fn.Pkg().Path() + "."
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		name := recvTypeName(sig.Recv().Type())
		if name == "" {
			return funcUnits{}, false
		}
		key += name + "."
	}
	key += fn.Name()
	fu, ok := r.funcs[key]
	return fu, ok
}

// recvTypeName peels pointers and type parameters down to the named
// receiver type's name.
func recvTypeName(t types.Type) string {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			return x.Obj().Name()
		default:
			return ""
		}
	}
}
