// Package unitflow checks physical-unit consistency across the CTS code.
//
// The repository computes in a fixed unit system (length µm, capacitance fF,
// resistance kΩ, time ps, chosen so 1 kΩ · 1 fF = 1 ps). Those units live
// only in prose comments; nothing stops a wirelength from being added to a
// latency. unitflow turns the prose into machine-checked annotations: struct
// fields, consts, vars and function signatures declare units in doc comments
// (see annotations.go for the grammar), and an intraprocedural forward
// dataflow pass propagates them through assignments, arithmetic, calls and
// returns.
//
// The algebra is dimensional: + - and comparisons require equal units, * and
// / compose them (kΩ·fF → ps, fF/µm · µm → fF), math.Sqrt halves exponents
// (odd exponents are incoherent and reported). Three value states keep the
// checker sound but quiet: a quantity is unknown (unannotated — never
// checked), scalar (constants and counts — polymorphic, adopts the other
// operand), or known (carries a Unit — checked everywhere it meets another
// known). The pass is a single forward walk per function: no fixpoint over
// loop back-edges, so a unit learned late in a loop body is not visible at
// the loop head. That trades a little recall for zero spurious reports on
// the reconvergence patterns real CTS code is full of.
package unitflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"sllt/internal/analysis"
)

// Analyzer is the unitflow pass.
var Analyzer = &analysis.Analyzer{
	Name:    "unitflow",
	Doc:     "check physical-unit consistency (ps, fF, µm, kΩ) of annotated quantities",
	URL:     "DESIGN.md#units--static-verification",
	Prepare: prepare,
	Run:     run,
}

// reg is the annotation registry of the current Run batch, built by Prepare
// and read-only afterwards (passes may run concurrently).
var reg *registry

func prepare(pkgs []*analysis.Package) error {
	reg = newRegistry()
	for _, pkg := range pkgs {
		collectPkg(pkg, reg)
	}
	return nil
}

func run(pass *analysis.Pass) error {
	for _, d := range reg.diags[pass.Pkg.Path()] {
		pass.Reportf(d.pos, "%s", d.msg)
	}
	c := &checker{pass: pass, reg: reg}
	for _, f := range pass.Files {
		if analysis.SkipFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				c.checkFunc(d)
			case *ast.GenDecl:
				if d.Tok == token.VAR {
					c.env = make(map[types.Object]uval)
					c.results = nil
					for _, spec := range d.Specs {
						if vs, ok := spec.(*ast.ValueSpec); ok {
							c.valueSpec(vs, true)
						}
					}
				}
			}
		}
	}
	return nil
}

// vkind classifies what the checker knows about a value's unit.
type vkind int

const (
	vUnknown vkind = iota // no information; never participates in checks
	vScalar               // dimensionless by construction (literals, counts); adopts the other operand
	vKnown                // carries a definite Unit
)

// uval is the abstract value of the dataflow lattice.
type uval struct {
	k vkind
	u Unit
}

func known(u Unit) uval { return uval{vKnown, u} }
func scalar() uval      { return uval{k: vScalar} }

type checker struct {
	pass *analysis.Pass
	reg  *registry

	// env maps local objects (params, locals) to their inferred units.
	env map[types.Object]uval
	// results is a stack of declared result units, innermost function last;
	// a nil entry means the enclosing function's results are unannotated.
	results [][]Unit
}

// checkFunc analyzes one function body with a fresh environment seeded from
// the function's parameter annotations.
func (c *checker) checkFunc(fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	c.env = make(map[types.Object]uval)
	var fu funcUnits
	if obj, ok := c.pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
		fu, _ = c.reg.funcUnitsOf(obj)
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				u, ok := fu.params[name.Name]
				if !ok {
					continue
				}
				if obj := c.pass.TypesInfo.Defs[name]; obj != nil {
					c.env[obj] = known(u)
				}
			}
		}
	}
	c.results = [][]Unit{fu.results}
	c.stmt(fd.Body)
	c.results = nil
}

// ---- statements ----

func (c *checker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, t := range s.List {
			c.stmt(t)
		}
	case *ast.ExprStmt:
		c.expr(s.X)
	case *ast.AssignStmt:
		c.assign(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					c.valueSpec(vs, false)
				}
			}
		}
	case *ast.ReturnStmt:
		c.ret(s)
	case *ast.IfStmt:
		c.stmt(s.Init)
		c.expr(s.Cond)
		c.stmt(s.Body)
		c.stmt(s.Else)
	case *ast.ForStmt:
		c.stmt(s.Init)
		if s.Cond != nil {
			c.expr(s.Cond)
		}
		c.stmt(s.Post)
		c.stmt(s.Body)
	case *ast.RangeStmt:
		c.rangeStmt(s)
	case *ast.SwitchStmt:
		c.switchStmt(s)
	case *ast.TypeSwitchStmt:
		c.stmt(s.Init)
		c.stmt(s.Assign)
		c.stmt(s.Body)
	case *ast.IncDecStmt:
		c.expr(s.X)
	case *ast.DeferStmt:
		c.expr(s.Call)
	case *ast.GoStmt:
		c.expr(s.Call)
	case *ast.SendStmt:
		c.expr(s.Chan)
		c.expr(s.Value)
	case *ast.SelectStmt:
		c.stmt(s.Body)
	case *ast.CommClause:
		c.stmt(s.Comm)
		for _, t := range s.Body {
			c.stmt(t)
		}
	case *ast.CaseClause:
		for _, e := range s.List {
			c.expr(e)
		}
		for _, t := range s.Body {
			c.stmt(t)
		}
	case *ast.LabeledStmt:
		c.stmt(s.Stmt)
	}
}

// switchStmt checks each case expression against the tag's unit — a switch
// tag comparison is a comparison like any other.
func (c *checker) switchStmt(s *ast.SwitchStmt) {
	c.stmt(s.Init)
	var tag uval
	if s.Tag != nil {
		tag = c.expr(s.Tag)
	}
	for _, cl := range s.Body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			v := c.expr(e)
			if s.Tag != nil {
				c.requireSame(e.Pos(), "compare", tag, v)
			}
		}
		for _, t := range cc.Body {
			c.stmt(t)
		}
	}
}

// rangeStmt binds range variables: over a slice/array the key is a
// dimensionless index and the value takes the container's element unit;
// over a map only the value does (units annotate elements); ranging over an
// integer yields values in the integer's own unit.
func (c *checker) rangeStmt(s *ast.RangeStmt) {
	x := c.expr(s.X)
	keyVal, elemVal := scalar(), x
	if t := c.pass.TypeOf(s.X); t != nil {
		switch t.Underlying().(type) {
		case *types.Basic: // range over int
			keyVal, elemVal = x, uval{}
		case *types.Map:
			keyVal = uval{}
		case *types.Chan:
			keyVal, elemVal = x, uval{}
		}
	}
	bind := func(e ast.Expr, v uval) {
		if e == nil {
			return
		}
		if id, ok := skipParens(e).(*ast.Ident); ok && s.Tok == token.DEFINE {
			c.bindDefine(id, v)
			return
		}
		c.store(e, v, e.Pos())
	}
	bind(s.Key, keyVal)
	bind(s.Value, elemVal)
	c.stmt(s.Body)
}

// ret checks return values against the enclosing function's declared
// result units.
func (c *checker) ret(s *ast.ReturnStmt) {
	var want []Unit
	if len(c.results) > 0 {
		want = c.results[len(c.results)-1]
	}
	if len(s.Results) == 0 {
		return // naked return: named results are not tracked
	}
	var vals []uval
	if len(s.Results) == 1 && len(want) > 1 {
		call, ok := skipParens(s.Results[0]).(*ast.CallExpr)
		if !ok {
			c.expr(s.Results[0])
			return
		}
		vals = c.call(call)
	} else {
		for _, e := range s.Results {
			vals = append(vals, c.expr(e))
		}
	}
	for i, w := range want {
		if w == nil || i >= len(vals) {
			continue
		}
		if v := vals[i]; v.k == vKnown && !v.u.Equal(w) {
			pos := s.Results[0].Pos()
			if i < len(s.Results) {
				pos = s.Results[i].Pos()
			}
			c.pass.Reportf(pos, "unit mismatch: returning %q where result %d is declared %q", v.u, i+1, w)
		}
	}
}

// valueSpec handles var declarations. Top-level specs resolve annotations
// through the registry (collectPkg already parsed and validated them);
// local specs parse their own trailing // unit: directive here, so every
// annotation in a body is consumed too.
func (c *checker) valueSpec(vs *ast.ValueSpec, topLevel bool) {
	var declared Unit
	if !topLevel {
		if text, ok := directiveIn(vs.Doc, vs.Comment); ok {
			u, err := ParseUnit(text)
			if err != nil {
				c.pass.Reportf(vs.Pos(), "bad unit annotation: %v", err)
			} else {
				declared = u
			}
		}
	}
	if len(vs.Values) == 1 && len(vs.Names) > 1 {
		var vals []uval
		if call, ok := skipParens(vs.Values[0]).(*ast.CallExpr); ok {
			vals = c.call(call)
		} else {
			c.expr(vs.Values[0])
		}
		for i, name := range vs.Names {
			var v uval
			if i < len(vals) {
				v = vals[i]
			}
			c.bindVar(name, v, declared, vs.Values[0].Pos())
		}
		return
	}
	for i, name := range vs.Names {
		var v uval
		pos := name.Pos()
		if i < len(vs.Values) {
			v = c.expr(vs.Values[i])
			pos = vs.Values[i].Pos()
		}
		c.bindVar(name, v, declared, pos)
	}
}

// bindVar binds a declared variable: registry annotation first (top-level),
// then the local directive, then the inferred value.
func (c *checker) bindVar(name *ast.Ident, v uval, declared Unit, pos token.Pos) {
	if name.Name == "_" {
		return
	}
	obj := c.pass.TypesInfo.Defs[name]
	if obj == nil {
		return
	}
	if u, ok := c.reg.valUnit(obj); ok {
		c.checkStore(pos, v, u, name.Name)
		return // ident() resolves through the registry
	}
	if declared != nil {
		c.checkStore(pos, v, declared, name.Name)
		c.env[obj] = known(declared)
		return
	}
	if v.k != vUnknown {
		c.env[obj] = v
	}
}

// assign handles every assignment operator.
func (c *checker) assign(as *ast.AssignStmt) {
	switch as.Tok {
	case token.DEFINE:
		if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
			vals := c.multiValue(as.Rhs[0])
			for i, lhs := range as.Lhs {
				var v uval
				if i < len(vals) {
					v = vals[i]
				}
				if id, ok := skipParens(lhs).(*ast.Ident); ok {
					c.bindDefine(id, v)
				}
			}
			return
		}
		for i, lhs := range as.Lhs {
			var v uval
			if i < len(as.Rhs) {
				v = c.expr(as.Rhs[i])
			}
			if id, ok := skipParens(lhs).(*ast.Ident); ok {
				c.bindDefine(id, v)
			}
		}
	case token.ASSIGN:
		if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
			vals := c.multiValue(as.Rhs[0])
			for i, lhs := range as.Lhs {
				var v uval
				if i < len(vals) {
					v = vals[i]
				}
				c.store(lhs, v, as.Rhs[0].Pos())
			}
			return
		}
		for i, lhs := range as.Lhs {
			var v uval
			pos := lhs.Pos()
			if i < len(as.Rhs) {
				v = c.expr(as.Rhs[i])
				pos = as.Rhs[i].Pos()
			}
			c.store(lhs, v, pos)
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		t := c.expr(as.Lhs[0])
		v := c.expr(as.Rhs[0])
		verb := "add"
		if as.Tok == token.SUB_ASSIGN {
			verb = "subtract"
		}
		merged := c.requireSame(as.TokPos, verb, t, v)
		// An accumulator initialized from a bare literal (s := 0.0) learns
		// its unit from the first dimensioned += so later uses are checked.
		if t.k != vKnown && merged.k == vKnown {
			if id, ok := skipParens(as.Lhs[0]).(*ast.Ident); ok {
				if obj := c.objOf(id); obj != nil {
					if _, ann := c.reg.valUnit(obj); !ann {
						c.env[obj] = merged
					}
				}
			}
		}
	case token.MUL_ASSIGN, token.QUO_ASSIGN:
		t := c.expr(as.Lhs[0])
		v := c.expr(as.Rhs[0])
		res := c.mulDiv(t, v, as.Tok == token.QUO_ASSIGN)
		c.store(as.Lhs[0], res, as.TokPos)
	default: // bitwise compound ops: evaluate for side effects only
		for _, lhs := range as.Lhs {
			c.expr(lhs)
		}
		for _, rhs := range as.Rhs {
			c.expr(rhs)
		}
	}
}

// multiValue evaluates the single rhs of a tuple assignment, returning
// per-position units when it is an annotated call.
func (c *checker) multiValue(rhs ast.Expr) []uval {
	if call, ok := skipParens(rhs).(*ast.CallExpr); ok {
		return c.call(call)
	}
	c.expr(rhs)
	return nil
}

// bindDefine binds a := target (Defs for fresh names, Uses for the
// redeclaration case).
func (c *checker) bindDefine(id *ast.Ident, v uval) {
	if id.Name == "_" {
		return
	}
	obj := c.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = c.pass.TypesInfo.Uses[id]
	}
	if obj == nil {
		return
	}
	if v.k == vUnknown {
		delete(c.env, obj)
	} else {
		c.env[obj] = v
	}
}

// store assigns v to an lvalue: annotated targets are checked, plain local
// idents are rebound, and an indexed store into a unit-less local container
// teaches the container its element unit.
func (c *checker) store(lhs ast.Expr, v uval, pos token.Pos) {
	switch l := skipParens(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		obj := c.objOf(l)
		if obj == nil {
			return
		}
		if u, ok := c.reg.valUnit(obj); ok {
			c.checkStore(pos, v, u, l.Name)
			return
		}
		if v.k == vUnknown {
			delete(c.env, obj)
		} else {
			c.env[obj] = v
		}
	case *ast.SelectorExpr:
		cur := c.selector(l)
		if cur.k == vKnown {
			c.checkStore(pos, v, cur.u, l.Sel.Name)
		}
	case *ast.IndexExpr:
		c.expr(l.Index)
		cur := c.expr(l.X)
		if cur.k == vKnown {
			c.checkStore(pos, v, cur.u, lvalueName(l.X))
			return
		}
		if id, ok := skipParens(l.X).(*ast.Ident); ok && v.k != vUnknown {
			if obj := c.objOf(id); obj != nil {
				if _, ann := c.reg.valUnit(obj); !ann {
					if _, exists := c.env[obj]; !exists {
						c.env[obj] = v
					}
				}
			}
		}
	case *ast.StarExpr:
		cur := c.expr(l.X)
		if cur.k == vKnown {
			c.checkStore(pos, v, cur.u, lvalueName(l.X))
		}
	default:
		c.expr(lhs)
	}
}

func (c *checker) checkStore(pos token.Pos, v uval, declared Unit, name string) {
	if v.k == vKnown && !v.u.Equal(declared) {
		c.pass.Reportf(pos, "unit mismatch: cannot assign %q to %s (declared %q)", v.u, name, declared)
	}
}

// ---- expressions ----

func (c *checker) expr(e ast.Expr) uval {
	switch e := e.(type) {
	case nil:
		return uval{}
	case *ast.ParenExpr:
		return c.expr(e.X)
	case *ast.BasicLit:
		return scalar()
	case *ast.Ident:
		return c.ident(e)
	case *ast.SelectorExpr:
		return c.selector(e)
	case *ast.CallExpr:
		if vs := c.call(e); len(vs) > 0 {
			return vs[0]
		}
		return uval{}
	case *ast.BinaryExpr:
		return c.binary(e)
	case *ast.UnaryExpr:
		v := c.expr(e.X)
		switch e.Op {
		case token.ADD, token.SUB:
			return v
		}
		return uval{}
	case *ast.StarExpr:
		return c.expr(e.X)
	case *ast.IndexExpr:
		c.expr(e.Index)
		return c.expr(e.X) // units annotate elements
	case *ast.SliceExpr:
		c.expr(e.Low)
		c.expr(e.High)
		c.expr(e.Max)
		return c.expr(e.X)
	case *ast.CompositeLit:
		return c.composite(e)
	case *ast.FuncLit:
		// The body is analyzed in the current env so captured locals keep
		// their units; the literal's own results are unannotated.
		c.results = append(c.results, nil)
		c.stmt(e.Body)
		c.results = c.results[:len(c.results)-1]
		return uval{}
	case *ast.TypeAssertExpr:
		c.expr(e.X)
		return uval{}
	}
	return uval{}
}

func (c *checker) ident(id *ast.Ident) uval {
	obj := c.objOf(id)
	if obj == nil {
		return uval{}
	}
	if u, ok := c.reg.valUnit(obj); ok {
		return known(u)
	}
	if v, ok := c.env[obj]; ok {
		return v
	}
	if _, isConst := obj.(*types.Const); isConst {
		return scalar()
	}
	if tv, ok := c.pass.TypesInfo.Types[id]; ok && tv.Value != nil {
		return scalar()
	}
	return uval{}
}

func (c *checker) selector(sel *ast.SelectorExpr) uval {
	// Qualified identifier: pkg.Name.
	if c.pass.ImportedPkgOf(sel) != "" {
		obj := c.pass.TypesInfo.Uses[sel.Sel]
		if u, ok := c.reg.valUnit(obj); ok {
			return known(u)
		}
		if _, isConst := obj.(*types.Const); isConst {
			return scalar()
		}
		return uval{}
	}
	// Field or method selection.
	c.expr(sel.X)
	if s, ok := c.pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if f, ok := s.Obj().(*types.Var); ok {
			if u, ok := c.reg.fieldUnit(f, s.Recv()); ok {
				return known(u)
			}
		}
	}
	return uval{}
}

func (c *checker) binary(b *ast.BinaryExpr) uval {
	x := c.expr(b.X)
	y := c.expr(b.Y)
	switch b.Op {
	case token.ADD, token.SUB:
		if t := c.pass.TypeOf(b.X); t != nil && !isNumeric(t) {
			return uval{} // string concatenation
		}
		verb := "add"
		if b.Op == token.SUB {
			verb = "subtract"
		}
		return c.requireSame(b.OpPos, verb, x, y)
	case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		c.requireSame(b.OpPos, "compare", x, y)
		return uval{}
	case token.MUL:
		return c.mulDiv(x, y, false)
	case token.QUO:
		return c.mulDiv(x, y, true)
	case token.REM:
		return c.requireSame(b.OpPos, "take the remainder of", x, y)
	}
	return uval{}
}

// requireSame enforces the same-unit rule of + - comparisons: two known
// units must be equal; a known operand dominates scalar and unknown ones.
func (c *checker) requireSame(pos token.Pos, verb string, a, b uval) uval {
	if a.k == vKnown && b.k == vKnown {
		if !a.u.Equal(b.u) {
			c.pass.Reportf(pos, "unit mismatch: cannot %s %q and %q", verb, a.u.String(), b.u.String())
		}
		return a
	}
	if a.k == vKnown {
		return a
	}
	if b.k == vKnown {
		return b
	}
	if a.k == vScalar && b.k == vScalar {
		return scalar()
	}
	return uval{}
}

// mulDiv composes units through * and /: exponents add or subtract, scalars
// are absorbed, and a scalar numerator inverts the denominator (1/kΩ).
func (c *checker) mulDiv(x, y uval, div bool) uval {
	switch {
	case x.k == vKnown && y.k == vKnown:
		if div {
			return known(x.u.Div(y.u))
		}
		return known(x.u.Mul(y.u))
	case x.k == vKnown && y.k == vScalar:
		return x
	case y.k == vKnown && x.k == vScalar:
		if div {
			return known(Unit{}.Div(y.u))
		}
		return y
	case x.k == vScalar && y.k == vScalar:
		return scalar()
	}
	return uval{}
}

// call evaluates a call expression, checks annotated parameters, and
// returns the per-result units.
func (c *checker) call(call *ast.CallExpr) []uval {
	// Type conversion: float64(x) keeps x's unit.
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return []uval{c.expr(call.Args[0])}
		}
	}
	// Builtins.
	if id, ok := skipParens(call.Fun).(*ast.Ident); ok {
		if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			return c.builtin(b.Name(), call)
		}
	}
	// math.* gets dimensional treatment.
	if sel, ok := skipParens(call.Fun).(*ast.SelectorExpr); ok && c.pass.ImportedPkgOf(sel) == "math" {
		return c.mathCall(sel.Sel.Name, call)
	}
	// Resolve the callee and evaluate the callee expression's own parts.
	var fn *types.Func
	switch f := skipParens(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = c.pass.TypesInfo.Uses[f].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = c.pass.TypesInfo.Uses[f.Sel].(*types.Func)
		if _, ok := c.pass.TypesInfo.Selections[f]; ok {
			c.expr(f.X) // method receiver
		}
	default:
		c.expr(call.Fun)
	}
	args := make([]uval, len(call.Args))
	for i, a := range call.Args {
		args[i] = c.expr(a)
	}
	if fn != nil {
		if fu, ok := c.reg.funcUnitsOf(fn); ok {
			if sig, ok := fn.Type().(*types.Signature); ok {
				c.checkArgs(call, fn, fu, sig, args)
				n := sig.Results().Len()
				out := make([]uval, n)
				for i := 0; i < n && i < len(fu.results); i++ {
					if fu.results[i] != nil {
						out[i] = known(fu.results[i])
					}
				}
				if len(out) == 0 {
					out = []uval{{}}
				}
				return out
			}
		}
	}
	return []uval{{}}
}

// checkArgs matches call arguments against the callee's parameter
// annotations by declared parameter name.
func (c *checker) checkArgs(call *ast.CallExpr, fn *types.Func, fu funcUnits, sig *types.Signature, args []uval) {
	np := sig.Params().Len()
	for i := range call.Args {
		pi := i
		if sig.Variadic() && pi >= np-1 {
			pi = np - 1
		}
		if pi >= np {
			break
		}
		name := sig.Params().At(pi).Name()
		want, ok := fu.params[name]
		if !ok {
			continue
		}
		if got := args[i]; got.k == vKnown && !got.u.Equal(want) {
			c.pass.Reportf(call.Args[i].Pos(),
				"unit mismatch: argument %q of %s wants %q, got %q", name, fn.Name(), want, got.u)
		}
	}
}

// builtin models the handful of builtins whose results carry units.
func (c *checker) builtin(name string, call *ast.CallExpr) []uval {
	switch name {
	case "len", "cap":
		for _, a := range call.Args {
			c.expr(a)
		}
		return []uval{scalar()}
	case "append":
		var first uval
		for i, a := range call.Args {
			v := c.expr(a)
			if i == 0 {
				first = v
			}
		}
		return []uval{first}
	case "min", "max":
		var out uval
		for i, a := range call.Args {
			v := c.expr(a)
			if i == 0 {
				out = v
			} else {
				out = c.requireSame(a.Pos(), "compare", out, v)
			}
		}
		return []uval{out}
	default:
		for _, a := range call.Args {
			c.expr(a)
		}
		return []uval{{}}
	}
}

// mathCall models the math functions the CTS code leans on. Sqrt halves
// exponents (reporting when one is odd), Min/Max/Mod/Hypot require equal
// units, Abs and the rounders pass units through, Log/Exp demand (and
// yield) dimensionless values when their argument's unit is known.
func (c *checker) mathCall(name string, call *ast.CallExpr) []uval {
	args := make([]uval, len(call.Args))
	for i, a := range call.Args {
		args[i] = c.expr(a)
	}
	one := func(v uval) []uval { return []uval{v} }
	switch name {
	case "Abs", "Ceil", "Floor", "Round", "Trunc":
		if len(args) == 1 {
			return one(args[0])
		}
	case "Sqrt":
		if len(args) == 1 {
			if args[0].k != vKnown {
				return one(args[0])
			}
			if u, ok := args[0].u.Sqrt(); ok {
				return one(known(u))
			}
			c.pass.Reportf(call.Pos(),
				"unit mismatch: math.Sqrt of %q is dimensionally incoherent (odd exponent)", args[0].u)
			return one(uval{})
		}
	case "Min", "Max", "Mod", "Hypot", "Dim", "Remainder":
		if len(args) == 2 {
			return one(c.requireSame(call.Args[1].Pos(), "combine", args[0], args[1]))
		}
	case "Inf", "NaN":
		return one(scalar())
	case "Log", "Log2", "Log10", "Log1p", "Exp", "Exp2", "Expm1":
		if len(args) == 1 {
			if args[0].k == vKnown && !args[0].u.Dimensionless() {
				c.pass.Reportf(call.Args[0].Pos(),
					"unit mismatch: math.%s of dimensioned quantity %q", name, args[0].u)
				return one(uval{})
			}
			if args[0].k != vUnknown {
				return one(known(Unit{}))
			}
		}
		return one(uval{})
	case "Pow":
		return one(uval{})
	}
	return []uval{{}}
}

// composite checks struct literals against field annotations (keyed and
// positional forms) and evaluates everything else for side effects.
func (c *checker) composite(cl *ast.CompositeLit) uval {
	t := c.pass.TypeOf(cl)
	var st *types.Struct
	if t != nil {
		if s, ok := t.Underlying().(*types.Struct); ok {
			st = s
		}
	}
	for i, el := range cl.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			v := c.expr(kv.Value)
			if key, ok := kv.Key.(*ast.Ident); ok && st != nil {
				if f, ok := c.pass.TypesInfo.Uses[key].(*types.Var); ok {
					if u, ok := c.reg.fieldUnit(f, t); ok && v.k == vKnown && !v.u.Equal(u) {
						c.pass.Reportf(kv.Value.Pos(),
							"unit mismatch: field %s declared %q, got %q", key.Name, u, v.u)
					}
				}
			} else if !ok {
				c.expr(kv.Key) // map literal key
			}
			continue
		}
		v := c.expr(el)
		if st != nil && i < st.NumFields() {
			f := st.Field(i)
			if u, ok := c.reg.fieldUnit(f, t); ok && v.k == vKnown && !v.u.Equal(u) {
				c.pass.Reportf(el.Pos(),
					"unit mismatch: field %s declared %q, got %q", f.Name(), u, v.u)
			}
		}
	}
	return uval{}
}

// ---- small helpers ----

func (c *checker) objOf(id *ast.Ident) types.Object {
	if o := c.pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return c.pass.TypesInfo.Defs[id]
}

func skipParens(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func lvalueName(e ast.Expr) string {
	switch e := skipParens(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return "element"
}

func isNumeric(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}
