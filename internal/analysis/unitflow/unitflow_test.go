package unitflow_test

import (
	"testing"

	"sllt/internal/analysis"
	"sllt/internal/analysis/unitflow"
)

func TestUnitFlow(t *testing.T) {
	analysis.RunTest(t, unitflow.Analyzer, "testdata/src/elmore")
}
