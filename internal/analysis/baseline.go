package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// A Baseline is a committed inventory of accepted findings. Gating lint
// against a baseline means pre-existing diagnostics do not fail CI while
// every new one does — the standard way to adopt a new analyzer over a tree
// that already has findings without drowning the signal.
//
// Entries match on (file, analyzer, message), deliberately not on line
// numbers: unrelated edits move lines constantly, and a baseline that
// churns with them would be regenerated on every commit, defeating its
// purpose. Count bounds how many identical findings one entry absorbs, so
// duplicating an already-baselined mistake still fails the gate.
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

// A BaselineEntry identifies one accepted finding class.
type BaselineEntry struct {
	File     string `json:"file"` // module-root-relative, slash-separated
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Count    int    `json:"count"` // identical findings absorbed (>= 1)
}

// LoadBaseline reads a baseline file. A missing file is not an error: it
// loads as the empty baseline, so the flag can point at a path that only
// exists once findings are accepted.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{Version: 1}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: baseline: %v", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("analysis: baseline %s: %v", path, err)
	}
	if b.Version != 1 {
		return nil, fmt.Errorf("analysis: baseline %s: unsupported version %d", path, b.Version)
	}
	return &b, nil
}

// Filter returns the diagnostics not absorbed by the baseline. Paths are
// relativized against root before matching, mirroring how WriteBaseline
// records them.
func (b *Baseline) Filter(diags []Diagnostic, root string) []Diagnostic {
	type key struct{ file, analyzer, message string }
	budget := make(map[key]int)
	for _, e := range b.Findings {
		n := e.Count
		if n < 1 {
			n = 1
		}
		budget[key{e.File, e.Analyzer, e.Message}] += n
	}
	var out []Diagnostic
	for _, d := range diags {
		k := key{RelPath(root, d.Position.Filename), d.Analyzer, d.Message}
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		out = append(out, d)
	}
	return out
}

// NewBaseline converts a set of diagnostics into a baseline accepting
// exactly those findings, with deterministic entry order.
func NewBaseline(diags []Diagnostic, root string) *Baseline {
	type key struct{ file, analyzer, message string }
	counts := make(map[key]int)
	var order []key
	for _, d := range diags {
		k := key{RelPath(root, d.Position.Filename), d.Analyzer, d.Message}
		if counts[k] == 0 {
			order = append(order, k)
		}
		counts[k]++
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.analyzer != b.analyzer {
			return a.analyzer < b.analyzer
		}
		return a.message < b.message
	})
	out := &Baseline{Version: 1, Findings: []BaselineEntry{}}
	for _, k := range order {
		out.Findings = append(out.Findings, BaselineEntry{
			File: k.file, Analyzer: k.analyzer, Message: k.message, Count: counts[k],
		})
	}
	return out
}

// WriteBaseline writes the baseline as indented JSON.
func WriteBaseline(path string, b *Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
