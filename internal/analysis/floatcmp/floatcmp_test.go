package floatcmp_test

import (
	"testing"

	"sllt/internal/analysis"
	"sllt/internal/analysis/floatcmp"
)

func TestFloatCmp(t *testing.T) {
	analysis.RunTest(t, floatcmp.Analyzer,
		"testdata/src/dme",    // positive: geometry-scope basename
		"testdata/src/report", // negative: out-of-scope package
	)
}
