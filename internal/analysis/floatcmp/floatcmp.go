// Package floatcmp flags `==` and `!=` between floating-point expressions
// in the geometry and timing packages. DME coordinates, Elmore delays and
// path lengths accumulate rounding error, so exact comparison silently
// turns into branch nondeterminism across refactors (and across FMA
// differences between architectures). The compliant idiom is the epsilon
// helpers in internal/geom: geom.AlmostEqual(a, b) for equality and
// geom.Sign(x) for three-way tests against zero.
package floatcmp

import (
	"go/ast"
	"go/token"

	"sllt/internal/analysis"
)

// GeometryPackages are the package basenames the rule applies to: code
// computing with coordinates, wirelengths or delays.
var GeometryPackages = map[string]bool{
	"geom":   true,
	"dme":    true,
	"timing": true,
	"tree":   true,
	"cts":    true,
}

// Analyzer is the floatcmp rule.
var Analyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc:  "flags ==/!= on floating-point operands in geometry/timing code; use geom.AlmostEqual or geom.Sign",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !GeometryPackages[pass.PkgBase()] {
		return nil
	}
	pass.Preorder(func(n ast.Node) {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return
		}
		xt, yt := pass.TypeOf(be.X), pass.TypeOf(be.Y)
		if xt == nil || yt == nil {
			return
		}
		if !analysis.IsFloat(xt) && !analysis.IsFloat(yt) {
			return
		}
		helper := "geom.AlmostEqual"
		if be.Op == token.NEQ {
			helper = "!geom.AlmostEqual"
		}
		pass.Reportf(be.OpPos,
			"exact float comparison (%s) on inexact quantities; use %s (or geom.Sign for zero tests)",
			be.Op, helper)
	})
	return nil
}
