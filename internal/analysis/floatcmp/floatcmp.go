// Package floatcmp flags exact floating-point equality in the geometry and
// timing packages: `==` and `!=` between float expressions, switch
// statements whose tag is a float (every case arm is an implicit ==), and
// map types keyed by floats or float-bearing structs (lookups hash exact
// bits). DME coordinates, Elmore delays and path lengths accumulate
// rounding error, so exact comparison silently turns into branch
// nondeterminism across refactors (and across FMA differences between
// architectures). The compliant idioms are the epsilon helpers in
// internal/geom — geom.AlmostEqual(a, b) for equality, geom.Sign(x) for
// three-way tests against zero — and integer-quantized map keys.
package floatcmp

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"

	"sllt/internal/analysis"
)

// GeometryPackages are the package basenames the rule applies to: code
// computing with coordinates, wirelengths or delays.
var GeometryPackages = map[string]bool{
	"geom":   true,
	"dme":    true,
	"timing": true,
	"tree":   true,
	"cts":    true,
}

// Analyzer is the floatcmp rule.
var Analyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc:  "flags ==/!= on floating-point operands in geometry/timing code; use geom.AlmostEqual or geom.Sign",
	URL:  "DESIGN.md#determinism--invariants",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !GeometryPackages[pass.PkgBase()] {
		return nil
	}
	pass.Preorder(func(n ast.Node) {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			checkBinary(pass, n)
		case *ast.SwitchStmt:
			checkSwitchTag(pass, n)
		case *ast.MapType:
			checkMapKey(pass, n)
		}
	})
	return nil
}

func checkBinary(pass *analysis.Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	xt, yt := pass.TypeOf(be.X), pass.TypeOf(be.Y)
	if xt == nil || yt == nil {
		return
	}
	if !analysis.IsFloat(xt) && !analysis.IsFloat(yt) {
		return
	}
	helper := "geom.AlmostEqual"
	if be.Op == token.NEQ {
		helper = "!geom.AlmostEqual"
	}
	msg := fmt.Sprintf(
		"exact float comparison (%s) on inexact quantities; use %s (or geom.Sign for zero tests)",
		be.Op, helper)
	var x, y bytes.Buffer
	if printer.Fprint(&x, pass.Fset, be.X) == nil && printer.Fprint(&y, pass.Fset, be.Y) == nil {
		pass.ReportFix(be.OpPos, analysis.SuggestedFix{
			Message: "replace with " + helper,
			Edits: []analysis.TextEdit{{
				Pos:     be.Pos(),
				End:     be.End(),
				NewText: fmt.Sprintf("%s(%s, %s)", helper, x.String(), y.String()),
			}},
		}, "%s", msg)
		return
	}
	pass.Reportf(be.OpPos, "%s", msg)
}

// checkSwitchTag flags `switch x { case y: }` with a floating-point tag:
// every case arm is an implicit == against the tag, with exactly the
// rounding hazards of a written-out comparison.
func checkSwitchTag(pass *analysis.Pass, s *ast.SwitchStmt) {
	if s.Tag == nil {
		return
	}
	t := pass.TypeOf(s.Tag)
	if t == nil || !analysis.IsFloat(t) {
		return
	}
	pass.Reportf(s.Tag.Pos(),
		"switch on floating-point tag compares exactly per case; rewrite as if/else with geom.AlmostEqual")
}

// checkMapKey flags map types keyed by floats: lookups hash the exact bit
// pattern, so two values a rounding error apart index different entries
// (and NaN keys are unretrievable).
func checkMapKey(pass *analysis.Pass, mt *ast.MapType) {
	t := pass.TypeOf(mt.Key)
	if t == nil || !isFloatKey(t) {
		return
	}
	pass.Reportf(mt.Key.Pos(),
		"map keyed by floating-point type %s: exact-bit lookups on inexact quantities; key by a quantized or integer form", t)
}

// isFloatKey reports whether a map key type hashes floating-point bits:
// floats themselves and structs/arrays with float components (geom.Pt).
func isFloatKey(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&(types.IsFloat|types.IsComplex) != 0
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if isFloatKey(u.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return isFloatKey(u.Elem())
	}
	return false
}
