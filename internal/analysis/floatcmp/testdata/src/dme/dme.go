// Package dme is the positive floatcmp fixture: its basename puts it in
// the geometry/timing scope.
package dme

type point struct{ X, Y float64 }

// Flagged: exact equality between float64 expressions.
func Collinear(a, b point) bool {
	return a.X == b.X || a.Y == b.Y // want "exact float comparison" "exact float comparison"
}

// Flagged: inequality, and comparison against a literal.
func NonZero(d float64) bool {
	return d != 0 // want "exact float comparison"
}

// Flagged: float32 counts too.
func SameWeight(a, b float32) bool {
	return a == b // want "exact float comparison"
}

// Clean: integer comparisons are exact.
func SameCount(a, b int) bool {
	return a == b
}

// Clean: epsilon comparison is the prescribed idiom.
func almostEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-6
}

// Clean: ordering comparisons are legitimate on floats.
func Less(a, b float64) bool {
	return a < b && almostEqual(b, b)
}

// Flagged: a switch tag of float type compares exactly per case.
func Classify(d float64) int {
	switch d { // want "switch on floating-point tag"
	case 0:
		return 0
	case 1:
		return 1
	}
	return -1
}

// Clean: a tagless switch is just an if/else chain; ordering arms are fine.
func Bucket(d float64) int {
	switch {
	case d < 0:
		return -1
	case d < 1:
		return 0
	}
	return 1
}

// Clean: switch on an integer tag.
func Fanout(n int) int {
	switch n {
	case 0:
		return 1
	}
	return n
}

// Flagged: maps keyed by floats or float-bearing structs hash exact bits.
var weightByX map[float64][]int // want "map keyed by floating-point type float64"

type snapshot struct {
	byPoint map[point]int // want "map keyed by floating-point type"
}

func index(pts []point) map[point]bool { // want "map keyed by floating-point type"
	out := make(map[point]bool) // want "map keyed by floating-point type"
	for _, p := range pts {
		out[p] = true
	}
	return out
}

// Clean: keying by an integer-quantized form is the prescribed idiom.
type key struct{ X, Y int64 }

var gridIndex map[key]int
