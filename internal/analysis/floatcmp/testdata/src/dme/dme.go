// Package dme is the positive floatcmp fixture: its basename puts it in
// the geometry/timing scope.
package dme

type point struct{ X, Y float64 }

// Flagged: exact equality between float64 expressions.
func Collinear(a, b point) bool {
	return a.X == b.X || a.Y == b.Y // want "exact float comparison" "exact float comparison"
}

// Flagged: inequality, and comparison against a literal.
func NonZero(d float64) bool {
	return d != 0 // want "exact float comparison"
}

// Flagged: float32 counts too.
func SameWeight(a, b float32) bool {
	return a == b // want "exact float comparison"
}

// Clean: integer comparisons are exact.
func SameCount(a, b int) bool {
	return a == b
}

// Clean: epsilon comparison is the prescribed idiom.
func almostEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-6
}

// Clean: ordering comparisons are legitimate on floats.
func Less(a, b float64) bool {
	return a < b && almostEqual(b, b)
}
