// Package report is the negative floatcmp fixture: outside the
// geometry/timing scope, exact float comparison is not flagged (e.g.
// checking a sentinel default).
package report

// Clean: package out of scope.
func IsUnset(v float64) bool {
	return v == 0
}
