package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// generatedRe matches the conventional generated-code marker defined by the
// Go team (https://go.dev/s/generatedcode): a line comment of the form
//
//	// Code generated <by tool> DO NOT EDIT.
//
// anywhere before the package clause.
var generatedRe = regexp.MustCompile(`^// Code generated .* DO NOT EDIT\.$`)

// IsGeneratedFile reports whether f carries the standard generated-code
// marker. Analyzers skip generated files: their findings are not actionable
// at the reported position (the generator, not the file, needs the fix).
func IsGeneratedFile(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() > f.Package {
			break
		}
		for _, c := range cg.List {
			if generatedRe.MatchString(c.Text) {
				return true
			}
		}
	}
	return false
}

// IsTestFile reports whether pos sits in a _test.go file. The loader does
// not load test packages today, but analyzers guard anyway so the rule set
// stays correct if test loading is ever enabled (tests are free to compare
// floats against goldens, spawn raw goroutines, read the wall clock, ...).
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// SkipFile is the shared skip policy for every analyzer in the suite: test
// files and generated files are exempt from the lint rules. Hoisted here so
// sharedstate, stagepure and ctxguard agree on one definition instead of
// carrying copies.
func SkipFile(fset *token.FileSet, f *ast.File) bool {
	return IsTestFile(fset, f.Pos()) || IsGeneratedFile(f)
}
