// Package badimport is a loader fixture: its import names a module that is
// neither in go.mod nor vendored, so go list -e attaches an error entry.
package badimport

import "vendored.example/missing/dep"

var _ = dep.Thing
