// Package ignorefix is a framework fixture for the suppression directives:
// the test analyzer reports at every function, and only the functions
// without a matching directive may survive Run.
package ignorefix

func A() {}

//slltlint:ignore testrule legacy directive form
func B() {}

//lint:ignore testrule conventional directive form
func C() {}

//lint:ignore otherrule a different analyzer's directive must not suppress
func D() {}

//lint:ignore otherrule,testrule comma-separated name lists apply to each
func E() {}
