// Package typeerr is a loader fixture: it parses but does not typecheck.
// Because `go list -export` compiles target packages, the failure surfaces
// as a list-time package error naming this file, not via TypeErrors.
package typeerr

func Mismatch() int {
	var s string = 42
	return s
}
