// Package broken is a loader fixture: it passes go list's shallow scan
// (package clause and imports are well-formed) but fails the full parse.
package broken

func Truncated() {
	if true {
