package analysis

import (
	"bytes"
	"encoding/json"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// funcReporter is a test analyzer that reports once per function
// declaration, which makes suppression behavior directly countable.
func funcReporter(name string) *Analyzer {
	return &Analyzer{
		Name: name,
		Doc:  "reports every function declaration (test analyzer)",
		Run: func(p *Pass) error {
			for _, f := range p.Files {
				for _, d := range f.Decls {
					if fd, ok := d.(*ast.FuncDecl); ok {
						p.Reportf(fd.Name.Pos(), "func %s", fd.Name.Name)
					}
				}
			}
			return nil
		},
	}
}

// Both //slltlint:ignore and //lint:ignore must suppress a matching
// analyzer, comma lists must apply to every listed name, and a directive
// for a different analyzer must not suppress anything.
func TestIgnoreDirectiveForms(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/ignorefix")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkgs, []*Analyzer{funcReporter("testrule")})
	if err != nil {
		t.Fatal(err)
	}
	var survived []string
	for _, d := range diags {
		survived = append(survived, strings.TrimPrefix(d.Message, "func "))
	}
	want := []string{"A", "D"}
	if strings.Join(survived, ",") != strings.Join(want, ",") {
		t.Errorf("surviving diagnostics = %v, want %v", survived, want)
	}
}

// WriteSARIF must emit a structurally valid SARIF 2.1.0 log: schema and
// version headers, every analyzer as a rule, results indexed into the rule
// array, and module-root-relative slash paths under %SRCROOT%.
func TestWriteSARIF(t *testing.T) {
	root := string(filepath.Separator) + filepath.Join("mod", "root")
	azs := []*Analyzer{
		{Name: "alpha", Doc: "first rule"},
		{Name: "beta", Doc: "second rule"},
	}
	diags := []Diagnostic{
		{
			Analyzer: "beta",
			Message:  "a finding",
			Position: token.Position{
				Filename: filepath.Join(root, "internal", "tech", "tech.go"),
				Line:     7, Column: 3,
			},
		},
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, diags, azs, root); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI       string `json:"uri"`
							URIBaseID string `json:"uriBaseId"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if !strings.Contains(log.Schema, "sarif-schema-2.1.0") || log.Version != "2.1.0" {
		t.Errorf("schema/version = %q / %q", log.Schema, log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "slltlint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != 2 || run.Tool.Driver.Rules[1].ID != "beta" {
		t.Errorf("rules = %+v", run.Tool.Driver.Rules)
	}
	if len(run.Results) != 1 {
		t.Fatalf("got %d results, want 1", len(run.Results))
	}
	res := run.Results[0]
	if res.RuleID != "beta" || res.RuleIndex != 1 {
		t.Errorf("result rule = %q index %d, want beta index 1", res.RuleID, res.RuleIndex)
	}
	loc := res.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/tech/tech.go" {
		t.Errorf("uri = %q, want module-relative slash path", loc.ArtifactLocation.URI)
	}
	if loc.ArtifactLocation.URIBaseID != "%SRCROOT%" {
		t.Errorf("uriBaseId = %q", loc.ArtifactLocation.URIBaseID)
	}
	if loc.Region.StartLine != 7 {
		t.Errorf("startLine = %d", loc.Region.StartLine)
	}
}

// Baseline round trip: recorded findings are absorbed exactly up to their
// count; an extra identical finding and a novel finding both survive.
func TestBaselineFilter(t *testing.T) {
	root := t.TempDir()
	mk := func(file, analyzer, msg string) Diagnostic {
		return Diagnostic{
			Analyzer: analyzer,
			Message:  msg,
			Position: token.Position{Filename: filepath.Join(root, file), Line: 1},
		}
	}
	recorded := []Diagnostic{
		mk("a.go", "alpha", "m1"),
		mk("a.go", "alpha", "m1"), // same class twice: count 2
		mk("b.go", "beta", "m2"),
	}
	b := NewBaseline(recorded, root)
	if len(b.Findings) != 2 {
		t.Fatalf("baseline has %d entries, want 2 (aggregated)", len(b.Findings))
	}

	path := filepath.Join(root, "baseline.json")
	if err := WriteBaseline(path, b); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}

	// The recorded set filters to nothing.
	if rest := loaded.Filter(recorded, root); len(rest) != 0 {
		t.Errorf("recorded findings survived the baseline: %v", rest)
	}
	// A third identical finding exceeds the count budget.
	over := append(append([]Diagnostic{}, recorded...), mk("a.go", "alpha", "m1"))
	if rest := loaded.Filter(over, root); len(rest) != 1 {
		t.Errorf("duplicated finding beyond the baseline count: %d survived, want 1", len(rest))
	}
	// A novel finding survives.
	novel := append(append([]Diagnostic{}, recorded...), mk("c.go", "alpha", "m3"))
	if rest := loaded.Filter(novel, root); len(rest) != 1 || rest[0].Message != "m3" {
		t.Errorf("novel finding: got %v", rest)
	}
}

// A missing baseline file loads as the empty baseline; an unsupported
// version is an error.
func TestBaselineLoadEdgeCases(t *testing.T) {
	b, err := LoadBaseline(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil {
		t.Fatalf("missing baseline: %v", err)
	}
	if len(b.Findings) != 0 {
		t.Errorf("missing baseline not empty: %v", b.Findings)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version": 9}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(bad); err == nil {
		t.Error("unsupported baseline version accepted")
	}
}

// RenderFix must produce a before/after diff of the edited lines without
// touching the file.
func TestRenderFix(t *testing.T) {
	dir := t.TempDir()
	src := "package p\n\nfunc eq(a, b float64) bool { return a == b }\n"
	path := filepath.Join(dir, "p.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	var cmp *ast.BinaryExpr
	ast.Inspect(f, func(n ast.Node) bool {
		if be, ok := n.(*ast.BinaryExpr); ok && be.Op == token.EQL {
			cmp = be
		}
		return true
	})
	if cmp == nil {
		t.Fatal("no comparison found in fixture source")
	}
	fix := SuggestedFix{
		Message: "replace with geom.AlmostEqual",
		Edits: []TextEdit{{
			Pos: cmp.Pos(), End: cmp.End(),
			NewText: "geom.AlmostEqual(a, b)",
		}},
	}
	diff, err := RenderFix(fset, fix)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(diff, "-func eq(a, b float64) bool { return a == b }") {
		t.Errorf("diff lacks the original line:\n%s", diff)
	}
	if !strings.Contains(diff, "+func eq(a, b float64) bool { return geom.AlmostEqual(a, b) }") {
		t.Errorf("diff lacks the edited line:\n%s", diff)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != src {
		t.Error("RenderFix modified the source file")
	}

	// Overlapping edits and empty fixes are rejected.
	if _, err := RenderFix(fset, SuggestedFix{Message: "empty"}); err == nil {
		t.Error("fix with no edits accepted")
	}
	overlap := SuggestedFix{
		Message: "overlap",
		Edits: []TextEdit{
			{Pos: cmp.Pos(), End: cmp.End(), NewText: "x"},
			{Pos: cmp.Pos() + 1, End: cmp.End(), NewText: "y"},
		},
	}
	if _, err := RenderFix(fset, overlap); err == nil {
		t.Error("overlapping edits accepted")
	}
}
