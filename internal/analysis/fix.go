package analysis

import (
	"fmt"
	"go/token"
	"os"
	"sort"
	"strings"
)

// ApplyFixes writes every suggested fix of the given diagnostics back to the
// source files in place and returns the files changed, sorted. Edits are
// grouped per file across diagnostics; overlapping edits (two fixes touching
// the same bytes) abort the whole apply with no file modified, so a partial
// rewrite can never be committed by accident.
func ApplyFixes(fset *token.FileSet, diags []Diagnostic) ([]string, error) {
	type edit struct {
		start, end int
		text       string
	}
	perFile := make(map[string][]edit)
	for _, d := range diags {
		for _, fix := range d.Fixes {
			for _, e := range fix.Edits {
				p, q := fset.Position(e.Pos), fset.Position(e.End)
				if p.Filename != q.Filename {
					return nil, fmt.Errorf("analysis: fix %q spans files", fix.Message)
				}
				perFile[p.Filename] = append(perFile[p.Filename], edit{p.Offset, q.Offset, e.NewText})
			}
		}
	}
	files := make([]string, 0, len(perFile))
	for f := range perFile {
		files = append(files, f)
	}
	sort.Strings(files)

	// Validate everything before writing anything.
	contents := make(map[string][]byte, len(files))
	for _, file := range files {
		edits := perFile[file]
		sort.Slice(edits, func(i, j int) bool { return edits[i].start < edits[j].start })
		for i := 1; i < len(edits); i++ {
			if edits[i].start < edits[i-1].end {
				return nil, fmt.Errorf("analysis: overlapping fixes in %s (offsets %d and %d); apply one and re-run",
					RelPath("", file), edits[i-1].start, edits[i].start)
			}
		}
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, fmt.Errorf("analysis: applying fixes: %v", err)
		}
		var out []byte
		cursor := 0
		for _, e := range edits {
			if e.end > len(src) {
				return nil, fmt.Errorf("analysis: fix offset %d beyond %s (%d bytes); file changed since analysis",
					e.end, RelPath("", file), len(src))
			}
			out = append(out, src[cursor:e.start]...)
			out = append(out, e.text...)
			cursor = e.end
		}
		out = append(out, src[cursor:]...)
		contents[file] = out
	}
	for _, file := range files {
		if err := os.WriteFile(file, contents[file], 0o644); err != nil {
			return files, fmt.Errorf("analysis: applying fixes: %v", err)
		}
	}
	return files, nil
}

// RenderFix formats one suggested fix as a dry-run unified-style diff: the
// affected source lines before and after the edits, prefixed -/+. Nothing
// is written back; the rendering exists so a finding's remediation can be
// reviewed (and applied by hand or by tooling) without the linter mutating
// a tree mid-CI.
func RenderFix(fset *token.FileSet, fix SuggestedFix) (string, error) {
	if len(fix.Edits) == 0 {
		return "", fmt.Errorf("analysis: fix %q has no edits", fix.Message)
	}
	file := fset.Position(fix.Edits[0].Pos).Filename
	src, err := os.ReadFile(file)
	if err != nil {
		return "", fmt.Errorf("analysis: rendering fix: %v", err)
	}

	type edit struct {
		start, end int
		text       string
	}
	edits := make([]edit, 0, len(fix.Edits))
	startLine, endLine := int(^uint(0)>>1), 0
	for _, e := range fix.Edits {
		p, q := fset.Position(e.Pos), fset.Position(e.End)
		if p.Filename != file || q.Filename != file {
			return "", fmt.Errorf("analysis: fix %q spans files", fix.Message)
		}
		edits = append(edits, edit{p.Offset, q.Offset, e.NewText})
		if p.Line < startLine {
			startLine = p.Line
		}
		if q.Line > endLine {
			endLine = q.Line
		}
	}
	sort.Slice(edits, func(i, j int) bool { return edits[i].start < edits[j].start })
	for i := 1; i < len(edits); i++ {
		if edits[i].start < edits[i-1].end {
			return "", fmt.Errorf("analysis: fix %q has overlapping edits", fix.Message)
		}
	}

	// Widen [lo, hi) to whole lines around the edited span.
	lo := edits[0].start
	for lo > 0 && src[lo-1] != '\n' {
		lo--
	}
	hi := edits[len(edits)-1].end
	for hi < len(src) && src[hi] != '\n' {
		hi++
	}

	var after strings.Builder
	cursor := lo
	for _, e := range edits {
		after.Write(src[cursor:e.start])
		after.WriteString(e.text)
		cursor = e.end
	}
	after.Write(src[cursor:hi])

	var out strings.Builder
	fmt.Fprintf(&out, "--- %s:%d (%s)\n", RelPath("", file), startLine, fix.Message)
	for _, line := range strings.Split(string(src[lo:hi]), "\n") {
		fmt.Fprintf(&out, "-%s\n", line)
	}
	for _, line := range strings.Split(after.String(), "\n") {
		fmt.Fprintf(&out, "+%s\n", line)
	}
	return out.String(), nil
}
