package analysis

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// wantRe matches expectation comments in fixture files:
//
//	for k := range m { // want "range over map"
//
// Each quoted string is a substring one diagnostic on that line must
// contain. Lines without a want comment must produce no diagnostics.
var wantRe = regexp.MustCompile(`//\s*want((?:\s+"(?:[^"\\]|\\.)*")+)`)

var quotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// RunTest loads the fixture packages at the given directories (relative to
// the calling test's working directory, conventionally testdata/src/<name>),
// runs the analyzer, and checks its diagnostics exactly against the
// fixtures' want comments: every expectation must be matched by a
// diagnostic and every diagnostic by an expectation.
func RunTest(t *testing.T, az *Analyzer, fixtureDirs ...string) {
	t.Helper()
	patterns := make([]string, len(fixtureDirs))
	for i, d := range fixtureDirs {
		patterns[i] = "./" + strings.TrimPrefix(d, "./")
	}
	pkgs, err := Load(".", patterns...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages matched %v", patterns)
	}
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			t.Fatalf("fixture %s has type errors: %v", pkg.ImportPath, pkg.TypeErrors)
		}
	}

	diags, err := Run(pkgs, []*Analyzer{az})
	if err != nil {
		t.Fatal(err)
	}

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]string)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, q := range quotedRe.FindAllString(m[1], -1) {
						s, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
						}
						k := key{pos.Filename, pos.Line}
						wants[k] = append(wants[k], s)
					}
				}
			}
		}
	}

	for _, d := range diags {
		k := key{d.Position.Filename, d.Position.Line}
		matched := -1
		for i, w := range wants[k] {
			if strings.Contains(d.Message, w) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic %s", d)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	for k, rest := range wants {
		for _, w := range rest {
			t.Errorf("%s:%d: no %s diagnostic containing %s",
				k.file, k.line, az.Name, fmt.Sprintf("%q", w))
		}
	}
}
