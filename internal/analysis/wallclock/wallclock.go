// Package wallclock forbids time.Now inside the algorithm packages. Tree
// construction must be a pure function of its inputs and seed; consulting
// the wall clock mid-algorithm (for time-budgeted loops, timestamped
// tie-breaking, or logging that feeds back into decisions) makes results
// machine- and load-dependent. Timing instrumentation belongs to the
// callers (cmd/, internal/bench), which are out of scope.
package wallclock

import (
	"go/ast"

	"sllt/internal/analysis"
	"sllt/internal/analysis/maporder"
)

// Analyzer is the wallclock rule.
var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc:  "forbids time.Now in algorithm packages; construction must be a pure function of inputs and seed",
	URL:  "DESIGN.md#determinism--invariants",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// Same scope as maporder: the packages that build trees.
	if !maporder.AlgorithmPackages[pass.PkgBase()] {
		return nil
	}
	pass.Preorder(func(n ast.Node) {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Now" {
			return
		}
		if pass.ImportedPkgOf(sel) != "time" {
			return
		}
		pass.Reportf(sel.Pos(),
			"time.Now in algorithm package %q: tree construction must not observe the wall clock; measure time in the caller",
			pass.PkgBase())
	})
	return nil
}
