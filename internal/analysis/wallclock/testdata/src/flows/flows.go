// Package flows is the negative wallclock fixture: instrumentation code
// outside the algorithm packages may time whatever it wants.
package flows

import "time"

// Clean: package out of scope.
func Timed(run func()) time.Duration {
	start := time.Now()
	run()
	return time.Since(start)
}
