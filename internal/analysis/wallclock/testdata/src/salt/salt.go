// Package salt is the positive wallclock fixture: its basename puts it in
// the algorithm-package scope.
package salt

import "time"

// Flagged: a time-budgeted refinement loop is load-dependent.
func RefineBad(budget time.Duration) int {
	deadline := time.Now().Add(budget) // want "must not observe the wall clock"
	iters := 0
	for time.Now().Before(deadline) { // want "must not observe the wall clock"
		iters++
		if iters > 1_000_000 {
			break
		}
	}
	return iters
}

// Clean: other time package uses (durations, formatting) are fine.
func Budget(n int) time.Duration {
	return time.Duration(n) * time.Millisecond
}
