package wallclock_test

import (
	"testing"

	"sllt/internal/analysis"
	"sllt/internal/analysis/wallclock"
)

func TestWallClock(t *testing.T) {
	analysis.RunTest(t, wallclock.Analyzer,
		"testdata/src/salt",  // positive: algorithm-package basename
		"testdata/src/flows", // negative: instrumentation package
	)
}
