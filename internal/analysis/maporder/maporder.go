// Package maporder flags `range` statements over maps inside the
// algorithm packages. Go randomizes map iteration order, so any map range
// on a tree-construction path is a nondeterminism hazard: two runs with the
// same seed can visit members in different orders and build different
// trees. The compliant idiom is to collect the keys into a slice, sort it,
// and range over the slice; genuinely order-insensitive loops (pure
// commutative reductions) may carry an
// `//slltlint:ignore maporder <reason>` directive instead.
package maporder

import (
	"go/ast"

	"sllt/internal/analysis"
)

// AlgorithmPackages are the package basenames the rule applies to: the
// packages that construct or transform clock trees and must be
// byte-reproducible for a fixed seed.
var AlgorithmPackages = map[string]bool{
	"core":      true,
	"dme":       true,
	"salt":      true,
	"cts":       true,
	"partition": true,
	"buffering": true,
	"rsmt":      true,
}

// Analyzer is the maporder rule.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flags range-over-map in algorithm packages (map iteration order is randomized; iterate a sorted key slice instead)",
	URL:  "DESIGN.md#determinism--invariants",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !AlgorithmPackages[pass.PkgBase()] {
		return nil
	}
	pass.Preorder(func(n ast.Node) {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return
		}
		t := pass.TypeOf(rs.X)
		if t == nil || !analysis.IsMap(t) {
			return
		}
		if orderInsensitive(rs) {
			return
		}
		pass.Reportf(rs.For,
			"range over map %s in algorithm package %q: iteration order is randomized; iterate sorted keys for deterministic trees",
			exprString(rs.X), pass.PkgBase())
	})
	return nil
}

// orderInsensitive recognizes the two range-over-map shapes that cannot
// leak iteration order and are therefore allowed without a directive:
//
//  1. `for range m { ... }` — neither key nor value is bound, so the body
//     cannot observe which element it runs for;
//  2. the key-collection half of the sorted-keys idiom: a body consisting
//     solely of `keys = append(keys, k)`, whose result is order-normalized
//     by the sort that must follow before use.
//
// Anything else (including collection loops that also do other work) is
// flagged and needs either the sorted-keys rewrite or an ignore directive
// with a justification.
func orderInsensitive(rs *ast.RangeStmt) bool {
	if rs.Key == nil && rs.Value == nil {
		return true
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	if rs.Value != nil {
		if v, ok := rs.Value.(*ast.Ident); !ok || v.Name != "_" {
			return false
		}
	}
	if len(rs.Body.List) != 1 {
		return false
	}
	asg, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	dst, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	sliceArg, ok := call.Args[0].(*ast.Ident)
	elemArg, ok2 := call.Args[1].(*ast.Ident)
	return ok && ok2 && sliceArg.Name == dst.Name && elemArg.Name == key.Name
}

// exprString renders simple range operands for the message; complex
// expressions degrade to a placeholder rather than dragging in a printer.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	}
	return "expression"
}
