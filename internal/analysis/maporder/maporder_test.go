package maporder_test

import (
	"testing"

	"sllt/internal/analysis"
	"sllt/internal/analysis/maporder"
)

func TestMapOrder(t *testing.T) {
	analysis.RunTest(t, maporder.Analyzer,
		"testdata/src/core",    // positive: algorithm-package basename
		"testdata/src/mapfree", // negative: out-of-scope package
	)
}
