// Package mapfree is the negative maporder fixture: it is not one of the
// algorithm packages, so even direct map iteration is allowed here.
package mapfree

// Clean despite the map range: package out of scope.
func Keys(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
